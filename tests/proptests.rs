//! Randomised-input tests over the whole stack: field axioms, group-law
//! invariants, recoding round-trips and protocol round-trips.
//!
//! Inputs are drawn from the in-tree deterministic PRNG (fixed seeds,
//! reproducible offline) — plain `#[test]` loops standing in for the
//! former proptest strategies.

use gf2m::Fe;
use koblitz::curve::generator;
use koblitz::{mul, order, Int};
use prng::SplitMix64;

fn fe(rng: &mut SplitMix64) -> Fe {
    let mut w = [0u32; 8];
    rng.fill_u32(&mut w);
    Fe::from_words_reduced(w)
}

fn scalar(rng: &mut SplitMix64) -> Int {
    let n = 1 + rng.below(29) as usize;
    let mut bytes = vec![0u8; n];
    rng.fill_bytes(&mut bytes);
    Int::from_be_bytes(&bytes).mod_positive(&order())
}

#[test]
fn field_addition_is_commutative_associative() {
    let mut rng = SplitMix64::new(0xf0f0_0001);
    for case in 0..64 {
        let (a, b, c) = (fe(&mut rng), fe(&mut rng), fe(&mut rng));
        assert_eq!(a + b, b + a, "case {case}");
        assert_eq!((a + b) + c, a + (b + c), "case {case}");
        assert_eq!(a + a, Fe::ZERO, "case {case}");
    }
}

#[test]
fn field_multiplication_axioms() {
    let mut rng = SplitMix64::new(0xf0f0_0002);
    for case in 0..64 {
        let (a, b, c) = (fe(&mut rng), fe(&mut rng), fe(&mut rng));
        assert_eq!(a * b, b * a, "case {case}");
        assert_eq!((a * b) * c, a * (b * c), "case {case}");
        assert_eq!(a * (b + c), a * b + a * c, "case {case}");
        assert_eq!(a * Fe::ONE, a, "case {case}");
    }
}

#[test]
fn all_multipliers_agree() {
    let mut rng = SplitMix64::new(0xf0f0_0003);
    for case in 0..64 {
        let (a, b) = (fe(&mut rng), fe(&mut rng));
        let want = gf2m::mul::mul_shift_and_add(a, b);
        for (name, f) in gf2m::mul::ALL_MULTIPLIERS {
            assert_eq!(f(a, b), want, "{name} disagrees (case {case})");
        }
    }
}

#[test]
fn square_is_self_multiplication() {
    let mut rng = SplitMix64::new(0xf0f0_0004);
    for case in 0..64 {
        let a = fe(&mut rng);
        assert_eq!(a.square(), a * a, "case {case}");
    }
}

#[test]
fn inversion_is_exact() {
    let mut rng = SplitMix64::new(0xf0f0_0005);
    for case in 0..64 {
        let a = fe(&mut rng);
        if !a.is_zero() {
            let inv = a.invert().expect("non-zero");
            assert_eq!(a * inv, Fe::ONE, "case {case}");
            assert_eq!(inv.invert().expect("non-zero"), a, "case {case}");
        } else {
            assert_eq!(a.invert(), None, "case {case}");
        }
    }
}

#[test]
fn frobenius_is_additive() {
    let mut rng = SplitMix64::new(0xf0f0_0006);
    for case in 0..64 {
        let (a, b) = (fe(&mut rng), fe(&mut rng));
        assert_eq!((a + b).square(), a.square() + b.square(), "case {case}");
    }
}

#[test]
fn byte_roundtrip() {
    let mut rng = SplitMix64::new(0xf0f0_0007);
    for case in 0..64 {
        let a = fe(&mut rng);
        assert_eq!(Fe::from_be_bytes(&a.to_be_bytes()), a, "case {case}");
    }
}

#[test]
fn hex_roundtrip() {
    let mut rng = SplitMix64::new(0xf0f0_0008);
    for case in 0..64 {
        let a = fe(&mut rng);
        let s = format!("{a:x}");
        assert_eq!(
            Fe::from_hex(&s).expect("own output parses"),
            a,
            "case {case}"
        );
    }
}

// Group-law cases are slower (field inversions); fewer cases.

#[test]
fn wtnaf_matches_double_and_add() {
    let mut rng = SplitMix64::new(0xf0f0_0009);
    let g = generator();
    for case in 0..12 {
        let k = scalar(&mut rng);
        assert_eq!(mul::mul_wtnaf(&g, &k, 4), g.mul_binary(&k), "case {case}");
    }
}

#[test]
fn fixed_point_matches_random_point() {
    let mut rng = SplitMix64::new(0xf0f0_000a);
    for case in 0..12 {
        let k = scalar(&mut rng);
        assert_eq!(
            mul::mul_g(&k),
            mul::mul_wtnaf(&generator(), &k, 4),
            "case {case}"
        );
    }
}

#[test]
fn ladder_matches_wtnaf() {
    let mut rng = SplitMix64::new(0xf0f0_000b);
    let g = generator();
    for case in 0..12 {
        let k = scalar(&mut rng);
        assert_eq!(
            mul::montgomery_ladder(&g, &k),
            mul::mul_wtnaf(&g, &k, 4),
            "case {case}"
        );
    }
}

#[test]
fn scalar_multiplication_distributes() {
    let mut rng = SplitMix64::new(0xf0f0_000c);
    for case in 0..12 {
        let (a, b) = (scalar(&mut rng), scalar(&mut rng));
        let sum = (&a + &b).mod_positive(&order());
        assert_eq!(
            mul::mul_g(&a).add(&mul::mul_g(&b)),
            mul::mul_g(&sum),
            "case {case}"
        );
    }
}

#[test]
fn results_are_on_curve() {
    let mut rng = SplitMix64::new(0xf0f0_000d);
    for case in 0..12 {
        let k = scalar(&mut rng);
        assert!(mul::mul_g(&k).is_on_curve(), "case {case}");
    }
}

#[test]
fn frobenius_commutes_with_scalar_multiplication() {
    let mut rng = SplitMix64::new(0xf0f0_000e);
    let g = generator();
    for case in 0..12 {
        let k = scalar(&mut rng);
        assert_eq!(
            mul::mul_wtnaf(&g, &k, 4).frobenius(),
            mul::mul_wtnaf(&g.frobenius(), &k, 4),
            "case {case}"
        );
    }
}

#[test]
fn negation_distributes() {
    let mut rng = SplitMix64::new(0xf0f0_000f);
    let g = generator();
    for case in 0..12 {
        let k = scalar(&mut rng);
        let p = mul::mul_wtnaf(&g, &k, 4);
        let n_minus_k = (&order() - &k).mod_positive(&order());
        assert_eq!(
            mul::mul_wtnaf(&g, &n_minus_k, 4),
            p.negated(),
            "case {case}"
        );
    }
}

#[test]
fn tnaf_recoding_has_valid_digits() {
    let mut rng = SplitMix64::new(0xf0f0_0010);
    for case in 0..16 {
        let k = scalar(&mut rng);
        let w = 2 + rng.below(5) as u32; // 2..=6
        let digits = koblitz::tnaf::recode(&k, w);
        assert!(
            digits.len() <= koblitz::curve_m() + 6,
            "length {} (case {case})",
            digits.len()
        );
        let bound = 1i16 << (w - 1);
        for &d in &digits {
            assert!(
                d == 0 || (d % 2 != 0 && (d as i16).abs() < bound),
                "case {case}"
            );
        }
        // Non-zero digits at least w apart.
        let mut last: Option<usize> = None;
        for (i, &d) in digits.iter().enumerate() {
            if d != 0 {
                if let Some(prev) = last {
                    assert!(i - prev >= w as usize, "case {case}");
                }
                last = Some(i);
            }
        }
    }
}

#[test]
fn sha256_incremental_equals_oneshot() {
    let mut rng = SplitMix64::new(0xf0f0_0011);
    for case in 0..16 {
        let n = rng.below(300) as usize;
        let mut data = vec![0u8; n];
        rng.fill_bytes(&mut data);
        let split = (rng.below(300) as usize).min(data.len());
        let mut h = protocols::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        assert_eq!(
            h.finalize(),
            protocols::Sha256::digest(&data),
            "case {case}"
        );
    }
}

#[test]
fn aes_ctr_roundtrips() {
    let mut rng = SplitMix64::new(0xf0f0_0012);
    for case in 0..16 {
        let mut key = [0u8; 16];
        let mut nonce = [0u8; 12];
        rng.fill_bytes(&mut key);
        rng.fill_bytes(&mut nonce);
        let mut data = vec![0u8; rng.below(100) as usize];
        rng.fill_bytes(&mut data);
        let aes = protocols::Aes128::new(&key);
        let original = data.clone();
        aes.ctr_apply(&nonce, &mut data);
        aes.ctr_apply(&nonce, &mut data);
        assert_eq!(data, original, "case {case}");
    }
}

#[test]
fn int_divrem_identity() {
    let mut rng = SplitMix64::new(0xf0f0_0013);
    let mut cases = 0;
    while cases < 16 {
        let na = 1 + rng.below(7);
        let nd = 1 + rng.below(5);
        let a = Int::from_limbs(rng.below(2) == 1, (0..na).map(|_| rng.next_u32()).collect());
        let d = Int::from_limbs(rng.below(2) == 1, (0..nd).map(|_| rng.next_u32()).collect());
        if d.is_zero() {
            continue;
        }
        cases += 1;
        let (q, r) = a.divrem_floor(&d);
        assert_eq!(&(&q * &d) + &r, a);
        // Floor: remainder has the divisor's sign (or zero).
        assert!(r.is_zero() || (r.is_negative() == d.is_negative()));
    }
}

#[test]
fn affine_group_law_is_associative() {
    let mut rng = SplitMix64::new(0xf0f0_0014);
    let g = generator();
    for case in 0..16 {
        let (a, b, c) = (
            1 + rng.below(4999),
            1 + rng.below(4999),
            1 + rng.below(4999),
        );
        let p = g.mul_binary(&Int::from(a as i64));
        let q = g.mul_binary(&Int::from(b as i64));
        let r = g.mul_binary(&Int::from(c as i64));
        assert_eq!(p.add(&q).add(&r), p.add(&q.add(&r)), "case {case}");
        assert!(p.add(&q).is_on_curve(), "case {case}");
    }
}
