//! Property-based tests over the whole stack: field axioms, group-law
//! invariants, recoding round-trips and protocol round-trips, with
//! proptest-generated inputs.

use gf2m::Fe;
use koblitz::curve::generator;
use koblitz::{mul, order, Int};
use proptest::prelude::*;

fn arb_fe() -> impl Strategy<Value = Fe> {
    proptest::array::uniform8(any::<u32>()).prop_map(Fe::from_words_reduced)
}

fn arb_scalar() -> impl Strategy<Value = Int> {
    proptest::collection::vec(any::<u8>(), 1..30)
        .prop_map(|bytes| Int::from_be_bytes(&bytes).mod_positive(&order()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn field_addition_is_commutative_associative(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a + a, Fe::ZERO);
    }

    #[test]
    fn field_multiplication_axioms(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a * Fe::ONE, a);
    }

    #[test]
    fn all_multipliers_agree(a in arb_fe(), b in arb_fe()) {
        let want = gf2m::mul::mul_shift_and_add(a, b);
        for (name, f) in gf2m::mul::ALL_MULTIPLIERS {
            prop_assert_eq!(f(a, b), want, "{} disagrees", name);
        }
    }

    #[test]
    fn square_is_self_multiplication(a in arb_fe()) {
        prop_assert_eq!(a.square(), a * a);
    }

    #[test]
    fn inversion_is_exact(a in arb_fe()) {
        if !a.is_zero() {
            let inv = a.invert().expect("non-zero");
            prop_assert_eq!(a * inv, Fe::ONE);
            prop_assert_eq!(inv.invert().expect("non-zero"), a);
        } else {
            prop_assert_eq!(a.invert(), None);
        }
    }

    #[test]
    fn frobenius_is_additive(a in arb_fe(), b in arb_fe()) {
        prop_assert_eq!((a + b).square(), a.square() + b.square());
    }

    #[test]
    fn byte_roundtrip(a in arb_fe()) {
        prop_assert_eq!(Fe::from_be_bytes(&a.to_be_bytes()), a);
    }

    #[test]
    fn hex_roundtrip(a in arb_fe()) {
        let s = format!("{a:x}");
        prop_assert_eq!(Fe::from_hex(&s).expect("own output parses"), a);
    }
}

proptest! {
    // Group-law cases are slower (field inversions); fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn wtnaf_matches_double_and_add(k in arb_scalar()) {
        let g = generator();
        prop_assert_eq!(mul::mul_wtnaf(&g, &k, 4), g.mul_binary(&k));
    }

    #[test]
    fn fixed_point_matches_random_point(k in arb_scalar()) {
        prop_assert_eq!(
            mul::mul_g(&k),
            mul::mul_wtnaf(&generator(), &k, 4)
        );
    }

    #[test]
    fn ladder_matches_wtnaf(k in arb_scalar()) {
        let g = generator();
        prop_assert_eq!(mul::montgomery_ladder(&g, &k), mul::mul_wtnaf(&g, &k, 4));
    }

    #[test]
    fn scalar_multiplication_distributes(a in arb_scalar(), b in arb_scalar()) {
        let sum = (&a + &b).mod_positive(&order());
        prop_assert_eq!(
            mul::mul_g(&a).add(&mul::mul_g(&b)),
            mul::mul_g(&sum)
        );
    }

    #[test]
    fn results_are_on_curve(k in arb_scalar()) {
        prop_assert!(mul::mul_g(&k).is_on_curve());
    }

    #[test]
    fn frobenius_commutes_with_scalar_multiplication(k in arb_scalar()) {
        let g = generator();
        prop_assert_eq!(
            mul::mul_wtnaf(&g, &k, 4).frobenius(),
            mul::mul_wtnaf(&g.frobenius(), &k, 4)
        );
    }

    #[test]
    fn negation_distributes(k in arb_scalar()) {
        let g = generator();
        let p = mul::mul_wtnaf(&g, &k, 4);
        let n_minus_k = (&order() - &k).mod_positive(&order());
        prop_assert_eq!(mul::mul_wtnaf(&g, &n_minus_k, 4), p.negated());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tnaf_recoding_has_valid_digits(k in arb_scalar(), w in 2u32..=6) {
        let digits = koblitz::tnaf::recode(&k, w);
        prop_assert!(digits.len() <= koblitz::curve_m() + 6, "length {}", digits.len());
        let bound = 1i16 << (w - 1);
        for &d in &digits {
            prop_assert!(d == 0 || (d % 2 != 0 && (d as i16).abs() < bound));
        }
        // Non-zero digits at least w apart.
        let mut last: Option<usize> = None;
        for (i, &d) in digits.iter().enumerate() {
            if d != 0 {
                if let Some(prev) = last {
                    prop_assert!(i - prev >= w as usize);
                }
                last = Some(i);
            }
        }
    }

    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..300), split in 0usize..300) {
        let split = split.min(data.len());
        let mut h = protocols::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), protocols::Sha256::digest(&data));
    }

    #[test]
    fn aes_ctr_roundtrips(key in proptest::array::uniform16(any::<u8>()),
                          nonce in proptest::array::uniform12(any::<u8>()),
                          mut data in proptest::collection::vec(any::<u8>(), 0..100)) {
        let aes = protocols::Aes128::new(&key);
        let original = data.clone();
        aes.ctr_apply(&nonce, &mut data);
        aes.ctr_apply(&nonce, &mut data);
        prop_assert_eq!(data, original);
    }

    #[test]
    fn int_divrem_identity(a in proptest::collection::vec(any::<u32>(), 1..8),
                           d in proptest::collection::vec(any::<u32>(), 1..6),
                           neg_a in any::<bool>(), neg_d in any::<bool>()) {
        let a = Int::from_limbs(neg_a, a);
        let d = Int::from_limbs(neg_d, d);
        if !d.is_zero() {
            let (q, r) = a.divrem_floor(&d);
            prop_assert_eq!(&(&q * &d) + &r, a);
            // Floor: remainder has the divisor's sign (or zero).
            prop_assert!(r.is_zero() || (r.is_negative() == d.is_negative()));
        }
    }

    #[test]
    fn affine_group_law_is_associative(a in 1u64..5000, b in 1u64..5000, c in 1u64..5000) {
        let g = generator();
        let p = g.mul_binary(&Int::from(a as i64));
        let q = g.mul_binary(&Int::from(b as i64));
        let r = g.mul_binary(&Int::from(c as i64));
        prop_assert_eq!(p.add(&q).add(&r), p.add(&q.add(&r)));
        let is_valid_point = p.add(&q).is_on_curve();
        prop_assert!(is_valid_point);
    }
}
