//! End-to-end assertions of the paper's quantitative claims, checked
//! against the cost model. These are the "shape" targets of DESIGN.md:
//! who wins, by roughly what factor, and where the energy lands.

use ecc233::{Engine, Profile};
use koblitz::{order, Int};
use m0plus::Category;

fn scalar(seed: u64) -> Int {
    let hex = format!("{:016x}", seed.wrapping_mul(0xD6E8_FEB8_6659_FD93) | 1);
    Int::from_hex(&hex.repeat(4))
        .expect("valid hex")
        .mod_positive(&order())
}

#[test]
fn abstract_energy_figures() {
    // "a random point multiplication requires 34.16 µJ, whereas our
    // fixed point multiplication requires 20.63 µJ" — the model must
    // land within 20% of both.
    let e = Engine::new(Profile::ThisWorkAsm);
    let kp = e.mul_point(&koblitz::generator(), &scalar(1));
    let kg = e.mul_g(&scalar(1));
    let kp_uj = kp.report.energy_uj();
    let kg_uj = kg.report.energy_uj();
    assert!(
        (kp_uj / 34.16 - 1.0).abs() < 0.20,
        "kP energy {kp_uj:.2} µJ vs paper 34.16"
    );
    assert!(
        (kg_uj / 20.63 - 1.0).abs() < 0.20,
        "kG energy {kg_uj:.2} µJ vs paper 20.63"
    );
}

#[test]
fn section_42_cycle_counts() {
    // kP 2 814 827 cycles, kG 1 864 470 cycles (±20%).
    let e = Engine::new(Profile::ThisWorkAsm);
    let kp = e.mul_point(&koblitz::generator(), &scalar(2)).report.cycles as f64;
    let kg = e.mul_g(&scalar(2)).report.cycles as f64;
    assert!((kp / 2_814_827.0 - 1.0).abs() < 0.20, "kP cycles {kp}");
    assert!((kg / 1_864_470.0 - 1.0).abs() < 0.20, "kG cycles {kg}");
}

#[test]
fn speedup_over_relic() {
    // "1.99 times faster" (kP) and "2.98 times faster" (kG), ±30%.
    let k = scalar(3);
    let ours = Engine::new(Profile::ThisWorkAsm);
    let relic = Engine::new(Profile::RelicStyle);
    let g = koblitz::generator();
    let kp_ratio =
        relic.mul_point(&g, &k).report.cycles as f64 / ours.mul_point(&g, &k).report.cycles as f64;
    let kg_ratio = relic.mul_g(&k).report.cycles as f64 / ours.mul_g(&k).report.cycles as f64;
    assert!((1.4..2.6).contains(&kp_ratio), "kP speedup {kp_ratio:.2}");
    assert!((2.1..3.9).contains(&kg_ratio), "kG speedup {kg_ratio:.2}");
}

#[test]
fn average_power_is_in_the_measured_band() {
    // The paper measures 519.6–600.5 µW across its implementations.
    let e = Engine::new(Profile::ThisWorkAsm);
    let p = e.mul_point(&koblitz::generator(), &scalar(4));
    let power = p.report.average_power_uw();
    assert!(
        (480.0..650.0).contains(&power),
        "average power {power:.1} µW"
    );
}

#[test]
fn energy_beats_all_literature_rows_by_headline_factor() {
    // Abstract: "beats all other software implementations, on any
    // platform, by a factor of at least 3.3."
    let e = Engine::new(Profile::ThisWorkAsm);
    let kp_uj = e
        .mul_point(&koblitz::generator(), &scalar(5))
        .report
        .energy_uj();
    for row in ecc233::literature::table4_literature() {
        let factor = row.energy_uj / kp_uj;
        assert!(
            factor >= ecc233::literature::HEADLINE_ENERGY_FACTOR,
            "{} {} at {:.1} µJ is only ×{:.2} worse",
            row.platform,
            row.author,
            row.energy_uj,
            factor
        );
    }
}

#[test]
fn table7_shape_for_kp() {
    // Multiply dominates; Square ≈ 360k; the per-category ordering of
    // Table 7 is preserved.
    let e = Engine::new(Profile::ThisWorkAsm);
    let r = e.mul_point(&koblitz::generator(), &scalar(6)).report;
    let multiply = r.category_cycles(Category::Multiply);
    let square = r.category_cycles(Category::Square);
    let tnaf_pre = r.category_cycles(Category::TnafPrecomputation);
    let mul_pre = r.category_cycles(Category::MultiplyPrecomputation);
    let inversion = r.category_cycles(Category::Inversion);
    // Multiply dominates everything; TNAF precomputation and Square are
    // the next band (their relative order flips within ±10% between the
    // paper and the model); LUT generation and inversion follow.
    assert!(
        multiply > tnaf_pre && multiply > square,
        "Multiply dominates"
    );
    assert!(
        tnaf_pre > mul_pre && square > mul_pre && mul_pre > inversion,
        "band ordering"
    );
    assert!(
        (square as f64 / 362_379.0 - 1.0).abs() < 0.15,
        "Square cycles {square} vs paper 362 379"
    );
    assert!(
        (mul_pre as f64 / 249_750.0 - 1.0).abs() < 0.25,
        "Multiply Precomputation {mul_pre} vs paper 249 750"
    );
}

#[test]
fn table7_kg_has_zero_tnaf_precomputation() {
    let e = Engine::new(Profile::ThisWorkAsm);
    let r = e.mul_g(&scalar(7)).report;
    assert_eq!(r.category_cycles(Category::TnafPrecomputation), 0);
}

#[test]
fn table2_formula_values_are_exact() {
    use gf2m::formulas::Method;
    assert_eq!(Method::A.op_counts(8).cycles(), 4980);
    assert_eq!(Method::B.op_counts(8).cycles(), 3492);
    assert_eq!(Method::C.op_counts(8).cycles(), 2968);
}

#[test]
fn section_31_model_conclusions() {
    let rows = ecc233::model::evaluate_candidates();
    let c = ecc233::model::conclusions(&rows);
    assert!(c.koblitz_is_fastest);
    assert!(c.binary_uses_less_power);
}

#[test]
fn table6_orderings() {
    use bench::workloads::kernel_cycles;
    use ecc233::Tier;
    let (sqr_c, mul_c, _, inv_c) = kernel_cycles(Tier::C);
    let (sqr_asm, mul_asm, _, _) = kernel_cycles(Tier::Asm);
    // Assembly beats C for both kernels (Table 6's core message).
    assert!(sqr_asm < sqr_c, "sqr {sqr_asm} vs {sqr_c}");
    assert!(mul_asm < mul_c, "mul {mul_asm} vs {mul_c}");
    // Near the paper's absolute numbers.
    assert!(
        (mul_asm as f64 / 3672.0 - 1.0).abs() < 0.12,
        "mul {mul_asm}"
    );
    assert!((sqr_asm as f64 / 395.0 - 1.0).abs() < 0.12, "sqr {sqr_asm}");
    assert!((mul_c as f64 / 5964.0 - 1.0).abs() < 0.15, "mul C {mul_c}");
    assert!((inv_c as f64 / 141_916.0 - 1.0).abs() < 0.45, "inv {inv_c}");
}
