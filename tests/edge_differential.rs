//! Int/scalar and field-element edge cases pushed through all four
//! execution tiers via the differential harness (`verify` crate).
//!
//! The harness front-loads its deterministic edge vectors — zero, one,
//! all-ones and top-bit field elements; scalar 0, 1, small values,
//! n−1, n, n+1 and top-bit-set patterns — before its random stream, so
//! a run sized to cover the edge tables is a pure edge-case sweep.

use verify::{differential, DiffConfig};

/// Six field edges and twelve scalar edges (see
/// `differential::field_edges` / `differential::scalar_edges`); sizes
/// chosen to cover all of them plus a margin of random cases.
fn edge_config() -> DiffConfig {
    DiffConfig {
        seed: 0xedfe,
        field_cases: 10,
        scalar_cases: 16,
        wire_cases: 0,
        batch_cases: 8,
        target: m0plus::target::default_target(),
    }
}

#[test]
fn edge_cases_agree_across_all_tiers() {
    let report = differential::run(&edge_config());
    assert!(report.ok(), "{}", report.render());
    let cases = |name: &str| {
        report
            .pairs
            .iter()
            .find(|p| p.pair == name)
            .unwrap_or_else(|| panic!("missing tier pair {name}: {}", report.render()))
            .cases
    };
    // Every field tier saw every case, edges included.
    for pair in [
        "portable/generic_u64",
        "portable/counted_ld",
        "portable/counted_ld_rotating",
        "portable/counted_ld_fixed",
        "portable/modeled_direct",
        "portable/modeled_code",
        "modeled_direct/modeled_code_cycles",
    ] {
        assert_eq!(cases(pair), edge_config().field_cases, "{pair}");
    }
    // Every point algorithm saw every scalar edge (0, 1, n−1, n, n+1,
    // top-bit-set, …) and the recode length never moved.
    for pair in [
        "binary/wtnaf_w4",
        "binary/tnaf",
        "binary/kg_window",
        "binary/ladder",
        "recode/fixed_length",
    ] {
        assert_eq!(cases(pair), edge_config().scalar_cases, "{pair}");
    }
}

#[test]
fn edge_sweep_is_deterministic() {
    assert_eq!(
        differential::run(&edge_config()).render(),
        differential::run(&edge_config()).render()
    );
}
