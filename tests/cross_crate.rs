//! Integration tests spanning the workspace crates: the modeled and
//! portable tiers must agree everywhere, and the protocol layer must
//! compose correctly with the curve and engine layers.

use ecc233::{Engine, Profile};
use gf2m::modeled::{ModeledField, Tier};
use gf2m::Fe;
use koblitz::{mul, order, Int};
use protocols::{Keypair, SigningKey};

fn scalar(seed: u64) -> Int {
    let hex = format!("{:016x}", seed.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) | 1);
    Int::from_hex(&hex.repeat(4))
        .expect("valid hex")
        .mod_positive(&order())
}

fn element(seed: u64) -> Fe {
    let mut s = seed.wrapping_mul(0x165667B19E3779F9) | 1;
    let mut w = [0u32; 8];
    for x in w.iter_mut() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        *x = (s >> 9) as u32;
    }
    Fe::from_words_reduced(w)
}

#[test]
fn all_tiers_compute_identical_field_products() {
    for tier in [Tier::Asm, Tier::C, Tier::RelicC] {
        let mut f = ModeledField::new(tier);
        for seed in 0..5 {
            let a = element(seed);
            let b = element(seed + 50);
            let (sa, sb, sz) = (f.alloc_init(a), f.alloc_init(b), f.alloc());
            f.mul(sz, sa, sb);
            assert_eq!(f.load(sz), a * b, "{tier:?} seed {seed}");
            f.sqr(sz, sa);
            assert_eq!(f.load(sz), a.square(), "{tier:?} sqr");
        }
    }
}

#[test]
fn every_profile_matches_every_portable_multiplier() {
    let k = scalar(1);
    let portable = [
        mul::mul_g(&k),
        mul::mul_wtnaf(&koblitz::generator(), &k, 4),
        mul::mul_wtnaf(&koblitz::generator(), &k, 6),
        mul::mul_tnaf(&koblitz::generator(), &k),
        mul::montgomery_ladder(&koblitz::generator(), &k),
        koblitz::generator().mul_binary(&k),
    ];
    for p in &portable[1..] {
        assert_eq!(*p, portable[0], "portable multipliers disagree");
    }
    for profile in Profile::ALL {
        let m = Engine::new(profile).mul_g(&k);
        assert_eq!(m.point, portable[0], "{profile}");
    }
}

#[test]
fn ecdh_agrees_and_derives_usable_aes_keys() {
    let a = Keypair::generate(b"integration-a");
    let b = Keypair::generate(b"integration-b");
    let s1 = a.shared_secret(b.public()).expect("valid peer");
    let s2 = b.shared_secret(a.public()).expect("valid peer");
    assert_eq!(s1, s2);
    let aes = protocols::Aes128::new(&s1[..16].try_into().expect("16 bytes"));
    let mut msg = b"integration telemetry".to_vec();
    let clear = msg.clone();
    aes.ctr_apply(&[3u8; 12], &mut msg);
    aes.ctr_apply(&[3u8; 12], &mut msg);
    assert_eq!(msg, clear);
}

#[test]
fn ecdsa_signature_survives_engine_roundtrip() {
    // Sign portably, recompute the kG under the modeled engine, and
    // confirm both agree on the R point's x-coordinate path.
    let key = SigningKey::generate(b"integration signer");
    let msg = b"cross-crate message";
    let sig = key.sign(msg);
    assert!(protocols::ecdsa::verify(key.public(), msg, &sig).is_ok());
}

#[test]
fn engine_reports_are_consistent() {
    let e = Engine::new(Profile::ThisWorkAsm);
    let m = e.mul_g(&scalar(2));
    let by_cat: u64 = m.report.by_category.iter().map(|(_, t)| t.cycles).sum();
    assert_eq!(by_cat, m.report.cycles, "categories partition the total");
    // Energy/time/power consistency: P = E / t.
    let p = m.report.energy_uj() * 1e-6 / (m.report.time_ms() * 1e-3) * 1e6;
    assert!((p - m.report.average_power_uw()).abs() < 1e-6);
}

#[test]
fn instruction_counts_balance_cycles() {
    let e = Engine::new(Profile::ThisWorkAsm);
    let m = e.mul_g(&scalar(3));
    let cycles_from_counts: u64 = m
        .report
        .counts
        .iter()
        .map(|(class, n)| n * class.cycles())
        .sum();
    assert_eq!(cycles_from_counts, m.report.cycles);
}

#[test]
fn prime_and_binary_baselines_coexist() {
    // The §3.1 comparison needs both sides live in one process.
    let c = primefield::curves::secp192r1();
    let g = c.generator();
    let mut k = [0u32; 8];
    k[0] = 12345;
    let p = c.mul(&g, &k);
    assert!(c.is_on_curve(&p));
    let kb = scalar(4);
    let q = mul::mul_g(&kb);
    assert!(q.is_on_curve());
}

#[test]
fn scalar_field_and_curve_orders_match() {
    // n·G = O through the scalar-field API.
    let n_minus_1 = koblitz::Scalar::new(&order() - &Int::one());
    let p = mul::mul_g(&n_minus_1.to_int());
    assert_eq!(p, koblitz::generator().negated());
    assert_eq!(p.add(&koblitz::generator()), koblitz::Affine::Infinity);
}
