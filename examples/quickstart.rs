//! Quickstart: one fixed-point and one random-point multiplication on
//! sect233k1, measured on the Cortex-M0+ cost model — the two numbers
//! the paper's abstract leads with.
//!
//! Run: `cargo run --release --example quickstart`

use ecc233::{Engine, Profile};
use koblitz::{order, Int};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 232-bit scalar (any value below the group order n).
    let k = Int::from_hex("1b2fd57a913c4e8f6a5d3c2b1a09f8e7d6c5b4a392817161514131211")?
        .mod_positive(&order());

    let engine = Engine::new(Profile::ThisWorkAsm);

    // Fixed-point multiplication kG — key generation in a WSN node.
    let kg = engine.mul_g(&k);
    println!("kG = ({:x}, {:x})", kg.point.x(), kg.point.y());
    println!(
        "    {} cycles, {:.2} ms @48 MHz, {:.2} µJ, {:.1} µW   (paper: 20.63 µJ)",
        kg.report.cycles,
        kg.report.time_ms(),
        kg.report.energy_uj(),
        kg.report.average_power_uw()
    );

    // Random-point multiplication kP — the shared-secret step.
    let p = koblitz::mul::mul_g(&Int::from(7i64));
    let kp = engine.mul_point(&p, &k);
    println!("kP = ({:x}, {:x})", kp.point.x(), kp.point.y());
    println!(
        "    {} cycles, {:.2} ms @48 MHz, {:.2} µJ, {:.1} µW   (paper: 34.16 µJ)",
        kp.report.cycles,
        kp.report.time_ms(),
        kp.report.energy_uj(),
        kp.report.average_power_uw()
    );

    // The same operations compute identical points under every profile;
    // only the cost changes.
    let relic = Engine::new(Profile::RelicStyle).mul_g(&k);
    assert_eq!(relic.point, kg.point);
    println!(
        "\nRELIC-style baseline kG: {} cycles ({:.2}x ours — paper measured 2.98x)",
        relic.report.cycles,
        relic.report.cycles as f64 / kg.report.cycles as f64
    );
    Ok(())
}
