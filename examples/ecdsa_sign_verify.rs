//! ECDSA over sect233k1: a node signs telemetry frames, the base
//! station verifies — with the per-operation energy from the cost
//! model (sign ≈ one kG; verify ≈ one kG + one kP).
//!
//! Run: `cargo run --release --example ecdsa_sign_verify`

use ecc233::{Engine, Profile};
use protocols::ecdsa;
use protocols::SigningKey;

fn main() {
    let key = SigningKey::generate(b"node-42 identity key");
    let engine = Engine::new(Profile::ThisWorkAsm);

    let frames = [
        "frame 0001: temp=23.4C",
        "frame 0002: temp=23.5C",
        "frame 0003: door=open ALERT",
    ];

    for frame in frames {
        let sig = key.sign(frame.as_bytes());
        let ok = ecdsa::verify(key.public(), frame.as_bytes(), &sig).is_ok();
        println!(
            "{frame:<30} sig.r = {:>10}…  verified: {ok}",
            short(&sig.r.to_string())
        );
        assert!(ok);
    }

    // Tampering must fail.
    let sig = key.sign(b"frame 0004: vbat=2.96V");
    let tampered = ecdsa::verify(key.public(), b"frame 0004: vbat=1.00V", &sig);
    println!("tampered frame rejected: {}", tampered.is_err());
    assert!(tampered.is_err());

    // Energy accounting: signing costs one fixed-point multiplication,
    // verification one fixed-point plus one random-point.
    let k = key.secret_cost_probe();
    let kg = engine.mul_g(&k);
    let kp = engine.mul_point(key.public(), &k);
    println!(
        "\nenergy on the M0+ model: sign ≈ {:.2} µJ (kG), verify ≈ {:.2} µJ (kG + kP)",
        kg.report.energy_uj(),
        kg.report.energy_uj() + kp.report.energy_uj()
    );
}

fn short(s: &str) -> String {
    s.chars().take(10).collect()
}

/// Helper trait to expose a deterministic probe scalar without leaking
/// the secret through the example.
trait CostProbe {
    fn secret_cost_probe(&self) -> koblitz::Int;
}

impl CostProbe for SigningKey {
    fn secret_cost_probe(&self) -> koblitz::Int {
        koblitz::Int::from_hex(&"3d".repeat(29))
            .expect("valid hex")
            .mod_positive(&koblitz::order())
    }
}
