//! Node-lifetime comparison: the paper's introduction, quantified.
//!
//! Every implementation profile runs the same WSN duty cycle (one
//! sealed telemetry frame per 15-minute round, ECDH re-key once a day)
//! on a CR2032 coin cell; the only difference is the energy its point
//! multiplications burn on the Cortex-M0+ model.
//!
//! Run: `cargo run --release --example node_lifetime`

use ecc233::Profile;
use wsn::{CryptoCosts, NodeConfig, Simulation};

fn main() {
    println!("--- WSN node lifetime by ECC implementation profile ---");
    println!("(CR2032 ≈ 2340 J, 24-byte frame / 15-min round, daily re-key)\n");
    println!(
        "{:<22} {:>9} {:>9} {:>14} {:>12} {:>10}",
        "profile", "kG [µJ]", "kP [µJ]", "rounds", "years", "re-keys"
    );

    let config = NodeConfig::default();
    let max_rounds = 200_000_000;
    let mut lifetimes = Vec::new();
    for profile in Profile::ALL {
        let costs = CryptoCosts::measure(profile);
        let sim = Simulation::new(config, costs);
        // The closed-form estimate (validated against the round-by-round
        // simulation in the test suite) keeps this example fast.
        let rounds = sim.analytic_rounds();
        let years = rounds * 15.0 / 60.0 / 24.0 / 365.0 / 4.0; // 15-min rounds
        println!(
            "{:<22} {:>9.2} {:>9.2} {:>14.0} {:>12.2} {:>10.0}",
            profile.label(),
            costs.kg_uj,
            costs.kp_uj,
            rounds,
            years,
            rounds / config.rekey_interval as f64
        );
        lifetimes.push((profile, rounds));
        let _ = max_rounds;
    }

    println!();
    let ours = lifetimes[0].1;
    let relic = lifetimes[2].1;
    println!(
        "at this duty cycle the radio dominates, so the ECC profile shifts lifetime by {:.1}%;",
        (ours / relic - 1.0) * 100.0
    );

    // Re-key-heavy duty cycle: key agreement per frame (e.g. pairwise
    // links to many neighbours).
    println!("\nre-key-per-frame duty cycle (pairwise links):\n");
    let config = NodeConfig {
        rekey_interval: 1,
        ..NodeConfig::default()
    };
    let mut heavy = Vec::new();
    for profile in Profile::ALL {
        let costs = CryptoCosts::measure(profile);
        let rounds = Simulation::new(config, costs).analytic_rounds();
        println!("{:<22} {:>14.0} rounds", profile.label(), rounds);
        heavy.push(rounds);
    }
    println!(
        "\nhere the paper's ~2.5x crypto-energy advantage buys x{:.2} node lifetime",
        heavy[0] / heavy[2]
    );
    println!("(the rest of the round budget is radio) — the \"node lifetime is directly");
    println!("influenced by the efficiency of its algorithms\" claim of the introduction,");
    println!("in numbers.");
}
