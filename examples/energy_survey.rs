//! Regenerates the paper's cross-platform energy survey (Table 4) and
//! the §3.1 binary-vs-prime model, then prints the abstract's headline
//! comparison.
//!
//! Run: `cargo run --release --example energy_survey`

fn main() {
    print!("{}", bench_free_table4());
    println!();
    print!("{}", model_summary());
}

// The bench crate owns the full regenerators; examples must only use
// the public library API, so this survey recomputes the essentials
// directly through `ecc233`.
fn bench_free_table4() -> String {
    use ecc233::literature;
    use ecc233::{Engine, Profile};
    use koblitz::{order, Int};

    let mut out = String::from("=== Energy survey (Table 4) ===\n");
    out += &format!(
        "{:<20} {:<22} {:<15} {:>9} {:>9}\n",
        "Platform", "Implementation", "Curve", "[ms]", "[µJ]"
    );
    for r in literature::table4_literature() {
        out += &format!(
            "{:<20} {:<22} {:<15} {:>9.1} {:>9.1}  {}{}\n",
            r.platform,
            r.author,
            r.curve,
            r.time_ms,
            r.energy_uj,
            r.kind.marker(),
            r.source.marker()
        );
    }
    let k = Int::from_hex(&"7e".repeat(29))
        .expect("valid hex")
        .mod_positive(&order());
    let ours_kg = Engine::new(Profile::ThisWorkAsm).mul_g(&k);
    let ours_kp = Engine::new(Profile::ThisWorkAsm).mul_point(&koblitz::generator(), &k);
    let relic_kg = Engine::new(Profile::RelicStyle).mul_g(&k);
    for (name, m) in [
        ("Relic kG/kP (model)", &relic_kg),
        ("This work kG (model)", &ours_kg),
        ("This work kP (model)", &ours_kp),
    ] {
        out += &format!(
            "{:<20} {:<22} {:<15} {:>9.2} {:>9.2}\n",
            "Cortex-M0+",
            name,
            "sect233k1",
            m.report.time_ms(),
            m.report.energy_uj()
        );
    }
    let best_other = literature::table4_literature()
        .iter()
        .map(|r| r.energy_uj)
        .fold(f64::INFINITY, f64::min);
    out += &format!(
        "\nheadline: our kP beats the best other-platform software row by ×{:.1} (paper: ≥ 3.3)\n",
        best_other / ours_kp.report.energy_uj()
    );
    out
}

fn model_summary() -> String {
    use ecc233::model;
    let mut out = String::from("=== Sec. 3.1 curve-selection model ===\n");
    let rows = model::evaluate_candidates();
    for r in &rows {
        out += &format!(
            "{:<30} mul {:>6} cyc   {:>6.2} pJ/cyc   point mul ≈ {:>9} cyc / {:>7.1} µJ\n",
            r.candidate.name,
            r.field_mul_cycles,
            r.energy_per_cycle_pj,
            r.point_mul_cycles,
            r.point_mul_energy_uj
        );
    }
    let c = model::conclusions(&rows);
    out += &format!(
        "conclusions: Koblitz fastest = {}, binary mix cheaper per cycle = {}\n",
        c.koblitz_is_fastest, c.binary_uses_less_power
    );
    out
}
