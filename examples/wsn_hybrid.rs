//! The paper's motivating scenario end to end: two wireless sensor
//! nodes establish a session key with ECDH over sect233k1 and then
//! stream AES-128-CTR-encrypted telemetry — the "hybrid cryptosystem"
//! of the introduction — with the energy budget of the key exchange
//! accounted on the Cortex-M0+ cost model and translated into battery
//! lifetime.
//!
//! Run: `cargo run --release --example wsn_hybrid`

use ecc233::{Engine, Profile};
use protocols::{Aes128, Keypair};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("--- WSN hybrid cryptosystem demo (sect233k1 + AES-128-CTR) ---\n");

    // 1. Key establishment.
    let node_a = Keypair::generate(b"node-a factory entropy");
    let node_b = Keypair::generate(b"node-b factory entropy");
    let secret_a = node_a.shared_secret(node_b.public())?;
    let secret_b = node_b.shared_secret(node_a.public())?;
    assert_eq!(secret_a, secret_b);
    println!("nodes agree on a 256-bit shared secret via ECDH");

    // 2. Telemetry under AES-128-CTR with the derived key.
    let key: [u8; 16] = secret_a[..16].try_into()?;
    let aes = Aes128::new(&key);
    let mut frame = b"frame 0001: temp=23.4C rh=41% vbat=2.97V".to_vec();
    let clear = frame.clone();
    aes.ctr_apply(&[0u8; 12], &mut frame);
    println!("encrypted frame: {}", hex(&frame));
    aes.ctr_apply(&[0u8; 12], &mut frame);
    assert_eq!(frame, clear);
    println!("receiver decrypts: {:?}\n", String::from_utf8_lossy(&frame));

    // 3. Energy accounting of the public-key part on the M0+ model.
    //    Per node: one kG (key generation) + one kP (shared secret).
    let engine = Engine::new(Profile::ThisWorkAsm);
    let kg = engine.mul_g(&node_a.secret().to_int());
    let kp = engine.mul_point(node_b.public(), &node_a.secret().to_int());
    let per_node_uj = kg.report.energy_uj() + kp.report.energy_uj();
    println!("per-node key-exchange energy on the Cortex-M0+ model:");
    println!(
        "  kG {:.2} µJ + kP {:.2} µJ = {:.2} µJ  (paper: 20.63 + 34.16 = 54.79 µJ)",
        kg.report.energy_uj(),
        kp.report.energy_uj(),
        per_node_uj
    );

    // 4. Node-lifetime view: a CR2032 coin cell holds about 2 340 J.
    let battery_j = 2340.0;
    let exchanges = battery_j / (per_node_uj * 1e-6);
    println!(
        "\na CR2032 (~{battery_j} J) funds ≈ {exchanges:.2e} key exchanges — the\n\
         public-key step is no longer the lifetime bottleneck, which is the\n\
         paper's headline argument for ECC on this class of node."
    );

    // 5. Contrast with the RELIC-style baseline.
    let relic = Engine::new(Profile::RelicStyle);
    let relic_uj = relic.mul_g(&node_a.secret().to_int()).report.energy_uj()
        + relic
            .mul_point(node_b.public(), &node_a.secret().to_int())
            .report
            .energy_uj();
    println!(
        "\nRELIC-style baseline needs {relic_uj:.2} µJ per node ({:.1}x more).",
        relic_uj / per_node_uj
    );
    Ok(())
}

fn hex(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}
