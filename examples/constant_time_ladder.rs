//! The paper's §5 (future work): a constant-time Montgomery-ladder
//! point multiplication. The wTNAF method's cycle count depends on the
//! scalar's digit pattern (a power side channel); the ladder performs
//! the same work for every bit — including a constant-time Itoh–Tsujii
//! inversion for the final conversion.
//!
//! This example demonstrates both halves of that claim on the cost
//! model: wTNAF cycle counts vary across scalars, the ladder's do not.
//!
//! Run: `cargo run --release --example constant_time_ladder`

use gf2m::modeled::Tier;
use koblitz::curve::generator;
use koblitz::modeled::ModeledMul;
use koblitz::{mul, order, Int};

fn main() {
    let g = generator();
    let scalars: Vec<Int> = [
        // A dense scalar, a sparse scalar, and a structured one.
        "7fffffffffffffffffffffffffffffffffffffffffffffffffffffff",
        "8000000000000000000000000000000000000000000000000001",
        "5555555555555555555555555555555555555555555555555555555",
    ]
    .iter()
    .map(|h| Int::from_hex(h).expect("valid hex").mod_positive(&order()))
    .collect();

    println!("wTNAF kP (variable time — the paper's §5 caveat):");
    let mut wtnaf_cycles = Vec::new();
    for k in &scalars {
        let mut mm = ModeledMul::new(Tier::Asm);
        let run = mm.kp(&g, k);
        println!("  k = {:>12}…  {} cycles", short(k), run.report.cycles);
        wtnaf_cycles.push(run.report.cycles);
    }
    let spread = wtnaf_cycles.iter().max().unwrap() - wtnaf_cycles.iter().min().unwrap();
    println!("  spread across scalars: {spread} cycles (observable by a power probe)\n");

    println!("Montgomery ladder kP (fixed 232 steps, Itoh–Tsujii conversion):");
    let mut ladder_cycles = Vec::new();
    for k in &scalars {
        let mut mm = ModeledMul::new(Tier::Asm);
        let run = mm.ladder(&g, k);
        assert_eq!(run.result, mul::montgomery_ladder(&g, k), "ladder check");
        assert_eq!(run.result, g.mul_binary(k), "group-law check");
        println!("  k = {:>12}…  {} cycles", short(k), run.report.cycles);
        ladder_cycles.push(run.report.cycles);
    }
    let spread = ladder_cycles.iter().max().unwrap() - ladder_cycles.iter().min().unwrap();
    println!("  spread across scalars: {spread} cycles");
    assert_eq!(spread, 0, "the ladder must be scalar-independent");
    println!(
        "\nthe ladder closes the timing channel at ~{:.1}x the wTNAF cost\n({:.2} ms and {:.2} µJ per kP at 48 MHz on the model)",
        *ladder_cycles.first().expect("non-empty") as f64 / wtnaf_cycles[0] as f64,
        *ladder_cycles.first().expect("non-empty") as f64 / 48e6 * 1e3,
        {
            let mut mm = ModeledMul::new(Tier::Asm);
            mm.ladder(&g, &scalars[0]).report.energy_uj()
        }
    );
}

fn short(k: &Int) -> String {
    format!("{k:x}").chars().take(12).collect()
}
