//! The §3.1 architecture-matching model: choosing a curve for the
//! Cortex-M0+.
//!
//! The paper built a model of "instruction usage, cycle count, and
//! energy usage of a specific curve", centred on the field
//! multiplication (the dominant routine), and drew two conclusions:
//!
//! 1. **Binary Koblitz curves lead to a faster implementation** — no
//!    point doublings (Frobenius instead) and cheap carry-free word
//!    arithmetic;
//! 2. **Binary curves need less power than prime curves** — binary
//!    field code is XOR/shift heavy while prime field code is MUL/ADD
//!    heavy, and Table 3 shows ADD to be the most energy-hungry
//!    instruction.
//!
//! This module reruns that analysis on the cost model: it measures the
//! instruction mix of the real multiplication kernels (binary F₂²³³ vs
//! prime Comba at three sizes) and derives cycle and energy estimates
//! for a full point multiplication of each candidate.

use gf2m::modeled::{ModeledField, Tier};
use gf2m::Fe;
use m0plus::{ClassCounts, EnergyModel, InstrClass, CLOCK_HZ};

/// The kind of underlying field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// Binary Koblitz curve arithmetic (XOR/shift mix, τ endomorphism).
    BinaryKoblitz,
    /// Prime curve arithmetic (MUL/ADD mix, real doublings).
    Prime,
}

/// One candidate evaluated by the model.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Display name.
    pub name: &'static str,
    /// Field kind.
    pub kind: FieldKind,
    /// Field size in bits.
    pub field_bits: usize,
    /// Approximate symmetric-equivalent security level.
    pub security_bits: usize,
}

/// The model's verdict for one candidate.
#[derive(Debug, Clone)]
pub struct ModelRow {
    /// The candidate being scored.
    pub candidate: Candidate,
    /// Measured cycles of one field multiplication kernel.
    pub field_mul_cycles: u64,
    /// Average energy per cycle of the kernel's instruction mix (pJ).
    pub energy_per_cycle_pj: f64,
    /// Estimated cycles for one full scalar multiplication.
    pub point_mul_cycles: u64,
    /// Estimated energy of one scalar multiplication (µJ).
    pub point_mul_energy_uj: f64,
}

impl ModelRow {
    /// Estimated average power in µW at the 48 MHz clock.
    pub fn average_power_uw(&self) -> f64 {
        self.energy_per_cycle_pj * CLOCK_HZ as f64 * 1e-6
    }

    /// Estimated execution time in milliseconds.
    pub fn time_ms(&self) -> f64 {
        self.point_mul_cycles as f64 / CLOCK_HZ as f64 * 1e3
    }
}

/// Measures the instruction mix of one binary-field multiplication
/// (assembly tier) and returns (cycles, mix).
fn binary_mul_profile() -> (u64, ClassCounts) {
    let mut f = ModeledField::new(Tier::Asm);
    let a =
        f.alloc_init(Fe::from_hex("1af129f22ff4149563a419c26bf50a4c9d6eefad6126").expect("const"));
    let b = f.alloc_init(Fe::from_hex("5a67c427a8cd9bf18aeb9b56e0c11056fae6a3").expect("const"));
    let z = f.alloc();
    let snap = f.machine().snapshot();
    f.mul(z, a, b);
    let report = f.machine().report_since(&snap);
    (report.cycles, report.counts)
}

/// Average energy per cycle of an instruction mix under `model`.
pub fn mix_energy_per_cycle(counts: &ClassCounts, model: &EnergyModel) -> f64 {
    let mut cycles = 0u64;
    let mut energy = 0.0;
    for (class, n) in counts.iter() {
        cycles += n * class.cycles();
        energy += n as f64 * model.picojoules_per_instr(class);
    }
    if cycles == 0 {
        0.0
    } else {
        energy / cycles as f64
    }
}

/// Evaluates the model for the paper's candidate set: the chosen
/// sect233k1 plus prime curves at comparable security levels.
pub fn evaluate_candidates() -> Vec<ModelRow> {
    let model = EnergyModel::cortex_m0plus();
    let mut rows = Vec::new();

    // Binary Koblitz candidate: sect233k1.
    {
        let (mul_cycles, mix) = binary_mul_profile();
        let epc = mix_energy_per_cycle(&mix, &model);
        // wTNAF(4) point multiplication: m Frobenius (3 squarings ≈
        // 0.33 mul-equivalents total) + m/5 mixed additions × 8 muls +
        // conversion ≈ m/5·8 + overheads; use the measured modeled
        // ratio: ~330 multiplications + ~890 squarings (≈ mul/9).
        let muls = 330u64;
        let sqrs = 890u64;
        let cycles = muls * mul_cycles + sqrs * (mul_cycles / 9) + 260_000 /* recoding, inversion, support */;
        rows.push(ModelRow {
            candidate: Candidate {
                name: "sect233k1 (binary Koblitz)",
                kind: FieldKind::BinaryKoblitz,
                field_bits: 233,
                security_bits: 112,
            },
            field_mul_cycles: mul_cycles,
            energy_per_cycle_pj: epc,
            point_mul_cycles: cycles,
            point_mul_energy_uj: cycles as f64 * epc * 1e-6,
        });
    }

    // Prime candidates.
    for (name, limbs, security) in [
        ("secp192r1 (prime)", 6usize, 96usize),
        ("secp224r1 (prime)", 7, 112),
        ("secp256r1 (prime)", 8, 128),
    ] {
        let mul_cycles = primefield::modeled::field_mul_cycles(limbs);
        let mix = primefield::modeled::field_mul_mix(limbs);
        let epc = mix_energy_per_cycle(&mix, &model);
        let cycles = primefield::modeled::point_mul_cycles(limbs);
        rows.push(ModelRow {
            candidate: Candidate {
                name,
                kind: FieldKind::Prime,
                field_bits: limbs * 32,
                security_bits: security,
            },
            field_mul_cycles: mul_cycles,
            energy_per_cycle_pj: epc,
            point_mul_cycles: cycles,
            point_mul_energy_uj: cycles as f64 * epc * 1e-6,
        });
    }
    rows
}

/// The model's two conclusions (§3.1), checked against the rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conclusions {
    /// Conclusion (1): the Koblitz candidate has the lowest
    /// point-multiplication cycle count at comparable security.
    pub koblitz_is_fastest: bool,
    /// Conclusion (2): the binary instruction mix uses less energy per
    /// cycle than every prime mix.
    pub binary_uses_less_power: bool,
}

/// Evaluates the conclusions over a candidate set.
pub fn conclusions(rows: &[ModelRow]) -> Conclusions {
    let binary: Vec<&ModelRow> = rows
        .iter()
        .filter(|r| r.candidate.kind == FieldKind::BinaryKoblitz)
        .collect();
    let prime: Vec<&ModelRow> = rows
        .iter()
        .filter(|r| r.candidate.kind == FieldKind::Prime)
        .collect();
    let koblitz_is_fastest = binary.iter().all(|b| {
        prime
            .iter()
            .filter(|p| p.candidate.security_bits >= b.candidate.security_bits)
            .all(|p| b.point_mul_cycles < p.point_mul_cycles)
    });
    let binary_uses_less_power = binary.iter().all(|b| {
        prime
            .iter()
            .all(|p| b.energy_per_cycle_pj < p.energy_per_cycle_pj)
    });
    Conclusions {
        koblitz_is_fastest,
        binary_uses_less_power,
    }
}

/// Convenience: the binary-mul instruction mix, for Table-3-style
/// analysis of which instructions dominate.
pub fn binary_mul_mix() -> ClassCounts {
    binary_mul_profile().1
}

/// Shares of the energy-relevant classes in a mix (for display).
pub fn mix_shares(counts: &ClassCounts) -> Vec<(InstrClass, f64)> {
    let total = counts.total() as f64;
    counts.iter().map(|(c, n)| (c, n as f64 / total)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_reproduces_both_section31_conclusions() {
        let rows = evaluate_candidates();
        let c = conclusions(&rows);
        assert!(c.koblitz_is_fastest, "conclusion (1) failed: {rows:#?}");
        assert!(c.binary_uses_less_power, "conclusion (2) failed");
    }

    #[test]
    fn binary_mix_is_xor_shift_heavy() {
        let mix = binary_mul_mix();
        let xor_shift =
            mix.count(InstrClass::Eor) + mix.count(InstrClass::Lsl) + mix.count(InstrClass::Lsr);
        let mul_add = mix.count(InstrClass::Mul) + mix.count(InstrClass::Add);
        assert!(
            xor_shift > 5 * mul_add,
            "binary mix: xor/shift {xor_shift} vs mul/add {mul_add}"
        );
    }

    #[test]
    fn prime_energy_per_cycle_exceeds_binary() {
        let rows = evaluate_candidates();
        let b = rows
            .iter()
            .find(|r| r.candidate.kind == FieldKind::BinaryKoblitz)
            .expect("binary row");
        for p in rows.iter().filter(|r| r.candidate.kind == FieldKind::Prime) {
            assert!(
                p.energy_per_cycle_pj > b.energy_per_cycle_pj,
                "{}: {} vs {}",
                p.candidate.name,
                p.energy_per_cycle_pj,
                b.energy_per_cycle_pj
            );
        }
    }

    #[test]
    fn estimated_energy_is_in_the_tens_of_microjoules() {
        // The whole point of the paper: tens of µJ per point
        // multiplication on this core, not thousands.
        let rows = evaluate_candidates();
        for r in &rows {
            assert!(
                r.point_mul_energy_uj > 5.0 && r.point_mul_energy_uj < 500.0,
                "{}: {} µJ",
                r.candidate.name,
                r.point_mul_energy_uj
            );
        }
    }

    #[test]
    fn power_estimates_are_near_600_uw() {
        let rows = evaluate_candidates();
        for r in &rows {
            let p = r.average_power_uw();
            assert!((450.0..750.0).contains(&p), "{}: {p} µW", r.candidate.name);
        }
    }
}
