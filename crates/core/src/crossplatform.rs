//! Cross-platform field-multiplication model: does the paper's
//! operation-count methodology explain the *other* rows of Table 5?
//!
//! The paper's Tables 1–2 count loads, stores, XORs and shifts for the
//! M0+ (32-bit words, w = 4 ⇒ 8 outer iterations). Here the same
//! accounting is generalised over word size and memory latency and
//! evaluated for every binary-field row of Table 5 — an out-of-sample
//! check of the model on platforms we did not build kernels for. The
//! predictions land within ~2× of the cited measurements (register
//! pressure, addressing modes and compiler quality differ per platform),
//! which is the fidelity such a first-order model can claim; the
//! regenerated table prints predicted vs cited side by side.

use gf2m::formulas::OpCounts;
use gf2m::modeled::{ModeledField, Tier};
use gf2m::Fe;
use m0plus::target::{registry, TargetModel, TargetSpec};
use m0plus::{ClassCounts, InstrClass};

/// A target platform for the generalised model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformModel {
    /// Display name.
    pub name: &'static str,
    /// Machine word size in bits.
    pub word_bits: u32,
    /// Cycles per memory access (load or store).
    pub mem_cycles: u64,
    /// Cycles per ALU operation.
    pub alu_cycles: u64,
}

/// The platforms of Table 5.
pub fn platforms() -> Vec<PlatformModel> {
    vec![
        PlatformModel {
            name: "ATMega128L",
            word_bits: 8,
            mem_cycles: 2,
            alu_cycles: 1,
        },
        PlatformModel {
            name: "MSP430X",
            word_bits: 16,
            mem_cycles: 3,
            alu_cycles: 1,
        },
        PlatformModel {
            name: "ARM7TDMI",
            word_bits: 32,
            mem_cycles: 3,
            alu_cycles: 1,
        },
        PlatformModel {
            name: "PXA271",
            word_bits: 32,
            mem_cycles: 2,
            alu_cycles: 1,
        },
        PlatformModel {
            name: "Cortex-M0+",
            word_bits: 32,
            mem_cycles: 2,
            alu_cycles: 1,
        },
    ]
}

/// Generalised López-Dahab-with-rotating-registers operation counts for
/// an m-bit field on a platform with `word_bits` words and window `w`:
/// the same event accounting as `gf2m::counted`, evaluated symbolically.
pub fn ld_rotating_counts(m_bits: u32, word_bits: u32, w: u32) -> OpCounts {
    let n = m_bits.div_ceil(word_bits) as u64;
    let outer = (word_bits / w) as u64;
    let two_n = 2 * n;
    // Table generation: 2^w entries of n words (T0 zeroed, T1 copied,
    // doublings and odd-adds as in counted_ld_table).
    let entries = 1u64 << w;
    let table_reads = n + (entries / 2 - 1) * (3 * n - 1);
    let table_writes = 2 * n + (entries - 2) * n;
    let table_xors = (entries - 2) * n;
    let table_shifts = (entries / 2 - 1) * 2 * n;
    // Main loop with the rotating window: per outer pass, fill (n+1
    // reads), per k: x read + n T reads, spill 1 write + 1 slide read;
    // write back n; inter-pass shift over 2n memory words.
    let main_reads = outer * ((n + 1) + n * (1 + n) + (n - 1));
    let main_writes = outer * (n + n) + two_n;
    let main_xors = outer * n * (1 + n);
    let main_shifts = outer * n + (outer - 1) * 2 * two_n;
    let shift_mem = (outer - 1) * two_n;
    OpCounts {
        reads: table_reads + main_reads + shift_mem,
        writes: table_writes + main_writes + shift_mem,
        xors: table_xors + main_xors + (outer - 1) * two_n,
        shifts: table_shifts + main_shifts,
    }
}

/// Predicted modular-multiplication cycles for `m_bits` on `platform`
/// (window chosen as w = 4, the common choice across the cited work).
pub fn predict_mul_cycles(platform: &PlatformModel, m_bits: u32) -> u64 {
    let ops = ld_rotating_counts(m_bits, platform.word_bits, 4);
    platform.mem_cycles * (ops.reads + ops.writes) + platform.alu_cycles * (ops.xors + ops.shifts)
}

/// One predicted-vs-cited comparison row.
#[derive(Debug, Clone)]
pub struct PredictionRow {
    /// Platform name.
    pub platform: &'static str,
    /// Field size in bits.
    pub m_bits: u32,
    /// Model prediction (cycles).
    pub predicted: u64,
    /// The measurement cited in Table 5 (cycles).
    pub cited: u64,
    /// Who measured it.
    pub source: &'static str,
}

impl PredictionRow {
    /// predicted / cited.
    pub fn ratio(&self) -> f64 {
        self.predicted as f64 / self.cited as f64
    }
}

/// Evaluates the model against every binary-field multiplication row of
/// Table 5.
pub fn predict_table5() -> Vec<PredictionRow> {
    let p = platforms();
    let find = |name: &str| *p.iter().find(|x| x.name == name).expect("known platform");
    let rows: [(&str, u32, u64, &str); 8] = [
        ("ATMega128L", 163, 4508, "Aranha et al. [7]"),
        ("ATMega128L", 233, 8314, "Aranha et al. [7]"),
        ("ATMega128L", 167, 5490, "Kargl et al. [14]"),
        ("MSP430X", 163, 3585, "Gouvea [10]"),
        ("MSP430X", 283, 8166, "Gouvea [10]"),
        ("ARM7TDMI", 228, 4359, "S. Erdem [8]"),
        ("ARM7TDMI", 256, 5398, "S. Erdem [8]"),
        ("PXA271", 271, 2025, "TinyPBC [20]"),
    ];
    rows.iter()
        .map(|&(name, m, cited, source)| PredictionRow {
            platform: name,
            m_bits: m,
            predicted: predict_mul_cycles(&find(name), m),
            cited,
            source,
        })
        .collect()
}

// ---------------------------------------------------------------------
// Registry-target re-costing: the generated (not cited) cross-core rows.
// ---------------------------------------------------------------------

/// One field kernel's per-class instruction counts, recorded once on
/// the modeled machine. The cost model is purely per-class — every
/// instruction of a class charges exactly `cycles[class]` and
/// `pj_per_cycle[class] × cycles[class]` — so re-pricing a recorded
/// count vector under another target's tables reproduces the cycle
/// total a machine built for that target would charge, without
/// replaying the kernel.
#[derive(Debug, Clone)]
pub struct RecordedCounts {
    /// Kernel label (`mul`, `sqr`, `inv`).
    pub kernel: &'static str,
    /// Per-class instruction counts of one call.
    pub counts: ClassCounts,
}

/// Records one call of each F₂²³³ field kernel (multiplication,
/// squaring, inversion) on `tier` and returns their per-class counts.
pub fn recorded_field_kernels(tier: Tier) -> Vec<RecordedCounts> {
    let mut f = ModeledField::new(tier);
    let a = f.alloc_init(
        Fe::from_hex("0123456789abcdef0123456789abcdef0123456789abcdef01234567").expect("hex"),
    );
    let b = f.alloc_init(
        Fe::from_hex("0fedcba9876543210fedcba9876543210fedcba9876543210fedcba9").expect("hex"),
    );
    let z = f.alloc();
    let capture =
        |name: &'static str, f: &mut ModeledField, body: &mut dyn FnMut(&mut ModeledField)| {
            let before = f.machine().counts().clone();
            body(f);
            RecordedCounts {
                kernel: name,
                counts: f.machine().counts().delta(&before),
            }
        };
    vec![
        capture("mul", &mut f, &mut |f| f.mul(z, a, b)),
        capture("sqr", &mut f, &mut |f| f.sqr(z, a)),
        capture("inv", &mut f, &mut |f| f.inv(z, a)),
    ]
}

/// One re-costed row: a recorded kernel priced under one registry
/// target.
#[derive(Debug, Clone)]
pub struct RecostRow {
    /// Registry target name.
    pub target: &'static str,
    /// Kernel label.
    pub kernel: &'static str,
    /// Total cycles under the target's cycle table.
    pub cycles: u64,
    /// Total energy under the target's tables, picojoules.
    pub energy_pj: f64,
}

/// Prices one recorded count vector under one target.
pub fn recost(counts: &ClassCounts, target: &TargetSpec) -> (u64, f64) {
    let mut cycles = 0u64;
    let mut energy_pj = 0.0f64;
    for c in InstrClass::ALL {
        let n = counts.count(c);
        let cyc = target.cycles(c);
        cycles += n * cyc;
        energy_pj += n as f64 * (target.pj_per_cycle(c) * cyc as f64);
    }
    (cycles, energy_pj)
}

/// The generated cross-target table: every registry target × every
/// recorded field kernel, re-costed from the recorded counts. This is
/// what replaced the cited-constant rows — the numbers are *derived*
/// from the kernels this repository actually executes.
pub fn recost_rows() -> Vec<RecostRow> {
    let kernels = recorded_field_kernels(Tier::Asm);
    let mut rows = Vec::new();
    for target in registry() {
        for k in &kernels {
            let (cycles, energy_pj) = recost(&k.counts, target);
            rows.push(RecostRow {
                target: target.name(),
                kernel: k.kernel,
                cycles,
                energy_pj,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m0plus_prediction_is_consistent_with_our_own_tables() {
        // The generalised accounting at (233, 32, 4) must land near the
        // specialised Table-2 numbers (rotating ≈ 3.5k main + ~1k table).
        let m0 = platforms().pop().expect("non-empty");
        assert_eq!(m0.name, "Cortex-M0+");
        let cycles = predict_mul_cycles(&m0, 233);
        assert!(
            (3_000..6_500).contains(&cycles),
            "predicted {cycles} for the home platform"
        );
    }

    #[test]
    fn predictions_track_cited_measurements_within_first_order() {
        for row in predict_table5() {
            let r = row.ratio();
            assert!(
                (0.35..2.8).contains(&r),
                "{} F_2^{}: predicted {} vs cited {} (ratio {r:.2})",
                row.platform,
                row.m_bits,
                row.predicted,
                row.cited
            );
        }
    }

    #[test]
    fn smaller_words_cost_more() {
        // The dominant term is outer·n² = m²/(w·W): the 8-bit AVR pays
        // ≈ 32/8 = 4× the word operations of a 32-bit core for the same
        // field, diluted by the lower-order terms.
        let avr = predict_mul_cycles(&platforms()[0], 233);
        let m0 = predict_mul_cycles(&platforms()[4], 233);
        let ratio = avr as f64 / m0 as f64;
        assert!((2.0..8.0).contains(&ratio), "ratio {ratio:.1}");
    }

    #[test]
    fn counts_grow_with_field_size() {
        let p = platforms()[4];
        assert!(predict_mul_cycles(&p, 283) > predict_mul_cycles(&p, 233));
        assert!(predict_mul_cycles(&p, 233) > predict_mul_cycles(&p, 163));
    }

    fn rows_for<'a>(rows: &'a [RecostRow], target: &str) -> Vec<&'a RecostRow> {
        rows.iter().filter(|r| r.target == target).collect()
    }

    #[test]
    fn recost_covers_every_registry_target() {
        let rows = recost_rows();
        let non_default: Vec<_> = registry()
            .iter()
            .filter(|t| t.name() != "cortex-m0plus")
            .collect();
        assert!(non_default.len() >= 3, "registry too small");
        for t in registry() {
            let mine = rows_for(&rows, t.name());
            assert_eq!(mine.len(), 3, "{}: mul/sqr/inv rows", t.name());
            for r in mine {
                assert!(r.cycles > 0 && r.energy_pj > 0.0, "{:?}", r);
            }
        }
    }

    #[test]
    fn m0_is_never_cheaper_and_costs_more_where_branches_live() {
        // The M0's only differences are taken-branch (3) and BL (4):
        // every kernel re-costs ≥ the M0+, and the branch-heavy EEA
        // inversion strictly more.
        let rows = recost_rows();
        let m0p = rows_for(&rows, "cortex-m0plus");
        let m0 = rows_for(&rows, "cortex-m0");
        for (a, b) in m0p.iter().zip(&m0) {
            assert_eq!(a.kernel, b.kernel);
            assert!(
                b.cycles >= a.cycles,
                "{}: M0 {} < M0+ {}",
                a.kernel,
                b.cycles,
                a.cycles
            );
        }
        let inv_m0p = m0p.iter().find(|r| r.kernel == "inv").expect("inv row");
        let inv_m0 = m0.iter().find(|r| r.kernel == "inv").expect("inv row");
        assert!(
            inv_m0.cycles > inv_m0p.cycles,
            "EEA inversion must pay the 3-cycle taken branches"
        );
    }

    #[test]
    fn mul32_leaves_binary_field_kernels_untouched() {
        // F₂²³³ arithmetic is shift/XOR only — no MULS retires — so the
        // iterative-multiplier target re-costs bit-identically.
        let kernels = recorded_field_kernels(Tier::Asm);
        let m0p = m0plus::target::cortex_m0plus();
        let mul32 = m0plus::target::cortex_m0plus_mul32();
        for k in &kernels {
            assert_eq!(
                k.counts.count(InstrClass::Mul),
                0,
                "{} retires MULS",
                k.kernel
            );
            let (c_a, e_a) = recost(&k.counts, m0p);
            let (c_b, e_b) = recost(&k.counts, mul32);
            assert_eq!(c_a, c_b, "{}", k.kernel);
            assert_eq!(e_a.to_bits(), e_b.to_bits(), "{}", k.kernel);
        }
    }

    #[test]
    fn recost_matches_an_actual_run_on_the_target() {
        // Re-pricing recorded counts is exact for cycles (the model is
        // purely per-class); check against a machine actually built for
        // the M0 — and that the architectural result is
        // target-invariant.
        let a_fe =
            Fe::from_hex("0123456789abcdef0123456789abcdef0123456789abcdef01234567").unwrap();
        let b_fe =
            Fe::from_hex("0fedcba9876543210fedcba9876543210fedcba9876543210fedcba9").unwrap();
        let run = |target: &'static TargetSpec| {
            let mut f = ModeledField::with_target(Tier::Asm, target);
            let a = f.alloc_init(a_fe);
            let b = f.alloc_init(b_fe);
            let z = f.alloc();
            let before = f.machine().cycles();
            f.mul(z, a, b);
            (f.load(z), f.machine().cycles() - before)
        };
        let (z_m0p, cycles_m0p) = run(m0plus::target::cortex_m0plus());
        let (z_m0, cycles_m0) = run(m0plus::target::cortex_m0());
        assert_eq!(z_m0p, z_m0, "result must be target-invariant");
        let rows = recost_rows();
        let find = |t: &str| {
            rows.iter()
                .find(|r| r.target == t && r.kernel == "mul")
                .expect("mul row")
                .cycles
        };
        assert_eq!(find("cortex-m0plus"), cycles_m0p);
        assert_eq!(find("cortex-m0"), cycles_m0);
    }
}
