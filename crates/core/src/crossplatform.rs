//! Cross-platform field-multiplication model: does the paper's
//! operation-count methodology explain the *other* rows of Table 5?
//!
//! The paper's Tables 1–2 count loads, stores, XORs and shifts for the
//! M0+ (32-bit words, w = 4 ⇒ 8 outer iterations). Here the same
//! accounting is generalised over word size and memory latency and
//! evaluated for every binary-field row of Table 5 — an out-of-sample
//! check of the model on platforms we did not build kernels for. The
//! predictions land within ~2× of the cited measurements (register
//! pressure, addressing modes and compiler quality differ per platform),
//! which is the fidelity such a first-order model can claim; the
//! regenerated table prints predicted vs cited side by side.

use gf2m::formulas::OpCounts;

/// A target platform for the generalised model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformModel {
    /// Display name.
    pub name: &'static str,
    /// Machine word size in bits.
    pub word_bits: u32,
    /// Cycles per memory access (load or store).
    pub mem_cycles: u64,
    /// Cycles per ALU operation.
    pub alu_cycles: u64,
}

/// The platforms of Table 5.
pub fn platforms() -> Vec<PlatformModel> {
    vec![
        PlatformModel {
            name: "ATMega128L",
            word_bits: 8,
            mem_cycles: 2,
            alu_cycles: 1,
        },
        PlatformModel {
            name: "MSP430X",
            word_bits: 16,
            mem_cycles: 3,
            alu_cycles: 1,
        },
        PlatformModel {
            name: "ARM7TDMI",
            word_bits: 32,
            mem_cycles: 3,
            alu_cycles: 1,
        },
        PlatformModel {
            name: "PXA271",
            word_bits: 32,
            mem_cycles: 2,
            alu_cycles: 1,
        },
        PlatformModel {
            name: "Cortex-M0+",
            word_bits: 32,
            mem_cycles: 2,
            alu_cycles: 1,
        },
    ]
}

/// Generalised López-Dahab-with-rotating-registers operation counts for
/// an m-bit field on a platform with `word_bits` words and window `w`:
/// the same event accounting as `gf2m::counted`, evaluated symbolically.
pub fn ld_rotating_counts(m_bits: u32, word_bits: u32, w: u32) -> OpCounts {
    let n = m_bits.div_ceil(word_bits) as u64;
    let outer = (word_bits / w) as u64;
    let two_n = 2 * n;
    // Table generation: 2^w entries of n words (T0 zeroed, T1 copied,
    // doublings and odd-adds as in counted_ld_table).
    let entries = 1u64 << w;
    let table_reads = n + (entries / 2 - 1) * (3 * n - 1);
    let table_writes = 2 * n + (entries - 2) * n;
    let table_xors = (entries - 2) * n;
    let table_shifts = (entries / 2 - 1) * 2 * n;
    // Main loop with the rotating window: per outer pass, fill (n+1
    // reads), per k: x read + n T reads, spill 1 write + 1 slide read;
    // write back n; inter-pass shift over 2n memory words.
    let main_reads = outer * ((n + 1) + n * (1 + n) + (n - 1));
    let main_writes = outer * (n + n) + two_n;
    let main_xors = outer * n * (1 + n);
    let main_shifts = outer * n + (outer - 1) * 2 * two_n;
    let shift_mem = (outer - 1) * two_n;
    OpCounts {
        reads: table_reads + main_reads + shift_mem,
        writes: table_writes + main_writes + shift_mem,
        xors: table_xors + main_xors + (outer - 1) * two_n,
        shifts: table_shifts + main_shifts,
    }
}

/// Predicted modular-multiplication cycles for `m_bits` on `platform`
/// (window chosen as w = 4, the common choice across the cited work).
pub fn predict_mul_cycles(platform: &PlatformModel, m_bits: u32) -> u64 {
    let ops = ld_rotating_counts(m_bits, platform.word_bits, 4);
    platform.mem_cycles * (ops.reads + ops.writes) + platform.alu_cycles * (ops.xors + ops.shifts)
}

/// One predicted-vs-cited comparison row.
#[derive(Debug, Clone)]
pub struct PredictionRow {
    /// Platform name.
    pub platform: &'static str,
    /// Field size in bits.
    pub m_bits: u32,
    /// Model prediction (cycles).
    pub predicted: u64,
    /// The measurement cited in Table 5 (cycles).
    pub cited: u64,
    /// Who measured it.
    pub source: &'static str,
}

impl PredictionRow {
    /// predicted / cited.
    pub fn ratio(&self) -> f64 {
        self.predicted as f64 / self.cited as f64
    }
}

/// Evaluates the model against every binary-field multiplication row of
/// Table 5.
pub fn predict_table5() -> Vec<PredictionRow> {
    let p = platforms();
    let find = |name: &str| *p.iter().find(|x| x.name == name).expect("known platform");
    let rows: [(&str, u32, u64, &str); 8] = [
        ("ATMega128L", 163, 4508, "Aranha et al. [7]"),
        ("ATMega128L", 233, 8314, "Aranha et al. [7]"),
        ("ATMega128L", 167, 5490, "Kargl et al. [14]"),
        ("MSP430X", 163, 3585, "Gouvea [10]"),
        ("MSP430X", 283, 8166, "Gouvea [10]"),
        ("ARM7TDMI", 228, 4359, "S. Erdem [8]"),
        ("ARM7TDMI", 256, 5398, "S. Erdem [8]"),
        ("PXA271", 271, 2025, "TinyPBC [20]"),
    ];
    rows.iter()
        .map(|&(name, m, cited, source)| PredictionRow {
            platform: name,
            m_bits: m,
            predicted: predict_mul_cycles(&find(name), m),
            cited,
            source,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m0plus_prediction_is_consistent_with_our_own_tables() {
        // The generalised accounting at (233, 32, 4) must land near the
        // specialised Table-2 numbers (rotating ≈ 3.5k main + ~1k table).
        let m0 = platforms().pop().expect("non-empty");
        assert_eq!(m0.name, "Cortex-M0+");
        let cycles = predict_mul_cycles(&m0, 233);
        assert!(
            (3_000..6_500).contains(&cycles),
            "predicted {cycles} for the home platform"
        );
    }

    #[test]
    fn predictions_track_cited_measurements_within_first_order() {
        for row in predict_table5() {
            let r = row.ratio();
            assert!(
                (0.35..2.8).contains(&r),
                "{} F_2^{}: predicted {} vs cited {} (ratio {r:.2})",
                row.platform,
                row.m_bits,
                row.predicted,
                row.cited
            );
        }
    }

    #[test]
    fn smaller_words_cost_more() {
        // The dominant term is outer·n² = m²/(w·W): the 8-bit AVR pays
        // ≈ 32/8 = 4× the word operations of a 32-bit core for the same
        // field, diluted by the lower-order terms.
        let avr = predict_mul_cycles(&platforms()[0], 233);
        let m0 = predict_mul_cycles(&platforms()[4], 233);
        let ratio = avr as f64 / m0 as f64;
        assert!((2.0..8.0).contains(&ratio), "ratio {ratio:.1}");
    }

    #[test]
    fn counts_grow_with_field_size() {
        let p = platforms()[4];
        assert!(predict_mul_cycles(&p, 283) > predict_mul_cycles(&p, 233));
        assert!(predict_mul_cycles(&p, 233) > predict_mul_cycles(&p, 163));
    }
}
