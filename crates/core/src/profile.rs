//! Implementation profiles and the [`Engine`] facade.
//!
//! A [`Profile`] selects one of the implementations the paper measures
//! on the Cortex-M0+; the [`Engine`] runs point multiplications under
//! that profile on the cost model and returns both the point and the
//! measurement report.

use koblitz::curve::Affine;
use koblitz::modeled::{ModeledMul, PointMulRun};
use koblitz::mul::{KG_WINDOW, KP_WINDOW};
use koblitz::Int;
use m0plus::RunReport;

pub use gf2m::modeled::{KernelFootprint, Tier};
pub use m0plus::Backend;

/// One of the sect233k1 software implementations compared in §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Profile {
    /// The paper's proposed implementation: assembly field arithmetic
    /// (LD with fixed registers), wTNAF w = 4 for kP and w = 6 with an
    /// offline table for kG.
    ThisWorkAsm,
    /// The same algorithms with C-tier (compiler-like) field arithmetic
    /// — the "C language" column of Table 6.
    ThisWorkC,
    /// The RELIC-toolkit baseline of §4.2.1: generic-library C field
    /// arithmetic, wTNAF w = 4 with online precomputation for both kP
    /// and kG.
    RelicStyle,
}

impl Profile {
    /// All profiles, fastest first.
    pub const ALL: [Profile; 3] = [
        Profile::ThisWorkAsm,
        Profile::ThisWorkC,
        Profile::RelicStyle,
    ];

    /// Display label matching the paper's Table 4 rows.
    pub const fn label(self) -> &'static str {
        match self {
            Profile::ThisWorkAsm => "This work",
            Profile::ThisWorkC => "This work (C only)",
            Profile::RelicStyle => "Relic",
        }
    }

    /// The field-arithmetic tier this profile runs.
    pub fn tier(self) -> Tier {
        match self {
            Profile::ThisWorkAsm => Tier::Asm,
            Profile::ThisWorkC => Tier::C,
            Profile::RelicStyle => Tier::RelicC,
        }
    }
}

impl std::fmt::Display for Profile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A measured point multiplication: the result and the rig report.
#[derive(Debug, Clone)]
pub struct Measured {
    /// The computed point.
    pub point: Affine,
    /// Cycles, energy, power, per-category split.
    pub report: RunReport,
    /// Per-kernel flash footprints from the assembled machine code.
    /// Empty under [`Backend::Direct`]; under [`Backend::Code`] one
    /// entry per kernel entry point exercised by the run.
    pub flash: Vec<(&'static str, KernelFootprint)>,
}

impl Measured {
    /// Total flash a build holding every exercised kernel would need
    /// (sum of per-kernel maxima; 0 under [`Backend::Direct`]).
    pub fn total_flash_bytes(&self) -> usize {
        self.flash.iter().map(|(_, fp)| fp.flash_bytes).sum()
    }
}

impl From<PointMulRun> for Measured {
    fn from(run: PointMulRun) -> Measured {
        Measured {
            point: run.result,
            report: run.report,
            flash: Vec::new(),
        }
    }
}

/// Converts a finished run plus the multiplier that produced it into a
/// [`Measured`], harvesting the code backend's flash report.
fn measured(run: PointMulRun, mm: &ModeledMul) -> Measured {
    let flash = mm
        .field()
        .flash_report()
        .iter()
        .map(|(&name, &fp)| (name, fp))
        .collect();
    Measured {
        point: run.result,
        report: run.report,
        flash,
    }
}

/// The measurement engine: runs the paper's operations under a selected
/// [`Profile`] on the Cortex-M0+ cost model.
///
/// ```
/// use ecc233::{Engine, Profile};
/// use koblitz::Int;
///
/// let engine = Engine::new(Profile::ThisWorkAsm);
/// let k = Int::from_hex("123456789abcdef")?;
/// let m = engine.mul_g(&k);
/// assert!(!m.point.is_infinity());
/// assert!(m.report.cycles > 0);
/// # Ok::<(), koblitz::int::ParseIntError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Engine {
    profile: Profile,
    backend: Backend,
    target: &'static m0plus::TargetSpec,
}

impl Engine {
    /// Creates an engine for `profile` on the direct backend and the
    /// default target (`cortex-m0plus`, the paper's platform).
    pub fn new(profile: Profile) -> Engine {
        Engine::with_backend(profile, Backend::Direct)
    }

    /// Creates an engine for `profile` on an explicit execution
    /// backend. Under [`Backend::Code`] every charged kernel runs from
    /// assembled Thumb-16 machine code and [`Measured::flash`] reports
    /// per-kernel flash footprints.
    pub fn with_backend(profile: Profile, backend: Backend) -> Engine {
        Engine {
            profile,
            backend,
            target: m0plus::target::default_target(),
        }
    }

    /// Creates an engine costed for a [`m0plus::target`] registry entry
    /// (direct backend). With the default target this is bit-identical
    /// to [`Engine::new`].
    pub fn with_target(profile: Profile, target: &'static m0plus::TargetSpec) -> Engine {
        Engine {
            profile,
            backend: Backend::Direct,
            target,
        }
    }

    /// The selected profile.
    pub fn profile(&self) -> Profile {
        self.profile
    }

    /// The selected execution backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The target cost model the runs are priced under.
    pub fn target(&self) -> &'static m0plus::TargetSpec {
        self.target
    }

    fn multiplier(&self) -> ModeledMul {
        ModeledMul::with_target_and_backend(self.profile.tier(), self.target, self.backend)
    }

    /// Fixed-point multiplication k·G with measurement.
    pub fn mul_g(&self, k: &Int) -> Measured {
        let mut mm = self.multiplier();
        let run = match self.profile {
            Profile::RelicStyle => {
                // RELIC's generic fixed-point path: same as kP with the
                // generator (online precomputation, w = 4).
                mm.run(&koblitz::generator(), k, KP_WINDOW, true)
            }
            _ => mm.run(&koblitz::generator(), k, KG_WINDOW, false),
        };
        measured(run, &mm)
    }

    /// Random-point multiplication k·P with measurement.
    pub fn mul_point(&self, p: &Affine, k: &Int) -> Measured {
        let mut mm = self.multiplier();
        let run = mm.run(p, k, KP_WINDOW, true);
        measured(run, &mm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koblitz::order;

    fn scalar() -> Int {
        Int::from_hex(&"5c".repeat(29))
            .unwrap()
            .mod_positive(&order())
    }

    #[test]
    fn profiles_order_by_speed() {
        let k = scalar();
        let cycles: Vec<u64> = Profile::ALL
            .iter()
            .map(|&p| Engine::new(p).mul_g(&k).report.cycles)
            .collect();
        assert!(
            cycles[0] < cycles[1] && cycles[1] < cycles[2],
            "expected asm < C < RELIC, got {cycles:?}"
        );
    }

    #[test]
    fn all_profiles_compute_the_same_point() {
        let k = scalar();
        let want = koblitz::mul::mul_g(&k);
        for p in Profile::ALL {
            assert_eq!(Engine::new(p).mul_g(&k).point, want, "{p}");
        }
    }

    #[test]
    fn this_work_beats_relic_by_about_2x_kp() {
        // §4.2.2: "our random point implementation is 1.99 times faster".
        let k = scalar();
        let g = koblitz::generator();
        let ours = Engine::new(Profile::ThisWorkAsm).mul_point(&g, &k);
        let relic = Engine::new(Profile::RelicStyle).mul_point(&g, &k);
        let ratio = relic.report.cycles as f64 / ours.report.cycles as f64;
        assert!(
            (1.5..2.6).contains(&ratio),
            "kP speedup {ratio:.2} (paper: 1.99)"
        );
    }

    #[test]
    fn this_work_beats_relic_by_about_3x_kg() {
        // §4.2.2: "our fixed point implementation is 2.98 times faster".
        let k = scalar();
        let ours = Engine::new(Profile::ThisWorkAsm).mul_g(&k);
        let relic = Engine::new(Profile::RelicStyle).mul_g(&k);
        let ratio = relic.report.cycles as f64 / ours.report.cycles as f64;
        assert!(
            (2.0..3.5).contains(&ratio),
            "kG speedup {ratio:.2} (paper: 2.98)"
        );
    }

    #[test]
    fn code_backend_engine_matches_direct_and_reports_flash() {
        let k = scalar();
        let direct = Engine::new(Profile::ThisWorkAsm).mul_g(&k);
        let code = Engine::with_backend(Profile::ThisWorkAsm, Backend::Code).mul_g(&k);
        assert_eq!(code.point, direct.point);
        assert_eq!(code.report.cycles, direct.report.cycles);
        assert!(direct.flash.is_empty());
        assert_eq!(direct.total_flash_bytes(), 0);
        assert!(!code.flash.is_empty());
        // The resident kernel set of a kG is dominated by the unrolled
        // multiplier; the total should be in the kilobytes, not pathological.
        let total = code.total_flash_bytes();
        assert!((1_000..2_000_000).contains(&total), "flash = {total}");
    }

    #[test]
    fn kg_is_cheaper_than_kp_under_this_work() {
        let k = scalar();
        let e = Engine::new(Profile::ThisWorkAsm);
        let kg = e.mul_g(&k);
        let kp = e.mul_point(&koblitz::generator(), &k);
        assert!(kg.report.cycles < kp.report.cycles);
        assert!(kg.report.energy_uj() < kp.report.energy_uj());
    }
}
