//! Public engine API of the DAC'14 reproduction.
//!
//! This crate is the front door of the system: it ties the Cortex-M0+
//! cost model ([`m0plus`]), the binary field ([`gf2m`]), the Koblitz
//! curve layer ([`koblitz`]) and the prime baseline ([`primefield`])
//! into the three implementation profiles the paper measures, exposes
//! the §3.1 curve-selection model, and carries the literature dataset
//! of Tables 4–5 for the benchmark harness.
//!
//! * [`Engine`] / [`Profile`] — run kG / kP under *This work (asm)*,
//!   *This work (C)* or the *RELIC-style* baseline and get the cycle,
//!   energy and power report the paper's measurement rig would print.
//! * [`model`] — the architecture-matching analysis: binary Koblitz vs
//!   prime candidates by instruction mix and energy.
//! * [`literature`] — the cited comparison rows.
//! * [`crossplatform`] — the generalised op-count model evaluated
//!   against the other platforms of Table 5.
//!
//! # Example
//!
//! ```
//! use ecc233::{Engine, Profile};
//! use koblitz::Int;
//!
//! let k = Int::from_hex("6e3a7f")?;
//! let ours = Engine::new(Profile::ThisWorkAsm).mul_g(&k);
//! let relic = Engine::new(Profile::RelicStyle).mul_g(&k);
//! assert_eq!(ours.point, relic.point);
//! assert!(ours.report.cycles < relic.report.cycles);
//! # Ok::<(), koblitz::int::ParseIntError>(())
//! ```

pub mod crossplatform;
pub mod literature;
pub mod model;
pub mod profile;

pub use profile::{Engine, Measured, Profile, Tier};
