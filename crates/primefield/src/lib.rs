//! Prime-field ECC baseline for the DAC'14 reproduction.
//!
//! The paper argues (§3.1) that on the Cortex-M0+ a *binary* Koblitz
//! curve beats a *prime* curve of equivalent security both in cycles and
//! in energy per cycle, and its Table 4 compares against several
//! prime-curve implementations (Micro ECC, MIRACL, NanoECC, Wenger et
//! al.). This crate supplies that baseline from scratch:
//!
//! * [`field`] — generic F_p on 32-bit limbs with Montgomery (CIOS)
//!   multiplication and Fermat inversion;
//! * [`curve`] — short-Weierstrass curves with Jacobian arithmetic and
//!   double-and-add scalar multiplication;
//! * [`curves`] — secp160r1, secp192r1, secp224r1 and secp256r1 (every
//!   prime curve named in Table 4), each validated at construction;
//! * [`modeled`] — the machine-modeled Comba multiplication kernel that
//!   feeds the §3.1 instruction-mix model and the regenerated prime
//!   rows of Table 4.
//!
//! # Example
//!
//! ```
//! use primefield::curves;
//! let curve = curves::secp192r1();
//! let g = curve.generator();
//! let mut k = [0u32; 8];
//! k[0] = 42;
//! let p = curve.mul(&g, &k);
//! assert!(curve.is_on_curve(&p));
//! ```

pub mod curve;
pub mod curves;
pub mod field;
pub mod modeled;

pub use curve::{Curve, PfPoint};
pub use field::PrimeField;
