//! The SEC 2 prime curves appearing in the paper's Table 4.
//!
//! Every constructor validates its base point against the curve
//! equation, and the test suite additionally checks n·G = ∞, so a
//! transcription error in any constant cannot survive `cargo test`.

use crate::curve::Curve;

/// secp160r1 — the "P-160" of the NanoECC row (MSP430F1611).
pub fn secp160r1() -> Curve {
    Curve::new(
        "secp160r1",
        "ffffffffffffffffffffffffffffffff7fffffff",
        "1c97befc54bd7a8b65acf89f81d4d4adc565fa45",
        "4a96b5688ef573284664698968c38bb913cbfc82",
        "23a628553168947d59dcc912042351377ac5fb32",
        "0100000000000000000001f4c8f927aed3ca752257",
    )
}

/// secp192r1 — the MIRACL/ARM7TDMI and Micro ECC/Cortex-M0 rows.
pub fn secp192r1() -> Curve {
    Curve::new(
        "secp192r1",
        "fffffffffffffffffffffffffffffffeffffffffffffffff",
        "64210519e59c80e70fa7e9ab72243049feb8deecc146b9b1",
        "188da80eb03090f67cbf20eb43a18800f4ff0afd82ff1012",
        "07192b95ffc8da78631011ed6b24cdd573f977a11e794811",
        "ffffffffffffffffffffffff99def836146bc9b1b4d22831",
    )
}

/// secp224r1 — the MIRACL/ARM7TDMI and Wenger et al./Cortex-M0+ rows.
pub fn secp224r1() -> Curve {
    Curve::new(
        "secp224r1",
        "ffffffffffffffffffffffffffffffff000000000000000000000001",
        "b4050a850c04b3abf54132565044b0b7d7bfd8ba270b39432355ffb4",
        "b70e0cbd6bb4bf7f321390b94a03c1d356c21122343280d6115c1d21",
        "bd376388b5f723fb4c22dfe6cd4375a05a07476444d5819985007e34",
        "ffffffffffffffffffffffffffff16a2e0b8f03e13dd29455c5c2a3d",
    )
}

/// secp256r1 — the Micro ECC/Cortex-M0 256-bit row.
pub fn secp256r1() -> Curve {
    Curve::new(
        "secp256r1",
        "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff",
        "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b",
        "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296",
        "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5",
        "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551",
    )
}

/// All baseline curves, smallest first.
pub fn all() -> Vec<Curve> {
    vec![secp160r1(), secp192r1(), secp224r1(), secp256r1()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_sizes() {
        assert_eq!(secp160r1().field.bits(), 160);
        assert_eq!(secp192r1().field.bits(), 192);
        assert_eq!(secp224r1().field.bits(), 224);
        assert_eq!(secp256r1().field.bits(), 256);
        // secp160r1's order is famously 161 bits.
        assert_eq!(secp160r1().order_bits(), 161);
        assert_eq!(secp256r1().order_bits(), 256);
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<_> = all().iter().map(|c| c.name).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
    }
}
