//! Machine-modeled prime-field multiplication kernel.
//!
//! Supplies the prime side of the paper's §3.1 architecture-matching
//! model and the regenerated prime rows of Table 4: a product-scanning
//! (Comba) multi-precision multiplication over 16-bit half-limbs — the
//! only multiplication ARMv6-M offers is the 32×32→32 `MULS`, so every
//! 32×32→64 limb product costs four `MULS` plus recombination, which is
//! the fundamental reason prime-field arithmetic is both slower and more
//! ADD-heavy (and ADD is the most energy-hungry instruction, Table 3)
//! than binary-field arithmetic on this core.

// Multi-precision schoolbook loops are clearest with explicit indices.
#![allow(clippy::needless_range_loop)]

use m0plus::{Category, Cond, Machine, Reg, RunReport, Snapshot};

/// Runs the modeled Comba product of two `limbs`-limb values written in
/// machine RAM, returning the measured report. The product is computed
/// for real (over 16-bit digits) and verified against host arithmetic.
pub fn comba_product(m: &mut Machine, a: &[u32], b: &[u32]) -> (Vec<u32>, RunReport) {
    assert_eq!(a.len(), b.len(), "operands must have equal limb counts");
    let l = a.len();
    let snap: Snapshot = m.snapshot();

    // Operands as 16-bit digits in RAM; accumulator of 4L digits.
    let digits = 2 * l;
    let da = m.alloc(digits);
    let db = m.alloc(digits);
    let acc = m.alloc(2 * digits + 1);
    let split = |v: &[u32]| -> Vec<u32> {
        v.iter()
            .flat_map(|&w| [w & 0xFFFF, w >> 16])
            .collect::<Vec<_>>()
    };
    m.write_slice(da, &split(a));
    m.write_slice(db, &split(b));
    m.write_slice(acc, &vec![0u32; 2 * digits + 1]);

    m.in_category(Category::Multiply, |m| {
        m.bl();
        m.stack_transfer(5);
        m.set_base(Reg::R0, da);
        m.set_base(Reg::R1, db);
        m.set_base(Reg::R2, acc);
        // Schoolbook over digits with immediate carry propagation: the
        // digit product fits 32 bits, so each (i, j) is one MULS plus an
        // add-with-carry chain of at most two more digits.
        for i in 0..digits as u32 {
            m.ldr(Reg::R4, Reg::R0, i);
            for j in 0..digits as u32 {
                m.ldr(Reg::R5, Reg::R1, j);
                m.muls(Reg::R5, Reg::R4);
                // acc[i+j] += lo16(prod); acc[i+j+1] += hi16(prod) + c.
                m.uxth(Reg::R6, Reg::R5);
                m.lsrs_imm(Reg::R7, Reg::R5, 16);
                m.ldr(Reg::R3, Reg::R2, i + j);
                m.adds(Reg::R3, Reg::R3, Reg::R6);
                m.str(Reg::R3, Reg::R2, i + j);
                m.ldr(Reg::R3, Reg::R2, i + j + 1);
                m.adds(Reg::R3, Reg::R3, Reg::R7);
                m.str(Reg::R3, Reg::R2, i + j + 1);
                // Inner loop control.
                m.adds_imm(Reg::R6, 1);
                m.cmp_imm(Reg::R6, digits as u8);
                m.b_cond(Cond::Ne);
            }
            m.adds_imm(Reg::R7, 1);
            m.cmp_imm(Reg::R7, digits as u8);
            m.b_cond(Cond::Ne);
        }
        // Digit-carry normalisation pass: each accumulator digit may
        // exceed 16 bits; push the excess upward once.
        for d in 0..(2 * digits) as u32 {
            m.ldr(Reg::R4, Reg::R2, d);
            m.lsrs_imm(Reg::R5, Reg::R4, 16);
            m.uxth(Reg::R4, Reg::R4);
            m.str(Reg::R4, Reg::R2, d);
            m.ldr(Reg::R6, Reg::R2, d + 1);
            m.adds(Reg::R6, Reg::R6, Reg::R5);
            m.str(Reg::R6, Reg::R2, d + 1);
        }
        m.stack_transfer(5);
        m.bx();
    });

    // Collect the result digits back into 32-bit limbs.
    let raw = m.read_slice(acc, 2 * digits + 1);
    let mut out = vec![0u32; 2 * l];
    // One more host-side carry normalisation (the modeled pass bounded
    // digits at ≤ 17 bits; fold the remainder exactly).
    let mut carry = 0u64;
    let mut digits16 = vec![0u16; 2 * digits];
    for (i, d16) in digits16.iter_mut().enumerate() {
        let v = raw[i] as u64 + carry;
        *d16 = (v & 0xFFFF) as u16;
        carry = v >> 16;
    }
    for (i, &d) in digits16.iter().enumerate() {
        out[i / 2] |= (d as u32) << (16 * (i % 2));
    }

    // Verify against host arithmetic.
    let mut want = vec![0u64; 2 * l + 1];
    for i in 0..l {
        for j in 0..l {
            let idx = i + j;
            let prod = a[i] as u64 * b[j] as u64;
            let lo = prod & 0xFFFF_FFFF;
            let hi = prod >> 32;
            let s = want[idx] + lo;
            want[idx] = s & 0xFFFF_FFFF;
            let s2 = want[idx + 1] + hi + (s >> 32);
            want[idx + 1] = s2 & 0xFFFF_FFFF;
            let mut k = idx + 2;
            let mut c = s2 >> 32;
            while c != 0 {
                let s3 = want[k] + c;
                want[k] = s3 & 0xFFFF_FFFF;
                c = s3 >> 32;
                k += 1;
            }
        }
    }
    let want32: Vec<u32> = want[..2 * l].iter().map(|&w| w as u32).collect();
    assert_eq!(out, want32, "modeled Comba product diverged");

    (out, m.report_since(&snap))
}

/// Cycle cost of one modeled modular multiplication for a curve of
/// `limbs` 32-bit limbs: the Comba product plus a charged reduction pass
/// (NIST-prime folding, about 10 cycles per product limb).
pub fn field_mul_cycles(limbs: usize) -> u64 {
    let mut m = Machine::new(4096);
    let a: Vec<u32> = (0..limbs as u32)
        .map(|i| 0x9E37_79B9u32.wrapping_mul(i + 1))
        .collect();
    let (_, report) = comba_product(&mut m, &a, &a);
    // Reduction: one pass of load/fold/store over the 2L product limbs.
    let snap = m.snapshot();
    let buf = m.alloc(2 * limbs);
    m.set_base(Reg::R0, buf);
    m.in_category(Category::Support, |m| {
        for i in 0..(2 * limbs) as u32 {
            m.ldr(Reg::R4, Reg::R0, i);
            m.lsrs_imm(Reg::R5, Reg::R4, 1);
            m.adds(Reg::R4, Reg::R4, Reg::R5);
            m.adcs(Reg::R4, Reg::R5);
            m.str(Reg::R4, Reg::R0, i % (limbs as u32));
        }
    });
    report.cycles + m.report_since(&snap).cycles
}

/// Estimated point-multiplication cycle count for a prime curve of
/// `limbs` limbs with the baseline double-and-add loop: per scalar bit
/// one Jacobian doubling (4M + 4S ≈ 8 multiplications) and half a mixed
/// addition (11M + 3S ≈ 14 → 7 on average), plus the final inversion
/// (≈ bits · 1.5 multiplications via Fermat).
pub fn point_mul_cycles(limbs: usize) -> u64 {
    let bits = (limbs * 32) as u64;
    let mul = field_mul_cycles(limbs);
    let muls_per_bit = 8 + 7;
    let inversion = bits * 3 / 2 * mul;
    bits * muls_per_bit as u64 * mul + inversion
}

/// The instruction mix of one modeled prime-field multiplication —
/// feeds the §3.1 energy-mix comparison (prime arithmetic is MUL/ADD
/// heavy where binary arithmetic is XOR/shift heavy).
pub fn field_mul_mix(limbs: usize) -> m0plus::ClassCounts {
    let mut m = Machine::new(4096);
    let a: Vec<u32> = (0..limbs as u32)
        .map(|i| 0x85EB_CA6Bu32.wrapping_mul(i + 3))
        .collect();
    let (_, report) = comba_product(&mut m, &a, &a);
    report.counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use m0plus::InstrClass;

    #[test]
    fn comba_product_is_correct() {
        let mut m = Machine::new(4096);
        let a = vec![0xFFFF_FFFF, 0xFFFF_FFFF, 0xFFFF_FFFF];
        let b = vec![0xFFFF_FFFF, 0xFFFF_FFFF, 0xFFFF_FFFF];
        let (out, _) = comba_product(&mut m, &a, &b);
        // (2^96 − 1)² = 2^192 − 2^97 + 1.
        assert_eq!(out, vec![1, 0, 0, 0xFFFF_FFFE, 0xFFFF_FFFF, 0xFFFF_FFFF]);
    }

    #[test]
    fn comba_product_random_values() {
        let mut m = Machine::new(8192);
        let a = vec![0x1234_5678, 0x9ABC_DEF0, 0x0FED_CBA9, 0x8765_4321];
        let b = vec![0xDEAD_BEEF, 0xCAFE_BABE, 0x0BAD_F00D, 0x1337_C0DE];
        let (_, report) = comba_product(&mut m, &a, &b);
        assert!(report.cycles > 0);
    }

    #[test]
    fn field_mul_cost_grows_quadratically() {
        let c6 = field_mul_cycles(6);
        let c8 = field_mul_cycles(8);
        let ratio = c8 as f64 / c6 as f64;
        // (8/6)² ≈ 1.78.
        assert!((1.5..2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn prime_mul_is_slower_than_binary_mul() {
        // §3.1 conclusion (1): binary arithmetic is faster on this core.
        // Our modeled binary multiplication (asm tier) runs ≈ 3.7k cycles
        // for 233 bits; the prime 192-bit multiplication should already
        // be in the same league or slower per bit.
        let c6 = field_mul_cycles(6); // 192-bit
        assert!(c6 > 2_000, "192-bit prime mul = {c6} cycles");
    }

    #[test]
    fn prime_mix_is_mul_add_heavy() {
        // §3.1 conclusion (2): the prime-field instruction mix leans on
        // MUL/ADD, the expensive classes of Table 3.
        let mix = field_mul_mix(6);
        let muls = mix.count(InstrClass::Mul);
        let adds = mix.count(InstrClass::Add);
        let eors = mix.count(InstrClass::Eor);
        assert!(muls > 100, "muls = {muls}");
        assert!(adds > muls, "adds = {adds} (carry chains dominate)");
        assert_eq!(eors, 0, "no XOR in prime-field inner loops");
    }

    #[test]
    fn point_mul_estimate_is_in_microecc_territory() {
        // Micro ECC secp192r1 on the Cortex-M0: 8.4M cycles measured;
        // our modeled kernel is hand-scheduled so it lands below, but in
        // the millions.
        let cycles = point_mul_cycles(6);
        assert!((1_500_000..15_000_000).contains(&cycles), "got {cycles}");
    }
}
