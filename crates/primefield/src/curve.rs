//! Short-Weierstrass curves y² = x³ + ax + b over prime fields, with
//! Jacobian-coordinate arithmetic — the shape of every baseline curve
//! in the paper's Table 4 (secp160r1 … secp256r1, all with a = −3).

use crate::field::{parse_hex, significant_bits, Limbs, PrimeField};

/// A short-Weierstrass prime curve.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Display name, e.g. `secp192r1`.
    pub name: &'static str,
    /// The base field.
    pub field: PrimeField,
    /// Coefficient a in Montgomery form (−3 for all SEC r1 curves).
    a: Limbs,
    /// Coefficient b in Montgomery form.
    b: Limbs,
    /// Base point (affine, Montgomery form).
    gx: Limbs,
    gy: Limbs,
    /// Group order (plain form).
    n: Limbs,
}

/// An affine point (Montgomery-form coordinates) or infinity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PfPoint {
    /// The identity.
    Infinity,
    /// A finite point.
    Point {
        /// x (Montgomery form).
        x: Limbs,
        /// y (Montgomery form).
        y: Limbs,
    },
}

/// A Jacobian point (x = X/Z², y = Y/Z³); Z = 0 encodes infinity.
#[derive(Debug, Clone, Copy)]
struct Jacobian {
    x: Limbs,
    y: Limbs,
    z: Limbs,
}

impl Curve {
    /// Builds a curve from big-endian hex constants (a is fixed to −3).
    ///
    /// # Panics
    ///
    /// Panics if the base point fails the curve equation — a guard
    /// against transcription errors in the constants.
    pub fn new(
        name: &'static str,
        p_hex: &str,
        b_hex: &str,
        gx_hex: &str,
        gy_hex: &str,
        n_hex: &str,
    ) -> Curve {
        let field = PrimeField::new(p_hex);
        let mut three = [0u32; 8];
        three[0] = 3;
        let a = field.neg(&field.to_mont(&three));
        let curve = Curve {
            name,
            b: field.to_mont(&parse_hex(b_hex)),
            gx: field.to_mont(&parse_hex(gx_hex)),
            gy: field.to_mont(&parse_hex(gy_hex)),
            n: parse_hex(n_hex),
            a,
            field,
        };
        assert!(
            curve.is_on_curve(&curve.generator()),
            "{name}: generator fails the curve equation"
        );
        curve
    }

    /// The base point G.
    pub fn generator(&self) -> PfPoint {
        PfPoint::Point {
            x: self.gx,
            y: self.gy,
        }
    }

    /// The group order n.
    pub fn order(&self) -> &Limbs {
        &self.n
    }

    /// Bit length of the group order.
    pub fn order_bits(&self) -> usize {
        significant_bits(&self.n)
    }

    /// Checks y² = x³ + ax + b.
    pub fn is_on_curve(&self, p: &PfPoint) -> bool {
        match p {
            PfPoint::Infinity => true,
            PfPoint::Point { x, y } => {
                let f = &self.field;
                let y2 = f.mont_mul(y, y);
                let x2 = f.mont_mul(x, x);
                let x3 = f.mont_mul(&x2, x);
                let ax = f.mont_mul(&self.a, x);
                let rhs = f.add(&f.add(&x3, &ax), &self.b);
                y2 == rhs
            }
        }
    }

    fn to_jacobian(&self, p: &PfPoint) -> Jacobian {
        match p {
            PfPoint::Infinity => Jacobian {
                x: self.field.one(),
                y: self.field.one(),
                z: self.field.zero(),
            },
            PfPoint::Point { x, y } => Jacobian {
                x: *x,
                y: *y,
                z: self.field.one(),
            },
        }
    }

    fn to_affine(&self, p: &Jacobian) -> PfPoint {
        let f = &self.field;
        if f.is_zero(&p.z) {
            return PfPoint::Infinity;
        }
        let zi = f.invert(&p.z);
        let zi2 = f.mont_mul(&zi, &zi);
        let zi3 = f.mont_mul(&zi2, &zi);
        PfPoint::Point {
            x: f.mont_mul(&p.x, &zi2),
            y: f.mont_mul(&p.y, &zi3),
        }
    }

    /// Jacobian doubling specialised to a = −3
    /// (α = 3(X−Z²)(X+Z²)): 4M + 4S.
    fn double(&self, p: &Jacobian) -> Jacobian {
        let f = &self.field;
        if f.is_zero(&p.z) || f.is_zero(&p.y) {
            return Jacobian {
                x: f.one(),
                y: f.one(),
                z: f.zero(),
            };
        }
        let delta = f.mont_mul(&p.z, &p.z);
        let gamma = f.mont_mul(&p.y, &p.y);
        let beta = f.mont_mul(&p.x, &gamma);
        let t1 = f.sub(&p.x, &delta);
        let t2 = f.add(&p.x, &delta);
        let t3 = f.mont_mul(&t1, &t2);
        let alpha = f.add(&f.add(&t3, &t3), &t3);
        let mut x3 = f.mont_mul(&alpha, &alpha);
        let beta2 = f.add(&beta, &beta);
        let beta4 = f.add(&beta2, &beta2);
        let beta8 = f.add(&beta4, &beta4);
        x3 = f.sub(&x3, &beta8);
        let t4 = f.add(&p.y, &p.z);
        let t5 = f.mont_mul(&t4, &t4);
        let z3 = f.sub(&f.sub(&t5, &gamma), &delta);
        let t6 = f.sub(&beta4, &x3);
        let gamma2 = f.mont_mul(&gamma, &gamma);
        let g2 = f.add(&gamma2, &gamma2);
        let g4 = f.add(&g2, &g2);
        let g8 = f.add(&g4, &g4);
        let y3 = f.sub(&f.mont_mul(&alpha, &t6), &g8);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition: Jacobian + affine (11M + 3S class).
    fn add_mixed(&self, p: &Jacobian, q: &PfPoint) -> Jacobian {
        let f = &self.field;
        let (x2, y2) = match q {
            PfPoint::Infinity => return *p,
            PfPoint::Point { x, y } => (x, y),
        };
        if f.is_zero(&p.z) {
            return Jacobian {
                x: *x2,
                y: *y2,
                z: f.one(),
            };
        }
        let z1z1 = f.mont_mul(&p.z, &p.z);
        let u2 = f.mont_mul(x2, &z1z1);
        let z1z1z1 = f.mont_mul(&p.z, &z1z1);
        let s2 = f.mont_mul(y2, &z1z1z1);
        let h = f.sub(&u2, &p.x);
        let r = f.sub(&s2, &p.y);
        if f.is_zero(&h) {
            if f.is_zero(&r) {
                return self.double(p);
            }
            return Jacobian {
                x: f.one(),
                y: f.one(),
                z: f.zero(),
            };
        }
        let hh = f.mont_mul(&h, &h);
        let hhh = f.mont_mul(&h, &hh);
        let v = f.mont_mul(&p.x, &hh);
        let mut x3 = f.mont_mul(&r, &r);
        x3 = f.sub(&f.sub(&x3, &hhh), &f.add(&v, &v));
        let t = f.sub(&v, &x3);
        let y3 = f.sub(&f.mont_mul(&r, &t), &f.mont_mul(&p.y, &hhh));
        let z3 = f.mont_mul(&p.z, &h);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Scalar multiplication by binary double-and-add over the scalar's
    /// bits (the Micro ECC-style baseline loop).
    ///
    /// # Panics
    ///
    /// Panics if the scalar exceeds 256 bits (cannot happen for reduced
    /// scalars).
    pub fn mul(&self, p: &PfPoint, k: &Limbs) -> PfPoint {
        let bits = significant_bits(k);
        let mut acc = self.to_jacobian(&PfPoint::Infinity);
        for i in (0..bits).rev() {
            acc = self.double(&acc);
            if (k[i / 32] >> (i % 32)) & 1 == 1 {
                acc = self.add_mixed(&acc, p);
            }
        }
        self.to_affine(&acc)
    }

    /// Point addition through Jacobian coordinates.
    pub fn add_points(&self, p: &PfPoint, q: &PfPoint) -> PfPoint {
        let jp = self.to_jacobian(p);
        self.to_affine(&self.add_mixed(&jp, q))
    }

    /// Point negation.
    pub fn neg_point(&self, p: &PfPoint) -> PfPoint {
        match p {
            PfPoint::Infinity => PfPoint::Infinity,
            PfPoint::Point { x, y } => PfPoint::Point {
                x: *x,
                y: self.field.neg(y),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curves;

    #[test]
    fn all_generators_validate() {
        for c in curves::all() {
            assert!(c.is_on_curve(&c.generator()), "{}", c.name);
        }
    }

    #[test]
    fn n_times_g_is_infinity_on_every_curve() {
        for c in curves::all() {
            let ng = c.mul(&c.generator(), c.order());
            assert_eq!(ng, PfPoint::Infinity, "{}", c.name);
        }
    }

    #[test]
    fn small_multiples_consistent() {
        let c = curves::secp192r1();
        let g = c.generator();
        let two = {
            let mut k = [0u32; 8];
            k[0] = 2;
            k
        };
        let three = {
            let mut k = [0u32; 8];
            k[0] = 3;
            k
        };
        let g2 = c.mul(&g, &two);
        let g3 = c.mul(&g, &three);
        assert!(c.is_on_curve(&g2));
        assert!(c.is_on_curve(&g3));
        assert_eq!(c.add_points(&g2, &g), g3);
        // G + (−G) = O.
        assert_eq!(c.add_points(&g, &c.neg_point(&g)), PfPoint::Infinity);
    }

    #[test]
    fn n_minus_one_times_g_is_neg_g() {
        let c = curves::secp256r1();
        let mut k = *c.order();
        k[0] -= 1; // order is odd, no borrow
        assert_eq!(c.mul(&c.generator(), &k), c.neg_point(&c.generator()));
    }

    #[test]
    fn scalar_mult_distributes() {
        let c = curves::secp224r1();
        let g = c.generator();
        let mk = |v: u32| {
            let mut k = [0u32; 8];
            k[0] = v;
            k
        };
        let lhs = c.add_points(&c.mul(&g, &mk(41)), &c.mul(&g, &mk(59)));
        assert_eq!(lhs, c.mul(&g, &mk(100)));
    }

    #[test]
    fn zero_scalar_gives_infinity() {
        let c = curves::secp160r1();
        assert_eq!(c.mul(&c.generator(), &[0u32; 8]), PfPoint::Infinity);
    }
}
