//! Generic prime-field arithmetic on 32-bit limbs (up to 256 bits).
//!
//! The baseline the paper compares against (§3.1's model, Table 4's
//! Micro ECC / MIRACL / NanoECC rows) works over NIST-style primes.
//! Elements are fixed 8-limb little-endian arrays with a per-field
//! active-limb count; multiplication is Montgomery (CIOS) with all
//! Montgomery constants derived from the modulus at construction time.

// Multi-precision schoolbook loops are clearest with explicit indices.
#![allow(clippy::needless_range_loop)]

use std::fmt;

/// Maximum limb count (256-bit fields).
pub const MAX_LIMBS: usize = 8;

/// An element, little-endian limbs, limbs beyond the field width zero.
pub type Limbs = [u32; MAX_LIMBS];

/// A prime field F_p with p < 2²⁵⁶, p odd.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimeField {
    /// Active limb count L = ⌈bits(p)/32⌉.
    limbs: usize,
    /// The modulus.
    p: Limbs,
    /// R² mod p where R = 2^(32L) (for conversion into Montgomery form).
    r2: Limbs,
    /// −p⁻¹ mod 2³² (the CIOS folding constant).
    n0: u32,
}

/// Compares a < b over `len` limbs.
fn lt(a: &Limbs, b: &Limbs, len: usize) -> bool {
    for i in (0..len).rev() {
        if a[i] != b[i] {
            return a[i] < b[i];
        }
    }
    false
}

/// a -= b, returns the borrow.
fn sub_assign(a: &mut Limbs, b: &Limbs, len: usize) -> bool {
    let mut borrow = 0i64;
    for i in 0..len {
        let d = a[i] as i64 - b[i] as i64 - borrow;
        a[i] = d as u32;
        borrow = (d < 0) as i64;
    }
    borrow != 0
}

/// a += b, returns the carry.
fn add_assign(a: &mut Limbs, b: &Limbs, len: usize) -> bool {
    let mut carry = 0u64;
    for i in 0..len {
        let s = a[i] as u64 + b[i] as u64 + carry;
        a[i] = s as u32;
        carry = s >> 32;
    }
    carry != 0
}

impl PrimeField {
    /// Constructs the field from big-endian hex of the (odd) modulus.
    ///
    /// # Panics
    ///
    /// Panics if the modulus is even, zero, over 256 bits, or malformed
    /// hex (these are compile-time curve constants in practice).
    pub fn new(p_hex: &str) -> PrimeField {
        let p = parse_hex(p_hex);
        let bits = significant_bits(&p);
        assert!(bits > 0 && bits <= 256, "modulus must be 1..=256 bits");
        assert!(p[0] & 1 == 1, "modulus must be odd");
        let limbs = bits.div_ceil(32);

        // n0 = −p⁻¹ mod 2³² by Newton iteration (5 steps double the
        // precision from the seed p⁻¹ ≡ p (mod 8)).
        let mut inv: u32 = p[0]; // correct mod 8
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u32.wrapping_sub(p[0].wrapping_mul(inv)));
        }
        let n0 = inv.wrapping_neg();

        // R mod p, then square it L·32 times by doubling → R² mod p is
        // cheaper via repeated doubling of R mod p... simplest: compute
        // R mod p, then R² = (R mod p) · 2^(32L) mod p via 32L modular
        // doublings.
        let mut r = [0u32; MAX_LIMBS];
        // R = 2^(32L): reduce by repeated subtraction from the top.
        // Start with 1 and double 32L times mod p.
        r[0] = 1;
        let mut field = PrimeField {
            limbs,
            p,
            r2: [0; MAX_LIMBS],
            n0,
        };
        for _ in 0..32 * limbs {
            field.double_mod(&mut r);
        }
        // r now holds R mod p; double 32L more times for R².
        let mut r2 = r;
        for _ in 0..32 * limbs {
            field.double_mod(&mut r2);
        }
        // That computed R·2^(32L) = R² (mod p) only if r held R mod p —
        // which it does. But R² must come from (R mod p)·R, and doubling
        // R mod p 32L times is exactly multiplying by 2^(32L) = R. ✓
        field.r2 = r2;
        field
    }

    fn double_mod(&self, a: &mut Limbs) {
        let carry = {
            let mut c = 0u64;
            for x in a.iter_mut().take(self.limbs) {
                let s = (*x as u64) * 2 + c;
                *x = s as u32;
                c = s >> 32;
            }
            c != 0
        };
        if carry || !lt(a, &self.p, self.limbs) {
            sub_assign(a, &self.p, self.limbs);
        }
    }

    /// Active limb count.
    pub fn limbs(&self) -> usize {
        self.limbs
    }

    /// The modulus limbs.
    pub fn modulus(&self) -> &Limbs {
        &self.p
    }

    /// Bit length of the modulus.
    pub fn bits(&self) -> usize {
        significant_bits(&self.p)
    }

    /// Zero.
    pub fn zero(&self) -> Limbs {
        [0; MAX_LIMBS]
    }

    /// One in Montgomery form.
    pub fn one(&self) -> Limbs {
        let mut one = [0u32; MAX_LIMBS];
        one[0] = 1;
        self.to_mont(&one)
    }

    /// Converts a canonical value (< p) to Montgomery form.
    pub fn to_mont(&self, a: &Limbs) -> Limbs {
        self.mont_mul(a, &self.r2)
    }

    /// Converts from Montgomery form to canonical.
    pub fn from_mont(&self, a: &Limbs) -> Limbs {
        let mut one = [0u32; MAX_LIMBS];
        one[0] = 1;
        self.mont_mul(a, &one)
    }

    /// Montgomery multiplication (CIOS): returns a·b·R⁻¹ mod p.
    pub fn mont_mul(&self, a: &Limbs, b: &Limbs) -> Limbs {
        let l = self.limbs;
        let mut t = [0u64; MAX_LIMBS + 2];
        for i in 0..l {
            // t += a[i] * b
            let mut carry = 0u64;
            for j in 0..l {
                let s = t[j] + a[i] as u64 * b[j] as u64 + carry;
                t[j] = s & 0xFFFF_FFFF;
                carry = s >> 32;
            }
            let s = t[l] + carry;
            t[l] = s & 0xFFFF_FFFF;
            t[l + 1] = s >> 32;
            // fold: m = t[0] * n0 mod 2^32; t += m*p; t >>= 32
            let m = (t[0] as u32).wrapping_mul(self.n0) as u64;
            let mut carry = (t[0] + m * self.p[0] as u64) >> 32;
            for j in 1..l {
                let s = t[j] + m * self.p[j] as u64 + carry;
                t[j - 1] = s & 0xFFFF_FFFF;
                carry = s >> 32;
            }
            let s = t[l] + carry;
            t[l - 1] = s & 0xFFFF_FFFF;
            t[l] = t[l + 1] + (s >> 32);
            t[l + 1] = 0;
        }
        let mut out = [0u32; MAX_LIMBS];
        for j in 0..l {
            out[j] = t[j] as u32;
        }
        if t[l] != 0 || !lt(&out, &self.p, l) {
            sub_assign(&mut out, &self.p, l);
        }
        out
    }

    /// Modular addition.
    pub fn add(&self, a: &Limbs, b: &Limbs) -> Limbs {
        let mut out = *a;
        let carry = add_assign(&mut out, b, self.limbs);
        if carry || !lt(&out, &self.p, self.limbs) {
            sub_assign(&mut out, &self.p, self.limbs);
        }
        out
    }

    /// Modular subtraction.
    pub fn sub(&self, a: &Limbs, b: &Limbs) -> Limbs {
        let mut out = *a;
        if sub_assign(&mut out, b, self.limbs) {
            add_assign(&mut out, &self.p, self.limbs);
        }
        out
    }

    /// Modular negation.
    pub fn neg(&self, a: &Limbs) -> Limbs {
        if a.iter().all(|&x| x == 0) {
            return *a;
        }
        let mut out = self.p;
        sub_assign(&mut out, a, self.limbs);
        out
    }

    /// Whether the element is zero (works in either form).
    pub fn is_zero(&self, a: &Limbs) -> bool {
        a.iter().all(|&x| x == 0)
    }

    /// Modular inverse via Fermat (p prime): a^(p−2), inputs/outputs in
    /// Montgomery form. Returns zero for zero.
    pub fn invert(&self, a: &Limbs) -> Limbs {
        if self.is_zero(a) {
            return *a;
        }
        // exponent = p − 2.
        let mut e = self.p;
        let mut two = [0u32; MAX_LIMBS];
        two[0] = 2;
        sub_assign(&mut e, &two, self.limbs);
        let mut acc = self.one();
        for i in (0..self.bits()).rev() {
            acc = self.mont_mul(&acc, &acc);
            if (e[i / 32] >> (i % 32)) & 1 == 1 {
                acc = self.mont_mul(&acc, a);
            }
        }
        acc
    }
}

/// Parses big-endian hex into limbs.
///
/// # Panics
///
/// Panics on invalid hex or values over 256 bits.
pub fn parse_hex(s: &str) -> Limbs {
    let s = s
        .strip_prefix("0x")
        .or_else(|| s.strip_prefix("0X"))
        .unwrap_or(s);
    assert!(s.len() <= 64, "value exceeds 256 bits");
    let mut out = [0u32; MAX_LIMBS];
    for c in s.chars() {
        let d = c.to_digit(16).expect("valid hex digit");
        let mut carry = d;
        for w in out.iter_mut() {
            let nc = *w >> 28;
            *w = (*w << 4) | carry;
            carry = nc;
        }
        assert_eq!(carry, 0, "value exceeds 256 bits");
    }
    out
}

/// Bit length of a limb array.
pub fn significant_bits(a: &Limbs) -> usize {
    for i in (0..MAX_LIMBS).rev() {
        if a[i] != 0 {
            return i * 32 + 32 - a[i].leading_zeros() as usize;
        }
    }
    0
}

/// Formats limbs as big-endian hex (for tests/debug).
pub fn to_hex(a: &Limbs) -> String {
    let mut s = String::new();
    let mut started = false;
    for i in (0..MAX_LIMBS).rev() {
        if started {
            s += &format!("{:08x}", a[i]);
        } else if a[i] != 0 {
            s += &format!("{:x}", a[i]);
            started = true;
        }
    }
    if !started {
        s = "0".into();
    }
    s
}

/// A displayable wrapper used in error/debug paths.
pub struct HexLimbs<'a>(pub &'a Limbs);

impl fmt::Display for HexLimbs<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", to_hex(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f192() -> PrimeField {
        PrimeField::new("fffffffffffffffffffffffffffffffeffffffffffffffff")
    }

    fn small() -> PrimeField {
        PrimeField::new("fb") // p = 251
    }

    #[test]
    fn parse_and_bits() {
        let p = parse_hex("deadbeef");
        assert_eq!(p[0], 0xDEAD_BEEF);
        assert_eq!(significant_bits(&p), 32);
        assert_eq!(to_hex(&p), "deadbeef");
    }

    #[test]
    fn small_field_full_multiplication_table() {
        let f = small();
        for a in 0u32..251 {
            for b in (0u32..251).step_by(17) {
                let am = f.to_mont(&{
                    let mut x = [0u32; 8];
                    x[0] = a;
                    x
                });
                let bm = f.to_mont(&{
                    let mut x = [0u32; 8];
                    x[0] = b;
                    x
                });
                let prod = f.from_mont(&f.mont_mul(&am, &bm));
                assert_eq!(prod[0], (a * b) % 251, "{a}*{b}");
            }
        }
    }

    #[test]
    fn montgomery_roundtrip() {
        let f = f192();
        let a = parse_hex("123456789abcdef0123456789abcdef0123456789abcdef");
        let m = f.to_mont(&a);
        assert_eq!(f.from_mont(&m), a);
    }

    #[test]
    fn mul_matches_naive_on_192() {
        // (2^96)·(2^96) mod p = 2^192 mod p = 2^64 + 1 for
        // p = 2^192 − 2^64 − 1.
        let f = f192();
        let mut a = [0u32; 8];
        a[3] = 1; // 2^96
        let am = f.to_mont(&a);
        let sq = f.from_mont(&f.mont_mul(&am, &am));
        let mut want = [0u32; 8];
        want[2] = 1; // 2^64
        want[0] = 1;
        assert_eq!(sq, want);
    }

    #[test]
    fn add_sub_neg() {
        let f = f192();
        let a = parse_hex("fffffffffffffffffffffffffffffffefffffffffffffffe"); // p−1
        let one = {
            let mut x = [0u32; 8];
            x[0] = 1;
            x
        };
        assert!(f.is_zero(&f.add(&a, &one)));
        assert_eq!(f.sub(&f.zero(), &one), a, "0 − 1 = p − 1");
        assert_eq!(f.neg(&one), a);
        assert!(f.is_zero(&f.neg(&f.zero())));
    }

    #[test]
    fn inversion() {
        let f = f192();
        let a = f.to_mont(&parse_hex("deadbeefcafebabe12345678"));
        let inv = f.invert(&a);
        let prod = f.from_mont(&f.mont_mul(&a, &inv));
        let mut one = [0u32; 8];
        one[0] = 1;
        assert_eq!(prod, one);
        assert!(f.is_zero(&f.invert(&f.zero())));
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_modulus_rejected() {
        PrimeField::new("10");
    }
}
