//! Montgomery batch inversion: amortising the field's most expensive
//! kernel over many elements at once.
//!
//! The paper's Table 7 shows inversion dominating the field kernels
//! (~105k modeled cycles — 28× a multiplication), and every affine
//! conversion pays one. Montgomery's trick replaces N inversions with
//! **one** inversion plus 3(N−1) multiplications: build the prefix
//! products p_i = a_1·…·a_i (N−1 multiplications), invert the final
//! product once, then peel inverses off the back (2(N−1) more
//! multiplications):
//!
//! ```text
//! inv(a_i) = inv(p_N) · p_{i-1} · a_{i+1} · … · a_N
//! ```
//!
//! Zeros have no inverse; the batch skips them — a zero input stays
//! zero in place and does not disturb its neighbours, which is what the
//! projective-coordinate caller wants (Z = 0 encodes infinity).
//!
//! [`batch_invert`] is the portable-tier entry point; the counted-tier
//! variant [`batch_invert_counted`] tallies the inversion and
//! multiplication costs separately so the amortisation claim is
//! *measured*, not assumed.

use crate::bitsliced;
use crate::counted::{self, Tally};
use crate::Fe;

/// The zero-aware Montgomery chain every tier shares: prefix products
/// carried through zeros (so `prods[i]` is the product of all non-zero
/// elements in `0..=i`), one inversion of the running product, then the
/// backward peel. `mul` and `inv` supply the tier's arithmetic —
/// portable operators, counted kernels, or anything else that matches
/// the portable values — so the algorithm lives in exactly one place.
/// Returns `false` (without calling `inv`) for an all-zero batch.
fn montgomery_core(
    elems: &mut [Fe],
    mut mul: impl FnMut(Fe, Fe) -> Fe,
    inv: impl FnOnce(Fe) -> Fe,
) -> bool {
    let mut prods = Vec::with_capacity(elems.len());
    let mut acc = Fe::ONE;
    let mut nonzero = 0usize;
    for e in elems.iter() {
        if !e.is_zero() {
            acc = if nonzero == 0 { *e } else { mul(acc, *e) };
            nonzero += 1;
        }
        prods.push(acc);
    }
    if nonzero == 0 {
        return false;
    }
    // One inversion for the whole batch.
    let mut inv_acc = inv(acc);
    // Backward sweep: peel off one inverse per non-zero element. The
    // prefix products carry through zeros, so prods[i − 1] is always
    // "the product of everything non-zero before i".
    let mut remaining = nonzero;
    for i in (0..elems.len()).rev() {
        if elems[i].is_zero() {
            continue;
        }
        remaining -= 1;
        if remaining == 0 {
            // First non-zero element: its prefix is empty.
            elems[i] = inv_acc;
            break;
        }
        let a = elems[i];
        elems[i] = mul(inv_acc, prods[i - 1]);
        inv_acc = mul(inv_acc, a);
    }
    true
}

/// Inverts every non-zero element of `elems` in place with one field
/// inversion total (Montgomery's trick). Zero elements are left as
/// zero; the other elements are unaffected by their presence.
///
/// Batches of at least [`bitsliced::CROSSOVER`] elements are routed
/// through the 64-lane bitsliced backend (unless
/// [`bitsliced::set_bitsliced_enabled`] turned it off); the values are
/// bit-identical either way — inverses are unique — only the wall
/// clock differs.
///
/// ```
/// use gf2m::{batch, Fe};
/// let mut v = [Fe::from_hex("1234").unwrap(), Fe::ZERO, Fe::from_hex("abcd").unwrap()];
/// batch::batch_invert(&mut v);
/// assert_eq!(v[0], Fe::from_hex("1234").unwrap().invert().unwrap());
/// assert!(v[1].is_zero());
/// assert_eq!(v[2], Fe::from_hex("abcd").unwrap().invert().unwrap());
/// ```
pub fn batch_invert(elems: &mut [Fe]) {
    if bitsliced::bitsliced_enabled() && elems.len() >= bitsliced::CROSSOVER {
        bitsliced::invert_elements(elems);
        return;
    }
    scalar_invert(elems);
}

/// The scalar-tier Montgomery chain: [`montgomery_core`] over the
/// portable operators. Never dispatches to the bitsliced backend — it
/// is also the final-inversion step *inside* that backend's chunked
/// chain, so it must stay scalar.
pub(crate) fn scalar_invert(elems: &mut [Fe]) {
    montgomery_core(
        elems,
        |a, b| a * b,
        |p| p.invert().expect("product of non-zero elements"),
    );
}

/// [`batch_invert`] on a borrowed slice, returning the inverses.
pub fn batch_inverted(elems: &[Fe]) -> Vec<Fe> {
    let mut out = elems.to_vec();
    batch_invert(&mut out);
    out
}

/// Cost breakdown of one counted-tier batch inversion.
#[derive(Debug, Clone, Default)]
pub struct CountedBatchInversion {
    /// The inverses (zeros stay zero), identical to [`batch_invert`].
    pub values: Vec<Fe>,
    /// Operations spent inside the (single) EEA inversion.
    pub inv: Tally,
    /// Operations spent in the Montgomery multiplications.
    pub mul: Tally,
    /// Field inversions performed (1, or 0 for an all-zero batch).
    pub inversions: u64,
    /// Field multiplications performed (3(N−1) for N non-zero inputs).
    pub muls: u64,
}

impl CountedBatchInversion {
    /// Total tally (inversion + multiplications).
    pub fn total(&self) -> Tally {
        self.inv.plus(self.mul)
    }
}

/// Counted-tier batch inversion: the same `montgomery_core` chain as
/// [`batch_invert`] (not a re-implementation), instantiated with
/// [`counted::inv_eea`] and the paper's Method-C counted
/// multiplication, with the inversion and multiplication costs tallied
/// separately.
pub fn batch_invert_counted(elems: &[Fe]) -> CountedBatchInversion {
    let mut values = elems.to_vec();
    let mut mul_tally = Tally::default();
    let mut muls = 0u64;
    let mut inv_tally = Tally::default();
    let mut inversions = 0u64;
    montgomery_core(
        &mut values,
        |a, b| {
            let p = counted::mul_ld_fixed(a, b);
            mul_tally = mul_tally.plus(p.total());
            muls += 1;
            p.value
        },
        |p| {
            let run = counted::inv_eea(p).expect("product of non-zero elements");
            inv_tally = run.tally;
            inversions = 1;
            run.value
        },
    );
    CountedBatchInversion {
        values,
        inv: inv_tally,
        mul: mul_tally,
        inversions,
        muls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::N;

    fn fe(seed: u64) -> Fe {
        let mut s = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
        let mut w = [0u32; N];
        for x in w.iter_mut() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *x = (s >> 13) as u32;
        }
        Fe::from_words_reduced(w)
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut v: Vec<Fe> = vec![];
        batch_invert(&mut v);
        assert!(v.is_empty());
        let c = batch_invert_counted(&[]);
        assert_eq!(c.inversions, 0);
        assert_eq!(c.muls, 0);
    }

    #[test]
    fn batch_of_one_matches_invert() {
        let a = fe(7);
        let mut v = [a];
        batch_invert(&mut v);
        assert_eq!(v[0], a.invert().unwrap());
    }

    #[test]
    fn batch_of_one_zero() {
        let mut v = [Fe::ZERO];
        batch_invert(&mut v);
        assert!(v[0].is_zero());
        let c = batch_invert_counted(&[Fe::ZERO]);
        assert_eq!(c.inversions, 0);
        assert!(c.values[0].is_zero());
    }

    #[test]
    fn matches_per_element_inversion() {
        for n in [2usize, 3, 8, 17, 64] {
            let elems: Vec<Fe> = (0..n as u64).map(|i| fe(i + 100)).collect();
            let mut batch = elems.clone();
            batch_invert(&mut batch);
            for (i, (b, e)) in batch.iter().zip(&elems).enumerate() {
                assert_eq!(*b, e.invert().unwrap(), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn zeros_stay_zero_and_neighbours_are_unaffected() {
        let elems: Vec<Fe> = (0..12u64).map(|i| fe(i + 50)).collect();
        for zero_at in [0usize, 1, 5, 10, 11] {
            let mut with_zero = elems.clone();
            with_zero[zero_at] = Fe::ZERO;
            let mut batch = with_zero.clone();
            batch_invert(&mut batch);
            for i in 0..with_zero.len() {
                if i == zero_at {
                    assert!(batch[i].is_zero(), "zero at {zero_at}");
                } else {
                    assert_eq!(
                        batch[i],
                        with_zero[i].invert().unwrap(),
                        "zero at {zero_at}, i = {i}"
                    );
                }
            }
        }
        // Several zeros at once, including adjacent ones.
        let mut v = vec![Fe::ZERO, fe(1), Fe::ZERO, Fe::ZERO, fe(2), Fe::ZERO];
        batch_invert(&mut v);
        assert!(v[0].is_zero() && v[2].is_zero() && v[3].is_zero() && v[5].is_zero());
        assert_eq!(v[1], fe(1).invert().unwrap());
        assert_eq!(v[4], fe(2).invert().unwrap());
    }

    #[test]
    fn all_zero_batch() {
        let mut v = vec![Fe::ZERO; 5];
        batch_invert(&mut v);
        assert!(v.iter().all(Fe::is_zero));
    }

    #[test]
    fn repeated_elements_invert_correctly() {
        let a = fe(77);
        let mut v = vec![a, a, a, a];
        batch_invert(&mut v);
        let want = a.invert().unwrap();
        assert!(v.iter().all(|&x| x == want));
    }

    #[test]
    fn counted_values_match_portable() {
        let elems: Vec<Fe> = (0..16u64).map(|i| fe(i + 900)).collect();
        let mut with_zero = elems.clone();
        with_zero[3] = Fe::ZERO;
        let counted = batch_invert_counted(&with_zero);
        let mut portable = with_zero.clone();
        batch_invert(&mut portable);
        assert_eq!(counted.values, portable);
    }

    #[test]
    fn counted_operation_counts_match_the_formula() {
        // N non-zero elements: 1 inversion, 3(N−1) multiplications.
        for n in [1usize, 2, 8, 64] {
            let elems: Vec<Fe> = (0..n as u64).map(|i| fe(i + 400)).collect();
            let c = batch_invert_counted(&elems);
            assert_eq!(c.inversions, 1, "n={n}");
            assert_eq!(c.muls as usize, 3 * (n - 1), "n={n}");
        }
    }

    #[test]
    fn batch_of_64_spends_an_eighth_of_the_inversion_cycles() {
        // The acceptance claim: converting 64 elements in a batch spends
        // ≤ 1/8 the *inversion* cycles of 64 individual inversions.
        let elems: Vec<Fe> = (0..64u64).map(|i| fe(i + 4000)).collect();
        let batch = batch_invert_counted(&elems);
        let individual: u64 = elems
            .iter()
            .map(|e| counted::inv_eea(*e).unwrap().tally.cycles())
            .sum();
        assert!(
            batch.inv.cycles() * 8 <= individual,
            "batch inversion cycles {} vs 8× bound of {}",
            batch.inv.cycles(),
            individual / 8
        );
        // And the whole batch (inversion + Montgomery multiplications)
        // must still beat doing 64 EEA inversions outright.
        assert!(
            batch.total().cycles() < individual,
            "total batch {} vs individual {}",
            batch.total().cycles(),
            individual
        );
    }
}
