//! Word-at-a-time reduction modulo f(z) = z²³³ + z⁷⁴ + 1 (§3.2.2).
//!
//! Because the sect233k1 reduction polynomial is a *sparse trinomial*, a
//! 466-bit product can be reduced one 32-bit word at a time with constant
//! shifts: every bit at position p = 233 + e folds to positions e and
//! 74 + e. For a product word `C[i]` (holding bits 32·i…32·i+31, i ≥ 8):
//!
//! * the z^e image lands in words `i−8` (shift left 23) and `i−7`
//!   (shift right 9), because 256 − 233 = 23;
//! * the z^(74+e) image lands in words `i−5` (shift left 1) and `i−4`
//!   (shift right 31), because 74 + 23 = 97 = 3·32 + 1.
//!
//! Processing words 15 down to 8 and then the nine excess bits of word 7
//! yields a canonical 233-bit result.

use crate::{Fe, N, TOP_MASK};

/// Reduces a 16-word (466-bit capable) polynomial product to a canonical
/// field element.
///
/// ```
/// use gf2m::{reduce::reduce, Fe};
/// // z^233 ≡ z^74 + 1 (mod f)
/// let mut c = [0u32; 16];
/// c[233 / 32] = 1 << (233 % 32);
/// let r = reduce(c);
/// let mut want = [0u32; 8];
/// want[74 / 32] = 1 << (74 % 32);
/// want[0] |= 1;
/// assert_eq!(r, Fe::from_words_reduced(want));
/// ```
pub fn reduce(mut c: [u32; 2 * N]) -> Fe {
    for i in (N..2 * N).rev() {
        let t = c[i];
        // z^e component (e = 32(i-8) + j + 23).
        c[i - 8] ^= t << 23;
        c[i - 7] ^= t >> 9;
        // z^(74+e) component.
        c[i - 5] ^= t << 1;
        c[i - 4] ^= t >> 31;
    }
    // Excess bits 233…255 of word 7.
    let t = c[7] >> 9;
    c[0] ^= t;
    c[2] ^= t << 10;
    c[3] ^= t >> 22;
    c[7] &= TOP_MASK;

    let mut out = [0u32; N];
    out.copy_from_slice(&c[..N]);
    Fe(out)
}

/// Reference bit-at-a-time reduction, used to validate [`reduce`].
pub fn reduce_bitwise(c: [u32; 2 * N]) -> Fe {
    let mut bits = [false; 512];
    for (i, w) in c.iter().enumerate() {
        for j in 0..32 {
            bits[i * 32 + j] = (w >> j) & 1 == 1;
        }
    }
    for p in (crate::M..512).rev() {
        if bits[p] {
            bits[p] = false;
            let e = p - crate::M;
            bits[e] ^= true;
            bits[e + crate::K] ^= true;
        }
    }
    let mut out = [0u32; N];
    for (p, &b) in bits.iter().enumerate().take(crate::M) {
        if b {
            out[p / 32] |= 1 << (p % 32);
        }
    }
    Fe(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u32 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (*state >> 16) as u32
    }

    #[test]
    fn reduce_of_in_range_value_is_identity() {
        let mut c = [0u32; 16];
        c[0] = 0xDEAD_BEEF;
        c[7] = 0x1FF;
        let r = reduce(c);
        assert_eq!(r.words()[0], 0xDEAD_BEEF);
        assert_eq!(r.words()[7], 0x1FF);
    }

    #[test]
    fn reduce_z233_is_z74_plus_1() {
        let mut c = [0u32; 16];
        c[233 / 32] |= 1 << (233 % 32);
        let r = reduce(c);
        let mut want = [0u32; 8];
        want[74 / 32] |= 1 << (74 % 32);
        want[0] |= 1;
        assert_eq!(r.words(), &want);
    }

    #[test]
    fn reduce_single_high_bits_match_bitwise() {
        for p in 233..464 {
            let mut c = [0u32; 16];
            c[p / 32] |= 1 << (p % 32);
            assert_eq!(
                reduce(c),
                reduce_bitwise(c),
                "mismatch for solitary bit {p}"
            );
        }
    }

    #[test]
    fn reduce_matches_bitwise_on_random_products() {
        let mut s = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..200 {
            let mut c = [0u32; 16];
            for w in c.iter_mut() {
                *w = xorshift(&mut s);
            }
            // A real product of two 233-bit polynomials has degree ≤ 464:
            // clear bits 465+ to stay in-domain (the fold of word 15's top
            // bits would otherwise still be correct, but keep the test
            // representative).
            c[14] &= (1 << 17) - 1;
            c[15] = 0;
            assert_eq!(reduce(c), reduce_bitwise(c));
        }
    }

    #[test]
    fn reduce_handles_max_degree_product() {
        // deg = 464 exactly (232 + 232).
        let mut c = [0u32; 16];
        c[14] = 1 << 16; // bit 464
        assert_eq!(reduce(c), reduce_bitwise(c));
    }

    #[test]
    fn result_is_canonical() {
        let mut s = 42u64;
        for _ in 0..100 {
            let mut c = [0u32; 16];
            for w in c.iter_mut().take(15) {
                *w = xorshift(&mut s);
            }
            c[14] &= 0x1FFFF;
            let r = reduce(c);
            assert_eq!(r.words()[7] & !TOP_MASK, 0, "bits ≥ 233 must be clear");
        }
    }
}
