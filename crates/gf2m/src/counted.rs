//! Instrumented multipliers: the three López-Dahab variants with every
//! memory access, XOR and shift tallied.
//!
//! These functions compute real products (checked against the portable
//! tier) while recording the operation counts the paper's Table 1 models.
//! Our accounting conventions, chosen once and applied to all three
//! methods identically, are:
//!
//! * **read / write** — one 32-bit load or store of a *memory-resident*
//!   word. Accesses to register-resident accumulator words are free.
//! * **xor** — one word XOR (including the OR that recombines the two
//!   halves of a multi-precision shift, as an `ORR` exercises the same
//!   datapath).
//! * **shift** — one single-word `LSL`/`LSR`.
//! * The operand `x` is read from memory once per use; `y` is memory
//!   resident during table generation; the window table always lives in
//!   memory.
//! * Look-up-table generation is included (the paper's Table 7 splits it
//!   out as *Multiply Precomputation*; [`CountedProduct::table_tally`]
//!   preserves that split).
//!
//! The conventions differ from the authors' in small constants (they did
//! not publish their accounting), so the regenerated Table 2 prints both
//! the published formula values and these measured counts; tests assert
//! the orderings and improvement ratios agree.

// Indexed loops below mirror the paper's Algorithm 1 pseudocode
// (v[l + k] ^= T[u][l]); iterator rewrites would obscure the mapping.
#![allow(clippy::needless_range_loop)]

use crate::mul::{LD_OUTER, LD_TABLE_ENTRIES};
use crate::{Fe, LD_WINDOW, N};

/// Running totals of tallied operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// Memory reads.
    pub reads: u64,
    /// Memory writes.
    pub writes: u64,
    /// Word XOR/OR operations.
    pub xors: u64,
    /// Single-word shifts.
    pub shifts: u64,
}

impl Tally {
    /// The paper's cycle estimate (memory ops 2 cycles, others 1).
    pub fn cycles(&self) -> u64 {
        2 * (self.reads + self.writes) + self.xors + self.shifts
    }

    /// Memory operations (reads + writes).
    pub fn memory_ops(&self) -> u64 {
        self.reads + self.writes
    }

    /// Component-wise sum.
    #[must_use]
    pub fn plus(self, other: Tally) -> Tally {
        Tally {
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            xors: self.xors + other.xors,
            shifts: self.shifts + other.shifts,
        }
    }
}

/// Result of a counted multiplication: the product and the two tallies
/// (window-table generation vs the main accumulation+shift loop).
#[derive(Debug, Clone, Copy)]
pub struct CountedProduct {
    /// The reduced field product (identical to the portable tier).
    pub value: Fe,
    /// Operations spent generating the window look-up table.
    pub table: Tally,
    /// Operations spent in the main loop (accumulation and shifts).
    pub main: Tally,
}

impl CountedProduct {
    /// Combined tally (table + main loop).
    pub fn total(&self) -> Tally {
        self.table.plus(self.main)
    }

    /// The table-generation tally (the paper's *Multiply Precomputation*).
    pub fn table_tally(&self) -> Tally {
        self.table
    }
}

/// Counted window-table generation, shared by all three methods.
/// `y` is memory-resident; every produced entry is stored.
fn counted_ld_table(y: &[u32; N], t: &mut Tally) -> [[u32; N]; LD_TABLE_ENTRIES] {
    let mut tab = [[0u32; N]; LD_TABLE_ENTRIES];
    // T[0] = 0 comes from zero-initialised storage: n writes.
    t.writes += N as u64;
    // T[1] = y: n reads + n writes.
    tab[1] = *y;
    t.reads += N as u64;
    t.writes += N as u64;
    for u in 1..LD_TABLE_ENTRIES / 2 {
        // T[2u] = T[u] << 1: per word read, LSL, LSR (carry), OR, write.
        let mut carry = 0u32;
        for l in 0..N {
            let w = tab[u][l];
            t.reads += 1;
            tab[2 * u][l] = (w << 1) | carry;
            t.shifts += 2;
            t.xors += 1;
            t.writes += 1;
            carry = w >> 31;
        }
        // T[2u+1] = T[2u] + y: per word 2 reads, XOR, write. The low word
        // of T[2u] is still in a register from the doubling, so one read
        // is saved there.
        t.reads -= 1;
        for l in 0..N {
            tab[2 * u + 1][l] = tab[2 * u][l] ^ y[l];
            t.reads += 2;
            t.xors += 1;
            t.writes += 1;
        }
    }
    tab
}

/// Counted multi-precision left shift by the window width of a
/// 2n-word vector; `in_regs(i)` reports whether accumulator word `i` is
/// register resident (free access).
fn counted_shift(v: &mut [u32; 2 * N], t: &mut Tally, in_regs: impl Fn(usize) -> bool) {
    let mut carry = 0u32;
    for i in 0..2 * N {
        let w = v[i];
        if !in_regs(i) {
            t.reads += 1;
        }
        v[i] = (w << LD_WINDOW) | carry;
        t.shifts += 2; // LSL for the word, LSR extracting the carry
        t.xors += 1; // OR recombining
        if !in_regs(i) {
            t.writes += 1;
        }
        carry = w >> (32 - LD_WINDOW as u32);
    }
}

/// Shared main loop: accumulate table entries into `v` under a residency
/// policy, then shift between outer iterations.
fn counted_main(
    x: &[u32; N],
    tab: &[[u32; N]; LD_TABLE_ENTRIES],
    t: &mut Tally,
    in_regs: impl Fn(usize) -> bool + Copy,
) -> [u32; 2 * N] {
    let mut v = [0u32; 2 * N];
    // Zero initialisation: only the memory-resident words are stores.
    for i in 0..2 * N {
        if !in_regs(i) {
            t.writes += 1;
        }
    }
    for j in (0..LD_OUTER).rev() {
        for k in 0..N {
            // Read x[k] and extract the window: LSR + AND (AND tallied as
            // an xor-class ALU op).
            t.reads += 1;
            t.shifts += 1;
            t.xors += 1;
            let u = ((x[k] >> (LD_WINDOW * j)) & 0xF) as usize;
            for l in 0..N {
                let i = k + l;
                t.reads += 1; // table word
                if !in_regs(i) {
                    t.reads += 1;
                    t.writes += 1;
                }
                v[i] ^= tab[u][l];
                t.xors += 1;
            }
        }
        if j != 0 {
            counted_shift(&mut v, t, in_regs);
        }
    }
    v
}

/// Method A — plain López-Dahab: the whole accumulator is memory
/// resident.
pub fn mul_ld(x: Fe, y: Fe) -> CountedProduct {
    let mut table = Tally::default();
    let tab = counted_ld_table(&y.0, &mut table);
    let mut main = Tally::default();
    let v = counted_main(&x.0, &tab, &mut main, |_| false);
    CountedProduct {
        value: crate::reduce::reduce(v),
        table,
        main,
    }
}

/// Method B — López-Dahab with *rotating registers*: during the k-loop a
/// sliding window of n + 1 accumulator words `v[k ..= k+n]` is register
/// resident; each pass spills one finished word and loads one new word.
pub fn mul_ld_rotating(x: Fe, y: Fe) -> CountedProduct {
    let mut table = Tally::default();
    let tab = counted_ld_table(&y.0, &mut table);
    let mut t = Tally::default();

    let mut v = [0u32; 2 * N];
    // Zero initialisation of the memory image (the register window is
    // zeroed with register moves, but the spill region must be stores).
    t.writes += (2 * N) as u64;

    for j in (0..LD_OUTER).rev() {
        // Fill the window v[0..=n]: n + 1 loads.
        t.reads += (N + 1) as u64;
        for k in 0..N {
            t.reads += 1; // x[k]
            t.shifts += 1;
            t.xors += 1;
            let u = ((x.0[k] >> (LD_WINDOW * j)) & 0xF) as usize;
            for l in 0..N {
                t.reads += 1; // table word
                v[k + l] ^= tab[u][l]; // register target: free
                t.xors += 1;
            }
            // Spill the finished word and rotate one new word in.
            t.writes += 1; // v[k]
            if k + 1 + N < 2 * N {
                t.reads += 1; // v[k+1+n]
            }
        }
        // Write back the window tail (n words).
        t.writes += N as u64;
        if j != 0 {
            counted_shift(&mut v, &mut t, |_| false);
        }
    }
    CountedProduct {
        value: crate::reduce::reduce(v),
        table,
        main: t,
    }
}

/// Method C — the paper's López-Dahab with *fixed registers*:
/// accumulator words v\[3…11\] (the n + 1 most frequently used) are
/// permanently register resident; v\[0…2\] and v\[12…15\] stay in memory.
pub fn mul_ld_fixed(x: Fe, y: Fe) -> CountedProduct {
    let mut table = Tally::default();
    let tab = counted_ld_table(&y.0, &mut table);
    let mut main = Tally::default();
    let in_regs = |i: usize| crate::mul::FIXED_REGISTER_RANGE.contains(&i);
    let v = counted_main(&x.0, &tab, &mut main, in_regs);
    CountedProduct {
        value: crate::reduce::reduce(v),
        table,
        main,
    }
}

/// Method C generalised to an arbitrary register budget — the ablation
/// behind the paper's design choice. The `regs` most frequently touched
/// accumulator words (word `i` is touched `8 − |i − 7|` times per outer
/// iteration) are register resident; `regs = 0` degenerates to plain LD
/// and `regs = 9` is the paper's Algorithm 1 (words v3…v11).
///
/// # Panics
///
/// Panics if `regs > 16`.
pub fn mul_ld_fixed_with_registers(x: Fe, y: Fe, regs: usize) -> CountedProduct {
    assert!(regs <= 2 * N, "the accumulator has 16 words");
    let chosen = residency_for_budget(regs);
    let mut table = Tally::default();
    let tab = counted_ld_table(&y.0, &mut table);
    let mut main = Tally::default();
    let v = counted_main(&x.0, &tab, &mut main, |i| chosen[i]);
    CountedProduct {
        value: crate::reduce::reduce(v),
        table,
        main,
    }
}

/// The optimal residency set for a register budget: greedily pick the
/// most frequently used accumulator indices (центre-out from v7).
pub fn residency_for_budget(regs: usize) -> [bool; 2 * N] {
    let mut order: Vec<usize> = (0..2 * N).collect();
    // Frequency 8 − |i − 7| descending; ties broken toward lower index.
    order.sort_by_key(|&i| (-(8i32 - (i as i32 - 7).abs()), i));
    let mut set = [false; 2 * N];
    for &i in order.iter().take(regs) {
        set[i] = true;
    }
    set
}

/// Result of a counted inversion: the inverse and the operation tally.
#[derive(Debug, Clone, Copy)]
pub struct CountedInverse {
    /// The field inverse (identical to the portable tier).
    pub value: Fe,
    /// Operations spent in the EEA.
    pub tally: Tally,
}

/// Counted degree scan with most-significant-word tracking: each
/// inspected word is one read; extracting the bit position on the hit
/// is charged as one shift (the CLZ-free bit hunt of a real M0+).
fn counted_degree(a: &[u32; N], mut top: usize, t: &mut Tally) -> (usize, usize) {
    loop {
        t.reads += 1;
        if a[top] != 0 {
            t.shifts += 1;
            return (top * 32 + 31 - a[top].leading_zeros() as usize, top);
        }
        if top == 0 {
            return (usize::MAX, 0);
        }
        top -= 1;
    }
}

/// Counted `a ^= b << j`, touching only the words that can change
/// (the paper's tracked-top optimisation).
fn counted_xor_shifted(a: &mut [u32; N], b: &[u32; N], j: usize, b_top: usize, t: &mut Tally) {
    let wshift = j / 32;
    let bshift = (j % 32) as u32;
    if bshift == 0 {
        for i in 0..=b_top {
            if i + wshift < N {
                a[i + wshift] ^= b[i];
                t.reads += 2;
                t.xors += 1;
                t.writes += 1;
            }
        }
    } else {
        for i in 0..=b_top {
            let w = b[i];
            t.reads += 1;
            t.shifts += 2; // LSL low half, LSR carry half
            if i + wshift < N {
                a[i + wshift] ^= w << bshift;
                t.reads += 1;
                t.xors += 1;
                t.writes += 1;
            }
            if i + wshift + 1 < N {
                a[i + wshift + 1] ^= w >> (32 - bshift);
                t.reads += 1;
                t.xors += 1;
                t.writes += 1;
            }
        }
    }
}

fn counted_is_one(a: &[u32; N], t: &mut Tally) -> bool {
    t.reads += N as u64;
    a[0] == 1 && a[1..].iter().all(|&w| w == 0)
}

/// Counted inversion by the paper's optimised EEA (§3.2.3: two code
/// segments instead of swaps, tracked most-significant words) — the
/// same algorithm as [`crate::inv::invert`] with every memory access
/// and ALU word-op tallied under the conventions of this module.
/// Returns `None` for zero.
///
/// Unlike the multiplication tallies, the inversion tally is
/// data-*dependent* (the EEA's iteration count follows the operand's
/// degree sequence); it stays within a narrow band for full-size
/// elements.
pub fn inv_eea(a: Fe) -> Option<CountedInverse> {
    if a.is_zero() {
        return None;
    }
    let mut t = Tally::default();
    let mut u = a.0;
    let mut v = crate::inv::F_WORDS;
    let mut g1 = [0u32; N];
    g1[0] = 1;
    let mut g2 = [0u32; N];
    let mut u_top = N - 1;
    let mut v_top = N - 1;

    #[allow(clippy::too_many_arguments)]
    fn step(
        u: &mut [u32; N],
        g1: &mut [u32; N],
        u_top: &mut usize,
        v: &[u32; N],
        g2: &[u32; N],
        v_deg: usize,
        v_top: usize,
        g2_top: usize,
        t: &mut Tally,
    ) -> bool {
        let (mut u_deg, mut top) = counted_degree(u, *u_top, t);
        *u_top = top;
        while u_deg != usize::MAX && u_deg >= v_deg {
            let j = u_deg - v_deg;
            counted_xor_shifted(u, v, j, v_top, t);
            counted_xor_shifted(g1, g2, j, g2_top, t);
            let (d, nt) = counted_degree(u, *u_top, t);
            u_deg = d;
            top = nt;
            *u_top = top;
        }
        counted_is_one(u, t)
    }

    loop {
        // Segment A: reduce u by v.
        let (v_deg, vt) = counted_degree(&v, v_top, &mut t);
        v_top = vt;
        let (_, g2_top) = counted_degree(&g2, N - 1, &mut t);
        if step(
            &mut u, &mut g1, &mut u_top, &v, &g2, v_deg, v_top, g2_top, &mut t,
        ) {
            return Some(CountedInverse {
                value: Fe(g1),
                tally: t,
            });
        }

        // Segment B: the same operations with names interchanged.
        let (u_deg, ut) = counted_degree(&u, u_top, &mut t);
        u_top = ut;
        let (_, g1_top) = counted_degree(&g1, N - 1, &mut t);
        if step(
            &mut v, &mut g2, &mut v_top, &u, &g1, u_deg, u_top, g1_top, &mut t,
        ) {
            return Some(CountedInverse {
                value: Fe(g2),
                tally: t,
            });
        }
    }
}

/// Runs all three counted methods on the same operands.
pub fn all_methods(x: Fe, y: Fe) -> [(crate::formulas::Method, CountedProduct); 3] {
    [
        (crate::formulas::Method::A, mul_ld(x, y)),
        (crate::formulas::Method::B, mul_ld_rotating(x, y)),
        (crate::formulas::Method::C, mul_ld_fixed(x, y)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulas::Method;

    fn fe(seed: u64) -> Fe {
        let mut s = seed.wrapping_mul(0xA076_1D64_78BD_642F) | 1;
        let mut w = [0u32; N];
        for x in w.iter_mut() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *x = (s >> 19) as u32;
        }
        Fe::from_words_reduced(w)
    }

    #[test]
    fn counted_values_match_portable() {
        for seed in 0..20u64 {
            let a = fe(seed);
            let b = fe(seed + 333);
            let want = crate::mul::mul_ld_fixed(a, b);
            for (m, p) in all_methods(a, b) {
                assert_eq!(p.value, want, "{m} at seed {seed}");
            }
        }
    }

    #[test]
    fn tallies_are_data_independent() {
        // The counts depend only on the algorithm, not the operands —
        // a property the paper's closed-form formulas presuppose.
        let p1 = mul_ld_fixed(fe(1), fe(2));
        let p2 = mul_ld_fixed(fe(3), fe(4));
        assert_eq!(p1.total(), p2.total());
        let q1 = mul_ld_rotating(fe(1), fe(2));
        let q2 = mul_ld_rotating(fe(5), fe(6));
        assert_eq!(q1.total(), q2.total());
    }

    #[test]
    fn memory_ops_strictly_decrease_a_to_c() {
        let [(_, a), (_, b), (_, c)] = all_methods(fe(10), fe(11));
        assert!(
            a.main.memory_ops() > b.main.memory_ops(),
            "A {} vs B {}",
            a.main.memory_ops(),
            b.main.memory_ops()
        );
        assert!(
            b.main.memory_ops() > c.main.memory_ops(),
            "B {} vs C {}",
            b.main.memory_ops(),
            c.main.memory_ops()
        );
    }

    #[test]
    fn xors_of_a_and_c_match() {
        // Method C moves words into registers but performs the same
        // arithmetic as Method A.
        let [(_, a), _, (_, c)] = all_methods(fe(20), fe(21));
        assert_eq!(a.main.xors, c.main.xors);
        assert_eq!(a.table, c.table);
    }

    #[test]
    fn measured_ratios_track_the_papers_claims() {
        // Table 2 (main loop only; the paper's formulas exclude the table
        // generation, which its Table 7 charges to a separate category):
        // C should be ~15% cheaper than B and ~40% cheaper than A.
        let [(_, a), (_, b), (_, c)] = all_methods(fe(30), fe(31));
        let (ca, cb, cc) = (
            a.main.cycles() as f64,
            b.main.cycles() as f64,
            c.main.cycles() as f64,
        );
        let over_b = 1.0 - cc / cb;
        let over_a = 1.0 - cc / ca;
        assert!(
            (over_b - 0.15).abs() < 0.10,
            "improvement over B: {over_b:.3} (paper: 0.15)"
        );
        assert!(
            (over_a - 0.40).abs() < 0.10,
            "improvement over A: {over_a:.3} (paper: 0.40)"
        );
    }

    #[test]
    fn measured_counts_are_in_the_formulas_regime() {
        // Same order of magnitude and same dominant term as Table 1; the
        // small-constant conventions differ (documented in the module
        // docs).
        let [(ma, a), (mb, b), (mc, c)] = all_methods(fe(40), fe(41));
        for (m, p, want) in [
            (ma, a, Method::A.op_counts(N as u64)),
            (mb, b, Method::B.op_counts(N as u64)),
            (mc, c, Method::C.op_counts(N as u64)),
        ] {
            let got = p.main.cycles() as f64;
            let formula = want.cycles() as f64;
            let ratio = got / formula;
            assert!(
                (0.7..1.4).contains(&ratio),
                "{m}: measured {got} vs formula {formula} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn shift_counts_identical_across_methods() {
        // "The number of shift operations remain constant … for all three
        // methods" (Table 1 note). Our main-loop shift counts must agree
        // between A and C; B adds only the window-extraction shifts which
        // are also identical. Check all three match exactly.
        let [(_, a), (_, b), (_, c)] = all_methods(fe(50), fe(51));
        assert_eq!(a.main.shifts, b.main.shifts);
        assert_eq!(b.main.shifts, c.main.shifts);
    }

    #[test]
    fn register_budget_zero_equals_method_a() {
        let (a, b) = (fe(60), fe(61));
        let plain = mul_ld(a, b);
        let zero = mul_ld_fixed_with_registers(a, b, 0);
        assert_eq!(plain.main, zero.main);
        assert_eq!(plain.value, zero.value);
    }

    #[test]
    fn register_budget_nine_matches_algorithm_1() {
        let (a, b) = (fe(62), fe(63));
        let paper = mul_ld_fixed(a, b);
        let nine = mul_ld_fixed_with_registers(a, b, 9);
        assert_eq!(paper.main, nine.main);
        // And the chosen residency is exactly v[3..12].
        let set = residency_for_budget(9);
        for (i, &in_regs) in set.iter().enumerate() {
            assert_eq!(in_regs, (3..12).contains(&i), "index {i}");
        }
    }

    #[test]
    fn memory_ops_decrease_monotonically_with_registers() {
        let (a, b) = (fe(64), fe(65));
        let mut last = u64::MAX;
        for regs in 0..=16 {
            let p = mul_ld_fixed_with_registers(a, b, regs);
            assert!(p.value == mul_ld(a, b).value);
            let mem = p.main.memory_ops();
            assert!(mem <= last, "regs={regs}: {mem} > {last}");
            last = mem;
        }
        // Full residency leaves only LUT reads and operand loads.
        let full = mul_ld_fixed_with_registers(a, b, 16);
        assert!(
            full.main.writes < 10,
            "all-register writes: {}",
            full.main.writes
        );
    }

    #[test]
    fn marginal_register_benefit_shrinks() {
        // The paper stops at nine registers; the curve of savings per
        // added register must flatten (the centre words are hottest).
        let (a, b) = (fe(66), fe(67));
        let mem = |r: usize| mul_ld_fixed_with_registers(a, b, r).main.memory_ops() as i64;
        let first_gain = mem(0) - mem(1);
        let late_gain = mem(15) - mem(16);
        assert!(first_gain > late_gain, "gains {first_gain} vs {late_gain}");
    }

    #[test]
    fn tally_plus_and_cycles() {
        let t1 = Tally {
            reads: 1,
            writes: 2,
            xors: 3,
            shifts: 4,
        };
        let t2 = Tally {
            reads: 10,
            writes: 20,
            xors: 30,
            shifts: 40,
        };
        let s = t1.plus(t2);
        assert_eq!(s.reads, 11);
        assert_eq!(s.cycles(), 2 * (11 + 22) + 33 + 44);
        assert_eq!(s.memory_ops(), 33);
    }
}
