//! The closed-form operation-count formulas of the paper's Table 1 and
//! their evaluation (Table 2).
//!
//! For field multiplication in F₂²³³ with word count `n`, window w = 4
//! and n + 1 registers available for partial products, the paper states:
//!
//! | Method | Read | Write | XOR |
//! |---|---|---|---|
//! | A: LD | 16n² + 23n | 8n² + 30n | 8n² + 30n − 7 |
//! | B: LD rotating registers | 8n² + 39n − 8 | 46n | 8n² + 38n − 7 |
//! | C: LD fixed registers | 8n² + 24n + 1 | 31n + 1 | 8n² + 30n − 7 |
//!
//! with a constant 42n − 21 shift operations for all three, and a cycle
//! estimate that charges memory operations 2 cycles and everything else 1.

/// Operation counts for one field multiplication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCounts {
    /// Memory reads (2 cycles each).
    pub reads: u64,
    /// Memory writes (2 cycles each).
    pub writes: u64,
    /// XOR word operations (1 cycle).
    pub xors: u64,
    /// Shift word operations (1 cycle).
    pub shifts: u64,
}

impl OpCounts {
    /// The paper's cycle estimate: memory operations take 2 cycles, all
    /// other operations 1 (Table 2, footnote).
    pub fn cycles(&self) -> u64 {
        2 * (self.reads + self.writes) + self.xors + self.shifts
    }

    /// Total memory operations (the quantity the paper optimises).
    pub fn memory_ops(&self) -> u64 {
        self.reads + self.writes
    }
}

/// The three compared multiplication methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Plain López-Dahab.
    A,
    /// López-Dahab with rotating registers (Aranha et al.).
    B,
    /// López-Dahab with fixed registers (this paper).
    C,
}

impl Method {
    /// All methods in the paper's row order.
    pub const ALL: [Method; 3] = [Method::A, Method::B, Method::C];

    /// The paper's row label.
    pub const fn label(self) -> &'static str {
        match self {
            Method::A => "LD",
            Method::B => "LD with rotating registers",
            Method::C => "LD with fixed registers",
        }
    }

    /// Table 1 formulas evaluated at word count `n`.
    pub fn op_counts(self, n: u64) -> OpCounts {
        let shifts = 42 * n - 21;
        match self {
            Method::A => OpCounts {
                reads: 16 * n * n + 23 * n,
                writes: 8 * n * n + 30 * n,
                xors: 8 * n * n + 30 * n - 7,
                shifts,
            },
            Method::B => OpCounts {
                reads: 8 * n * n + 39 * n - 8,
                writes: 46 * n,
                xors: 8 * n * n + 38 * n - 7,
                shifts,
            },
            Method::C => OpCounts {
                reads: 8 * n * n + 24 * n + 1,
                writes: 31 * n + 1,
                xors: 8 * n * n + 30 * n - 7,
                shifts,
            },
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u64 = crate::N as u64;

    #[test]
    fn table2_row_a() {
        let a = Method::A.op_counts(N);
        assert_eq!((a.reads, a.writes, a.xors, a.shifts), (1208, 752, 745, 315));
        assert_eq!(a.cycles(), 4980);
    }

    #[test]
    fn table2_row_b() {
        let b = Method::B.op_counts(N);
        assert_eq!((b.reads, b.writes, b.xors, b.shifts), (816, 368, 809, 315));
        assert_eq!(b.cycles(), 3492);
    }

    #[test]
    fn table2_row_c() {
        let c = Method::C.op_counts(N);
        assert_eq!((c.reads, c.writes, c.xors, c.shifts), (705, 249, 745, 315));
        assert_eq!(c.cycles(), 2968);
    }

    #[test]
    fn claimed_improvements() {
        // §3.3: "a performance increase of 15% over the LD with rotating
        // registers method, and a performance increase of 40% over the
        // standard LD method."
        let a = Method::A.op_counts(N).cycles() as f64;
        let b = Method::B.op_counts(N).cycles() as f64;
        let c = Method::C.op_counts(N).cycles() as f64;
        let over_b = 1.0 - c / b;
        let over_a = 1.0 - c / a;
        assert!((over_b - 0.15).abs() < 0.01, "got {over_b}");
        assert!((over_a - 0.40).abs() < 0.01, "got {over_a}");
    }

    #[test]
    fn memory_ops_strictly_decrease_a_to_c() {
        let a = Method::A.op_counts(N).memory_ops();
        let b = Method::B.op_counts(N).memory_ops();
        let c = Method::C.op_counts(N).memory_ops();
        assert!(a > b && b > c, "a={a} b={b} c={c}");
    }

    #[test]
    fn xor_counts_of_a_and_c_match() {
        // Method C changes only *where* words live, not the arithmetic, so
        // its XOR column equals Method A's.
        assert_eq!(Method::A.op_counts(N).xors, Method::C.op_counts(N).xors);
    }
}
