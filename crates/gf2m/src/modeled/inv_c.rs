//! Modeled Extended-Euclidean inversion (§3.2.3).
//!
//! The paper implements inversion in C (its Table 6 lists no assembly
//! variant), with two source-level optimisations that this kernel
//! mirrors:
//!
//! 1. *swap elimination* — the main loop is two code segments with the
//!    roles of (u, g1) and (v, g2) interchanged, so the multi-precision
//!    swap never happens;
//! 2. *most-significant-word tracking* — the degree scan starts at the
//!    tracked top word instead of the vector end.
//!
//! The Bézout updates are full-width (the C code operates on fixed
//! 8-word arrays), which together with the per-step call overhead puts
//! the total near the paper's 141 916 cycles.

use super::{FeSlot, Layout};
use crate::inv::F_WORDS;
use crate::N;
use m0plus::{Category, Cond, Machine, Reg};

/// Offsets of the four state vectors inside the inversion scratch area.
const U_OFF: u32 = 0;
const V_OFF: u32 = 8;
const G1_OFF: u32 = 16;
const G2_OFF: u32 = 24;

/// Reads a state vector without cost (host mirror for control flow).
fn peek(m: &Machine, base: m0plus::Addr, off: u32) -> [u32; N] {
    m.read_slice(base.offset(off), N)
        .try_into()
        .expect("state vector is 8 words")
}

fn host_degree(w: &[u32; N]) -> isize {
    for i in (0..N).rev() {
        if w[i] != 0 {
            return (i * 32 + 31 - w[i].leading_zeros() as usize) as isize;
        }
    }
    -1
}

/// Charges the degree computation: scan down from the tracked top word,
/// then a 5-step binary search for the top bit. Returns the degree and
/// the updated top index.
fn charged_degree(m: &mut Machine, base: m0plus::Addr, off: u32, top: usize) -> (isize, usize) {
    let w = peek(m, base, off);
    m.bl();
    let mut t = top;
    loop {
        m.ldr(Reg::R4, Reg::R0, off + t as u32); // via the state base in r0
        m.cmp_imm(Reg::R4, 0);
        let zero = w[t] == 0;
        m.b_cond(if zero { Cond::Eq } else { Cond::Ne });
        if !zero || t == 0 {
            break;
        }
        m.subs_imm(Reg::R5, 1); // top index decrement
        t -= 1;
    }
    // Binary search for the highest set bit of the top word.
    for shift in [16u32, 8, 4, 2, 1] {
        m.lsrs_imm(Reg::R6, Reg::R4, shift);
        m.cmp_imm(Reg::R6, 0);
        m.b_cond(Cond::Ne);
    }
    m.bx();
    (host_degree(&w), t)
}

/// Offset of the shift temporary used by the variable-shift helper.
/// Words 32..40 of the scratch area are beyond the imm5 range of
/// T1 `LDR`/`STR` (0..=31 words), so the kernel keeps a dedicated base
/// register (`r2`) pointing at this area.
const TMP_OFF: u32 = 32;

/// The paper's "variable field shift function": `tmp ← b << j`, as a
/// called helper operating full-width on the 8-word array (this is the
/// routine §3.2.3 says benefits from the tracked top-word index; the
/// per-word work below is what remains after that optimisation).
fn shift_to_temp(m: &mut Machine, b_off: u32, j: usize) {
    let ws = (j / 32) as u32;
    let bs = (j % 32) as u32;
    m.bl();
    // Words below the shift distance are zero.
    m.movs_imm(Reg::R4, 0);
    for d in 0..ws {
        m.str(Reg::R4, Reg::R2, d);
    }
    for d in ws..N as u32 {
        m.ldr(Reg::R4, Reg::R0, b_off + d - ws);
        if bs > 0 {
            m.lsls_imm(Reg::R4, Reg::R4, bs);
            if d > ws {
                m.ldr(Reg::R5, Reg::R0, b_off + d - ws - 1);
                m.lsrs_imm(Reg::R5, Reg::R5, 32 - bs);
                m.orrs(Reg::R4, Reg::R5);
            }
        }
        m.str(Reg::R4, Reg::R2, d);
        // Loop control of the helper (word counter, compare, branch).
        m.adds_imm(Reg::R6, 1);
        m.cmp_imm(Reg::R6, 8);
        m.b_cond(Cond::Ne);
    }
    m.bx();
}

/// Called helper `a ^= tmp`, full-width.
fn xor_temp(m: &mut Machine, a_off: u32) {
    m.bl();
    for d in 0..N as u32 {
        m.ldr(Reg::R4, Reg::R0, a_off + d);
        m.ldr(Reg::R5, Reg::R2, d);
        m.eors(Reg::R4, Reg::R5);
        m.str(Reg::R4, Reg::R0, a_off + d);
        m.adds_imm(Reg::R6, 1);
        m.cmp_imm(Reg::R6, 8);
        m.b_cond(Cond::Ne);
    }
    m.bx();
}

/// Charges and performs `a ^= b << j` the way the paper's C code does:
/// shift into a temporary with the variable-shift helper, then XOR the
/// temporary in.
fn xor_shifted(m: &mut Machine, a_off: u32, b_off: u32, j: usize) {
    shift_to_temp(m, b_off, j);
    xor_temp(m, a_off);
}

/// Charges the `u == 1` test (load low word, compare, OR-scan the rest
/// only when the low word matches — the paper's early-out).
fn charged_is_one(m: &mut Machine, base: m0plus::Addr, off: u32) -> bool {
    let w = peek(m, base, off);
    m.ldr(Reg::R4, Reg::R0, off);
    m.cmp_imm(Reg::R4, 1);
    let low_is_one = w[0] == 1;
    m.b_cond(if low_is_one { Cond::Eq } else { Cond::Ne });
    if !low_is_one {
        return false;
    }
    m.movs_imm(Reg::R5, 0);
    for i in 1..N as u32 {
        m.ldr(Reg::R4, Reg::R0, off + i);
        m.orrs(Reg::R5, Reg::R4);
    }
    m.cmp_imm(Reg::R5, 0);
    let rest_zero = w[1..].iter().all(|&x| x == 0);
    m.b_cond(if rest_zero { Cond::Eq } else { Cond::Ne });
    rest_zero
}

/// Modeled inversion `z ← x⁻¹`.
///
/// # Panics
///
/// Panics if `x` is zero (the portable reference does the zero check;
/// within the modeled point multiplication the input is never zero).
pub(crate) fn inv(m: &mut Machine, layout: &Layout, z: FeSlot, x: FeSlot) {
    let scratch = layout.inv_scratch;
    m.in_category(Category::Inversion, |m| {
        m.bl();
        m.stack_transfer(5);
        m.set_base(Reg::R0, scratch);
        m.set_base(Reg::R1, x.0);
        m.set_base(Reg::R2, scratch.offset(TMP_OFF));

        // u ← x (8 load/store pairs), v ← f (literal pool), g1 ← 1,
        // g2 ← 0.
        for l in 0..N as u32 {
            m.ldr(Reg::R4, Reg::R1, l);
            m.str(Reg::R4, Reg::R0, U_OFF + l);
        }
        for (l, &w) in F_WORDS.iter().enumerate() {
            m.ldr_const(Reg::R4, w);
            m.str(Reg::R4, Reg::R0, V_OFF + l as u32);
        }
        m.movs_imm(Reg::R4, 0);
        for l in 0..N as u32 {
            m.str(Reg::R4, Reg::R0, G1_OFF + l);
            m.str(Reg::R4, Reg::R0, G2_OFF + l);
        }
        m.movs_imm(Reg::R4, 1);
        m.str(Reg::R4, Reg::R0, G1_OFF);

        assert!(
            peek(m, scratch, U_OFF).iter().any(|&w| w != 0),
            "inversion of zero"
        );

        let mut u_top = N - 1;
        let mut v_top = N - 1;
        let result_off = loop {
            // Segment A: reduce u by v while deg(u) ≥ deg(v).
            let (v_deg, vt) = charged_degree(m, scratch, V_OFF, v_top);
            v_top = vt;
            loop {
                let (u_deg, ut) = charged_degree(m, scratch, U_OFF, u_top);
                u_top = ut;
                m.cmp(Reg::R4, Reg::R5); // deg comparison
                if u_deg < v_deg {
                    m.b_cond(Cond::Lt);
                    break;
                }
                m.b_cond(Cond::Ge);
                let j = (u_deg - v_deg) as usize;
                m.subs(Reg::R6, Reg::R4, Reg::R5); // j
                xor_shifted(m, U_OFF, V_OFF, j);
                xor_shifted(m, G1_OFF, G2_OFF, j);
            }
            if charged_is_one(m, scratch, U_OFF) {
                break G1_OFF;
            }

            // Segment B: the same code with the names interchanged.
            let (u_deg, ut) = charged_degree(m, scratch, U_OFF, u_top);
            u_top = ut;
            loop {
                let (v_deg, vt) = charged_degree(m, scratch, V_OFF, v_top);
                v_top = vt;
                m.cmp(Reg::R4, Reg::R5);
                if v_deg < u_deg {
                    m.b_cond(Cond::Lt);
                    break;
                }
                m.b_cond(Cond::Ge);
                let j = (v_deg - u_deg) as usize;
                m.subs(Reg::R6, Reg::R4, Reg::R5);
                xor_shifted(m, V_OFF, U_OFF, j);
                xor_shifted(m, G2_OFF, G1_OFF, j);
            }
            if charged_is_one(m, scratch, V_OFF) {
                break G2_OFF;
            }
        };

        // Copy the Bézout coefficient out.
        m.set_base(Reg::R1, z.0);
        for l in 0..N as u32 {
            m.ldr(Reg::R4, Reg::R0, result_off + l);
            m.str(Reg::R4, Reg::R1, l);
        }
        m.stack_transfer(5);
        m.bx();
    });
}

#[cfg(test)]
mod tests {
    use crate::modeled::{ModeledField, Tier};
    use crate::Fe;
    use m0plus::Category;

    fn fe(seed: u64) -> Fe {
        let mut s = seed.wrapping_mul(0xDA94_2042_E4DD_58B5) | 1;
        let mut w = [0u32; crate::N];
        for x in w.iter_mut() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *x = (s >> 5) as u32;
        }
        Fe::from_words_reduced(w)
    }

    #[test]
    fn modeled_inversion_matches_portable() {
        let mut f = ModeledField::new(Tier::C);
        for seed in 0..10u64 {
            let a = fe(seed);
            let (sa, sz) = (f.alloc_init(a), f.alloc());
            f.inv(sz, sa);
            assert_eq!(f.load(sz), a.invert().unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn inversion_of_one_and_small_values() {
        let mut f = ModeledField::new(Tier::Asm);
        for v in [1u32, 2, 3, 0xFF] {
            let a = Fe::from_words_reduced([v, 0, 0, 0, 0, 0, 0, 0]);
            let (sa, sz) = (f.alloc_init(a), f.alloc());
            f.inv(sz, sa);
            assert_eq!(f.load(sz), a.invert().unwrap());
        }
    }

    #[test]
    #[should_panic(expected = "inversion of zero")]
    fn inversion_of_zero_panics() {
        let mut f = ModeledField::new(Tier::C);
        let (sa, sz) = (f.alloc_init(Fe::ZERO), f.alloc());
        f.inv(sz, sa);
    }

    #[test]
    fn inversion_cycles_near_table6() {
        // Table 6: Inversion (C): 141 916 cycles. Our accounting
        // conventions land in the same regime.
        let mut f = ModeledField::new(Tier::C);
        let (sa, sz) = (f.alloc_init(fe(42)), f.alloc());
        f.inv(sz, sa);
        let cycles = f.machine().category_totals(Category::Inversion).cycles;
        assert!(
            (80_000..=200_000).contains(&cycles),
            "inversion = {cycles}, paper: 141 916"
        );
    }
}
