//! Table-based squaring kernels with interleaved reduction (§3.2.4).
//!
//! The paper: *"The lower half of the output of the squaring operation is
//! kept inside the registers and the upper half is expanded and then
//! immediately reduced."* The assembly kernel does exactly that: the
//! eight result words live in three lo and five hi registers; each upper
//! product word is spread through the byte table and folded into the
//! register-resident result on the spot, so no upper word ever reaches
//! memory. The C kernel expands everything to a memory accumulator and
//! reduces afterwards — the difference is Table 6's 419 → 395 gap.

use super::{FeSlot, Layout};
use crate::N;
use m0plus::{Category, Machine, Reg};

/// Residency of the eight result words in the assembly kernel:
/// c0–c2 in lo registers, c3–c7 in hi registers.
fn home(idx: usize) -> HomeLoc {
    match idx {
        0 => HomeLoc::Lo(Reg::R2),
        1 => HomeLoc::Lo(Reg::R3),
        2 => HomeLoc::Lo(Reg::R6),
        3..=7 => HomeLoc::Hi([Reg::R8, Reg::R9, Reg::R10, Reg::R11, Reg::R12][idx - 3]),
        _ => unreachable!("result has 8 words"),
    }
}

#[derive(Clone, Copy)]
enum HomeLoc {
    Lo(Reg),
    Hi(Reg),
}

/// result\[idx\] ^= r4 (r7 shuttle for hi homes).
fn fold_r4(m: &mut Machine, idx: usize) {
    match home(idx) {
        HomeLoc::Lo(r) => m.eors(r, Reg::R4),
        HomeLoc::Hi(r) => {
            m.mov(Reg::R7, r);
            m.eors(Reg::R7, Reg::R4);
            m.mov(r, Reg::R7);
        }
    }
}

/// result\[idx\] = r5.
fn assign_r5(m: &mut Machine, idx: usize) {
    match home(idx) {
        HomeLoc::Lo(r) => m.mov(r, Reg::R5),
        HomeLoc::Hi(r) => m.mov(r, Reg::R5),
    }
}

/// Spreads the low half-word of `r4` through the byte table into `r5`
/// (two table look-ups combined). `r0` = table base. Clobbers `r7`.
fn spread_low_half(m: &mut Machine) {
    // byte 0.
    m.lsls_imm(Reg::R5, Reg::R4, 24);
    m.lsrs_imm(Reg::R5, Reg::R5, 24);
    m.ldr_reg(Reg::R5, Reg::R0, Reg::R5);
    // byte 1 into the upper half.
    m.lsrs_imm(Reg::R7, Reg::R4, 8);
    m.lsls_imm(Reg::R7, Reg::R7, 24);
    m.lsrs_imm(Reg::R7, Reg::R7, 24);
    m.ldr_reg(Reg::R7, Reg::R0, Reg::R7);
    m.lsls_imm(Reg::R7, Reg::R7, 16);
    m.orrs(Reg::R5, Reg::R7);
}

/// Spreads the high half-word of `r4` into `r5`. Clobbers `r7`.
fn spread_high_half(m: &mut Machine) {
    // byte 2.
    m.lsrs_imm(Reg::R5, Reg::R4, 16);
    m.lsls_imm(Reg::R5, Reg::R5, 24);
    m.lsrs_imm(Reg::R5, Reg::R5, 24);
    m.ldr_reg(Reg::R5, Reg::R0, Reg::R5);
    // byte 3.
    m.lsrs_imm(Reg::R7, Reg::R4, 24);
    m.ldr_reg(Reg::R7, Reg::R0, Reg::R7);
    m.lsls_imm(Reg::R7, Reg::R7, 16);
    m.orrs(Reg::R5, Reg::R7);
}

/// Assembly-tier squaring: lower half register-resident, upper half
/// expanded and immediately reduced (Table 6: 395 cycles).
pub(crate) fn sqr_asm(m: &mut Machine, layout: &Layout, z: FeSlot, x: FeSlot) {
    m.in_category(Category::Square, |m| {
        m.bl();
        m.stack_transfer(5);
        m.set_base(Reg::R0, layout.sqr_table);
        m.set_base(Reg::R1, x.0);
        m.str_sp(Reg::R1, 15); // not needed again, but frames the ABI
        m.set_base(Reg::R1, x.0);

        // Phase 1: lower product words c[0..8] from x[0..4], assigned to
        // their register homes.
        for i in 0..N / 2 {
            m.ldr(Reg::R4, Reg::R1, i as u32);
            spread_low_half(m);
            assign_r5(m, 2 * i);
            spread_high_half(m);
            assign_r5(m, 2 * i + 1);
        }

        // Phase 2: upper product words 15…8, expanded and folded at once.
        // Upper-word cross-contributions (product word 8..12 receives
        // folds from 12..16) are handled by processing descending and
        // keeping words 8..11 in frame scratch.
        const UP: u32 = 16; // frame offsets 16..20 hold product words 8..11
        m.movs_imm(Reg::R5, 0);
        for off in 0..4 {
            m.str_sp(Reg::R5, UP + off);
        }
        for idx in (N..2 * N).rev() {
            let i = idx / 2; // source word of x
            m.ldr(Reg::R4, Reg::R1, i as u32);
            if idx % 2 == 0 {
                spread_low_half(m);
            } else {
                spread_high_half(m);
            }
            // Merge contributions already folded into this upper word.
            if idx < 12 {
                m.ldr_sp(Reg::R7, UP + (idx - 8) as u32);
                m.eors(Reg::R5, Reg::R7);
            }
            // Fold the four trinomial images.
            for (delta, left, amount) in [
                (8usize, true, 23u32),
                (7, false, 9),
                (5, true, 1),
                (4, false, 31),
            ] {
                let target = idx - delta;
                if left {
                    m.lsls_imm(Reg::R4, Reg::R5, amount);
                } else {
                    m.lsrs_imm(Reg::R4, Reg::R5, amount);
                }
                if target < N {
                    fold_r4(m, target);
                } else {
                    let off = UP + (target - 8) as u32;
                    m.ldr_sp(Reg::R7, off);
                    m.eors(Reg::R7, Reg::R4);
                    m.str_sp(Reg::R7, off);
                }
            }
        }

        // Excess bits of c[7].
        m.mov(Reg::R5, Reg::R12);
        m.lsrs_imm(Reg::R4, Reg::R5, 9);
        fold_r4(m, 0);
        m.lsrs_imm(Reg::R4, Reg::R5, 9);
        m.lsls_imm(Reg::R4, Reg::R4, 10);
        fold_r4(m, 2);
        m.lsrs_imm(Reg::R4, Reg::R5, 31);
        fold_r4(m, 3);
        m.ldr_const(Reg::R4, crate::TOP_MASK);
        m.ands(Reg::R5, Reg::R4);
        m.mov(Reg::R12, Reg::R5);

        // Store out.
        m.set_base(Reg::R1, z.0);
        for idx in 0..N {
            match home(idx) {
                HomeLoc::Lo(r) => m.str(r, Reg::R1, idx as u32),
                HomeLoc::Hi(r) => {
                    m.mov(Reg::R5, r);
                    m.str(Reg::R5, Reg::R1, idx as u32);
                }
            }
        }
        m.stack_transfer(5);
        m.bx();
    });
}

/// C-tier squaring (Table 6: 419 cycles): expand all sixteen product
/// words to the memory accumulator, then reduce with the generic routine.
pub(crate) fn sqr_c(m: &mut Machine, layout: &Layout, z: FeSlot, x: FeSlot) {
    m.in_category(Category::Square, |m| {
        m.bl();
        m.stack_transfer(5);
        m.set_base(Reg::R0, layout.sqr_table);
        m.set_base(Reg::R1, x.0);
        m.set_base(Reg::R2, z.0);
        m.str_sp(Reg::R2, 15);
        const ACC: u32 = 16;
        for i in 0..N {
            m.ldr(Reg::R4, Reg::R1, i as u32);
            spread_low_half(m);
            m.str_sp(Reg::R5, ACC + 2 * i as u32);
            spread_high_half(m);
            m.str_sp(Reg::R5, ACC + 2 * i as u32 + 1);
        }
        // Reduce from the accumulator and store through the saved
        // pointer; the loop mirrors mul_c::reduce_and_store inline (the
        // compiler inlines it in the C build too).
        for idx in ((N as u32)..(2 * N) as u32).rev() {
            m.ldr_sp(Reg::R5, ACC + idx);
            for (delta, left, amount) in [
                (8u32, true, 23u32),
                (7, false, 9),
                (5, true, 1),
                (4, false, 31),
            ] {
                if left {
                    m.lsls_imm(Reg::R2, Reg::R5, amount);
                } else {
                    m.lsrs_imm(Reg::R2, Reg::R5, amount);
                }
                m.ldr_sp(Reg::R3, ACC + idx - delta);
                m.eors(Reg::R3, Reg::R2);
                m.str_sp(Reg::R3, ACC + idx - delta);
            }
        }
        m.ldr_sp(Reg::R5, ACC + 7);
        m.lsrs_imm(Reg::R4, Reg::R5, 9);
        m.ldr_sp(Reg::R3, ACC);
        m.eors(Reg::R3, Reg::R4);
        m.str_sp(Reg::R3, ACC);
        m.lsls_imm(Reg::R2, Reg::R4, 10);
        m.ldr_sp(Reg::R3, ACC + 2);
        m.eors(Reg::R3, Reg::R2);
        m.str_sp(Reg::R3, ACC + 2);
        m.lsrs_imm(Reg::R2, Reg::R4, 22);
        m.ldr_sp(Reg::R3, ACC + 3);
        m.eors(Reg::R3, Reg::R2);
        m.str_sp(Reg::R3, ACC + 3);
        m.ldr_const(Reg::R4, crate::TOP_MASK);
        m.ands(Reg::R5, Reg::R4);
        m.str_sp(Reg::R5, ACC + 7);

        m.ldr_sp(Reg::R0, 15);
        for i in 0..N as u32 {
            m.ldr_sp(Reg::R5, ACC + i);
            m.str(Reg::R5, Reg::R0, i);
        }
        m.stack_transfer(5);
        m.bx();
    });
}

#[cfg(test)]
mod tests {
    use crate::modeled::{ModeledField, Tier};
    use crate::Fe;
    use m0plus::Category;

    fn fe(seed: u64) -> Fe {
        let mut s = seed.wrapping_mul(0x94D0_49BB_1331_11EB) | 1;
        let mut w = [0u32; crate::N];
        for x in w.iter_mut() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *x = (s >> 3) as u32;
        }
        Fe::from_words_reduced(w)
    }

    #[test]
    fn both_tiers_match_portable() {
        for tier in [Tier::Asm, Tier::C] {
            let mut f = ModeledField::new(tier);
            for seed in 0..12u64 {
                let a = fe(seed);
                let (sa, sz) = (f.alloc_init(a), f.alloc());
                f.sqr(sz, sa);
                assert_eq!(f.load(sz), a.square(), "{tier:?} seed {seed}");
            }
        }
    }

    #[test]
    fn edge_values() {
        let mut top = [0u32; crate::N];
        top[7] = crate::TOP_MASK;
        for tier in [Tier::Asm, Tier::C] {
            let mut f = ModeledField::new(tier);
            for a in [Fe::ZERO, Fe::ONE, Fe(top)] {
                let (sa, sz) = (f.alloc_init(a), f.alloc());
                f.sqr(sz, sa);
                assert_eq!(f.load(sz), a.square(), "{tier:?}");
            }
        }
    }

    #[test]
    fn cycle_counts_near_table6() {
        // Table 6: Modular squaring — C 419, assembly 395.
        let cost = |tier| {
            let mut f = ModeledField::new(tier);
            let (sa, sz) = (f.alloc_init(fe(7)), f.alloc());
            f.sqr(sz, sa);
            f.machine().category_totals(Category::Square).cycles
        };
        let asm = cost(Tier::Asm);
        let c = cost(Tier::C);
        assert!(asm < c, "asm {asm} should beat C {c}");
        assert!((330..=480).contains(&asm), "asm sqr = {asm}, paper: 395");
        assert!((360..=560).contains(&c), "C sqr = {c}, paper: 419");
    }
}
