//! Machine-modeled field arithmetic: *virtual assembly* kernels executed
//! on the [`m0plus::Machine`].
//!
//! Every kernel is a straight-line sequence of calls on the machine — one
//! call per Thumb instruction — so the cycle and energy totals are
//! *measured from executed instruction streams*, not estimated from
//! formulas, while the computed results are verified against the portable
//! tier.
//!
//! Two tiers mirror the paper's Table 6 ("C language" vs "Assembly"):
//!
//! * [`Tier::C`] — compiler-like code: the accumulator lives in memory,
//!   loops keep their counters and branches, and values are re-loaded
//!   around every operation. This is what a (good) C compiler produces
//!   for the M0+ when it cannot pin nine words into registers.
//! * [`Tier::Asm`] — the paper's hand-scheduled kernels: the
//!   fixed-register accumulator split of its Algorithm 1 (four lo
//!   registers, five hi registers, seven memory words), fully unrolled
//!   inner loops, stack-relative operand addressing, and the
//!   `ADCS`-doubling trick in the window-table generation.
//!
//! [`ModeledField`] is the facade the curve layer drives; it owns the
//! machine and attributes each operation to its Table-7 category.

mod inv_c;
mod mul_asm;
mod mul_c;
mod sqr;
mod support;

use crate::Fe;
use m0plus::{Addr, Category, Machine};

/// Which implementation tier a [`ModeledField`] runs (Table 6's columns,
/// plus the RELIC-baseline style of §4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Compiler-like memory-to-memory code.
    C,
    /// Hand-scheduled fixed-register assembly.
    Asm,
    /// Generic-library C in the style of the paper's RELIC baseline:
    /// the same algorithms wrapped in called helpers, with operand
    /// copies in and out of every routine and a separate
    /// (non-interleaved) reduction pass — the overheads a portable
    /// cryptographic toolkit pays on a register-starved core.
    RelicC,
}

/// A field element stored in machine RAM (eight words).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeSlot(pub Addr);

/// Storage class of an accumulator word in the assembly-tier
/// fixed-register multiplier (exposed for rendering the paper's
/// Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// A lo register (`r0`–`r7`), directly usable by ALU instructions.
    LoRegister,
    /// A hi register (`r8`–`r12`), reachable through `MOV`.
    HiRegister,
    /// A stack-frame word.
    Memory,
}

/// The residency of accumulator word `idx` (0…15) under the paper's
/// Algorithm 1 as realised by the assembly kernel.
///
/// # Panics
///
/// Panics for `idx ≥ 16`.
pub fn accumulator_residency(idx: usize) -> Residency {
    match mul_asm::loc(idx) {
        mul_asm::Loc::Lo(_) => Residency::LoRegister,
        mul_asm::Loc::Hi(_) => Residency::HiRegister,
        mul_asm::Loc::Mem(_) => Residency::Memory,
    }
}

/// Layout of the multiplication working memory inside the machine.
pub(crate) struct Layout {
    /// 16-entry × 8-word López-Dahab window table.
    pub lut: Addr,
    /// Stack frame: `[0..8)` copy of x, `[8..11)` accumulator words
    /// v0–v2, `[11..15)` accumulator words v12–v15, `[15]` saved pointer,
    /// `[16..32)` general scratch (full 2n accumulator for the C tier).
    /// The kernels address it through `sp`; it is kept here for trace
    /// renderers (Figure 1).
    #[allow(dead_code)]
    pub frame: Addr,
    /// The 256-entry byte→halfword squaring table (one entry per RAM
    /// word; it lives in flash on the real part, so writing it is not
    /// charged).
    pub sqr_table: Addr,
    /// Scratch area for the inversion state vectors u, v, g1, g2 plus
    /// the variable-shift temporary (5 × 8 words, rounded up).
    pub inv_scratch: Addr,
}

/// Machine-resident F₂²³³ arithmetic with per-category cost attribution.
///
/// ```
/// use gf2m::modeled::{ModeledField, Tier};
/// use gf2m::Fe;
///
/// let mut f = ModeledField::new(Tier::Asm);
/// let a = f.alloc_init(Fe::from_hex("deadbeef").unwrap());
/// let b = f.alloc_init(Fe::from_hex("facefeed").unwrap());
/// let z = f.alloc();
/// f.mul(z, a, b);
/// assert_eq!(
///     f.load(z),
///     Fe::from_hex("deadbeef").unwrap() * Fe::from_hex("facefeed").unwrap()
/// );
/// assert!(f.machine().cycles() > 0);
/// ```
#[derive(Debug)]
pub struct ModeledField {
    machine: Machine,
    tier: Tier,
    layout_lut: Addr,
    layout_frame: Addr,
    layout_sqr_table: Addr,
    layout_inv_scratch: Addr,
}

impl ModeledField {
    /// Default machine size: enough RAM for the window table, the frame,
    /// and a few hundred field-element slots (the point-multiplication
    /// working set).
    pub const DEFAULT_RAM_WORDS: usize = 16 * 1024;

    /// Creates a modeled field of the given tier.
    pub fn new(tier: Tier) -> Self {
        Self::with_ram(tier, Self::DEFAULT_RAM_WORDS)
    }

    /// Creates a modeled field with `ram_words` of machine RAM.
    pub fn with_ram(tier: Tier, ram_words: usize) -> Self {
        Self::with_ram_and_model(tier, ram_words, m0plus::EnergyModel::cortex_m0plus())
    }

    /// Creates a modeled field with a custom [`m0plus::EnergyModel`]
    /// (for sensitivity analysis of the §3.1 energy argument).
    pub fn with_ram_and_model(
        tier: Tier,
        ram_words: usize,
        model: m0plus::EnergyModel,
    ) -> Self {
        let mut machine = Machine::with_model(ram_words, model);
        let lut = machine.alloc(16 * 8);
        let frame = machine.alloc(32);
        let sqr_table = machine.alloc(256);
        let table_words: Vec<u32> = crate::sqr::SQR_TABLE.iter().map(|&h| h as u32).collect();
        machine.write_slice(sqr_table, &table_words);
        let inv_scratch = machine.alloc(48);
        machine.set_base(m0plus::Reg::Sp, frame);
        ModeledField {
            machine,
            tier,
            layout_lut: lut,
            layout_frame: frame,
            layout_sqr_table: sqr_table,
            layout_inv_scratch: inv_scratch,
        }
    }

    /// The tier this field runs.
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Read access to the underlying machine (cycle/energy counters).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access for callers that charge their own support code.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    pub(crate) fn layout(&self) -> Layout {
        Layout {
            lut: self.layout_lut,
            frame: self.layout_frame,
            sqr_table: self.layout_sqr_table,
            inv_scratch: self.layout_inv_scratch,
        }
    }

    /// Allocates an uninitialised element slot.
    pub fn alloc(&mut self) -> FeSlot {
        FeSlot(self.machine.alloc(crate::N))
    }

    /// Allocates a slot and stores `value` (un-costed setup).
    pub fn alloc_init(&mut self, value: Fe) -> FeSlot {
        let slot = self.alloc();
        self.store(slot, value);
        slot
    }

    /// Stores `value` into `slot` without charging cycles (setup /
    /// test-oracle access).
    pub fn store(&mut self, slot: FeSlot, value: Fe) {
        self.machine.write_slice(slot.0, value.words());
    }

    /// Loads the element in `slot` without charging cycles.
    pub fn load(&self, slot: FeSlot) -> Fe {
        let words = self.machine.read_slice(slot.0, crate::N);
        Fe::from_words_reduced(words.try_into().expect("slot is 8 words"))
    }

    /// Modular multiplication `z ← x · y`, charged to *Multiply* with the
    /// window-table generation under *Multiply Precomputation*.
    pub fn mul(&mut self, z: FeSlot, x: FeSlot, y: FeSlot) {
        // Capture the expectation before the kernel runs: z may alias x
        // or y (the kernels read their inputs fully before the final
        // store-out, so aliasing is safe).
        #[cfg(debug_assertions)]
        let expect = self.load(x) * self.load(y);
        let layout = self.layout();
        match self.tier {
            Tier::Asm => mul_asm::mul(&mut self.machine, &layout, z, x, y),
            Tier::C => mul_c::mul_fixed(&mut self.machine, &layout, z, x, y),
            Tier::RelicC => mul_c::mul_relic(&mut self.machine, &layout, z, x, y),
        }
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.load(z),
            expect,
            "modeled multiplication diverged from the portable tier"
        );
    }

    /// The C-tier *LD with rotating registers* multiplication (the other
    /// C row of Table 6), runnable from any tier for comparison.
    pub fn mul_rotating_c(&mut self, z: FeSlot, x: FeSlot, y: FeSlot) {
        #[cfg(debug_assertions)]
        let expect = self.load(x) * self.load(y);
        let layout = self.layout();
        mul_c::mul_rotating(&mut self.machine, &layout, z, x, y);
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.load(z),
            expect,
            "modeled rotating multiplication diverged from the portable tier"
        );
    }

    /// Modular squaring `z ← x²`, charged to *Square*.
    pub fn sqr(&mut self, z: FeSlot, x: FeSlot) {
        #[cfg(debug_assertions)]
        let expect = self.load(x).square();
        let layout = self.layout();
        match self.tier {
            Tier::Asm => sqr::sqr_asm(&mut self.machine, &layout, z, x),
            Tier::C => sqr::sqr_c(&mut self.machine, &layout, z, x),
            Tier::RelicC => mul_c::sqr_relic(&mut self.machine, &layout, z, x),
        }
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.load(z),
            expect,
            "modeled squaring diverged from the portable tier"
        );
    }

    /// Modular inversion `z ← x⁻¹`, charged to *Inversion*.
    ///
    /// # Panics
    ///
    /// Panics if `x` holds zero.
    pub fn inv(&mut self, z: FeSlot, x: FeSlot) {
        #[cfg(debug_assertions)]
        let expect = self.load(x).invert();
        let layout = self.layout();
        // The paper implements inversion in C only (its Table 6 has no
        // assembly column entry for inversion), so both tiers share the
        // C kernel.
        inv_c::inv(&mut self.machine, &layout, z, x);
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            Some(self.load(z)),
            expect,
            "modeled inversion diverged from the portable tier"
        );
    }

    /// Modular inversion by the Itoh–Tsujii addition chain, built from
    /// this tier's multiplication and squaring kernels (10 M + 232 S) —
    /// the ablation partner of the EEA kernel behind [`ModeledField::inv`].
    ///
    /// # Panics
    ///
    /// Panics if `x` holds zero.
    pub fn inv_itoh_tsujii(&mut self, z: FeSlot, x: FeSlot) {
        assert!(!self.load(x).is_zero(), "inversion of zero");
        #[cfg(debug_assertions)]
        let expect = self.load(x).invert();
        // Scratch chain registers (note: allocated per call — this
        // routine is an ablation probe, not the production inversion).
        let (cur, tmp) = self.alloc_scratch_pair();
        // e(k) = x^(2^k − 1); chain 1,2,3,6,7,14,28,29,58,116,232.
        self.copy_in_category(cur, x, Category::Inversion);
        let steps: [(usize, bool); 10] = [
            (1, false),  // e2 = e1²·e1
            (1, false),  // e3 = e2²·e1   (squares: 1, mul by e1)
            (3, true),   // e6 = e3^(2³)·e3
            (1, false),  // e7 = e6²·e1
            (7, true),   // e14
            (14, true),  // e28
            (1, false),  // e29
            (29, true),  // e58
            (58, true),  // e116
            (116, true), // e232
        ];
        // `prev` holds e(k) for the self-combining steps.
        for (squares, self_combine) in steps {
            if self_combine {
                self.copy_in_category(tmp, cur, Category::Inversion);
            }
            for _ in 0..squares {
                self.sqr_in_category(cur, cur, Category::Inversion);
            }
            let operand = if self_combine { tmp } else { x };
            self.mul_in_category(cur, cur, operand, Category::Inversion);
        }
        // z = e232².
        self.sqr_in_category(z, cur, Category::Inversion);
        #[cfg(debug_assertions)]
        debug_assert_eq!(Some(self.load(z)), expect, "Itoh–Tsujii diverged");
    }

    fn alloc_scratch_pair(&mut self) -> (FeSlot, FeSlot) {
        (self.alloc(), self.alloc())
    }

    fn copy_in_category(&mut self, z: FeSlot, x: FeSlot, cat: Category) {
        self.machine.set_category_override(Some(cat));
        self.copy(z, x);
        self.machine.set_category_override(None);
    }

    fn sqr_in_category(&mut self, z: FeSlot, x: FeSlot, cat: Category) {
        self.machine.set_category_override(Some(cat));
        self.sqr(z, x);
        self.machine.set_category_override(None);
    }

    fn mul_in_category(&mut self, z: FeSlot, x: FeSlot, y: FeSlot, cat: Category) {
        self.machine.set_category_override(Some(cat));
        self.mul(z, x, y);
        self.machine.set_category_override(None);
    }

    /// Field addition (word-wise XOR) `z ← x + y`, charged to *Support*.
    pub fn add(&mut self, z: FeSlot, x: FeSlot, y: FeSlot) {
        support::add(&mut self.machine, z, x, y);
    }

    /// Copy `z ← x`, charged to *Support*.
    pub fn copy(&mut self, z: FeSlot, x: FeSlot) {
        support::copy(&mut self.machine, z, x);
    }

    /// Stores a compile-time constant into `slot` (literal-pool loads +
    /// stores), charged to *Support*.
    pub fn set_const(&mut self, slot: FeSlot, value: Fe) {
        support::set_const(&mut self.machine, slot, value);
    }

    /// Tests `x == 0`, charged to *Support*.
    pub fn is_zero(&mut self, x: FeSlot) -> bool {
        support::is_zero(&mut self.machine, x)
    }

    /// Tests `x == y`, charged to *Support*.
    pub fn equal(&mut self, x: FeSlot, y: FeSlot) -> bool {
        support::equal(&mut self.machine, x, y)
    }

    /// Runs `f` with every charged instruction force-attributed to
    /// `category` (see [`Machine::with_category_override`]).
    pub fn with_category_override<T>(
        &mut self,
        category: Category,
        f: impl FnOnce(&mut ModeledField) -> T,
    ) -> T {
        let prev = self.machine.category_override();
        self.machine.set_category_override(Some(category));
        let out = f(self);
        self.machine.set_category_override(prev);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m0plus::Category;

    fn fe(seed: u64) -> Fe {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut w = [0u32; crate::N];
        for x in w.iter_mut() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *x = (s >> 23) as u32;
        }
        Fe::from_words_reduced(w)
    }

    fn check_tier(tier: Tier) {
        let mut f = ModeledField::new(tier);
        for seed in 0..8u64 {
            let a = fe(seed);
            let b = fe(seed + 100);
            let (sa, sb, sz) = (f.alloc_init(a), f.alloc_init(b), f.alloc());
            f.mul(sz, sa, sb);
            assert_eq!(f.load(sz), a * b, "{tier:?} mul seed {seed}");
            f.sqr(sz, sa);
            assert_eq!(f.load(sz), a.square(), "{tier:?} sqr seed {seed}");
            if !a.is_zero() {
                f.inv(sz, sa);
                assert_eq!(f.load(sz), a.invert().unwrap(), "{tier:?} inv seed {seed}");
            }
            f.add(sz, sa, sb);
            assert_eq!(f.load(sz), a + b);
        }
    }

    #[test]
    fn asm_tier_matches_portable() {
        check_tier(Tier::Asm);
    }

    #[test]
    fn c_tier_matches_portable() {
        check_tier(Tier::C);
    }

    #[test]
    fn asm_mul_is_faster_than_c_mul() {
        let a = fe(1);
        let b = fe(2);
        let cycles = |tier| {
            let mut f = ModeledField::new(tier);
            let (sa, sb, sz) = (f.alloc_init(a), f.alloc_init(b), f.alloc());
            let snap = f.machine().snapshot();
            f.mul(sz, sa, sb);
            f.machine().report_since(&snap).cycles
        };
        let asm = cycles(Tier::Asm);
        let c = cycles(Tier::C);
        assert!(asm < c, "asm {asm} should beat C {c}");
    }

    #[test]
    fn mul_splits_table_generation_into_its_own_category() {
        let mut f = ModeledField::new(Tier::Asm);
        let (sa, sb, sz) = (f.alloc_init(fe(5)), f.alloc_init(fe(6)), f.alloc());
        f.mul(sz, sa, sb);
        let lut = f
            .machine()
            .category_totals(Category::MultiplyPrecomputation)
            .cycles;
        let main = f.machine().category_totals(Category::Multiply).cycles;
        assert!(lut > 0 && main > 0);
        assert!(main > lut, "main loop ({main}) should dominate LUT ({lut})");
    }

    #[test]
    fn category_override_redirects_field_ops() {
        let mut f = ModeledField::new(Tier::Asm);
        let (sa, sb, sz) = (f.alloc_init(fe(7)), f.alloc_init(fe(8)), f.alloc());
        f.with_category_override(Category::TnafPrecomputation, |f| {
            f.mul(sz, sa, sb);
        });
        assert_eq!(f.machine().category_totals(Category::Multiply).cycles, 0);
        assert!(
            f.machine()
                .category_totals(Category::TnafPrecomputation)
                .cycles
                > 0
        );
    }

    #[test]
    fn itoh_tsujii_matches_eea_kernel_and_costs_similarly() {
        let mut f = ModeledField::new(Tier::Asm);
        let a = fe(123);
        let (sa, sz1, sz2) = (f.alloc_init(a), f.alloc(), f.alloc());
        let s0 = f.machine().snapshot();
        f.inv(sz1, sa);
        let eea = f.machine().report_since(&s0).cycles;
        let s1 = f.machine().snapshot();
        f.inv_itoh_tsujii(sz2, sa);
        let itoh = f.machine().report_since(&s1).cycles;
        assert_eq!(f.load(sz1), f.load(sz2));
        assert_eq!(f.load(sz1), a.invert().unwrap());
        // 10 M + 233 S ≈ 45k + 95k ≈ 140k — the same league as the EEA
        // (which is the paper's point: neither inversion choice moves
        // the point-multiplication total much).
        let ratio = itoh as f64 / eea as f64;
        assert!((0.5..3.0).contains(&ratio), "itoh {itoh} vs eea {eea}");
    }

    #[test]
    fn support_ops_have_sensible_costs() {
        let mut f = ModeledField::new(Tier::Asm);
        let (sa, sb, sz) = (f.alloc_init(fe(9)), f.alloc_init(fe(10)), f.alloc());
        let snap = f.machine().snapshot();
        f.add(sz, sa, sb);
        let add_cycles = f.machine().report_since(&snap).cycles;
        // 8 words: 2 loads + xor + store each, plus glue: well under 150.
        assert!(add_cycles > 30 && add_cycles < 150, "add = {add_cycles}");
        assert!(f.equal(sz, sz));
        assert!(!f.is_zero(sz) || f.load(sz).is_zero());
    }
}
