//! Machine-modeled field arithmetic: *virtual assembly* kernels executed
//! on the [`m0plus::Machine`].
//!
//! Every kernel is a straight-line sequence of calls on the machine — one
//! call per Thumb instruction — so the cycle and energy totals are
//! *measured from executed instruction streams*, not estimated from
//! formulas, while the computed results are verified against the portable
//! tier.
//!
//! Two tiers mirror the paper's Table 6 ("C language" vs "Assembly"):
//!
//! * [`Tier::C`] — compiler-like code: the accumulator lives in memory,
//!   loops keep their counters and branches, and values are re-loaded
//!   around every operation. This is what a (good) C compiler produces
//!   for the M0+ when it cannot pin nine words into registers.
//! * [`Tier::Asm`] — the paper's hand-scheduled kernels: the
//!   fixed-register accumulator split of its Algorithm 1 (four lo
//!   registers, five hi registers, seven memory words), fully unrolled
//!   inner loops, stack-relative operand addressing, and the
//!   `ADCS`-doubling trick in the window-table generation.
//!
//! [`ModeledField`] is the facade the curve layer drives; it owns the
//! machine and attributes each operation to its Table-7 category.

mod inv_c;
mod mul_asm;
mod mul_c;
mod sqr;
mod support;

use crate::Fe;
use m0plus::{Addr, Backend, Category, Machine};
use std::collections::BTreeMap;

/// Which implementation tier a [`ModeledField`] runs (Table 6's columns,
/// plus the RELIC-baseline style of §4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Compiler-like memory-to-memory code.
    C,
    /// Hand-scheduled fixed-register assembly.
    Asm,
    /// Generic-library C in the style of the paper's RELIC baseline:
    /// the same algorithms wrapped in called helpers, with operand
    /// copies in and out of every routine and a separate
    /// (non-interleaved) reduction pass — the overheads a portable
    /// cryptographic toolkit pays on a register-starved core.
    RelicC,
}

/// A field element stored in machine RAM (eight words).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeSlot(pub Addr);

/// Aggregated code-backend footprint of one kernel entry point.
///
/// Only populated under [`Backend::Code`]: each routed kernel call
/// assembles to real Thumb-16 and reports its flash size; the field
/// keeps the per-kernel maximum (traces of the same kernel differ only
/// by data-dependent branch outcomes, so the maximum is the flash a
/// fully linearised build would need).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelFootprint {
    /// Number of calls routed through the code backend.
    pub calls: u64,
    /// Largest assembled fragment (code + literal pool), in bytes.
    /// Recordings are linearised, so for looped kernels (the EEA
    /// inversion) this is the *unrolled* figure; see `deduped_flash_bytes`
    /// for the loop-aware one.
    pub flash_bytes: usize,
    /// Largest loop-aware footprint: the fragment after
    /// [`m0plus::footprint::dedup`] collapses repeated bodies, an upper
    /// bound on a rolled build's flash.
    pub deduped_flash_bytes: usize,
    /// Largest replayed instruction count.
    pub instructions: u64,
}

/// Storage class of an accumulator word in the assembly-tier
/// fixed-register multiplier (exposed for rendering the paper's
/// Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// A lo register (`r0`–`r7`), directly usable by ALU instructions.
    LoRegister,
    /// A hi register (`r8`–`r12`), reachable through `MOV`.
    HiRegister,
    /// A stack-frame word.
    Memory,
}

/// The residency of accumulator word `idx` (0…15) under the paper's
/// Algorithm 1 as realised by the assembly kernel.
///
/// # Panics
///
/// Panics for `idx ≥ 16`.
pub fn accumulator_residency(idx: usize) -> Residency {
    match mul_asm::loc(idx) {
        mul_asm::Loc::Lo(_) => Residency::LoRegister,
        mul_asm::Loc::Hi(_) => Residency::HiRegister,
        mul_asm::Loc::Mem(_) => Residency::Memory,
    }
}

/// Layout of the multiplication working memory inside the machine.
pub(crate) struct Layout {
    /// 16-entry × 8-word López-Dahab window table.
    pub lut: Addr,
    /// Stack frame: `[0..8)` copy of x, `[8..11)` accumulator words
    /// v0–v2, `[11..15)` accumulator words v12–v15, `[15]` saved pointer,
    /// `[16..32)` general scratch (full 2n accumulator for the C tier).
    /// The kernels address it through `sp`; it is kept here for trace
    /// renderers (Figure 1).
    #[allow(dead_code)]
    pub frame: Addr,
    /// The 256-entry byte→halfword squaring table (one entry per RAM
    /// word; it lives in flash on the real part, so writing it is not
    /// charged).
    pub sqr_table: Addr,
    /// Scratch area for the inversion state vectors u, v, g1, g2 plus
    /// the variable-shift temporary (5 × 8 words, rounded up).
    pub inv_scratch: Addr,
}

/// Machine-resident F₂²³³ arithmetic with per-category cost attribution.
///
/// ```
/// use gf2m::modeled::{ModeledField, Tier};
/// use gf2m::Fe;
///
/// let mut f = ModeledField::new(Tier::Asm);
/// let a = f.alloc_init(Fe::from_hex("deadbeef").unwrap());
/// let b = f.alloc_init(Fe::from_hex("facefeed").unwrap());
/// let z = f.alloc();
/// f.mul(z, a, b);
/// assert_eq!(
///     f.load(z),
///     Fe::from_hex("deadbeef").unwrap() * Fe::from_hex("facefeed").unwrap()
/// );
/// assert!(f.machine().cycles() > 0);
/// ```
#[derive(Debug)]
pub struct ModeledField {
    machine: Machine,
    tier: Tier,
    backend: Backend,
    flash: BTreeMap<&'static str, KernelFootprint>,
    layout_lut: Addr,
    layout_frame: Addr,
    layout_sqr_table: Addr,
    layout_inv_scratch: Addr,
}

impl ModeledField {
    /// Default machine size: enough RAM for the window table, the frame,
    /// and a few hundred field-element slots (the point-multiplication
    /// working set).
    pub const DEFAULT_RAM_WORDS: usize = 16 * 1024;

    /// Creates a modeled field of the given tier.
    pub fn new(tier: Tier) -> Self {
        Self::with_ram(tier, Self::DEFAULT_RAM_WORDS)
    }

    /// Creates a modeled field with `ram_words` of machine RAM.
    pub fn with_ram(tier: Tier, ram_words: usize) -> Self {
        Self::with_ram_and_model(tier, ram_words, m0plus::EnergyModel::cortex_m0plus())
    }

    /// Creates a modeled field costed for a target from the
    /// [`m0plus::target`] registry (the default target reproduces
    /// [`ModeledField::new`] bit for bit).
    pub fn with_target(tier: Tier, target: &dyn m0plus::TargetModel) -> Self {
        Self::with_ram_and_target(tier, Self::DEFAULT_RAM_WORDS, target)
    }

    /// [`ModeledField::with_target`] with explicit machine RAM.
    pub fn with_ram_and_target(
        tier: Tier,
        ram_words: usize,
        target: &dyn m0plus::TargetModel,
    ) -> Self {
        Self::with_machine(Machine::with_target(ram_words, target), tier)
    }

    /// Creates a modeled field with a custom [`m0plus::EnergyModel`]
    /// (for sensitivity analysis of the §3.1 energy argument).
    pub fn with_ram_and_model(tier: Tier, ram_words: usize, model: m0plus::EnergyModel) -> Self {
        Self::with_machine(Machine::with_model(ram_words, model), tier)
    }

    fn with_machine(mut machine: Machine, tier: Tier) -> Self {
        let lut = machine.alloc(16 * 8);
        let frame = machine.alloc(32);
        let sqr_table = machine.alloc(256);
        let table_words: Vec<u32> = crate::sqr::SQR_TABLE.iter().map(|&h| h as u32).collect();
        machine.write_slice(sqr_table, &table_words);
        let inv_scratch = machine.alloc(48);
        machine.set_base(m0plus::Reg::Sp, frame);
        ModeledField {
            machine,
            tier,
            backend: Backend::default(),
            flash: BTreeMap::new(),
            layout_lut: lut,
            layout_frame: frame,
            layout_sqr_table: sqr_table,
            layout_inv_scratch: inv_scratch,
        }
    }

    /// Creates a modeled field of the given tier on the given execution
    /// backend.
    pub fn new_with_backend(tier: Tier, backend: Backend) -> Self {
        let mut f = Self::new(tier);
        f.backend = backend;
        f
    }

    /// The tier this field runs.
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// The execution backend the kernels run through.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Switches the execution backend (takes effect from the next
    /// kernel call; past accounting is unchanged).
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
    }

    /// Per-kernel flash footprints collected by the code backend
    /// (empty under [`Backend::Direct`]).
    pub fn flash_report(&self) -> &BTreeMap<&'static str, KernelFootprint> {
        &self.flash
    }

    /// Routes one kernel call through the configured backend.
    ///
    /// Under [`Backend::Direct`] this just calls `f` on the machine.
    /// Under [`Backend::Code`] the call is recorded, assembled to
    /// Thumb-16, replayed from the machine code (asserting bit-for-bit
    /// state agreement with the direct run) and its flash footprint
    /// folded into [`ModeledField::flash_report`]. Curve layers use
    /// this for their own charged code so *every* costed instruction in
    /// a point multiplication can come from assembled machine code.
    pub fn run_kernel<T>(&mut self, name: &'static str, f: impl FnOnce(&mut Machine) -> T) -> T {
        let (out, run) = self.backend.run_kernel(&mut self.machine, name, f);
        if let Some(run) = run {
            let slot = self.flash.entry(name).or_default();
            slot.calls += 1;
            slot.flash_bytes = slot.flash_bytes.max(run.flash_bytes);
            slot.deduped_flash_bytes = slot.deduped_flash_bytes.max(run.deduped_flash_bytes);
            slot.instructions = slot.instructions.max(run.instructions);
        }
        out
    }

    /// Read access to the underlying machine (cycle/energy counters).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access for callers that charge their own support code.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    pub(crate) fn layout(&self) -> Layout {
        Layout {
            lut: self.layout_lut,
            frame: self.layout_frame,
            sqr_table: self.layout_sqr_table,
            inv_scratch: self.layout_inv_scratch,
        }
    }

    /// Allocates an uninitialised element slot.
    pub fn alloc(&mut self) -> FeSlot {
        FeSlot(self.machine.alloc(crate::N))
    }

    /// Allocates a slot and stores `value` (un-costed setup).
    pub fn alloc_init(&mut self, value: Fe) -> FeSlot {
        let slot = self.alloc();
        self.store(slot, value);
        slot
    }

    /// Stores `value` into `slot` without charging cycles (setup /
    /// test-oracle access).
    pub fn store(&mut self, slot: FeSlot, value: Fe) {
        self.machine.write_slice(slot.0, value.words());
    }

    /// Loads the element in `slot` without charging cycles.
    pub fn load(&self, slot: FeSlot) -> Fe {
        let words = self.machine.read_slice(slot.0, crate::N);
        Fe::from_words_reduced(words.try_into().expect("slot is 8 words"))
    }

    /// Modular multiplication `z ← x · y`, charged to *Multiply* with the
    /// window-table generation under *Multiply Precomputation*.
    pub fn mul(&mut self, z: FeSlot, x: FeSlot, y: FeSlot) {
        // Capture the expectation before the kernel runs: z may alias x
        // or y (the kernels read their inputs fully before the final
        // store-out, so aliasing is safe).
        #[cfg(debug_assertions)]
        let expect = self.load(x) * self.load(y);
        let layout = self.layout();
        let tier = self.tier;
        let name = match tier {
            Tier::Asm => "mul_asm",
            Tier::C => "mul_ld_fixed_c",
            Tier::RelicC => "mul_relic_c",
        };
        self.run_kernel(name, |m| match tier {
            Tier::Asm => mul_asm::mul(m, &layout, z, x, y),
            Tier::C => mul_c::mul_fixed(m, &layout, z, x, y),
            Tier::RelicC => mul_c::mul_relic(m, &layout, z, x, y),
        });
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.load(z),
            expect,
            "modeled multiplication diverged from the portable tier"
        );
    }

    /// The C-tier *LD with rotating registers* multiplication (the other
    /// C row of Table 6), runnable from any tier for comparison.
    pub fn mul_rotating_c(&mut self, z: FeSlot, x: FeSlot, y: FeSlot) {
        #[cfg(debug_assertions)]
        let expect = self.load(x) * self.load(y);
        let layout = self.layout();
        self.run_kernel("mul_ld_rotating_c", |m| {
            mul_c::mul_rotating(m, &layout, z, x, y)
        });
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.load(z),
            expect,
            "modeled rotating multiplication diverged from the portable tier"
        );
    }

    /// Modular squaring `z ← x²`, charged to *Square*.
    pub fn sqr(&mut self, z: FeSlot, x: FeSlot) {
        #[cfg(debug_assertions)]
        let expect = self.load(x).square();
        let layout = self.layout();
        let tier = self.tier;
        let name = match tier {
            Tier::Asm => "sqr_asm",
            Tier::C => "sqr_c",
            Tier::RelicC => "sqr_relic_c",
        };
        self.run_kernel(name, |m| match tier {
            Tier::Asm => sqr::sqr_asm(m, &layout, z, x),
            Tier::C => sqr::sqr_c(m, &layout, z, x),
            Tier::RelicC => mul_c::sqr_relic(m, &layout, z, x),
        });
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.load(z),
            expect,
            "modeled squaring diverged from the portable tier"
        );
    }

    /// Modular inversion `z ← x⁻¹`, charged to *Inversion*.
    ///
    /// # Panics
    ///
    /// Panics if `x` holds zero.
    pub fn inv(&mut self, z: FeSlot, x: FeSlot) {
        #[cfg(debug_assertions)]
        let expect = self.load(x).invert();
        let layout = self.layout();
        // The paper implements inversion in C only (its Table 6 has no
        // assembly column entry for inversion), so both tiers share the
        // C kernel.
        self.run_kernel("inv_eea_c", |m| inv_c::inv(m, &layout, z, x));
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            Some(self.load(z)),
            expect,
            "modeled inversion diverged from the portable tier"
        );
    }

    /// Standalone reduction `z ← wide mod f(x)`: the C-tier trinomial
    /// reduction pass run as its own kernel on a raw double-width
    /// product (the non-interleaved reduction a RELIC-style library
    /// pays per multiplication — interleaving it is one of the paper's
    /// assembly wins). The product is staged into the kernel's frame
    /// accumulator without charge (it would already be there after a
    /// multiplication); the reduction itself is fully charged.
    pub fn reduce(&mut self, z: FeSlot, wide: &[u32; 2 * crate::N]) {
        #[cfg(debug_assertions)]
        let expect = crate::reduce::reduce(*wide);
        let acc = Addr(self.layout_frame.0 + mul_c::acc_offset());
        self.machine.write_slice(acc, wide);
        self.run_kernel("reduce_c", |m| mul_c::reduce_standalone(m, z));
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.load(z),
            expect,
            "modeled reduction diverged from the portable tier"
        );
    }

    /// Modular inversion by the Itoh–Tsujii addition chain, built from
    /// this tier's multiplication and squaring kernels (10 M + 232 S) —
    /// the ablation partner of the EEA kernel behind [`ModeledField::inv`].
    ///
    /// # Panics
    ///
    /// Panics if `x` holds zero.
    pub fn inv_itoh_tsujii(&mut self, z: FeSlot, x: FeSlot) {
        assert!(!self.load(x).is_zero(), "inversion of zero");
        #[cfg(debug_assertions)]
        let expect = self.load(x).invert();
        // Scratch chain registers (note: allocated per call — this
        // routine is an ablation probe, not the production inversion).
        let (cur, tmp) = self.alloc_scratch_pair();
        // e(k) = x^(2^k − 1); chain 1,2,3,6,7,14,28,29,58,116,232.
        self.copy_in_category(cur, x, Category::Inversion);
        let steps: [(usize, bool); 10] = [
            (1, false),  // e2 = e1²·e1
            (1, false),  // e3 = e2²·e1   (squares: 1, mul by e1)
            (3, true),   // e6 = e3^(2³)·e3
            (1, false),  // e7 = e6²·e1
            (7, true),   // e14
            (14, true),  // e28
            (1, false),  // e29
            (29, true),  // e58
            (58, true),  // e116
            (116, true), // e232
        ];
        // `prev` holds e(k) for the self-combining steps.
        for (squares, self_combine) in steps {
            if self_combine {
                self.copy_in_category(tmp, cur, Category::Inversion);
            }
            for _ in 0..squares {
                self.sqr_in_category(cur, cur, Category::Inversion);
            }
            let operand = if self_combine { tmp } else { x };
            self.mul_in_category(cur, cur, operand, Category::Inversion);
        }
        // z = e232².
        self.sqr_in_category(z, cur, Category::Inversion);
        #[cfg(debug_assertions)]
        debug_assert_eq!(Some(self.load(z)), expect, "Itoh–Tsujii diverged");
    }

    fn alloc_scratch_pair(&mut self) -> (FeSlot, FeSlot) {
        (self.alloc(), self.alloc())
    }

    fn copy_in_category(&mut self, z: FeSlot, x: FeSlot, cat: Category) {
        self.machine.set_category_override(Some(cat));
        self.copy(z, x);
        self.machine.set_category_override(None);
    }

    fn sqr_in_category(&mut self, z: FeSlot, x: FeSlot, cat: Category) {
        self.machine.set_category_override(Some(cat));
        self.sqr(z, x);
        self.machine.set_category_override(None);
    }

    fn mul_in_category(&mut self, z: FeSlot, x: FeSlot, y: FeSlot, cat: Category) {
        self.machine.set_category_override(Some(cat));
        self.mul(z, x, y);
        self.machine.set_category_override(None);
    }

    /// Field addition (word-wise XOR) `z ← x + y`, charged to *Support*.
    pub fn add(&mut self, z: FeSlot, x: FeSlot, y: FeSlot) {
        self.run_kernel("fe_add", |m| support::add(m, z, x, y));
    }

    /// Copy `z ← x`, charged to *Support*.
    pub fn copy(&mut self, z: FeSlot, x: FeSlot) {
        self.run_kernel("fe_copy", |m| support::copy(m, z, x));
    }

    /// Constant-time conditional swap `(a, b) ← swap ? (b, a) : (a, b)`,
    /// charged to *Support*. The executed instruction stream, effective
    /// addresses and cycle count are identical for both values of
    /// `swap` (see [`support::cswap`]), which the leakage verifier
    /// checks trace-for-trace.
    pub fn cswap(&mut self, a: FeSlot, b: FeSlot, swap: bool) {
        self.run_kernel("fe_cswap", |m| support::cswap(m, a, b, swap));
    }

    /// Stores a compile-time constant into `slot` (literal-pool loads +
    /// stores), charged to *Support*.
    pub fn set_const(&mut self, slot: FeSlot, value: Fe) {
        self.run_kernel("fe_set_const", |m| support::set_const(m, slot, value));
    }

    /// Tests `x == 0`, charged to *Support*.
    pub fn is_zero(&mut self, x: FeSlot) -> bool {
        self.run_kernel("fe_is_zero", |m| support::is_zero(m, x))
    }

    /// Tests `x == y`, charged to *Support*.
    pub fn equal(&mut self, x: FeSlot, y: FeSlot) -> bool {
        self.run_kernel("fe_equal", |m| support::equal(m, x, y))
    }

    /// The word range of the 256-entry squaring table. On the real part
    /// this table lives in flash ROM (it is counted as flash bytes, and
    /// written here without charge at construction); fault campaigns use
    /// this range to exclude ROM from RAM-upset sampling.
    pub fn rom_words(&self) -> std::ops::Range<u32> {
        self.layout_sqr_table.0..self.layout_sqr_table.0 + 256
    }

    /// Recompute-and-compare multiplication: `z ← x·y`, computed twice
    /// with an equality check — the classic temporal-redundancy fault
    /// countermeasure. Returns whether the two runs agreed. All the
    /// redundant work is charged, so the overhead of the countermeasure
    /// is measured, not estimated.
    ///
    /// `scratch` holds the second product and must not alias `z`, `x`
    /// or `y` (the recomputation reads the original inputs).
    pub fn mul_checked(&mut self, z: FeSlot, x: FeSlot, y: FeSlot, scratch: FeSlot) -> bool {
        self.mul(z, x, y);
        self.mul(scratch, x, y);
        self.equal(z, scratch)
    }

    /// Recompute-and-compare squaring; see [`ModeledField::mul_checked`].
    pub fn sqr_checked(&mut self, z: FeSlot, x: FeSlot, scratch: FeSlot) -> bool {
        self.sqr(z, x);
        self.sqr(scratch, x);
        self.equal(z, scratch)
    }

    /// Multiply-back-checked inversion: `z ← x⁻¹`, then verifies
    /// `z·x = 1` (cheaper than recomputing the inversion: one M + the
    /// compare instead of a second I). Returns whether the check passed.
    /// `s1`/`s2` are scratch slots and must not alias `z` or `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` holds zero (as [`ModeledField::inv`] does).
    pub fn inv_checked(&mut self, z: FeSlot, x: FeSlot, s1: FeSlot, s2: FeSlot) -> bool {
        self.inv(z, x);
        self.mul(s1, z, x);
        self.set_const(s2, Fe::ONE);
        self.equal(s1, s2)
    }

    /// Runs `f` with every charged instruction force-attributed to
    /// `category` (see [`Machine::with_category_override`]).
    pub fn with_category_override<T>(
        &mut self,
        category: Category,
        f: impl FnOnce(&mut ModeledField) -> T,
    ) -> T {
        let prev = self.machine.category_override();
        self.machine.set_category_override(Some(category));
        let out = f(self);
        self.machine.set_category_override(prev);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m0plus::Category;

    fn fe(seed: u64) -> Fe {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut w = [0u32; crate::N];
        for x in w.iter_mut() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *x = (s >> 23) as u32;
        }
        Fe::from_words_reduced(w)
    }

    fn check_tier(tier: Tier) {
        let mut f = ModeledField::new(tier);
        for seed in 0..8u64 {
            let a = fe(seed);
            let b = fe(seed + 100);
            let (sa, sb, sz) = (f.alloc_init(a), f.alloc_init(b), f.alloc());
            f.mul(sz, sa, sb);
            assert_eq!(f.load(sz), a * b, "{tier:?} mul seed {seed}");
            f.sqr(sz, sa);
            assert_eq!(f.load(sz), a.square(), "{tier:?} sqr seed {seed}");
            if !a.is_zero() {
                f.inv(sz, sa);
                assert_eq!(f.load(sz), a.invert().unwrap(), "{tier:?} inv seed {seed}");
            }
            f.add(sz, sa, sb);
            assert_eq!(f.load(sz), a + b);
        }
    }

    #[test]
    fn asm_tier_matches_portable() {
        check_tier(Tier::Asm);
    }

    #[test]
    fn standalone_reduce_matches_portable_reduction() {
        let mut f = ModeledField::new(Tier::C);
        for seed in 0..6u64 {
            let (a, b) = (fe(seed), fe(seed + 50));
            let wide = crate::mul::mul_poly_ld(a.words(), b.words());
            let z = f.alloc();
            f.reduce(z, &wide);
            assert_eq!(f.load(z), crate::reduce::reduce(wide), "seed {seed}");
            assert_eq!(f.load(z), a * b);
        }
        assert!(f.machine().category_totals(Category::Multiply).cycles > 0);
    }

    #[test]
    fn c_tier_matches_portable() {
        check_tier(Tier::C);
    }

    #[test]
    fn asm_mul_is_faster_than_c_mul() {
        let a = fe(1);
        let b = fe(2);
        let cycles = |tier| {
            let mut f = ModeledField::new(tier);
            let (sa, sb, sz) = (f.alloc_init(a), f.alloc_init(b), f.alloc());
            let snap = f.machine().snapshot();
            f.mul(sz, sa, sb);
            f.machine().report_since(&snap).cycles
        };
        let asm = cycles(Tier::Asm);
        let c = cycles(Tier::C);
        assert!(asm < c, "asm {asm} should beat C {c}");
    }

    #[test]
    fn mul_splits_table_generation_into_its_own_category() {
        let mut f = ModeledField::new(Tier::Asm);
        let (sa, sb, sz) = (f.alloc_init(fe(5)), f.alloc_init(fe(6)), f.alloc());
        f.mul(sz, sa, sb);
        let lut = f
            .machine()
            .category_totals(Category::MultiplyPrecomputation)
            .cycles;
        let main = f.machine().category_totals(Category::Multiply).cycles;
        assert!(lut > 0 && main > 0);
        assert!(main > lut, "main loop ({main}) should dominate LUT ({lut})");
    }

    #[test]
    fn category_override_redirects_field_ops() {
        let mut f = ModeledField::new(Tier::Asm);
        let (sa, sb, sz) = (f.alloc_init(fe(7)), f.alloc_init(fe(8)), f.alloc());
        f.with_category_override(Category::TnafPrecomputation, |f| {
            f.mul(sz, sa, sb);
        });
        assert_eq!(f.machine().category_totals(Category::Multiply).cycles, 0);
        assert!(
            f.machine()
                .category_totals(Category::TnafPrecomputation)
                .cycles
                > 0
        );
    }

    #[test]
    fn itoh_tsujii_matches_eea_kernel_and_costs_similarly() {
        let mut f = ModeledField::new(Tier::Asm);
        let a = fe(123);
        let (sa, sz1, sz2) = (f.alloc_init(a), f.alloc(), f.alloc());
        let s0 = f.machine().snapshot();
        f.inv(sz1, sa);
        let eea = f.machine().report_since(&s0).cycles;
        let s1 = f.machine().snapshot();
        f.inv_itoh_tsujii(sz2, sa);
        let itoh = f.machine().report_since(&s1).cycles;
        assert_eq!(f.load(sz1), f.load(sz2));
        assert_eq!(f.load(sz1), a.invert().unwrap());
        // 10 M + 233 S ≈ 45k + 95k ≈ 140k — the same league as the EEA
        // (which is the paper's point: neither inversion choice moves
        // the point-multiplication total much).
        let ratio = itoh as f64 / eea as f64;
        assert!((0.5..3.0).contains(&ratio), "itoh {itoh} vs eea {eea}");
    }

    /// Drives every routed kernel once and returns the results plus the
    /// machine's final cycle count — the differential probe for the
    /// backend-equivalence tests.
    fn drive_all_kernels(f: &mut ModeledField) -> (Vec<Fe>, u64) {
        let a = fe(21);
        let b = fe(22);
        let (sa, sb, sz) = (f.alloc_init(a), f.alloc_init(b), f.alloc());
        let mut out = Vec::new();
        f.mul(sz, sa, sb);
        out.push(f.load(sz));
        f.mul_rotating_c(sz, sa, sb);
        out.push(f.load(sz));
        f.sqr(sz, sa);
        out.push(f.load(sz));
        f.inv(sz, sa);
        out.push(f.load(sz));
        f.add(sz, sa, sb);
        out.push(f.load(sz));
        f.copy(sz, sb);
        out.push(f.load(sz));
        f.set_const(sz, a);
        out.push(f.load(sz));
        assert!(!f.is_zero(sz));
        assert!(f.equal(sz, sa));
        (out, f.machine().cycles())
    }

    #[test]
    fn code_backend_matches_direct_for_every_kernel() {
        for tier in [Tier::Asm, Tier::C, Tier::RelicC] {
            let mut direct = ModeledField::new(tier);
            let mut code = ModeledField::new_with_backend(tier, Backend::Code);
            let (results_d, cycles_d) = drive_all_kernels(&mut direct);
            let (results_c, cycles_c) = drive_all_kernels(&mut code);
            assert_eq!(results_c, results_d, "{tier:?}: field results diverge");
            assert_eq!(cycles_c, cycles_d, "{tier:?}: cycle totals diverge");
            for cat in Category::ALL {
                assert_eq!(
                    code.machine().category_totals(cat),
                    direct.machine().category_totals(cat),
                    "{tier:?}/{cat}: category totals diverge"
                );
            }
            assert!(direct.flash_report().is_empty());
            let flash = code.flash_report();
            for kernel in ["inv_eea_c", "fe_add", "fe_copy", "fe_set_const"] {
                assert!(flash.contains_key(kernel), "{tier:?}: {kernel} missing");
            }
            for (kernel, fp) in flash {
                assert!(fp.calls > 0 && fp.flash_bytes > 0, "{tier:?}: {kernel}");
            }
        }
    }

    #[test]
    fn code_backend_reports_kernel_flash_footprints() {
        let mut f = ModeledField::new_with_backend(Tier::Asm, Backend::Code);
        let (sa, sb, sz) = (f.alloc_init(fe(31)), f.alloc_init(fe(32)), f.alloc());
        f.mul(sz, sa, sb);
        f.mul(sz, sz, sb);
        let fp = f.flash_report()["mul_asm"];
        assert_eq!(fp.calls, 2);
        // The fully unrolled fixed-register multiplier linearises to a
        // few thousand halfwords — sanity-bound it.
        assert!(
            (1_000..100_000).contains(&fp.flash_bytes),
            "flash = {}",
            fp.flash_bytes
        );
        assert!(fp.instructions > 500);
    }

    #[test]
    fn looped_inversion_dedups_far_below_its_unrolled_footprint() {
        let mut f = ModeledField::new_with_backend(Tier::C, Backend::Code);
        let (sa, sz) = (f.alloc_init(fe(33)), f.alloc());
        f.inv(sz, sa);
        let fp = f.flash_report()["inv_eea_c"];
        // The EEA records each of its ~700 data-dependent loop
        // iterations separately: a six-figure unrolled footprint. A
        // rolled build stores each body once — the dedup pass must
        // recover at least a 10× reduction.
        assert!(fp.flash_bytes > 50_000, "unrolled = {}", fp.flash_bytes);
        assert!(
            fp.deduped_flash_bytes * 10 <= fp.flash_bytes,
            "deduped {} vs unrolled {}",
            fp.deduped_flash_bytes,
            fp.flash_bytes
        );
        // Straight-line kernels barely compress: their deduped figure
        // stays the same order of magnitude as the raw one.
        let mut g = ModeledField::new_with_backend(Tier::Asm, Backend::Code);
        let (ga, gb, gz) = (g.alloc_init(fe(34)), g.alloc_init(fe(35)), g.alloc());
        g.mul(gz, ga, gb);
        let mp = g.flash_report()["mul_asm"];
        assert!(mp.deduped_flash_bytes > 0);
        assert!(mp.deduped_flash_bytes <= mp.flash_bytes);
    }

    #[test]
    fn support_ops_have_sensible_costs() {
        let mut f = ModeledField::new(Tier::Asm);
        let (sa, sb, sz) = (f.alloc_init(fe(9)), f.alloc_init(fe(10)), f.alloc());
        let snap = f.machine().snapshot();
        f.add(sz, sa, sb);
        let add_cycles = f.machine().report_since(&snap).cycles;
        // 8 words: 2 loads + xor + store each, plus glue: well under 150.
        assert!(add_cycles > 30 && add_cycles < 150, "add = {add_cycles}");
        assert!(f.equal(sz, sz));
        assert!(!f.is_zero(sz) || f.load(sz).is_zero());
    }

    #[test]
    fn rom_range_covers_the_squaring_table() {
        let f = ModeledField::new(Tier::Asm);
        let rom = f.rom_words();
        assert_eq!(rom.end - rom.start, 256);
        assert!(rom.end <= f.machine().allocated_words());
        // The table's first entries are the 16-bit spread of 0 and 1.
        assert_eq!(f.machine().peek(rom.start), Some(0));
    }

    #[test]
    fn checked_ops_pass_clean_and_cost_more_than_unchecked() {
        let mut f = ModeledField::new(Tier::Asm);
        let a = f.alloc_init(fe(123));
        let b = f.alloc_init(fe(77));
        let (z, s1, s2) = (f.alloc(), f.alloc(), f.alloc());

        let snap = f.machine().snapshot();
        f.mul(z, a, b);
        let plain = f.machine().report_since(&snap).cycles;
        let expect = f.load(z);

        let snap = f.machine().snapshot();
        assert!(f.mul_checked(z, a, b, s1));
        let checked = f.machine().report_since(&snap).cycles;
        assert_eq!(f.load(z), expect);
        assert!(checked > 2 * plain, "recompute doubles the cost");

        assert!(f.sqr_checked(z, a, s1));
        assert_eq!(f.load(z), f.load(a).square());

        assert!(f.inv_checked(z, a, s1, s2));
        assert_eq!(Some(f.load(z)), f.load(a).invert());
    }
}
