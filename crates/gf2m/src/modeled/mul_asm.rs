//! The assembly-tier *López-Dahab with fixed registers* multiplication
//! kernel (the paper's Algorithm 1, hand-scheduled).
//!
//! Register allocation, mirroring what is feasible on a real Cortex-M0+
//! (and realising the paper's "nine words inside registers"):
//!
//! | resource | role |
//! |---|---|
//! | `r0` | window-table base pointer |
//! | `r1 r2 r3 r6` | accumulator words v3 v4 v5 v6 (lo registers) |
//! | `r8`–`r12` | accumulator words v7–v11 (hi registers, `MOV`-accessed) |
//! | `r4`, `r5`, `r7` | scratch: window index / table word / hi-reg shuttle |
//! | `sp + 0..8` | copy of operand x |
//! | `sp + 8..11` | accumulator words v0 v1 v2 |
//! | `sp + 11..15` | accumulator words v12–v15 |
//! | `sp + 15` | saved result pointer |
//!
//! The j- and k-loops are fully unrolled (immediate shift amounts per
//! window position), the window index is extracted with the two-shift
//! trick `(x << (28−4j)) >> 25` which simultaneously masks the nibble and
//! scales it by the 8-word table stride, the table is generated with the
//! `ADCS r, r` doubling trick, and the trinomial reduction is interleaved
//! at the end so the upper accumulator words never round-trip through
//! memory.

use super::{FeSlot, Layout};
use crate::mul::{LD_OUTER, LD_TABLE_ENTRIES};
use crate::{LD_WINDOW, N};
use m0plus::{Category, Machine, Reg};

/// Where an accumulator word v\[idx\] lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Loc {
    /// A lo register, directly usable by data-processing instructions.
    Lo(Reg),
    /// A hi register, reachable only through `MOV`.
    Hi(Reg),
    /// A stack-frame word (offset in words from `sp`).
    Mem(u32),
}

/// The fixed residency map of the paper's Algorithm 1 (n = 8).
pub(crate) fn loc(idx: usize) -> Loc {
    match idx {
        0..=2 => Loc::Mem(8 + idx as u32),
        3 => Loc::Lo(Reg::R1),
        4 => Loc::Lo(Reg::R2),
        5 => Loc::Lo(Reg::R3),
        6 => Loc::Lo(Reg::R6),
        7..=11 => Loc::Hi([Reg::R8, Reg::R9, Reg::R10, Reg::R11, Reg::R12][idx - 7]),
        12..=15 => Loc::Mem(11 + (idx - 12) as u32),
        _ => unreachable!("accumulator has 16 words"),
    }
}

/// target ^= r5, honouring residency. Uses `r7` as the shuttle.
fn xor_word(m: &mut Machine, target: Loc) {
    match target {
        Loc::Lo(r) => m.eors(r, Reg::R5),
        Loc::Hi(r) => {
            m.mov(Reg::R7, r);
            m.eors(Reg::R7, Reg::R5);
            m.mov(r, Reg::R7);
        }
        Loc::Mem(off) => {
            m.ldr_sp(Reg::R7, off);
            m.eors(Reg::R7, Reg::R5);
            m.str_sp(Reg::R7, off);
        }
    }
}

/// Loads v\[idx\] into `dst` (a lo register).
fn load_word(m: &mut Machine, target: Loc, dst: Reg) {
    match target {
        Loc::Lo(r) => {
            if r != dst {
                m.mov(dst, r);
            }
        }
        Loc::Hi(r) => m.mov(dst, r),
        Loc::Mem(off) => m.ldr_sp(dst, off),
    }
}

/// Stores `src` (a lo register) into v\[idx\].
fn store_word(m: &mut Machine, target: Loc, src: Reg) {
    match target {
        Loc::Lo(r) => {
            if r != src {
                m.mov(r, src);
            }
        }
        Loc::Hi(r) => m.mov(r, src),
        Loc::Mem(off) => m.str_sp(src, off),
    }
}

/// Window-table generation: T(u) ← u(z)·y(z) for u < 16, each entry
/// 8 words at `lut + 8u`. `r0` = table base, `r1` = y pointer.
pub(crate) fn lut_generate(m: &mut Machine, layout: &Layout, y: FeSlot) {
    m.in_category(Category::MultiplyPrecomputation, |m| {
        m.set_base(Reg::R0, layout.lut);
        m.set_base(Reg::R1, y.0);
        // T[0] = 0.
        m.movs_imm(Reg::R5, 0);
        for l in 0..N as u32 {
            m.str(Reg::R5, Reg::R0, l);
        }
        // T[1] = y.
        for l in 0..N as u32 {
            m.ldr(Reg::R5, Reg::R1, l);
            m.str(Reg::R5, Reg::R0, 8 + l);
        }
        for u in 1..(LD_TABLE_ENTRIES / 2) as u32 {
            // r2 = &T[u], r3 = &T[2u].
            m.mov(Reg::R2, Reg::R0);
            m.adds_imm(Reg::R2, (8 * u) as u8);
            m.mov(Reg::R3, Reg::R0);
            m.adds_imm(Reg::R3, (16 * u) as u8);
            // T[2u] = T[u] << 1 via the LSLS/ADCS carry chain.
            for l in 0..N as u32 {
                m.ldr(Reg::R5, Reg::R2, l);
                if l == 0 {
                    m.lsls_imm(Reg::R5, Reg::R5, 1);
                } else {
                    m.adcs(Reg::R5, Reg::R5);
                }
                m.str(Reg::R5, Reg::R3, l);
            }
            // T[2u+1] = T[2u] + y: read entry 2u through r3 and store one
            // entry (8 words) higher — both offsets fit the immediate
            // field, so no pointer bump is needed.
            for l in 0..N as u32 {
                m.ldr(Reg::R5, Reg::R3, l);
                m.ldr(Reg::R7, Reg::R1, l);
                m.eors(Reg::R5, Reg::R7);
                m.str(Reg::R5, Reg::R3, 8 + l);
            }
        }
    });
}

/// The full modular multiplication `z ← x·y` (main loop under
/// *Multiply*, table generation under *Multiply Precomputation*).
pub(crate) fn mul(m: &mut Machine, layout: &Layout, z: FeSlot, x: FeSlot, y: FeSlot) {
    lut_generate(m, layout, y);
    m.in_category(Category::Multiply, |m| {
        // Prologue: call, save callee-saved lo + hi registers.
        m.bl();
        m.stack_transfer(5); // push {r4-r7, lr}
        for _ in 0..4 {
            m.mov(Reg::R7, Reg::R8); // stand-in: shuttle hi regs to stack
        }
        m.stack_transfer(4);

        // Arguments (AAPCS): r0 = &x, r2 = &z. Copy x into the frame,
        // save the result pointer.
        m.set_base(Reg::R0, x.0);
        m.set_base(Reg::R2, z.0);
        m.str_sp(Reg::R2, 15);
        for l in 0..N as u32 {
            m.ldr(Reg::R5, Reg::R0, l);
            m.str_sp(Reg::R5, l);
        }
        m.set_base(Reg::R0, layout.lut);

        // Zero the accumulator: lo registers, hi registers, frame words.
        m.movs_imm(Reg::R1, 0);
        m.movs_imm(Reg::R2, 0);
        m.movs_imm(Reg::R3, 0);
        m.movs_imm(Reg::R6, 0);
        m.movs_imm(Reg::R7, 0);
        for r in [Reg::R8, Reg::R9, Reg::R10, Reg::R11, Reg::R12] {
            m.mov(r, Reg::R7);
        }
        for off in 8..15 {
            m.str_sp(Reg::R7, off);
        }

        // Main loop, fully unrolled over j (window position) and k
        // (operand word).
        for j in (0..LD_OUTER).rev() {
            for k in 0..N {
                // u = ((x[k] << (28-4j)) >> 28); r4 = &T[u] = base + 8u.
                m.ldr_sp(Reg::R4, k as u32);
                let left = (28 - LD_WINDOW * j) as u32;
                if left > 0 {
                    m.lsls_imm(Reg::R4, Reg::R4, left);
                }
                m.lsrs_imm(Reg::R4, Reg::R4, 28);
                m.lsls_imm(Reg::R4, Reg::R4, 3);
                m.adds(Reg::R4, Reg::R4, Reg::R0);
                for l in 0..N {
                    m.ldr(Reg::R5, Reg::R4, l as u32);
                    xor_word(m, loc(k + l));
                }
            }
            if j != 0 {
                shift_accumulator(m);
            }
        }

        reduce_interleaved(m);

        // Store the canonical result through the saved pointer.
        m.ldr_sp(Reg::R0, 15);
        for i in 0..N {
            load_word(m, loc(i), Reg::R5);
            m.str(Reg::R5, Reg::R0, i as u32);
        }

        // Epilogue: restore hi + lo registers, return.
        m.stack_transfer(4);
        for _ in 0..4 {
            m.mov(Reg::R8, Reg::R7);
        }
        m.stack_transfer(5);
        m.bx();
    });
    // Execute the semantics (the instruction stream above computed the
    // real values word by word; nothing further to do).
}

/// v ← v · z⁴: multi-precision left shift by the window width, processed
/// from the top word down so each lower word is still unshifted when its
/// spill bits are taken.
fn shift_accumulator(m: &mut Machine) {
    for i in (1..2 * N).rev() {
        // r4 = v[i-1] >> 28.
        match loc(i - 1) {
            Loc::Lo(r) => m.lsrs_imm(Reg::R4, r, 28),
            Loc::Hi(r) => {
                m.mov(Reg::R7, r);
                m.lsrs_imm(Reg::R4, Reg::R7, 28);
            }
            Loc::Mem(off) => {
                m.ldr_sp(Reg::R7, off);
                m.lsrs_imm(Reg::R4, Reg::R7, 28);
            }
        }
        // v[i] = (v[i] << 4) | r4.
        match loc(i) {
            Loc::Lo(r) => {
                m.lsls_imm(r, r, LD_WINDOW as u32);
                m.orrs(r, Reg::R4);
            }
            Loc::Hi(r) => {
                m.mov(Reg::R7, r);
                m.lsls_imm(Reg::R7, Reg::R7, LD_WINDOW as u32);
                m.orrs(Reg::R7, Reg::R4);
                m.mov(r, Reg::R7);
            }
            Loc::Mem(off) => {
                m.ldr_sp(Reg::R7, off);
                m.lsls_imm(Reg::R7, Reg::R7, LD_WINDOW as u32);
                m.orrs(Reg::R7, Reg::R4);
                m.str_sp(Reg::R7, off);
            }
        }
    }
    // v[0] <<= 4.
    match loc(0) {
        Loc::Mem(off) => {
            m.ldr_sp(Reg::R7, off);
            m.lsls_imm(Reg::R7, Reg::R7, LD_WINDOW as u32);
            m.str_sp(Reg::R7, off);
        }
        _ => unreachable!("v[0] is memory resident"),
    }
}

/// Interleaved trinomial reduction: folds accumulator words 15…8 and the
/// excess bits of word 7 using z²³³ ≡ z⁷⁴ + 1, without storing the upper
/// half to memory first (§3.2.2 / §3.2.4 idea applied at the end of the
/// multiplication).
fn reduce_interleaved(m: &mut Machine) {
    for idx in (N..2 * N).rev() {
        // r5 = v[idx].
        load_word(m, loc(idx), Reg::R5);
        // The four fold targets: (idx-8, <<23) (idx-7, >>9) (idx-5, <<1)
        // (idx-4, >>31). Shift into r4, then xor_word with r5 saved —
        // xor_word clobbers r5? It reads r5. We need the *shifted* value
        // in r5 for xor_word, so shuttle through r4.
        for (delta, left, amount) in [(8, true, 23), (7, false, 9), (5, true, 1), (4, false, 31)] {
            if left {
                m.lsls_imm(Reg::R4, Reg::R5, amount);
            } else {
                m.lsrs_imm(Reg::R4, Reg::R5, amount);
            }
            // xor r4 into the target: swap roles of r4/r5 via xor_word5.
            xor_word_from_r4(m, loc(idx - delta));
        }
    }
    // Excess bits of word 7: t = v[7] >> 9.
    load_word(m, loc(7), Reg::R5);
    m.lsrs_imm(Reg::R4, Reg::R5, 9);
    // v[0] ^= t.
    xor_word_from_r4(m, loc(0));
    // v[2] ^= t << 10 — recompute the shift from r5.
    m.lsrs_imm(Reg::R4, Reg::R5, 9);
    m.lsls_imm(Reg::R4, Reg::R4, 10);
    xor_word_from_r4(m, loc(2));
    // v[3] ^= t >> 22  (i.e. v[7] >> 31).
    m.lsrs_imm(Reg::R4, Reg::R5, 31);
    xor_word_from_r4(m, loc(3));
    // v[7] &= 0x1FF.
    m.ldr_const(Reg::R4, crate::TOP_MASK);
    m.ands(Reg::R5, Reg::R4);
    store_word(m, loc(7), Reg::R5);
}

/// target ^= r4 (shuttle in r7; r5 preserved).
fn xor_word_from_r4(m: &mut Machine, target: Loc) {
    match target {
        Loc::Lo(r) => m.eors(r, Reg::R4),
        Loc::Hi(r) => {
            m.mov(Reg::R7, r);
            m.eors(Reg::R7, Reg::R4);
            m.mov(r, Reg::R7);
        }
        Loc::Mem(off) => {
            m.ldr_sp(Reg::R7, off);
            m.eors(Reg::R7, Reg::R4);
            m.str_sp(Reg::R7, off);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::modeled::{ModeledField, Tier};
    use crate::Fe;
    use m0plus::Category;

    fn fe(seed: u64) -> Fe {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut w = [0u32; crate::N];
        for x in w.iter_mut() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *x = (s >> 29) as u32 ^ (s as u32);
        }
        Fe::from_words_reduced(w)
    }

    #[test]
    fn asm_mul_matches_portable_on_many_inputs() {
        let mut f = ModeledField::new(Tier::Asm);
        for seed in 0..16u64 {
            let a = fe(seed);
            let b = fe(seed + 999);
            let (sa, sb, sz) = (f.alloc_init(a), f.alloc_init(b), f.alloc());
            f.mul(sz, sa, sb);
            assert_eq!(f.load(sz), a * b, "seed {seed}");
        }
    }

    #[test]
    fn asm_mul_edge_cases() {
        let mut f = ModeledField::new(Tier::Asm);
        let mut top = [0u32; crate::N];
        top[7] = crate::TOP_MASK;
        for (a, b) in [
            (Fe::ZERO, Fe::ZERO),
            (Fe::ONE, Fe::ONE),
            (Fe::ZERO, fe(1)),
            (Fe(top), Fe(top)),
            (Fe(top), Fe::ONE),
        ] {
            let (sa, sb, sz) = (f.alloc_init(a), f.alloc_init(b), f.alloc());
            f.mul(sz, sa, sb);
            assert_eq!(f.load(sz), a * b);
        }
    }

    #[test]
    fn asm_mul_cycle_count_is_near_the_paper() {
        // Table 6: "LD with fixed registers — Assembly: 3672" for the
        // main multiplication, with the table generation split out
        // (Table 7's Multiply Precomputation ≈ 250 750 / ≈303 ≈ 827).
        let mut f = ModeledField::new(Tier::Asm);
        let (sa, sb, sz) = (f.alloc_init(fe(1)), f.alloc_init(fe(2)), f.alloc());
        f.mul(sz, sa, sb);
        let main = f.machine().category_totals(Category::Multiply).cycles;
        let lut = f
            .machine()
            .category_totals(Category::MultiplyPrecomputation)
            .cycles;
        assert!(
            (3300..=4100).contains(&main),
            "main loop cycles {main}, paper: 3672"
        );
        assert!((650..=1000).contains(&lut), "LUT cycles {lut}, paper ≈ 827");
    }

    #[test]
    fn mul_cost_is_operand_independent() {
        let runs: Vec<u64> = (0..3)
            .map(|i| {
                let mut f = ModeledField::new(Tier::Asm);
                let (sa, sb, sz) = (f.alloc_init(fe(i)), f.alloc_init(fe(i + 50)), f.alloc());
                let s = f.machine().snapshot();
                f.mul(sz, sa, sb);
                f.machine().report_since(&s).cycles
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }
}
