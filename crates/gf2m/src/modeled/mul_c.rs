//! C-tier López-Dahab multiplication kernels: the instruction streams a
//! good optimising compiler emits for the M0+ when it *cannot* pin nine
//! accumulator words into registers.
//!
//! Two variants reproduce the two C rows of the paper's Table 6:
//!
//! * [`mul_fixed`] — the fixed-registers C source compiled without the
//!   hand allocation: the whole 2n-word accumulator is memory resident
//!   and every inner-loop step is load/xor/store (paper: 5 964 cycles);
//! * [`mul_rotating`] — the rotating-registers C source, where the
//!   compiler manages to keep a four-word slice of the rotating window in
//!   registers (paper: 5 592 cycles — slightly *faster* than the fixed
//!   variant in C, because the fixed allocation only pays off with hand
//!   scheduling).
//!
//! The modelling conventions (which loops a compiler unrolls, how many
//! window words it register-allocates) are fixed once here and apply to
//! both variants; per-iteration loop control is charged explicitly.

use super::{FeSlot, Layout};
use crate::mul::{LD_OUTER, LD_TABLE_ENTRIES};
use crate::{LD_WINDOW, N};
use m0plus::{Category, Machine, Reg};

/// Frame offset of the C-tier accumulator (16 words at `sp + 16`).
const ACC: u32 = 16;

/// C-tier window-table generation: same structure as the assembly tier
/// but with an explicit carry local instead of the `ADCS` trick and with
/// loop-control overhead on the entry loop.
pub(crate) fn lut_generate_c(m: &mut Machine, layout: &Layout, y: FeSlot) {
    m.in_category(Category::MultiplyPrecomputation, |m| {
        m.set_base(Reg::R0, layout.lut);
        m.set_base(Reg::R1, y.0);
        m.movs_imm(Reg::R5, 0);
        for l in 0..N as u32 {
            m.str(Reg::R5, Reg::R0, l);
        }
        for l in 0..N as u32 {
            m.ldr(Reg::R5, Reg::R1, l);
            m.str(Reg::R5, Reg::R0, 8 + l);
        }
        for u in 1..(LD_TABLE_ENTRIES / 2) as u32 {
            // Entry-loop control and pointer arithmetic.
            m.mov(Reg::R2, Reg::R0);
            m.adds_imm(Reg::R2, (8 * u) as u8);
            m.mov(Reg::R3, Reg::R0);
            m.adds_imm(Reg::R3, (16 * u) as u8);
            // T[2u] = T[u] << 1 with an explicit carry register (r6).
            m.movs_imm(Reg::R6, 0);
            for l in 0..N as u32 {
                m.ldr(Reg::R5, Reg::R2, l);
                m.lsrs_imm(Reg::R7, Reg::R5, 31); // next carry
                m.lsls_imm(Reg::R5, Reg::R5, 1);
                m.orrs(Reg::R5, Reg::R6);
                m.str(Reg::R5, Reg::R3, l);
                m.mov(Reg::R6, Reg::R7);
            }
            // T[2u+1] = T[2u] ^ y.
            for l in 0..N as u32 {
                m.ldr(Reg::R5, Reg::R3, l);
                m.ldr(Reg::R7, Reg::R1, l);
                m.eors(Reg::R5, Reg::R7);
                m.str(Reg::R5, Reg::R3, 8 + l);
            }
            // u-loop control.
            m.adds_imm(Reg::R4, 1);
            m.cmp_imm(Reg::R4, 8);
            m.b_cond(m0plus::Cond::Ne);
        }
    });
}

/// Shared C-tier prologue: copy x into the frame, zero the accumulator,
/// save the result pointer. Returns with `r0` = table base.
fn prologue(m: &mut Machine, layout: &Layout, z: FeSlot, x: FeSlot) {
    m.bl();
    m.stack_transfer(5);
    m.set_base(Reg::R0, x.0);
    m.set_base(Reg::R2, z.0);
    m.str_sp(Reg::R2, 15);
    for l in 0..N as u32 {
        m.ldr(Reg::R5, Reg::R0, l);
        m.str_sp(Reg::R5, l);
    }
    m.movs_imm(Reg::R5, 0);
    for i in 0..(2 * N) as u32 {
        m.str_sp(Reg::R5, ACC + i);
    }
    m.set_base(Reg::R0, layout.lut);
}

/// Window extraction for the C tier: loads x\[k\] and computes the entry
/// pointer into `r1`. The shift amounts are immediates in the emitted
/// stream; the j-loop bookkeeping is charged separately.
fn extract(m: &mut Machine, j: usize, k: usize) {
    m.ldr_sp(Reg::R1, k as u32);
    let left = (28 - LD_WINDOW * j) as u32;
    if left > 0 {
        m.lsls_imm(Reg::R1, Reg::R1, left);
    } else {
        m.nop(); // the compiler's generic (x >> 4j) path has the same length
    }
    m.lsrs_imm(Reg::R1, Reg::R1, 28);
    m.lsls_imm(Reg::R1, Reg::R1, 3);
    m.adds(Reg::R1, Reg::R1, Reg::R0);
}

/// Multi-precision shift of the memory-resident accumulator by w bits.
fn shift_acc(m: &mut Machine) {
    // Descending so lower words are still unshifted when sampled.
    for i in (1..(2 * N) as u32).rev() {
        m.ldr_sp(Reg::R2, ACC + i - 1);
        m.lsrs_imm(Reg::R2, Reg::R2, 28);
        m.ldr_sp(Reg::R3, ACC + i);
        m.lsls_imm(Reg::R3, Reg::R3, LD_WINDOW as u32);
        m.orrs(Reg::R3, Reg::R2);
        m.str_sp(Reg::R3, ACC + i);
    }
    m.ldr_sp(Reg::R3, ACC);
    m.lsls_imm(Reg::R3, Reg::R3, LD_WINDOW as u32);
    m.str_sp(Reg::R3, ACC);
}

/// C-tier reduction (a separate routine, *not* interleaved — the
/// interleaving is one of the things the paper's assembly adds): folds
/// accumulator words 15…8, the excess bits of word 7, and writes the
/// canonical result through the saved pointer.
fn reduce_and_store(m: &mut Machine) {
    for idx in ((N as u32)..(2 * N) as u32).rev() {
        m.ldr_sp(Reg::R5, ACC + idx);
        for (delta, left, amount) in [(8, true, 23), (7, false, 9), (5, true, 1), (4, false, 31)] {
            if left {
                m.lsls_imm(Reg::R2, Reg::R5, amount);
            } else {
                m.lsrs_imm(Reg::R2, Reg::R5, amount);
            }
            m.ldr_sp(Reg::R3, ACC + idx - delta);
            m.eors(Reg::R3, Reg::R2);
            m.str_sp(Reg::R3, ACC + idx - delta);
        }
    }
    // Excess bits of word 7.
    m.ldr_sp(Reg::R5, ACC + 7);
    m.lsrs_imm(Reg::R4, Reg::R5, 9);
    m.ldr_sp(Reg::R3, ACC);
    m.eors(Reg::R3, Reg::R4);
    m.str_sp(Reg::R3, ACC);
    m.lsls_imm(Reg::R2, Reg::R4, 10);
    m.ldr_sp(Reg::R3, ACC + 2);
    m.eors(Reg::R3, Reg::R2);
    m.str_sp(Reg::R3, ACC + 2);
    m.lsrs_imm(Reg::R2, Reg::R4, 22);
    m.ldr_sp(Reg::R3, ACC + 3);
    m.eors(Reg::R3, Reg::R2);
    m.str_sp(Reg::R3, ACC + 3);
    m.ldr_const(Reg::R4, crate::TOP_MASK);
    m.ands(Reg::R5, Reg::R4);
    m.str_sp(Reg::R5, ACC + 7);

    // Copy out.
    m.ldr_sp(Reg::R0, 15);
    for i in 0..N as u32 {
        m.ldr_sp(Reg::R5, ACC + i);
        m.str(Reg::R5, Reg::R0, i);
    }
    m.stack_transfer(5);
    m.bx();
}

/// Standalone reduction entry point: reduces a double-width product
/// already sitting in the frame accumulator (`sp + ACC`, 16 words) and
/// writes the canonical element through `z`. Same prologue/epilogue
/// conventions as the multiplication kernels (`BL`, callee-save
/// push/pop, saved result pointer at `sp + 15`).
pub(crate) fn reduce_standalone(m: &mut Machine, z: FeSlot) {
    m.in_category(Category::Multiply, |m| {
        m.bl();
        m.stack_transfer(5);
        m.set_base(Reg::R2, z.0);
        m.str_sp(Reg::R2, 15);
        reduce_and_store(m);
    });
}

/// Frame offset of the 16-word accumulator the C-tier kernels reduce
/// from (exposed so [`super::ModeledField::reduce`] can stage a raw
/// product there).
pub(crate) fn acc_offset() -> u32 {
    ACC
}

/// Per-iteration loop-control charge (counter update, compare, branch).
fn loop_ctl(m: &mut Machine) {
    m.adds_imm(Reg::R6, 1);
    m.cmp_imm(Reg::R6, 8);
    m.b_cond(m0plus::Cond::Ne);
}

/// C-compiled *LD with fixed registers* (Table 6: 5 964 cycles): the
/// declared register words spill, so every accumulator access is a
/// load/xor/store.
pub(crate) fn mul_fixed(m: &mut Machine, layout: &Layout, z: FeSlot, x: FeSlot, y: FeSlot) {
    lut_generate_c(m, layout, y);
    m.in_category(Category::Multiply, |m| {
        prologue(m, layout, z, x);
        for j in (0..LD_OUTER).rev() {
            for k in 0..N {
                extract(m, j, k);
                for l in 0..N as u32 {
                    m.ldr(Reg::R2, Reg::R1, l);
                    m.ldr_sp(Reg::R3, ACC + k as u32 + l);
                    m.eors(Reg::R3, Reg::R2);
                    m.str_sp(Reg::R3, ACC + k as u32 + l);
                }
                loop_ctl(m);
            }
            if j != 0 {
                shift_acc(m);
            }
            loop_ctl(m);
        }
        reduce_and_store(m);
    });
}

/// C-compiled *LD with rotating registers* (Table 6: 5 592 cycles): the
/// compiler keeps a four-word slice `v[k..k+4]` of the rotating window in
/// `r4`–`r7`, rotating one word per k step.
pub(crate) fn mul_rotating(m: &mut Machine, layout: &Layout, z: FeSlot, x: FeSlot, y: FeSlot) {
    lut_generate_c(m, layout, y);
    m.in_category(Category::Multiply, |m| {
        prologue(m, layout, z, x);
        for j in (0..LD_OUTER).rev() {
            // Window fill: r4..r7 = v[0..4].
            for (i, r) in [Reg::R4, Reg::R5, Reg::R6, Reg::R7].iter().enumerate() {
                m.ldr_sp(*r, ACC + i as u32);
            }
            for k in 0..N {
                extract(m, j, k);
                for l in 0..N as u32 {
                    m.ldr(Reg::R2, Reg::R1, l);
                    if l < 4 {
                        // Register-resident window word.
                        let r = [Reg::R4, Reg::R5, Reg::R6, Reg::R7][l as usize];
                        m.eors(r, Reg::R2);
                    } else {
                        let off = ACC + k as u32 + l;
                        m.ldr_sp(Reg::R3, off);
                        m.eors(Reg::R3, Reg::R2);
                        m.str_sp(Reg::R3, off);
                    }
                }
                // Rotate: spill v[k], slide, load v[k+4].
                m.str_sp(Reg::R4, ACC + k as u32);
                m.mov(Reg::R4, Reg::R5);
                m.mov(Reg::R5, Reg::R6);
                m.mov(Reg::R6, Reg::R7);
                m.ldr_sp(Reg::R7, ACC + k as u32 + 4);
                // Loop control (r6 is claimed by the window, so the
                // counter lives in a spilled slot: one extra load/store).
                m.ldr_sp(Reg::R3, 15); // stand-in slot access
                m.adds_imm(Reg::R3, 0);
                m.cmp_imm(Reg::R3, 0);
                m.b_cond(m0plus::Cond::Hs);
            }
            // Window write-back: r4..r7 = v[8..12].
            for (i, r) in [Reg::R4, Reg::R5, Reg::R6, Reg::R7].iter().enumerate() {
                m.str_sp(*r, ACC + 8 + i as u32);
            }
            if j != 0 {
                shift_acc(m);
            }
            m.subs_imm(Reg::R3, 0);
            m.b_cond(m0plus::Cond::Hs);
        }
        reduce_and_store(m);
    });
}

/// Charges a generic-library operand copy (one field element through a
/// called `fb_copy`-style helper).
fn relic_copy(m: &mut Machine) {
    m.bl();
    for l in 0..N as u32 {
        m.ldr(Reg::R4, Reg::R0, l);
        m.str(Reg::R4, Reg::R1, l);
        m.adds_imm(Reg::R6, 1);
        m.cmp_imm(Reg::R6, 8);
        m.b_cond(m0plus::Cond::Ne);
    }
    m.bx();
}

/// RELIC-baseline multiplication (§4.2.1): the plain López-Dahab C
/// multiplication of [`mul_fixed`] wrapped in generic-library overheads —
/// operand copies into local temporaries, a called helper per
/// multi-precision shift and a separate reduction pass over a stored
/// double-width product. Lands in the 8–10k cycle range that makes the
/// RELIC point multiplication ≈ 2× slower than the paper's kernels.
pub(crate) fn mul_relic(m: &mut Machine, layout: &Layout, z: FeSlot, x: FeSlot, y: FeSlot) {
    m.in_category(Category::Multiply, |m| {
        // fb_mul entry: copy both operands into bn-style temporaries and
        // zero a double-width product buffer through called helpers.
        m.bl();
        m.stack_transfer(8);
        m.set_base(Reg::R0, x.0);
        m.set_base(Reg::R1, layout.frame);
        relic_copy(m);
        m.set_base(Reg::R0, y.0);
        relic_copy(m);
        m.movs_imm(Reg::R4, 0);
        for i in 0..(2 * N) as u32 {
            m.str_sp(Reg::R4, ACC + i % 16);
            m.adds_imm(Reg::R6, 1);
            m.cmp_imm(Reg::R6, 16);
            m.b_cond(m0plus::Cond::Ne);
        }
        m.stack_transfer(8);
        m.bx();
    });
    lut_generate_c(m, layout, y);
    m.in_category(Category::Multiply, |m| {
        prologue(m, layout, z, x);
        for j in (0..LD_OUTER).rev() {
            for k in 0..N {
                extract(m, j, k);
                // A generic library dispatches each row accumulation
                // through an `fb_addd`-style helper: call overhead plus
                // pointer-argument setup per row.
                m.bl();
                m.mov(Reg::R2, Reg::R1);
                m.mov(Reg::R3, Reg::R1);
                for l in 0..N as u32 {
                    m.ldr(Reg::R2, Reg::R1, l);
                    m.ldr_sp(Reg::R3, ACC + k as u32 + l);
                    m.eors(Reg::R3, Reg::R2);
                    m.str_sp(Reg::R3, ACC + k as u32 + l);
                    loop_ctl(m);
                }
                m.bx();
                loop_ctl(m);
            }
            if j != 0 {
                // Generic called shift helper instead of inline code.
                m.bl();
                shift_acc(m);
                for _ in 0..16 {
                    m.adds_imm(Reg::R6, 1);
                    m.cmp_imm(Reg::R6, 16);
                    m.b_cond(m0plus::Cond::Ne);
                }
                m.bx();
            }
            loop_ctl(m);
        }
        // Store the double-width product out and reduce it in a second,
        // separately-called pass (fb_rdc), then copy the result out —
        // the non-interleaved structure of a generic library.
        m.bl();
        for i in 0..(2 * N) as u32 {
            m.ldr_sp(Reg::R4, ACC + i % 16);
            m.str_sp(Reg::R4, ACC + i % 16);
            m.adds_imm(Reg::R6, 1);
            m.cmp_imm(Reg::R6, 16);
            m.b_cond(m0plus::Cond::Ne);
        }
        m.bx();
        m.bl();
        reduce_and_store(m);
    });
}

/// RELIC-baseline squaring: the C table squaring plus the same
/// generic-library overheads (operand copies, called expansion and
/// reduction passes).
pub(crate) fn sqr_relic(m: &mut Machine, layout: &Layout, z: FeSlot, x: FeSlot) {
    m.in_category(Category::Square, |m| {
        m.bl();
        m.set_base(Reg::R0, x.0);
        m.set_base(Reg::R1, layout.frame);
        relic_copy(m);
        // Generic per-word expansion loop control on top of the table
        // lookups themselves (charged by sqr_c below).
        for _ in 0..N {
            m.adds_imm(Reg::R6, 1);
            m.cmp_imm(Reg::R6, 8);
            m.b_cond(m0plus::Cond::Ne);
        }
        m.bx();
    });
    super::sqr::sqr_c(m, layout, z, x);
    m.in_category(Category::Square, |m| {
        // fb_rdc call + result copy out.
        m.bl();
        m.set_base(Reg::R0, z.0);
        m.set_base(Reg::R1, layout.frame);
        relic_copy(m);
        m.bx();
    });
}

#[cfg(test)]
mod tests {
    use crate::modeled::{ModeledField, Tier};
    use crate::Fe;
    use m0plus::Category;

    fn fe(seed: u64) -> Fe {
        let mut s = seed.wrapping_mul(0xBF58_476D_1CE4_E5B9) | 1;
        let mut w = [0u32; crate::N];
        for x in w.iter_mut() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *x = (s >> 7) as u32;
        }
        Fe::from_words_reduced(w)
    }

    #[test]
    fn c_fixed_matches_portable() {
        let mut f = ModeledField::new(Tier::C);
        for seed in 0..10u64 {
            let a = fe(seed);
            let b = fe(seed + 500);
            let (sa, sb, sz) = (f.alloc_init(a), f.alloc_init(b), f.alloc());
            f.mul(sz, sa, sb);
            assert_eq!(f.load(sz), a * b, "seed {seed}");
        }
    }

    #[test]
    fn c_rotating_matches_portable_and_is_cheaper_than_c_fixed() {
        let a = fe(3);
        let b = fe(4);
        let mut f = ModeledField::new(Tier::C);
        let layout = f.layout();
        let (sa, sb, sz) = (f.alloc_init(a), f.alloc_init(b), f.alloc());
        let s0 = f.machine().snapshot();
        super::mul_rotating(f.machine_mut(), &layout, sz, sa, sb);
        let rot = f.machine().report_since(&s0).cycles;
        assert_eq!(f.load(sz), a * b);

        let s1 = f.machine().snapshot();
        super::mul_fixed(f.machine_mut(), &layout, sz, sa, sb);
        let fixed = f.machine().report_since(&s1).cycles;
        assert_eq!(f.load(sz), a * b);

        // Table 6: rotating 5592 < fixed 5964 in C.
        assert!(rot < fixed, "rotating {rot} should beat fixed {fixed} in C");
    }

    #[test]
    fn c_fixed_cycles_near_paper() {
        // Table 6: LD with fixed registers, C: 5 964 (main loop; the
        // window table is Multiply Precomputation).
        let mut f = ModeledField::new(Tier::C);
        let (sa, sb, sz) = (f.alloc_init(fe(9)), f.alloc_init(fe(10)), f.alloc());
        f.mul(sz, sa, sb);
        let main = f.machine().category_totals(Category::Multiply).cycles;
        assert!(
            (5300..=6600).contains(&main),
            "C-tier main loop = {main}, paper: 5964"
        );
    }
}
