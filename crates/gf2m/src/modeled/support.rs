//! Support routines (Table 7's "Support functions"): element copies,
//! additions, comparisons and constant loads.
//!
//! Argument pointers are placed in `r0`–`r2` without cost, mirroring the
//! AAPCS calling convention (the caller would have them in registers
//! already); each routine charges its `BL`/`BX` call overhead explicitly.

use super::FeSlot;
use crate::N;
use m0plus::{Category, Cond, Machine, Reg};

/// `z ← x ⊕ y` (field addition).
pub fn add(m: &mut Machine, z: FeSlot, x: FeSlot, y: FeSlot) {
    m.in_category(Category::Support, |m| {
        m.bl();
        m.set_base(Reg::R0, x.0);
        m.set_base(Reg::R1, y.0);
        m.set_base(Reg::R2, z.0);
        for l in 0..N as u32 {
            m.ldr(Reg::R3, Reg::R0, l);
            m.ldr(Reg::R4, Reg::R1, l);
            m.eors(Reg::R3, Reg::R4);
            m.str(Reg::R3, Reg::R2, l);
        }
        m.bx();
    });
}

/// `z ← x`.
pub fn copy(m: &mut Machine, z: FeSlot, x: FeSlot) {
    m.in_category(Category::Support, |m| {
        m.bl();
        m.set_base(Reg::R0, x.0);
        m.set_base(Reg::R1, z.0);
        for l in 0..N as u32 {
            m.ldr(Reg::R3, Reg::R0, l);
            m.str(Reg::R3, Reg::R1, l);
        }
        m.bx();
    });
}

/// `z ← constant` via literal-pool loads.
pub fn set_const(m: &mut Machine, z: FeSlot, value: crate::Fe) {
    m.in_category(Category::Support, |m| {
        m.bl();
        m.set_base(Reg::R0, z.0);
        for (l, &w) in value.words().iter().enumerate() {
            m.ldr_const(Reg::R3, w);
            m.str(Reg::R3, Reg::R0, l as u32);
        }
        m.bx();
    });
}

/// Whether `x` is the zero element (OR-reduction of its words).
pub fn is_zero(m: &mut Machine, x: FeSlot) -> bool {
    m.in_category(Category::Support, |m| {
        m.bl();
        m.set_base(Reg::R0, x.0);
        m.ldr(Reg::R3, Reg::R0, 0);
        for l in 1..N as u32 {
            m.ldr(Reg::R4, Reg::R0, l);
            m.orrs(Reg::R3, Reg::R4);
        }
        m.cmp_imm(Reg::R3, 0);
        let zero = m.b_cond(Cond::Eq);
        m.bx();
        zero
    })
}

/// Whether `x == y` (OR-reduction of the word-wise XORs).
pub fn equal(m: &mut Machine, x: FeSlot, y: FeSlot) -> bool {
    m.in_category(Category::Support, |m| {
        m.bl();
        m.set_base(Reg::R0, x.0);
        m.set_base(Reg::R1, y.0);
        m.movs_imm(Reg::R3, 0);
        for l in 0..N as u32 {
            m.ldr(Reg::R4, Reg::R0, l);
            m.ldr(Reg::R5, Reg::R1, l);
            m.eors(Reg::R4, Reg::R5);
            m.orrs(Reg::R3, Reg::R4);
        }
        m.cmp_imm(Reg::R3, 0);
        let eq = m.b_cond(Cond::Eq);
        m.bx();
        eq
    })
}

#[cfg(test)]
mod tests {
    use crate::modeled::{ModeledField, Tier};
    use crate::Fe;

    #[test]
    fn set_const_and_equal() {
        let mut f = ModeledField::new(Tier::C);
        let a = f.alloc();
        let b = f.alloc();
        let v = Fe::from_hex("123456789abcdef0123").unwrap();
        f.set_const(a, v);
        assert_eq!(f.load(a), v);
        f.copy(b, a);
        assert!(f.equal(a, b));
        assert!(!f.is_zero(a));
        let z = f.alloc_init(Fe::ZERO);
        assert!(f.is_zero(z));
        assert!(!f.equal(a, z));
    }
}
