//! Support routines (Table 7's "Support functions"): element copies,
//! additions, comparisons and constant loads.
//!
//! Argument pointers are placed in `r0`–`r2` without cost, mirroring the
//! AAPCS calling convention (the caller would have them in registers
//! already); each routine charges its `BL`/`BX` call overhead explicitly.

use super::FeSlot;
use crate::N;
use m0plus::{Category, Cond, Machine, Reg};

/// `z ← x ⊕ y` (field addition).
pub fn add(m: &mut Machine, z: FeSlot, x: FeSlot, y: FeSlot) {
    m.in_category(Category::Support, |m| {
        m.bl();
        m.set_base(Reg::R0, x.0);
        m.set_base(Reg::R1, y.0);
        m.set_base(Reg::R2, z.0);
        for l in 0..N as u32 {
            m.ldr(Reg::R3, Reg::R0, l);
            m.ldr(Reg::R4, Reg::R1, l);
            m.eors(Reg::R3, Reg::R4);
            m.str(Reg::R3, Reg::R2, l);
        }
        m.bx();
    });
}

/// `z ← x`.
pub fn copy(m: &mut Machine, z: FeSlot, x: FeSlot) {
    m.in_category(Category::Support, |m| {
        m.bl();
        m.set_base(Reg::R0, x.0);
        m.set_base(Reg::R1, z.0);
        for l in 0..N as u32 {
            m.ldr(Reg::R3, Reg::R0, l);
            m.str(Reg::R3, Reg::R1, l);
        }
        m.bx();
    });
}

/// `z ← constant` via literal-pool loads.
pub fn set_const(m: &mut Machine, z: FeSlot, value: crate::Fe) {
    m.in_category(Category::Support, |m| {
        m.bl();
        m.set_base(Reg::R0, z.0);
        for (l, &w) in value.words().iter().enumerate() {
            m.ldr_const(Reg::R3, w);
            m.str(Reg::R3, Reg::R0, l as u32);
        }
        m.bx();
    });
}

/// Constant-time conditional swap: exchanges `a` and `b` iff `swap`.
///
/// The executed instruction stream, effective addresses and cycle count
/// are identical for both values of `swap`; only the *value* of the
/// mask register (0 or all-ones, built arithmetically from the bit)
/// differs, and register values are data, not trace.
pub fn cswap(m: &mut Machine, a: FeSlot, b: FeSlot, swap: bool) {
    m.in_category(Category::Support, |m| {
        m.bl();
        m.set_base(Reg::R0, a.0);
        m.set_base(Reg::R1, b.0);
        // The bit arrives in r2 as un-costed argument staging (in real
        // code it falls out of the caller's scalar-word shift); encoding
        // it as a MOVS immediate would put the secret in the instruction
        // stream itself. mask = 0 − bit: 0x0000_0000 or 0xFFFF_FFFF.
        m.set_reg(Reg::R2, swap as u32);
        m.rsbs(Reg::R2, Reg::R2);
        for l in 0..N as u32 {
            m.ldr(Reg::R3, Reg::R0, l);
            m.ldr(Reg::R4, Reg::R1, l);
            m.mov(Reg::R5, Reg::R3);
            m.eors(Reg::R5, Reg::R4); // t = a[l] ^ b[l]
            m.ands(Reg::R5, Reg::R2); // t &= mask
            m.eors(Reg::R3, Reg::R5);
            m.eors(Reg::R4, Reg::R5);
            m.str(Reg::R3, Reg::R0, l);
            m.str(Reg::R4, Reg::R1, l);
        }
        m.bx();
    });
}

/// Whether `x` is the zero element (OR-reduction of its words).
pub fn is_zero(m: &mut Machine, x: FeSlot) -> bool {
    m.in_category(Category::Support, |m| {
        m.bl();
        m.set_base(Reg::R0, x.0);
        m.ldr(Reg::R3, Reg::R0, 0);
        for l in 1..N as u32 {
            m.ldr(Reg::R4, Reg::R0, l);
            m.orrs(Reg::R3, Reg::R4);
        }
        m.cmp_imm(Reg::R3, 0);
        let zero = m.b_cond(Cond::Eq);
        m.bx();
        zero
    })
}

/// Whether `x == y` (OR-reduction of the word-wise XORs).
pub fn equal(m: &mut Machine, x: FeSlot, y: FeSlot) -> bool {
    m.in_category(Category::Support, |m| {
        m.bl();
        m.set_base(Reg::R0, x.0);
        m.set_base(Reg::R1, y.0);
        m.movs_imm(Reg::R3, 0);
        for l in 0..N as u32 {
            m.ldr(Reg::R4, Reg::R0, l);
            m.ldr(Reg::R5, Reg::R1, l);
            m.eors(Reg::R4, Reg::R5);
            m.orrs(Reg::R3, Reg::R4);
        }
        m.cmp_imm(Reg::R3, 0);
        let eq = m.b_cond(Cond::Eq);
        m.bx();
        eq
    })
}

#[cfg(test)]
mod tests {
    use crate::modeled::{ModeledField, Tier};
    use crate::Fe;

    #[test]
    fn set_const_and_equal() {
        let mut f = ModeledField::new(Tier::C);
        let a = f.alloc();
        let b = f.alloc();
        let v = Fe::from_hex("123456789abcdef0123").unwrap();
        f.set_const(a, v);
        assert_eq!(f.load(a), v);
        f.copy(b, a);
        assert!(f.equal(a, b));
        assert!(!f.is_zero(a));
        let z = f.alloc_init(Fe::ZERO);
        assert!(f.is_zero(z));
        assert!(!f.equal(a, z));
    }

    #[test]
    fn cswap_swaps_exactly_when_asked_at_fixed_cost() {
        let mut f = ModeledField::new(Tier::C);
        let va = Fe::from_hex("123456789abcdef").unwrap();
        let vb = Fe::from_hex("fedcba987654321").unwrap();
        let (a, b) = (f.alloc_init(va), f.alloc_init(vb));
        let snap = f.machine().snapshot();
        f.cswap(a, b, false);
        let keep = f.machine().report_since(&snap).cycles;
        assert_eq!((f.load(a), f.load(b)), (va, vb));
        let snap = f.machine().snapshot();
        f.cswap(a, b, true);
        let swap = f.machine().report_since(&snap).cycles;
        assert_eq!((f.load(a), f.load(b)), (vb, va));
        assert_eq!(keep, swap, "cswap cost must not depend on the bit");
    }
}
