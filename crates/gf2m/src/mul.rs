//! Field multiplication algorithms (§3.2.1, §3.3).
//!
//! All functions compute x(z)·y(z) mod f(z) and agree bit-for-bit; they
//! differ in how the 2n-word intermediate state is scanned and where it
//! would live on the target machine. The portable functions here are the
//! *reference semantics*; the [`crate::counted`] and [`crate::modeled`]
//! tiers re-express the same loop structures with explicit memory
//! accounting.
//!
//! * [`mul_shift_and_add`] — right-to-left comb, no window (baseline).
//! * [`mul_ld`] — plain López-Dahab, window w = 4 (the paper's Method A).
//! * [`mul_ld_rotating`] — López-Dahab with rotating registers, the prior
//!   state of the art by Aranha et al. (Method B).
//! * [`mul_ld_fixed`] — the paper's **López-Dahab with fixed registers**
//!   (Method C, its Algorithm 1).
//! * [`mul_karatsuba`] — Karatsuba-Ofman on the word level, as used by
//!   several of the related-work implementations.

// Indexed loops below mirror the paper's Algorithm 1 pseudocode
// (v[l + k] ^= T[u][l]); iterator rewrites would obscure the mapping.
#![allow(clippy::needless_range_loop)]

use crate::reduce::reduce;
use crate::{Fe, LD_WINDOW, N};

/// Number of outer iterations of the windowed loop: ⌈W / w⌉ = 8.
pub const LD_OUTER: usize = crate::W / LD_WINDOW;

/// Size of the López-Dahab look-up table: 2^w entries.
pub const LD_TABLE_ENTRIES: usize = 1 << LD_WINDOW;

/// Computes the unreduced 16-word product with the right-to-left comb
/// method (one bit of `x` at a time; the multi-precision shift runs over
/// the shifted copy of `y`).
pub fn mul_poly_comb(x: &[u32; N], y: &[u32; N]) -> [u32; 2 * N] {
    let mut c = [0u32; 2 * N];
    // b = y, widened by one word to absorb the left shifts.
    let mut b = [0u32; N + 1];
    b[..N].copy_from_slice(y);
    for k in 0..crate::W {
        for j in 0..N {
            if (x[j] >> k) & 1 == 1 {
                for (l, &bw) in b.iter().enumerate() {
                    c[j + l] ^= bw;
                }
            }
        }
        if k != crate::W - 1 {
            // b <<= 1.
            let mut carry = 0u32;
            for w in b.iter_mut() {
                let nc = *w >> 31;
                *w = (*w << 1) | carry;
                carry = nc;
            }
        }
    }
    c
}

/// Generates the López-Dahab window table T(u) = u(z)·y(z) for all
/// u of degree < w. With w = 4 and deg y ≤ 232 ≤ nW − (w − 1), every
/// entry fits in n = 8 words (the paper's equation (1), second case).
pub fn ld_table(y: &[u32; N]) -> [[u32; N]; LD_TABLE_ENTRIES] {
    let mut t = [[0u32; N]; LD_TABLE_ENTRIES];
    t[1] = *y;
    for u in 1..LD_TABLE_ENTRIES / 2 {
        // t[2u] = t[u] << 1.
        let mut carry = 0u32;
        for l in 0..N {
            let w = t[u][l];
            t[2 * u][l] = (w << 1) | carry;
            carry = w >> 31;
        }
        debug_assert_eq!(carry, 0, "table entry overflowed n words");
        // t[2u + 1] = t[2u] + y.
        for l in 0..N {
            t[2 * u + 1][l] = t[2 * u][l] ^ y[l];
        }
    }
    t
}

/// Computes the unreduced product with plain López-Dahab (Method A):
/// the whole 2n-word accumulator `v` conceptually lives in memory.
pub fn mul_poly_ld(x: &[u32; N], y: &[u32; N]) -> [u32; 2 * N] {
    let t = ld_table(y);
    let mut v = [0u32; 2 * N];
    for j in (0..LD_OUTER).rev() {
        for k in 0..N {
            let u = ((x[k] >> (LD_WINDOW * j)) & 0xF) as usize;
            for l in 0..N {
                v[k + l] ^= t[u][l];
            }
        }
        if j != 0 {
            // v <<= w.
            let mut carry = 0u32;
            for w in v.iter_mut() {
                let nc = *w >> (32 - LD_WINDOW as u32);
                *w = (*w << LD_WINDOW) | carry;
                carry = nc;
            }
        }
    }
    v
}

/// Plain López-Dahab multiplication, reduced (Method A).
pub fn mul_ld(x: Fe, y: Fe) -> Fe {
    reduce(mul_poly_ld(&x.0, &y.0))
}

/// López-Dahab with *rotating registers* (Method B, Aranha et al.).
///
/// Portable semantics are identical to [`mul_ld`]; the rotating-register
/// scheme changes which n + 1 words of `v` are register-resident during
/// the k-loop (a sliding window `v[k … k+n]` that rotates as k advances),
/// which the [`crate::counted`] tier accounts for. This function mirrors
/// the loop structure so the two tiers stay in sync.
pub fn mul_ld_rotating(x: Fe, y: Fe) -> Fe {
    let t = ld_table(&y.0);
    let mut v = [0u32; 2 * N];
    // The rotating window: w_regs mirrors v[k..=k+n] during the k loop.
    for j in (0..LD_OUTER).rev() {
        let mut window = [0u32; N + 1];
        window.copy_from_slice(&v[0..=N]);
        for k in 0..N {
            let u = ((x.0[k] >> (LD_WINDOW * j)) & 0xF) as usize;
            for l in 0..N {
                window[l] ^= t[u][l];
            }
            // Rotate: the lowest window word is finished for this j-pass;
            // spill it and slide in the next word of v.
            v[k] = window[0];
            for l in 0..N {
                window[l] = window[l + 1];
            }
            if k + 1 + N < 2 * N {
                window[N] = v[k + 1 + N];
            } else {
                window[N] = 0;
            }
        }
        // Write back the tail of the window.
        for (l, &w) in window.iter().enumerate().take(N) {
            v[N + l] = w;
        }
        if j != 0 {
            let mut carry = 0u32;
            for w in v.iter_mut() {
                let nc = *w >> (32 - LD_WINDOW as u32);
                *w = (*w << LD_WINDOW) | carry;
                carry = nc;
            }
        }
    }
    reduce(v)
}

/// Indices of the accumulator words that the paper's Algorithm 1 keeps in
/// *fixed registers*: v\[3 … 11\] (the n + 1 = 9 most frequently used
/// words). v\[0…2\] and v\[12…15\] stay in memory.
pub const FIXED_REGISTER_RANGE: std::ops::Range<usize> = 3..12;

/// The paper's **López-Dahab with fixed registers** (Method C,
/// Algorithm 1), portable semantics.
///
/// The accumulator split (registers vs memory) does not change the result,
/// only the access pattern; the split itself is exercised by
/// [`crate::counted::mul_ld_fixed`] and by the virtual-assembly kernel in
/// [`crate::modeled`].
pub fn mul_ld_fixed(x: Fe, y: Fe) -> Fe {
    let t = ld_table(&y.0);
    // v modelled as the paper's Note: (m[0],m[1],m[2], r0..r8, m[3]..m[6]).
    let mut v_mem_lo = [0u32; 3];
    let mut v_regs = [0u32; N + 1];
    let mut v_mem_hi = [0u32; 4];

    // Accessors translating accumulator index -> storage class.
    macro_rules! v_get {
        ($i:expr) => {{
            let i = $i;
            if i < 3 {
                v_mem_lo[i]
            } else if FIXED_REGISTER_RANGE.contains(&i) {
                v_regs[i - 3]
            } else {
                v_mem_hi[i - 12]
            }
        }};
    }
    macro_rules! v_set {
        ($i:expr, $val:expr) => {{
            let i = $i;
            let val = $val;
            if i < 3 {
                v_mem_lo[i] = val;
            } else if FIXED_REGISTER_RANGE.contains(&i) {
                v_regs[i - 3] = val;
            } else {
                v_mem_hi[i - 12] = val;
            }
        }};
    }

    for j in (0..LD_OUTER).rev() {
        for k in 0..N {
            let u = ((x.0[k] >> (LD_WINDOW * j)) & 0xF) as usize;
            for l in 0..N {
                let i = k + l;
                v_set!(i, v_get!(i) ^ t[u][l]);
            }
        }
        if j != 0 {
            // v <<= w over the split storage, high to low.
            let mut carry = 0u32;
            for i in 0..2 * N {
                let w = v_get!(i);
                v_set!(i, (w << LD_WINDOW) | carry);
                carry = w >> (32 - LD_WINDOW as u32);
            }
        }
    }

    let mut v = [0u32; 2 * N];
    v[..3].copy_from_slice(&v_mem_lo);
    v[3..12].copy_from_slice(&v_regs);
    v[12..].copy_from_slice(&v_mem_hi);
    reduce(v)
}

/// Karatsuba-Ofman multiplication: split the 8-word operands into 4-word
/// halves, three recursive 4-word comb products, combine. Used by several
/// related-work implementations (Szczechowiak et al., Gouvêa et al.).
pub fn mul_karatsuba(x: Fe, y: Fe) -> Fe {
    reduce(mul_poly_karatsuba(&x.0, &y.0))
}

/// Unreduced Karatsuba product.
pub fn mul_poly_karatsuba(x: &[u32; N], y: &[u32; N]) -> [u32; 2 * N] {
    const H: usize = N / 2;

    fn comb4(x: &[u32; 4], y: &[u32; 4]) -> [u32; 8] {
        let mut c = [0u32; 8];
        let mut b = [0u32; 5];
        b[..4].copy_from_slice(y);
        for k in 0..32 {
            for j in 0..4 {
                if (x[j] >> k) & 1 == 1 {
                    for (l, &bw) in b.iter().enumerate() {
                        c[j + l] ^= bw;
                    }
                }
            }
            if k != 31 {
                let mut carry = 0u32;
                for w in b.iter_mut() {
                    let nc = *w >> 31;
                    *w = (*w << 1) | carry;
                    carry = nc;
                }
            }
        }
        c
    }

    let xl: [u32; H] = x[..H].try_into().expect("half");
    let xh: [u32; H] = x[H..].try_into().expect("half");
    let yl: [u32; H] = y[..H].try_into().expect("half");
    let yh: [u32; H] = y[H..].try_into().expect("half");

    let low = comb4(&xl, &yl);
    let high = comb4(&xh, &yh);
    let mut xs = [0u32; H];
    let mut ys = [0u32; H];
    for i in 0..H {
        xs[i] = xl[i] ^ xh[i];
        ys[i] = yl[i] ^ yh[i];
    }
    let mid = comb4(&xs, &ys);

    let mut c = [0u32; 2 * N];
    for i in 0..2 * H {
        c[i] ^= low[i];
        c[i + N] ^= high[i];
        // middle term: (mid + low + high) << H words
        c[i + H] ^= mid[i] ^ low[i] ^ high[i];
    }
    c
}

/// Shift-and-add multiplication, reduced (the no-window baseline).
pub fn mul_shift_and_add(x: Fe, y: Fe) -> Fe {
    reduce(mul_poly_comb(&x.0, &y.0))
}

/// A named reduced multiplication routine.
pub type NamedMultiplier = (&'static str, fn(Fe, Fe) -> Fe);

/// All reduced multiplication routines, for cross-checking and benches.
pub const ALL_MULTIPLIERS: [NamedMultiplier; 5] = [
    ("shift-and-add", mul_shift_and_add),
    ("LD (Method A)", mul_ld),
    ("LD rotating (Method B)", mul_ld_rotating),
    ("LD fixed (Method C)", mul_ld_fixed),
    ("Karatsuba-Ofman", mul_karatsuba),
];

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(seed: u64) -> Fe {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut w = [0u32; N];
        for x in w.iter_mut() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *x = (s >> 11) as u32;
        }
        Fe::from_words_reduced(w)
    }

    #[test]
    fn table_entry_u_is_u_times_y() {
        let y = fe(7);
        let t = ld_table(&y.0);
        // Check via the comb multiplier: t[u] must equal (u as poly) * y,
        // unreduced (entries fit in n words).
        for u in 0..LD_TABLE_ENTRIES {
            let mut u_poly = [0u32; N];
            u_poly[0] = u as u32;
            let full = mul_poly_comb(&u_poly, &y.0);
            assert_eq!(&full[..N], &t[u][..], "entry {u}");
            assert!(full[N..].iter().all(|&w| w == 0));
        }
    }

    #[test]
    fn identity_and_zero() {
        let a = fe(3);
        for (name, f) in ALL_MULTIPLIERS {
            assert_eq!(f(a, Fe::ONE), a, "{name}: a*1");
            assert_eq!(f(Fe::ONE, a), a, "{name}: 1*a");
            assert_eq!(f(a, Fe::ZERO), Fe::ZERO, "{name}: a*0");
        }
    }

    #[test]
    fn all_multipliers_agree() {
        for seed in 0..40u64 {
            let a = fe(seed);
            let b = fe(seed + 1000);
            let want = mul_shift_and_add(a, b);
            for (name, f) in &ALL_MULTIPLIERS[1..] {
                assert_eq!(f(a, b), want, "{name} disagrees at seed {seed}");
            }
        }
    }

    #[test]
    fn commutativity() {
        for seed in 0..10u64 {
            let a = fe(seed);
            let b = fe(seed + 77);
            assert_eq!(mul_ld_fixed(a, b), mul_ld_fixed(b, a));
        }
    }

    #[test]
    fn distributes_over_addition() {
        for seed in 0..10u64 {
            let (a, b, c) = (fe(seed), fe(seed + 5), fe(seed + 9));
            assert_eq!(
                mul_ld_fixed(a, b + c),
                mul_ld_fixed(a, b) + mul_ld_fixed(a, c)
            );
        }
    }

    #[test]
    fn max_degree_operands() {
        // Both operands of degree exactly 232.
        let mut w = [0xFFFF_FFFFu32; N];
        w[7] = crate::TOP_MASK;
        let a = Fe(w);
        let want = mul_shift_and_add(a, a);
        for (name, f) in &ALL_MULTIPLIERS[1..] {
            assert_eq!(f(a, a), want, "{name}");
        }
    }

    #[test]
    fn z233_wraps_to_trinomial_tail() {
        // z^116 * z^117 = z^233 = z^74 + 1.
        let mut a = [0u32; N];
        a[116 / 32] = 1 << (116 % 32);
        let mut b = [0u32; N];
        b[117 / 32] = 1 << (117 % 32);
        let got = mul_ld_fixed(Fe(a), Fe(b));
        let mut want = [0u32; N];
        want[74 / 32] = 1 << (74 % 32);
        want[0] |= 1;
        assert_eq!(got, Fe(want));
    }
}
