//! Table-based squaring with interleaved reduction (§3.2.4).
//!
//! Squaring a binary polynomial just spreads its bits apart:
//! (Σ aᵢ zⁱ)² = Σ aᵢ z²ⁱ. The paper implements this with a byte→halfword
//! look-up table of 256 entries and *interleaves the modular reduction*:
//! the lower half of the squared value stays in registers while each word
//! of the upper half is folded into the result as soon as it is produced,
//! so the upper words are never stored to memory. The portable routine
//! below keeps the same structure (table lookup + immediate fold) so the
//! modeled tier has an exact reference.

use crate::reduce::reduce;
use crate::{Fe, N};

/// The 256-entry bit-spreading table: entry `b` is the 16-bit value with
/// the bits of `b` interleaved with zeros (`0b1011` → `0b1000101`).
pub static SQR_TABLE: [u16; 256] = build_sqr_table();

const fn build_sqr_table() -> [u16; 256] {
    let mut t = [0u16; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut v = 0u16;
        let mut i = 0;
        while i < 8 {
            if (b >> i) & 1 == 1 {
                v |= 1 << (2 * i);
            }
            i += 1;
        }
        t[b] = v;
        b += 1;
    }
    t
}

/// Spreads one 32-bit word into two words via [`SQR_TABLE`].
pub fn spread(w: u32) -> (u32, u32) {
    let lo = SQR_TABLE[(w & 0xFF) as usize] as u32
        | (SQR_TABLE[((w >> 8) & 0xFF) as usize] as u32) << 16;
    let hi = SQR_TABLE[((w >> 16) & 0xFF) as usize] as u32
        | (SQR_TABLE[((w >> 24) & 0xFF) as usize] as u32) << 16;
    (lo, hi)
}

/// Squares an element: table-based expansion with the reduction
/// interleaved, mirroring the paper's memory behaviour.
pub fn square(x: Fe) -> Fe {
    // Lower half: words 0..8 of the square come from x[0..4] and stay
    // "in registers" (a plain local array here).
    let mut c = [0u32; N];
    for i in 0..N / 2 {
        let (lo, hi) = spread(x.0[i]);
        c[2 * i] = lo;
        c[2 * i + 1] = hi;
    }
    // Upper half: each produced word is folded immediately using the same
    // per-word trinomial identities as crate::reduce (z^233 ≡ z^74 + 1).
    // Word index i of the square, for i in 8..16.
    let mut extra = [0u32; N]; // receives folds that land back in 0..8
    let mut spill = [0u32; 4]; // folds from words 12..16 land in 7..12 region
    for i in (N / 2..N).rev() {
        let (lo, hi) = spread(x.0[i]);
        for (idx, t) in [(2 * i + 1, hi), (2 * i, lo)] {
            // Fold product word `idx` (≥ 8) exactly like reduce().
            let mut apply = |target: usize, v: u32| {
                if target < N {
                    extra[target] ^= v;
                } else {
                    spill[target - N] ^= v;
                }
            };
            apply(idx - 8, t << 23);
            apply(idx - 7, t >> 9);
            apply(idx - 5, t << 1);
            apply(idx - 4, t >> 31);
        }
    }
    // The spill words (product words 8..12 created by folding 12..16)
    // must themselves be folded; run them through the generic reducer
    // together with everything else.
    let mut full = [0u32; 2 * N];
    for i in 0..N {
        full[i] = c[i] ^ extra[i];
    }
    for (i, &s) in spill.iter().enumerate() {
        full[N + i] = s;
    }
    reduce(full)
}

/// Reference squaring through the generic multiplier, for validation.
pub fn square_by_mul(x: Fe) -> Fe {
    crate::mul::mul_shift_and_add(x, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(seed: u64) -> Fe {
        let mut s = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
        let mut w = [0u32; N];
        for x in w.iter_mut() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *x = (s >> 13) as u32;
        }
        Fe::from_words_reduced(w)
    }

    #[test]
    fn table_spreads_bits() {
        assert_eq!(SQR_TABLE[0], 0);
        assert_eq!(SQR_TABLE[1], 1);
        assert_eq!(SQR_TABLE[0b11], 0b101);
        assert_eq!(SQR_TABLE[0b1011], 0b1000101);
        assert_eq!(SQR_TABLE[0xFF], 0x5555);
    }

    #[test]
    fn spread_covers_whole_word() {
        let (lo, hi) = spread(0xFFFF_FFFF);
        assert_eq!(lo, 0x5555_5555);
        assert_eq!(hi, 0x5555_5555);
        let (lo, hi) = spread(0x0001_8000);
        assert_eq!(lo, 0x4000_0000); // bit 15 -> bit 30
        assert_eq!(hi, 0x0000_0001); // bit 16 -> bit 32
    }

    #[test]
    fn square_of_small_values() {
        assert_eq!(square(Fe::ZERO), Fe::ZERO);
        assert_eq!(square(Fe::ONE), Fe::ONE);
        // (z)² = z².
        let z = Fe::from_words_reduced([2, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(square(z).words()[0], 4);
    }

    #[test]
    fn square_matches_multiplication() {
        for seed in 0..50u64 {
            let a = fe(seed);
            assert_eq!(square(a), square_by_mul(a), "seed {seed}");
        }
    }

    #[test]
    fn square_of_max_degree_element() {
        let mut w = [0xFFFF_FFFFu32; N];
        w[7] = crate::TOP_MASK;
        let a = Fe::from_words_reduced(w);
        assert_eq!(square(a), square_by_mul(a));
    }

    #[test]
    fn squaring_is_frobenius_additive() {
        // (a + b)² = a² + b² in characteristic 2.
        for seed in 0..20u64 {
            let a = fe(seed);
            let b = fe(seed + 31);
            assert_eq!(square(a + b), square(a) + square(b));
        }
    }

    #[test]
    fn square_233_times_is_identity() {
        // x^(2^233) = x for all x in F_2^233 (Frobenius order m).
        let a = fe(99);
        let mut x = a;
        for _ in 0..crate::M {
            x = square(x);
        }
        assert_eq!(x, a);
    }
}
