//! Inversion via the Extended Euclidean Algorithm for binary polynomials
//! (§3.2.3).
//!
//! The paper's two memory optimisations are both implemented:
//!
//! 1. **Swap elimination** — instead of swapping the multi-precision
//!    state variables `u ↔ v` (many loads/stores), the algorithm is
//!    written as two code segments with the variable names interchanged,
//!    and control bounces between them. [`invert`] has exactly this
//!    two-segment shape.
//! 2. **Most-significant-word tracking** — the word index of the top
//!    non-zero word of each state variable is carried along, so computing
//!    a polynomial's degree and shifting it never scans the full vector.
//!
//! [`invert_simple`] is the textbook variant kept as a reference.

use crate::{Fe, K, M, N};

/// The reduction polynomial f(z) = z²³³ + z⁷⁴ + 1 as 8 words
/// (bit 233 = word 7, bit 9).
pub const F_WORDS: [u32; N] = {
    let mut f = [0u32; N];
    f[0] = 1;
    f[K / 32] |= 1 << (K % 32);
    f[M / 32] |= 1 << (M % 32);
    f
};

/// Degree of an n-word polynomial scanning only words `0..=top`, plus the
/// updated top index. Returns `(degree, top)`; degree is `usize::MAX`
/// (sentinel) for zero — callers never invert zero past the guard.
fn degree_tracked(a: &[u32; N], mut top: usize) -> (usize, usize) {
    loop {
        if a[top] != 0 {
            return (top * 32 + 31 - a[top].leading_zeros() as usize, top);
        }
        if top == 0 {
            return (usize::MAX, 0);
        }
        top -= 1;
    }
}

/// `a ^= b << j` over n words, touching only the words that can change.
/// `b_top` is the index of b's top non-zero word.
fn xor_shifted(a: &mut [u32; N], b: &[u32; N], j: usize, b_top: usize) {
    let wshift = j / 32;
    let bshift = (j % 32) as u32;
    if bshift == 0 {
        for i in 0..=b_top {
            if i + wshift < N {
                a[i + wshift] ^= b[i];
            }
        }
    } else {
        for i in 0..=b_top {
            let w = b[i];
            if i + wshift < N {
                a[i + wshift] ^= w << bshift;
            }
            if i + wshift + 1 < N {
                a[i + wshift + 1] ^= w >> (32 - bshift);
            }
        }
    }
}

fn is_one(a: &[u32; N]) -> bool {
    a[0] == 1 && a[1..].iter().all(|&w| w == 0)
}

/// Computes a⁻¹ with the paper's optimised EEA (two code segments instead
/// of swaps, tracked most-significant words). Returns `None` for zero.
///
/// ```
/// use gf2m::Fe;
/// let a = Fe::from_hex("123456789abcdef")?;
/// assert_eq!(a * gf2m::inv::invert(a).expect("non-zero"), Fe::ONE);
/// # Ok::<(), gf2m::ParseFeError>(())
/// ```
pub fn invert(a: Fe) -> Option<Fe> {
    if a.is_zero() {
        return None;
    }
    // State: u starts as a (degree ≤ 232), v as f. g1, g2 accumulate the
    // Bézout coefficients. f has degree 233, which still fits in 8 words.
    let mut u = a.0;
    let mut v = F_WORDS;
    let mut g1 = [0u32; N];
    g1[0] = 1;
    let mut g2 = [0u32; N];
    let mut u_top = N - 1;
    let mut v_top = N - 1;

    // Segment A operates with (u, g1) as the "active" pair; segment B is
    // the same code with the names interchanged — the paper's
    // swap-elimination. Rust lets us express the duplication with one
    // inner function called with the bindings crossed, which compiles to
    // the same two specialised paths while keeping the source honest.
    #[allow(clippy::too_many_arguments)]
    fn step(
        u: &mut [u32; N],
        g1: &mut [u32; N],
        u_top: &mut usize,
        v: &[u32; N],
        g2: &[u32; N],
        v_deg: usize,
        v_top: usize,
        g2_top: usize,
    ) -> (usize, bool) {
        // Reduce u by v while deg(u) >= deg(v).
        let (mut u_deg, mut t) = degree_tracked(u, *u_top);
        *u_top = t;
        while u_deg != usize::MAX && u_deg >= v_deg {
            let j = u_deg - v_deg;
            xor_shifted(u, v, j, v_top);
            xor_shifted(g1, g2, j, g2_top);
            let (d, nt) = degree_tracked(u, *u_top);
            u_deg = d;
            t = nt;
            *u_top = t;
        }
        (u_deg, is_one(u))
    }

    loop {
        // --- Segment A: reduce u by v. ---
        let (v_deg, vt) = degree_tracked(&v, v_top);
        v_top = vt;
        let (g2_top, _) = {
            let (_, t) = degree_tracked(&g2, N - 1);
            (t, ())
        };
        let (_u_deg, done) = step(&mut u, &mut g1, &mut u_top, &v, &g2, v_deg, v_top, g2_top);
        if done {
            return Some(Fe(g1));
        }
        if u.iter().all(|&w| w == 0) {
            // gcd(a, f) != 1 can only happen for a = 0, handled above;
            // reaching here would mean f is reducible.
            unreachable!("f(z) is irreducible");
        }

        // --- Segment B: the same operations with names interchanged. ---
        let (u_deg, ut) = degree_tracked(&u, u_top);
        u_top = ut;
        let (g1_top, _) = {
            let (_, t) = degree_tracked(&g1, N - 1);
            (t, ())
        };
        let (_v_deg, done) = step(&mut v, &mut g2, &mut v_top, &u, &g1, u_deg, u_top, g1_top);
        if done {
            return Some(Fe(g2));
        }
    }
}

/// Textbook EEA inversion (with explicit swaps), kept as the reference
/// implementation that [`invert`] is validated against.
pub fn invert_simple(a: Fe) -> Option<Fe> {
    if a.is_zero() {
        return None;
    }
    let mut u = a.0;
    let mut v = F_WORDS;
    let mut g1 = [0u32; N];
    g1[0] = 1;
    let mut g2 = [0u32; N];

    fn deg(a: &[u32; N]) -> isize {
        for i in (0..N).rev() {
            if a[i] != 0 {
                return (i * 32 + 31 - a[i].leading_zeros() as usize) as isize;
            }
        }
        -1
    }

    while !is_one(&u) && !is_one(&v) {
        if deg(&u) < deg(&v) {
            std::mem::swap(&mut u, &mut v);
            std::mem::swap(&mut g1, &mut g2);
        }
        let j = (deg(&u) - deg(&v)) as usize;
        xor_shifted(&mut u, &v.clone(), j, N - 1);
        xor_shifted(&mut g1, &g2.clone(), j, N - 1);
    }
    Some(Fe(if is_one(&u) { g1 } else { g2 }))
}

/// Itoh–Tsujii inversion: a⁻¹ = a^(2²³³ − 2) computed with an addition
/// chain on m − 1 = 232 = 0b11101000 — the multiplication-based
/// alternative to the Euclidean approach. It needs only 10 field
/// multiplications and 232 squarings, so its cost profile is the
/// *opposite* of the EEA's (multiplication-bound instead of
/// shift/branch-bound); on platforms with fast squaring it can win.
/// Kept as an ablation of the paper's §3.2.3 choice.
///
/// The chain builds a^(2^k − 1) for k = 1, 2, 3, 6, 7, 14, 28, 29, 58,
/// 116, 232 via x_{i+j} = x_i^(2^j) · x_j.
pub fn invert_itoh_tsujii(a: Fe) -> Option<Fe> {
    if a.is_zero() {
        return None;
    }
    // e(k) = a^(2^k − 1).
    let e1 = a;
    let e2 = e1.square() * e1;
    let e3 = e2.square() * e1;
    let e6 = e3.square_n(3) * e3;
    let e7 = e6.square() * e1;
    let e14 = e7.square_n(7) * e7;
    let e28 = e14.square_n(14) * e14;
    let e29 = e28.square() * e1;
    let e58 = e29.square_n(29) * e29;
    let e116 = e58.square_n(58) * e58;
    let e232 = e116.square_n(116) * e116;
    // a⁻¹ = (a^(2^232 − 1))² = a^(2^233 − 2).
    Some(e232.square())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(seed: u64) -> Fe {
        let mut s = seed.wrapping_mul(0xD134_2543_DE82_EF95) | 1;
        let mut w = [0u32; N];
        for x in w.iter_mut() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *x = (s >> 17) as u32;
        }
        Fe::from_words_reduced(w)
    }

    #[test]
    fn f_words_is_the_trinomial() {
        assert_eq!(F_WORDS[0], 1); // z^0 term only in word 0
        assert_eq!(F_WORDS[2], 1 << 10); // z^74
        assert_eq!(F_WORDS[7], 1 << 9); // z^233
        let others: u32 = F_WORDS[1] | F_WORDS[3] | F_WORDS[4] | F_WORDS[5] | F_WORDS[6];
        assert_eq!(others, 0);
    }

    #[test]
    fn inverse_of_one_is_one() {
        assert_eq!(invert(Fe::ONE), Some(Fe::ONE));
        assert_eq!(invert_simple(Fe::ONE), Some(Fe::ONE));
    }

    #[test]
    fn inverse_of_zero_is_none() {
        assert_eq!(invert(Fe::ZERO), None);
        assert_eq!(invert_simple(Fe::ZERO), None);
    }

    #[test]
    fn a_times_inverse_is_one() {
        for seed in 0..30u64 {
            let a = fe(seed);
            if a.is_zero() {
                continue;
            }
            let inv = invert(a).expect("non-zero");
            assert_eq!(a * inv, Fe::ONE, "seed {seed}");
        }
    }

    #[test]
    fn optimized_matches_simple() {
        for seed in 0..30u64 {
            let a = fe(seed + 500);
            assert_eq!(invert(a), invert_simple(a), "seed {seed}");
        }
    }

    #[test]
    fn double_inversion_is_identity() {
        for seed in 0..10u64 {
            let a = fe(seed + 900);
            if a.is_zero() {
                continue;
            }
            let back = invert(invert(a).expect("non-zero")).expect("non-zero");
            assert_eq!(back, a);
        }
    }

    #[test]
    fn inverse_of_z_is_correct() {
        // z · z⁻¹ = 1; z⁻¹ = (z²³³ + z⁷⁴)/z ... = z²³² + z⁷³.
        let z = Fe::from_words_reduced([2, 0, 0, 0, 0, 0, 0, 0]);
        let inv = invert(z).expect("non-zero");
        let mut want = [0u32; N];
        want[232 / 32] |= 1 << (232 % 32);
        want[73 / 32] |= 1 << (73 % 32);
        assert_eq!(inv.words(), &want);
    }

    #[test]
    fn itoh_tsujii_matches_eea() {
        assert_eq!(invert_itoh_tsujii(Fe::ZERO), None);
        assert_eq!(invert_itoh_tsujii(Fe::ONE), Some(Fe::ONE));
        for seed in 0..20u64 {
            let a = fe(seed + 2000);
            assert_eq!(invert_itoh_tsujii(a), invert(a), "seed {seed}");
        }
    }

    #[test]
    fn itoh_tsujii_is_an_inverse() {
        let a = fe(4321);
        let inv = invert_itoh_tsujii(a).expect("non-zero");
        assert_eq!(a * inv, Fe::ONE);
    }

    #[test]
    fn small_elements() {
        for v in 1u32..64 {
            let a = Fe::from_words_reduced([v, 0, 0, 0, 0, 0, 0, 0]);
            let inv = invert(a).expect("non-zero");
            assert_eq!(a * inv, Fe::ONE, "v = {v}");
        }
    }
}
