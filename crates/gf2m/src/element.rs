//! The field element type [`Fe`].

// In characteristic 2 addition IS xor and subtraction IS addition, and
// Fe::mul is deliberately the inherent face of ops::Mul — silence the
// operator-surprise lints that assume integer semantics.
#![allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)]
#![allow(clippy::should_implement_trait)]

use crate::{inv, mul, reduce, sqr, N, TOP_MASK};
use std::fmt;
use std::ops::{Add, AddAssign, Mul};

/// An element of F₂²³³: a binary polynomial of degree ≤ 232 stored as
/// eight little-endian 32-bit words.
///
/// Addition in a binary field is XOR (and is its own inverse), so `+`
/// doubles as subtraction. Multiplication uses the paper's
/// *López-Dahab with fixed registers* algorithm (portable tier); the
/// other multipliers live in [`crate::mul`] and all agree.
///
/// ```
/// use gf2m::Fe;
/// let a = Fe::from_words_reduced([1, 2, 3, 4, 5, 6, 7, 8]);
/// assert_eq!(a + a, Fe::ZERO); // characteristic 2
/// assert_eq!(a * Fe::ONE, a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fe(pub(crate) [u32; N]);

/// Error parsing a hexadecimal field element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseFeError {
    /// A character outside `[0-9a-fA-F]` was found.
    InvalidDigit(char),
    /// The value needs more than 233 bits.
    TooLarge,
    /// The string was empty.
    Empty,
}

impl fmt::Display for ParseFeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseFeError::InvalidDigit(c) => write!(f, "invalid hex digit {c:?}"),
            ParseFeError::TooLarge => f.write_str("value exceeds 233 bits"),
            ParseFeError::Empty => f.write_str("empty string"),
        }
    }
}

impl std::error::Error for ParseFeError {}

impl Fe {
    /// The additive identity.
    pub const ZERO: Fe = Fe([0; N]);
    /// The multiplicative identity.
    pub const ONE: Fe = Fe([1, 0, 0, 0, 0, 0, 0, 0]);

    /// Constructs an element from its words, masking away bits ≥ 233.
    ///
    /// ```
    /// use gf2m::Fe;
    /// let e = Fe::from_words_reduced([0, 0, 0, 0, 0, 0, 0, u32::MAX]);
    /// assert_eq!(e.words()[7], 0x1FF);
    /// ```
    pub fn from_words_reduced(mut words: [u32; N]) -> Fe {
        words[N - 1] &= TOP_MASK;
        Fe(words)
    }

    /// Constructs an element from exactly-canonical words.
    ///
    /// # Errors
    ///
    /// Returns `Err(ParseFeError::TooLarge)` if any bit ≥ 233 is set.
    pub fn try_from_words(words: [u32; N]) -> Result<Fe, ParseFeError> {
        if words[N - 1] & !TOP_MASK != 0 {
            return Err(ParseFeError::TooLarge);
        }
        Ok(Fe(words))
    }

    /// The element's words, little-endian.
    pub fn words(&self) -> &[u32; N] {
        &self.0
    }

    /// Consumes the element and returns its words.
    pub fn into_words(self) -> [u32; N] {
        self.0
    }

    /// Parses a big-endian hexadecimal string (with or without `0x`).
    ///
    /// # Errors
    ///
    /// Returns an error for empty strings, non-hex digits, or values of
    /// 234 bits or more.
    pub fn from_hex(s: &str) -> Result<Fe, ParseFeError> {
        let s = s
            .strip_prefix("0x")
            .or_else(|| s.strip_prefix("0X"))
            .unwrap_or(s);
        if s.is_empty() {
            return Err(ParseFeError::Empty);
        }
        let mut words = [0u32; N];
        let mut nibbles = 0usize;
        for c in s.chars() {
            let d = c.to_digit(16).ok_or(ParseFeError::InvalidDigit(c))?;
            // Shift the whole value left 4 bits and insert.
            let mut carry = d;
            for w in words.iter_mut() {
                let new_carry = *w >> 28;
                *w = (*w << 4) | carry;
                carry = new_carry;
            }
            if carry != 0 {
                return Err(ParseFeError::TooLarge);
            }
            nibbles += 1;
            if nibbles > 64 {
                return Err(ParseFeError::TooLarge);
            }
        }
        Fe::try_from_words(words)
    }

    /// Serialises to 30 big-endian bytes (⌈233/8⌉ = 30).
    pub fn to_be_bytes(self) -> [u8; 30] {
        let mut out = [0u8; 30];
        // Bits 0..240 of the value; bytes big-endian.
        for (i, b) in out.iter_mut().enumerate() {
            let bit = (29 - i) * 8;
            let word = bit / 32;
            let off = bit % 32;
            let mut v = self.0[word] >> off;
            if off > 24 && word + 1 < N {
                v |= self.0[word + 1] << (32 - off);
            }
            *b = v as u8;
        }
        out
    }

    /// Deserialises from 30 big-endian bytes, masking bits ≥ 233.
    pub fn from_be_bytes(bytes: &[u8; 30]) -> Fe {
        let mut words = [0u32; N];
        for (i, &b) in bytes.iter().rev().enumerate() {
            let bit = i * 8;
            words[bit / 32] |= (b as u32) << (bit % 32);
        }
        Fe::from_words_reduced(words)
    }

    /// Whether the element is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; N]
    }

    /// Bit `i` of the polynomial (coefficient of zⁱ).
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ 256`.
    pub fn bit(&self, i: usize) -> bool {
        (self.0[i / 32] >> (i % 32)) & 1 == 1
    }

    /// Degree of the polynomial, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        for i in (0..N).rev() {
            if self.0[i] != 0 {
                return Some(i * 32 + 31 - self.0[i].leading_zeros() as usize);
            }
        }
        None
    }

    /// Field multiplication (portable *LD with fixed registers*).
    pub fn mul(self, other: Fe) -> Fe {
        mul::mul_ld_fixed(self, other)
    }

    /// Field squaring via the 256-entry spread table with interleaved
    /// reduction (§3.2.4 of the paper).
    pub fn square(self) -> Fe {
        sqr::square(self)
    }

    /// Repeated squaring: `self^(2^k)`.
    pub fn square_n(self, k: usize) -> Fe {
        let mut x = self;
        for _ in 0..k {
            x = x.square();
        }
        x
    }

    /// Multiplicative inverse via the Extended Euclidean Algorithm for
    /// polynomials (§3.2.3), or `None` for zero.
    pub fn invert(self) -> Option<Fe> {
        inv::invert(self)
    }

    /// The trace Tr(x) = Σ x^(2^i) ∈ {0, 1}. For sect233k1 this is used
    /// when solving quadratics (point decompression / random-point
    /// sampling).
    pub fn trace(self) -> u32 {
        let mut t = self;
        let mut acc = self;
        for _ in 1..crate::M {
            t = t.square();
            acc += t;
        }
        // acc is 0 or 1.
        debug_assert!(acc == Fe::ZERO || acc == Fe::ONE);
        acc.0[0] & 1
    }

    /// The square root √x = x^(2^(m−1)) — squaring is a bijection in
    /// F₂^m, so every element has exactly one root. Used by point
    /// halving and point decompression variants.
    ///
    /// ```
    /// use gf2m::Fe;
    /// let a = Fe::from_hex("abcdef12345")?;
    /// assert_eq!(a.sqrt().square(), a);
    /// # Ok::<(), gf2m::ParseFeError>(())
    /// ```
    pub fn sqrt(self) -> Fe {
        self.square_n(crate::M - 1)
    }

    /// The half-trace H(x) = Σ x^(2^(2i)) for odd m; H(x) solves
    /// λ² + λ = x whenever Tr(x) = 0.
    pub fn half_trace(self) -> Fe {
        let mut t = self;
        let mut acc = self;
        for _ in 0..(crate::M - 1) / 2 {
            t = t.square().square();
            acc += t;
        }
        acc
    }

    /// Reduces a 16-word polynomial product into the field.
    pub fn from_product(product: [u32; 2 * N]) -> Fe {
        reduce::reduce(product)
    }
}

impl Add for Fe {
    type Output = Fe;

    /// Polynomial addition = XOR. Also serves as subtraction.
    fn add(self, rhs: Fe) -> Fe {
        let mut out = [0u32; N];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            *o = a ^ b;
        }
        Fe(out)
    }
}

impl AddAssign for Fe {
    fn add_assign(&mut self, rhs: Fe) {
        for i in 0..N {
            self.0[i] ^= rhs.0[i];
        }
    }
}

impl Mul for Fe {
    type Output = Fe;

    fn mul(self, rhs: Fe) -> Fe {
        Fe::mul(self, rhs)
    }
}

impl fmt::LowerHex for Fe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut started = false;
        for i in (0..N).rev() {
            if started {
                write!(f, "{:08x}", self.0[i])?;
            } else if self.0[i] != 0 || i == 0 {
                write!(f, "{:x}", self.0[i])?;
                started = true;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Fe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{self:x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(Fe::ZERO.is_zero());
        assert!(!Fe::ONE.is_zero());
        assert_eq!(Fe::ONE.degree(), Some(0));
        assert_eq!(Fe::ZERO.degree(), None);
    }

    #[test]
    fn addition_is_xor_and_self_inverse() {
        let a = Fe::from_words_reduced([0xAAAA_AAAA; N]);
        let b = Fe::from_words_reduced([0x5555_5555; N]);
        let c = a + b;
        assert_eq!(c.words()[0], 0xFFFF_FFFF);
        assert_eq!(c + b, a);
        assert_eq!(a + a, Fe::ZERO);
    }

    #[test]
    fn from_words_reduced_masks_top() {
        let e = Fe::from_words_reduced([0, 0, 0, 0, 0, 0, 0, 0xFFFF_FFFF]);
        assert_eq!(e.words()[7], TOP_MASK);
        assert_eq!(e.degree(), Some(232));
    }

    #[test]
    fn try_from_words_validates() {
        assert!(Fe::try_from_words([0, 0, 0, 0, 0, 0, 0, 0x200]).is_err());
        assert!(Fe::try_from_words([0, 0, 0, 0, 0, 0, 0, 0x1FF]).is_ok());
    }

    #[test]
    fn hex_roundtrip() {
        let s = "17232ba853a7e731af129f22ff4149563a419c26bf50a4c9d6eefad6126";
        let e = Fe::from_hex(s).unwrap();
        assert_eq!(format!("{e:x}"), s);
        assert_eq!(Fe::from_hex(&format!("0x{s}")).unwrap(), e);
    }

    #[test]
    fn hex_errors() {
        assert_eq!(Fe::from_hex(""), Err(ParseFeError::Empty));
        assert_eq!(Fe::from_hex("xyz"), Err(ParseFeError::InvalidDigit('x')));
        // 2^233 needs 234 bits.
        let too_big = format!("2{}", "0".repeat(58));
        assert_eq!(Fe::from_hex(&too_big), Err(ParseFeError::TooLarge));
        // 65 nibbles.
        assert_eq!(Fe::from_hex(&"1".repeat(65)), Err(ParseFeError::TooLarge));
    }

    #[test]
    fn byte_roundtrip() {
        let e =
            Fe::from_hex("1db537dece819b7f70f555a67c427a8cd9bf18aeb9b56e0c11056fae6a3").unwrap();
        let bytes = e.to_be_bytes();
        assert_eq!(Fe::from_be_bytes(&bytes), e);
        // One is the last byte.
        let one = Fe::ONE.to_be_bytes();
        assert_eq!(one[29], 1);
        assert!(one[..29].iter().all(|&b| b == 0));
    }

    #[test]
    fn bit_and_degree() {
        let e = Fe::from_hex("100000000").unwrap(); // z^32
        assert!(e.bit(32));
        assert!(!e.bit(31));
        assert_eq!(e.degree(), Some(32));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Fe::ONE), "0x1");
        assert_eq!(format!("{:x}", Fe::ZERO), "0");
        let e = Fe::from_hex("a0000000b").unwrap();
        assert_eq!(format!("{e:x}"), "a0000000b");
    }

    #[test]
    fn trace_of_one_is_one_for_odd_m() {
        // Tr(1) = m mod 2 = 1 for m = 233.
        assert_eq!(Fe::ONE.trace(), 1);
        assert_eq!(Fe::ZERO.trace(), 0);
    }

    #[test]
    fn trace_is_additive() {
        let a = Fe::from_hex("deadbeefcafe1234").unwrap();
        let b = Fe::from_hex("123456789abcdef0f00d").unwrap();
        assert_eq!((a + b).trace(), a.trace() ^ b.trace());
    }

    #[test]
    fn sqrt_inverts_squaring() {
        let a = Fe::from_hex("deadbeef0123456789abcdef").unwrap();
        assert_eq!(a.square().sqrt(), a);
        assert_eq!(a.sqrt().square(), a);
        assert_eq!(Fe::ZERO.sqrt(), Fe::ZERO);
        assert_eq!(Fe::ONE.sqrt(), Fe::ONE);
    }

    #[test]
    fn sqrt_is_additive() {
        // √ is the inverse Frobenius, hence additive in char 2.
        let a = Fe::from_hex("123456789").unwrap();
        let b = Fe::from_hex("fedcba987").unwrap();
        assert_eq!((a + b).sqrt(), a.sqrt() + b.sqrt());
    }

    #[test]
    fn half_trace_solves_quadratic() {
        // For any x with Tr(x) = 0, H(x)² + H(x) = x.
        let mut x = Fe::from_hex("abcdef0123456789").unwrap();
        if x.trace() == 1 {
            x += Fe::ONE; // Tr(x+1) = Tr(x) + 1 = 0
        }
        let h = x.half_trace();
        assert_eq!(h.square() + h, x);
    }
}
