//! 64-lane bitsliced F₂²³³ batch backend.
//!
//! One [`BitslicedBatch`] holds 64 field elements *transposed*: lane-word
//! `i` is a `u64` whose bit `j` is the coefficient of zⁱ in element `j`.
//! In this orientation every field operation becomes pure XOR/AND data
//! flow over `u64` words — no carries, no branches, no table lookups —
//! and each machine word processes all 64 elements at once:
//!
//! * [`BitslicedBatch::mul`] — iteratively-applied Karatsuba (the
//!   Dyka & Langendoerfer decomposition, arXiv:0710.4810) down to a
//!   schoolbook base case, ~3× fewer lane-ops than the 233² schoolbook;
//! * [`BitslicedBatch::sqr`] — squaring in characteristic 2 is the
//!   coefficient spread c₂ᵢ = aᵢ, which in lane space is just a word
//!   permutation followed by one reduction;
//! * [`BitslicedBatch::reduce`] — the sect233k1 trinomial
//!   f(z) = z²³³ + z⁷⁴ + 1 folded in lane space (two XORs per excess
//!   word, high-to-low);
//! * [`BitslicedBatch::batch_inv`] — 64 lane-parallel inversions via the
//!   Itoh–Tsujii addition chain on m − 1 = 232 (10 multiplications,
//!   232 squarings — the multiplication-bound inversion that loses on
//!   a scalar machine but wins once every multiplication carries 64
//!   lanes); zero lanes come out zero for free because 0^(2²³³−2) = 0.
//!
//! [`transpose_in`]/[`transpose_out`](BitslicedBatch::transpose_out)
//! convert to and from the canonical [`Fe`] representation with the
//! word-level 64×64 bit-matrix transpose, so the backend is a drop-in
//! batch engine behind [`crate::batch::batch_invert`]: batches of at
//! least [`CROSSOVER`] elements take the bitsliced fast path (a
//! zero-aware Montgomery chain *across* chunks — [`invert_elements`] —
//! that amortises one inversion of the final prefix over every chunk),
//! and produce bit-identical values to the scalar path, since inverses
//! are unique.

use crate::{Fe, K, M, N};
use std::sync::atomic::{AtomicBool, Ordering};

/// Elements carried per batch: one per bit of the `u64` lane-words.
pub const LANES: usize = 64;

/// Length of an unreduced lane-space product: 2·233 − 1 coefficients.
pub const PROD: usize = 2 * M - 1;

/// Batch size at and above which [`crate::batch::batch_invert`] routes
/// through the bitsliced backend. Below it the scalar Montgomery chain
/// wins: both chains pay ~3 multiplications per element, so the
/// bitsliced side only pulls ahead once its cheaper lane-space
/// multiplications (~1.8× the portable per-lane throughput, see
/// EXPERIMENTS.md) have amortised the fixed cost of its final-prefix
/// inversion and the transposes. The A/B sweep in `bench --bin
/// throughput` measures 0.90× at one chunk and 1.13× / 1.43× / 1.58×
/// at 2 / 4 / 16 chunks on the reference host — two full chunks is the
/// first size that wins, and the margin only grows from there.
pub const CROSSOVER: usize = 128;

static BITSLICED_ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables/disables the bitsliced fast path behind
/// [`crate::batch::batch_invert`] (A/B switch for measuring the speedup
/// and for proving the scalar and bitsliced paths agree; the results
/// are bit-identical either way).
pub fn set_bitsliced_enabled(on: bool) {
    BITSLICED_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the bitsliced fast path is enabled (default: yes).
pub fn bitsliced_enabled() -> bool {
    BITSLICED_ENABLED.load(Ordering::Relaxed)
}

/// 64 field elements in bitsliced (transposed) representation.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct BitslicedBatch {
    /// `lanes[i]` bit `j` = coefficient of zⁱ in element `j`.
    lanes: [u64; M],
}

impl std::fmt::Debug for BitslicedBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BitslicedBatch")
            .field(
                "nonzero_lanes",
                &format_args!("{:#018x}", self.nonzero_lanes()),
            )
            .finish()
    }
}

impl Default for BitslicedBatch {
    fn default() -> Self {
        BitslicedBatch::ZERO
    }
}

/// In-place 64×64 bit-matrix transpose (Hacker's Delight 7-3, LSB-first
/// orientation): afterwards bit `j` of word `i` is bit `i` of the old
/// word `j`.
fn transpose_64x64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        if j != 0 {
            m ^= m << j;
        }
    }
}

/// Below this operand length the lane-space Karatsuba recursion bottoms
/// out into the schoolbook product: the O(n) split/combine overhead of
/// another level stops paying for the saved quarter-product around
/// here (half-length sums plus three recombination passes vs n²/4
/// AND+XOR pairs).
const KARA_THRESHOLD: usize = 40;

/// Lane-space scratch for one full 233-coefficient Karatsuba tree:
/// each level needs 2·⌈n/2⌉ sum words + (2·⌈n/2⌉ − 1) mid words;
/// 233 → 117 → 59 → 30 → 15 → 8 sums to < 1024.
const KARA_SCRATCH: usize = 1024;

/// Schoolbook lane-space product: `out[i + j] = Σ a[i] & b[j]`
/// (overwrites `out[..a.len() + b.len() - 1]`).
///
/// Four `a`-words are folded per pass over `b`, so every load/store of
/// the accumulator row carries eight logical ops instead of two — the
/// kernel is memory-traffic-bound, not ALU-bound, and this quarters
/// the traffic per AND+XOR pair.
fn mul_school(a: &[u64], b: &[u64], out: &mut [u64]) {
    let out = &mut out[..a.len() + b.len() - 1];
    out.fill(0);
    let blen = b.len();
    let mut i = 0;
    if blen >= 3 {
        while i + 3 < a.len() {
            let (a0, a1, a2, a3) = (a[i], a[i + 1], a[i + 2], a[i + 3]);
            let o = &mut out[i..i + blen + 3];
            o[0] ^= a0 & b[0];
            o[1] ^= (a0 & b[1]) ^ (a1 & b[0]);
            o[2] ^= (a0 & b[2]) ^ (a1 & b[1]) ^ (a2 & b[0]);
            for j in 3..blen {
                o[j] ^= (a0 & b[j]) ^ (a1 & b[j - 1]) ^ (a2 & b[j - 2]) ^ (a3 & b[j - 3]);
            }
            o[blen] ^= (a1 & b[blen - 1]) ^ (a2 & b[blen - 2]) ^ (a3 & b[blen - 3]);
            o[blen + 1] ^= (a2 & b[blen - 1]) ^ (a3 & b[blen - 2]);
            o[blen + 2] ^= a3 & b[blen - 1];
            i += 4;
        }
    }
    // 0–3 leftover a-words (or tiny b): one word per pass.
    while i < a.len() {
        let ai = a[i];
        for (o, &bj) in out[i..].iter_mut().zip(b) {
            *o ^= ai & bj;
        }
        i += 1;
    }
}

/// Recursive Karatsuba over lane-words: splits equal-length operands at
/// the midpoint, reuses `out` for the low/high sub-products and XORs
/// the middle term in afterwards (reads of the sub-products happen
/// before the destination range is written, so the combine is in
/// place). `out[..2n − 1]` is overwritten.
fn mul_karatsuba(a: &[u64], b: &[u64], out: &mut [u64], scratch: &mut [u64]) {
    let n = a.len();
    debug_assert_eq!(n, b.len());
    if n <= KARA_THRESHOLD {
        mul_school(a, b, out);
        return;
    }
    let h = n / 2; // low-half length
    let hi = n - h; // high-half length (≥ h)
    let (a0, a1) = a.split_at(h);
    let (b0, b1) = b.split_at(h);

    // low = a0·b0 into out[0 .. 2h−1], high = a1·b1 into out[2h .. 2n−1];
    // the seam word out[2h−1] belongs to neither sub-product.
    let (sums, rest) = scratch.split_at_mut(2 * hi);
    let (asum, bsum) = sums.split_at_mut(hi);
    let (mid, rest) = rest.split_at_mut(2 * hi - 1);
    mul_karatsuba(a0, b0, &mut out[..2 * h - 1], rest);
    out[2 * h - 1] = 0;
    mul_karatsuba(a1, b1, &mut out[2 * h..], rest);

    // mid = (a0 + a1)·(b0 + b1), padded to the high-half length
    // (hi − h ≤ 1, so the copy covers the possible odd tail word).
    asum.copy_from_slice(a1);
    bsum.copy_from_slice(b1);
    for (s, &x0) in asum.iter_mut().zip(a0) {
        *s ^= x0;
    }
    for (s, &x0) in bsum.iter_mut().zip(b0) {
        *s ^= x0;
    }
    mul_karatsuba(asum, bsum, mid, rest);

    // out[h ..] += mid + low + high (reads before the writes land).
    for (mw, &lo) in mid.iter_mut().zip(&out[..2 * h - 1]) {
        *mw ^= lo;
    }
    for (mw, &hiw) in mid.iter_mut().zip(&out[2 * h..]) {
        *mw ^= hiw;
    }
    for (o, &mw) in out[h..].iter_mut().zip(mid.iter()) {
        *o ^= mw;
    }
}

/// Transposes up to [`LANES`] field elements into a batch. Lanes past
/// `elems.len()` are zero.
///
/// # Panics
///
/// Panics if `elems.len() > 64`.
pub fn transpose_in(elems: &[Fe]) -> BitslicedBatch {
    assert!(elems.len() <= LANES, "a batch holds at most 64 elements");
    let mut lanes = [0u64; M];
    // Four 64×64 blocks: block b covers coefficient rows 64b .. 64b+63.
    let mut block = [0u64; 64];
    for b in 0..4 {
        for (j, e) in elems.iter().enumerate() {
            let w = e.words();
            block[j] = u64::from(w[2 * b]) | (u64::from(w[2 * b + 1]) << 32);
        }
        for row in block.iter_mut().skip(elems.len()) {
            *row = 0;
        }
        transpose_64x64(&mut block);
        let rows = (M - 64 * b).min(64);
        lanes[64 * b..64 * b + rows].copy_from_slice(&block[..rows]);
    }
    BitslicedBatch { lanes }
}

impl BitslicedBatch {
    /// The all-zero batch (64 copies of [`Fe::ZERO`]).
    pub const ZERO: BitslicedBatch = BitslicedBatch { lanes: [0; M] };

    /// The raw lane-words (`lanes[i]` bit `j` = coefficient zⁱ of
    /// element `j`).
    pub fn lane_words(&self) -> &[u64; M] {
        &self.lanes
    }

    /// Overwrites lane `j` with `value` (used by the lane-independence
    /// property tests to corrupt a single lane in place).
    ///
    /// # Panics
    ///
    /// Panics if `lane ≥ 64`.
    pub fn set_lane(&mut self, lane: usize, value: Fe) {
        assert!(lane < LANES);
        let bit = 1u64 << lane;
        for (i, w) in self.lanes.iter_mut().enumerate() {
            let coeff = u64::from(value.bit(i)) << lane;
            *w = (*w & !bit) | coeff;
        }
    }

    /// Reads lane `j` back as a field element.
    ///
    /// # Panics
    ///
    /// Panics if `lane ≥ 64`.
    pub fn lane(&self, lane: usize) -> Fe {
        assert!(lane < LANES);
        let mut words = [0u32; N];
        for (i, &w) in self.lanes.iter().enumerate() {
            words[i / 32] |= (((w >> lane) & 1) as u32) << (i % 32);
        }
        Fe::from_words_reduced(words)
    }

    /// Transposes the batch back to field elements. `len` selects how
    /// many lanes to materialise (the partner of a short
    /// [`transpose_in`] slice).
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    pub fn transpose_out(&self, len: usize) -> Vec<Fe> {
        assert!(len <= LANES, "a batch holds at most 64 elements");
        let mut out = vec![[0u32; N]; len];
        let mut block = [0u64; 64];
        for b in 0..4 {
            let rows = (M - 64 * b).min(64);
            block[..rows].copy_from_slice(&self.lanes[64 * b..64 * b + rows]);
            block[rows..].fill(0);
            transpose_64x64(&mut block);
            for (j, words) in out.iter_mut().enumerate() {
                words[2 * b] = block[j] as u32;
                words[2 * b + 1] = (block[j] >> 32) as u32;
            }
        }
        out.into_iter().map(Fe::from_words_reduced).collect()
    }

    /// Bit-mask of the lanes that carry a non-zero element (bit `j` set
    /// ⇔ lane `j` ≠ 0).
    pub fn nonzero_lanes(&self) -> u64 {
        self.lanes.iter().fold(0, |acc, &w| acc | w)
    }

    /// Lane-parallel field addition — in characteristic 2 just the XOR
    /// of every lane-word.
    pub fn add(&self, other: &BitslicedBatch) -> BitslicedBatch {
        let mut lanes = self.lanes;
        for (o, &b) in lanes.iter_mut().zip(&other.lanes) {
            *o ^= b;
        }
        BitslicedBatch { lanes }
    }

    /// Lane-parallel field multiplication: lane `j` of the result is
    /// `self[j] · other[j]` for all 64 lanes at once. Karatsuba down to
    /// [`KARA_THRESHOLD`], then one trinomial reduction.
    pub fn mul(&self, other: &BitslicedBatch) -> BitslicedBatch {
        self.mul_with(other, &mut MulScratch::new())
    }

    /// [`BitslicedBatch::mul`] with a caller-provided workspace —
    /// reusing one [`MulScratch`] across a chain of multiplications
    /// (as [`batch_inv`](BitslicedBatch::batch_inv) and
    /// [`batch_inv_chunks`] do) skips the ~12 KB of zero-initialisation
    /// a fresh workspace costs.
    pub fn mul_with(&self, other: &BitslicedBatch, ws: &mut MulScratch) -> BitslicedBatch {
        mul_karatsuba(&self.lanes, &other.lanes, &mut ws.prod, &mut ws.tree);
        BitslicedBatch::reduce(&ws.prod)
    }

    /// Lane-parallel squaring: the characteristic-2 coefficient spread
    /// (c₂ᵢ = aᵢ — a pure word permutation in lane space) followed by
    /// one reduction.
    pub fn sqr(&self) -> BitslicedBatch {
        let mut prod = [0u64; PROD];
        for (i, &w) in self.lanes.iter().enumerate() {
            prod[2 * i] = w;
        }
        BitslicedBatch::reduce(&prod)
    }

    /// `self^(2^k)` — `k` chained squarings.
    pub fn sqr_n(&self, k: usize) -> BitslicedBatch {
        let mut x = *self;
        for _ in 0..k {
            x = x.sqr();
        }
        x
    }

    /// Reduces an unreduced lane-space product modulo the sect233k1
    /// trinomial f(z) = z²³³ + z⁷⁴ + 1: every coefficient word k ≥ 233
    /// folds into k − 233 and k − 233 + 74. Folding high-to-low lets
    /// targets that are themselves ≥ 233 be folded in turn when the
    /// sweep reaches them.
    pub fn reduce(prod: &[u64; PROD]) -> BitslicedBatch {
        let mut p = *prod;
        for k in (M..PROD).rev() {
            let w = p[k];
            p[k - M] ^= w;
            p[k - M + K] ^= w;
        }
        let mut lanes = [0u64; M];
        lanes.copy_from_slice(&p[..M]);
        BitslicedBatch { lanes }
    }

    /// 64 lane-parallel inversions via Itoh–Tsujii: a⁻¹ = a^(2²³³ − 2)
    /// with the addition chain 1, 2, 3, 6, 7, 14, 28, 29, 58, 116, 232
    /// (10 multiplications + 232 squarings, shared by all lanes). Zero
    /// lanes come out zero — 0 to any power is 0 — which is exactly the
    /// zero-aware contract of [`crate::batch::batch_invert`].
    pub fn batch_inv(&self) -> BitslicedBatch {
        self.batch_inv_with(&mut MulScratch::new())
    }

    /// [`BitslicedBatch::batch_inv`] with a caller-provided workspace.
    pub fn batch_inv_with(&self, ws: &mut MulScratch) -> BitslicedBatch {
        // e(k) = a^(2^k − 1).
        let e1 = *self;
        let e2 = e1.sqr().mul_with(&e1, ws);
        let e3 = e2.sqr().mul_with(&e1, ws);
        let e6 = e3.sqr_n(3).mul_with(&e3, ws);
        let e7 = e6.sqr().mul_with(&e1, ws);
        let e14 = e7.sqr_n(7).mul_with(&e7, ws);
        let e28 = e14.sqr_n(14).mul_with(&e14, ws);
        let e29 = e28.sqr().mul_with(&e1, ws);
        let e58 = e29.sqr_n(29).mul_with(&e29, ws);
        let e116 = e58.sqr_n(58).mul_with(&e58, ws);
        let e232 = e116.sqr_n(116).mul_with(&e116, ws);
        // a⁻¹ = (a^(2^232 − 1))².
        e232.sqr()
    }
}

/// Reusable lane-space multiplication workspace: the unreduced
/// 465-word product plus the Karatsuba sum/middle tree. One instance
/// serves any number of sequential [`BitslicedBatch::mul_with`] calls.
pub struct MulScratch {
    prod: [u64; PROD],
    tree: [u64; KARA_SCRATCH],
}

impl MulScratch {
    pub fn new() -> MulScratch {
        MulScratch {
            prod: [0; PROD],
            tree: [0; KARA_SCRATCH],
        }
    }
}

impl Default for MulScratch {
    fn default() -> Self {
        MulScratch::new()
    }
}

/// The chunk-level Montgomery chain shared by [`batch_inv_chunks`] and
/// [`invert_elements`]: substitute 1 into zero lanes (remembering the
/// masks), build lane-wise prefix products, invert the final prefix
/// with `final_inv`, peel one chunk of inverses per backward step, and
/// mask the substituted lanes back to zero. Only the final-inversion
/// strategy differs between callers.
fn montgomery_chunks(
    chunks: &mut [BitslicedBatch],
    final_inv: impl FnOnce(&BitslicedBatch, &mut MulScratch) -> BitslicedBatch,
) {
    if chunks.is_empty() {
        return;
    }
    // Substitute 1 into zero lanes so they don't zero the chain; the
    // masks remember which lanes to clear afterwards.
    let masks: Vec<u64> = chunks
        .iter_mut()
        .map(|c| {
            let nonzero = c.nonzero_lanes();
            c.lanes[0] |= !nonzero; // a zero lane is all-zero: OR makes it exactly 1
            nonzero
        })
        .collect();

    let mut ws = MulScratch::new();

    // Forward sweep: prefix[i] = chunks[0] · … · chunks[i], lane-wise.
    let mut prefix = Vec::with_capacity(chunks.len());
    prefix.push(chunks[0]);
    for c in &chunks[1..] {
        let last = *prefix.last().expect("seeded with chunk 0");
        prefix.push(last.mul_with(c, &mut ws));
    }

    // One inversion for all lanes of all chunks.
    let mut inv = final_inv(prefix.last().expect("non-empty"), &mut ws);

    // Backward sweep: peel one chunk of inverses per step.
    for i in (1..chunks.len()).rev() {
        let a = chunks[i];
        chunks[i] = inv.mul_with(&prefix[i - 1], &mut ws);
        inv = inv.mul_with(&a, &mut ws);
    }
    chunks[0] = inv;

    // Mask substituted lanes back to zero.
    for (c, &nonzero) in chunks.iter_mut().zip(&masks) {
        for w in c.lanes.iter_mut() {
            *w &= nonzero;
        }
    }
}

/// Zero-aware Montgomery inversion chain *across* chunks: inverts every
/// lane of every batch with **one** Itoh–Tsujii inversion total. Zero
/// lanes stay zero and do not disturb any other lane.
///
/// This is Montgomery's trick run 64 lanes wide: lane `j` of the prefix
/// products is the running product of lane `j` across the chunks, the
/// single inversion is the lane-parallel [`BitslicedBatch::batch_inv`],
/// and the backward sweep peels one inverse per chunk — so `k` chunks
/// (64k elements) cost 3(k − 1) + 10 bitsliced multiplications + 233
/// squarings, against 3·(64k − 1) scalar multiplications + one EEA
/// inversion for the scalar chain. This variant never leaves lane
/// space (pure XOR/AND all the way down); the production seam
/// [`invert_elements`] swaps the final inversion for a scalar-assisted
/// one that is faster on hosts where it may round-trip through [`Fe`].
pub fn batch_inv_chunks(chunks: &mut [BitslicedBatch]) {
    montgomery_chunks(chunks, |p, ws| p.batch_inv_with(ws));
}

/// Inverts every non-zero element of `elems` in place through the
/// bitsliced backend (zeros stay zero): transpose into 64-lane chunks,
/// run the zero-aware Montgomery chain across them, transpose back.
/// Produces values bit-identical to [`crate::batch::batch_invert`]'s
/// scalar chain — inverses are unique — for any length, including a
/// ragged final chunk (its idle lanes are zero and invert to zero).
///
/// The final prefix chunk holds 64 *distinct* running products, and
/// inverting those 64 values with the scalar Montgomery chain
/// (3 multiplications per lane + one EEA inversion, after a transpose
/// out and back) is measurably cheaper than the lane-parallel
/// Itoh–Tsujii chain (10 lane-multiplications + 232 lane-squarings) on
/// SSE2-class hosts — it is the fixed cost that sets the crossover, so
/// the hybrid pulls [`CROSSOVER`] down a full binary order of
/// magnitude (sweep in EXPERIMENTS.md).
pub fn invert_elements(elems: &mut [Fe]) {
    if elems.is_empty() {
        return;
    }
    let mut chunks: Vec<BitslicedBatch> = elems.chunks(LANES).map(transpose_in).collect();
    montgomery_chunks(&mut chunks, |p, _| {
        // All lanes are non-zero here (zero lanes were substituted with
        // 1), so the scalar chain spends exactly one EEA inversion.
        let mut lanes = p.transpose_out(LANES);
        crate::batch::scalar_invert(&mut lanes);
        transpose_in(&lanes)
    });
    for (chunk, batch) in elems.chunks_mut(LANES).zip(&chunks) {
        let inverted = batch.transpose_out(chunk.len());
        chunk.copy_from_slice(&inverted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(seed: u64) -> Fe {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut w = [0u32; N];
        for x in w.iter_mut() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *x = (s >> 19) as u32;
        }
        Fe::from_words_reduced(w)
    }

    fn batch(seed: u64) -> (Vec<Fe>, BitslicedBatch) {
        let elems: Vec<Fe> = (0..LANES as u64).map(|i| fe(seed + i)).collect();
        let b = transpose_in(&elems);
        (elems, b)
    }

    #[test]
    fn transpose_roundtrip_random() {
        let (elems, b) = batch(100);
        assert_eq!(b.transpose_out(LANES), elems);
    }

    #[test]
    fn transpose_roundtrip_edge_patterns() {
        let top = Fe::from_words_reduced([0, 0, 0, 0, 0, 0, 0, 1 << 8]); // z²³²
        let alternating = Fe::from_words_reduced([
            0xAAAA_AAAA,
            0x5555_5555,
            0xAAAA_AAAA,
            0x5555_5555,
            0xAAAA_AAAA,
            0x5555_5555,
            0xAAAA_AAAA,
            0x5555_5555,
        ]);
        let patterns = [Fe::ZERO, Fe::ONE, top, alternating];
        // Each pattern in every lane position, padded with the others.
        for rot in 0..patterns.len() {
            let elems: Vec<Fe> = (0..LANES)
                .map(|i| patterns[(i + rot) % patterns.len()])
                .collect();
            let b = transpose_in(&elems);
            assert_eq!(b.transpose_out(LANES), elems, "rotation {rot}");
        }
        // Short batches: missing lanes are zero.
        let short = [patterns[2], patterns[3]];
        let b = transpose_in(&short);
        assert_eq!(b.transpose_out(2), short);
        assert_eq!(b.lane(63), Fe::ZERO);
    }

    #[test]
    fn lane_accessors_match_transpose() {
        let (elems, mut b) = batch(300);
        for (j, e) in elems.iter().enumerate() {
            assert_eq!(b.lane(j), *e, "lane {j}");
        }
        let replacement = fe(9999);
        b.set_lane(17, replacement);
        assert_eq!(b.lane(17), replacement);
        for (j, e) in elems.iter().enumerate() {
            if j != 17 {
                assert_eq!(b.lane(j), *e, "lane {j} after corrupting 17");
            }
        }
    }

    #[test]
    fn mul_matches_portable_per_lane() {
        let (xs, bx) = batch(1000);
        let (ys, by) = batch(2000);
        let prod = bx.mul(&by);
        for j in 0..LANES {
            assert_eq!(prod.lane(j), xs[j] * ys[j], "lane {j}");
        }
    }

    #[test]
    fn mul_edge_lanes() {
        let top = Fe::from_words_reduced([u32::MAX; N]);
        let xs = [Fe::ZERO, Fe::ONE, top, fe(1), top, Fe::ONE];
        let ys = [top, top, top, fe(2), Fe::ZERO, Fe::ONE];
        let prod = transpose_in(&xs).mul(&transpose_in(&ys));
        for j in 0..xs.len() {
            assert_eq!(prod.lane(j), xs[j] * ys[j], "lane {j}");
        }
        // Idle lanes (both inputs zero) stay zero.
        assert_eq!(prod.lane(63), Fe::ZERO);
    }

    #[test]
    fn sqr_matches_portable_per_lane() {
        let (xs, bx) = batch(3000);
        let sq = bx.sqr();
        for (j, x) in xs.iter().enumerate() {
            assert_eq!(sq.lane(j), x.square(), "lane {j}");
        }
    }

    #[test]
    fn batch_inv_matches_portable_per_lane() {
        let (mut xs, _) = batch(4000);
        xs[5] = Fe::ZERO;
        xs[6] = Fe::ONE;
        xs[7] = xs[8]; // duplicate lanes invert alike
        let inv = transpose_in(&xs).batch_inv();
        for (j, x) in xs.iter().enumerate() {
            match x.invert() {
                Some(want) => assert_eq!(inv.lane(j), want, "lane {j}"),
                None => assert_eq!(inv.lane(j), Fe::ZERO, "zero lane {j}"),
            }
        }
    }

    #[test]
    fn chunked_inversion_is_zero_aware() {
        let mut elems: Vec<Fe> = (0..200u64).map(|i| fe(i + 7000)).collect();
        elems[0] = Fe::ZERO;
        elems[63] = Fe::ZERO;
        elems[64] = Fe::ZERO;
        elems[199] = Fe::ZERO;
        let want: Vec<Fe> = elems
            .iter()
            .map(|e| e.invert().unwrap_or(Fe::ZERO))
            .collect();
        invert_elements(&mut elems);
        assert_eq!(elems, want);
    }

    #[test]
    fn chunked_inversion_all_zero() {
        let mut elems = vec![Fe::ZERO; 130];
        invert_elements(&mut elems);
        assert!(elems.iter().all(Fe::is_zero));
        let mut empty: Vec<Fe> = vec![];
        invert_elements(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn reduce_agrees_with_portable_reduce() {
        // A lane-space product of two elements must reduce to the same
        // field element the portable word-level reducer produces.
        let a = fe(42);
        let b = fe(43);
        let one_lane = transpose_in(&[a]).mul(&transpose_in(&[b]));
        let wide = crate::mul::mul_poly_ld(a.words(), b.words());
        assert_eq!(one_lane.lane(0), crate::reduce::reduce(wide));
    }

    #[test]
    fn karatsuba_matches_schoolbook_in_lane_space() {
        let (_, bx) = batch(500);
        let (_, by) = batch(600);
        let mut kara = [0u64; PROD];
        let mut scratch = [0u64; KARA_SCRATCH];
        mul_karatsuba(&bx.lanes, &by.lanes, &mut kara, &mut scratch);
        let mut school = [0u64; PROD];
        mul_school(&bx.lanes, &by.lanes, &mut school);
        assert_eq!(kara[..], school[..]);
    }

    #[test]
    fn toggle_roundtrips() {
        let was = bitsliced_enabled();
        set_bitsliced_enabled(false);
        assert!(!bitsliced_enabled());
        set_bitsliced_enabled(true);
        assert!(bitsliced_enabled());
        set_bitsliced_enabled(was);
    }
}
