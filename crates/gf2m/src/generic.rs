//! Generic binary fields F₂^m for arbitrary degree and sparse reduction
//! polynomial.
//!
//! The specialised F₂²³³ code in this crate is the production path; this
//! module is its *independent oracle* (different representation,
//! different algorithms) and covers the other fields of the paper's
//! comparison tables — sect163k1's pentanomial field, F₂²⁸³, etc. —
//! so related-work configurations can be exercised too.

// Indexed loops below mirror the paper's Algorithm 1 pseudocode
// (v[l + k] ^= T[u][l]); iterator rewrites would obscure the mapping.
#![allow(clippy::needless_range_loop)]

use std::fmt;

/// A binary field F₂\[z\]/(f) with f = z^m + z^(taps\[0\]) + … + 1.
///
/// ```
/// use gf2m::generic::GenericField;
/// let f = GenericField::sect233k1();
/// let a = f.element_from_words(&[3, 1]);
/// let inv = f.inv(&a).expect("non-zero");
/// assert_eq!(f.mul(&a, &inv), f.one());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenericField {
    m: usize,
    /// Middle exponents of the reduction polynomial, descending, each
    /// in (0, m); the z^m and 1 terms are implicit.
    taps: Vec<usize>,
}

/// An element: little-endian u64 words, kept reduced (degree < m).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GenPoly(Vec<u64>);

impl GenericField {
    /// Builds F₂^m with reduction middle terms `taps` (descending, all
    /// below m, one for a trinomial, three for a pentanomial).
    ///
    /// # Panics
    ///
    /// Panics on an empty tap list, taps ≥ m, or unsorted taps.
    pub fn new(m: usize, taps: &[usize]) -> GenericField {
        assert!(!taps.is_empty(), "need at least one middle term");
        assert!(
            taps.iter().all(|&t| t > 0 && t < m),
            "taps must be in (0, m)"
        );
        assert!(taps.windows(2).all(|w| w[0] > w[1]), "taps must descend");
        GenericField {
            m,
            taps: taps.to_vec(),
        }
    }

    /// The field of sect163k1: z¹⁶³ + z⁷ + z⁶ + z³ + 1.
    pub fn sect163k1() -> GenericField {
        GenericField::new(163, &[7, 6, 3])
    }

    /// The field of sect233k1: z²³³ + z⁷⁴ + 1 (the paper's field).
    pub fn sect233k1() -> GenericField {
        GenericField::new(233, &[74])
    }

    /// The field of sect283k1: z²⁸³ + z¹² + z⁷ + z⁵ + 1.
    pub fn sect283k1() -> GenericField {
        GenericField::new(283, &[12, 7, 5])
    }

    /// Extension degree m.
    pub fn degree(&self) -> usize {
        self.m
    }

    fn words(&self) -> usize {
        self.m.div_ceil(64)
    }

    /// The zero element.
    pub fn zero(&self) -> GenPoly {
        GenPoly(vec![0; self.words()])
    }

    /// The one element.
    pub fn one(&self) -> GenPoly {
        let mut p = self.zero();
        p.0[0] = 1;
        p
    }

    /// Builds an element from little-endian u64 words (reduced if
    /// needed).
    pub fn element_from_words(&self, words: &[u64]) -> GenPoly {
        let mut v = words.to_vec();
        v.resize(v.len().max(self.words()), 0);
        let mut p = GenPoly(v);
        self.reduce(&mut p);
        p.0.truncate(self.words());
        p
    }

    /// Builds an element from the F₂²³³ type (m = 233 fields only).
    ///
    /// # Panics
    ///
    /// Panics if this field is not 233 bits.
    pub fn element_from_fe(&self, fe: crate::Fe) -> GenPoly {
        assert_eq!(self.m, crate::M, "element_from_fe needs an F_2^233 field");
        let w = fe.words();
        let mut out = vec![0u64; self.words()];
        for (i, &x) in w.iter().enumerate() {
            out[i / 2] |= (x as u64) << (32 * (i % 2));
        }
        GenPoly(out)
    }

    /// Converts back to the specialised F₂²³³ type.
    ///
    /// # Panics
    ///
    /// Panics if this field is not 233 bits.
    pub fn element_to_fe(&self, p: &GenPoly) -> crate::Fe {
        assert_eq!(self.m, crate::M);
        let mut w = [0u32; crate::N];
        for (i, slot) in w.iter_mut().enumerate() {
            *slot = (p.0[i / 2] >> (32 * (i % 2))) as u32;
        }
        crate::Fe::from_words_reduced(w)
    }

    fn bit(p: &[u64], i: usize) -> bool {
        (p[i / 64] >> (i % 64)) & 1 == 1
    }

    fn set_bit(p: &mut [u64], i: usize) {
        p[i / 64] ^= 1 << (i % 64);
    }

    /// Degree of a polynomial (−1 for zero, as `None`).
    pub fn poly_degree(p: &GenPoly) -> Option<usize> {
        for i in (0..p.0.len()).rev() {
            if p.0[i] != 0 {
                return Some(i * 64 + 63 - p.0[i].leading_zeros() as usize);
            }
        }
        None
    }

    /// Addition (XOR).
    pub fn add(&self, a: &GenPoly, b: &GenPoly) -> GenPoly {
        GenPoly(a.0.iter().zip(&b.0).map(|(x, y)| x ^ y).collect())
    }

    /// Reduction of an over-long polynomial, bit at a time from the top
    /// (slow and obviously correct — this module is the oracle).
    fn reduce(&self, p: &mut GenPoly) {
        let max_bit = p.0.len() * 64;
        for i in (self.m..max_bit).rev() {
            if Self::bit(&p.0, i) {
                Self::set_bit(&mut p.0, i);
                let e = i - self.m;
                Self::set_bit(&mut p.0, e);
                for &t in &self.taps {
                    Self::set_bit(&mut p.0, e + t);
                }
            }
        }
    }

    /// Multiplication (shift-and-add over bits, then reduce).
    pub fn mul(&self, a: &GenPoly, b: &GenPoly) -> GenPoly {
        let mut prod = vec![0u64; 2 * self.words() + 1];
        for i in 0..self.m {
            if Self::bit(&a.0, i) {
                let (ws, bs) = (i / 64, i % 64);
                for (j, &w) in b.0.iter().enumerate() {
                    prod[j + ws] ^= w << bs;
                    if bs > 0 {
                        prod[j + ws + 1] ^= w >> (64 - bs);
                    }
                }
            }
        }
        let mut out = GenPoly(prod);
        self.reduce(&mut out);
        out.0.truncate(self.words());
        out
    }

    /// Squaring (via multiplication; the oracle favours simplicity).
    pub fn sqr(&self, a: &GenPoly) -> GenPoly {
        self.mul(a, a)
    }

    /// Inversion by exponentiation: a^(2^m − 2).
    pub fn inv(&self, a: &GenPoly) -> Option<GenPoly> {
        if a.0.iter().all(|&w| w == 0) {
            return None;
        }
        // a^(2^m - 2) = Π a^(2^i) for i = 1..m.
        let mut power = a.clone(); // a^(2^0)
        let mut acc = self.one();
        for _ in 1..self.m {
            power = self.sqr(&power);
            acc = self.mul(&acc, &power);
        }
        Some(acc)
    }

    /// The trace Tr(a) ∈ {0, 1}.
    pub fn trace(&self, a: &GenPoly) -> u64 {
        let mut t = a.clone();
        let mut acc = a.clone();
        for _ in 1..self.m {
            t = self.sqr(&t);
            acc = self.add(&acc, &t);
        }
        debug_assert!(acc == self.zero() || acc == self.one());
        acc.0[0] & 1
    }
}

impl fmt::Display for GenPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut started = false;
        for w in self.0.iter().rev() {
            if started {
                write!(f, "{w:016x}")?;
            } else if *w != 0 {
                write!(f, "{w:x}")?;
                started = true;
            }
        }
        if !started {
            f.write_str("0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fe;

    fn fe(seed: u64) -> Fe {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut w = [0u32; 8];
        for x in w.iter_mut() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *x = (s >> 15) as u32;
        }
        Fe::from_words_reduced(w)
    }

    #[test]
    fn f233_multiplication_matches_specialised_code() {
        let f = GenericField::sect233k1();
        for seed in 0..12u64 {
            let a = fe(seed);
            let b = fe(seed + 70);
            let ga = f.element_from_fe(a);
            let gb = f.element_from_fe(b);
            let prod = f.mul(&ga, &gb);
            assert_eq!(f.element_to_fe(&prod), a * b, "seed {seed}");
        }
    }

    #[test]
    fn f233_inversion_matches_specialised_code() {
        let f = GenericField::sect233k1();
        let a = fe(99);
        let inv = f.inv(&f.element_from_fe(a)).expect("non-zero");
        assert_eq!(f.element_to_fe(&inv), a.invert().expect("non-zero"));
        assert_eq!(f.inv(&f.zero()), None);
    }

    #[test]
    fn f233_trace_matches_specialised_code() {
        let f = GenericField::sect233k1();
        for seed in 0..6u64 {
            let a = fe(seed + 30);
            assert_eq!(f.trace(&f.element_from_fe(a)) as u32, a.trace());
        }
    }

    #[test]
    fn pentanomial_fields_are_fields() {
        for field in [GenericField::sect163k1(), GenericField::sect283k1()] {
            let a = field.element_from_words(&[0xDEADBEEF_CAFEBABE, 0x12345]);
            let b = field.element_from_words(&[0x0F0F0F0F_F0F0F0F0, 0x777]);
            // Commutativity and distributivity.
            assert_eq!(field.mul(&a, &b), field.mul(&b, &a));
            let lhs = field.mul(&a, &field.add(&b, &field.one()));
            let rhs = field.add(&field.mul(&a, &b), &a);
            assert_eq!(lhs, rhs);
            // Inversion.
            let inv = field.inv(&a).expect("non-zero");
            assert_eq!(field.mul(&a, &inv), field.one());
            // Frobenius order: a^(2^m) = a.
            let mut x = a.clone();
            for _ in 0..field.degree() {
                x = field.sqr(&x);
            }
            assert_eq!(x, a);
        }
    }

    #[test]
    fn trace_of_one_is_m_mod_2() {
        // m odd for all three standard fields → Tr(1) = 1.
        for field in [
            GenericField::sect163k1(),
            GenericField::sect233k1(),
            GenericField::sect283k1(),
        ] {
            assert_eq!(field.trace(&field.one()), 1, "m = {}", field.degree());
        }
    }

    #[test]
    #[should_panic(expected = "descend")]
    fn unsorted_taps_rejected() {
        GenericField::new(163, &[3, 6, 7]);
    }
}
