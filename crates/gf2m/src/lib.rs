//! Binary-field arithmetic in F₂²³³ for the DAC'14 ECC reproduction.
//!
//! The field is F₂\[z\]/(f(z)) with the sect233k1 reduction trinomial
//! f(z) = z²³³ + z⁷⁴ + 1. Elements are binary polynomials of degree ≤ 232
//! stored as `n = 8` little-endian 32-bit words — the paper's target is a
//! 32-bit machine and all of its operation-count formulas are in terms of
//! these words.
//!
//! Three tiers implement the same arithmetic:
//!
//! * **portable** ([`Fe`] methods and the [`mul`] module) — fast plain
//!   Rust, used by the curve layer, the protocols and as the reference
//!   the other tiers are checked against;
//! * **counted** ([`counted`]) — the same algorithms with every memory
//!   read/write, XOR and shift tallied, reproducing the accounting of the
//!   paper's Tables 1–2 (see also [`formulas`] for the published closed
//!   forms);
//! * **modeled** ([`modeled`]) — *virtual assembly* kernels executed on
//!   the [`m0plus::Machine`], one call per Thumb instruction, producing
//!   the cycle and energy measurements of Tables 5–7.
//!
//! The multiplication algorithms compared by the paper are all here:
//! plain López-Dahab (`Method A`), López-Dahab with rotating registers
//! (`Method B`, Aranha et al.), and the paper's contribution, López-Dahab
//! with **fixed registers** (`Method C`).
//!
//! # Example
//!
//! ```
//! use gf2m::Fe;
//!
//! let a = Fe::from_hex("1af129f22ff4149563a419c26bf50a4c9d6eefad6126")?;
//! let b = Fe::from_hex("5a67c427a8cd9bf18aeb9b56e0c11056fae6a3")?;
//! // Field axioms hold:
//! assert_eq!(a * b, b * a);
//! assert_eq!((a * b) * a.square(), a * (b * a.square()));
//! let inv = a.invert().expect("a is non-zero");
//! assert_eq!(a * inv, Fe::ONE);
//! # Ok::<(), gf2m::ParseFeError>(())
//! ```

pub mod batch;
pub mod bitsliced;
pub mod counted;
pub mod element;
pub mod formulas;
pub mod generic;
pub mod inv;
pub mod modeled;
pub mod mul;
pub mod reduce;
pub mod sqr;

pub use counted::Tally;
pub use element::{Fe, ParseFeError};

/// Degree of the field extension: F₂²³³.
pub const M: usize = 233;

/// Exponent of the middle term of the reduction trinomial
/// f(z) = z²³³ + z⁷⁴ + 1.
pub const K: usize = 74;

/// Word size of the target platform (the Cortex-M0+ is 32-bit).
pub const W: usize = 32;

/// Number of words per field element: ⌈233 / 32⌉ = 8. The paper's
/// formulas call this `n`.
pub const N: usize = 8;

/// Window width of the López-Dahab multipliers (the paper uses w = 4
/// throughout its multiplication comparison).
pub const LD_WINDOW: usize = 4;

/// Mask of the valid bits in the most significant word
/// (bits 224…232 → 9 bits).
pub const TOP_MASK: u32 = 0x1FF;
