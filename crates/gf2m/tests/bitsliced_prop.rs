//! Property tests for the 64-lane bitsliced backend: lane independence
//! under corruption, zero/duplicate/all-zero lane patterns, and
//! crossover-seam equivalence — all with the in-tree deterministic
//! PRNG, so every failure is a seed away from a reproduction.

use gf2m::bitsliced::{
    self, batch_inv_chunks, set_bitsliced_enabled, transpose_in, BitslicedBatch, CROSSOVER, LANES,
};
use gf2m::{batch, Fe, N, TOP_MASK};
use prng::SplitMix64;

const SEED: u64 = 0xb17_51ced;

fn random_fe(rng: &mut SplitMix64) -> Fe {
    let mut w = [0u32; N];
    rng.fill_u32(&mut w);
    w[N - 1] &= TOP_MASK;
    Fe::try_from_words(w).expect("masked words are reduced")
}

/// A full batch of random elements, with a sprinkling of zeros and
/// duplicates so the edge lanes are always represented.
fn random_lanes(rng: &mut SplitMix64) -> Vec<Fe> {
    let mut lanes: Vec<Fe> = (0..LANES).map(|_| random_fe(rng)).collect();
    for lane in lanes.iter_mut() {
        if rng.ratio(1, 10) {
            *lane = Fe::ZERO;
        }
    }
    // Duplicate one lane into another (possibly itself).
    let from = rng.below(LANES as u64) as usize;
    let to = rng.below(LANES as u64) as usize;
    lanes[to] = lanes[from];
    lanes
}

/// Corrupting lane `i` must leave every other lane's `mul`, `sqr` and
/// `batch_inv` result untouched: in lane space each bit position is an
/// independent dataflow, and this pins that down against any future
/// "optimisation" that would let lanes bleed into each other.
#[test]
fn corrupting_one_lane_leaves_the_others_alone() {
    let mut rng = SplitMix64::substream(SEED, 1, 0);
    for case in 0..8u64 {
        let xs = random_lanes(&mut rng);
        let ys = random_lanes(&mut rng);
        let bx = transpose_in(&xs);
        let by = transpose_in(&ys);
        let base_mul = bx.mul(&by);
        let base_sqr = bx.sqr();
        let base_inv = bx.batch_inv();

        let victim = rng.below(LANES as u64) as usize;
        let corruption = if rng.ratio(1, 4) {
            Fe::ZERO
        } else {
            random_fe(&mut rng)
        };
        let mut corrupted = bx;
        corrupted.set_lane(victim, corruption);

        let got_mul = corrupted.mul(&by);
        let got_sqr = corrupted.sqr();
        let got_inv = corrupted.batch_inv();
        for j in 0..LANES {
            if j == victim {
                continue;
            }
            assert_eq!(
                got_mul.lane(j),
                base_mul.lane(j),
                "case {case} mul lane {j}"
            );
            assert_eq!(
                got_sqr.lane(j),
                base_sqr.lane(j),
                "case {case} sqr lane {j}"
            );
            assert_eq!(
                got_inv.lane(j),
                base_inv.lane(j),
                "case {case} inv lane {j}"
            );
        }
        // And the victim lane itself now carries the corrupted value's
        // results, not a mix of old and new.
        assert_eq!(got_mul.lane(victim), corruption * ys[victim], "case {case}");
        assert_eq!(got_sqr.lane(victim), corruption.square(), "case {case}");
    }
}

#[test]
fn every_lane_matches_the_portable_op() {
    let mut rng = SplitMix64::substream(SEED, 2, 0);
    for case in 0..8u64 {
        let xs = random_lanes(&mut rng);
        let ys = random_lanes(&mut rng);
        let bx = transpose_in(&xs);
        let by = transpose_in(&ys);
        let mul = bx.mul(&by);
        let sqr = bx.sqr();
        let inv = bx.batch_inv();
        for j in 0..LANES {
            assert_eq!(mul.lane(j), xs[j] * ys[j], "case {case} mul lane {j}");
            assert_eq!(sqr.lane(j), xs[j].square(), "case {case} sqr lane {j}");
            let want = xs[j].invert().unwrap_or(Fe::ZERO);
            assert_eq!(inv.lane(j), want, "case {case} inv lane {j}");
        }
    }
}

#[test]
fn duplicate_lanes_stay_in_lockstep() {
    let mut rng = SplitMix64::substream(SEED, 3, 0);
    let value = random_fe(&mut rng);
    let lanes = vec![value; LANES];
    let b = transpose_in(&lanes);
    let inv = b.batch_inv();
    let sq = b.sqr();
    let want_inv = value.invert().unwrap_or(Fe::ZERO);
    for j in 0..LANES {
        assert_eq!(inv.lane(j), want_inv, "lane {j}");
        assert_eq!(sq.lane(j), value.square(), "lane {j}");
    }
}

#[test]
fn all_zero_batches_are_fixed_points() {
    let zero = BitslicedBatch::ZERO;
    assert_eq!(zero.nonzero_lanes(), 0);
    assert_eq!(zero.sqr(), zero);
    assert_eq!(zero.batch_inv(), zero);
    let mut rng = SplitMix64::substream(SEED, 4, 0);
    let other = transpose_in(&random_lanes(&mut rng));
    assert_eq!(zero.mul(&other), zero);
    assert_eq!(other.mul(&zero), zero);

    // The chunked chain on all-zero chunks is also the identity.
    let mut chunks = vec![zero; 3];
    batch_inv_chunks(&mut chunks);
    assert!(chunks.iter().all(|c| c.nonzero_lanes() == 0));
}

/// The chunked lane-space Montgomery chain (pure Itoh–Tsujii final
/// inversion) agrees with per-element portable inversion, zeros
/// included, across several chunk counts.
#[test]
fn chunked_inversion_matches_pointwise() {
    let mut rng = SplitMix64::substream(SEED, 5, 0);
    for chunk_count in [1usize, 2, 3] {
        let elems: Vec<Fe> = (0..chunk_count * LANES)
            .map(|i| {
                let e = random_fe(&mut rng);
                if i % 13 == 0 {
                    Fe::ZERO
                } else {
                    e
                }
            })
            .collect();
        let mut chunks: Vec<BitslicedBatch> = elems.chunks(LANES).map(transpose_in).collect();
        batch_inv_chunks(&mut chunks);
        for (i, e) in elems.iter().enumerate() {
            let got = chunks[i / LANES].lane(i % LANES);
            let want = e.invert().unwrap_or(Fe::ZERO);
            assert_eq!(got, want, "chunks {chunk_count}, element {i}");
        }
    }
}

/// `batch::batch_invert` must produce bit-identical results whether
/// the bitsliced fast path is enabled or not, for lengths straddling
/// the crossover (including ragged final chunks and interior zeros).
#[test]
fn crossover_seam_is_value_invariant() {
    let mut rng = SplitMix64::substream(SEED, 6, 0);
    for len in [
        0usize,
        1,
        CROSSOVER - 1,
        CROSSOVER,
        CROSSOVER + 1,
        CROSSOVER + LANES / 2,
        3 * CROSSOVER + 7,
    ] {
        let mut elems: Vec<Fe> = (0..len).map(|_| random_fe(&mut rng)).collect();
        for e in elems.iter_mut() {
            if rng.ratio(1, 16) {
                *e = Fe::ZERO;
            }
        }
        let mut scalar = elems.clone();
        set_bitsliced_enabled(false);
        batch::batch_invert(&mut scalar);
        set_bitsliced_enabled(true);
        let mut fast = elems.clone();
        batch::batch_invert(&mut fast);
        assert_eq!(scalar, fast, "len {len}");

        // The direct backend entry point agrees too.
        let mut direct = elems;
        bitsliced::invert_elements(&mut direct);
        assert_eq!(scalar, direct, "len {len} (direct)");
    }
}
