//! Property tests over the gf2m internals: tier agreement (counted and
//! modeled vs portable), reduction against the bit-level oracle, and
//! the register-budget ablation invariants.

use gf2m::modeled::{ModeledField, Tier};
use gf2m::{counted, mul, reduce, Fe};
use proptest::prelude::*;

fn arb_fe() -> impl Strategy<Value = Fe> {
    proptest::array::uniform8(any::<u32>()).prop_map(Fe::from_words_reduced)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn counted_methods_compute_portable_products(a in arb_fe(), b in arb_fe()) {
        let want = a * b;
        for (m, p) in counted::all_methods(a, b) {
            prop_assert_eq!(p.value, want, "{} diverged", m);
        }
    }

    #[test]
    fn counted_tallies_never_depend_on_data(a in arb_fe(), b in arb_fe()) {
        // Data-independent cost is what makes the closed-form Table 1
        // possible (and is also the timing-attack surface §5 discusses
        // at the point level): compare against a fixed reference input.
        let reference = counted::mul_ld_fixed(Fe::ONE, Fe::ONE);
        let here = counted::mul_ld_fixed(a, b);
        prop_assert_eq!(here.total(), reference.total());
    }

    #[test]
    fn reduction_matches_bitwise_oracle(words in proptest::collection::vec(any::<u32>(), 16)) {
        let mut c: [u32; 16] = words.try_into().expect("16 words");
        // Stay within the degree range a real product can reach.
        c[14] &= (1 << 17) - 1;
        c[15] = 0;
        prop_assert_eq!(reduce::reduce(c), reduce::reduce_bitwise(c));
    }

    #[test]
    fn register_budget_is_monotone(a in arb_fe(), b in arb_fe(), r in 0usize..16) {
        let lo = counted::mul_ld_fixed_with_registers(a, b, r);
        let hi = counted::mul_ld_fixed_with_registers(a, b, r + 1);
        prop_assert!(hi.main.memory_ops() <= lo.main.memory_ops());
        prop_assert_eq!(lo.value, a * b);
        prop_assert_eq!(hi.value, lo.value);
    }

    #[test]
    fn itoh_tsujii_matches_eea(a in arb_fe()) {
        prop_assert_eq!(gf2m::inv::invert_itoh_tsujii(a), gf2m::inv::invert(a));
    }

    #[test]
    fn karatsuba_matches_comb_unreduced(a in arb_fe(), b in arb_fe()) {
        prop_assert_eq!(
            mul::mul_poly_karatsuba(a.words(), b.words()),
            mul::mul_poly_comb(a.words(), b.words())
        );
    }
}

proptest! {
    // Modeled-tier cases execute a few thousand virtual instructions
    // each; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn modeled_tiers_agree_with_portable(a in arb_fe(), b in arb_fe()) {
        for tier in [Tier::Asm, Tier::C, Tier::RelicC] {
            let mut f = ModeledField::new(tier);
            let (sa, sb, sz) = (f.alloc_init(a), f.alloc_init(b), f.alloc());
            f.mul(sz, sa, sb);
            prop_assert_eq!(f.load(sz), a * b, "{:?} mul", tier);
            f.sqr(sz, sa);
            prop_assert_eq!(f.load(sz), a.square(), "{:?} sqr", tier);
            if !a.is_zero() {
                f.inv(sz, sa);
                prop_assert_eq!(Some(f.load(sz)), a.invert(), "{:?} inv", tier);
            }
        }
    }

    #[test]
    fn modeled_cycle_counts_are_data_independent(a in arb_fe(), b in arb_fe()) {
        let measure = |x: Fe, y: Fe| {
            let mut f = ModeledField::new(Tier::Asm);
            let (sx, sy, sz) = (f.alloc_init(x), f.alloc_init(y), f.alloc());
            let snap = f.machine().snapshot();
            f.mul(sz, sx, sy);
            f.machine().report_since(&snap).cycles
        };
        prop_assert_eq!(measure(a, b), measure(Fe::ONE, Fe::ZERO));
    }
}
