//! Randomised-input tests over the gf2m internals: tier agreement
//! (counted and modeled vs portable), reduction against the bit-level
//! oracle, and the register-budget ablation invariants.
//!
//! Inputs are drawn from the in-tree deterministic PRNG (fixed seeds,
//! reproducible offline) — plain `#[test]` loops standing in for the
//! former proptest strategies.

use gf2m::modeled::{ModeledField, Tier};
use gf2m::{counted, mul, reduce, Fe};
use prng::SplitMix64;

fn fe(rng: &mut SplitMix64) -> Fe {
    let mut w = [0u32; 8];
    rng.fill_u32(&mut w);
    Fe::from_words_reduced(w)
}

#[test]
fn counted_methods_compute_portable_products() {
    let mut rng = SplitMix64::new(0x6f2d_0001);
    for case in 0..48 {
        let (a, b) = (fe(&mut rng), fe(&mut rng));
        let want = a * b;
        for (m, p) in counted::all_methods(a, b) {
            assert_eq!(p.value, want, "{m} diverged (case {case})");
        }
    }
}

#[test]
fn counted_tallies_never_depend_on_data() {
    // Data-independent cost is what makes the closed-form Table 1
    // possible (and is also the timing-attack surface §5 discusses
    // at the point level): compare against a fixed reference input.
    let mut rng = SplitMix64::new(0x6f2d_0002);
    let reference = counted::mul_ld_fixed(Fe::ONE, Fe::ONE);
    for case in 0..48 {
        let here = counted::mul_ld_fixed(fe(&mut rng), fe(&mut rng));
        assert_eq!(here.total(), reference.total(), "case {case}");
    }
}

#[test]
fn reduction_matches_bitwise_oracle() {
    let mut rng = SplitMix64::new(0x6f2d_0003);
    for case in 0..48 {
        let mut c = [0u32; 16];
        rng.fill_u32(&mut c);
        // Stay within the degree range a real product can reach.
        c[14] &= (1 << 17) - 1;
        c[15] = 0;
        assert_eq!(reduce::reduce(c), reduce::reduce_bitwise(c), "case {case}");
    }
}

#[test]
fn register_budget_is_monotone() {
    let mut rng = SplitMix64::new(0x6f2d_0004);
    for case in 0..48 {
        let (a, b) = (fe(&mut rng), fe(&mut rng));
        let r = rng.below(16) as usize;
        let lo = counted::mul_ld_fixed_with_registers(a, b, r);
        let hi = counted::mul_ld_fixed_with_registers(a, b, r + 1);
        assert!(hi.main.memory_ops() <= lo.main.memory_ops(), "case {case}");
        assert_eq!(lo.value, a * b, "case {case}");
        assert_eq!(hi.value, lo.value, "case {case}");
    }
}

#[test]
fn itoh_tsujii_matches_eea() {
    let mut rng = SplitMix64::new(0x6f2d_0005);
    for case in 0..48 {
        let a = fe(&mut rng);
        assert_eq!(
            gf2m::inv::invert_itoh_tsujii(a),
            gf2m::inv::invert(a),
            "case {case}"
        );
    }
}

#[test]
fn karatsuba_matches_comb_unreduced() {
    let mut rng = SplitMix64::new(0x6f2d_0006);
    for case in 0..48 {
        let (a, b) = (fe(&mut rng), fe(&mut rng));
        assert_eq!(
            mul::mul_poly_karatsuba(a.words(), b.words()),
            mul::mul_poly_comb(a.words(), b.words()),
            "case {case}"
        );
    }
}

// Modeled-tier cases execute a few thousand virtual instructions each;
// keep the case count moderate.

#[test]
fn modeled_tiers_agree_with_portable() {
    let mut rng = SplitMix64::new(0x6f2d_0007);
    for case in 0..8 {
        let (a, b) = (fe(&mut rng), fe(&mut rng));
        for tier in [Tier::Asm, Tier::C, Tier::RelicC] {
            let mut f = ModeledField::new(tier);
            let (sa, sb, sz) = (f.alloc_init(a), f.alloc_init(b), f.alloc());
            f.mul(sz, sa, sb);
            assert_eq!(f.load(sz), a * b, "{tier:?} mul (case {case})");
            f.sqr(sz, sa);
            assert_eq!(f.load(sz), a.square(), "{tier:?} sqr (case {case})");
            if !a.is_zero() {
                f.inv(sz, sa);
                assert_eq!(Some(f.load(sz)), a.invert(), "{tier:?} inv (case {case})");
            }
        }
    }
}

#[test]
fn modeled_cycle_counts_are_data_independent() {
    let mut rng = SplitMix64::new(0x6f2d_0008);
    let measure = |x: Fe, y: Fe| {
        let mut f = ModeledField::new(Tier::Asm);
        let (sx, sy, sz) = (f.alloc_init(x), f.alloc_init(y), f.alloc());
        let snap = f.machine().snapshot();
        f.mul(sz, sx, sy);
        f.machine().report_since(&snap).cycles
    };
    let reference = measure(Fe::ONE, Fe::ZERO);
    for case in 0..8 {
        let (a, b) = (fe(&mut rng), fe(&mut rng));
        assert_eq!(measure(a, b), reference, "case {case}");
    }
}
