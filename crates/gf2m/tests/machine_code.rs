//! Executes genuine Thumb machine code on the cost model and checks it
//! against the field arithmetic: the deepest level of the substrate
//! (assembler → halfwords → executor → field semantics).

use gf2m::Fe;
use m0plus::asm::Assembler;
use m0plus::{execute, Cond, Instr, Machine, Reg};

fn fe(seed: u64) -> Fe {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut w = [0u32; 8];
    for x in w.iter_mut() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        *x = (s >> 21) as u32;
    }
    Fe::from_words_reduced(w)
}

/// The field-addition routine as a loop in real assembly:
/// r0 = &a, r1 = &b, r2 = &out, eight word XORs.
fn fe_add_program() -> m0plus::asm::Program {
    let mut a = Assembler::new();
    a.label("fe_add");
    a.push(Instr::MovsImm { rd: Reg::R5, imm: 8 });
    a.label("loop");
    a.push(Instr::LdrImm { rt: Reg::R3, rn: Reg::R0, imm_words: 0 });
    a.push(Instr::LdrImm { rt: Reg::R4, rn: Reg::R1, imm_words: 0 });
    a.push(Instr::Eors { rdn: Reg::R3, rm: Reg::R4 });
    a.push(Instr::StrImm { rt: Reg::R3, rn: Reg::R2, imm_words: 0 });
    a.push(Instr::AddsImm8 { rdn: Reg::R0, imm: 1 });
    a.push(Instr::AddsImm8 { rdn: Reg::R1, imm: 1 });
    a.push(Instr::AddsImm8 { rdn: Reg::R2, imm: 1 });
    a.push(Instr::SubsImm8 { rdn: Reg::R5, imm: 1 });
    a.branch_if(Cond::Ne, "loop");
    a.push(Instr::Bx);
    a.assemble().expect("fe_add assembles")
}

#[test]
fn assembled_field_addition_matches_the_field() {
    let program = fe_add_program();
    // 11 halfwords of code, no pool.
    assert_eq!(program.size_bytes(), 11 * 2);

    for seed in 0..10u64 {
        let x = fe(seed);
        let y = fe(seed + 40);
        let mut m = Machine::new(256);
        let (pa, pb, po) = (m.alloc(8), m.alloc(8), m.alloc(8));
        m.write_slice(pa, x.words());
        m.write_slice(pb, y.words());
        m.set_base(Reg::R0, pa);
        m.set_base(Reg::R1, pb);
        m.set_base(Reg::R2, po);
        let stats = execute(&mut m, &program, "fe_add", 1000).expect("runs");
        let out: [u32; 8] = m.read_slice(po, 8).try_into().expect("8 words");
        assert_eq!(Fe::from_words_reduced(out), x + y, "seed {seed}");
        // 1 movs + 8×(2+2+1+2+1+1+1+1 data cycles + branch) + bx:
        // per iteration 11 cycles + 2 (taken bne) except the last (+1).
        assert_eq!(stats.cycles, 1 + 8 * 11 + 7 * 2 + 1 + 2);
    }
}

#[test]
fn assembled_addition_cost_is_close_to_the_unrolled_support_routine() {
    // The modeled support::add is unrolled (no loop overhead); the
    // assembled loop pays counter + branch per word. Both must sit in
    // the same few-dozen-cycle band.
    let program = fe_add_program();
    let mut m = Machine::new(256);
    let (pa, pb, po) = (m.alloc(8), m.alloc(8), m.alloc(8));
    m.write_slice(pa, fe(1).words());
    m.write_slice(pb, fe(2).words());
    m.set_base(Reg::R0, pa);
    m.set_base(Reg::R1, pb);
    m.set_base(Reg::R2, po);
    let looped = execute(&mut m, &program, "fe_add", 1000)
        .expect("runs")
        .cycles;

    let mut f = gf2m::modeled::ModeledField::new(gf2m::modeled::Tier::Asm);
    let (sa, sb, sz) = (f.alloc_init(fe(1)), f.alloc_init(fe(2)), f.alloc());
    let snap = f.machine().snapshot();
    f.add(sz, sa, sb);
    let unrolled = f.machine().report_since(&snap).cycles;

    assert!(unrolled < looped, "unrolled {unrolled} vs looped {looped}");
    assert!(looped < 2 * unrolled, "same band: {looped} vs {unrolled}");
}

/// A called subroutine version: main loads pointers, calls fe_add twice
/// ((a+b)+b = a must hold).
#[test]
fn assembled_double_addition_is_identity() {
    let mut a = Assembler::new();
    a.label("main");
    // out = a + b.
    a.call("fe_add");
    // Second call: a ← out (r0 := r2 - 8... pointers were advanced by
    // the loop; recompute from saved copies in r6/r7 is cleaner — keep
    // the demo simple by reloading via the stack frame).
    a.push(Instr::Bx);
    a.label("fe_add");
    a.push(Instr::MovsImm { rd: Reg::R5, imm: 8 });
    a.label("loop");
    a.push(Instr::LdrImm { rt: Reg::R3, rn: Reg::R0, imm_words: 0 });
    a.push(Instr::LdrImm { rt: Reg::R4, rn: Reg::R1, imm_words: 0 });
    a.push(Instr::Eors { rdn: Reg::R3, rm: Reg::R4 });
    a.push(Instr::StrImm { rt: Reg::R3, rn: Reg::R2, imm_words: 0 });
    a.push(Instr::AddsImm8 { rdn: Reg::R0, imm: 1 });
    a.push(Instr::AddsImm8 { rdn: Reg::R1, imm: 1 });
    a.push(Instr::AddsImm8 { rdn: Reg::R2, imm: 1 });
    a.push(Instr::SubsImm8 { rdn: Reg::R5, imm: 1 });
    a.branch_if(Cond::Ne, "loop");
    a.push(Instr::Bx);
    let program = a.assemble().expect("assembles");

    let x = fe(7);
    let y = fe(9);
    let mut m = Machine::new(256);
    let (pa, pb, po) = (m.alloc(8), m.alloc(8), m.alloc(8));
    m.write_slice(pa, x.words());
    m.write_slice(pb, y.words());
    m.set_base(Reg::R0, pa);
    m.set_base(Reg::R1, pb);
    m.set_base(Reg::R2, po);
    execute(&mut m, &program, "main", 1000).expect("runs");
    let out: [u32; 8] = m.read_slice(po, 8).try_into().expect("8 words");
    assert_eq!(Fe::from_words_reduced(out), x + y);

    // Run again with out as the first operand: (a+b)+b = a.
    m.set_base(Reg::R0, po);
    m.set_base(Reg::R1, pb);
    let po2 = m.alloc(8);
    m.set_base(Reg::R2, po2);
    execute(&mut m, &program, "fe_add", 1000).expect("runs");
    let out2: [u32; 8] = m.read_slice(po2, 8).try_into().expect("8 words");
    assert_eq!(Fe::from_words_reduced(out2), x, "(a+b)+b = a");
}
