//! Executes genuine Thumb machine code on the cost model and checks it
//! against the field arithmetic: the deepest level of the substrate
//! (assembler → halfwords → executor → field semantics).

use gf2m::modeled::{ModeledField, Tier};
use gf2m::Fe;
use m0plus::asm::Assembler;
use m0plus::{backend, execute, Backend, Cond, Instr, Machine, Reg};

fn fe(seed: u64) -> Fe {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut w = [0u32; 8];
    for x in w.iter_mut() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        *x = (s >> 21) as u32;
    }
    Fe::from_words_reduced(w)
}

/// The field-addition routine as a loop in real assembly:
/// r0 = &a, r1 = &b, r2 = &out, eight word XORs.
fn fe_add_program() -> m0plus::asm::Program {
    let mut a = Assembler::new();
    a.label("fe_add");
    a.push(Instr::MovsImm {
        rd: Reg::R5,
        imm: 8,
    });
    a.label("loop");
    a.push(Instr::LdrImm {
        rt: Reg::R3,
        rn: Reg::R0,
        imm_words: 0,
    });
    a.push(Instr::LdrImm {
        rt: Reg::R4,
        rn: Reg::R1,
        imm_words: 0,
    });
    a.push(Instr::Eors {
        rdn: Reg::R3,
        rm: Reg::R4,
    });
    a.push(Instr::StrImm {
        rt: Reg::R3,
        rn: Reg::R2,
        imm_words: 0,
    });
    a.push(Instr::AddsImm8 {
        rdn: Reg::R0,
        imm: 1,
    });
    a.push(Instr::AddsImm8 {
        rdn: Reg::R1,
        imm: 1,
    });
    a.push(Instr::AddsImm8 {
        rdn: Reg::R2,
        imm: 1,
    });
    a.push(Instr::SubsImm8 {
        rdn: Reg::R5,
        imm: 1,
    });
    a.branch_if(Cond::Ne, "loop");
    a.push(Instr::Bx);
    a.assemble().expect("fe_add assembles")
}

#[test]
fn assembled_field_addition_matches_the_field() {
    let program = fe_add_program();
    // 11 halfwords of code, no pool.
    assert_eq!(program.size_bytes(), 11 * 2);

    for seed in 0..10u64 {
        let x = fe(seed);
        let y = fe(seed + 40);
        let mut m = Machine::new(256);
        let (pa, pb, po) = (m.alloc(8), m.alloc(8), m.alloc(8));
        m.write_slice(pa, x.words());
        m.write_slice(pb, y.words());
        m.set_base(Reg::R0, pa);
        m.set_base(Reg::R1, pb);
        m.set_base(Reg::R2, po);
        let stats = execute(&mut m, &program, "fe_add", 1000).expect("runs");
        let out: [u32; 8] = m.read_slice(po, 8).try_into().expect("8 words");
        assert_eq!(Fe::from_words_reduced(out), x + y, "seed {seed}");
        // 1 movs + 8×(2+2+1+2+1+1+1+1 data cycles + branch) + bx:
        // per iteration 11 cycles + 2 (taken bne) except the last (+1).
        assert_eq!(stats.cycles, 1 + 8 * 11 + 7 * 2 + 1 + 2);
    }
}

#[test]
fn assembled_addition_cost_is_close_to_the_unrolled_support_routine() {
    // The modeled support::add is unrolled (no loop overhead); the
    // assembled loop pays counter + branch per word. Both must sit in
    // the same few-dozen-cycle band.
    let program = fe_add_program();
    let mut m = Machine::new(256);
    let (pa, pb, po) = (m.alloc(8), m.alloc(8), m.alloc(8));
    m.write_slice(pa, fe(1).words());
    m.write_slice(pb, fe(2).words());
    m.set_base(Reg::R0, pa);
    m.set_base(Reg::R1, pb);
    m.set_base(Reg::R2, po);
    let looped = execute(&mut m, &program, "fe_add", 1000)
        .expect("runs")
        .cycles;

    let mut f = gf2m::modeled::ModeledField::new(gf2m::modeled::Tier::Asm);
    let (sa, sb, sz) = (f.alloc_init(fe(1)), f.alloc_init(fe(2)), f.alloc());
    let snap = f.machine().snapshot();
    f.add(sz, sa, sb);
    let unrolled = f.machine().report_since(&snap).cycles;

    assert!(unrolled < looped, "unrolled {unrolled} vs looped {looped}");
    assert!(looped < 2 * unrolled, "same band: {looped} vs {unrolled}");
}

/// A called subroutine version: main loads pointers, calls fe_add twice
/// ((a+b)+b = a must hold).
#[test]
fn assembled_double_addition_is_identity() {
    let mut a = Assembler::new();
    a.label("main");
    // out = a + b.
    a.call("fe_add");
    // Second call: a ← out (r0 := r2 - 8... pointers were advanced by
    // the loop; recompute from saved copies in r6/r7 is cleaner — keep
    // the demo simple by reloading via the stack frame).
    a.push(Instr::Bx);
    a.label("fe_add");
    a.push(Instr::MovsImm {
        rd: Reg::R5,
        imm: 8,
    });
    a.label("loop");
    a.push(Instr::LdrImm {
        rt: Reg::R3,
        rn: Reg::R0,
        imm_words: 0,
    });
    a.push(Instr::LdrImm {
        rt: Reg::R4,
        rn: Reg::R1,
        imm_words: 0,
    });
    a.push(Instr::Eors {
        rdn: Reg::R3,
        rm: Reg::R4,
    });
    a.push(Instr::StrImm {
        rt: Reg::R3,
        rn: Reg::R2,
        imm_words: 0,
    });
    a.push(Instr::AddsImm8 {
        rdn: Reg::R0,
        imm: 1,
    });
    a.push(Instr::AddsImm8 {
        rdn: Reg::R1,
        imm: 1,
    });
    a.push(Instr::AddsImm8 {
        rdn: Reg::R2,
        imm: 1,
    });
    a.push(Instr::SubsImm8 {
        rdn: Reg::R5,
        imm: 1,
    });
    a.branch_if(Cond::Ne, "loop");
    a.push(Instr::Bx);
    let program = a.assemble().expect("assembles");

    let x = fe(7);
    let y = fe(9);
    let mut m = Machine::new(256);
    let (pa, pb, po) = (m.alloc(8), m.alloc(8), m.alloc(8));
    m.write_slice(pa, x.words());
    m.write_slice(pb, y.words());
    m.set_base(Reg::R0, pa);
    m.set_base(Reg::R1, pb);
    m.set_base(Reg::R2, po);
    execute(&mut m, &program, "main", 1000).expect("runs");
    let out: [u32; 8] = m.read_slice(po, 8).try_into().expect("8 words");
    assert_eq!(Fe::from_words_reduced(out), x + y);

    // Run again with out as the first operand: (a+b)+b = a.
    m.set_base(Reg::R0, po);
    m.set_base(Reg::R1, pb);
    let po2 = m.alloc(8);
    m.set_base(Reg::R2, po2);
    execute(&mut m, &program, "fe_add", 1000).expect("runs");
    let out2: [u32; 8] = m.read_slice(po2, 8).try_into().expect("8 words");
    assert_eq!(Fe::from_words_reduced(out2), x, "(a+b)+b = a");
}

/// The trinomial reduction (x^233 + x^74 + 1) as straight-line real
/// assembly: r0 = &c (16 words, reduced in place). Word-level folding,
/// high words walked downwards so the cascade resolves in one pass,
/// then the partial top word (bits 233..255 of c[7]) and the 0x1FF
/// mask.
fn reduce_program() -> m0plus::asm::Program {
    let mut a = Assembler::new();
    a.label("reduce");
    for i in (8..=15u32).rev() {
        a.push(Instr::LdrImm {
            rt: Reg::R3,
            rn: Reg::R0,
            imm_words: i,
        });
        // Bit j = 32i+k folds to j-233 (words i-8/i-7, shifts 23/9) and
        // to j-159 (words i-5/i-4, shifts 1/31).
        for (imm, left, dst) in [
            (23, true, i - 8),
            (9, false, i - 7),
            (1, true, i - 5),
            (31, false, i - 4),
        ] {
            a.push(if left {
                Instr::LslsImm {
                    rd: Reg::R4,
                    rm: Reg::R3,
                    imm,
                }
            } else {
                Instr::LsrsImm {
                    rd: Reg::R4,
                    rm: Reg::R3,
                    imm,
                }
            });
            a.push(Instr::LdrImm {
                rt: Reg::R5,
                rn: Reg::R0,
                imm_words: dst,
            });
            a.push(Instr::Eors {
                rdn: Reg::R5,
                rm: Reg::R4,
            });
            a.push(Instr::StrImm {
                rt: Reg::R5,
                rn: Reg::R0,
                imm_words: dst,
            });
        }
    }
    // T = c[7] >> 9 holds bits 233.. of the partial top word:
    // c[0] ^= T, c[2] ^= T << 10, c[3] ^= T >> 22, c[7] &= 0x1FF.
    a.push(Instr::LdrImm {
        rt: Reg::R3,
        rn: Reg::R0,
        imm_words: 7,
    });
    a.push(Instr::LsrsImm {
        rd: Reg::R4,
        rm: Reg::R3,
        imm: 9,
    });
    a.push(Instr::LdrImm {
        rt: Reg::R5,
        rn: Reg::R0,
        imm_words: 0,
    });
    a.push(Instr::Eors {
        rdn: Reg::R5,
        rm: Reg::R4,
    });
    a.push(Instr::StrImm {
        rt: Reg::R5,
        rn: Reg::R0,
        imm_words: 0,
    });
    a.push(Instr::LslsImm {
        rd: Reg::R6,
        rm: Reg::R4,
        imm: 10,
    });
    a.push(Instr::LdrImm {
        rt: Reg::R5,
        rn: Reg::R0,
        imm_words: 2,
    });
    a.push(Instr::Eors {
        rdn: Reg::R5,
        rm: Reg::R6,
    });
    a.push(Instr::StrImm {
        rt: Reg::R5,
        rn: Reg::R0,
        imm_words: 2,
    });
    a.push(Instr::LsrsImm {
        rd: Reg::R6,
        rm: Reg::R4,
        imm: 22,
    });
    a.push(Instr::LdrImm {
        rt: Reg::R5,
        rn: Reg::R0,
        imm_words: 3,
    });
    a.push(Instr::Eors {
        rdn: Reg::R5,
        rm: Reg::R6,
    });
    a.push(Instr::StrImm {
        rt: Reg::R5,
        rn: Reg::R0,
        imm_words: 3,
    });
    a.push(Instr::MovsImm {
        rd: Reg::R6,
        imm: 1,
    });
    a.push(Instr::LslsImm {
        rd: Reg::R6,
        rm: Reg::R6,
        imm: 9,
    });
    a.push(Instr::SubsImm8 {
        rdn: Reg::R6,
        imm: 1,
    });
    a.push(Instr::Ands {
        rdn: Reg::R3,
        rm: Reg::R6,
    });
    a.push(Instr::StrImm {
        rt: Reg::R3,
        rn: Reg::R0,
        imm_words: 7,
    });
    a.push(Instr::Bx);
    a.assemble().expect("reduce assembles")
}

/// A 16-word unreduced product within the degree range a real
/// 233x233-bit product can reach.
fn product(seed: u64) -> [u32; 16] {
    let mut s = seed.wrapping_mul(0xD134_2543_DE82_EF95) | 1;
    let mut c = [0u32; 16];
    for x in c.iter_mut() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        *x = (s >> 13) as u32;
    }
    c[14] &= (1 << 17) - 1;
    c[15] = 0;
    c
}

#[test]
fn assembled_reduction_matches_the_word_level_reference() {
    let program = reduce_program();
    let mut cycles_seen = None;
    for seed in 0..10u64 {
        let c = product(seed);
        let mut m = Machine::new(256);
        let pc = m.alloc(16);
        m.write_slice(pc, &c);
        m.set_base(Reg::R0, pc);
        let stats = execute(&mut m, &program, "reduce", 10_000).expect("runs");
        let out: [u32; 8] = m.read_slice(pc, 8).try_into().expect("8 words");
        assert_eq!(&out, gf2m::reduce::reduce(c).words(), "seed {seed}");
        // Straight-line code: every halfword retires exactly once and
        // the cycle count is data-independent.
        assert_eq!(stats.instructions, program.code.len() as u64);
        assert_eq!(*cycles_seen.get_or_insert(stats.cycles), stats.cycles);
    }
}

#[test]
fn assembled_multiplication_matches_the_field() {
    // The recorded mul kernels of every tier, assembled to Thumb-16 and
    // re-executed by the code backend (which asserts state equality
    // with the direct run internally) must land on the portable product.
    for tier in [Tier::Asm, Tier::C, Tier::RelicC] {
        let mut f = ModeledField::new_with_backend(tier, Backend::Code);
        for seed in [11u64, 12] {
            let (x, y) = (fe(seed), fe(seed + 50));
            let (sa, sb, sz) = (f.alloc_init(x), f.alloc_init(y), f.alloc());
            f.mul(sz, sa, sb);
            assert_eq!(f.load(sz), x * y, "{tier:?} seed {seed}");
        }
        let flash = f.flash_report();
        assert_eq!(flash.len(), 1, "{tier:?}: exactly the mul kernel");
        for fp in flash.values() {
            assert_eq!(fp.calls, 2, "{tier:?}");
            assert!(fp.flash_bytes > 0, "{tier:?}");
        }
    }
}

#[test]
fn assembled_squaring_matches_the_field() {
    for tier in [Tier::Asm, Tier::C] {
        let mut f = ModeledField::new_with_backend(tier, Backend::Code);
        let x = fe(21);
        let (sa, sz) = (f.alloc_init(x), f.alloc());
        f.sqr(sz, sa);
        assert_eq!(f.load(sz), x.square(), "{tier:?}");
    }
}

#[test]
fn recorded_kernels_translate_to_real_thumb() {
    // Record the asm-tier mul and sqr kernels, translate each to a
    // `Program`, and check the encoding really is Thumb-16: every
    // instruction re-decodes to itself, and the program size is the sum
    // of the per-instruction sizes plus the literal pool.
    let mut f = ModeledField::new(Tier::Asm);
    let (sa, sb, sz) = (f.alloc_init(fe(31)), f.alloc_init(fe(32)), f.alloc());

    f.machine_mut().start_recording();
    f.mul(sz, sa, sb);
    let mul_rec = f.machine_mut().take_recording();
    f.machine_mut().start_recording();
    f.sqr(sz, sa);
    let sqr_rec = f.machine_mut().take_recording();

    for (name, rec) in [("mul", mul_rec), ("sqr", sqr_rec)] {
        let program = backend::translate(&rec).expect("kernel assembles");
        let instr_bytes: usize = rec.steps.iter().map(|s| s.instr.size_bytes()).sum();
        assert!(
            program.size_bytes() >= instr_bytes,
            "{name}: translated size covers the instruction stream"
        );
        for step in &rec.steps {
            let enc = step.instr.encode();
            let (decoded, used) = Instr::decode(&enc).expect("own encoding decodes");
            assert_eq!(used, enc.len(), "{name}");
            assert_eq!(decoded, step.instr, "{name}: decode(encode(i)) = i");
        }
    }
}
