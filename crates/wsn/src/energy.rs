//! Energy models for the node simulation: the measured public-key costs
//! from the Cortex-M0+ model plus documented radio and symmetric-crypto
//! constants.

use ecc233::{Engine, Profile};
use koblitz::{order, Int};

/// Per-operation public-key energy for one implementation profile,
/// measured once on the cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CryptoCosts {
    /// The measured profile.
    pub profile: Profile,
    /// Fixed-point multiplication kG, microjoules.
    pub kg_uj: f64,
    /// Random-point multiplication kP, microjoules.
    pub kp_uj: f64,
}

impl CryptoCosts {
    /// Runs one kG and one kP under `profile` and records their energy.
    pub fn measure(profile: Profile) -> CryptoCosts {
        let k = Int::from_hex(&"6b".repeat(29))
            .expect("valid hex")
            .mod_positive(&order());
        let engine = Engine::new(profile);
        let kg = engine.mul_g(&k).report.energy_uj();
        let kp = engine
            .mul_point(&koblitz::generator(), &k)
            .report
            .energy_uj();
        CryptoCosts {
            profile,
            kg_uj: kg,
            kp_uj: kp,
        }
    }

    /// Energy of one ECDH re-key from the node's side: generate an
    /// ephemeral key (kG) and derive the shared secret (kP).
    pub fn rekey_uj(&self) -> f64 {
        self.kg_uj + self.kp_uj
    }
}

/// Radio and symmetric-processing constants.
///
/// Defaults follow a typical 802.15.4 transceiver of the paper's era
/// (CC2420 class: ≈ 0.23 µJ per transmitted bit, ≈ 0.26 µJ per received
/// bit at 0 dBm) and charge symmetric crypto (AES-CTR + HMAC) at a flat
/// per-byte microcontroller cost derived from ≈ 60 cycles/byte at the
/// Table-3 average energy. These are *simulation constants*, documented
/// here rather than measured — the comparison between ECC profiles is
/// unaffected by their exact values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioModel {
    /// Energy to transmit one byte, microjoules.
    pub tx_uj_per_byte: f64,
    /// Energy to receive one byte, microjoules.
    pub rx_uj_per_byte: f64,
    /// Symmetric processing (encrypt + MAC) per byte, microjoules.
    pub symmetric_uj_per_byte: f64,
}

impl Default for RadioModel {
    fn default() -> Self {
        // 60 cyc/B priced at the default target's mean measured
        // pJ/cycle (the six Table-3 classes), so the symmetric cost
        // tracks the same registry the ECC measurements run under.
        let target = m0plus::target::default_target();
        let measured = [
            m0plus::InstrClass::Ldr,
            m0plus::InstrClass::Lsr,
            m0plus::InstrClass::Mul,
            m0plus::InstrClass::Lsl,
            m0plus::InstrClass::Eor,
            m0plus::InstrClass::Add,
        ];
        let mean_pj: f64 = measured
            .iter()
            .map(|&c| m0plus::TargetModel::pj_per_cycle(target, c))
            .sum::<f64>()
            / measured.len() as f64;
        RadioModel {
            tx_uj_per_byte: 8.0 * 0.23,
            rx_uj_per_byte: 8.0 * 0.26,
            symmetric_uj_per_byte: 60.0 * mean_pj * 1e-6,
        }
    }
}

impl RadioModel {
    /// Energy to seal and transmit a frame of `payload` bytes
    /// (header 4 + payload + tag 16 on the wire).
    pub fn frame_uj(&self, payload: usize) -> f64 {
        let wire = 4 + payload + 16;
        wire as f64 * (self.tx_uj_per_byte + self.symmetric_uj_per_byte)
    }

    /// Energy for the radio half of one re-key: send our 31-byte
    /// compressed public key, receive the peer's.
    pub fn rekey_radio_uj(&self) -> f64 {
        31.0 * (self.tx_uj_per_byte + self.rx_uj_per_byte)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_costs_are_in_the_papers_range() {
        let c = CryptoCosts::measure(Profile::ThisWorkAsm);
        assert!((15.0..30.0).contains(&c.kg_uj), "kG {} µJ", c.kg_uj);
        assert!((25.0..45.0).contains(&c.kp_uj), "kP {} µJ", c.kp_uj);
        assert!(c.kp_uj > c.kg_uj);
    }

    #[test]
    fn relic_costs_more() {
        let ours = CryptoCosts::measure(Profile::ThisWorkAsm);
        let relic = CryptoCosts::measure(Profile::RelicStyle);
        assert!(relic.rekey_uj() > 1.5 * ours.rekey_uj());
    }

    #[test]
    fn radio_model_scales_with_size() {
        let r = RadioModel::default();
        assert!(r.frame_uj(100) > r.frame_uj(10));
        // A telemetry frame costs single-digit to tens of µJ — the same
        // order as a point multiplication, which is exactly the paper's
        // point: PKC is no longer the dominant drain.
        let f = r.frame_uj(24);
        assert!((10.0..200.0).contains(&f), "frame {} µJ", f);
        assert!(r.rekey_radio_uj() > 0.0);
    }
}
