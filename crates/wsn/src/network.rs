//! Multi-node network simulation: a base station and a fleet of nodes
//! with mixed duty cycles, reporting the fleet's lifetime distribution.
//!
//! This is the paper's deployment picture — "an ad-hoc wireless network
//! that consists of a number of nodes and one or more base stations" —
//! with each node spending real energy numbers from the cost model.

use crate::energy::CryptoCosts;
use crate::gateway::{Gateway, GatewayStats};
use crate::node::{NodeConfig, SensorNode};
use crate::sim::Outcome;
use protocols::Keypair;

/// A fleet description: per-node configs (possibly heterogeneous).
#[derive(Debug, Clone)]
pub struct Network {
    configs: Vec<NodeConfig>,
    costs: CryptoCosts,
}

/// Aggregate fleet statistics after running every node to exhaustion.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-node outcomes, in node order.
    pub outcomes: Vec<Outcome>,
}

impl FleetReport {
    /// Rounds until the *first* node dies (network coverage horizon).
    pub fn first_death(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| o.rounds_survived)
            .min()
            .unwrap_or(0)
    }

    /// Rounds until the *last* node dies.
    pub fn last_death(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| o.rounds_survived)
            .max()
            .unwrap_or(0)
    }

    /// Mean node lifetime in rounds.
    pub fn mean_lifetime(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(|o| o.rounds_survived as f64)
            .sum::<f64>()
            / self.outcomes.len() as f64
    }

    /// Total frames delivered by the fleet.
    pub fn total_frames(&self) -> u64 {
        self.outcomes.iter().map(|o| o.frames).sum()
    }
}

impl Network {
    /// A fleet of `n` identical nodes.
    pub fn homogeneous(n: usize, config: NodeConfig, costs: CryptoCosts) -> Network {
        Network {
            configs: vec![config; n],
            costs,
        }
    }

    /// A fleet with explicit per-node configs (e.g. gateway nodes that
    /// re-key more often).
    pub fn heterogeneous(configs: Vec<NodeConfig>, costs: CryptoCosts) -> Network {
        Network { configs, costs }
    }

    /// Runs the fleet against a gateway node: each round every living
    /// node signs one telemetry frame (spending kG + radio), and the
    /// gateway verifies the incoming stream in batches of `batch_size`
    /// across `workers` threads (see [`crate::gateway`]). Returns the
    /// gateway's counters; every honest frame must verify.
    pub fn run_gateway(&self, max_rounds: u64, batch_size: usize, workers: usize) -> GatewayStats {
        let mut gateway = Gateway::new(batch_size, workers);
        let mut nodes: Vec<SensorNode> = self
            .configs
            .iter()
            .enumerate()
            .map(|(id, config)| SensorNode::new(id as u32, *config, self.costs))
            .collect();
        for (id, node) in nodes.iter().enumerate() {
            gateway.register(id as u32, *node.signer().public());
        }
        for round in 0..max_rounds {
            let mut all_dead = true;
            for (id, node) in nodes.iter_mut().enumerate() {
                let payload = format!("n{id:03} r{round:08}");
                if let Some(frame) = node.sign_telemetry(payload.as_bytes()) {
                    all_dead = false;
                    gateway.submit(frame);
                }
            }
            if all_dead {
                break;
            }
        }
        gateway.flush();
        gateway.stats()
    }

    /// Runs every node against the shared base station for at most
    /// `max_rounds` rounds each.
    pub fn run(&self, max_rounds: u64) -> FleetReport {
        let station = Keypair::generate(b"network base station");
        let outcomes = self
            .configs
            .iter()
            .enumerate()
            .map(|(id, config)| run_node(id as u32, *config, self.costs, &station, max_rounds))
            .collect();
        FleetReport { outcomes }
    }
}

fn run_node(
    id: u32,
    config: NodeConfig,
    costs: CryptoCosts,
    station: &Keypair,
    max_rounds: u64,
) -> Outcome {
    let mut node = SensorNode::new(id, config, costs);
    let mut rounds = 0u64;
    while rounds < max_rounds {
        if rounds.is_multiple_of(config.rekey_interval as u64) && !node.rekey(station) {
            break;
        }
        let payload = format!("n{id:03} r{rounds:08}");
        let Some(frame) = node.send_frame(payload.as_bytes()) else {
            break;
        };
        let secret = node.session().expect("keyed");
        debug_assert!(frame.open(&secret).is_ok());
        rounds += 1;
    }
    let (rekeys, frames) = node.stats();
    Outcome {
        rounds_survived: rounds,
        rekeys,
        frames,
        battery_left_j: node.battery_joules().max(0.0),
        hit_round_cap: rounds == max_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RadioModel;
    use ecc233::Profile;

    fn costs() -> CryptoCosts {
        CryptoCosts {
            profile: Profile::ThisWorkAsm,
            kg_uj: 21.0,
            kp_uj: 31.0,
        }
    }

    fn tiny() -> NodeConfig {
        NodeConfig {
            battery_joules: 0.02,
            rekey_interval: 8,
            payload_bytes: 16,
            radio: RadioModel::default(),
        }
    }

    #[test]
    fn homogeneous_fleet_dies_together() {
        let net = Network::homogeneous(4, tiny(), costs());
        let report = net.run(1_000_000);
        assert_eq!(report.outcomes.len(), 4);
        // Same config + deterministic energy model ⇒ identical lifetimes.
        assert_eq!(report.first_death(), report.last_death());
        assert!(report.first_death() > 0);
        assert_eq!(
            report.total_frames(),
            report.outcomes.iter().map(|o| o.frames).sum::<u64>()
        );
    }

    #[test]
    fn heavier_duty_nodes_die_first() {
        let light = tiny();
        let heavy = NodeConfig {
            rekey_interval: 1, // gateway: re-keys every round
            ..tiny()
        };
        let net = Network::heterogeneous(vec![light, heavy], costs());
        let report = net.run(1_000_000);
        assert!(
            report.outcomes[0].rounds_survived > report.outcomes[1].rounds_survived,
            "light {} vs heavy {}",
            report.outcomes[0].rounds_survived,
            report.outcomes[1].rounds_survived
        );
        assert_eq!(report.first_death(), report.outcomes[1].rounds_survived);
        assert!(report.mean_lifetime() > report.first_death() as f64);
    }

    #[test]
    fn gateway_run_verifies_every_honest_frame() {
        let net = Network::homogeneous(3, tiny(), costs());
        let stats = net.run_gateway(5, 4, 2);
        assert_eq!(stats.accepted, 15, "3 nodes × 5 rounds, all honest");
        assert_eq!(stats.rejected, 0);
        // 15 frames, flushed in fours plus a final partial flush.
        assert_eq!(stats.batches, 4);
    }

    #[test]
    fn empty_fleet_is_degenerate() {
        let net = Network::heterogeneous(vec![], costs());
        let report = net.run(100);
        assert_eq!(report.first_death(), 0);
        assert_eq!(report.mean_lifetime(), 0.0);
    }
}
