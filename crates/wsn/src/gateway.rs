//! A gateway node that batch-verifies signed telemetry.
//!
//! The throughput consumer of the batch scheduler: sensor nodes sign
//! telemetry frames (one cheap kG each), the gateway queues incoming
//! frames and verifies them through
//! [`protocols::batch::verify_batch`] — sharded across worker threads,
//! one batched field inversion per flush, and wTNAF table-cache hits
//! for every recurring node key.

use protocols::batch::{verify_batch, VerifyJob};
use protocols::{Signature, SigningKey};
use std::collections::HashMap;

/// An authenticated (but unencrypted) telemetry frame: node identity,
/// monotonic sequence number, payload, and an ECDSA signature binding
/// all three.
#[derive(Debug, Clone)]
pub struct SignedTelemetry {
    /// The claimed sender.
    pub node_id: u32,
    /// Per-node signature sequence number.
    pub seq: u32,
    /// The telemetry payload.
    pub payload: Vec<u8>,
    /// Signature over the domain-tagged (id, seq, payload) message.
    pub signature: Signature,
}

/// The exact byte string a node signs: a domain tag, then the identity
/// and sequence number (so frames cannot be re-attributed or replayed
/// under another id), then the payload. Public so other front ends
/// (the service-plane gateway) verify the same message the node signed.
pub fn telemetry_message(node_id: u32, seq: u32, payload: &[u8]) -> Vec<u8> {
    let mut msg = Vec::with_capacity(21 + payload.len());
    msg.extend_from_slice(b"wsn-telemetry");
    msg.extend_from_slice(&node_id.to_be_bytes());
    msg.extend_from_slice(&seq.to_be_bytes());
    msg.extend_from_slice(payload);
    msg
}

impl SignedTelemetry {
    /// Signs a telemetry frame.
    pub fn sign(key: &SigningKey, node_id: u32, seq: u32, payload: &[u8]) -> SignedTelemetry {
        let msg = telemetry_message(node_id, seq, payload);
        SignedTelemetry {
            node_id,
            seq,
            payload: payload.to_vec(),
            signature: key.sign(&msg),
        }
    }
}

/// Cumulative gateway counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Frames whose signature verified.
    pub accepted: u64,
    /// Frames rejected (bad signature or unregistered sender).
    pub rejected: u64,
    /// Batch-verification flushes performed.
    pub batches: u64,
}

/// The gateway: registered node keys, a pending frame queue, and the
/// batch-verification policy (flush size and worker count).
#[derive(Debug)]
pub struct Gateway {
    keys: HashMap<u32, koblitz::Affine>,
    batch_size: usize,
    workers: usize,
    pending: Vec<SignedTelemetry>,
    stats: GatewayStats,
}

impl Gateway {
    /// Creates a gateway that flushes every `batch_size` frames across
    /// `workers` verification threads. A `batch_size` of 0 or 1
    /// degenerates to per-frame verification.
    pub fn new(batch_size: usize, workers: usize) -> Gateway {
        Gateway {
            keys: HashMap::new(),
            batch_size: batch_size.max(1),
            workers: workers.max(1),
            pending: Vec::new(),
            stats: GatewayStats::default(),
        }
    }

    /// Registers a node's public signing key (deployment-time pairing).
    pub fn register(&mut self, node_id: u32, public: koblitz::Affine) {
        self.keys.insert(node_id, public);
    }

    /// Queues an incoming frame, flushing a verification batch when the
    /// queue reaches the configured size. Returns the verdicts of any
    /// flushed batch (frame, accepted) in arrival order.
    pub fn submit(&mut self, frame: SignedTelemetry) -> Vec<(SignedTelemetry, bool)> {
        self.pending.push(frame);
        if self.pending.len() >= self.batch_size {
            self.flush()
        } else {
            Vec::new()
        }
    }

    /// Verifies everything pending as one batch.
    pub fn flush(&mut self) -> Vec<(SignedTelemetry, bool)> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let frames = std::mem::take(&mut self.pending);
        self.stats.batches += 1;
        // Frames from unregistered senders are rejected without
        // spending a verification; the rest go through the threaded
        // batch verifier (one batched inversion per flush).
        let msgs: Vec<Vec<u8>> = frames
            .iter()
            .map(|f| telemetry_message(f.node_id, f.seq, &f.payload))
            .collect();
        let jobs: Vec<(usize, VerifyJob)> = frames
            .iter()
            .enumerate()
            .filter_map(|(i, f)| {
                self.keys.get(&f.node_id).map(|public| {
                    (
                        i,
                        VerifyJob {
                            public,
                            msg: &msgs[i],
                            sig: &f.signature,
                        },
                    )
                })
            })
            .collect();
        let verdicts = verify_batch(
            &jobs.iter().map(|(_, j)| *j).collect::<Vec<_>>(),
            self.workers,
        );
        let mut ok = vec![false; frames.len()];
        for ((i, _), verdict) in jobs.iter().zip(&verdicts) {
            ok[*i] = verdict.is_ok();
        }
        for &accepted in &ok {
            if accepted {
                self.stats.accepted += 1;
            } else {
                self.stats.rejected += 1;
            }
        }
        frames.into_iter().zip(ok).collect()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> GatewayStats {
        self.stats
    }

    /// Frames queued but not yet verified.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::CryptoCosts;
    use crate::node::{NodeConfig, SensorNode};
    use ecc233::Profile;

    fn costs() -> CryptoCosts {
        CryptoCosts {
            profile: Profile::ThisWorkAsm,
            kg_uj: 21.0,
            kp_uj: 31.0,
        }
    }

    #[test]
    fn gateway_accepts_honest_frames_in_batches() {
        let mut nodes: Vec<SensorNode> = (0..3)
            .map(|id| SensorNode::new(id, NodeConfig::default(), costs()))
            .collect();
        let mut gw = Gateway::new(4, 2);
        for (id, node) in nodes.iter().enumerate() {
            gw.register(id as u32, *node.signer().public());
        }
        let mut verified = 0;
        for round in 0..4u32 {
            for node in nodes.iter_mut() {
                let payload = format!("r{round}");
                let frame = node.sign_telemetry(payload.as_bytes()).expect("alive");
                for (_, ok) in gw.submit(frame) {
                    assert!(ok);
                    verified += 1;
                }
            }
        }
        for (_, ok) in gw.flush() {
            assert!(ok);
            verified += 1;
        }
        assert_eq!(verified, 12);
        let stats = gw.stats();
        assert_eq!(stats.accepted, 12);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.batches, 3, "12 frames at batch size 4");
    }

    #[test]
    fn gateway_rejects_tampered_and_unknown_frames() {
        let mut node = SensorNode::new(7, NodeConfig::default(), costs());
        let mut gw = Gateway::new(8, 2);
        gw.register(7, *node.signer().public());

        let good = node.sign_telemetry(b"t=21.5C").unwrap();
        let mut tampered = node.sign_telemetry(b"t=21.6C").unwrap();
        tampered.payload = b"t=99.9C".to_vec();
        let mut reattributed = node.sign_telemetry(b"t=21.7C").unwrap();
        reattributed.node_id = 8; // unknown sender
        gw.submit(good);
        gw.submit(tampered);
        gw.submit(reattributed);
        let out = gw.flush();
        assert_eq!(
            out.iter().map(|(_, ok)| *ok).collect::<Vec<_>>(),
            [true, false, false]
        );
        let stats = gw.stats();
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.rejected, 2);
    }

    #[test]
    fn replayed_seq_under_wrong_id_fails() {
        let mut a = SensorNode::new(1, NodeConfig::default(), costs());
        let b = SensorNode::new(2, NodeConfig::default(), costs());
        let mut gw = Gateway::new(1, 1);
        gw.register(1, *a.signer().public());
        gw.register(2, *b.signer().public());
        // A frame signed by node 1 claimed as node 2: the identity is
        // inside the signed message, so this must fail under 2's key.
        let mut frame = a.sign_telemetry(b"hello").unwrap();
        frame.node_id = 2;
        let out = gw.submit(frame);
        assert_eq!(out.len(), 1);
        assert!(!out[0].1);
    }
}
