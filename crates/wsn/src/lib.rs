//! Wireless-sensor-network lifetime simulation — the application
//! context of the paper's introduction.
//!
//! The paper motivates its ECC work with WSNs: nodes *"have a limited
//! amount of energy"* and *"a node's lifetime is … directly influenced
//! by the efficiency of its algorithms."* This crate turns that claim
//! into numbers: sensor nodes with a battery budget run the full hybrid
//! cryptosystem (periodic ECDH re-keying, sealed telemetry frames) with
//! the public-key energy taken from the [`ecc233`] cost model and the
//! radio/symmetric costs from documented per-byte constants, and the
//! simulation reports how long each implementation profile keeps a node
//! alive.
//!
//! # Example
//!
//! ```
//! use wsn::{CryptoCosts, NodeConfig, Simulation};
//! use ecc233::Profile;
//!
//! let costs = CryptoCosts::measure(Profile::ThisWorkAsm);
//! let config = NodeConfig {
//!     battery_joules: 0.5, // a tiny budget so the doctest is quick
//!     rekey_interval: 8,
//!     payload_bytes: 24,
//!     ..NodeConfig::default()
//! };
//! let outcome = Simulation::new(config, costs).run(10_000);
//! assert!(outcome.rounds_survived > 0);
//! ```

pub mod energy;
pub mod gateway;
pub mod network;
pub mod node;
pub mod service_gateway;
pub mod sim;

pub use energy::{CryptoCosts, RadioModel};
pub use gateway::{Gateway, GatewayStats, SignedTelemetry};
pub use network::{FleetReport, Network};
pub use node::{NodeConfig, SensorNode};
pub use service_gateway::{ServiceGateway, TelemetryVerdict};
pub use sim::{Outcome, Simulation};
