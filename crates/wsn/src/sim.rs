//! The round-based lifetime simulation.

use crate::energy::CryptoCosts;
use crate::node::{NodeConfig, SensorNode};
use protocols::Keypair;

/// Result of running one node to battery exhaustion (or the round cap).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// Rounds completed before death (or the cap).
    pub rounds_survived: u64,
    /// ECDH re-keys performed.
    pub rekeys: u64,
    /// Telemetry frames sealed and sent.
    pub frames: u64,
    /// Battery left at the end, joules.
    pub battery_left_j: f64,
    /// Whether the node was still alive when the cap was reached.
    pub hit_round_cap: bool,
}

/// A single-node lifetime simulation against an (energy-unconstrained)
/// base station. Each round the node sends one sealed telemetry frame;
/// every `rekey_interval` rounds it re-keys first. Frames are verified
/// on the station side every round, so the simulation doubles as an
/// end-to-end protocol test.
#[derive(Debug)]
pub struct Simulation {
    config: NodeConfig,
    costs: CryptoCosts,
}

impl Simulation {
    /// Builds a simulation.
    pub fn new(config: NodeConfig, costs: CryptoCosts) -> Simulation {
        Simulation { config, costs }
    }

    /// Runs until the node dies or `max_rounds` complete.
    pub fn run(&self, max_rounds: u64) -> Outcome {
        let station = Keypair::generate(b"wsn base station");
        let mut node = SensorNode::new(0, self.config, self.costs);
        let mut rounds = 0u64;
        while rounds < max_rounds {
            if rounds.is_multiple_of(self.config.rekey_interval as u64) && !node.rekey(&station) {
                break;
            }
            let payload = telemetry(rounds, self.config.payload_bytes);
            let Some(frame) = node.send_frame(&payload) else {
                break;
            };
            // Station-side verification keeps the simulation honest.
            let secret = node.session().expect("keyed");
            let (_, opened) = frame.open(&secret).expect("frame must authenticate");
            debug_assert_eq!(opened, payload);
            rounds += 1;
        }
        let (rekeys, frames) = node.stats();
        Outcome {
            rounds_survived: rounds,
            rekeys,
            frames,
            battery_left_j: node.battery_joules().max(0.0),
            hit_round_cap: rounds == max_rounds,
        }
    }

    /// Closed-form lifetime estimate (rounds) from the energy budget —
    /// used to cross-check the simulated outcome.
    pub fn analytic_rounds(&self) -> f64 {
        let per_frame = self.config.radio.frame_uj(self.config.payload_bytes);
        let per_rekey = self.costs.rekey_uj() + self.config.radio.rekey_radio_uj();
        let per_round = per_frame + per_rekey / self.config.rekey_interval as f64;
        self.config.battery_joules * 1e6 / per_round
    }
}

fn telemetry(round: u64, len: usize) -> Vec<u8> {
    let mut payload = format!("r{round:08} t=21.5C rh=40%").into_bytes();
    payload.resize(len, b'.');
    payload
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc233::Profile;

    fn costs(kg: f64, kp: f64) -> CryptoCosts {
        CryptoCosts {
            profile: Profile::ThisWorkAsm,
            kg_uj: kg,
            kp_uj: kp,
        }
    }

    fn small_config() -> NodeConfig {
        NodeConfig {
            battery_joules: 0.05, // 50 mJ ⇒ a few hundred rounds
            rekey_interval: 16,
            payload_bytes: 24,
            ..NodeConfig::default()
        }
    }

    #[test]
    fn simulation_matches_analytic_lifetime() {
        let sim = Simulation::new(small_config(), costs(21.0, 31.0));
        let outcome = sim.run(1_000_000);
        assert!(!outcome.hit_round_cap);
        let analytic = sim.analytic_rounds();
        let ratio = outcome.rounds_survived as f64 / analytic;
        assert!(
            (0.9..1.1).contains(&ratio),
            "simulated {} vs analytic {analytic:.0}",
            outcome.rounds_survived
        );
    }

    #[test]
    fn cheaper_crypto_means_longer_life() {
        let ours = Simulation::new(small_config(), costs(21.0, 31.0)).run(1_000_000);
        let relic = Simulation::new(small_config(), costs(61.0, 61.0)).run(1_000_000);
        assert!(
            ours.rounds_survived > relic.rounds_survived,
            "ours {} vs relic {}",
            ours.rounds_survived,
            relic.rounds_survived
        );
    }

    #[test]
    fn frequent_rekeying_amplifies_the_crypto_gap() {
        // At rekey_interval = 1 with the radio costs zeroed out, the
        // public-key energy dominates each round and the lifetime gap
        // approaches the raw crypto-energy ratio (122 / 52 ≈ 2.3).
        let mut config = small_config();
        config.rekey_interval = 1;
        config.radio = crate::RadioModel {
            tx_uj_per_byte: 0.0,
            rx_uj_per_byte: 0.0,
            symmetric_uj_per_byte: 0.0,
        };
        let ours = Simulation::new(config, costs(21.0, 31.0)).run(1_000_000);
        let relic = Simulation::new(config, costs(61.0, 61.0)).run(1_000_000);
        let gap = ours.rounds_survived as f64 / relic.rounds_survived.max(1) as f64;
        assert!((2.0..2.6).contains(&gap), "gap {gap:.2}");
    }

    #[test]
    fn round_cap_is_respected() {
        let outcome = Simulation::new(small_config(), costs(21.0, 31.0)).run(10);
        assert_eq!(outcome.rounds_survived, 10);
        assert!(outcome.hit_round_cap);
        assert!(outcome.battery_left_j > 0.0);
    }

    #[test]
    fn rekeys_happen_on_schedule() {
        let outcome = Simulation::new(small_config(), costs(21.0, 31.0)).run(64);
        assert_eq!(outcome.rekeys, 4, "rounds 0,16,32,48");
        assert_eq!(outcome.frames, 64);
    }
}
