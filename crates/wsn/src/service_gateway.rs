//! A gateway front end that routes signed telemetry through the
//! gas-metered service plane.
//!
//! The plain [`crate::gateway::Gateway`] verifies everything it is
//! handed — fine for a trusted radio, but a gateway on a hostile
//! network needs the admission discipline the paper's energy argument
//! implies: every verification costs a kG + kP on the device model, so
//! unbounded inbound traffic is an energy-exhaustion attack. This
//! front end prices each telemetry frame through
//! [`service::ServicePlane`] instead: per-node cycle quotas, bounded
//! queueing with typed backpressure, deadline expiry, replay windows,
//! and graceful shedding under overload — while producing the *same
//! verdicts* as the direct batch gateway for the traffic it admits.

use crate::gateway::{telemetry_message, SignedTelemetry};
use service::frame::{encode_request, OpRequest, Priority, Request, Response, Status};
use service::plane::{ConfigError, Counters, PlaneConfig, ServicePlane};
use std::collections::HashMap;

/// A verified-telemetry outcome from one plane tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryVerdict {
    /// The sending node.
    pub node_id: u32,
    /// The frame's sequence number.
    pub seq: u32,
    /// Whether the signature verified.
    pub accepted: bool,
}

/// The service-plane gateway: registered node keys in front of a
/// [`ServicePlane`] running the verify workload.
#[derive(Debug)]
pub struct ServiceGateway {
    keys: HashMap<u32, koblitz::Affine>,
    plane: ServicePlane,
}

impl ServiceGateway {
    /// Builds the gateway over a validated plane configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when the plane policy could never make progress.
    pub fn new(config: PlaneConfig) -> Result<ServiceGateway, ConfigError> {
        Ok(ServiceGateway {
            keys: HashMap::new(),
            plane: ServicePlane::new(config)?,
        })
    }

    /// Registers a node's public signing key (deployment-time pairing).
    pub fn register(&mut self, node_id: u32, public: koblitz::Affine) {
        self.keys.insert(node_id, public);
    }

    /// Prices and submits one telemetry frame as a service-plane verify
    /// request (client = node id, sequence = frame sequence). `None`
    /// means admitted — the verdict arrives from a later
    /// [`ServiceGateway::tick`]; `Some` is an immediate typed rejection
    /// (unknown sender, replay, quota, backpressure, shedding, …).
    pub fn submit_telemetry(
        &mut self,
        frame: &SignedTelemetry,
        priority: Priority,
    ) -> Option<Response> {
        let Some(public) = self.keys.get(&frame.node_id) else {
            // Unregistered senders spend no quota and no queue slot;
            // the rejection reuses the wire taxonomy's bad-operand
            // code so it round-trips like every other outcome.
            return Some(Response {
                client: frame.node_id,
                seq: frame.seq as u64,
                status: Status::Rejected(service::frame::FrameError::Wire(
                    protocols::wire::WireError::WrongOrder,
                )),
            });
        };
        let request = Request {
            client: frame.node_id,
            seq: frame.seq as u64,
            priority,
            deadline: 0,
            op: OpRequest::Verify {
                public: *public,
                sig: frame.signature.clone(),
                msg: telemetry_message(frame.node_id, frame.seq, &frame.payload),
            },
        };
        // Round-trip through the wire bytes: the plane sees exactly
        // what a radio would deliver.
        self.plane.submit(&encode_request(&request))
    }

    /// Advances the plane one tick. Returns the telemetry verdicts of
    /// completed verifications plus every other typed response (expiry,
    /// …) produced this tick.
    pub fn tick(&mut self) -> (Vec<TelemetryVerdict>, Vec<Response>) {
        let mut verdicts = Vec::new();
        let mut other = Vec::new();
        for resp in self.plane.tick() {
            match &resp.status {
                Status::Done(body) if body.len() == 1 => verdicts.push(TelemetryVerdict {
                    node_id: resp.client,
                    seq: resp.seq as u32,
                    accepted: body[0] == 1,
                }),
                _ => other.push(resp),
            }
        }
        (verdicts, other)
    }

    /// The plane's cumulative counters.
    pub fn counters(&self) -> Counters {
        self.plane.counters()
    }

    /// Frames admitted but not yet verified.
    pub fn pending(&self) -> usize {
        self.plane.pending()
    }

    /// The current degradation-ladder level.
    pub fn level(&self) -> u8 {
        self.plane.level()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gateway::Gateway;
    use protocols::SigningKey;

    fn plane_config() -> PlaneConfig {
        let mut cfg = PlaneConfig::for_target(m0plus::target::default_target());
        cfg.workers = 1;
        cfg
    }

    fn node_key(id: u32) -> SigningKey {
        SigningKey::generate(format!("svc-gw node {id}").as_bytes())
    }

    #[test]
    fn verdicts_match_the_direct_batch_gateway() {
        let keys: Vec<SigningKey> = (0..3).map(node_key).collect();
        let mut direct = Gateway::new(16, 1);
        let mut svc = ServiceGateway::new(plane_config()).expect("valid config");
        for (id, key) in keys.iter().enumerate() {
            direct.register(id as u32, *key.public());
            svc.register(id as u32, *key.public());
        }
        // Honest frames, one tampered payload, one re-signed id.
        let mut frames = Vec::new();
        for (id, key) in keys.iter().enumerate() {
            frames.push(SignedTelemetry::sign(key, id as u32, 1, b"t=20.1C"));
        }
        frames[1].payload = b"t=99.9C".to_vec(); // tampered
        let mut wrong_id = SignedTelemetry::sign(&keys[2], 2, 2, b"t=20.2C");
        wrong_id.node_id = 0; // claimed by another registered node
        frames.push(wrong_id);

        for f in &frames {
            direct.submit(f.clone());
            assert_eq!(
                svc.submit_telemetry(f, Priority::Normal),
                None,
                "sustainable load admits"
            );
        }
        let direct_verdicts: Vec<bool> = direct.flush().into_iter().map(|(_, ok)| ok).collect();
        let mut svc_verdicts = Vec::new();
        while svc.pending() > 0 {
            let (vs, _) = svc.tick();
            svc_verdicts.extend(vs.into_iter().map(|v| v.accepted));
        }
        assert_eq!(
            svc_verdicts, direct_verdicts,
            "both gateways must agree frame by frame"
        );
        assert_eq!(svc_verdicts, [true, false, true, false]);
    }

    #[test]
    fn replayed_telemetry_is_refused_before_any_verification() {
        let key = node_key(5);
        let mut svc = ServiceGateway::new(plane_config()).expect("valid config");
        svc.register(5, *key.public());
        let frame = SignedTelemetry::sign(&key, 5, 9, b"reading");
        assert_eq!(svc.submit_telemetry(&frame, Priority::Normal), None);
        while svc.pending() > 0 {
            svc.tick();
        }
        // The captured frame replayed: rejected without burning a
        // verification (completed stays at 1).
        let resp = svc
            .submit_telemetry(&frame, Priority::Normal)
            .expect("replay is refused");
        assert!(matches!(
            resp.status,
            Status::Rejected(service::frame::FrameError::Replayed { seq: 9, .. })
        ));
        assert_eq!(svc.counters().completed, 1);
        assert_eq!(svc.counters().replays, 1);
    }

    #[test]
    fn unknown_senders_spend_nothing() {
        let mut svc = ServiceGateway::new(plane_config()).expect("valid config");
        let key = node_key(1);
        let frame = SignedTelemetry::sign(&key, 1, 1, b"hello");
        let resp = svc
            .submit_telemetry(&frame, Priority::Normal)
            .expect("unregistered is rejected");
        assert!(matches!(resp.status, Status::Rejected(_)));
        assert_eq!(svc.pending(), 0);
        assert_eq!(svc.counters().admitted, 0);
    }

    #[test]
    fn telemetry_flood_is_shed_not_crashed() {
        let key = node_key(3);
        let mut cfg = plane_config();
        cfg.quota_capacity_cycles = u64::MAX / 4; // isolate the ladder
        cfg.quota_refill_cycles_per_tick = u64::MAX / 4;
        cfg.queue_capacity = 256;
        let mut svc = ServiceGateway::new(cfg).expect("valid config");
        svc.register(3, *key.public());
        let mut shed_or_busy = 0u64;
        for seq in 0..200u32 {
            let frame = SignedTelemetry::sign(&key, 3, seq, b"flood");
            if let Some(resp) = svc.submit_telemetry(&frame, Priority::Low) {
                match resp.status {
                    Status::Shed { .. } | Status::Busy { .. } | Status::Overloaded { .. } => {
                        shed_or_busy += 1;
                    }
                    other => panic!("unexpected outcome under flood: {other:?}"),
                }
            }
            if seq % 16 == 15 {
                svc.tick();
            }
        }
        assert!(shed_or_busy > 0, "the flood must hit typed backpressure");
        assert!(svc.level() >= 1, "the ladder must engage");
        // Drain: every admitted frame completes or expires typed.
        while svc.pending() > 0 {
            svc.tick();
        }
        let c = svc.counters();
        assert_eq!(c.admitted, c.completed + c.timeouts);
        assert!(c.accounted(0));
    }
}
