//! A sensor node: battery, identity, session state.

use crate::energy::{CryptoCosts, RadioModel};
use crate::gateway::SignedTelemetry;
use protocols::wire::SealedFrame;
use protocols::{Keypair, SigningKey};

/// Static configuration of a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeConfig {
    /// Battery budget in joules (default: a CR2032 coin cell ≈ 2340 J).
    pub battery_joules: f64,
    /// Rounds between ECDH re-keys (forward secrecy cadence).
    pub rekey_interval: u32,
    /// Telemetry payload bytes per round.
    pub payload_bytes: usize,
    /// Radio/symmetric constants.
    pub radio: RadioModel,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            battery_joules: 2340.0,
            rekey_interval: 96, // e.g. re-key every 24 h at 15-min rounds
            payload_bytes: 24,
            radio: RadioModel::default(),
        }
    }
}

/// A simulated node: spends real energy numbers, produces real sealed
/// frames (the cryptography is not pretend — the frames decrypt).
#[derive(Debug)]
pub struct SensorNode {
    id: u32,
    config: NodeConfig,
    costs: CryptoCosts,
    battery_uj: f64,
    keypair: Keypair,
    signer: SigningKey,
    session: Option<[u8; 32]>,
    seq: u32,
    sig_seq: u32,
    rekeys: u64,
    frames: u64,
}

impl SensorNode {
    /// Creates a node with a deterministic identity derived from `id`.
    pub fn new(id: u32, config: NodeConfig, costs: CryptoCosts) -> SensorNode {
        let seed = format!("wsn-node-{id}");
        let sig_seed = format!("wsn-node-{id}-sig");
        SensorNode {
            id,
            config,
            costs,
            battery_uj: config.battery_joules * 1e6,
            keypair: Keypair::generate(seed.as_bytes()),
            signer: SigningKey::generate(sig_seed.as_bytes()),
            session: None,
            seq: 0,
            sig_seq: 0,
            rekeys: 0,
            frames: 0,
        }
    }

    /// Remaining battery in joules.
    pub fn battery_joules(&self) -> f64 {
        self.battery_uj * 1e-6
    }

    /// Whether the battery is exhausted.
    pub fn is_dead(&self) -> bool {
        self.battery_uj <= 0.0
    }

    /// Total re-keys and frames performed.
    pub fn stats(&self) -> (u64, u64) {
        (self.rekeys, self.frames)
    }

    /// The node's public key (shared with the base station out of band
    /// at deployment).
    pub fn keypair(&self) -> &Keypair {
        &self.keypair
    }

    fn spend(&mut self, uj: f64) -> bool {
        self.battery_uj -= uj;
        !self.is_dead()
    }

    /// Performs an ECDH re-key against `peer_public`, spending kG + kP
    /// plus the radio exchange. Returns false once the battery dies.
    pub fn rekey(&mut self, peer: &Keypair) -> bool {
        let cost = self.costs.rekey_uj() + self.config.radio.rekey_radio_uj();
        if !self.spend(cost) {
            return false;
        }
        let secret = self
            .keypair
            .shared_secret(peer.public())
            .expect("simulation peers are honest");
        self.session = Some(secret);
        self.seq = 0;
        self.rekeys += 1;
        true
    }

    /// Seals and "transmits" one telemetry frame; returns it so the
    /// base station side can verify it really decrypts. Returns `None`
    /// once the battery dies or before the first re-key.
    pub fn send_frame(&mut self, payload: &[u8]) -> Option<SealedFrame> {
        let secret = self.session?;
        if !self.spend(self.config.radio.frame_uj(payload.len())) {
            return None;
        }
        let frame = SealedFrame::seal(&secret, self.seq, payload);
        self.seq += 1;
        self.frames += 1;
        Some(frame)
    }

    /// The current session secret (base-station side of the test rig).
    pub fn session(&self) -> Option<[u8; 32]> {
        self.session
    }

    /// The node's signing identity (the gateway registers its public
    /// half at deployment).
    pub fn signer(&self) -> &SigningKey {
        &self.signer
    }

    /// Signs and "transmits" one authenticated telemetry frame for the
    /// gateway's batch verifier, spending one kG (the signature's
    /// fixed-point multiplication) plus the radio cost of payload +
    /// 60-byte signature. Returns `None` once the battery dies.
    pub fn sign_telemetry(&mut self, payload: &[u8]) -> Option<SignedTelemetry> {
        let radio = self.config.radio.frame_uj(payload.len() + 60);
        if !self.spend(self.costs.kg_uj + radio) {
            return None;
        }
        let seq = self.sig_seq;
        self.sig_seq += 1;
        self.frames += 1;
        Some(SignedTelemetry::sign(&self.signer, self.id, seq, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc233::Profile;

    fn costs() -> CryptoCosts {
        CryptoCosts {
            profile: Profile::ThisWorkAsm,
            kg_uj: 21.0,
            kp_uj: 31.0,
        }
    }

    #[test]
    fn node_spends_battery_on_rekey_and_frames() {
        let config = NodeConfig {
            battery_joules: 0.01,
            ..NodeConfig::default()
        };
        let mut node = SensorNode::new(1, config, costs());
        let station = Keypair::generate(b"base station");
        let before = node.battery_joules();
        assert!(node.rekey(&station));
        assert!(node.battery_joules() < before);
        let frame = node.send_frame(b"t=22.1C").expect("alive");
        // The frame genuinely decrypts with the shared secret.
        let secret = node.session().expect("keyed");
        let (seq, payload) = frame.open(&secret).expect("authentic");
        assert_eq!(seq, 0);
        assert_eq!(payload, b"t=22.1C");
    }

    #[test]
    fn frames_require_a_session() {
        let mut node = SensorNode::new(2, NodeConfig::default(), costs());
        assert!(node.send_frame(b"x").is_none(), "no session yet");
    }

    #[test]
    fn battery_exhaustion_stops_the_node() {
        let config = NodeConfig {
            battery_joules: 100e-6, // 100 µJ: one re-key kills it
            ..NodeConfig::default()
        };
        let mut node = SensorNode::new(3, config, costs());
        let station = Keypair::generate(b"base station");
        assert!(!node.rekey(&station), "battery too small");
        assert!(node.is_dead());
    }
}
