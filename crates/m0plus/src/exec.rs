//! The machine-code executor: runs an assembled [`Program`] on the
//! [`Machine`], fetching, decoding and dispatching real Thumb halfwords
//! with the same per-instruction cost accounting as direct method
//! calls.
//!
//! Supported control flow: conditional/unconditional branches, `BL`
//! subroutine calls (a host-side return stack models `LR`), and `BX lr`
//! which returns — or, at the outermost level, ends execution.

use crate::asm::{decode_bl, Program};
use crate::isa::Instr;
use crate::machine::{Machine, MicroOp, Reg};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The program counter left the code image.
    PcOutOfRange(usize),
    /// An undecodable halfword was fetched.
    InvalidInstruction { pc: usize, halfword: u16 },
    /// The step budget was exhausted (runaway loop guard).
    StepLimit,
    /// A literal load referenced a missing pool slot.
    BadLiteral { pc: usize, slot: usize },
    /// A load/store computed an effective address outside RAM (the
    /// HardFault of the model — reachable when a fault corrupts a base
    /// register, so it aborts the run instead of panicking the host).
    MemOutOfRange { pc: usize, addr: u64 },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::PcOutOfRange(pc) => write!(f, "pc {pc} outside the code image"),
            ExecError::InvalidInstruction { pc, halfword } => {
                write!(f, "invalid instruction {halfword:04x} at {pc}")
            }
            ExecError::StepLimit => f.write_str("step limit exhausted"),
            ExecError::BadLiteral { pc, slot } => {
                write!(f, "literal slot {slot} missing at {pc}")
            }
            ExecError::MemOutOfRange { pc, addr } => {
                write!(f, "memory access to word {addr} outside RAM at {pc}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// What the control hook of [`execute_fragment_ctl`] decided for the
/// instruction about to retire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepAction {
    /// Execute normally.
    Execute,
    /// Glitch the instruction away: it is fetched but never retires —
    /// nothing is charged and control falls through, even for branches.
    Skip,
}

/// The effective word address a load/store is about to touch, or `None`
/// for instructions that do not access RAM. Computed in `u64` so a
/// corrupted base register cannot overflow the sum.
fn mem_access(machine: &Machine, instr: &Instr) -> Option<u64> {
    use Instr::*;
    let addr = match *instr {
        LdrImm { rn, imm_words, .. } | StrImm { rn, imm_words, .. } => {
            machine.reg(rn) as u64 + imm_words as u64
        }
        LdrReg { rn, rm, .. } | StrReg { rn, rm, .. } => {
            machine.reg(rn) as u64 + machine.reg(rm) as u64
        }
        LdrSp { imm_words, .. } | StrSp { imm_words, .. } => {
            machine.reg(Reg::Sp) as u64 + imm_words as u64
        }
        _ => return None,
    };
    Some(addr)
}

/// Statistics of one program run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles charged (from the machine's counter delta).
    pub cycles: u64,
}

/// A predecoded instruction position: the decoded [`Instr`] plus every
/// pc-relative quantity (branch targets, the BL return address)
/// resolved once at predecode time instead of on every retire. Kept
/// flat — one `Instr` match dispatches the whole step in the hot loop,
/// with no second decode-shaped match behind it.
#[derive(Debug, Clone, Copy)]
struct PreStep {
    /// The decoded instruction (a placeholder `Nop` when `invalid`).
    instr: Instr,
    /// The branch target for `BCond`/`B`/`Bl`; the raw halfword for
    /// invalid positions; unused (zero) otherwise.
    aux: usize,
    /// pc + width: the fall-through / skip successor (also the BL
    /// return address, which is exactly pc + 2).
    next: usize,
    /// The halfword does not decode (including the second halfword of a
    /// BL, which is never a legal entry point); reaching it reproduces
    /// [`ExecError::InvalidInstruction`].
    invalid: bool,
}

/// A program decoded once, ready for repeated execution. Holds copies
/// of the code image and literal pool, so running a fragment needs no
/// `Program` — and so the cache can verify a hash hit byte-for-byte.
///
/// Besides the flat per-position [`PreStep`] table, predecoding
/// partitions the image into *superblocks*: maximal straight-line runs
/// of positions that lower to a runnable micro-op (no control flow, no
/// invalid halfword, no unresolvable pool slot). `run_end[pc]` is the
/// exclusive end of the run starting at `pc` (== `pc` when the
/// position is not runnable), so entering a run at *any* position —
/// e.g. via a branch into the middle of a block — yields the correct
/// remainder with no special casing.
///
/// The modeled cycle and energy accounting is **identical** to
/// decode-per-step execution: predecoding changes when instructions
/// are decoded, never what they charge.
#[derive(Debug)]
pub struct Predecoded {
    steps: Vec<PreStep>,
    ops: Vec<MicroOp>,
    run_end: Vec<u32>,
    code: Vec<u16>,
    pool: Vec<u32>,
    /// The per-class cycle table the superblock `MicroOp` costs were
    /// materialised from. [`PreStep`]s are target-independent (pure
    /// decode), but `ops` bakes per-op cycle counts, so a predecoded
    /// fragment is only valid for machines whose model carries this
    /// exact table.
    cycles: crate::target::CycleTable,
}

impl Predecoded {
    /// Decodes every halfword position of `program` up front for the
    /// default Cortex-M0+ cycle table (bypassing the process-wide
    /// cache — see [`predecode`]).
    pub fn new(program: &Program) -> Predecoded {
        Self::for_cycles(program, &crate::target::M0PLUS_CYCLES)
    }

    /// [`Predecoded::new`] with an explicit per-class cycle table: the
    /// superblock micro-ops' precomputed cycle costs are materialised
    /// from `cycle_table`, so the fragment replays correctly on a
    /// machine built for the corresponding target.
    pub fn for_cycles(program: &Program, cycle_table: &crate::target::CycleTable) -> Predecoded {
        let code = program.code.clone();
        let pool = program.pool.clone();
        let steps: Vec<PreStep> = (0..code.len())
            .map(|pc| {
                let window = &code[pc..(pc + 2).min(code.len())];
                let Some((instr, width)) = Instr::decode(window) else {
                    return PreStep {
                        instr: Instr::Nop,
                        aux: code[pc] as usize,
                        next: pc + 1,
                        invalid: true,
                    };
                };
                let hw = code[pc];
                let aux = match instr {
                    Instr::BCond { .. } => (pc as i64 + 2 + (hw & 0xFF) as i8 as i64) as usize,
                    Instr::B => (pc as i64 + 2 + (((hw & 0x7FF) as i16) << 5 >> 5) as i64) as usize,
                    Instr::Bl => {
                        (pc as i64 + 2 + decode_bl(code[pc], code[pc + 1]) as i64) as usize
                    }
                    _ => 0,
                };
                PreStep {
                    instr,
                    aux,
                    next: pc + width,
                    invalid: false,
                }
            })
            .collect();
        let (ops, run_end) = compile_superblocks(&steps, &pool, cycle_table);
        Predecoded {
            steps,
            ops,
            run_end,
            code,
            pool,
            cycles: *cycle_table,
        }
    }

    /// Exact (not just hash) equality with a program's code and pool
    /// under a given cycle table.
    fn matches(&self, program: &Program, cycle_table: &crate::target::CycleTable) -> bool {
        self.cycles == *cycle_table && self.code == program.code && self.pool == program.pool
    }

    /// Number of halfword positions.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the code image is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Builds the superblock tables for a predecoded step table: the
/// per-position [`MicroOp`] (registers resolved to indices, pool slots
/// to constants, shift immediates normalised, cost precomputed — see
/// [`MicroOp::lower`]) and `run_end`, the exclusive end of the maximal
/// straight-line runnable run starting at each position (== the
/// position itself when it is not runnable). All runnable positions
/// are one halfword wide, so a run's successor chain is simply
/// `pc + 1`.
///
/// Branches whose target is their own fall-through position
/// (`aux == next`) are folded into blocks: the backend linearises
/// recorded traces so every `B`/`BCond` jumps to the label that
/// immediately follows it, making them pure charge-and-continue
/// operations. `Bl` and `Bx` always end a block — they push/pop the
/// executor's call stack (and an empty-stack `Bx` terminates the run),
/// which only the per-step loop models.
fn compile_superblocks(
    steps: &[PreStep],
    pool: &[u32],
    cycle_table: &crate::target::CycleTable,
) -> (Vec<MicroOp>, Vec<u32>) {
    let ops: Vec<MicroOp> = steps
        .iter()
        .map(|s| {
            if s.invalid {
                MicroOp::BLOCKED
            } else {
                match s.instr {
                    Instr::B if s.aux == s.next => MicroOp::branch_fall(cycle_table),
                    Instr::BCond { cond } if s.aux == s.next => MicroOp::bcond_fall(cond),
                    instr => MicroOp::lower(instr, pool, cycle_table),
                }
            }
        })
        .collect();
    let mut run_end = vec![0u32; steps.len()];
    for pc in (0..steps.len()).rev() {
        run_end[pc] = if !ops[pc].runnable() {
            pc as u32
        } else if pc + 1 < steps.len() {
            // run_end[pc + 1] is pc + 1 itself when that position is
            // not runnable, which closes this run correctly.
            run_end[pc + 1].max(pc as u32 + 1)
        } else {
            pc as u32 + 1
        };
    }
    (ops, run_end)
}

/// FNV-1a over the code image, literal pool and cycle table (lengths
/// included, so the section boundaries are unambiguous). The cycle
/// table is part of the key because the cached superblock micro-ops
/// bake per-target cycle costs.
fn program_hash(program: &Program, cycle_table: &crate::target::CycleTable) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(PRIME);
    };
    eat(program.code.len() as u64);
    for &hw in &program.code {
        eat(hw as u64);
    }
    eat(program.pool.len() as u64);
    for &w in &program.pool {
        eat(w as u64);
    }
    for &c in cycle_table {
        eat(c);
    }
    h
}

/// Bound on cached predecoded fragments. The campaigns cycle through a
/// few dozen kernels; at ~16 bytes per halfword position the cache
/// stays in the low megabytes even when full.
const PREDECODE_CACHE_CAPACITY: usize = 64;

struct PredecodeEntry {
    hash: u64,
    pre: Arc<Predecoded>,
    stamp: u64,
}

#[derive(Default)]
struct PredecodeCache {
    entries: Vec<PredecodeEntry>,
    clock: u64,
    hits: u64,
    misses: u64,
}

fn predecode_cache() -> &'static Mutex<PredecodeCache> {
    static CACHE: OnceLock<Mutex<PredecodeCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(PredecodeCache::default()))
}

/// Returns the predecoded form of `program` from the process-wide
/// fragment cache, decoding on first sight. Entries are keyed by an
/// FNV-1a hash of code + pool and verified byte-for-byte on a hit
/// (a mutated fragment — e.g. a differently-recorded kernel that
/// collides — predecodes fresh; stale results are impossible).
pub fn predecode(program: &Program) -> Arc<Predecoded> {
    predecode_with(program, &crate::target::M0PLUS_CYCLES)
}

/// [`predecode`] for an explicit per-class cycle table: entries are
/// additionally keyed on the table, so fragments predecoded for
/// different targets coexist in the cache without contaminating each
/// other's precomputed costs.
pub fn predecode_with(
    program: &Program,
    cycle_table: &crate::target::CycleTable,
) -> Arc<Predecoded> {
    let hash = program_hash(program, cycle_table);
    {
        let mut c = predecode_cache().lock().unwrap();
        c.clock += 1;
        let clock = c.clock;
        if let Some(e) = c
            .entries
            .iter_mut()
            .find(|e| e.hash == hash && e.pre.matches(program, cycle_table))
        {
            e.stamp = clock;
            let pre = Arc::clone(&e.pre);
            c.hits += 1;
            return pre;
        }
        c.misses += 1;
    }
    let pre = Arc::new(Predecoded::for_cycles(program, cycle_table));
    let mut c = predecode_cache().lock().unwrap();
    if c.entries.len() >= PREDECODE_CACHE_CAPACITY {
        if let Some(victim) = c
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.stamp)
            .map(|(i, _)| i)
        {
            c.entries.swap_remove(victim);
        }
    }
    let stamp = c.clock;
    c.entries.push(PredecodeEntry {
        hash,
        pre: Arc::clone(&pre),
        stamp,
    });
    pre
}

/// (hits, misses) of the predecode fragment cache.
pub fn predecode_cache_stats() -> (u64, u64) {
    let c = predecode_cache().lock().unwrap();
    (c.hits, c.misses)
}

/// Empties the predecode cache and zeroes its counters.
pub fn predecode_cache_reset() {
    let mut c = predecode_cache().lock().unwrap();
    c.entries.clear();
    c.clock = 0;
    c.hits = 0;
    c.misses = 0;
}

static PREDECODE_ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables/disables the predecode path of
/// [`execute_fragment_ctl`] (A/B switch for measuring the speedup;
/// results are identical either way).
pub fn set_predecode_enabled(on: bool) {
    PREDECODE_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether fragment execution currently uses the predecode cache.
pub fn predecode_enabled() -> bool {
    PREDECODE_ENABLED.load(Ordering::Relaxed)
}

static SUPERBLOCK_ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables/disables superblock execution inside the
/// predecoded executor (A/B switch for measuring the speedup; modeled
/// state, cycles and energy are bit-identical either way).
pub fn set_superblock_enabled(on: bool) {
    SUPERBLOCK_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the predecoded executor currently runs superblocks.
pub fn superblock_enabled() -> bool {
    SUPERBLOCK_ENABLED.load(Ordering::Relaxed)
}

/// Runs `program` on `machine` starting at `entry` (a label) until the
/// outermost `BX lr`, for at most `max_steps` instructions.
///
/// # Errors
///
/// Propagates label, decode, literal and runaway-loop failures; the
/// machine state reflects everything executed up to the error.
///
/// # Panics
///
/// Panics if `entry` is not a label of the program.
pub fn execute(
    machine: &mut Machine,
    program: &Program,
    entry: &str,
    max_steps: u64,
) -> Result<ExecStats, ExecError> {
    let mut pc = *program
        .labels
        .get(entry)
        .unwrap_or_else(|| panic!("entry label {entry:?} not found"));
    let mut call_stack: Vec<usize> = Vec::new();
    let mut steps = 0u64;
    let start_cycles = machine.cycles();

    loop {
        if steps >= max_steps {
            return Err(ExecError::StepLimit);
        }
        if pc >= program.code.len() {
            return Err(ExecError::PcOutOfRange(pc));
        }
        let hw = program.code[pc];
        let window = &program.code[pc..(pc + 2).min(program.code.len())];
        let (instr, width) =
            Instr::decode(window).ok_or(ExecError::InvalidInstruction { pc, halfword: hw })?;
        steps += 1;

        match instr {
            Instr::BCond { cond } => {
                let taken = machine.b_cond(cond);
                if taken {
                    let rel = (hw & 0xFF) as i8 as i64;
                    pc = (pc as i64 + 2 + rel) as usize;
                } else {
                    pc += 1;
                }
            }
            Instr::B => {
                machine.b();
                // Sign-extend the 11-bit offset.
                let rel = ((hw & 0x7FF) as i16) << 5 >> 5;
                pc = (pc as i64 + 2 + rel as i64) as usize;
            }
            Instr::Bl => {
                machine.bl();
                let rel = decode_bl(program.code[pc], program.code[pc + 1]) as i64;
                call_stack.push(pc + 2);
                pc = (pc as i64 + 2 + rel) as usize;
            }
            Instr::Bx => {
                machine.bx();
                match call_stack.pop() {
                    Some(ret) => pc = ret,
                    None => break,
                }
            }
            Instr::LdrLit { rt, imm_words } => {
                let slot = imm_words as usize;
                let value = *program
                    .pool
                    .get(slot)
                    .ok_or(ExecError::BadLiteral { pc, slot })?;
                machine.ldr_const(rt, value);
                pc += 1;
            }
            Instr::Push { reg_count } | Instr::Pop { reg_count } => {
                machine.stack_transfer(reg_count);
                pc += width;
            }
            other => {
                if let Some(addr) = mem_access(machine, &other) {
                    if addr >= machine.ram_words() as u64 {
                        return Err(ExecError::MemOutOfRange { pc, addr });
                    }
                }
                dispatch(machine, other);
                pc += width;
            }
        }
    }

    Ok(ExecStats {
        instructions: steps,
        cycles: machine.cycles() - start_cycles,
    })
}

/// Runs an assembled code *fragment* on `machine`, starting at the first
/// halfword and completing when the program counter reaches the end of
/// the code image (the normal exit for linearised kernel traces, which
/// carry no outermost `BX lr`).
///
/// `hook` is called with the machine and the index of the instruction
/// about to retire; the code backend uses it to reapply per-step
/// category attribution and positioned un-costed register writes.
///
/// # Errors
///
/// Propagates decode, literal and runaway-loop failures; the machine
/// state reflects everything executed up to the error.
pub fn execute_fragment(
    machine: &mut Machine,
    program: &Program,
    max_steps: u64,
    mut hook: impl FnMut(&mut Machine, usize),
) -> Result<ExecStats, ExecError> {
    execute_fragment_ctl(machine, program, max_steps, |m, idx| {
        hook(m, idx);
        StepAction::Execute
    })
}

/// Like [`execute_fragment`], but the hook *controls* each step: it can
/// order the instruction about to retire to be skipped (the fault
/// injector's instruction-skip model) or mutate machine state first
/// (its register/memory bit flips).
///
/// A skipped instruction still counts against `max_steps` and the
/// retired-instruction index — keeping hook indices aligned with a
/// recording — but charges nothing, and control falls through to the
/// next halfword even for branches.
///
/// # Errors
///
/// Propagates decode, literal, memory-range and runaway-loop failures;
/// the machine state reflects everything executed up to the error.
pub fn execute_fragment_ctl(
    machine: &mut Machine,
    program: &Program,
    max_steps: u64,
    ctl: impl FnMut(&mut Machine, usize) -> StepAction,
) -> Result<ExecStats, ExecError> {
    if predecode_enabled() {
        let pre = predecode_with(program, machine.model().cycle_table());
        execute_fragment_ctl_pre(machine, &pre, max_steps, ctl)
    } else {
        execute_fragment_ctl_uncached(machine, program, max_steps, ctl)
    }
}

/// The decode-per-step fragment executor ([`execute_fragment_ctl`]
/// with the predecode cache bypassed) — kept callable for the A/B
/// speedup measurement and as the reference the predecoded path is
/// differential-tested against.
pub fn execute_fragment_ctl_uncached(
    machine: &mut Machine,
    program: &Program,
    max_steps: u64,
    mut ctl: impl FnMut(&mut Machine, usize) -> StepAction,
) -> Result<ExecStats, ExecError> {
    let mut pc = 0usize;
    let mut call_stack: Vec<usize> = Vec::new();
    let mut steps = 0u64;
    let start_cycles = machine.cycles();

    while pc < program.code.len() {
        if steps >= max_steps {
            return Err(ExecError::StepLimit);
        }
        let hw = program.code[pc];
        let window = &program.code[pc..(pc + 2).min(program.code.len())];
        let (instr, width) =
            Instr::decode(window).ok_or(ExecError::InvalidInstruction { pc, halfword: hw })?;
        let action = ctl(machine, steps as usize);
        steps += 1;
        if action == StepAction::Skip {
            pc += width;
            continue;
        }

        match instr {
            Instr::BCond { cond } => {
                let taken = machine.b_cond(cond);
                if taken {
                    let rel = (hw & 0xFF) as i8 as i64;
                    pc = (pc as i64 + 2 + rel) as usize;
                } else {
                    pc += 1;
                }
            }
            Instr::B => {
                machine.b();
                let rel = ((hw & 0x7FF) as i16) << 5 >> 5;
                pc = (pc as i64 + 2 + rel as i64) as usize;
            }
            Instr::Bl => {
                machine.bl();
                let rel = decode_bl(program.code[pc], program.code[pc + 1]) as i64;
                call_stack.push(pc + 2);
                pc = (pc as i64 + 2 + rel) as usize;
            }
            Instr::Bx => {
                machine.bx();
                match call_stack.pop() {
                    Some(ret) => pc = ret,
                    None => break,
                }
            }
            Instr::LdrLit { rt, imm_words } => {
                let slot = imm_words as usize;
                let value = *program
                    .pool
                    .get(slot)
                    .ok_or(ExecError::BadLiteral { pc, slot })?;
                machine.ldr_const(rt, value);
                pc += 1;
            }
            Instr::Push { reg_count } | Instr::Pop { reg_count } => {
                machine.stack_transfer(reg_count);
                pc += width;
            }
            other => {
                if let Some(addr) = mem_access(machine, &other) {
                    if addr >= machine.ram_words() as u64 {
                        return Err(ExecError::MemOutOfRange { pc, addr });
                    }
                }
                dispatch(machine, other);
                pc += width;
            }
        }
    }

    if pc > program.code.len() {
        return Err(ExecError::PcOutOfRange(pc));
    }
    Ok(ExecStats {
        instructions: steps,
        cycles: machine.cycles() - start_cycles,
    })
}

/// [`execute_fragment_ctl`] over an already-predecoded fragment: the
/// per-step work drops to a table lookup plus dispatch — no halfword
/// decode, no branch-offset arithmetic, no hash. Replay engines that
/// run the same fragment millions of times (the fault and verify
/// campaigns) hold the [`Predecoded`] and call this directly.
///
/// Semantics, error taxonomy, cycle and energy accounting are
/// identical to the decode-per-step executor: literal-pool lookups
/// still happen at execution time (so `BadLiteral` fires at the same
/// step), invalid positions error before the hook runs, and a skipped
/// instruction still falls through by its encoded width.
///
/// # Errors
///
/// Exactly those of [`execute_fragment_ctl`].
pub fn execute_fragment_ctl_pre(
    machine: &mut Machine,
    pre: &Predecoded,
    max_steps: u64,
    mut ctl: impl FnMut(&mut Machine, usize) -> StepAction,
) -> Result<ExecStats, ExecError> {
    // A hook that always re-schedules itself for the very next step is
    // exactly the per-step contract.
    execute_fragment_ctl_scheduled(machine, pre, max_steps, |m, idx| (ctl(m, idx), 0))
}

/// [`execute_fragment_ctl_pre`] with a *scheduled* control hook: the
/// hook returns, along with its [`StepAction`], the next
/// retired-instruction index at which it must run again, and the
/// executor does not call it in between. Replay engines whose per-step
/// work is sparse — positioned register writes, category *runs*, a
/// single fault index — use this so the millions of steps between
/// boundaries pay no hook call at all.
///
/// A returned index at or below the current one is treated as
/// "call me on the very next step"; `u64::MAX` means "never again".
/// Instructions retired while the hook is dormant behave exactly as if
/// the hook had returned [`StepAction::Execute`] at each of them, so a
/// hook that asks to run at every index reproduces
/// [`execute_fragment_ctl_pre`] bit for bit.
///
/// While the hook is dormant (and no recording or trace capture is
/// armed), the executor runs whole predecoded *superblocks* — maximal
/// straight-line runs of non-control instructions — with one dispatch
/// per position and the category resolved once per block, truncating
/// each block at the next hook index and the step budget so hooks,
/// faults and the step limit land on exactly the per-step boundaries.
/// Disable via [`set_superblock_enabled`] for A/B timing; results are
/// bit-identical either way.
///
/// # Errors
///
/// Exactly those of [`execute_fragment_ctl`].
pub fn execute_fragment_ctl_scheduled(
    machine: &mut Machine,
    pre: &Predecoded,
    max_steps: u64,
    ctl: impl FnMut(&mut Machine, usize) -> (StepAction, u64),
) -> Result<ExecStats, ExecError> {
    execute_fragment_ctl_scheduled_with(machine, pre, max_steps, superblock_enabled(), ctl)
}

/// [`execute_fragment_ctl_scheduled`] with the superblock switch as an
/// explicit argument instead of the process-wide toggle, so tests can
/// compare both paths without racing the global.
fn execute_fragment_ctl_scheduled_with(
    machine: &mut Machine,
    pre: &Predecoded,
    max_steps: u64,
    superblocks: bool,
    mut ctl: impl FnMut(&mut Machine, usize) -> (StepAction, u64),
) -> Result<ExecStats, ExecError> {
    use Instr::*;
    // The superblock micro-ops bake per-op cycle costs from one cycle
    // table; running them on a machine modelling a different target
    // would charge the wrong costs silently.
    debug_assert_eq!(
        &pre.cycles,
        machine.model().cycle_table(),
        "predecoded fragment built for a different target's cycle table"
    );
    let mut pc = 0usize;
    let mut call_stack: Vec<usize> = Vec::new();
    let mut steps = 0u64;
    let mut next_ctl = 0u64;
    let start_cycles = machine.cycles();

    while pc < pre.steps.len() {
        if steps >= max_steps {
            return Err(ExecError::StepLimit);
        }
        if superblocks && steps < next_ctl {
            let end = pre.run_end[pc] as usize;
            if end > pc && !machine.block_capture_active() {
                // Truncate the block at the next hook index and the
                // step budget: any prefix of a straight-line run is
                // per-step-equivalent, so the hook (or StepLimit)
                // fires at exactly the per-step position. Both bounds
                // exceed `steps` here, so at least one position runs.
                let budget = (next_ctl - steps).min(max_steps - steps);
                let len = (end - pc).min(budget as usize);
                let cat = machine.current_category();
                if let Err((i, addr)) = machine.run_block(&pre.ops[pc..pc + len], cat) {
                    // The faulting instruction retires no cost; the
                    // prefix is applied+charged — exactly the per-step
                    // error state.
                    return Err(ExecError::MemOutOfRange { pc: pc + i, addr });
                }
                steps += len as u64;
                pc += len;
                continue;
            }
        }
        let step = pre.steps[pc];
        if step.invalid {
            return Err(ExecError::InvalidInstruction {
                pc,
                halfword: step.aux as u16,
            });
        }
        let action = if steps >= next_ctl {
            let (action, next) = ctl(machine, steps as usize);
            next_ctl = next.max(steps + 1);
            action
        } else {
            StepAction::Execute
        };
        steps += 1;
        if action == StepAction::Skip {
            pc = step.next;
            continue;
        }

        // One flat match over the decoded instruction drives the whole
        // step: control flow reads the precomputed `aux` target, memory
        // ops range-check their (inlined) effective address, everything
        // else goes straight to its machine method — the same effects,
        // costs and error taxonomy as the decode-per-step loop, minus
        // any second dispatch behind the first.
        pc = match step.instr {
            BCond { cond } => {
                if machine.b_cond(cond) {
                    step.aux
                } else {
                    step.next
                }
            }
            B => {
                machine.b();
                step.aux
            }
            Bl => {
                machine.bl();
                call_stack.push(step.next);
                step.aux
            }
            Bx => {
                machine.bx();
                match call_stack.pop() {
                    Some(ret) => ret,
                    None => break,
                }
            }
            LdrLit { rt, imm_words } => {
                let slot = imm_words as usize;
                let value = *pre
                    .pool
                    .get(slot)
                    .ok_or(ExecError::BadLiteral { pc, slot })?;
                machine.ldr_const(rt, value);
                step.next
            }
            Push { reg_count } | Pop { reg_count } => {
                machine.stack_transfer(reg_count);
                step.next
            }
            LdrImm { rt, rn, imm_words } => {
                let addr = machine.reg(rn) as u64 + imm_words as u64;
                if addr >= machine.ram_words() as u64 {
                    return Err(ExecError::MemOutOfRange { pc, addr });
                }
                machine.ldr(rt, rn, imm_words);
                step.next
            }
            StrImm { rt, rn, imm_words } => {
                let addr = machine.reg(rn) as u64 + imm_words as u64;
                if addr >= machine.ram_words() as u64 {
                    return Err(ExecError::MemOutOfRange { pc, addr });
                }
                machine.str(rt, rn, imm_words);
                step.next
            }
            LdrReg { rt, rn, rm } => {
                let addr = machine.reg(rn) as u64 + machine.reg(rm) as u64;
                if addr >= machine.ram_words() as u64 {
                    return Err(ExecError::MemOutOfRange { pc, addr });
                }
                machine.ldr_reg(rt, rn, rm);
                step.next
            }
            StrReg { rt, rn, rm } => {
                let addr = machine.reg(rn) as u64 + machine.reg(rm) as u64;
                if addr >= machine.ram_words() as u64 {
                    return Err(ExecError::MemOutOfRange { pc, addr });
                }
                machine.str_reg(rt, rn, rm);
                step.next
            }
            LdrSp { rt, imm_words } => {
                let addr = machine.reg(Reg::Sp) as u64 + imm_words as u64;
                if addr >= machine.ram_words() as u64 {
                    return Err(ExecError::MemOutOfRange { pc, addr });
                }
                machine.ldr_sp(rt, imm_words);
                step.next
            }
            StrSp { rt, imm_words } => {
                let addr = machine.reg(Reg::Sp) as u64 + imm_words as u64;
                if addr >= machine.ram_words() as u64 {
                    return Err(ExecError::MemOutOfRange { pc, addr });
                }
                machine.str_sp(rt, imm_words);
                step.next
            }
            other => {
                dispatch(machine, other);
                step.next
            }
        };
    }

    if pc > pre.steps.len() {
        return Err(ExecError::PcOutOfRange(pc));
    }
    Ok(ExecStats {
        instructions: steps,
        cycles: machine.cycles() - start_cycles,
    })
}

/// Dispatches a position-independent instruction to its machine method.
#[inline]
fn dispatch(m: &mut Machine, instr: Instr) {
    use Instr::*;
    match instr {
        LslsImm { rd, rm, imm } => m.lsls_imm(rd, rm, imm),
        LsrsImm { rd, rm, imm } => m.lsrs_imm(rd, rm, if imm == 0 { 32 } else { imm }),
        AsrsImm { rd, rm, imm } => m.asrs_imm(rd, rm, if imm == 0 { 32 } else { imm }),
        AddsReg { rd, rn, rm } => m.adds(rd, rn, rm),
        SubsReg { rd, rn, rm } => m.subs(rd, rn, rm),
        MovsImm { rd, imm } => m.movs_imm(rd, imm),
        CmpImm { rn, imm } => m.cmp_imm(rn, imm),
        AddsImm8 { rdn, imm } => m.adds_imm(rdn, imm),
        SubsImm8 { rdn, imm } => m.subs_imm(rdn, imm),
        Ands { rdn, rm } => m.ands(rdn, rm),
        Eors { rdn, rm } => m.eors(rdn, rm),
        LslsReg { rdn, rm } => m.lsls_reg(rdn, rm),
        LsrsReg { rdn, rm } => m.lsrs_reg(rdn, rm),
        Adcs { rdn, rm } => m.adcs(rdn, rm),
        Sbcs { rdn, rm } => m.sbcs(rdn, rm),
        Tst { rn, rm } => m.tst(rn, rm),
        Rsbs { rd, rn } => m.rsbs(rd, rn),
        CmpReg { rn, rm } => m.cmp(rn, rm),
        Orrs { rdn, rm } => m.orrs(rdn, rm),
        Muls { rdn, rm } => m.muls(rdn, rm),
        Bics { rdn, rm } => m.bics(rdn, rm),
        Mvns { rd, rm } => m.mvns(rd, rm),
        Mov { rd, rm } => m.mov(rd, rm),
        LdrImm { rt, rn, imm_words } => m.ldr(rt, rn, imm_words),
        StrImm { rt, rn, imm_words } => m.str(rt, rn, imm_words),
        LdrReg { rt, rn, rm } => m.ldr_reg(rt, rn, rm),
        StrReg { rt, rn, rm } => m.str_reg(rt, rn, rm),
        LdrSp { rt, imm_words } => m.ldr_sp(rt, imm_words),
        StrSp { rt, imm_words } => m.str_sp(rt, imm_words),
        Uxth { rd, rm } => m.uxth(rd, rm),
        Nop => m.nop(),
        B | BCond { .. } | Bl | Bx | LdrLit { .. } | Push { .. } | Pop { .. } => {
            unreachable!("control flow handled by the executor loop")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::{Cond, Instr, Reg};

    #[test]
    fn countdown_loop_executes_the_right_number_of_times() {
        // r0 = 5; do { r1 += 2; r0 -= 1 } while (r0 != 0); bx lr
        let mut m = Machine::new(64);
        let p2 = {
            let mut a = Assembler::new();
            a.label("entry");
            a.push(Instr::MovsImm {
                rd: Reg::R0,
                imm: 5,
            });
            a.push(Instr::MovsImm {
                rd: Reg::R1,
                imm: 0,
            });
            a.label("loop");
            a.push(Instr::AddsImm8 {
                rdn: Reg::R1,
                imm: 2,
            });
            a.push(Instr::SubsImm8 {
                rdn: Reg::R0,
                imm: 1,
            });
            a.branch_if(Cond::Ne, "loop");
            a.push(Instr::Bx);
            a.assemble().expect("assembles")
        };
        let stats = execute(&mut m, &p2, "entry", 1000).expect("runs");
        assert_eq!(m.reg(Reg::R1), 10);
        assert_eq!(m.reg(Reg::R0), 0);
        // 2 movs + 5×(adds, subs, bne) + bx; the last bne falls through.
        assert_eq!(stats.instructions, 2 + 15 + 1);
        // Cycles: 2 + 5×(1+1) + 4 taken + 1 untaken branches... count:
        // movs 2, adds/subs 10, bne: 4 taken ×2 + 1 untaken ×1 = 9,
        // bx 2 ⇒ 23.
        assert_eq!(stats.cycles, 23);
    }

    #[test]
    fn memcpy_program_copies_memory() {
        // r0 = src, r1 = dst, r2 = word count.
        let mut a = Assembler::new();
        a.label("memcpy");
        a.label("loop");
        a.push(Instr::LdrImm {
            rt: Reg::R3,
            rn: Reg::R0,
            imm_words: 0,
        });
        a.push(Instr::StrImm {
            rt: Reg::R3,
            rn: Reg::R1,
            imm_words: 0,
        });
        a.push(Instr::AddsImm8 {
            rdn: Reg::R0,
            imm: 1,
        });
        a.push(Instr::AddsImm8 {
            rdn: Reg::R1,
            imm: 1,
        });
        a.push(Instr::SubsImm8 {
            rdn: Reg::R2,
            imm: 1,
        });
        a.branch_if(Cond::Ne, "loop");
        a.push(Instr::Bx);
        let p = a.assemble().expect("assembles");

        let mut m = Machine::new(256);
        let src = m.alloc(8);
        let dst = m.alloc(8);
        m.write_slice(src, &[1, 2, 3, 4, 5, 6, 7, 8]);
        m.set_base(Reg::R0, src);
        m.set_base(Reg::R1, dst);
        m.set_reg(Reg::R2, 8);
        execute(&mut m, &p, "memcpy", 1000).expect("runs");
        assert_eq!(m.read_slice(dst, 8), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn subroutine_call_and_return() {
        // main: r0 = 1; bl double; bl double; bx  (outermost return)
        // double: adds r0, r0; bx lr
        let mut a = Assembler::new();
        a.label("main");
        a.push(Instr::MovsImm {
            rd: Reg::R0,
            imm: 1,
        });
        a.call("double");
        a.call("double");
        a.push(Instr::Bx);
        a.label("double");
        a.push(Instr::AddsReg {
            rd: Reg::R0,
            rn: Reg::R0,
            rm: Reg::R0,
        });
        a.push(Instr::Bx);
        let p = a.assemble().expect("assembles");

        let mut m = Machine::new(64);
        let stats = execute(&mut m, &p, "main", 100).expect("runs");
        assert_eq!(m.reg(Reg::R0), 4);
        // movs, 2×(bl, adds, bx), final bx = 8 instructions.
        assert_eq!(stats.instructions, 8);
    }

    #[test]
    fn literal_pool_loads_resolve() {
        let mut a = Assembler::new();
        a.label("entry");
        a.load_literal(Reg::R0, 0x1234_5678);
        a.load_literal(Reg::R1, 0x1FF);
        a.push(Instr::Ands {
            rdn: Reg::R0,
            rm: Reg::R1,
        });
        a.push(Instr::Bx);
        let p = a.assemble().expect("assembles");
        let mut m = Machine::new(64);
        execute(&mut m, &p, "entry", 100).expect("runs");
        assert_eq!(m.reg(Reg::R0), 0x1234_5678 & 0x1FF);
    }

    #[test]
    fn runaway_loops_hit_the_step_limit() {
        let mut a = Assembler::new();
        a.label("spin");
        a.branch("spin");
        let p = a.assemble().expect("assembles");
        let mut m = Machine::new(16);
        assert_eq!(execute(&mut m, &p, "spin", 50), Err(ExecError::StepLimit));
    }

    #[test]
    fn falling_off_the_end_is_detected() {
        let mut a = Assembler::new();
        a.label("entry");
        a.push(Instr::Nop);
        let p = a.assemble().expect("assembles");
        let mut m = Machine::new(16);
        assert_eq!(
            execute(&mut m, &p, "entry", 10),
            Err(ExecError::PcOutOfRange(1))
        );
    }

    #[test]
    fn invalid_instruction_is_reported() {
        use std::collections::HashMap;
        let mut labels = HashMap::new();
        labels.insert("entry".to_string(), 0usize);
        let program = Program {
            code: vec![0b11111 << 11], // reserved encoding
            pool: vec![],
            labels,
        };
        let mut m = Machine::new(16);
        assert_eq!(
            execute(&mut m, &program, "entry", 10),
            Err(ExecError::InvalidInstruction {
                pc: 0,
                halfword: 0b11111 << 11
            })
        );
    }

    #[test]
    fn missing_literal_slot_is_reported() {
        use std::collections::HashMap;
        let mut labels = HashMap::new();
        labels.insert("entry".to_string(), 0usize);
        let program = Program {
            code: Instr::LdrLit {
                rt: Reg::R0,
                imm_words: 3,
            }
            .encode(),
            pool: vec![],
            labels,
        };
        let mut m = Machine::new(16);
        assert_eq!(
            execute(&mut m, &program, "entry", 10),
            Err(ExecError::BadLiteral { pc: 0, slot: 3 })
        );
    }

    #[test]
    #[should_panic(expected = "entry label")]
    fn unknown_entry_label_panics() {
        let program = Assembler::new().assemble().expect("empty assembles");
        let mut m = Machine::new(16);
        let _ = execute(&mut m, &program, "nope", 10);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(format!("{}", ExecError::StepLimit).contains("step limit"));
        assert!(format!("{}", ExecError::PcOutOfRange(7)).contains('7'));
        assert!(format!("{}", ExecError::MemOutOfRange { pc: 3, addr: 99 }).contains("99"));
    }

    #[test]
    fn out_of_range_load_aborts_instead_of_panicking() {
        // Regression test for the fault campaign: a corrupted base
        // register must surface as ExecError::MemOutOfRange, not as a
        // host panic that tears down the whole campaign.
        let mut a = Assembler::new();
        a.label("entry");
        a.push(Instr::LdrImm {
            rt: Reg::R1,
            rn: Reg::R0,
            imm_words: 3,
        });
        a.push(Instr::Bx);
        let p = a.assemble().expect("assembles");
        let mut m = Machine::new(16);
        m.set_reg(Reg::R0, 0xFFFF_FFFF); // "glitched" base pointer
        assert_eq!(
            execute(&mut m, &p, "entry", 10),
            Err(ExecError::MemOutOfRange {
                pc: 0,
                addr: 0xFFFF_FFFFu64 + 3
            })
        );
        // Same guard on the indexed and SP-relative forms.
        let mut a = Assembler::new();
        a.label("entry");
        a.push(Instr::StrReg {
            rt: Reg::R2,
            rn: Reg::R0,
            rm: Reg::R1,
        });
        let p = a.assemble().expect("assembles");
        let mut m = Machine::new(16);
        m.set_reg(Reg::R0, 8);
        m.set_reg(Reg::R1, 9);
        assert_eq!(
            execute_fragment(&mut m, &p, 10, |_, _| {}),
            Err(ExecError::MemOutOfRange { pc: 0, addr: 17 })
        );
        let mut a = Assembler::new();
        a.label("entry");
        a.push(Instr::LdrSp {
            rt: Reg::R0,
            imm_words: 2,
        });
        let p = a.assemble().expect("assembles");
        let mut m = Machine::new(16);
        m.set_reg(Reg::Sp, 15);
        assert_eq!(
            execute_fragment(&mut m, &p, 10, |_, _| {}),
            Err(ExecError::MemOutOfRange { pc: 0, addr: 17 })
        );
    }

    #[test]
    fn skipped_instructions_charge_nothing_and_fall_through() {
        // movs r0, #5 ; adds r0, #1 ; adds r0, #1 — skip the middle one.
        let mut a = Assembler::new();
        a.label("entry");
        a.push(Instr::MovsImm {
            rd: Reg::R0,
            imm: 5,
        });
        a.push(Instr::AddsImm8 {
            rdn: Reg::R0,
            imm: 1,
        });
        a.push(Instr::AddsImm8 {
            rdn: Reg::R0,
            imm: 1,
        });
        let p = a.assemble().expect("assembles");
        let mut m = Machine::new(16);
        let stats = execute_fragment_ctl(&mut m, &p, 10, |_, idx| {
            if idx == 1 {
                StepAction::Skip
            } else {
                StepAction::Execute
            }
        })
        .expect("runs");
        assert_eq!(m.reg(Reg::R0), 6);
        // The skipped instruction retires an index but no cycles.
        assert_eq!(stats.instructions, 3);
        assert_eq!(stats.cycles, 2);
    }

    #[test]
    fn skipping_a_taken_branch_falls_through() {
        // b past an adds; skipping the branch executes the adds.
        let mut a = Assembler::new();
        a.label("entry");
        a.branch("end");
        a.push(Instr::AddsImm8 {
            rdn: Reg::R0,
            imm: 7,
        });
        a.label("end");
        let p = a.assemble().expect("assembles");
        let mut m = Machine::new(16);
        execute_fragment_ctl(&mut m, &p, 10, |_, idx| {
            if idx == 0 {
                StepAction::Skip
            } else {
                StepAction::Execute
            }
        })
        .expect("runs");
        assert_eq!(m.reg(Reg::R0), 7);
    }

    fn looped_program() -> Program {
        // r0 = 6; do { r1 += 3; r0 -= 1 } while (r0 != 0)
        let mut a = Assembler::new();
        a.label("entry");
        a.push(Instr::MovsImm {
            rd: Reg::R0,
            imm: 6,
        });
        a.push(Instr::MovsImm {
            rd: Reg::R1,
            imm: 0,
        });
        a.label("loop");
        a.push(Instr::AddsImm8 {
            rdn: Reg::R1,
            imm: 3,
        });
        a.push(Instr::SubsImm8 {
            rdn: Reg::R0,
            imm: 1,
        });
        a.branch_if(Cond::Ne, "loop");
        a.assemble().expect("assembles")
    }

    #[test]
    fn predecoded_fragment_matches_uncached_execution() {
        let p = looped_program();
        let mut m1 = Machine::new(64);
        let s1 = execute_fragment_ctl_uncached(&mut m1, &p, 1000, |_, _| StepAction::Execute)
            .expect("runs");
        let pre = Predecoded::new(&p);
        let mut m2 = Machine::new(64);
        let s2 = execute_fragment_ctl_pre(&mut m2, &pre, 1000, |_, _| StepAction::Execute)
            .expect("runs");
        assert_eq!(s1, s2, "instruction and cycle counts must be identical");
        assert_eq!(m1.reg(Reg::R0), m2.reg(Reg::R0));
        assert_eq!(m1.reg(Reg::R1), m2.reg(Reg::R1));
        assert_eq!(m1.cycles(), m2.cycles());
        // Skips behave identically too (skip the first loop-body adds).
        let mut m1 = Machine::new(64);
        let s1 = execute_fragment_ctl_uncached(&mut m1, &p, 1000, |_, idx| {
            if idx == 2 {
                StepAction::Skip
            } else {
                StepAction::Execute
            }
        })
        .expect("runs");
        let mut m2 = Machine::new(64);
        let s2 = execute_fragment_ctl_pre(&mut m2, &pre, 1000, |_, idx| {
            if idx == 2 {
                StepAction::Skip
            } else {
                StepAction::Execute
            }
        })
        .expect("runs");
        assert_eq!(s1, s2);
        assert_eq!(m1.reg(Reg::R1), m2.reg(Reg::R1));
        assert_eq!(m1.cycles(), m2.cycles());
    }

    #[test]
    fn predecode_reproduces_every_error() {
        use std::collections::HashMap;
        // Invalid instruction.
        let program = Program {
            code: vec![0b11111 << 11],
            pool: vec![],
            labels: HashMap::new(),
        };
        let pre = Predecoded::new(&program);
        let mut m = Machine::new(16);
        assert_eq!(
            execute_fragment_ctl_pre(&mut m, &pre, 10, |_, _| StepAction::Execute),
            Err(ExecError::InvalidInstruction {
                pc: 0,
                halfword: 0b11111 << 11
            })
        );
        // Missing literal slot: still an execution-time error.
        let program = Program {
            code: Instr::LdrLit {
                rt: Reg::R0,
                imm_words: 3,
            }
            .encode(),
            pool: vec![],
            labels: HashMap::new(),
        };
        let pre = Predecoded::new(&program);
        let mut m = Machine::new(16);
        assert_eq!(
            execute_fragment_ctl_pre(&mut m, &pre, 10, |_, _| StepAction::Execute),
            Err(ExecError::BadLiteral { pc: 0, slot: 3 })
        );
        // Out-of-range memory access.
        let mut a = Assembler::new();
        a.label("entry");
        a.push(Instr::LdrImm {
            rt: Reg::R1,
            rn: Reg::R0,
            imm_words: 3,
        });
        let p = a.assemble().expect("assembles");
        let pre = Predecoded::new(&p);
        let mut m = Machine::new(16);
        m.set_reg(Reg::R0, 0xFFFF_FFFF);
        assert_eq!(
            execute_fragment_ctl_pre(&mut m, &pre, 10, |_, _| StepAction::Execute),
            Err(ExecError::MemOutOfRange {
                pc: 0,
                addr: 0xFFFF_FFFFu64 + 3
            })
        );
        // Step limit.
        let p = looped_program();
        let pre = Predecoded::new(&p);
        let mut m = Machine::new(16);
        assert_eq!(
            execute_fragment_ctl_pre(&mut m, &pre, 3, |_, _| StepAction::Execute),
            Err(ExecError::StepLimit)
        );
    }

    #[test]
    fn predecode_cache_hits_on_reuse() {
        let p = looped_program();
        let (h0, _) = predecode_cache_stats();
        let a = predecode(&p);
        let b = predecode(&p);
        let (h1, _) = predecode_cache_stats();
        assert!(h1 > h0, "second predecode of the same program must hit");
        assert!(Arc::ptr_eq(&a, &b), "cache returns the same Arc");
        // A different program is a distinct entry, not a false hit.
        let q = {
            let mut asm = Assembler::new();
            asm.label("entry");
            asm.push(Instr::Nop);
            asm.assemble().expect("assembles")
        };
        let c = predecode(&q);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    /// A hook that never runs again after index 0 — the sparse
    /// schedule under which superblocks engage.
    fn dormant(_: &mut Machine, _: usize) -> (StepAction, u64) {
        (StepAction::Execute, u64::MAX)
    }

    /// Runs `pre` twice with the scheduled executor — superblocks on
    /// and off — and asserts results and full machine state (cycles,
    /// bitwise energy, per-category totals, memory) are identical.
    fn assert_superblock_parity(
        pre: &Predecoded,
        max_steps: u64,
        ctl: impl Fn(&mut Machine, usize) -> (StepAction, u64) + Copy,
        context: &str,
    ) {
        let mut slow = Machine::new(64);
        let r1 = execute_fragment_ctl_scheduled_with(&mut slow, pre, max_steps, false, ctl);
        let mut fast = Machine::new(64);
        let r2 = execute_fragment_ctl_scheduled_with(&mut fast, pre, max_steps, true, ctl);
        assert_eq!(r1, r2, "{context}: results diverged");
        slow.assert_same_state(&fast, context);
    }

    #[test]
    fn superblocks_match_per_step_including_branch_into_block_middle() {
        // The bne of looped_program() targets "loop" — the middle of
        // the [movs, movs, adds, subs] straight-line run — and the
        // fragment ends on that branch's fall-through (a
        // fragment-final branch). Both paths must agree bit for bit.
        let pre = Predecoded::new(&looped_program());
        assert_superblock_parity(&pre, 1000, dormant, "branch into block middle");
    }

    #[test]
    fn superblocks_run_literals_and_stack_transfers() {
        let mut a = Assembler::new();
        a.label("entry");
        a.load_literal(Reg::R0, 0xDEAD_BEEF);
        a.push(Instr::Push { reg_count: 3 });
        a.load_literal(Reg::R1, 0x1FF);
        a.push(Instr::Ands {
            rdn: Reg::R0,
            rm: Reg::R1,
        });
        a.push(Instr::Pop { reg_count: 3 });
        let p = a.assemble().expect("assembles");
        let pre = Predecoded::new(&p);
        assert_superblock_parity(&pre, 100, dormant, "literals and stack transfers");
        let mut m = Machine::new(64);
        execute_fragment_ctl_scheduled_with(&mut m, &pre, 100, true, dormant).expect("runs");
        assert_eq!(m.reg(Reg::R0), 0xDEAD_BEEF & 0x1FF);
    }

    #[test]
    fn superblock_hook_lands_on_per_step_boundaries() {
        // A scheduled hook that skips one instruction — first mid-run
        // (index 2, the loop-body adds), then exactly on a block
        // boundary (index 4, the bne) — must see the same machine
        // state and produce the same outcome with blocks on or off:
        // the fault injector's window is a per-step boundary.
        let pre = Predecoded::new(&looped_program());
        for fault_at in [2usize, 4, 7] {
            let ctl = move |_: &mut Machine, idx: usize| {
                if idx == fault_at {
                    (StepAction::Skip, u64::MAX)
                } else {
                    (StepAction::Execute, fault_at as u64)
                }
            };
            assert_superblock_parity(&pre, 1000, ctl, "fault on block boundary");
        }
    }

    #[test]
    fn superblock_step_limit_fires_mid_block() {
        let pre = Predecoded::new(&looped_program());
        for limit in 1..=6 {
            assert_superblock_parity(&pre, limit, dormant, "step limit mid-block");
        }
        let mut m = Machine::new(64);
        assert_eq!(
            execute_fragment_ctl_scheduled_with(&mut m, &pre, 3, true, dormant),
            Err(ExecError::StepLimit)
        );
    }

    #[test]
    fn superblock_errors_match_per_step_positions() {
        // MemOutOfRange mid-block: the prefix retires, the faulting
        // load charges nothing, the reported pc is the per-step one.
        let mut a = Assembler::new();
        a.label("entry");
        a.push(Instr::AddsImm8 {
            rdn: Reg::R1,
            imm: 1,
        });
        a.push(Instr::LdrImm {
            rt: Reg::R2,
            rn: Reg::R0,
            imm_words: 3,
        });
        let p = a.assemble().expect("assembles");
        let pre = Predecoded::new(&p);
        let mut slow = Machine::new(16);
        slow.set_reg(Reg::R0, 0xFFFF_FFFF);
        let r1 = execute_fragment_ctl_scheduled_with(&mut slow, &pre, 10, false, dormant);
        let mut fast = Machine::new(16);
        fast.set_reg(Reg::R0, 0xFFFF_FFFF);
        let r2 = execute_fragment_ctl_scheduled_with(&mut fast, &pre, 10, true, dormant);
        assert_eq!(
            r2,
            Err(ExecError::MemOutOfRange {
                pc: 1,
                addr: 0xFFFF_FFFFu64 + 3
            })
        );
        assert_eq!(r1, r2);
        slow.assert_same_state(&fast, "MemOutOfRange mid-block");
        // A missing literal slot is never block-runnable: BadLiteral
        // fires from per-step dispatch at the same retired index.
        use std::collections::HashMap;
        let program = Program {
            code: [
                Instr::MovsImm {
                    rd: Reg::R0,
                    imm: 1,
                }
                .encode(),
                Instr::LdrLit {
                    rt: Reg::R0,
                    imm_words: 3,
                }
                .encode(),
            ]
            .concat(),
            pool: vec![],
            labels: HashMap::new(),
        };
        let pre = Predecoded::new(&program);
        let mut m = Machine::new(16);
        assert_eq!(
            execute_fragment_ctl_scheduled_with(&mut m, &pre, 10, true, dormant),
            Err(ExecError::BadLiteral { pc: 1, slot: 3 })
        );
    }

    #[cfg(feature = "trace")]
    #[test]
    fn superblocks_fall_back_per_step_while_tracing() {
        // An armed trace needs every instruction at its own position,
        // so superblock execution must defer to per-step dispatch —
        // and still match the blocks-off run bit for bit.
        let pre = Predecoded::new(&looped_program());
        let mut slow = Machine::new(64);
        slow.start_trace();
        execute_fragment_ctl_scheduled_with(&mut slow, &pre, 1000, false, dormant).expect("runs");
        let t1 = slow.take_trace();
        let mut fast = Machine::new(64);
        fast.start_trace();
        execute_fragment_ctl_scheduled_with(&mut fast, &pre, 1000, true, dormant).expect("runs");
        let t2 = fast.take_trace();
        assert_eq!(t1.events.len(), t2.events.len());
        assert!(!t2.events.is_empty(), "trace captured despite blocks on");
        slow.assert_same_state(&fast, "trace fallback");
    }

    #[test]
    fn multiprecision_add_program() {
        // 2-word add with carry: r0 = &a, r1 = &b, r2 = &out.
        let mut a = Assembler::new();
        a.label("add64");
        a.push(Instr::LdrImm {
            rt: Reg::R3,
            rn: Reg::R0,
            imm_words: 0,
        });
        a.push(Instr::LdrImm {
            rt: Reg::R4,
            rn: Reg::R1,
            imm_words: 0,
        });
        a.push(Instr::AddsReg {
            rd: Reg::R3,
            rn: Reg::R3,
            rm: Reg::R4,
        });
        a.push(Instr::StrImm {
            rt: Reg::R3,
            rn: Reg::R2,
            imm_words: 0,
        });
        a.push(Instr::LdrImm {
            rt: Reg::R3,
            rn: Reg::R0,
            imm_words: 1,
        });
        a.push(Instr::LdrImm {
            rt: Reg::R4,
            rn: Reg::R1,
            imm_words: 1,
        });
        a.push(Instr::Adcs {
            rdn: Reg::R3,
            rm: Reg::R4,
        });
        a.push(Instr::StrImm {
            rt: Reg::R3,
            rn: Reg::R2,
            imm_words: 1,
        });
        a.push(Instr::Bx);
        let p = a.assemble().expect("assembles");

        let mut m = Machine::new(64);
        let (pa, pb, po) = (m.alloc(2), m.alloc(2), m.alloc(2));
        let a_val = 0xFFFF_FFFF_0000_0001u64;
        let b_val = 0x0000_0001_FFFF_FFFFu64;
        m.write_slice(pa, &[a_val as u32, (a_val >> 32) as u32]);
        m.write_slice(pb, &[b_val as u32, (b_val >> 32) as u32]);
        m.set_base(Reg::R0, pa);
        m.set_base(Reg::R1, pb);
        m.set_base(Reg::R2, po);
        execute(&mut m, &p, "add64", 100).expect("runs");
        let out = m.read_slice(po, 2);
        let got = out[0] as u64 | (out[1] as u64) << 32;
        assert_eq!(got, a_val.wrapping_add(b_val));
    }
}
