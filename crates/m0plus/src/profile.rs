//! Operation categories for cycle attribution (the paper's Table 7).
//!
//! The paper reports where a point multiplication spends its cycles:
//! TNAF representation, TNAF precomputation, multiply, multiply
//! precomputation (look-up-table generation inside each field
//! multiplication), square, inversion and support functions. Kernels mark
//! their work with [`Machine::in_category`] and the machine accumulates a
//! [`CategoryTotals`] per category.
//!
//! [`Machine::in_category`]: crate::machine::Machine::in_category

/// The operation categories of the paper's Table 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Converting the scalar `k` into its (width-w) τ-adic NAF.
    TnafRepresentation,
    /// Computing the per-multiplication table of small odd multiples
    /// `α_u · P` (zero for fixed-point multiplication, where the table is
    /// precomputed offline).
    TnafPrecomputation,
    /// The main accumulation of field multiplications.
    Multiply,
    /// Generation of the López-Dahab window look-up table inside each
    /// field multiplication.
    MultiplyPrecomputation,
    /// Field squarings.
    Square,
    /// Field inversions.
    Inversion,
    /// Everything else: copies, comparisons, reductions standing alone,
    /// coordinate bookkeeping.
    Support,
}

impl Category {
    /// All categories, in the paper's Table 7 row order (with `Support`
    /// last).
    pub const ALL: [Category; 7] = [
        Category::TnafRepresentation,
        Category::TnafPrecomputation,
        Category::Multiply,
        Category::MultiplyPrecomputation,
        Category::Square,
        Category::Inversion,
        Category::Support,
    ];

    /// Dense index for per-category arrays.
    pub(crate) const fn index(self) -> usize {
        match self {
            Category::TnafRepresentation => 0,
            Category::TnafPrecomputation => 1,
            Category::Multiply => 2,
            Category::MultiplyPrecomputation => 3,
            Category::Square => 4,
            Category::Inversion => 5,
            Category::Support => 6,
        }
    }

    /// The row label used by the paper.
    pub const fn label(self) -> &'static str {
        match self {
            Category::TnafRepresentation => "TNAF Representation",
            Category::TnafPrecomputation => "TNAF Precomputation",
            Category::Multiply => "Multiply",
            Category::MultiplyPrecomputation => "Multiply Precomputation",
            Category::Square => "Square",
            Category::Inversion => "Inversion",
            Category::Support => "Support functions",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Cycles and energy attributed to one [`Category`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CategoryTotals {
    /// Cycles spent in the category.
    pub cycles: u64,
    /// Energy spent in the category, picojoules.
    pub energy_pj: f64,
}

impl CategoryTotals {
    /// Component-wise difference (`self` − `earlier`).
    #[must_use]
    pub fn delta(self, earlier: CategoryTotals) -> CategoryTotals {
        CategoryTotals {
            cycles: self.cycles - earlier.cycles,
            energy_pj: self.energy_pj - earlier.energy_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_order() {
        for (i, c) in Category::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn labels_match_paper_rows() {
        assert_eq!(Category::TnafRepresentation.label(), "TNAF Representation");
        assert_eq!(
            Category::MultiplyPrecomputation.label(),
            "Multiply Precomputation"
        );
        assert_eq!(Category::Support.label(), "Support functions");
    }

    #[test]
    fn delta_subtracts() {
        let a = CategoryTotals {
            cycles: 10,
            energy_pj: 5.0,
        };
        let b = CategoryTotals {
            cycles: 4,
            energy_pj: 2.0,
        };
        let d = a.delta(b);
        assert_eq!(d.cycles, 6);
        assert!((d.energy_pj - 3.0).abs() < 1e-12);
    }
}
