//! Run reports: cycles, instruction mix, energy, time and average power.

use crate::cost::InstrClass;
use crate::energy::EnergyModel;
use crate::profile::{Category, CategoryTotals};

/// Dense per-[`InstrClass`] instruction counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassCounts {
    counts: [u64; InstrClass::ALL.len()],
}

impl ClassCounts {
    /// Increments the counter for `class`.
    #[inline]
    pub fn bump(&mut self, class: InstrClass) {
        self.counts[class.index()] += 1;
    }

    /// [`ClassCounts::bump`] by dense class index (precomputed by the
    /// superblock lowering, see [`crate::exec`]).
    #[inline]
    pub(crate) fn bump_idx(&mut self, idx: usize) {
        self.counts[idx] += 1;
    }

    /// Number of instructions of `class` executed.
    pub fn count(&self, class: InstrClass) -> u64 {
        self.counts[class.index()]
    }

    /// Total instructions across all classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates over `(class, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (InstrClass, u64)> + '_ {
        InstrClass::ALL
            .iter()
            .map(|&c| (c, self.count(c)))
            .filter(|&(_, n)| n > 0)
    }

    /// Component-wise difference (`self` − `earlier`).
    ///
    /// # Panics
    ///
    /// Panics if any counter of `earlier` exceeds the corresponding
    /// counter of `self` (the snapshots were taken out of order).
    #[must_use]
    pub fn delta(&self, earlier: &ClassCounts) -> ClassCounts {
        let mut out = ClassCounts::default();
        for (i, c) in out.counts.iter_mut().enumerate() {
            *c = self.counts[i]
                .checked_sub(earlier.counts[i])
                .expect("snapshot taken after the end state");
        }
        out
    }
}

/// A point-in-time capture of a machine's counters.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Cycles executed at capture time.
    pub cycles: u64,
    /// Energy consumed at capture time, picojoules.
    pub energy_pj: f64,
    /// Instruction counts at capture time.
    pub counts: ClassCounts,
    /// Per-category totals at capture time, indexed like [`Category::ALL`].
    pub by_category: Vec<CategoryTotals>,
}

/// Everything the paper's measurement rig would report about one run:
/// cycle count, execution time at the configured clock, energy and average
/// power, plus the instruction mix and the per-category split.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Total cycles.
    pub cycles: u64,
    /// Total energy in picojoules.
    pub energy_pj: f64,
    /// Instruction mix.
    pub counts: ClassCounts,
    /// Per-category cycle/energy totals in [`Category::ALL`] order.
    pub by_category: Vec<(Category, CategoryTotals)>,
    /// Clock frequency assumed for time/power derivation.
    pub clock_hz: u64,
}

impl RunReport {
    /// Builds a report from two snapshots of the same machine.
    pub fn from_delta(start: &Snapshot, end: &Snapshot, clock_hz: u64) -> RunReport {
        let by_category = Category::ALL
            .iter()
            .map(|&c| {
                let i = c as usize;
                let _ = i;
                let idx = Category::ALL.iter().position(|&x| x == c).expect("in ALL");
                (c, end.by_category[idx].delta(start.by_category[idx]))
            })
            .collect();
        RunReport {
            cycles: end.cycles - start.cycles,
            energy_pj: end.energy_pj - start.energy_pj,
            counts: end.counts.delta(&start.counts),
            by_category,
            clock_hz,
        }
    }

    /// Execution time in milliseconds at the report's clock.
    pub fn time_ms(&self) -> f64 {
        self.cycles as f64 / self.clock_hz as f64 * 1e3
    }

    /// Energy in microjoules.
    pub fn energy_uj(&self) -> f64 {
        self.energy_pj * 1e-6
    }

    /// Average power in microwatts.
    pub fn average_power_uw(&self) -> f64 {
        EnergyModel::average_power_uw(self.energy_pj, self.cycles, self.clock_hz)
    }

    /// Cycles attributed to `category`.
    pub fn category_cycles(&self, category: Category) -> u64 {
        self.by_category
            .iter()
            .find(|(c, _)| *c == category)
            .map(|(_, t)| t.cycles)
            .unwrap_or(0)
    }

    /// Sums two reports (e.g. averaging runs or composing phases).
    #[must_use]
    pub fn merged(&self, other: &RunReport) -> RunReport {
        let mut counts = ClassCounts::default();
        for c in InstrClass::ALL {
            for _ in 0..(self.counts.count(c) + other.counts.count(c)) {
                counts.bump(c);
            }
        }
        let by_category = self
            .by_category
            .iter()
            .zip(&other.by_category)
            .map(|((c, a), (c2, b))| {
                debug_assert_eq!(c, c2);
                (
                    *c,
                    CategoryTotals {
                        cycles: a.cycles + b.cycles,
                        energy_pj: a.energy_pj + b.energy_pj,
                    },
                )
            })
            .collect();
        RunReport {
            cycles: self.cycles + other.cycles,
            energy_pj: self.energy_pj + other.energy_pj,
            counts,
            by_category,
            clock_hz: self.clock_hz,
        }
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cycles: {}  time: {:.3} ms  energy: {:.3} µJ  power: {:.1} µW",
            self.cycles,
            self.time_ms(),
            self.energy_uj(),
            self.average_power_uw()
        )?;
        for (c, t) in &self.by_category {
            if t.cycles > 0 {
                writeln!(f, "  {:<26} {:>10} cycles", c.label(), t.cycles)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, Reg};

    #[test]
    fn class_counts_bump_and_total() {
        let mut c = ClassCounts::default();
        c.bump(InstrClass::Ldr);
        c.bump(InstrClass::Ldr);
        c.bump(InstrClass::Eor);
        assert_eq!(c.count(InstrClass::Ldr), 2);
        assert_eq!(c.total(), 3);
        let nonzero: Vec<_> = c.iter().collect();
        assert_eq!(nonzero, vec![(InstrClass::Ldr, 2), (InstrClass::Eor, 1)]);
    }

    #[test]
    #[should_panic(expected = "snapshot taken after")]
    fn delta_rejects_reversed_snapshots() {
        let mut a = ClassCounts::default();
        let mut b = ClassCounts::default();
        b.bump(InstrClass::Add);
        b.bump(InstrClass::Add);
        a.bump(InstrClass::Add);
        let _ = a.delta(&b);
    }

    #[test]
    fn report_time_and_power_at_48mhz() {
        // 48e6 cycles = 1 s. 48e6 EORs = 48e6 * 12.43 pJ.
        let mut m = Machine::new(16);
        m.movs_imm(Reg::R0, 1);
        m.movs_imm(Reg::R1, 1);
        let snap = m.snapshot();
        for _ in 0..1000 {
            m.eors(Reg::R0, Reg::R1);
        }
        let r = m.report_since(&snap);
        assert_eq!(r.cycles, 1000);
        assert!((r.time_ms() - 1000.0 / 48_000_000.0 * 1e3).abs() < 1e-12);
        assert!((r.average_power_uw() - 596.64).abs() < 0.01);
    }

    #[test]
    fn merged_adds_components() {
        let mut m = Machine::new(16);
        m.movs_imm(Reg::R0, 1);
        let s0 = m.snapshot();
        m.in_category(crate::Category::Square, |m| m.movs_imm(Reg::R1, 2));
        let r1 = m.report_since(&s0);
        let s1 = m.snapshot();
        m.in_category(crate::Category::Square, |m| {
            m.ldr_const(Reg::R2, 3);
        });
        let r2 = m.report_since(&s1);
        let merged = r1.merged(&r2);
        assert_eq!(merged.cycles, 3);
        assert_eq!(merged.category_cycles(crate::Category::Square), 3);
        assert_eq!(merged.counts.total(), 2);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Machine::new(16);
        let s = format!("{}", m.report());
        assert!(s.contains("cycles"));
    }
}
