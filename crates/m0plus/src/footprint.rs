//! Loop-aware flash footprint of a recorded fragment.
//!
//! The code backend linearises host-driven control flow: a loop that
//! ran 200 times appears 200 times in the recorded trace, so
//! [`Program::size_bytes`] reports the flash a *fully unrolled* build
//! would need. For straight-line kernels (the paper's unrolled
//! multiplier and squarer) that is exactly the deployed footprint, but
//! for the looped EEA inversion it wildly overstates what a real build
//! flashes: the device stores each loop body once and branches back.
//!
//! [`dedup`] recovers a loop-aware footprint from the halfword stream
//! alone, with no knowledge of the original source structure. It is a
//! greedy LZ77-style pass over the code image: at each halfword
//! position it looks for the longest earlier *repeat* of the upcoming
//! halfwords (4-gram hash chains, as in DEFLATE); a repeat of at least
//! [`MIN_MATCH_HALFWORDS`] is charged [`MATCH_COST_HALFWORDS`]
//! halfwords — the `B`/`BL` pair a rolled build would spend to reach
//! the shared body — instead of its full length. Literal halfwords are
//! charged as themselves, and the literal pool (already deduplicated by
//! the assembler) is carried through unchanged.
//!
//! The result is an upper bound on a rolled build's flash: real
//! compilers also share partially-overlapping tails and use loop
//! counters instead of branch chains, so a hand-rolled EEA would be
//! smaller still. The point of the number is honest accounting — the
//! unrolled figure answers "how big is the recorded trace", the
//! deduplicated figure answers "how big is the kernel".

use crate::asm::Program;
use std::collections::HashMap;

/// Shortest repeat worth replacing with a branch to shared code. Below
/// this, the `B`+`BL` overhead of reaching a shared body outweighs the
/// saved halfwords.
pub const MIN_MATCH_HALFWORDS: usize = 8;

/// Halfwords charged per replaced repeat: a `BL` into the shared body
/// plus its amortised `BX` return (both Thumb-16 in this model's
/// encoding, and `BL` is counted at its real 2-halfword width).
pub const MATCH_COST_HALFWORDS: usize = 3;

/// Order of the rolling match seed: matches are found by hashing every
/// 4 consecutive halfwords, DEFLATE-style.
const SEED: usize = 4;

/// What the dedup pass found in one code image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DedupReport {
    /// Halfwords in the recorded (unrolled) code image.
    pub raw_halfwords: usize,
    /// Halfwords a rolled build would flash: literals plus
    /// [`MATCH_COST_HALFWORDS`] per replaced repeat.
    pub deduped_halfwords: usize,
    /// Repeats of at least [`MIN_MATCH_HALFWORDS`] that were replaced.
    pub matches: usize,
    /// Literal-pool words (identical in both accountings).
    pub pool_words: usize,
}

impl DedupReport {
    /// Unrolled flash footprint in bytes (code + pool) — identical to
    /// [`Program::size_bytes`].
    pub fn raw_bytes(&self) -> usize {
        2 * self.raw_halfwords + 4 * self.pool_words
    }

    /// Loop-aware flash footprint in bytes (deduplicated code + pool).
    pub fn deduped_bytes(&self) -> usize {
        2 * self.deduped_halfwords + 4 * self.pool_words
    }

    /// `raw_bytes / deduped_bytes` as a float (1.0 for straight-line
    /// code with no repeats; large for heavily looped kernels).
    pub fn compression(&self) -> f64 {
        if self.deduped_bytes() == 0 {
            return 1.0;
        }
        self.raw_bytes() as f64 / self.deduped_bytes() as f64
    }
}

fn seed_hash(code: &[u16], at: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &hw in &code[at..at + SEED] {
        h ^= hw as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Longest common run of `code` starting at the two positions (the
/// second strictly later), capped so a match never runs past the end.
fn match_len(code: &[u16], earlier: usize, here: usize) -> usize {
    let cap = code.len() - here;
    let mut n = 0;
    while n < cap && code[earlier + n] == code[here + n] {
        n += 1;
    }
    n
}

/// Computes the loop-aware footprint of an assembled program (see the
/// [module docs](self) for the model).
pub fn dedup(program: &Program) -> DedupReport {
    let code = &program.code;
    let mut report = DedupReport {
        raw_halfwords: code.len(),
        deduped_halfwords: 0,
        matches: 0,
        pool_words: program.pool.len(),
    };
    // Hash chains: seed hash → positions already emitted, newest first.
    let mut chains: HashMap<u64, Vec<usize>> = HashMap::new();
    // Bound the work per position: DEFLATE-style chain truncation. The
    // recorded kernels repeat a handful of loop bodies thousands of
    // times, so even a short chain finds the body again immediately.
    const MAX_CHAIN: usize = 32;

    let mut pos = 0usize;
    while pos < code.len() {
        let mut best = 0usize;
        if pos + SEED <= code.len() {
            if let Some(cands) = chains.get(&seed_hash(code, pos)) {
                for &cand in cands.iter().rev().take(MAX_CHAIN) {
                    let n = match_len(code, cand, pos);
                    if n > best {
                        best = n;
                    }
                }
            }
        }
        let step = if best >= MIN_MATCH_HALFWORDS {
            report.deduped_halfwords += MATCH_COST_HALFWORDS;
            report.matches += 1;
            best
        } else {
            report.deduped_halfwords += 1;
            1
        };
        // Index every position we are consuming so later repeats can
        // match into the middle of this run too.
        for p in pos..(pos + step).min(code.len()) {
            if p + SEED <= code.len() {
                chains.entry(seed_hash(code, p)).or_default().push(p);
            }
        }
        pos += step;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::isa::Instr;
    use crate::Reg;

    fn program_of(halfwords: &[u16]) -> Program {
        Program {
            code: halfwords.to_vec(),
            pool: Vec::new(),
            labels: Default::default(),
        }
    }

    #[test]
    fn straight_line_code_is_not_compressed() {
        // 32 distinct halfwords: no repeats, footprint unchanged.
        let code: Vec<u16> = (0..32u16).map(|i| 0x1000 | i).collect();
        let r = dedup(&program_of(&code));
        assert_eq!(r.deduped_halfwords, r.raw_halfwords);
        assert_eq!(r.matches, 0);
        assert_eq!(r.compression(), 1.0);
    }

    #[test]
    fn unrolled_loop_collapses_to_one_body() {
        // A 16-halfword "body" repeated 10 times, as a recorded loop.
        let body: Vec<u16> = (0..16u16).map(|i| 0x2000 | i).collect();
        let code: Vec<u16> = body.iter().cycle().take(16 * 10).copied().collect();
        let r = dedup(&program_of(&code));
        assert_eq!(r.raw_halfwords, 160);
        // One literal body + 9 replaced repeats. Consecutive repeats
        // merge into maximal matches, so the count can be lower, but
        // the footprint must be near one body.
        assert!(
            r.deduped_halfwords <= 16 + 9 * MATCH_COST_HALFWORDS,
            "{} halfwords",
            r.deduped_halfwords
        );
        assert!(r.matches >= 1);
        assert!(r.compression() > 3.0, "{}", r.compression());
    }

    #[test]
    fn short_repeats_stay_literal() {
        // A 4-halfword pattern repeated: below MIN_MATCH… except the
        // *concatenation* of repeats is itself a long match, which is
        // exactly what a rolled loop body looks like. Use a pattern
        // broken up by unique separators so no long match exists.
        let mut code = Vec::new();
        for i in 0..8u16 {
            code.extend_from_slice(&[0xAAAA, 0xBBBB, 0xCCCC]);
            code.push(0x4000 | i); // unique separator
        }
        let r = dedup(&program_of(&code));
        assert_eq!(r.matches, 0, "no repeat reaches MIN_MATCH");
        assert_eq!(r.deduped_halfwords, r.raw_halfwords);
    }

    #[test]
    fn pool_words_are_carried_through() {
        let mut a = Assembler::new();
        a.load_literal(Reg::R0, 0xDEAD_BEEF);
        a.load_literal(Reg::R1, 0xFACE_FEED);
        a.push(Instr::Bx);
        let p = a.assemble().unwrap();
        let r = dedup(&p);
        assert_eq!(r.pool_words, 2);
        assert_eq!(r.raw_bytes(), p.size_bytes());
        assert_eq!(r.deduped_bytes(), p.size_bytes(), "nothing to dedup");
    }

    #[test]
    fn empty_program_is_empty() {
        let r = dedup(&program_of(&[]));
        assert_eq!(r.raw_bytes(), 0);
        assert_eq!(r.deduped_bytes(), 0);
        assert_eq!(r.compression(), 1.0);
    }
}
