//! A small two-pass Thumb assembler: labels, branch fix-ups, `BL`
//! calls and PC-relative literal pools, producing an executable
//! [`Program`] image for the [`Executor`](crate::exec).
//!
//! Together with [`crate::exec`] this closes the loop the cost model
//! opens: a routine can be written once as assembly, encoded to the
//! exact halfwords a Cortex-M0+ would fetch, and then *executed from
//! those halfwords* with the same cycle/energy accounting as the
//! method-call kernels.

use crate::isa::Instr;
use crate::machine::Cond;
use std::collections::HashMap;
use std::fmt;

/// One assembler item.
#[derive(Debug, Clone)]
enum Item {
    /// A zero-size placeholder carrying an extra label.
    PlainMarker,
    /// A fully-encoded, position-independent instruction.
    Plain(Instr),
    /// Conditional or unconditional branch to a label.
    Branch { cond: Option<Cond>, target: String },
    /// Call to a label (32-bit `BL`).
    Call(String),
    /// PC-relative literal load; the pool slot is allocated at
    /// assembly time.
    Literal { rt: crate::Reg, value: u32 },
}

/// Assembly errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A branch target was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A conditional branch target is beyond ±255 halfwords.
    BranchOutOfRange(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label {l:?}"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label {l:?}"),
            AsmError::BranchOutOfRange(l) => write!(f, "branch to {l:?} out of range"),
        }
    }
}

impl std::error::Error for AsmError {}

/// An assembled program: Thumb halfwords plus the literal pool and the
/// resolved label map (halfword indices).
#[derive(Debug, Clone)]
pub struct Program {
    /// The code image, halfword per element (BL takes two).
    pub code: Vec<u16>,
    /// Literal pool appended after the code (word values).
    pub pool: Vec<u32>,
    /// Label → halfword index.
    pub labels: HashMap<String, usize>,
}

impl Program {
    /// Flash footprint in bytes (code + pool).
    pub fn size_bytes(&self) -> usize {
        2 * self.code.len() + 4 * self.pool.len()
    }
}

/// The two-pass assembler. Push instructions and labels in order, then
/// [`Assembler::assemble`].
///
/// ```
/// use m0plus::asm::Assembler;
/// use m0plus::{Instr, Reg};
///
/// let mut a = Assembler::new();
/// a.label("loop");
/// a.push(Instr::SubsImm8 { rdn: Reg::R0, imm: 1 });
/// a.branch_if(m0plus::Cond::Ne, "loop");
/// a.push(Instr::Bx);
/// let program = a.assemble()?;
/// assert_eq!(program.code.len(), 3);
/// # Ok::<(), m0plus::asm::AsmError>(())
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    items: Vec<(Option<String>, Item)>,
    pending_label: Vec<String>,
}

impl Assembler {
    /// An empty assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: &str) {
        self.pending_label.push(name.to_string());
    }

    fn push_item(&mut self, item: Item) {
        let label = self.pending_label.pop();
        // Multiple labels on one spot: keep them all by emitting
        // zero-size aliases (handled in assemble()).
        while let Some(extra) = self.pending_label.pop() {
            self.items.push((Some(extra), Item::PlainMarker));
        }
        self.items.push((label, item));
    }

    /// Appends a position-independent instruction.
    ///
    /// # Panics
    ///
    /// Panics on `B`/`BCond`/`Bl`/`LdrLit` — those need targets; use
    /// [`Assembler::branch`], [`Assembler::branch_if`],
    /// [`Assembler::call`] or [`Assembler::load_literal`].
    pub fn push(&mut self, instr: Instr) {
        assert!(
            !matches!(
                instr,
                Instr::B | Instr::BCond { .. } | Instr::Bl | Instr::LdrLit { .. }
            ),
            "use the label-aware helpers for control flow and literals"
        );
        self.push_item(Item::Plain(instr));
    }

    /// Unconditional branch to `target`.
    pub fn branch(&mut self, target: &str) {
        self.push_item(Item::Branch {
            cond: None,
            target: target.to_string(),
        });
    }

    /// Conditional branch to `target`.
    pub fn branch_if(&mut self, cond: Cond, target: &str) {
        self.push_item(Item::Branch {
            cond: Some(cond),
            target: target.to_string(),
        });
    }

    /// `BL target` — call a label.
    pub fn call(&mut self, target: &str) {
        self.push_item(Item::Call(target.to_string()));
    }

    /// Loads a 32-bit constant from the literal pool.
    pub fn load_literal(&mut self, rt: crate::Reg, value: u32) {
        self.push_item(Item::Literal { rt, value });
    }

    /// Resolves labels and produces the program image.
    ///
    /// # Errors
    ///
    /// Reports undefined/duplicate labels and out-of-range conditional
    /// branches.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        // Pass 1: lay out halfword offsets and collect labels.
        let mut labels: HashMap<String, usize> = HashMap::new();
        let mut offsets = Vec::with_capacity(self.items.len());
        let mut pc = 0usize;
        for (label, item) in &self.items {
            if let Some(l) = label {
                if labels.insert(l.clone(), pc).is_some() {
                    return Err(AsmError::DuplicateLabel(l.clone()));
                }
            }
            offsets.push(pc);
            pc += match item {
                Item::PlainMarker => 0,
                Item::Call(_) => 2,
                Item::Plain(i) => i.encode().len(),
                Item::Branch { .. } | Item::Literal { .. } => 1,
            };
        }
        // Trailing labels (e.g. "end").
        for l in self.pending_label.iter() {
            if labels.insert(l.clone(), pc).is_some() {
                return Err(AsmError::DuplicateLabel(l.clone()));
            }
        }
        let code_len = pc;

        // Pass 2: emit with resolved offsets; literals index the pool
        // placed right after the code.
        let mut code = Vec::with_capacity(code_len);
        let mut pool: Vec<u32> = Vec::new();
        for (idx, (_, item)) in self.items.iter().enumerate() {
            let here = offsets[idx];
            match item {
                Item::PlainMarker => {}
                Item::Plain(i) => code.extend(i.encode()),
                Item::Literal { rt, value } => {
                    let slot = pool.iter().position(|&v| v == *value).unwrap_or_else(|| {
                        pool.push(*value);
                        pool.len() - 1
                    });
                    // Encoded with the *pool slot index* in the imm8
                    // field; the executor resolves pool-relative.
                    code.extend(
                        Instr::LdrLit {
                            rt: *rt,
                            imm_words: slot as u32,
                        }
                        .encode(),
                    );
                }
                Item::Branch { cond, target } => {
                    let to = *labels
                        .get(target)
                        .ok_or_else(|| AsmError::UndefinedLabel(target.clone()))?;
                    // Offset relative to PC+2 halfwords (pipeline), in
                    // halfwords.
                    let rel = to as i64 - (here as i64 + 2);
                    match cond {
                        Some(c) => {
                            if !(-128..=127).contains(&rel) {
                                return Err(AsmError::BranchOutOfRange(target.clone()));
                            }
                            let base = Instr::BCond { cond: *c }.encode()[0];
                            code.push(base | (rel as u8) as u16);
                        }
                        None => {
                            if !(-1024..=1023).contains(&rel) {
                                return Err(AsmError::BranchOutOfRange(target.clone()));
                            }
                            let base = Instr::B.encode()[0];
                            code.push(base | (rel as u16 & 0x7FF));
                        }
                    }
                }
                Item::Call(target) => {
                    let to = *labels
                        .get(target)
                        .ok_or_else(|| AsmError::UndefinedLabel(target.clone()))?;
                    let rel = to as i64 - (here as i64 + 2);
                    code.extend(encode_bl(rel as i32));
                }
            }
        }
        Ok(Program { code, pool, labels })
    }
}

/// Encodes `BL` with a halfword offset (T1 encoding: S:imm10 / J1 J2
/// imm11 with I1 = NOT(J1 XOR S), I2 = NOT(J2 XOR S)).
pub fn encode_bl(offset_halfwords: i32) -> [u16; 2] {
    let imm = offset_halfwords; // offset in halfwords = bytes/2
    let s = ((imm >> 23) & 1) as u16;
    let i1 = ((imm >> 22) & 1) as u16;
    let i2 = ((imm >> 21) & 1) as u16;
    let imm10 = ((imm >> 11) & 0x3FF) as u16;
    let imm11 = (imm & 0x7FF) as u16;
    let j1 = (!(i1 ^ s)) & 1;
    let j2 = (!(i2 ^ s)) & 1;
    let first = 0b11110 << 11 | s << 10 | imm10;
    let second = 0b11 << 14 | j1 << 13 | 1 << 12 | j2 << 11 | imm11;
    [first, second]
}

/// Decodes a `BL` pair back to its halfword offset.
pub fn decode_bl(first: u16, second: u16) -> i32 {
    let s = ((first >> 10) & 1) as i32;
    let imm10 = (first & 0x3FF) as i32;
    let j1 = ((second >> 13) & 1) as i32;
    let j2 = ((second >> 11) & 1) as i32;
    let imm11 = (second & 0x7FF) as i32;
    let i1 = (!(j1 ^ s)) & 1;
    let i2 = (!(j2 ^ s)) & 1;
    let raw = (s << 23) | (i1 << 22) | (i2 << 21) | (imm10 << 11) | imm11;
    // Sign-extend from bit 23.
    (raw << 8) >> 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Instr, Reg};

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Assembler::new();
        a.push(Instr::MovsImm {
            rd: Reg::R0,
            imm: 3,
        });
        a.label("loop");
        a.push(Instr::SubsImm8 {
            rdn: Reg::R0,
            imm: 1,
        });
        a.branch_if(Cond::Ne, "loop");
        a.branch("end");
        a.push(Instr::Nop); // skipped
        a.label("end");
        a.push(Instr::Bx);
        let p = a.assemble().expect("assembles");
        assert_eq!(p.labels["loop"], 1);
        assert_eq!(p.labels["end"], 5);
        // bne loop: at index 2, target 1 → rel = 1 - 4 = -3 → 0xFD.
        assert_eq!(p.code[2] & 0xFF, 0xFD);
    }

    #[test]
    fn undefined_and_duplicate_labels_error() {
        let mut a = Assembler::new();
        a.branch("nowhere");
        assert_eq!(
            a.assemble().err(),
            Some(AsmError::UndefinedLabel("nowhere".into()))
        );

        let mut b = Assembler::new();
        b.label("x");
        b.push(Instr::Nop);
        b.label("x");
        b.push(Instr::Nop);
        assert_eq!(
            b.assemble().err(),
            Some(AsmError::DuplicateLabel("x".into()))
        );
    }

    #[test]
    fn literal_pool_dedupes() {
        let mut a = Assembler::new();
        a.load_literal(Reg::R0, 0xDEADBEEF);
        a.load_literal(Reg::R1, 0x1FF);
        a.load_literal(Reg::R2, 0xDEADBEEF);
        a.push(Instr::Bx);
        let p = a.assemble().expect("assembles");
        assert_eq!(p.pool, vec![0xDEADBEEF, 0x1FF]);
        assert_eq!(p.size_bytes(), 4 * 2 + 2 * 4);
    }

    #[test]
    fn bl_offset_roundtrip() {
        for off in [-5000i32, -3, -1, 0, 1, 4, 4095, 100_000] {
            let [f, s] = encode_bl(off);
            assert_eq!(decode_bl(f, s), off, "offset {off}");
        }
    }

    #[test]
    #[should_panic(expected = "label-aware helpers")]
    fn raw_branch_push_is_rejected() {
        Assembler::new().push(Instr::B);
    }

    #[test]
    fn branch_out_of_range_detected() {
        let mut a = Assembler::new();
        a.label("start");
        for _ in 0..200 {
            a.push(Instr::Nop);
        }
        a.branch_if(Cond::Eq, "start");
        assert_eq!(
            a.assemble().err(),
            Some(AsmError::BranchOutOfRange("start".into()))
        );
    }
}
