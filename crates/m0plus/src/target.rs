//! Pluggable target cost models: the per-core tables behind the
//! machine's cycle and energy accounting.
//!
//! The seed of this crate welded every number to one core: the
//! Cortex-M0+ cycle table lived in [`InstrClass::cycles`] and the
//! Table-3 pJ/cycle figures in [`EnergyModel::cortex_m0plus`]. This
//! module extracts both behind one trait, [`TargetModel`], so that the
//! whole recorded-kernel stack — the [`Machine`](crate::Machine), the
//! predecoded/superblock executor (whose per-op cycle constants are
//! materialised **per target** at lowering time, see
//! [`crate::exec::predecode_for`]), the fault and verification
//! campaigns, and the bench/export binaries — can re-cost the same
//! kernels under a family of cores.
//!
//! The concrete registry ships four targets:
//!
//! * [`cortex_m0plus`] — the paper's platform; **bit-identical** to the
//!   seed model (same cycle table, same Table-3 energies, 48 MHz).
//! * [`cortex_m0`] — the older 3-stage sibling: taken branches refill a
//!   longer pipeline (3 cycles, `BL` 4); everything else matches.
//! * [`cortex_m0plus_mul32`] — the M0+'s iterative-multiplier synthesis
//!   option (`MULS` = 32 cycles), the trade silicon vendors take for
//!   area; only `MUL`-bearing kernels get slower.
//! * [`cortex_m3`] — a larger ARMv7-M class estimate: buffered stores,
//!   3-cycle taken branches, and a scaled energy table.
//!
//! Only `cortex-m0plus` is *measured* (the paper's Table 3); the other
//! entries are documented estimates, each annotated inline where its
//! tables are declared. [`core::crossplatform`]-style consumers
//! re-cost recorded kernels under each entry instead of citing
//! constants.

use crate::cost::InstrClass;
use crate::energy::{table3, EnergyModel};
use std::sync::OnceLock;

/// A dense per-[`InstrClass`] cycle table, indexed by
/// `InstrClass::index()` (the order of [`InstrClass::ALL`]).
pub type CycleTable = [u64; InstrClass::ALL.len()];

/// A dense per-[`InstrClass`] energy table in pJ/cycle, indexed like
/// [`CycleTable`].
pub type EnergyTable = [f64; InstrClass::ALL.len()];

/// The Cortex-M0+ cycle table (Technical Reference Manual r0p1, the
/// paper's reference \[2\]): loads/stores 2, taken branch 2 (2-stage
/// pipeline), `BL` 3, everything else — including the single-cycle
/// multiplier configuration — 1 cycle. This is the single source the
/// `const` [`InstrClass::cycles`] and the default registry entry both
/// read, in [`InstrClass::ALL`] order.
pub const M0PLUS_CYCLES: CycleTable = [
    2, // Ldr
    2, // Str
    1, // Lsl
    1, // Lsr
    1, // Eor
    1, // Logic
    1, // Add
    1, // Sub
    1, // Mul (single-cycle multiplier option)
    1, // Mov
    1, // Cmp
    2, // BranchTaken (2-stage pipeline refill)
    1, // BranchNotTaken
    3, // Bl
    1, // StackWord
    1, // Nop
];

/// Everything the cost plumbing needs to know about one core: a name,
/// the per-class cycle table, the per-class pJ/cycle table, and the
/// clock the time/power derivations assume.
///
/// The trait is object-safe on purpose — [`Machine::with_target`]
/// (crate::Machine::with_target) and the modeled-field constructors
/// take `&dyn TargetModel`, so downstream crates can define their own
/// cores without touching this crate.
pub trait TargetModel {
    /// Registry key / CLI `--target` name, e.g. `cortex-m0plus`.
    fn name(&self) -> &'static str;
    /// One-line description including the estimate assumptions.
    fn description(&self) -> &'static str;
    /// Cycle cost of one instruction of `class` on this core.
    fn cycles(&self, class: InstrClass) -> u64;
    /// Energy per cycle of `class` on this core, picojoules.
    fn pj_per_cycle(&self, class: InstrClass) -> f64;
    /// Clock frequency assumed for time/power derivation.
    fn clock_hz(&self) -> u64;

    /// The dense cycle table, in [`InstrClass::ALL`] order.
    fn cycle_table(&self) -> CycleTable {
        let mut t = [0u64; InstrClass::ALL.len()];
        for c in InstrClass::ALL {
            t[c.index()] = self.cycles(c);
        }
        t
    }

    /// The dense pJ/cycle table, in [`InstrClass::ALL`] order.
    fn energy_table(&self) -> EnergyTable {
        let mut t = [0.0; InstrClass::ALL.len()];
        for c in InstrClass::ALL {
            t[c.index()] = self.pj_per_cycle(c);
        }
        t
    }
}

/// A concrete, data-driven target: the registry's representation.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetSpec {
    name: &'static str,
    description: &'static str,
    cycles: CycleTable,
    pj_per_cycle: EnergyTable,
    clock_hz: u64,
}

impl TargetSpec {
    /// Builds a spec from explicit tables (for downstream sensitivity
    /// studies that want a core the registry does not ship).
    pub fn new(
        name: &'static str,
        description: &'static str,
        cycles: CycleTable,
        pj_per_cycle: EnergyTable,
        clock_hz: u64,
    ) -> TargetSpec {
        TargetSpec {
            name,
            description,
            cycles,
            pj_per_cycle,
            clock_hz,
        }
    }

    /// The [`EnergyModel`] this target induces (per-instruction energy
    /// = pJ/cycle × this target's cycle count).
    pub fn energy_model(&self) -> EnergyModel {
        EnergyModel::for_target(self)
    }

    /// Registry key / CLI `--target` name (inherent mirror of
    /// [`TargetModel::name`], usable without the trait in scope).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description (inherent mirror of
    /// [`TargetModel::description`]).
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// Core clock (inherent mirror of [`TargetModel::clock_hz`]).
    pub fn clock_hz(&self) -> u64 {
        self.clock_hz
    }
}

impl TargetModel for TargetSpec {
    fn name(&self) -> &'static str {
        self.name
    }
    fn description(&self) -> &'static str {
        self.description
    }
    fn cycles(&self, class: InstrClass) -> u64 {
        self.cycles[class.index()]
    }
    fn pj_per_cycle(&self, class: InstrClass) -> f64 {
        self.pj_per_cycle[class.index()]
    }
    fn clock_hz(&self) -> u64 {
        self.clock_hz
    }
    fn cycle_table(&self) -> CycleTable {
        self.cycles
    }
    fn energy_table(&self) -> EnergyTable {
        self.pj_per_cycle
    }
}

/// The paper's measured Table-3 energies plus its documented estimates
/// for unmeasured classes (stores like loads, `SUB` like `ADD`, other
/// logic like `XOR`, moves/compares/`NOP` like the cheap shift class,
/// branches like `LSL`, stack words like `LDR`) — in
/// [`InstrClass::ALL`] order. The values are pulled from
/// [`table3`], which remains the one declaration of the six
/// measured floats.
fn m0plus_energy() -> EnergyTable {
    use table3::*;
    [
        LDR_PJ, // Ldr (measured)
        LDR_PJ, // Str: same memory interface as a load
        LSL_PJ, // Lsl (measured)
        LSR_PJ, // Lsr (measured)
        XOR_PJ, // Eor (measured)
        XOR_PJ, // Logic: same datapath switching as XOR
        ADD_PJ, // Add (measured)
        ADD_PJ, // Sub: same adder as ADD
        MUL_PJ, // Mul (measured)
        LSR_PJ, // Mov: among the cheapest ALU operations
        LSR_PJ, // Cmp: like Mov
        LSL_PJ, // BranchTaken: mid-range LSL class
        LSL_PJ, // BranchNotTaken
        LSL_PJ, // Bl
        LDR_PJ, // StackWord: words over the memory interface
        LSR_PJ, // Nop
    ]
}

/// All registry targets run at the paper's 48 MHz so cross-target
/// cycle and energy columns compare like for like; time and power
/// scale trivially with the clock and would only obscure the
/// per-instruction differences the comparison is about.
const REGISTRY_CLOCK_HZ: u64 = crate::CLOCK_HZ;

fn build_registry() -> Vec<TargetSpec> {
    let mut m0_cycles = M0PLUS_CYCLES;
    // Cortex-M0 (3-stage pipeline): a taken branch refills one more
    // stage (3 cycles), and BL pays the same extra refill (4 cycles).
    // Loads/stores and data processing match the M0+.
    m0_cycles[InstrClass::BranchTaken.index()] = 3;
    m0_cycles[InstrClass::Bl.index()] = 4;

    // M0+ synthesized with the iterative (area-optimised) multiplier:
    // MULS takes 32 cycles; every other cost is the default M0+ table.
    let mut mul32_cycles = M0PLUS_CYCLES;
    mul32_cycles[InstrClass::Mul.index()] = 32;

    // Cortex-M3 class estimate (ARMv7-M, 3-stage pipeline with branch
    // speculation): single-cycle 32×32 multiplier, buffered stores
    // (1 cycle), loads 2 cycles, taken branches 3 (the TRM's 2–4
    // range), BL 4.
    let mut m3_cycles = M0PLUS_CYCLES;
    m3_cycles[InstrClass::Str.index()] = 1;
    m3_cycles[InstrClass::BranchTaken.index()] = 3;
    m3_cycles[InstrClass::Bl.index()] = 4;

    // Energy estimates for cores the paper did not measure. The M0 is
    // the same ARMv6-M datapath generation as the M0+, so its
    // per-cycle energy is estimated as the Table-3 values unchanged
    // (the M0+ is marketed as the lower-power implementation, but the
    // split is dominated by sleep modes, not active pJ/cycle). The
    // iterative multiplier busies the shift-add datapath each cycle,
    // so MUL keeps its measured per-cycle figure over 32 cycles. The
    // M3 is a larger core; active-power comparisons of the era put it
    // around 1.8× the M0+ per cycle at the same node, applied here as
    // a uniform scale on the whole Table-3 set.
    const M3_ENERGY_SCALE: f64 = 1.8;
    let m0plus_pj = m0plus_energy();
    let mut m3_pj = m0plus_pj;
    for v in &mut m3_pj {
        *v *= M3_ENERGY_SCALE;
    }

    vec![
        TargetSpec {
            name: "cortex-m0plus",
            description: "the paper's platform: 2-stage pipeline, single-cycle multiplier, \
                 measured Table-3 energies (default; bit-identical to the seed model)",
            cycles: M0PLUS_CYCLES,
            pj_per_cycle: m0plus_pj,
            clock_hz: REGISTRY_CLOCK_HZ,
        },
        TargetSpec {
            name: "cortex-m0",
            description: "3-stage ARMv6-M sibling: taken branch 3 cycles, BL 4; energy \
                 estimated as the unchanged Table-3 values (same datapath generation)",
            cycles: m0_cycles,
            pj_per_cycle: m0plus_pj,
            clock_hz: REGISTRY_CLOCK_HZ,
        },
        TargetSpec {
            name: "cortex-m0plus-mul32",
            description: "M0+ synthesized with the iterative multiplier: MULS 32 cycles at \
                 the measured MUL pJ/cycle; all other costs as the default",
            cycles: mul32_cycles,
            pj_per_cycle: m0plus_pj,
            clock_hz: REGISTRY_CLOCK_HZ,
        },
        TargetSpec {
            name: "cortex-m3",
            description: "ARMv7-M class estimate: buffered stores (1 cycle), taken branch 3, \
                 BL 4, single-cycle multiplier; energy = Table-3 scaled 1.8x (larger core)",
            cycles: m3_cycles,
            pj_per_cycle: m3_pj,
            clock_hz: REGISTRY_CLOCK_HZ,
        },
    ]
}

/// The registry of concrete targets, default first.
pub fn registry() -> &'static [TargetSpec] {
    static REGISTRY: OnceLock<Vec<TargetSpec>> = OnceLock::new();
    REGISTRY.get_or_init(build_registry)
}

/// Looks a target up by its registry name (the CLI `--target` value).
pub fn by_name(name: &str) -> Option<&'static TargetSpec> {
    registry().iter().find(|t| t.name == name)
}

/// The default target: `cortex-m0plus`, the paper's platform.
pub fn default_target() -> &'static TargetSpec {
    &registry()[0]
}

/// The paper's platform (same entry the default constructors use).
pub fn cortex_m0plus() -> &'static TargetSpec {
    by_name("cortex-m0plus").expect("registry entry")
}

/// The 3-stage Cortex-M0 estimate.
pub fn cortex_m0() -> &'static TargetSpec {
    by_name("cortex-m0").expect("registry entry")
}

/// The iterative-multiplier M0+ option.
pub fn cortex_m0plus_mul32() -> &'static TargetSpec {
    by_name("cortex-m0plus-mul32").expect("registry entry")
}

/// The Cortex-M3 class estimate.
pub fn cortex_m3() -> &'static TargetSpec {
    by_name("cortex-m3").expect("registry entry")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_target_matches_the_const_tables() {
        let t = default_target();
        assert_eq!(t.name, "cortex-m0plus");
        for c in InstrClass::ALL {
            assert_eq!(t.cycles(c), c.cycles(), "{c} cycle count");
        }
        let legacy = EnergyModel::cortex_m0plus();
        for c in InstrClass::ALL {
            assert_eq!(
                t.pj_per_cycle(c).to_bits(),
                legacy.picojoules_per_cycle(c).to_bits(),
                "{c} pJ/cycle"
            );
        }
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for t in registry() {
            assert!(seen.insert(t.name), "duplicate target {}", t.name);
            assert!(std::ptr::eq(by_name(t.name).expect("resolvable"), t));
            assert!(!t.description.is_empty());
            assert_eq!(t.clock_hz(), crate::CLOCK_HZ);
        }
        assert!(by_name("cortex-a53").is_none());
    }

    #[test]
    fn m0_costs_more_only_on_control_flow() {
        let m0 = cortex_m0();
        let m0p = cortex_m0plus();
        assert_eq!(m0.cycles(InstrClass::BranchTaken), 3);
        assert_eq!(m0.cycles(InstrClass::Bl), 4);
        for c in InstrClass::ALL {
            match c {
                InstrClass::BranchTaken | InstrClass::Bl => {
                    assert!(m0.cycles(c) > m0p.cycles(c))
                }
                _ => assert_eq!(m0.cycles(c), m0p.cycles(c), "{c}"),
            }
        }
    }

    #[test]
    fn mul32_only_inflates_mul() {
        let t = cortex_m0plus_mul32();
        for c in InstrClass::ALL {
            let want = if c == InstrClass::Mul { 32 } else { c.cycles() };
            assert_eq!(t.cycles(c), want, "{c}");
        }
        // The superblock lowering stores cycle costs in a u8.
        assert!(t.cycles(InstrClass::Mul) <= u8::MAX as u64);
    }

    #[test]
    fn m3_energy_is_uniformly_scaled() {
        let m3 = cortex_m3();
        let m0p = cortex_m0plus();
        for c in InstrClass::ALL {
            let ratio = m3.pj_per_cycle(c) / m0p.pj_per_cycle(c);
            assert!((ratio - 1.8).abs() < 1e-12, "{c}: {ratio}");
        }
        assert_eq!(m3.cycles(InstrClass::Str), 1);
        assert_eq!(m3.cycles(InstrClass::Mul), 1);
    }

    #[test]
    fn dyn_target_tables_agree_with_direct_access() {
        let t: &dyn TargetModel = cortex_m0();
        let cycles = t.cycle_table();
        let energy = t.energy_table();
        for c in InstrClass::ALL {
            assert_eq!(cycles[c.index()], t.cycles(c));
            assert_eq!(energy[c.index()].to_bits(), t.pj_per_cycle(c).to_bits());
        }
    }
}
