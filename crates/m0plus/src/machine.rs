//! The instrumented ARMv6-M abstract machine.
//!
//! A [`Machine`] has the Cortex-M0+ programmer's model: registers
//! `R0`–`R12` (plus `SP`/`LR`, modelled but rarely needed), the NZCV flags,
//! and a word-addressed RAM. Each public method corresponds to one Thumb
//! instruction; calling it executes the operation *and* charges its cycle
//! and energy cost, attributed to the current [`Category`].
//!
//! The ARMv6-M lo/hi register split is enforced: data-processing
//! instructions (`EORS`, `ADDS`, `LSLS`, …) only accept lo registers
//! (`R0`–`R7`), exactly as on real hardware, while `MOV` may touch hi
//! registers. This constraint is what limits how many accumulator words
//! the paper's "LD with fixed registers" can keep in registers and why
//! hi-register-resident words cost two extra `MOV`s per use.
//!
//! [`Category`]: crate::profile::Category

use crate::cost::InstrClass;
use crate::energy::EnergyModel;
use crate::isa::Instr;
use crate::profile::{Category, CategoryTotals};
use crate::report::{ClassCounts, RunReport, Snapshot};

/// One of the Cortex-M0+ core registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    Sp,
    Lr,
}

impl Reg {
    /// The thirteen general-purpose registers.
    pub const GENERAL: [Reg; 13] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
    ];

    /// The eight lo registers usable by ARMv6-M data-processing
    /// instructions.
    pub const LO: [Reg; 8] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
    ];

    pub(crate) fn index(self) -> usize {
        match self {
            Reg::R0 => 0,
            Reg::R1 => 1,
            Reg::R2 => 2,
            Reg::R3 => 3,
            Reg::R4 => 4,
            Reg::R5 => 5,
            Reg::R6 => 6,
            Reg::R7 => 7,
            Reg::R8 => 8,
            Reg::R9 => 9,
            Reg::R10 => 10,
            Reg::R11 => 11,
            Reg::R12 => 12,
            Reg::Sp => 13,
            Reg::Lr => 14,
        }
    }

    /// Whether this is a lo register (`R0`–`R7`), addressable by ARMv6-M
    /// data-processing instructions.
    pub fn is_lo(self) -> bool {
        self.index() < 8
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reg::Sp => f.write_str("sp"),
            Reg::Lr => f.write_str("lr"),
            r => write!(f, "r{}", r.index()),
        }
    }
}

/// A word address in machine RAM.
///
/// RAM is word-addressed (the ECC kernels only ever perform aligned 32-bit
/// accesses). `Addr(3)` is the fourth word. Arithmetic on addresses stored
/// in registers uses *word units* as well, which keeps kernels readable; a
/// real implementation would scale by 4, which costs the same one shift
/// instruction the kernels already charge where relevant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u32);

impl Addr {
    /// Address of the word `offset` words past `self`.
    #[must_use]
    pub fn offset(self, offset: u32) -> Addr {
        Addr(self.0 + offset)
    }

    /// The raw value a base register should hold to point at this address.
    pub fn to_base_register_value(self) -> u32 {
        self.0
    }
}

/// Condition codes for conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Cond {
    /// Z set.
    Eq,
    /// Z clear.
    Ne,
    /// C set (unsigned ≥).
    Hs,
    /// C clear (unsigned <).
    Lo,
    /// N set.
    Mi,
    /// N clear.
    Pl,
    /// Signed ≥.
    Ge,
    /// Signed <.
    Lt,
    /// Signed >.
    Gt,
    /// Signed ≤.
    Le,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Flags {
    n: bool,
    z: bool,
    c: bool,
    v: bool,
}

/// One instruction captured by [`Machine::start_recording`]: the
/// decodable [`Instr`], the [`Category`] its cost was attributed to, and
/// (for literal-pool loads) the constant value, which the encoding's
/// imm8 slot index cannot carry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordedStep {
    /// The instruction as it would appear in the code image.
    pub instr: Instr,
    /// The effective category the charge went to (override and stack
    /// already resolved).
    pub category: Category,
    /// The pool constant for `LdrLit`; `None` for everything else.
    pub literal: Option<u32>,
}

/// An un-costed host register write ([`Machine::set_reg`] /
/// [`Machine::set_base`]) interleaved with a recording — the AAPCS-style
/// argument setup kernels perform mid-stream. Replaying a recording must
/// reapply these at the same positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordedSetReg {
    /// Number of costed instructions retired before this write.
    pub at: usize,
    /// The register written.
    pub reg: Reg,
    /// The value written.
    pub value: u32,
}

/// A complete instruction-stream capture: every costed instruction in
/// order plus the positioned un-costed register writes. This is what the
/// code backend assembles into real Thumb-16 halfwords and re-executes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recording {
    /// The costed instructions, in execution order.
    pub steps: Vec<RecordedStep>,
    /// Un-costed register writes, ordered by [`RecordedSetReg::at`].
    pub reg_writes: Vec<RecordedSetReg>,
}

impl Recording {
    /// Number of costed instructions captured.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether nothing costed was captured.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Dense opcode of a [`MicroOp`] — one variant per architectural shape
/// the superblock interpreter executes, so [`Machine::run_block`]
/// dispatches a single flat match per retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MicroKind {
    /// `LDR rt, [base, #imm]` — `LdrImm` and `LdrSp` with the base
    /// register index pre-resolved.
    LdrOff,
    /// `STR rt, [base, #imm]` — `StrImm` and `StrSp` likewise.
    StrOff,
    /// `LDR rt, [rn, rm]`.
    LdrReg,
    /// `STR rt, [rn, rm]`.
    StrReg,
    /// Literal-pool load with the constant resolved at lowering time.
    Const,
    MovsImm,
    /// `MOV rd, rm`, hi-register capable (indices pre-resolved).
    MovAny,
    Uxth,
    Eors,
    Ands,
    Orrs,
    Bics,
    Mvns,
    Tst,
    LslsImm,
    LsrsImm,
    AsrsImm,
    LslsReg,
    LsrsReg,
    AddsReg,
    AddsImm8,
    Adcs,
    SubsReg,
    SubsImm8,
    Sbcs,
    Rsbs,
    CmpReg,
    CmpImm,
    Muls,
    Nop,
    /// `PUSH`/`POP` of `imm` registers: no architectural effect in the
    /// model, one Mov-class base cycle plus `imm` stack words.
    Stack,
    /// An unconditional `B` whose precomputed target is its own
    /// fall-through — the only shape a linearised recording assembles
    /// (see [`crate::backend::translate`]): charges a taken branch and
    /// continues straight-line.
    BranchFall,
    /// A `B<cond>` whose precomputed target is its own fall-through:
    /// charges taken or not-taken from the live flags and continues
    /// straight-line either way.
    BCondFall(Cond),
    /// Not runnable inside a superblock (control flow, invalid
    /// halfword, unresolvable pool slot, `LSLS #0`); terminates
    /// straight-line runs and never reaches [`Machine::run_block`].
    Blocked,
}

/// The flat, pre-resolved form of one code position for the superblock
/// interpreter: a dense opcode, register *indices* instead of [`Reg`]
/// values, the normalised immediate (or pool constant, or stack word
/// count), and the cost — class index and cycle count — precomputed at
/// lowering time. [`Machine::run_block`] never touches the
/// decode-shaped [`Instr`] again.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MicroOp {
    kind: MicroKind,
    /// Destination / transfer register index.
    a: u8,
    /// First source / base register index.
    b: u8,
    /// Second source register index.
    c: u8,
    /// `InstrClass::index()` of the charged class.
    class_idx: u8,
    /// `InstrClass::cycles()` of the charged class.
    cycles: u8,
    /// Immediate / pool constant / stack word count.
    imm: u32,
}

impl MicroOp {
    /// A position the superblock interpreter refuses to run.
    pub(crate) const BLOCKED: MicroOp = MicroOp {
        kind: MicroKind::Blocked,
        a: 0,
        b: 0,
        c: 0,
        class_idx: 0,
        cycles: 0,
        imm: 0,
    };

    /// Whether this position can run inside a superblock.
    #[inline]
    pub(crate) fn runnable(&self) -> bool {
        self.kind != MicroKind::Blocked
    }

    /// An unconditional branch to its own fall-through (charge only).
    pub(crate) fn branch_fall(cycle_table: &[u64; InstrClass::ALL.len()]) -> MicroOp {
        Self::new(
            MicroKind::BranchFall,
            InstrClass::BranchTaken,
            0,
            0,
            0,
            0,
            cycle_table,
        )
    }

    /// A conditional branch to its own fall-through (flag-dependent
    /// charge only; the class/cycle fields are unused because the cost
    /// is resolved from the machine's live flags — and its target's
    /// cycle table — at run time).
    pub(crate) fn bcond_fall(cond: Cond) -> MicroOp {
        MicroOp {
            kind: MicroKind::BCondFall(cond),
            a: 0,
            b: 0,
            c: 0,
            class_idx: InstrClass::BranchTaken.index() as u8,
            cycles: 0,
            imm: 0,
        }
    }

    fn new(
        kind: MicroKind,
        class: InstrClass,
        a: usize,
        b: usize,
        c: usize,
        imm: u32,
        cycle_table: &[u64; InstrClass::ALL.len()],
    ) -> MicroOp {
        let cycles = cycle_table[class.index()];
        debug_assert!(
            cycles <= u8::MAX as u64,
            "cycle cost exceeds MicroOp::cycles"
        );
        MicroOp {
            kind,
            a: a as u8,
            b: b as u8,
            c: c as u8,
            class_idx: class.index() as u8,
            cycles: cycles as u8,
            imm,
        }
    }

    /// Lowers one decoded instruction: registers to indices, shift
    /// immediates to their architectural amounts (`LSRS`/`ASRS` `#0` →
    /// 32), pool slots to constants, the cost class to its dense index.
    /// Control flow, invalid pool slots (per-step dispatch raises
    /// `BadLiteral` at the same retired index) and `LSLS #0` (whose
    /// per-step dispatch asserts) lower to [`MicroOp::BLOCKED`]. Each
    /// runnable arm must mirror its [`Machine`] per-instruction method
    /// exactly; the bit-identity assertions run by every campaign hold
    /// this to account.
    pub(crate) fn lower(
        instr: Instr,
        pool: &[u32],
        cycle_table: &[u64; InstrClass::ALL.len()],
    ) -> MicroOp {
        use Instr as I;
        use MicroKind as K;
        let lo = Machine::lo;
        let class = instr.class();
        let new = |kind: MicroKind, class: InstrClass, a: usize, b: usize, c: usize, imm: u32| {
            Self::new(kind, class, a, b, c, imm, cycle_table)
        };
        match instr {
            I::LdrImm { rt, rn, imm_words } => new(K::LdrOff, class, lo(rt), lo(rn), 0, imm_words),
            I::StrImm { rt, rn, imm_words } => new(K::StrOff, class, lo(rt), lo(rn), 0, imm_words),
            I::LdrSp { rt, imm_words } => {
                new(K::LdrOff, class, lo(rt), Reg::Sp.index(), 0, imm_words)
            }
            I::StrSp { rt, imm_words } => {
                new(K::StrOff, class, lo(rt), Reg::Sp.index(), 0, imm_words)
            }
            I::LdrReg { rt, rn, rm } => new(K::LdrReg, class, lo(rt), lo(rn), lo(rm), 0),
            I::StrReg { rt, rn, rm } => new(K::StrReg, class, lo(rt), lo(rn), lo(rm), 0),
            I::LdrLit { rt, imm_words } => match pool.get(imm_words as usize) {
                Some(&value) => new(K::Const, class, lo(rt), 0, 0, value),
                None => Self::BLOCKED,
            },
            I::MovsImm { rd, imm } => new(K::MovsImm, class, lo(rd), 0, 0, imm as u32),
            I::Mov { rd, rm } => new(K::MovAny, class, rd.index(), rm.index(), 0, 0),
            I::Uxth { rd, rm } => new(K::Uxth, class, lo(rd), lo(rm), 0, 0),
            I::Eors { rdn, rm } => new(K::Eors, class, lo(rdn), lo(rm), 0, 0),
            I::Ands { rdn, rm } => new(K::Ands, class, lo(rdn), lo(rm), 0, 0),
            I::Orrs { rdn, rm } => new(K::Orrs, class, lo(rdn), lo(rm), 0, 0),
            I::Bics { rdn, rm } => new(K::Bics, class, lo(rdn), lo(rm), 0, 0),
            I::Mvns { rd, rm } => new(K::Mvns, class, lo(rd), lo(rm), 0, 0),
            I::Tst { rn, rm } => new(K::Tst, class, lo(rn), lo(rm), 0, 0),
            I::LslsImm { imm: 0, .. } => Self::BLOCKED,
            I::LslsImm { rd, rm, imm } => new(K::LslsImm, class, lo(rd), lo(rm), 0, imm),
            I::LsrsImm { rd, rm, imm } => {
                let imm = if imm == 0 { 32 } else { imm };
                new(K::LsrsImm, class, lo(rd), lo(rm), 0, imm)
            }
            I::AsrsImm { rd, rm, imm } => {
                let imm = if imm == 0 { 32 } else { imm };
                new(K::AsrsImm, class, lo(rd), lo(rm), 0, imm)
            }
            I::LslsReg { rdn, rm } => new(K::LslsReg, class, lo(rdn), lo(rm), 0, 0),
            I::LsrsReg { rdn, rm } => new(K::LsrsReg, class, lo(rdn), lo(rm), 0, 0),
            I::AddsReg { rd, rn, rm } => new(K::AddsReg, class, lo(rd), lo(rn), lo(rm), 0),
            I::AddsImm8 { rdn, imm } => new(K::AddsImm8, class, lo(rdn), 0, 0, imm as u32),
            I::Adcs { rdn, rm } => new(K::Adcs, class, lo(rdn), lo(rm), 0, 0),
            I::SubsReg { rd, rn, rm } => new(K::SubsReg, class, lo(rd), lo(rn), lo(rm), 0),
            I::SubsImm8 { rdn, imm } => new(K::SubsImm8, class, lo(rdn), 0, 0, imm as u32),
            I::Sbcs { rdn, rm } => new(K::Sbcs, class, lo(rdn), lo(rm), 0, 0),
            I::Rsbs { rd, rn } => new(K::Rsbs, class, lo(rd), lo(rn), 0, 0),
            I::CmpReg { rn, rm } => new(K::CmpReg, class, lo(rn), lo(rm), 0, 0),
            I::CmpImm { rn, imm } => new(K::CmpImm, class, lo(rn), 0, 0, imm as u32),
            I::Muls { rdn, rm } => new(K::Muls, class, lo(rdn), lo(rm), 0, 0),
            I::Nop => new(K::Nop, class, 0, 0, 0, 0),
            I::Push { reg_count } | I::Pop { reg_count } => {
                new(K::Stack, class, 0, 0, 0, reg_count as u32)
            }
            I::BCond { .. } | I::B | I::Bl | I::Bx => Self::BLOCKED,
        }
    }
}

/// The instrumented Cortex-M0+ model. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Machine {
    regs: [u32; 15],
    flags: Flags,
    mem: Vec<u32>,
    brk: u32,
    counts: ClassCounts,
    cycles: u64,
    energy_pj: f64,
    model: EnergyModel,
    clock_hz: u64,
    category_stack: Vec<Category>,
    category_override: Option<Category>,
    by_category: [CategoryTotals; Category::ALL.len()],
    recording: Option<Recording>,
    #[cfg(feature = "trace")]
    trace: Option<crate::trace::Trace>,
    #[cfg(feature = "trace")]
    trace_instr: Option<Instr>,
    #[cfg(feature = "trace")]
    trace_addr: Option<u32>,
}

impl Machine {
    /// Creates a machine with `mem_words` words of RAM and the default
    /// Cortex-M0+ energy model.
    pub fn new(mem_words: usize) -> Self {
        Self::with_model(mem_words, EnergyModel::cortex_m0plus())
    }

    /// Creates a machine with a custom [`EnergyModel`] (clocked at the
    /// paper's default [`crate::CLOCK_HZ`]).
    pub fn with_model(mem_words: usize, model: EnergyModel) -> Self {
        Self::with_model_and_clock(mem_words, model, crate::CLOCK_HZ)
    }

    /// Creates a machine costed for a [`crate::target::TargetModel`]:
    /// its cycle table, its pJ/cycle table and its clock. With the
    /// default target this is bit-identical to [`Machine::new`].
    pub fn with_target(mem_words: usize, target: &dyn crate::target::TargetModel) -> Self {
        Self::with_model_and_clock(
            mem_words,
            EnergyModel::for_target(target),
            target.clock_hz(),
        )
    }

    fn with_model_and_clock(mem_words: usize, model: EnergyModel, clock_hz: u64) -> Self {
        Machine {
            regs: [0; 15],
            flags: Flags::default(),
            mem: vec![0; mem_words],
            brk: 0,
            counts: ClassCounts::default(),
            cycles: 0,
            energy_pj: 0.0,
            model,
            clock_hz,
            category_stack: Vec::new(),
            category_override: None,
            by_category: [CategoryTotals::default(); Category::ALL.len()],
            recording: None,
            #[cfg(feature = "trace")]
            trace: None,
            #[cfg(feature = "trace")]
            trace_instr: None,
            #[cfg(feature = "trace")]
            trace_addr: None,
        }
    }

    // ------------------------------------------------------------------
    // Un-costed setup / inspection API (the "debugger view").
    // ------------------------------------------------------------------

    /// Reserves `words` words of RAM and returns their base address.
    ///
    /// # Panics
    ///
    /// Panics if the machine runs out of RAM.
    pub fn alloc(&mut self, words: usize) -> Addr {
        let base = self.brk;
        let end = base as usize + words;
        assert!(end <= self.mem.len(), "machine out of RAM");
        self.brk = end as u32;
        Addr(base)
    }

    /// Writes `data` into RAM without charging cycles (test/benchmark
    /// setup; the DMA of the simulator, so to speak).
    pub fn write_slice(&mut self, addr: Addr, data: &[u32]) {
        let base = addr.0 as usize;
        self.mem[base..base + data.len()].copy_from_slice(data);
    }

    /// Reads `len` words from RAM without charging cycles.
    pub fn read_slice(&self, addr: Addr, len: usize) -> Vec<u32> {
        let base = addr.0 as usize;
        self.mem[base..base + len].to_vec()
    }

    /// Total RAM size in words.
    pub fn ram_words(&self) -> usize {
        self.mem.len()
    }

    /// Words handed out by [`Machine::alloc`] so far (the break).
    pub fn allocated_words(&self) -> u32 {
        self.brk
    }

    /// Reads one RAM word without charging cycles, or `None` when the
    /// word address is out of range.
    pub fn peek(&self, word: u32) -> Option<u32> {
        self.mem.get(word as usize).copied()
    }

    /// Flips one bit of a RAM word — the fault-injection primitive for
    /// a memory upset. Un-costed (the glitch is not an instruction) and
    /// never panics: returns `false` when `word` is out of range.
    pub fn flip_mem_bit(&mut self, word: u32, bit: u32) -> bool {
        match self.mem.get_mut(word as usize) {
            Some(w) => {
                *w ^= 1 << (bit % 32);
                true
            }
            None => false,
        }
    }

    /// Flips one bit of register `r` — the fault-injection primitive
    /// for a register upset. Un-costed, and deliberately *not* routed
    /// through [`Machine::set_reg`] so an active recording does not
    /// capture the glitch as a legitimate positioned write.
    pub fn flip_reg_bit(&mut self, r: Reg, bit: u32) {
        self.regs[r.index()] ^= 1 << (bit % 32);
    }

    /// Current value of register `r`.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Sets register `r` without charging cycles (setup only). With
    /// recording active the write is captured as a positioned
    /// [`RecordedSetReg`] so a replay can reapply it.
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.regs[r.index()] = value;
        if let Some(rec) = self.recording.as_mut() {
            rec.reg_writes.push(RecordedSetReg {
                at: rec.steps.len(),
                reg: r,
                value,
            });
        }
    }

    /// Points register `r` at `addr` without charging cycles. Kernels use
    /// this for arguments that would arrive in registers per the AAPCS
    /// calling convention.
    pub fn set_base(&mut self, r: Reg, addr: Addr) {
        self.set_reg(r, addr.to_base_register_value());
    }

    /// Total cycles executed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total energy consumed so far, in picojoules.
    pub fn energy_pj(&self) -> f64 {
        self.energy_pj
    }

    /// Per-class instruction counts.
    pub fn counts(&self) -> &ClassCounts {
        &self.counts
    }

    /// The energy model in use.
    pub fn model(&self) -> &EnergyModel {
        &self.model
    }

    /// The clock frequency this machine's time/power figures assume
    /// (set by the target; [`crate::CLOCK_HZ`] by default).
    pub fn clock_hz(&self) -> u64 {
        self.clock_hz
    }

    /// Captures the current counters so a later [`Machine::report_since`]
    /// can compute a delta.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            cycles: self.cycles,
            energy_pj: self.energy_pj,
            counts: self.counts.clone(),
            by_category: self.by_category.to_vec(),
        }
    }

    /// Builds a [`RunReport`] for everything executed since `snapshot`.
    pub fn report_since(&self, snapshot: &Snapshot) -> RunReport {
        RunReport::from_delta(snapshot, &self.snapshot(), self.clock_hz)
    }

    /// Builds a [`RunReport`] for the machine's whole life.
    pub fn report(&self) -> RunReport {
        let zero = Snapshot {
            cycles: 0,
            energy_pj: 0.0,
            counts: ClassCounts::default(),
            by_category: vec![CategoryTotals::default(); Category::ALL.len()],
        };
        RunReport::from_delta(&zero, &self.snapshot(), self.clock_hz)
    }

    /// Asserts that `self` and `other` agree on every piece of
    /// architectural and accounting state: registers, flags, memory,
    /// allocation break, cycles, bitwise-identical energy, per-class
    /// counts and per-category totals. The code backend uses this to
    /// prove a machine-code replay equivalent to the direct tier.
    ///
    /// # Panics
    ///
    /// Panics (with `context` in the message) on the first divergence.
    pub fn assert_same_state(&self, other: &Machine, context: &str) {
        assert_eq!(self.regs, other.regs, "{context}: registers diverged");
        assert_eq!(self.flags, other.flags, "{context}: flags diverged");
        assert_eq!(self.brk, other.brk, "{context}: heap break diverged");
        assert_eq!(
            self.cycles, other.cycles,
            "{context}: cycle totals diverged"
        );
        assert_eq!(
            self.energy_pj.to_bits(),
            other.energy_pj.to_bits(),
            "{context}: energy diverged ({} pJ vs {} pJ)",
            self.energy_pj,
            other.energy_pj
        );
        assert_eq!(
            self.counts, other.counts,
            "{context}: instruction mix diverged"
        );
        for (i, c) in Category::ALL.iter().enumerate() {
            let a = self.by_category[i];
            let b = other.by_category[i];
            assert_eq!(a.cycles, b.cycles, "{context}: {c} cycles diverged");
            assert_eq!(
                a.energy_pj.to_bits(),
                b.energy_pj.to_bits(),
                "{context}: {c} energy diverged"
            );
        }
        assert_eq!(self.mem, other.mem, "{context}: memory diverged");
    }

    // ------------------------------------------------------------------
    // Category attribution.
    // ------------------------------------------------------------------

    /// Runs `f` with all executed instructions attributed to `category`.
    ///
    /// Categories nest; the innermost wins (this matches how the paper
    /// splits the multiplication's look-up-table generation out of the
    /// multiplication total in its Table 7).
    pub fn in_category<T>(&mut self, category: Category, f: impl FnOnce(&mut Machine) -> T) -> T {
        self.category_stack.push(category);
        let out = f(self);
        self.category_stack.pop();
        out
    }

    /// Runs `f` with *every* instruction force-attributed to `category`,
    /// regardless of nested [`Machine::in_category`] scopes.
    ///
    /// The paper's Table 7 needs this: during the wTNAF point
    /// precomputation phase, field multiplications and squarings are
    /// charged to *TNAF Precomputation*, not to their own categories.
    pub fn with_category_override<T>(
        &mut self,
        category: Category,
        f: impl FnOnce(&mut Machine) -> T,
    ) -> T {
        let prev = self.category_override.replace(category);
        let out = f(self);
        self.category_override = prev;
        out
    }

    /// The currently forced category, if any.
    pub fn category_override(&self) -> Option<Category> {
        self.category_override
    }

    /// Sets or clears the forced category. Prefer
    /// [`Machine::with_category_override`]; this escape hatch exists for
    /// wrappers that own the machine and need to scope the override
    /// around a closure over themselves.
    pub fn set_category_override(&mut self, category: Option<Category>) {
        self.category_override = category;
    }

    /// Cycle/energy totals attributed to `category` so far.
    pub fn category_totals(&self, category: Category) -> CategoryTotals {
        self.by_category[category.index()]
    }

    #[inline]
    pub(crate) fn current_category(&self) -> Category {
        self.category_override
            .unwrap_or_else(|| *self.category_stack.last().unwrap_or(&Category::Support))
    }

    // ------------------------------------------------------------------
    // Cost recording.
    // ------------------------------------------------------------------

    /// Starts capturing every executed instruction as a decodable
    /// [`Instr`] (see [`crate::isa`]) together with its attributed
    /// category, literal values and interleaved un-costed register
    /// writes. Replaces any previous capture.
    pub fn start_recording(&mut self) {
        self.recording = Some(Recording::default());
    }

    /// Stops capturing and returns the captured [`Recording`].
    pub fn take_recording(&mut self) -> Recording {
        self.recording.take().unwrap_or_default()
    }

    /// Starts capturing a canonical [`crate::trace::Trace`] (instruction
    /// stream, effective memory addresses, per-instruction cycles — the
    /// power attacker's observables). Replaces any previous capture.
    /// Un-costed setup accesses ([`Machine::write_slice`],
    /// [`Machine::set_reg`], …) are not captured: they model host/DMA
    /// activity, not executed instructions.
    #[cfg(feature = "trace")]
    pub fn start_trace(&mut self) {
        self.trace = Some(crate::trace::Trace::default());
        self.trace_instr = None;
        self.trace_addr = None;
    }

    /// Stops trace capture and returns the captured trace (empty if
    /// capture was never armed).
    #[cfg(feature = "trace")]
    pub fn take_trace(&mut self) -> crate::trace::Trace {
        self.trace.take().unwrap_or_default()
    }

    /// Notes the effective word address of a memory access for the
    /// trace recorder; compiled to nothing without the `trace` feature.
    #[cfg(feature = "trace")]
    #[inline]
    fn trace_mem(&mut self, addr: usize) {
        if self.trace.is_some() {
            self.trace_addr = Some(addr as u32);
        }
    }

    #[cfg(not(feature = "trace"))]
    #[inline]
    fn trace_mem(&mut self, _addr: usize) {}

    #[inline]
    fn rec(&mut self, instr: Instr) {
        self.rec_with(instr, None);
    }

    #[inline]
    fn rec_with(&mut self, instr: Instr, literal: Option<u32>) {
        if self.recording.is_some() {
            let category = self.current_category();
            if let Some(rec) = self.recording.as_mut() {
                rec.steps.push(RecordedStep {
                    instr,
                    category,
                    literal,
                });
            }
        }
        #[cfg(feature = "trace")]
        if self.trace.is_some() {
            self.trace_instr = Some(instr);
        }
    }

    #[inline]
    fn record(&mut self, class: InstrClass) {
        let cycles = self.model.cycles_of(class);
        let energy = self.model.picojoules_per_instr(class);
        self.cycles += cycles;
        self.energy_pj += energy;
        self.counts.bump(class);
        let cat = self.current_category();
        let t = &mut self.by_category[cat.index()];
        t.cycles += cycles;
        t.energy_pj += energy;
        #[cfg(feature = "trace")]
        if self.trace.is_some() {
            let instr = self.trace_instr.take();
            let addr = self.trace_addr.take();
            if let Some(trace) = self.trace.as_mut() {
                trace
                    .events
                    .push(crate::trace::TraceEvent { instr, class, addr });
            }
        }
    }

    /// Executes a lowered straight-line superblock: the architectural
    /// effect *and* the cost of every [`MicroOp`] in order, charged
    /// against an already-resolved category — the superblock fast path
    /// of [`crate::exec`] resolves the category once per block (nothing
    /// can change it while the control hook is dormant) and carries no
    /// trace plumbing (blocks never run while a capture is armed).
    ///
    /// The accounting mirrors [`Machine::record`] term for term — the
    /// same `f64` values added to the same accumulators in the same
    /// order — so cycle, count and energy totals stay bit-identical to
    /// per-step execution; the hot totals simply live in locals for the
    /// duration of the block. On an out-of-range memory operand the
    /// prefix stays applied and charged, the faulting op retires
    /// nothing, and `Err((position, word address))` reproduces the
    /// per-step error state exactly.
    pub(crate) fn run_block(&mut self, ops: &[MicroOp], cat: Category) -> Result<(), (usize, u64)> {
        use MicroKind as K;
        const MOV: usize = InstrClass::Mov.index();
        const STACK_WORD: usize = InstrClass::StackWord.index();
        let cat_idx = cat.index();
        let mut cycles = self.cycles;
        let mut energy = self.energy_pj;
        let mut totals = self.by_category[cat_idx];
        let mut fault: Option<(usize, u64)> = None;
        for (i, &op) in ops.iter().enumerate() {
            let (a, b, c) = (op.a as usize, op.b as usize, op.c as usize);
            match op.kind {
                K::LdrOff => {
                    let addr = self.regs[b] as u64 + op.imm as u64;
                    if addr >= self.mem.len() as u64 {
                        fault = Some((i, addr));
                        break;
                    }
                    self.regs[a] = self.mem[addr as usize];
                }
                K::StrOff => {
                    let addr = self.regs[b] as u64 + op.imm as u64;
                    if addr >= self.mem.len() as u64 {
                        fault = Some((i, addr));
                        break;
                    }
                    self.mem[addr as usize] = self.regs[a];
                }
                K::LdrReg => {
                    let addr = self.regs[b] as u64 + self.regs[c] as u64;
                    if addr >= self.mem.len() as u64 {
                        fault = Some((i, addr));
                        break;
                    }
                    self.regs[a] = self.mem[addr as usize];
                }
                K::StrReg => {
                    let addr = self.regs[b] as u64 + self.regs[c] as u64;
                    if addr >= self.mem.len() as u64 {
                        fault = Some((i, addr));
                        break;
                    }
                    self.mem[addr as usize] = self.regs[a];
                }
                K::Const => self.regs[a] = op.imm,
                K::MovsImm => {
                    self.regs[a] = op.imm;
                    self.set_nz(op.imm);
                }
                K::MovAny => self.regs[a] = self.regs[b],
                K::Uxth => self.regs[a] = self.regs[b] & 0xFFFF,
                K::Eors => {
                    let v = self.regs[a] ^ self.regs[b];
                    self.regs[a] = v;
                    self.set_nz(v);
                }
                K::Ands => {
                    let v = self.regs[a] & self.regs[b];
                    self.regs[a] = v;
                    self.set_nz(v);
                }
                K::Orrs => {
                    let v = self.regs[a] | self.regs[b];
                    self.regs[a] = v;
                    self.set_nz(v);
                }
                K::Bics => {
                    let v = self.regs[a] & !self.regs[b];
                    self.regs[a] = v;
                    self.set_nz(v);
                }
                K::Mvns => {
                    let v = !self.regs[b];
                    self.regs[a] = v;
                    self.set_nz(v);
                }
                K::Tst => {
                    let v = self.regs[a] & self.regs[b];
                    self.set_nz(v);
                }
                K::LslsImm => {
                    let x = self.regs[b];
                    self.flags.c = (x >> (32 - op.imm)) & 1 != 0;
                    let v = x << op.imm;
                    self.regs[a] = v;
                    self.set_nz(v);
                }
                K::LsrsImm => {
                    let x = self.regs[b];
                    self.flags.c = (x >> (op.imm - 1)) & 1 != 0;
                    let v = if op.imm == 32 { 0 } else { x >> op.imm };
                    self.regs[a] = v;
                    self.set_nz(v);
                }
                K::AsrsImm => {
                    let x = self.regs[b] as i32;
                    let sh = op.imm.min(31);
                    self.flags.c = ((x >> (op.imm - 1).min(31)) & 1) != 0;
                    let v = (x >> sh) as u32;
                    self.regs[a] = v;
                    self.set_nz(v);
                }
                K::LslsReg => {
                    let sh = self.regs[b] & 0xFF;
                    let x = self.regs[a];
                    let v = if sh >= 32 { 0 } else { x << sh };
                    if (1..=32).contains(&sh) {
                        self.flags.c = (x >> (32 - sh)) & 1 != 0;
                    } else if sh > 32 {
                        self.flags.c = false;
                    }
                    self.regs[a] = v;
                    self.set_nz(v);
                }
                K::LsrsReg => {
                    let sh = self.regs[b] & 0xFF;
                    let x = self.regs[a];
                    let v = if sh >= 32 { 0 } else { x >> sh };
                    if (1..=32).contains(&sh) {
                        self.flags.c = (x >> (sh - 1)) & 1 != 0;
                    } else if sh > 32 {
                        self.flags.c = false;
                    }
                    self.regs[a] = v;
                    self.set_nz(v);
                }
                K::AddsReg => {
                    let (x, y) = (self.regs[b], self.regs[c]);
                    let v = self.add_with_carry(x, y, false);
                    self.regs[a] = v;
                }
                K::AddsImm8 => {
                    let x = self.regs[a];
                    let v = self.add_with_carry(x, op.imm, false);
                    self.regs[a] = v;
                }
                K::Adcs => {
                    let (x, y, cin) = (self.regs[a], self.regs[b], self.flags.c);
                    let v = self.add_with_carry(x, y, cin);
                    self.regs[a] = v;
                }
                K::SubsReg => {
                    let (x, y) = (self.regs[b], self.regs[c]);
                    let v = self.add_with_carry(x, !y, true);
                    self.regs[a] = v;
                }
                K::SubsImm8 => {
                    let x = self.regs[a];
                    let v = self.add_with_carry(x, !op.imm, true);
                    self.regs[a] = v;
                }
                K::Sbcs => {
                    let (x, y, cin) = (self.regs[a], self.regs[b], self.flags.c);
                    let v = self.add_with_carry(x, !y, cin);
                    self.regs[a] = v;
                }
                K::Rsbs => {
                    let x = self.regs[b];
                    let v = self.add_with_carry(!x, 0, true);
                    self.regs[a] = v;
                }
                K::CmpReg => {
                    let (x, y) = (self.regs[a], self.regs[b]);
                    self.add_with_carry(x, !y, true);
                }
                K::CmpImm => {
                    let x = self.regs[a];
                    self.add_with_carry(x, !op.imm, true);
                }
                K::Muls => {
                    let v = self.regs[a].wrapping_mul(self.regs[b]);
                    self.regs[a] = v;
                    self.set_nz(v);
                }
                K::Nop => {}
                K::BranchFall => {}
                K::BCondFall(cond) => {
                    // Mirrors Machine::b_cond: taken and not-taken
                    // charge different classes, control falls through
                    // either way (the target is the next position).
                    let class = if self.cond(cond) {
                        InstrClass::BranchTaken
                    } else {
                        InstrClass::BranchNotTaken
                    };
                    let e = self.model.pj_per_instr_idx(class.index());
                    let cyc = self.model.cycles_idx(class.index());
                    cycles += cyc;
                    energy += e;
                    self.counts.bump_idx(class.index());
                    totals.cycles += cyc;
                    totals.energy_pj += e;
                    continue;
                }
                K::Stack => {
                    // One Mov-class base cycle plus `imm` stack words,
                    // exactly the split the push/pop helpers charge.
                    let base = self.model.pj_per_instr_idx(MOV);
                    let base_cyc = self.model.cycles_idx(MOV);
                    cycles += base_cyc;
                    energy += base;
                    self.counts.bump_idx(MOV);
                    totals.cycles += base_cyc;
                    totals.energy_pj += base;
                    let word = self.model.pj_per_instr_idx(STACK_WORD);
                    let word_cyc = self.model.cycles_idx(STACK_WORD);
                    for _ in 0..op.imm {
                        cycles += word_cyc;
                        energy += word;
                        self.counts.bump_idx(STACK_WORD);
                        totals.cycles += word_cyc;
                        totals.energy_pj += word;
                    }
                    continue;
                }
                K::Blocked => unreachable!("non-runnable position inside a superblock"),
            }
            let e = self.model.pj_per_instr_idx(op.class_idx as usize);
            cycles += op.cycles as u64;
            energy += e;
            self.counts.bump_idx(op.class_idx as usize);
            totals.cycles += op.cycles as u64;
            totals.energy_pj += e;
        }
        self.cycles = cycles;
        self.energy_pj = energy;
        self.by_category[cat_idx] = totals;
        match fault {
            Some(f) => Err(f),
            None => Ok(()),
        }
    }

    /// Whether an instruction-stream capture is armed (a recording, or
    /// a trace under the `trace` feature). Superblock execution must
    /// fall back to per-step dispatch while this holds so every
    /// instruction is captured at its own position.
    #[inline]
    pub(crate) fn block_capture_active(&self) -> bool {
        #[cfg(feature = "trace")]
        {
            self.recording.is_some() || self.trace.is_some()
        }
        #[cfg(not(feature = "trace"))]
        {
            self.recording.is_some()
        }
    }

    fn set_nz(&mut self, value: u32) {
        self.flags.n = (value as i32) < 0;
        self.flags.z = value == 0;
    }

    fn lo(r: Reg) -> usize {
        assert!(
            r.is_lo(),
            "ARMv6-M data-processing instructions require lo registers, got {r}"
        );
        r.index()
    }

    // ------------------------------------------------------------------
    // Memory instructions (2 cycles each).
    // ------------------------------------------------------------------

    /// `LDR rt, [rn, #off]` — loads the word at `rn + off` (word offset).
    ///
    /// # Panics
    ///
    /// Panics if either register is a hi register or the address is out of
    /// bounds.
    pub fn ldr(&mut self, rt: Reg, rn: Reg, off_words: u32) {
        let base = self.regs[Self::lo(rn)];
        let addr = (base + off_words) as usize;
        self.trace_mem(addr);
        let value = self.mem[addr];
        self.regs[Self::lo(rt)] = value;
        self.rec(Instr::LdrImm {
            rt,
            rn,
            imm_words: off_words,
        });
        self.record(InstrClass::Ldr);
    }

    /// `STR rt, [rn, #off]` — stores `rt` to `rn + off` (word offset).
    pub fn str(&mut self, rt: Reg, rn: Reg, off_words: u32) {
        let base = self.regs[Self::lo(rn)];
        let addr = (base + off_words) as usize;
        self.trace_mem(addr);
        self.mem[addr] = self.regs[Self::lo(rt)];
        self.rec(Instr::StrImm {
            rt,
            rn,
            imm_words: off_words,
        });
        self.record(InstrClass::Str);
    }

    /// `LDR rt, [sp, #off]` — stack-relative load. ARMv6-M addresses the
    /// stack frame without consuming a general-purpose base register,
    /// which is how the fixed-register multiplier frees a register for an
    /// accumulator word.
    pub fn ldr_sp(&mut self, rt: Reg, off_words: u32) {
        let base = self.regs[Reg::Sp.index()];
        let addr = (base + off_words) as usize;
        self.trace_mem(addr);
        let value = self.mem[addr];
        self.regs[Self::lo(rt)] = value;
        self.rec(Instr::LdrSp {
            rt,
            imm_words: off_words,
        });
        self.record(InstrClass::Ldr);
    }

    /// `STR rt, [sp, #off]` — stack-relative store.
    pub fn str_sp(&mut self, rt: Reg, off_words: u32) {
        let base = self.regs[Reg::Sp.index()];
        let addr = (base + off_words) as usize;
        self.trace_mem(addr);
        self.mem[addr] = self.regs[Self::lo(rt)];
        self.rec(Instr::StrSp {
            rt,
            imm_words: off_words,
        });
        self.record(InstrClass::Str);
    }

    /// `LDR rt, [rn, rm]` — register-offset load.
    pub fn ldr_reg(&mut self, rt: Reg, rn: Reg, rm: Reg) {
        let addr = (self.regs[Self::lo(rn)] + self.regs[Self::lo(rm)]) as usize;
        self.trace_mem(addr);
        let value = self.mem[addr];
        self.regs[Self::lo(rt)] = value;
        self.rec(Instr::LdrReg { rt, rn, rm });
        self.record(InstrClass::Ldr);
    }

    /// `STR rt, [rn, rm]` — register-offset store.
    pub fn str_reg(&mut self, rt: Reg, rn: Reg, rm: Reg) {
        let addr = (self.regs[Self::lo(rn)] + self.regs[Self::lo(rm)]) as usize;
        self.trace_mem(addr);
        self.mem[addr] = self.regs[Self::lo(rt)];
        self.rec(Instr::StrReg { rt, rn, rm });
        self.record(InstrClass::Str);
    }

    // ------------------------------------------------------------------
    // Moves.
    // ------------------------------------------------------------------

    /// `MOVS rd, #imm8` — move 8-bit immediate, sets N/Z.
    pub fn movs_imm(&mut self, rd: Reg, imm: u8) {
        self.regs[Self::lo(rd)] = imm as u32;
        self.set_nz(imm as u32);
        self.rec(Instr::MovsImm { rd, imm });
        self.record(InstrClass::Mov);
    }

    /// Materialises a full 32-bit constant.
    ///
    /// ARMv6-M has no wide-immediate move; real code uses a literal-pool
    /// `LDR`, which is what this helper charges (2 cycles).
    pub fn ldr_const(&mut self, rd: Reg, value: u32) {
        self.regs[Self::lo(rd)] = value;
        // The slot index is assigned at assembly time; the recording
        // carries the value so the assembler can build the pool.
        self.rec_with(
            Instr::LdrLit {
                rt: rd,
                imm_words: 0,
            },
            Some(value),
        );
        self.record(InstrClass::Ldr);
    }

    /// `MOV rd, rm` — register move; hi registers allowed, flags untouched.
    pub fn mov(&mut self, rd: Reg, rm: Reg) {
        self.regs[rd.index()] = self.regs[rm.index()];
        self.rec(Instr::Mov { rd, rm });
        self.record(InstrClass::Mov);
    }

    // ------------------------------------------------------------------
    // Bitwise logic and shifts (lo registers only).
    // ------------------------------------------------------------------

    /// `EORS rdn, rm` — exclusive or.
    pub fn eors(&mut self, rdn: Reg, rm: Reg) {
        let v = self.regs[Self::lo(rdn)] ^ self.regs[Self::lo(rm)];
        self.regs[Self::lo(rdn)] = v;
        self.set_nz(v);
        self.rec(Instr::Eors { rdn, rm });
        self.record(InstrClass::Eor);
    }

    /// `ANDS rdn, rm`.
    pub fn ands(&mut self, rdn: Reg, rm: Reg) {
        let v = self.regs[Self::lo(rdn)] & self.regs[Self::lo(rm)];
        self.regs[Self::lo(rdn)] = v;
        self.set_nz(v);
        self.rec(Instr::Ands { rdn, rm });
        self.record(InstrClass::Logic);
    }

    /// `ORRS rdn, rm`.
    pub fn orrs(&mut self, rdn: Reg, rm: Reg) {
        let v = self.regs[Self::lo(rdn)] | self.regs[Self::lo(rm)];
        self.regs[Self::lo(rdn)] = v;
        self.set_nz(v);
        self.rec(Instr::Orrs { rdn, rm });
        self.record(InstrClass::Logic);
    }

    /// `BICS rdn, rm` — bit clear.
    pub fn bics(&mut self, rdn: Reg, rm: Reg) {
        let v = self.regs[Self::lo(rdn)] & !self.regs[Self::lo(rm)];
        self.regs[Self::lo(rdn)] = v;
        self.set_nz(v);
        self.rec(Instr::Bics { rdn, rm });
        self.record(InstrClass::Logic);
    }

    /// `MVNS rd, rm` — bitwise not.
    pub fn mvns(&mut self, rd: Reg, rm: Reg) {
        let v = !self.regs[Self::lo(rm)];
        self.regs[Self::lo(rd)] = v;
        self.set_nz(v);
        self.rec(Instr::Mvns { rd, rm });
        self.record(InstrClass::Logic);
    }

    /// `TST rn, rm` — AND, flags only.
    pub fn tst(&mut self, rn: Reg, rm: Reg) {
        let v = self.regs[Self::lo(rn)] & self.regs[Self::lo(rm)];
        self.set_nz(v);
        self.rec(Instr::Tst { rn, rm });
        self.record(InstrClass::Logic);
    }

    /// `LSLS rd, rm, #imm` — logical shift left by an immediate
    /// (1 ≤ imm ≤ 31). Carry receives the last bit shifted out.
    pub fn lsls_imm(&mut self, rd: Reg, rm: Reg, imm: u32) {
        assert!((1..=31).contains(&imm), "LSLS immediate must be 1..=31");
        let x = self.regs[Self::lo(rm)];
        self.flags.c = (x >> (32 - imm)) & 1 != 0;
        let v = x << imm;
        self.regs[Self::lo(rd)] = v;
        self.set_nz(v);
        self.rec(Instr::LslsImm { rd, rm, imm });
        self.record(InstrClass::Lsl);
    }

    /// `LSRS rd, rm, #imm` — logical shift right by an immediate
    /// (1 ≤ imm ≤ 32; 32 yields zero with carry = bit 31).
    pub fn lsrs_imm(&mut self, rd: Reg, rm: Reg, imm: u32) {
        assert!((1..=32).contains(&imm), "LSRS immediate must be 1..=32");
        let x = self.regs[Self::lo(rm)];
        self.flags.c = (x >> (imm - 1)) & 1 != 0;
        let v = if imm == 32 { 0 } else { x >> imm };
        self.regs[Self::lo(rd)] = v;
        self.set_nz(v);
        self.rec(Instr::LsrsImm { rd, rm, imm });
        self.record(InstrClass::Lsr);
    }

    /// `LSLS rdn, rm` — shift left by a register amount (low byte used).
    pub fn lsls_reg(&mut self, rdn: Reg, rm: Reg) {
        let sh = self.regs[Self::lo(rm)] & 0xFF;
        let x = self.regs[Self::lo(rdn)];
        let v = if sh >= 32 { 0 } else { x << sh };
        if (1..=32).contains(&sh) {
            self.flags.c = (x >> (32 - sh)) & 1 != 0;
        } else if sh > 32 {
            self.flags.c = false;
        }
        self.regs[Self::lo(rdn)] = v;
        self.set_nz(v);
        self.rec(Instr::LslsReg { rdn, rm });
        self.record(InstrClass::Lsl);
    }

    /// `LSRS rdn, rm` — shift right by a register amount (low byte used).
    pub fn lsrs_reg(&mut self, rdn: Reg, rm: Reg) {
        let sh = self.regs[Self::lo(rm)] & 0xFF;
        let x = self.regs[Self::lo(rdn)];
        let v = if sh >= 32 { 0 } else { x >> sh };
        if (1..=32).contains(&sh) {
            self.flags.c = (x >> (sh - 1)) & 1 != 0;
        } else if sh > 32 {
            self.flags.c = false;
        }
        self.regs[Self::lo(rdn)] = v;
        self.set_nz(v);
        self.rec(Instr::LsrsReg { rdn, rm });
        self.record(InstrClass::Lsr);
    }

    /// `ASRS rd, rm, #imm` — arithmetic shift right.
    pub fn asrs_imm(&mut self, rd: Reg, rm: Reg, imm: u32) {
        assert!((1..=32).contains(&imm), "ASRS immediate must be 1..=32");
        let x = self.regs[Self::lo(rm)] as i32;
        let sh = imm.min(31);
        self.flags.c = ((x >> (imm - 1).min(31)) & 1) != 0;
        let v = (x >> sh) as u32;
        self.regs[Self::lo(rd)] = v;
        self.set_nz(v);
        self.rec(Instr::AsrsImm { rd, rm, imm });
        self.record(InstrClass::Lsr);
    }

    // ------------------------------------------------------------------
    // Arithmetic.
    // ------------------------------------------------------------------

    fn add_with_carry(&mut self, a: u32, b: u32, carry_in: bool) -> u32 {
        let (s1, c1) = a.overflowing_add(b);
        let (s2, c2) = s1.overflowing_add(carry_in as u32);
        self.flags.c = c1 || c2;
        let sa = a as i32;
        let sb = b as i32;
        let (t1, o1) = sa.overflowing_add(sb);
        let (_, o2) = t1.overflowing_add(carry_in as i32);
        self.flags.v = o1 ^ o2;
        self.set_nz(s2);
        s2
    }

    /// `ADDS rd, rn, rm`.
    pub fn adds(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        let v = {
            let a = self.regs[Self::lo(rn)];
            let b = self.regs[Self::lo(rm)];
            self.add_with_carry(a, b, false)
        };
        self.regs[Self::lo(rd)] = v;
        self.rec(Instr::AddsReg { rd, rn, rm });
        self.record(InstrClass::Add);
    }

    /// `ADDS rdn, #imm8`.
    pub fn adds_imm(&mut self, rdn: Reg, imm: u8) {
        let v = {
            let a = self.regs[Self::lo(rdn)];
            self.add_with_carry(a, imm as u32, false)
        };
        self.regs[Self::lo(rdn)] = v;
        self.rec(Instr::AddsImm8 { rdn, imm });
        self.record(InstrClass::Add);
    }

    /// `ADCS rdn, rm` — add with carry (multi-precision arithmetic).
    pub fn adcs(&mut self, rdn: Reg, rm: Reg) {
        let v = {
            let a = self.regs[Self::lo(rdn)];
            let b = self.regs[Self::lo(rm)];
            let c = self.flags.c;
            self.add_with_carry(a, b, c)
        };
        self.regs[Self::lo(rdn)] = v;
        self.rec(Instr::Adcs { rdn, rm });
        self.record(InstrClass::Add);
    }

    /// `SUBS rd, rn, rm`.
    pub fn subs(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        let v = {
            let a = self.regs[Self::lo(rn)];
            let b = self.regs[Self::lo(rm)];
            self.add_with_carry(a, !b, true)
        };
        self.regs[Self::lo(rd)] = v;
        self.rec(Instr::SubsReg { rd, rn, rm });
        self.record(InstrClass::Sub);
    }

    /// `SUBS rdn, #imm8`.
    pub fn subs_imm(&mut self, rdn: Reg, imm: u8) {
        let v = {
            let a = self.regs[Self::lo(rdn)];
            self.add_with_carry(a, !(imm as u32), true)
        };
        self.regs[Self::lo(rdn)] = v;
        self.rec(Instr::SubsImm8 { rdn, imm });
        self.record(InstrClass::Sub);
    }

    /// `SBCS rdn, rm` — subtract with carry (borrow).
    pub fn sbcs(&mut self, rdn: Reg, rm: Reg) {
        let v = {
            let a = self.regs[Self::lo(rdn)];
            let b = self.regs[Self::lo(rm)];
            let c = self.flags.c;
            self.add_with_carry(a, !b, c)
        };
        self.regs[Self::lo(rdn)] = v;
        self.rec(Instr::Sbcs { rdn, rm });
        self.record(InstrClass::Sub);
    }

    /// `RSBS rd, rn, #0` — negate.
    pub fn rsbs(&mut self, rd: Reg, rn: Reg) {
        let v = {
            let a = self.regs[Self::lo(rn)];
            self.add_with_carry(!a, 0, true)
        };
        self.regs[Self::lo(rd)] = v;
        self.rec(Instr::Rsbs { rd, rn });
        self.record(InstrClass::Sub);
    }

    /// `MULS rdn, rm` — 32×32→32 multiply (the only multiply ARMv6-M has;
    /// multi-precision code must split operands into 16-bit halves).
    pub fn muls(&mut self, rdn: Reg, rm: Reg) {
        let v = self.regs[Self::lo(rdn)].wrapping_mul(self.regs[Self::lo(rm)]);
        self.regs[Self::lo(rdn)] = v;
        self.set_nz(v);
        self.rec(Instr::Muls { rdn, rm });
        self.record(InstrClass::Mul);
    }

    /// `UXTH rd, rm` — zero-extend halfword (costed as a move).
    pub fn uxth(&mut self, rd: Reg, rm: Reg) {
        let v = self.regs[Self::lo(rm)] & 0xFFFF;
        self.regs[Self::lo(rd)] = v;
        self.rec(Instr::Uxth { rd, rm });
        self.record(InstrClass::Mov);
    }

    // ------------------------------------------------------------------
    // Compare and control flow.
    // ------------------------------------------------------------------

    /// `CMP rn, rm`.
    pub fn cmp(&mut self, rn: Reg, rm: Reg) {
        let a = self.regs[Self::lo(rn)];
        let b = self.regs[Self::lo(rm)];
        self.add_with_carry(a, !b, true);
        self.rec(Instr::CmpReg { rn, rm });
        self.record(InstrClass::Cmp);
    }

    /// `CMP rn, #imm8`.
    pub fn cmp_imm(&mut self, rn: Reg, imm: u8) {
        let a = self.regs[Self::lo(rn)];
        self.add_with_carry(a, !(imm as u32), true);
        self.rec(Instr::CmpImm { rn, imm });
        self.record(InstrClass::Cmp);
    }

    /// Evaluates `cond` against the current flags *without* charging
    /// cycles (the check happens inside the branch instruction).
    pub fn cond(&self, cond: Cond) -> bool {
        let f = self.flags;
        match cond {
            Cond::Eq => f.z,
            Cond::Ne => !f.z,
            Cond::Hs => f.c,
            Cond::Lo => !f.c,
            Cond::Mi => f.n,
            Cond::Pl => !f.n,
            Cond::Ge => f.n == f.v,
            Cond::Lt => f.n != f.v,
            Cond::Gt => !f.z && f.n == f.v,
            Cond::Le => f.z || f.n != f.v,
        }
    }

    /// `B<cond>` — conditional branch. Charges 2 cycles if taken, 1 if
    /// not, and returns whether it was taken so the host loop can follow.
    pub fn b_cond(&mut self, cond: Cond) -> bool {
        let taken = self.cond(cond);
        self.rec(Instr::BCond { cond });
        self.record(if taken {
            InstrClass::BranchTaken
        } else {
            InstrClass::BranchNotTaken
        });
        taken
    }

    /// `B` — unconditional branch (2 cycles).
    pub fn b(&mut self) {
        self.rec(Instr::B);
        self.record(InstrClass::BranchTaken);
    }

    /// `BL` — call (3 cycles). The return `BX LR` is charged separately
    /// via [`Machine::bx`].
    pub fn bl(&mut self) {
        self.rec(Instr::Bl);
        self.record(InstrClass::Bl);
    }

    /// `BX lr` — return (2 cycles, pipeline refill).
    pub fn bx(&mut self) {
        self.rec(Instr::Bx);
        self.record(InstrClass::BranchTaken);
    }

    /// `PUSH`/`POP`/`LDM`/`STM` of `n` registers: 1 + n cycles.
    pub fn stack_transfer(&mut self, n: usize) {
        self.rec(Instr::Push { reg_count: n });
        self.record(InstrClass::Mov); // base cycle
        for _ in 0..n {
            self.record(InstrClass::StackWord);
        }
    }

    /// `NOP`.
    pub fn nop(&mut self) {
        self.rec(Instr::Nop);
        self.record(InstrClass::Nop);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(256)
    }

    #[test]
    fn load_store_roundtrip_costs_four_cycles() {
        let mut m = machine();
        let a = m.alloc(4);
        m.set_base(Reg::R0, a);
        m.movs_imm(Reg::R1, 42);
        let before = m.cycles();
        m.str(Reg::R1, Reg::R0, 2);
        m.ldr(Reg::R2, Reg::R0, 2);
        assert_eq!(m.cycles() - before, 4);
        assert_eq!(m.reg(Reg::R2), 42);
    }

    #[test]
    fn register_offset_addressing_works() {
        let mut m = machine();
        let a = m.alloc(8);
        m.write_slice(a, &[0, 10, 20, 30, 0, 0, 0, 0]);
        m.set_base(Reg::R0, a);
        m.movs_imm(Reg::R1, 3);
        m.ldr_reg(Reg::R2, Reg::R0, Reg::R1);
        assert_eq!(m.reg(Reg::R2), 30);
        m.movs_imm(Reg::R3, 99);
        m.str_reg(Reg::R3, Reg::R0, Reg::R1);
        assert_eq!(m.read_slice(a, 4), vec![0, 10, 20, 99]);
    }

    #[test]
    #[should_panic(expected = "lo registers")]
    fn data_processing_rejects_hi_registers() {
        let mut m = machine();
        m.eors(Reg::R8, Reg::R0);
    }

    #[test]
    fn mov_allows_hi_registers() {
        let mut m = machine();
        m.movs_imm(Reg::R0, 7);
        m.mov(Reg::R9, Reg::R0);
        m.mov(Reg::R1, Reg::R9);
        assert_eq!(m.reg(Reg::R1), 7);
        assert_eq!(m.cycles(), 3);
    }

    #[test]
    fn shifts_compute_and_set_carry() {
        let mut m = machine();
        m.ldr_const(Reg::R0, 0x8000_0001);
        m.lsls_imm(Reg::R1, Reg::R0, 1);
        assert_eq!(m.reg(Reg::R1), 2);
        assert!(m.cond(Cond::Hs), "carry should hold the shifted-out bit");
        m.lsrs_imm(Reg::R2, Reg::R0, 1);
        assert_eq!(m.reg(Reg::R2), 0x4000_0000);
        assert!(m.cond(Cond::Hs));
    }

    #[test]
    fn register_amount_shifts_handle_large_amounts() {
        let mut m = machine();
        m.ldr_const(Reg::R0, 0xFFFF_FFFF);
        m.movs_imm(Reg::R1, 32);
        m.lsls_reg(Reg::R0, Reg::R1);
        assert_eq!(m.reg(Reg::R0), 0);
        m.ldr_const(Reg::R2, 0xFFFF_FFFF);
        m.movs_imm(Reg::R1, 40);
        m.lsrs_reg(Reg::R2, Reg::R1);
        assert_eq!(m.reg(Reg::R2), 0);
    }

    #[test]
    fn lsrs_imm_32_zeroes_with_carry_from_bit31() {
        let mut m = machine();
        m.ldr_const(Reg::R0, 0x8000_0000);
        m.lsrs_imm(Reg::R0, Reg::R0, 32);
        assert_eq!(m.reg(Reg::R0), 0);
        assert!(m.cond(Cond::Hs));
    }

    #[test]
    fn adcs_propagates_carry_across_words() {
        // 0xFFFFFFFF + 1 with carry chain = 0x1_0000_0000.
        let mut m = machine();
        m.ldr_const(Reg::R0, 0xFFFF_FFFF);
        m.movs_imm(Reg::R1, 1);
        m.movs_imm(Reg::R2, 0);
        m.movs_imm(Reg::R3, 0);
        m.adds(Reg::R0, Reg::R0, Reg::R1); // low word, sets carry
        m.adcs(Reg::R2, Reg::R3); // high word += carry
        assert_eq!(m.reg(Reg::R0), 0);
        assert_eq!(m.reg(Reg::R2), 1);
    }

    #[test]
    fn sbcs_borrows() {
        let mut m = machine();
        m.movs_imm(Reg::R0, 0);
        m.movs_imm(Reg::R1, 1);
        m.movs_imm(Reg::R2, 5);
        m.movs_imm(Reg::R3, 0);
        m.subs(Reg::R0, Reg::R0, Reg::R1); // 0 - 1 borrows
        m.sbcs(Reg::R2, Reg::R3); // 5 - 0 - borrow = 4
        assert_eq!(m.reg(Reg::R0), u32::MAX);
        assert_eq!(m.reg(Reg::R2), 4);
    }

    #[test]
    fn signed_conditions() {
        let mut m = machine();
        m.movs_imm(Reg::R0, 1);
        m.rsbs(Reg::R0, Reg::R0); // -1
        m.movs_imm(Reg::R1, 1);
        m.cmp(Reg::R0, Reg::R1); // -1 cmp 1
        assert!(m.cond(Cond::Lt));
        assert!(m.cond(Cond::Le));
        assert!(!m.cond(Cond::Ge));
        assert!(!m.cond(Cond::Eq));
        // Unsigned view: 0xFFFFFFFF >= 1.
        assert!(m.cond(Cond::Hs));
    }

    #[test]
    fn branch_costs_depend_on_outcome() {
        let mut m = machine();
        m.movs_imm(Reg::R0, 1);
        m.cmp_imm(Reg::R0, 1);
        let c0 = m.cycles();
        assert!(m.b_cond(Cond::Eq));
        assert_eq!(m.cycles() - c0, 2);
        let c1 = m.cycles();
        assert!(!m.b_cond(Cond::Ne));
        assert_eq!(m.cycles() - c1, 1);
    }

    #[test]
    fn muls_wraps() {
        let mut m = machine();
        m.ldr_const(Reg::R0, 0x1234_5678);
        m.ldr_const(Reg::R1, 0x9ABC_DEF0);
        m.muls(Reg::R0, Reg::R1);
        assert_eq!(m.reg(Reg::R0), 0x1234_5678u32.wrapping_mul(0x9ABC_DEF0));
    }

    #[test]
    fn energy_accrues_per_model() {
        let mut m = machine();
        m.movs_imm(Reg::R0, 1);
        m.movs_imm(Reg::R1, 2);
        let e0 = m.energy_pj();
        m.eors(Reg::R0, Reg::R1);
        assert!((m.energy_pj() - e0 - 12.43).abs() < 1e-9);
        m.adds(Reg::R0, Reg::R0, Reg::R1);
        assert!((m.energy_pj() - e0 - 12.43 - 13.45).abs() < 1e-9);
    }

    #[test]
    fn categories_attribute_nested_cycles_to_innermost() {
        let mut m = machine();
        m.in_category(Category::Multiply, |m| {
            m.movs_imm(Reg::R0, 1);
            m.in_category(Category::MultiplyPrecomputation, |m| {
                m.movs_imm(Reg::R1, 2);
                m.movs_imm(Reg::R2, 3);
            });
            m.movs_imm(Reg::R3, 4);
        });
        assert_eq!(m.category_totals(Category::Multiply).cycles, 2);
        assert_eq!(
            m.category_totals(Category::MultiplyPrecomputation).cycles,
            2
        );
        assert_eq!(m.category_totals(Category::Support).cycles, 0);
    }

    #[test]
    fn stack_transfer_costs_one_plus_n() {
        let mut m = machine();
        m.stack_transfer(4);
        assert_eq!(m.cycles(), 5);
    }

    #[test]
    #[should_panic(expected = "out of RAM")]
    fn alloc_past_end_panics() {
        let mut m = Machine::new(4);
        m.alloc(5);
    }

    #[test]
    fn category_override_beats_nested_scopes() {
        let mut m = machine();
        m.with_category_override(Category::TnafPrecomputation, |m| {
            m.in_category(Category::Multiply, |m| {
                m.movs_imm(Reg::R0, 1);
            });
        });
        m.in_category(Category::Multiply, |m| m.movs_imm(Reg::R1, 2));
        assert_eq!(m.category_totals(Category::TnafPrecomputation).cycles, 1);
        assert_eq!(m.category_totals(Category::Multiply).cycles, 1);
    }

    #[test]
    fn sp_relative_addressing() {
        let mut m = machine();
        let frame = m.alloc(8);
        m.set_base(Reg::Sp, frame);
        m.movs_imm(Reg::R0, 17);
        m.str_sp(Reg::R0, 5);
        m.ldr_sp(Reg::R1, 5);
        assert_eq!(m.reg(Reg::R1), 17);
        assert_eq!(m.read_slice(frame, 8)[5], 17);
    }

    #[test]
    fn recording_captures_decodable_instructions() {
        let mut m = machine();
        let a = m.alloc(4);
        m.set_base(Reg::R0, a);
        m.start_recording();
        m.movs_imm(Reg::R1, 7);
        m.str(Reg::R1, Reg::R0, 2);
        m.ldr(Reg::R2, Reg::R0, 2);
        m.eors(Reg::R2, Reg::R1);
        m.adds(Reg::R3, Reg::R1, Reg::R2);
        m.cmp_imm(Reg::R3, 0);
        m.b_cond(Cond::Ne);
        let stream = m.take_recording();
        assert_eq!(stream.len(), 7);
        // Every recorded instruction round-trips through its encoding
        // and reports the class that was charged.
        for step in &stream.steps {
            let instr = step.instr;
            let code = instr.encode();
            let (decoded, _) =
                crate::isa::Instr::decode(&code).unwrap_or_else(|| panic!("decode of {instr}"));
            assert_eq!(decoded, instr);
            assert_eq!(step.category, Category::Support);
        }
        assert_eq!(stream.steps[0].instr.class(), InstrClass::Mov);
        assert_eq!(stream.steps[1].instr.class(), InstrClass::Str);
        assert_eq!(stream.steps[6].instr.class(), InstrClass::BranchTaken);
    }

    #[test]
    fn recording_captures_literals_categories_and_reg_writes() {
        let mut m = machine();
        let a = m.alloc(4);
        m.start_recording();
        m.in_category(Category::Multiply, |m| {
            m.ldr_const(Reg::R1, 0xDEAD_BEEF);
        });
        m.set_base(Reg::R0, a);
        m.movs_imm(Reg::R2, 3);
        let rec = m.take_recording();
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.steps[0].literal, Some(0xDEAD_BEEF));
        assert_eq!(rec.steps[0].category, Category::Multiply);
        assert_eq!(rec.steps[1].literal, None);
        assert_eq!(rec.steps[1].category, Category::Support);
        // The set_base landed between the two costed instructions.
        assert_eq!(
            rec.reg_writes,
            vec![RecordedSetReg {
                at: 1,
                reg: Reg::R0,
                value: a.to_base_register_value()
            }]
        );
    }

    #[test]
    fn recording_is_off_by_default_and_clears_on_take() {
        let mut m = machine();
        m.movs_imm(Reg::R0, 1);
        assert!(m.take_recording().is_empty());
        m.start_recording();
        m.movs_imm(Reg::R0, 2);
        assert_eq!(m.take_recording().len(), 1);
        m.movs_imm(Reg::R0, 3);
        m.set_reg(Reg::R1, 9);
        let rec = m.take_recording();
        assert!(rec.is_empty(), "take stops recording");
        assert!(rec.reg_writes.is_empty(), "take stops reg-write capture");
    }

    #[test]
    fn snapshot_delta_reports() {
        let mut m = machine();
        m.movs_imm(Reg::R0, 1);
        let snap = m.snapshot();
        m.ldr_const(Reg::R1, 5);
        m.eors(Reg::R0, Reg::R1);
        let r = m.report_since(&snap);
        assert_eq!(r.cycles, 3);
        assert_eq!(r.counts.count(InstrClass::Eor), 1);
        assert_eq!(r.counts.count(InstrClass::Ldr), 1);
        assert_eq!(r.counts.count(InstrClass::Mov), 0);
    }
}
