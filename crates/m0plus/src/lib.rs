//! Instruction-level cost and energy model of the ARM Cortex-M0+.
//!
//! This crate is the *measurement substrate* of the reproduction of
//! "Ultra Low-Power implementation of ECC on the ARM Cortex-M0+"
//! (De Clercq, Uhsadel, Van Herrewege, Verbauwhede — DAC 2014).
//!
//! The paper evaluates on a physical Cortex-M0+ board attached to a power
//! measurement rig. No such board is available here, so we substitute a
//! micro-architectural cost model: an abstract machine ([`Machine`]) with
//! the ARMv6-M register file (13 general-purpose registers, the lo/hi
//! register split of the Thumb instruction set), word-addressed RAM, and a
//! per-instruction cycle cost table taken from the Cortex-M0+ Technical
//! Reference Manual (loads/stores 2 cycles, data processing 1 cycle, taken
//! branches 2 cycles — the M0+ has a 2-stage pipeline).
//!
//! Energy is accounted per cycle and per instruction class using the
//! paper's own measured values (its Table 3: LDR 10.98 pJ/cycle … ADD
//! 13.45 pJ/cycle at 48 MHz); see [`EnergyModel`] for the documented
//! assumptions covering classes the paper does not list.
//!
//! Algorithm kernels from the sibling crates are written as *virtual
//! assembly*: straight-line sequences of calls on [`Machine`], one call per
//! Thumb instruction. The machine both executes the computation (so the
//! result can be checked against an independent portable implementation)
//! and tallies cycles, instruction counts and energy, attributed to
//! operation categories ([`Category`]) so that the paper's Table 7 can be
//! regenerated.
//!
//! # Example
//!
//! ```
//! use m0plus::{Machine, Reg};
//!
//! let mut m = Machine::new(64);
//! let buf = m.alloc(2);
//! m.write_slice(buf, &[5, 7]);
//! m.set_reg(Reg::R0, buf.to_base_register_value());
//! m.ldr(Reg::R1, Reg::R0, 0); // 2 cycles
//! m.ldr(Reg::R2, Reg::R0, 1); // 2 cycles
//! m.eors(Reg::R1, Reg::R2);   // 1 cycle
//! assert_eq!(m.reg(Reg::R1), 5 ^ 7);
//! assert_eq!(m.cycles(), 5);
//! ```

pub mod asm;
pub mod backend;
pub mod cost;
pub mod energy;
pub mod exec;
pub mod fault;
pub mod footprint;
pub mod isa;
pub mod machine;
pub mod profile;
pub mod report;
pub mod rig;
pub mod target;
#[cfg(feature = "trace")]
pub mod trace;

pub use backend::{Backend, KernelRun};
pub use cost::InstrClass;
pub use energy::EnergyModel;
pub use exec::{
    execute, execute_fragment, execute_fragment_ctl, predecode, predecode_cache_reset,
    predecode_cache_stats, predecode_enabled, predecode_with, set_predecode_enabled,
    set_superblock_enabled, superblock_enabled, ExecError, ExecStats, Predecoded, StepAction,
};
pub use fault::{replay_predecoded, FaultKind, FaultPlan, FaultedRun, RecordedKernel};
pub use isa::Instr;
pub use machine::{Addr, Cond, Machine, RecordedSetReg, RecordedStep, Recording, Reg};
pub use profile::{Category, CategoryTotals};
pub use report::{ClassCounts, RunReport, Snapshot};
pub use rig::MeasurementRig;
pub use target::{TargetModel, TargetSpec};
#[cfg(feature = "trace")]
pub use trace::{Trace, TraceClass, TraceDivergence, TraceEvent};

/// Clock frequency of the paper's target platform: 48 MHz.
pub const CLOCK_HZ: u64 = 48_000_000;
