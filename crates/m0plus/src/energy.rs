//! Per-instruction energy model (the paper's Table 3).
//!
//! The paper measured the energy used *per cycle* by different instructions
//! on the physical board at 48 MHz:
//!
//! | Instruction | Energy \[pJ/cycle\] |
//! |---|---|
//! | LDR | 10.98 |
//! | LSR | 12.05 |
//! | MUL | 12.14 |
//! | LSL | 12.21 |
//! | XOR | 12.43 |
//! | ADD | 13.45 |
//!
//! Classes the paper did not measure are assigned documented estimates:
//! stores behave like loads (same bus activity), `SUB` like `ADD` (same
//! adder), other bitwise logic like `XOR`, moves/compares like the cheap
//! shift class, branches like `LSL`. These assumptions only affect the
//! absolute energy figure by a fraction of a percent because the ECC
//! kernels are dominated by the six measured classes.

use crate::cost::InstrClass;

/// Energies of the six instruction classes the paper measured, in
/// pJ/cycle at 48 MHz (its Table 3).
pub mod table3 {
    /// `LDR`: the cheapest measured instruction per cycle.
    pub const LDR_PJ: f64 = 10.98;
    /// `LSR`.
    pub const LSR_PJ: f64 = 12.05;
    /// `MUL`.
    pub const MUL_PJ: f64 = 12.14;
    /// `LSL`.
    pub const LSL_PJ: f64 = 12.21;
    /// `XOR` (`EORS`).
    pub const XOR_PJ: f64 = 12.43;
    /// `ADD`: the most energy-hungry measured instruction.
    pub const ADD_PJ: f64 = 13.45;
}

/// Maps an [`InstrClass`] to its energy per cycle in picojoules.
///
/// The default model reproduces the paper's Table 3; custom models can be
/// constructed for sensitivity analysis (for instance to check that the
/// binary-vs-prime conclusion of §3.1 is robust to the energy assumptions).
///
/// ```
/// use m0plus::{EnergyModel, InstrClass};
/// let model = EnergyModel::cortex_m0plus();
/// assert_eq!(model.picojoules_per_cycle(InstrClass::Ldr), 10.98);
/// // An LDR takes 2 cycles, so per instruction:
/// assert_eq!(model.picojoules_per_instr(InstrClass::Ldr), 2.0 * 10.98);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    pj_per_cycle: [f64; InstrClass::ALL.len()],
    /// Per-class cycle counts of the target this model was built for.
    /// The default constructors use the Cortex-M0+ table; target-aware
    /// constructors ([`EnergyModel::for_target`]) carry their core's
    /// table so the [`Machine`](crate::Machine) charges cycles and
    /// energy from one coherent source.
    cycles: [u64; InstrClass::ALL.len()],
    /// `pj_per_cycle[i] * cycles[i]`, cached because the machine charges
    /// energy on every retired instruction and the replay engines run
    /// millions of them.
    pj_per_instr: [f64; InstrClass::ALL.len()],
}

impl EnergyModel {
    /// The paper's measured Cortex-M0+ model (Table 3) plus the documented
    /// estimates for unmeasured classes.
    ///
    /// This delegates to the `cortex-m0plus` entry of the
    /// [`crate::target`] registry — the registry is the single source of
    /// truth for the table; this constructor and
    /// [`Machine::new`](crate::Machine::new) are views of it.
    pub fn cortex_m0plus() -> Self {
        Self::for_target(crate::target::default_target())
    }

    /// The model induced by a target: its pJ/cycle table multiplied by
    /// its own cycle table.
    pub fn for_target(target: &dyn crate::target::TargetModel) -> Self {
        Self::from_tables(target.energy_table(), target.cycle_table())
    }

    /// Builds a model with a uniform energy per cycle (useful as a null
    /// hypothesis: with a flat model the §3.1 instruction-mix argument
    /// disappears and only cycle counts matter). Cycle counts are the
    /// default Cortex-M0+ table.
    pub fn uniform(pj_per_cycle: f64) -> Self {
        Self::from_tables(
            [pj_per_cycle; InstrClass::ALL.len()],
            crate::target::M0PLUS_CYCLES,
        )
    }

    /// Returns a copy of this model with one class's pJ/cycle overridden
    /// (the cycle table — and hence the target — is preserved).
    pub fn with_class(mut self, class: InstrClass, pj_per_cycle: f64) -> Self {
        self.pj_per_cycle[class.index()] = pj_per_cycle;
        Self::from_tables(self.pj_per_cycle, self.cycles)
    }

    fn from_tables(
        pj_per_cycle: [f64; InstrClass::ALL.len()],
        cycles: [u64; InstrClass::ALL.len()],
    ) -> Self {
        let mut pj_per_instr = [0.0; InstrClass::ALL.len()];
        for c in InstrClass::ALL {
            pj_per_instr[c.index()] = pj_per_cycle[c.index()] * cycles[c.index()] as f64;
        }
        Self {
            pj_per_cycle,
            cycles,
            pj_per_instr,
        }
    }

    /// Energy per cycle for `class`, in pJ.
    pub fn picojoules_per_cycle(&self, class: InstrClass) -> f64 {
        self.pj_per_cycle[class.index()]
    }

    /// Cycle cost of one instruction of `class` on this model's target.
    #[inline]
    pub fn cycles_of(&self, class: InstrClass) -> u64 {
        self.cycles[class.index()]
    }

    /// [`EnergyModel::cycles_of`] by dense class index (superblock fast
    /// path, mirroring [`EnergyModel::pj_per_instr_idx`]).
    #[inline]
    pub(crate) fn cycles_idx(&self, idx: usize) -> u64 {
        self.cycles[idx]
    }

    /// The full per-class cycle table, in [`InstrClass::ALL`] order —
    /// what the predecoder bakes into its per-target `MicroOp` tables.
    pub fn cycle_table(&self) -> &[u64; InstrClass::ALL.len()] {
        &self.cycles
    }

    /// Energy of one complete instruction of `class` (cycles × pJ/cycle).
    #[inline]
    pub fn picojoules_per_instr(&self, class: InstrClass) -> f64 {
        self.pj_per_instr[class.index()]
    }

    /// [`EnergyModel::picojoules_per_instr`] by dense class index: the
    /// superblock lowering precomputes `InstrClass::index()` once per
    /// position, so the block interpreter skips the enum round-trip on
    /// every retired instruction. Same table, same `f64` values.
    #[inline]
    pub(crate) fn pj_per_instr_idx(&self, idx: usize) -> f64 {
        self.pj_per_instr[idx]
    }

    /// Average power in microwatts of a workload that used `energy_pj`
    /// picojoules over `cycles` cycles at `clock_hz`.
    ///
    /// The paper reports e.g. 577.2 µW for its random-point multiplication;
    /// this is the quantity its measurement rig produced.
    pub fn average_power_uw(energy_pj: f64, cycles: u64, clock_hz: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        let seconds = cycles as f64 / clock_hz as f64;
        energy_pj * 1e-12 / seconds * 1e6
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::cortex_m0plus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values_are_exposed() {
        let m = EnergyModel::cortex_m0plus();
        assert_eq!(m.picojoules_per_cycle(InstrClass::Ldr), 10.98);
        assert_eq!(m.picojoules_per_cycle(InstrClass::Lsr), 12.05);
        assert_eq!(m.picojoules_per_cycle(InstrClass::Mul), 12.14);
        assert_eq!(m.picojoules_per_cycle(InstrClass::Lsl), 12.21);
        assert_eq!(m.picojoules_per_cycle(InstrClass::Eor), 12.43);
        assert_eq!(m.picojoules_per_cycle(InstrClass::Add), 13.45);
    }

    #[test]
    fn add_is_most_expensive_measured_class() {
        // §4.1: "The ADD instruction was found to be the most energy
        // hungry, requiring 6.9% more energy than any other measured
        // instruction" — 13.45 / 12.43 ≈ 1.082 ≥ 1.069 over XOR, larger
        // over the rest.
        let m = EnergyModel::cortex_m0plus();
        let add = m.picojoules_per_cycle(InstrClass::Add);
        for c in [
            InstrClass::Ldr,
            InstrClass::Lsr,
            InstrClass::Mul,
            InstrClass::Lsl,
            InstrClass::Eor,
        ] {
            assert!(add > m.picojoules_per_cycle(c));
        }
        assert!(add / m.picojoules_per_cycle(InstrClass::Eor) > 1.069);
    }

    #[test]
    fn measured_spread_is_22_5_percent() {
        // §4.1: "A variation in energy consumption of up to 22.5% was
        // observed between different instructions": 13.45 / 10.98 = 1.225.
        let spread = table3::ADD_PJ / table3::LDR_PJ;
        assert!((spread - 1.225).abs() < 0.001);
    }

    #[test]
    fn shifts_and_xor_cheaper_than_add() {
        // The §3.1 argument for binary fields.
        let m = EnergyModel::cortex_m0plus();
        assert!(m.picojoules_per_cycle(InstrClass::Lsl) < m.picojoules_per_cycle(InstrClass::Add));
        assert!(m.picojoules_per_cycle(InstrClass::Lsr) < m.picojoules_per_cycle(InstrClass::Add));
        assert!(m.picojoules_per_cycle(InstrClass::Eor) < m.picojoules_per_cycle(InstrClass::Add));
    }

    #[test]
    fn average_power_of_pure_xor_stream_is_about_600_uw() {
        // 12.43 pJ per cycle at 48 MHz = 596.6 µW — consistent with the
        // ~600 µW the paper measured for the (XOR-dominated) RELIC build.
        let cycles = 1_000_000u64;
        let energy = 12.43 * cycles as f64;
        let p = EnergyModel::average_power_uw(energy, cycles, crate::CLOCK_HZ);
        assert!((p - 596.64).abs() < 0.1, "got {p}");
    }

    #[test]
    fn uniform_and_override_models() {
        let m = EnergyModel::uniform(10.0).with_class(InstrClass::Mul, 20.0);
        assert_eq!(m.picojoules_per_cycle(InstrClass::Add), 10.0);
        assert_eq!(m.picojoules_per_cycle(InstrClass::Mul), 20.0);
        assert_eq!(m.picojoules_per_instr(InstrClass::Ldr), 20.0);
    }

    #[test]
    fn zero_cycles_has_zero_power() {
        assert_eq!(EnergyModel::average_power_uw(1.0, 0, crate::CLOCK_HZ), 0.0);
    }
}
