//! Instruction classes and their cycle costs on the Cortex-M0+.
//!
//! Cycle counts follow the Cortex-M0+ Technical Reference Manual (r0p1),
//! the document the paper cites as reference \[2\]. The M0+ has a 2-stage
//! pipeline, which is why a taken branch costs only 2 cycles (1 on the
//! older 3-stage M0 costs 3). The single-cycle multiplier configuration is
//! assumed (`MULS` = 1 cycle), matching the paper's energy table in which a
//! `MUL` costs about the same energy per cycle as a shift.

/// A class of Thumb (ARMv6-M) instructions with uniform cycle cost and
/// uniform per-cycle energy.
///
/// The granularity matches the paper's Table 3, which distinguishes
/// `LDR`, `LSR`, `MUL`, `LSL`, `XOR` (`EORS`) and `ADD`; the remaining
/// classes cover the instructions needed by the ECC kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstrClass {
    /// Memory load (`LDR`, `LDRH`, `LDRB`): 2 cycles.
    Ldr,
    /// Memory store (`STR`, `STRH`, `STRB`): 2 cycles.
    Str,
    /// Logical shift left (`LSLS`): 1 cycle.
    Lsl,
    /// Logical / arithmetic shift right (`LSRS`, `ASRS`, `RORS`): 1 cycle.
    Lsr,
    /// Exclusive or (`EORS`): 1 cycle.
    Eor,
    /// Other bitwise logic (`ANDS`, `ORRS`, `BICS`, `MVNS`, `TST`): 1 cycle.
    Logic,
    /// Addition (`ADDS`, `ADCS`, `ADD`): 1 cycle.
    Add,
    /// Subtraction / compare-negative (`SUBS`, `SBCS`, `RSBS`): 1 cycle.
    Sub,
    /// Multiply (`MULS`): 1 cycle (single-cycle multiplier configuration).
    Mul,
    /// Register / immediate moves (`MOVS`, `MOV`, sign/zero extends): 1 cycle.
    Mov,
    /// Compare (`CMP`, `CMN`): 1 cycle.
    Cmp,
    /// Taken branch (conditional or not) / `BX`: 2 cycles (pipeline refill).
    BranchTaken,
    /// Conditional branch that falls through: 1 cycle.
    BranchNotTaken,
    /// Branch with link (`BL`): 3 cycles.
    Bl,
    /// One register transferred by `PUSH`/`POP`/`LDM`/`STM`
    /// (cost 1 + N cycles is modelled as one `StackWord` per register plus
    /// one [`InstrClass::Mov`]-class base cycle charged by the helper).
    StackWord,
    /// `NOP` or architectural padding: 1 cycle.
    Nop,
}

impl InstrClass {
    /// All instruction classes, in a stable display order.
    pub const ALL: [InstrClass; 16] = [
        InstrClass::Ldr,
        InstrClass::Str,
        InstrClass::Lsl,
        InstrClass::Lsr,
        InstrClass::Eor,
        InstrClass::Logic,
        InstrClass::Add,
        InstrClass::Sub,
        InstrClass::Mul,
        InstrClass::Mov,
        InstrClass::Cmp,
        InstrClass::BranchTaken,
        InstrClass::BranchNotTaken,
        InstrClass::Bl,
        InstrClass::StackWord,
        InstrClass::Nop,
    ];

    /// The cycle cost of one instruction of this class on the default
    /// Cortex-M0+ target. Other cores carry their own tables in the
    /// [`crate::target`] registry; this accessor stays `const` because
    /// the decoder and the seed-era call sites use it in constant
    /// positions, and it reads the same
    /// [`crate::target::M0PLUS_CYCLES`] table the registry's default
    /// entry is built from.
    ///
    /// ```
    /// use m0plus::InstrClass;
    /// assert_eq!(InstrClass::Ldr.cycles(), 2);
    /// assert_eq!(InstrClass::Eor.cycles(), 1);
    /// assert_eq!(InstrClass::BranchTaken.cycles(), 2);
    /// ```
    pub const fn cycles(self) -> u64 {
        crate::target::M0PLUS_CYCLES[self.index()]
    }

    /// A short mnemonic used in reports.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            InstrClass::Ldr => "LDR",
            InstrClass::Str => "STR",
            InstrClass::Lsl => "LSL",
            InstrClass::Lsr => "LSR",
            InstrClass::Eor => "EOR",
            InstrClass::Logic => "AND/ORR",
            InstrClass::Add => "ADD",
            InstrClass::Sub => "SUB",
            InstrClass::Mul => "MUL",
            InstrClass::Mov => "MOV",
            InstrClass::Cmp => "CMP",
            InstrClass::BranchTaken => "B(taken)",
            InstrClass::BranchNotTaken => "B(fall)",
            InstrClass::Bl => "BL",
            InstrClass::StackWord => "PUSH/POP",
            InstrClass::Nop => "NOP",
        }
    }

    /// Index of this class inside [`InstrClass::ALL`], used for dense
    /// per-class counters.
    pub(crate) const fn index(self) -> usize {
        match self {
            InstrClass::Ldr => 0,
            InstrClass::Str => 1,
            InstrClass::Lsl => 2,
            InstrClass::Lsr => 3,
            InstrClass::Eor => 4,
            InstrClass::Logic => 5,
            InstrClass::Add => 6,
            InstrClass::Sub => 7,
            InstrClass::Mul => 8,
            InstrClass::Mov => 9,
            InstrClass::Cmp => 10,
            InstrClass::BranchTaken => 11,
            InstrClass::BranchNotTaken => 12,
            InstrClass::Bl => 13,
            InstrClass::StackWord => 14,
            InstrClass::Nop => 15,
        }
    }
}

impl std::fmt::Display for InstrClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_ops_cost_two_cycles() {
        assert_eq!(InstrClass::Ldr.cycles(), 2);
        assert_eq!(InstrClass::Str.cycles(), 2);
    }

    #[test]
    fn data_processing_costs_one_cycle() {
        for c in [
            InstrClass::Lsl,
            InstrClass::Lsr,
            InstrClass::Eor,
            InstrClass::Logic,
            InstrClass::Add,
            InstrClass::Sub,
            InstrClass::Mul,
            InstrClass::Mov,
            InstrClass::Cmp,
        ] {
            assert_eq!(c.cycles(), 1, "{c} should be single-cycle");
        }
    }

    #[test]
    fn branch_costs_match_two_stage_pipeline() {
        assert_eq!(InstrClass::BranchTaken.cycles(), 2);
        assert_eq!(InstrClass::BranchNotTaken.cycles(), 1);
        assert_eq!(InstrClass::Bl.cycles(), 3);
    }

    #[test]
    fn index_is_consistent_with_all() {
        for (i, c) in InstrClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in InstrClass::ALL {
            assert!(seen.insert(c.mnemonic()), "duplicate mnemonic {c}");
        }
    }
}
