//! Deterministic fault injection on recorded kernel executions.
//!
//! The recorded-program backend already turns every modeled kernel into
//! a concrete Thumb-16 instruction stream ([`Recording`] → `Program`).
//! This module perturbs a *replay* of that stream at a chosen
//! instruction index with one of the three classic glitch models —
//! instruction skip, single-bit register flip, single-bit memory flip —
//! and runs the faulted execution to completion, or to a clean
//! [`ExecError`] abort, on a clone of the pre-kernel machine state.
//!
//! Everything is deterministic: a [`FaultPlan`] fully describes one
//! fault, and [`FaultPlan::sample`] draws plans from the in-tree
//! [`prng::SplitMix64`], so a campaign with a fixed seed replays
//! byte-for-byte on every platform.

use crate::asm::Program;
use crate::backend;
use crate::exec::{self, ExecError, ExecStats, Predecoded, StepAction};
use crate::machine::{Machine, Recording, Reg};
use prng::SplitMix64;
use std::ops::Range;
use std::sync::Arc;

/// The three single-fault glitch models of the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The targeted instruction is fetched but never retires (the
    /// effect of a clock or voltage glitch on the 2-stage pipeline).
    SkipInstruction,
    /// One bit of a general-purpose register is flipped just before the
    /// targeted instruction executes.
    RegisterBitFlip {
        /// The register hit by the upset.
        reg: Reg,
        /// Bit position, `0..32`.
        bit: u32,
    },
    /// One bit of a RAM word is flipped just before the targeted
    /// instruction executes.
    MemoryBitFlip {
        /// The word address hit by the upset.
        word: u32,
        /// Bit position, `0..32`.
        bit: u32,
    },
}

impl FaultKind {
    /// Short label for campaign tables and logs.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::SkipInstruction => "skip",
            FaultKind::RegisterBitFlip { .. } => "reg-flip",
            FaultKind::MemoryBitFlip { .. } => "mem-flip",
        }
    }
}

/// One deterministic perturbation: apply `kind` when the instruction at
/// trace index `at` is about to retire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Index into the recorded instruction stream.
    pub at: u64,
    /// What happens there.
    pub kind: FaultKind,
}

impl FaultPlan {
    /// Draws a uniformly random plan for a trace of `trace_len`
    /// instructions. Memory upsets target a word drawn from
    /// `mem_regions` (half-open word ranges — typically the machine's
    /// allocated RAM minus any range modeling flash ROM); when no
    /// region is given only skips and register flips are drawn.
    ///
    /// # Panics
    ///
    /// Panics if `trace_len` is zero.
    pub fn sample(rng: &mut SplitMix64, trace_len: u64, mem_regions: &[Range<u32>]) -> FaultPlan {
        assert!(trace_len > 0, "cannot fault an empty trace");
        let at = rng.below(trace_len);
        let mem_words: u64 = mem_regions.iter().map(|r| (r.end - r.start) as u64).sum();
        let kinds = if mem_words == 0 { 2 } else { 3 };
        let kind = match rng.below(kinds) {
            0 => FaultKind::SkipInstruction,
            1 => FaultKind::RegisterBitFlip {
                reg: Reg::GENERAL[rng.below(Reg::GENERAL.len() as u64) as usize],
                bit: rng.below(32) as u32,
            },
            _ => {
                let mut pick = rng.below(mem_words);
                let mut word = 0;
                for r in mem_regions {
                    let len = (r.end - r.start) as u64;
                    if pick < len {
                        word = r.start + pick as u32;
                        break;
                    }
                    pick -= len;
                }
                FaultKind::MemoryBitFlip {
                    word,
                    bit: rng.below(32) as u32,
                }
            }
        };
        FaultPlan { at, kind }
    }
}

/// Outcome of one (possibly faulted) replay.
#[derive(Debug)]
pub struct FaultedRun {
    /// The machine after the replay (at the abort point on error).
    pub machine: Machine,
    /// Replay statistics, or the abort reason.
    pub stats: Result<ExecStats, ExecError>,
}

impl FaultedRun {
    /// Whether the replay aborted with an executor error (the machine's
    /// HardFault-equivalent — a *detected* fault for free).
    pub fn aborted(&self) -> bool {
        self.stats.is_err()
    }
}

/// The per-step replay contract, factored out of the executors: reapply
/// the recording's positioned un-costed register writes, force the
/// recorded per-step category, inject the fault at its trace index.
///
/// All of that work is *sparse* — writes sit at a handful of indices,
/// categories run in long stretches, the fault hits one index — so the
/// hook can also report ([`ReplayHook::next_break`]) the next index at
/// which it has anything to do, which is what lets the campaign path
/// run hook-free between boundaries via
/// [`exec::execute_fragment_ctl_scheduled`].
struct ReplayHook<'a> {
    steps: &'a [crate::machine::RecordedStep],
    writes: &'a [crate::machine::RecordedSetReg],
    cursor: usize,
    fault: Option<FaultPlan>,
}

impl<'a> ReplayHook<'a> {
    fn new(recording: &'a Recording, fault: Option<&FaultPlan>) -> ReplayHook<'a> {
        ReplayHook {
            steps: &recording.steps,
            writes: &recording.reg_writes,
            cursor: 0,
            fault: fault.copied(),
        }
    }

    /// The per-step work at retired-instruction index `idx`.
    fn at(&mut self, mm: &mut Machine, idx: usize) -> StepAction {
        while self.cursor < self.writes.len() && self.writes[self.cursor].at <= idx {
            let w = &self.writes[self.cursor];
            mm.set_reg(w.reg, w.value);
            self.cursor += 1;
        }
        if idx < self.steps.len() {
            mm.set_category_override(Some(self.steps[idx].category));
        }
        if let Some(f) = self.fault {
            if f.at == idx as u64 {
                match f.kind {
                    FaultKind::SkipInstruction => return StepAction::Skip,
                    FaultKind::RegisterBitFlip { reg, bit } => mm.flip_reg_bit(reg, bit),
                    FaultKind::MemoryBitFlip { word, bit } => {
                        mm.flip_mem_bit(word, bit);
                    }
                }
            }
        }
        StepAction::Execute
    }

    /// The next index after `idx` at which [`ReplayHook::at`] would do
    /// anything: a pending write, a category-run boundary, or the fault.
    /// Walking the category run here costs one pass over the recording
    /// in total, not one load per retired instruction.
    fn next_break(&self, idx: usize) -> u64 {
        let mut next = u64::MAX;
        if self.cursor < self.writes.len() {
            next = next.min(self.writes[self.cursor].at as u64);
        }
        if idx < self.steps.len() {
            let cat = self.steps[idx].category;
            let mut j = idx + 1;
            while j < self.steps.len() && self.steps[j].category == cat {
                j += 1;
            }
            if j < self.steps.len() {
                next = next.min(j as u64);
            }
        }
        if let Some(f) = self.fault {
            if f.at > idx as u64 {
                next = next.min(f.at);
            }
        }
        next
    }
}

/// Flushes trailing register writes (those recorded after the last
/// costed instruction), restores the saved category override and
/// packages the run.
fn seal_replay(
    mut m: Machine,
    hook: ReplayHook<'_>,
    saved_override: Option<crate::profile::Category>,
    stats: Result<ExecStats, ExecError>,
) -> FaultedRun {
    if stats.is_ok() {
        for w in &hook.writes[hook.cursor..] {
            m.set_reg(w.reg, w.value);
        }
    }
    m.set_category_override(saved_override);
    FaultedRun { machine: m, stats }
}

/// Replays `program` on a clone of `pre` — the machine state captured
/// just before the kernel ran — reapplying the recording's positioned
/// un-costed register writes and per-step category attribution exactly
/// as the code backend's verified replay does, but *without* the
/// shadow-state equality assertion (a faulted replay diverges by
/// design) and with `fault`, if any, injected at its trace index.
///
/// With predecode enabled (the default) this runs the scheduled-hook
/// fast path of [`replay_predecoded`]; with it disabled
/// ([`exec::set_predecode_enabled`]) it runs the original
/// decode-per-step executor with the hook called at every instruction —
/// the reference arm of the throughput A/B.
pub fn replay(
    pre: &Machine,
    program: &Program,
    recording: &Recording,
    fault: Option<&FaultPlan>,
) -> FaultedRun {
    if exec::predecode_enabled() {
        let predecoded = exec::predecode_with(program, pre.model().cycle_table());
        return replay_predecoded(pre, &predecoded, recording, fault);
    }
    let mut m = pre.clone();
    let saved_override = m.category_override();
    let mut hook = ReplayHook::new(recording, fault);
    // The hook is deliberately kept behind dynamic dispatch here: this
    // arm reproduces the original campaign engine (per-step decode, a
    // `&mut dyn FnMut` hook called at every instruction), so the
    // throughput A/B measures the real before/after of the predecoded
    // scheduled path rather than a partially-optimised strawman.
    let stats = {
        let mut per_step = |mm: &mut Machine, idx: usize| hook.at(mm, idx);
        let ctl: &mut dyn FnMut(&mut Machine, usize) -> StepAction = &mut per_step;
        exec::execute_fragment_ctl_uncached(&mut m, program, recording.steps.len() as u64 + 1, ctl)
    };
    seal_replay(m, hook, saved_override, stats)
}

/// [`replay`] over an already-predecoded fragment: the campaign path.
/// Holding the [`Predecoded`] means replaying a kernel millions of
/// times pays neither per-step decode nor per-replay hashing, and the
/// scheduled hook means the boundary work (register writes, category
/// runs, the fault) is paid per *boundary*, not per instruction.
pub fn replay_predecoded(
    pre: &Machine,
    predecoded: &Predecoded,
    recording: &Recording,
    fault: Option<&FaultPlan>,
) -> FaultedRun {
    let mut m = pre.clone();
    let saved_override = m.category_override();
    let mut hook = ReplayHook::new(recording, fault);
    let stats = exec::execute_fragment_ctl_scheduled(
        &mut m,
        predecoded,
        recording.steps.len() as u64 + 1,
        |mm, idx| {
            let action = hook.at(mm, idx);
            (action, hook.next_break(idx))
        },
    );
    seal_replay(m, hook, saved_override, stats)
}

/// Everything needed to replay one kernel under fault injection: the
/// pre-run machine state, the assembled Thumb-16 fragment and the
/// captured trace.
#[derive(Debug, Clone)]
pub struct RecordedKernel {
    /// Machine state immediately before the kernel ran.
    pub pre: Machine,
    /// The assembled Thumb-16 fragment.
    pub program: Program,
    /// The captured trace (categories + positioned register writes).
    pub recording: Recording,
    /// The fragment decoded once, shared by every replay.
    predecoded: Arc<Predecoded>,
}

impl RecordedKernel {
    /// Bundles a captured kernel, predecoding the fragment once (via
    /// the process-wide cache) so every subsequent replay skips both
    /// decode and hashing.
    pub fn new(pre: Machine, program: Program, recording: Recording) -> RecordedKernel {
        let predecoded = exec::predecode_with(&program, pre.model().cycle_table());
        RecordedKernel {
            pre,
            program,
            recording,
            predecoded,
        }
    }

    /// Records `f` running on a clone of `machine` and assembles the
    /// trace, returning the capture alongside `f`'s output.
    ///
    /// # Panics
    ///
    /// Panics if the trace does not assemble (cannot happen for traces
    /// produced by [`Machine::start_recording`]).
    pub fn capture<T>(machine: &Machine, f: impl FnOnce(&mut Machine) -> T) -> (RecordedKernel, T) {
        let pre = machine.clone();
        let mut rec = machine.clone();
        rec.start_recording();
        let out = f(&mut rec);
        let recording = rec.take_recording();
        let program = backend::translate(&recording).expect("recorded trace assembles");
        (RecordedKernel::new(pre, program, recording), out)
    }

    /// Replays the kernel, with an optional fault, through the stored
    /// predecoded fragment. See [`replay`].
    pub fn replay(&self, fault: Option<&FaultPlan>) -> FaultedRun {
        replay_predecoded(&self.pre, &self.predecoded, &self.recording, fault)
    }

    /// Number of instructions in the captured trace.
    pub fn trace_len(&self) -> u64 {
        self.recording.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Addr;

    /// A little two-operand kernel: out[i] = a[i] ^ b[i] for 4 words,
    /// with a data-dependent twist so skips and flips show up.
    fn xor_kernel(m: &mut Machine, a: Addr, b: Addr, out: Addr) {
        m.set_base(Reg::R0, a);
        m.set_base(Reg::R1, b);
        m.set_base(Reg::R2, out);
        for i in 0..4 {
            m.ldr(Reg::R3, Reg::R0, i);
            m.ldr(Reg::R4, Reg::R1, i);
            m.eors(Reg::R3, Reg::R4);
            m.str(Reg::R3, Reg::R2, i);
        }
    }

    fn setup() -> (Machine, Addr, Addr, Addr) {
        let mut m = Machine::new(64);
        let a = m.alloc(4);
        let b = m.alloc(4);
        let out = m.alloc(4);
        m.write_slice(a, &[0x11, 0x22, 0x33, 0x44]);
        m.write_slice(b, &[0xA0, 0xB0, 0xC0, 0xD0]);
        (m, a, b, out)
    }

    #[test]
    fn clean_replay_matches_direct_execution() {
        let (mut direct, a, b, out) = setup();
        let (kernel, ()) = RecordedKernel::capture(&direct, |m| xor_kernel(m, a, b, out));
        xor_kernel(&mut direct, a, b, out);

        let run = kernel.replay(None);
        assert!(!run.aborted());
        assert_eq!(
            run.machine.read_slice(out, 4),
            direct.read_slice(out, 4),
            "un-faulted replay reproduces the kernel result"
        );
        assert_eq!(run.machine.cycles(), direct.cycles());
        assert_eq!(run.stats.unwrap().instructions, kernel.trace_len());
    }

    #[test]
    fn skip_fault_changes_the_result_deterministically() {
        let (m, a, b, out) = setup();
        let (kernel, ()) = RecordedKernel::capture(&m, |m| xor_kernel(m, a, b, out));
        let clean = kernel.replay(None).machine.read_slice(out, 4);

        // Skipping the first str leaves out[0] unwritten.
        let plan = FaultPlan {
            at: 3,
            kind: FaultKind::SkipInstruction,
        };
        let r1 = kernel.replay(Some(&plan));
        let r2 = kernel.replay(Some(&plan));
        assert!(!r1.aborted());
        assert_eq!(
            r1.machine.read_slice(out, 4),
            r2.machine.read_slice(out, 4),
            "faulted replay is deterministic"
        );
        assert_ne!(r1.machine.read_slice(out, 4), clean);
        // A skipped instruction charges nothing.
        assert!(r1.machine.cycles() < kernel.replay(None).machine.cycles());
    }

    #[test]
    fn register_flip_of_a_base_pointer_aborts_cleanly() {
        let (m, a, b, out) = setup();
        let (kernel, ()) = RecordedKernel::capture(&m, |m| xor_kernel(m, a, b, out));
        // Flip the top bit of the source base register right before the
        // first load: the effective address leaves RAM and the replay
        // must abort with MemOutOfRange instead of panicking.
        let plan = FaultPlan {
            at: 0,
            kind: FaultKind::RegisterBitFlip {
                reg: Reg::R0,
                bit: 31,
            },
        };
        let run = kernel.replay(Some(&plan));
        assert!(run.aborted());
        assert!(matches!(run.stats, Err(ExecError::MemOutOfRange { .. })));
    }

    #[test]
    fn memory_flip_corrupts_exactly_one_bit() {
        let (m, a, b, out) = setup();
        let (kernel, ()) = RecordedKernel::capture(&m, |m| xor_kernel(m, a, b, out));
        let clean = kernel.replay(None).machine.read_slice(out, 4);
        // Flip bit 2 of a[2] before anything reads it.
        let plan = FaultPlan {
            at: 0,
            kind: FaultKind::MemoryBitFlip {
                word: a.0 + 2,
                bit: 2,
            },
        };
        let run = kernel.replay(Some(&plan));
        assert!(!run.aborted());
        let faulted = run.machine.read_slice(out, 4);
        assert_eq!(faulted[0], clean[0]);
        assert_eq!(faulted[2], clean[2] ^ 4);
    }

    #[test]
    fn sampling_is_deterministic_and_respects_regions() {
        let regions = [2u32..6, 10..11];
        let mut g1 = SplitMix64::new(99);
        let mut g2 = SplitMix64::new(99);
        for _ in 0..200 {
            let p1 = FaultPlan::sample(&mut g1, 40, &regions);
            let p2 = FaultPlan::sample(&mut g2, 40, &regions);
            assert_eq!(p1, p2);
            assert!(p1.at < 40);
            if let FaultKind::MemoryBitFlip { word, bit } = p1.kind {
                assert!((2..6).contains(&word) || word == 10);
                assert!(bit < 32);
            }
        }
        // Without regions, memory flips are never drawn.
        let mut g = SplitMix64::new(1);
        for _ in 0..100 {
            let p = FaultPlan::sample(&mut g, 8, &[]);
            assert!(!matches!(p.kind, FaultKind::MemoryBitFlip { .. }));
        }
    }

    #[test]
    fn all_three_kinds_are_eventually_sampled() {
        let mut g = SplitMix64::new(5);
        let regions = vec![0..16, 24..32];
        let (mut skips, mut regs, mut mems) = (0, 0, 0);
        for _ in 0..300 {
            match FaultPlan::sample(&mut g, 100, &regions).kind {
                FaultKind::SkipInstruction => skips += 1,
                FaultKind::RegisterBitFlip { .. } => regs += 1,
                FaultKind::MemoryBitFlip { .. } => mems += 1,
            }
        }
        assert!(skips > 0 && regs > 0 && mems > 0);
    }
}
