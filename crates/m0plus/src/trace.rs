//! Canonical execution traces for leakage verification.
//!
//! A [`Trace`] is the attacker's-eye view of one kernel execution on the
//! cost model: the executed instruction stream in program order (the
//! canonical PC sequence — the machine is host-driven, so the position
//! in the stream *is* the program counter), the effective word address
//! of every memory access, and the per-instruction cycle cost. These
//! are exactly the observables the paper's per-instruction energy model
//! (its Table 3) exposes to a power attacker, so two executions of a
//! kernel on *different secrets* must produce equal traces for the
//! kernel to be secret-independent under the model.
//!
//! Capture is gated behind the `trace` cargo feature (default-on) and
//! costs one predicate per executed instruction while disarmed; see
//! [`Machine::start_trace`](crate::Machine::start_trace). Comparison is
//! class-by-class ([`TraceClass`]): a kernel can be cycle-exact but
//! address-dependent (the López-Dahab window lookups are the canonical
//! example), and the verifier reports each class separately.

use crate::cost::InstrClass;
use crate::isa::Instr;

/// One observable equivalence class of a [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceClass {
    /// The executed instruction stream in program order (PC sequence).
    Pc,
    /// Effective word addresses of memory accesses.
    Addr,
    /// Per-instruction cycle costs.
    Cycles,
}

impl TraceClass {
    /// All classes, in reporting order.
    pub const ALL: [TraceClass; 3] = [TraceClass::Pc, TraceClass::Addr, TraceClass::Cycles];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            TraceClass::Pc => "pc",
            TraceClass::Addr => "addr",
            TraceClass::Cycles => "cycles",
        }
    }
}

impl std::fmt::Display for TraceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One executed instruction as captured by the recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The decoded instruction, or `None` for a follow-on charge that
    /// shares its instruction with the previous event (the per-word
    /// cycles of a `PUSH`/`POP` stack transfer).
    pub instr: Option<Instr>,
    /// The charged instruction class (determines the cycle cost).
    pub class: InstrClass,
    /// Effective word address, for memory-access instructions.
    pub addr: Option<u32>,
}

impl TraceEvent {
    /// Cycle cost of this event.
    pub fn cycles(&self) -> u64 {
        self.class.cycles()
    }

    /// Human-readable rendering (disassembly plus address), used in
    /// divergence reports.
    pub fn describe(&self) -> String {
        let core = match self.instr {
            Some(instr) => format!("{instr}"),
            None => format!("({:?} follow-on)", self.class),
        };
        match self.addr {
            Some(a) => format!("{core}  @[{a:#x}]"),
            None => core,
        }
    }
}

/// The first point where two traces disagree within one [`TraceClass`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDivergence {
    /// The equivalence class that diverged.
    pub class: TraceClass,
    /// Index into the event stream of the first disagreement (equal to
    /// the shorter length when one trace is a prefix of the other).
    pub index: usize,
    /// Rendering of the left trace's event at `index` (disassembly),
    /// or a marker when the left trace ended.
    pub left: String,
    /// Rendering of the right trace's event at `index`.
    pub right: String,
}

impl std::fmt::Display for TraceDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} diverges at instruction {}: {} vs {}",
            self.class, self.index, self.left, self.right
        )
    }
}

/// A canonical execution trace; see the [module docs](self).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Executed events in program order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of captured events (instructions plus follow-on charges).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total cycles across all captured events.
    pub fn total_cycles(&self) -> u64 {
        self.events.iter().map(TraceEvent::cycles).sum()
    }

    fn describe_at(&self, index: usize) -> String {
        match self.events.get(index) {
            Some(e) => e.describe(),
            None => format!("<end of trace, {} events>", self.len()),
        }
    }

    /// First divergence from `other` within `class`, if any.
    pub fn first_divergence(&self, other: &Trace, class: TraceClass) -> Option<TraceDivergence> {
        let shorter = self.len().min(other.len());
        let index = (0..shorter).find(|&i| {
            let (a, b) = (&self.events[i], &other.events[i]);
            match class {
                TraceClass::Pc => a.instr != b.instr || a.class != b.class,
                TraceClass::Addr => a.addr != b.addr,
                TraceClass::Cycles => a.cycles() != b.cycles(),
            }
        });
        let index = match index {
            Some(i) => i,
            None if self.len() != other.len() => shorter,
            None => return None,
        };
        Some(TraceDivergence {
            class,
            index,
            left: self.describe_at(index),
            right: other.describe_at(index),
        })
    }

    /// Compares against `other` class-by-class, returning the first
    /// divergence of each class that disagrees (empty = equivalent in
    /// every class).
    pub fn compare(&self, other: &Trace) -> Vec<TraceDivergence> {
        TraceClass::ALL
            .iter()
            .filter_map(|&c| self.first_divergence(other, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, Reg};

    fn traced(values: [u32; 2], table_index: u32) -> Trace {
        let mut m = Machine::new(64);
        let buf = m.alloc(8);
        m.write_slice(buf, &[1, 2, 3, 4, 5, 6, 7, 8]);
        m.set_base(Reg::R0, buf);
        m.set_reg(Reg::R1, values[0]);
        m.set_reg(Reg::R2, table_index);
        m.start_trace();
        m.ldr_reg(Reg::R3, Reg::R0, Reg::R2); // address depends on r2
        m.eors(Reg::R3, Reg::R1);
        m.str(Reg::R3, Reg::R0, 0);
        m.take_trace()
    }

    #[test]
    fn equal_inputs_give_equal_traces() {
        let a = traced([5, 0], 2);
        let b = traced([9, 0], 2); // different *data*, same control/addresses
        assert!(a.compare(&b).is_empty());
        assert_eq!(a.len(), 3);
        assert_eq!(a.total_cycles(), 2 + 1 + 2);
    }

    #[test]
    fn address_divergence_is_flagged_as_addr_only() {
        let a = traced([5, 0], 2);
        let b = traced([5, 0], 3); // same instructions, different lookup index
        let divs = a.compare(&b);
        assert_eq!(divs.len(), 1, "{divs:?}");
        assert_eq!(divs[0].class, TraceClass::Addr);
        assert_eq!(divs[0].index, 0);
        assert!(divs[0].left.contains("@["), "{}", divs[0].left);
    }

    #[test]
    fn control_flow_divergence_reports_disassembly() {
        let run = |flag: u32| {
            let mut m = Machine::new(16);
            m.set_reg(Reg::R0, flag);
            m.start_trace();
            m.cmp_imm(Reg::R0, 0);
            if m.reg(Reg::R0) == 0 {
                m.movs_imm(Reg::R1, 1);
            } else {
                m.adds_imm(Reg::R1, 2);
                m.adds_imm(Reg::R1, 3);
            }
            m.take_trace()
        };
        let a = run(0);
        let b = run(1);
        let divs = a.compare(&b);
        let pc = divs.iter().find(|d| d.class == TraceClass::Pc).unwrap();
        assert_eq!(pc.index, 1);
        assert!(
            pc.left.to_lowercase().contains("mov"),
            "disassembly missing: {}",
            pc.left
        );
        // Different event counts also shows up in the cycle class.
        assert!(divs.iter().any(|d| d.class == TraceClass::Cycles));
    }

    #[test]
    fn trace_is_off_by_default_and_clears_on_take() {
        let mut m = Machine::new(16);
        m.movs_imm(Reg::R0, 1);
        assert!(m.take_trace().is_empty());
        m.start_trace();
        m.movs_imm(Reg::R0, 2);
        assert_eq!(m.take_trace().len(), 1);
        m.movs_imm(Reg::R0, 3);
        assert!(m.take_trace().is_empty(), "take stops tracing");
    }

    #[test]
    fn stack_transfer_follow_on_events_share_the_instruction() {
        let mut m = Machine::new(64);
        let frame = m.alloc(32);
        m.set_base(Reg::Sp, frame);
        m.start_trace();
        m.stack_transfer(3);
        let t = m.take_trace();
        assert_eq!(t.len(), 4, "1 base + 3 stack words");
        assert!(t.events[0].instr.is_some());
        assert!(t.events[1..].iter().all(|e| e.instr.is_none()));
    }
}
