//! Simulation of the paper's power-measurement setup (§4.1).
//!
//! The authors designed a rig that measures the power drawn by the board
//! while it executes a loop of a single instruction, yielding the
//! per-instruction energies of Table 3. We cannot attach a probe to a
//! simulator, so the [`MeasurementRig`] plays the experiment back: it runs
//! the same single-instruction loops on the [`Machine`] and reports the
//! average energy per cycle that an external power probe would infer
//! (total energy ÷ cycles, with the loop overhead either included — as a
//! real rig inevitably would — or compensated, as the paper's numbers
//! evidently are, since they quote per-instruction values).
//!
//! The experiment is circular by construction (the machine's energy comes
//! from the model that Table 3 seeded) — that is exactly the substitution
//! DESIGN.md documents. What the rig adds is (a) the *procedure*, kept
//! faithful, and (b) a consistency check that loop-overhead compensation
//! recovers the model constants.

use crate::cost::InstrClass;
use crate::machine::{Cond, Machine, Reg};

/// One measured row: instruction, inferred pJ/cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RigReading {
    /// Instruction class exercised by the loop.
    pub class: InstrClass,
    /// Inferred energy per cycle with the loop overhead compensated.
    pub picojoules_per_cycle: f64,
    /// Inferred energy per cycle of the raw loop, overhead included.
    pub raw_picojoules_per_cycle: f64,
    /// Average power of the raw loop in µW at 48 MHz.
    pub raw_power_uw: f64,
}

/// Simulates the single-instruction measurement loops of §4.1.
#[derive(Debug, Clone)]
pub struct MeasurementRig {
    iterations: u32,
    unroll: u32,
}

impl MeasurementRig {
    /// A rig running `iterations` loop iterations with `unroll` copies of
    /// the instruction under test per iteration.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(iterations: u32, unroll: u32) -> Self {
        assert!(iterations > 0 && unroll > 0);
        MeasurementRig { iterations, unroll }
    }

    /// Runs the measurement loop for `class` and returns the reading.
    ///
    /// Only classes that correspond to real instructions the rig can loop
    /// on are supported; branch classes are measured implicitly as part of
    /// the loop overhead.
    pub fn measure(&self, class: InstrClass) -> RigReading {
        let mut m = Machine::new(64);
        let buf = m.alloc(4);
        m.write_slice(buf, &[0xDEAD_BEEF, 0x0BAD_F00D, 5, 7]);
        m.set_base(Reg::R0, buf);
        m.set_reg(Reg::R1, 0x1234_5678);
        m.set_reg(Reg::R2, 3);

        // Warm-up values for the counter in r7.
        m.set_reg(Reg::R7, self.iterations);

        let mut body_cycles = 0u64;
        let mut body_energy = 0.0f64;
        loop {
            let s = m.snapshot();
            for _ in 0..self.unroll {
                match class {
                    InstrClass::Ldr => m.ldr(Reg::R3, Reg::R0, 1),
                    InstrClass::Str => m.str(Reg::R1, Reg::R0, 2),
                    InstrClass::Lsl => m.lsls_imm(Reg::R3, Reg::R1, 3),
                    InstrClass::Lsr => m.lsrs_imm(Reg::R3, Reg::R1, 3),
                    InstrClass::Eor => m.eors(Reg::R1, Reg::R2),
                    InstrClass::Logic => m.ands(Reg::R3, Reg::R1),
                    InstrClass::Add => m.adds(Reg::R3, Reg::R1, Reg::R2),
                    InstrClass::Sub => m.subs(Reg::R3, Reg::R1, Reg::R2),
                    InstrClass::Mul => m.muls(Reg::R1, Reg::R2),
                    InstrClass::Mov => m.mov(Reg::R3, Reg::R1),
                    InstrClass::Cmp => m.cmp(Reg::R1, Reg::R2),
                    InstrClass::Nop => m.nop(),
                    InstrClass::BranchTaken
                    | InstrClass::BranchNotTaken
                    | InstrClass::Bl
                    | InstrClass::StackWord => {
                        panic!("the rig cannot loop on control-flow class {class}")
                    }
                }
            }
            let end = m.snapshot();
            body_cycles += end.cycles - s.cycles;
            body_energy += end.energy_pj - s.energy_pj;
            // Loop tail: decrement + conditional branch back.
            m.subs_imm(Reg::R7, 1);
            if !m.b_cond(Cond::Ne) {
                break;
            }
        }

        let total_cycles = m.cycles();
        let total_energy = m.energy_pj();
        RigReading {
            class,
            picojoules_per_cycle: body_energy / body_cycles as f64,
            raw_picojoules_per_cycle: total_energy / total_cycles as f64,
            raw_power_uw: crate::EnergyModel::average_power_uw(
                total_energy,
                total_cycles,
                crate::CLOCK_HZ,
            ),
        }
    }

    /// Measures all six classes of the paper's Table 3 and returns the
    /// readings in the paper's order (ascending energy).
    pub fn table3(&self) -> Vec<RigReading> {
        [
            InstrClass::Ldr,
            InstrClass::Lsr,
            InstrClass::Mul,
            InstrClass::Lsl,
            InstrClass::Eor,
            InstrClass::Add,
        ]
        .iter()
        .map(|&c| self.measure(c))
        .collect()
    }
}

impl Default for MeasurementRig {
    /// 1024 iterations of a 16-fold unrolled loop, enough to make the loop
    /// overhead visible but small.
    fn default() -> Self {
        MeasurementRig::new(1024, 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compensated_readings_recover_table3() {
        let rig = MeasurementRig::default();
        let rows = rig.table3();
        let expected = [10.98, 12.05, 12.14, 12.21, 12.43, 13.45];
        for (row, want) in rows.iter().zip(expected) {
            assert!(
                (row.picojoules_per_cycle - want).abs() < 1e-9,
                "{}: got {} want {want}",
                row.class,
                row.picojoules_per_cycle
            );
        }
    }

    #[test]
    fn raw_readings_include_loop_overhead() {
        let rig = MeasurementRig::new(64, 4);
        let r = rig.measure(InstrClass::Eor);
        // Overhead (SUBS at 13.45 + taken branch at 12.21) is more
        // expensive per cycle than EOR... actually SUBS is; raw must
        // differ from compensated.
        assert!(r.raw_picojoules_per_cycle != r.picojoules_per_cycle);
    }

    #[test]
    fn raw_power_is_in_the_papers_regime() {
        // The paper's implementations average 520–600 µW at 48 MHz; any
        // plausible instruction stream should land in the same decade.
        let rig = MeasurementRig::default();
        for row in rig.table3() {
            assert!(
                row.raw_power_uw > 400.0 && row.raw_power_uw < 800.0,
                "{}: {} µW",
                row.class,
                row.raw_power_uw
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot loop")]
    fn branch_classes_are_rejected() {
        MeasurementRig::default().measure(InstrClass::Bl);
    }

    #[test]
    #[should_panic]
    fn zero_iterations_rejected() {
        MeasurementRig::new(0, 1);
    }
}
