//! Thumb (ARMv6-M) instruction encodings: the 16-bit machine-code view
//! of everything the [`Machine`](crate::Machine) executes.
//!
//! The virtual-assembly kernels call machine methods; with recording
//! enabled (see [`Machine::start_recording`]) each call also captures an
//! [`Instr`], which this module can *encode* into real Thumb halfwords,
//! *decode* back, and disassemble. That turns the cost model into a
//! code generator: the benchmark harness emits the paper's López-Dahab
//! kernel as genuine Cortex-M0+ machine code and reports its flash
//! footprint (relevant for the paper's fully-unrolled inner loops).
//!
//! Branch/literal targets are emitted with placeholder offsets (the
//! kernels drive control flow from the host, so no fix-up pass exists);
//! everything else round-trips exactly.
//!
//! [`Machine::start_recording`]: crate::Machine::start_recording

// Binary literals below group by *encoding field* (opcode | regs),
// not by equal digit counts — that is the readable form for ISA work.
#![allow(clippy::unusual_byte_groupings)]

use crate::machine::{Cond, Reg};
use std::fmt;

/// One Thumb instruction as the machine executes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Instr {
    LslsImm {
        rd: Reg,
        rm: Reg,
        imm: u32,
    },
    LsrsImm {
        rd: Reg,
        rm: Reg,
        imm: u32,
    },
    AsrsImm {
        rd: Reg,
        rm: Reg,
        imm: u32,
    },
    AddsReg {
        rd: Reg,
        rn: Reg,
        rm: Reg,
    },
    SubsReg {
        rd: Reg,
        rn: Reg,
        rm: Reg,
    },
    MovsImm {
        rd: Reg,
        imm: u8,
    },
    CmpImm {
        rn: Reg,
        imm: u8,
    },
    AddsImm8 {
        rdn: Reg,
        imm: u8,
    },
    SubsImm8 {
        rdn: Reg,
        imm: u8,
    },
    /// Data-processing register group (opcode 010000xxxx).
    Ands {
        rdn: Reg,
        rm: Reg,
    },
    Eors {
        rdn: Reg,
        rm: Reg,
    },
    LslsReg {
        rdn: Reg,
        rm: Reg,
    },
    LsrsReg {
        rdn: Reg,
        rm: Reg,
    },
    Adcs {
        rdn: Reg,
        rm: Reg,
    },
    Sbcs {
        rdn: Reg,
        rm: Reg,
    },
    Tst {
        rn: Reg,
        rm: Reg,
    },
    Rsbs {
        rd: Reg,
        rn: Reg,
    },
    CmpReg {
        rn: Reg,
        rm: Reg,
    },
    Orrs {
        rdn: Reg,
        rm: Reg,
    },
    Muls {
        rdn: Reg,
        rm: Reg,
    },
    Bics {
        rdn: Reg,
        rm: Reg,
    },
    Mvns {
        rd: Reg,
        rm: Reg,
    },
    /// `MOV rd, rm` — the hi-register-capable move.
    Mov {
        rd: Reg,
        rm: Reg,
    },
    LdrImm {
        rt: Reg,
        rn: Reg,
        imm_words: u32,
    },
    StrImm {
        rt: Reg,
        rn: Reg,
        imm_words: u32,
    },
    LdrReg {
        rt: Reg,
        rn: Reg,
        rm: Reg,
    },
    StrReg {
        rt: Reg,
        rn: Reg,
        rm: Reg,
    },
    LdrSp {
        rt: Reg,
        imm_words: u32,
    },
    StrSp {
        rt: Reg,
        imm_words: u32,
    },
    /// PC-relative literal load (how `ldr_const` reaches the pool).
    LdrLit {
        rt: Reg,
        imm_words: u32,
    },
    Uxth {
        rd: Reg,
        rm: Reg,
    },
    Push {
        reg_count: usize,
    },
    Pop {
        reg_count: usize,
    },
    BCond {
        cond: Cond,
    },
    B,
    Bl,
    Bx,
    Nop,
}

fn lo(r: Reg) -> u16 {
    let i = Reg::GENERAL
        .iter()
        .position(|&x| x == r)
        .expect("general register");
    assert!(i < 8, "lo register required in this encoding");
    i as u16
}

fn any(r: Reg) -> u16 {
    match r {
        Reg::Sp => 13,
        Reg::Lr => 14,
        _ => Reg::GENERAL
            .iter()
            .position(|&x| x == r)
            .expect("general register") as u16,
    }
}

fn cond_bits(c: Cond) -> u16 {
    match c {
        Cond::Eq => 0b0000,
        Cond::Ne => 0b0001,
        Cond::Hs => 0b0010,
        Cond::Lo => 0b0011,
        Cond::Mi => 0b0100,
        Cond::Pl => 0b0101,
        Cond::Ge => 0b1010,
        Cond::Lt => 0b1011,
        Cond::Gt => 0b1100,
        Cond::Le => 0b1101,
    }
}

fn cond_from_bits(b: u16) -> Option<Cond> {
    Some(match b {
        0b0000 => Cond::Eq,
        0b0001 => Cond::Ne,
        0b0010 => Cond::Hs,
        0b0011 => Cond::Lo,
        0b0100 => Cond::Mi,
        0b0101 => Cond::Pl,
        0b1010 => Cond::Ge,
        0b1011 => Cond::Lt,
        0b1100 => Cond::Gt,
        0b1101 => Cond::Le,
        _ => return None,
    })
}

impl Instr {
    /// Encodes into Thumb halfwords: one for everything except `BL`
    /// (the sole 32-bit encoding ARMv6-M has).
    pub fn encode(self) -> Vec<u16> {
        use Instr::*;
        let one = |hw: u16| vec![hw];
        match self {
            LslsImm { rd, rm, imm } => one((imm as u16) << 6 | lo(rm) << 3 | lo(rd)),
            LsrsImm { rd, rm, imm } => {
                one(0b00001 << 11 | ((imm % 32) as u16) << 6 | lo(rm) << 3 | lo(rd))
            }
            AsrsImm { rd, rm, imm } => {
                one(0b00010 << 11 | ((imm % 32) as u16) << 6 | lo(rm) << 3 | lo(rd))
            }
            AddsReg { rd, rn, rm } => one(0b0001100 << 9 | lo(rm) << 6 | lo(rn) << 3 | lo(rd)),
            SubsReg { rd, rn, rm } => one(0b0001101 << 9 | lo(rm) << 6 | lo(rn) << 3 | lo(rd)),
            MovsImm { rd, imm } => one(0b00100 << 11 | lo(rd) << 8 | imm as u16),
            CmpImm { rn, imm } => one(0b00101 << 11 | lo(rn) << 8 | imm as u16),
            AddsImm8 { rdn, imm } => one(0b00110 << 11 | lo(rdn) << 8 | imm as u16),
            SubsImm8 { rdn, imm } => one(0b00111 << 11 | lo(rdn) << 8 | imm as u16),
            Ands { rdn, rm } => one(0b010000_0000 << 6 | lo(rm) << 3 | lo(rdn)),
            Eors { rdn, rm } => one(0b010000_0001 << 6 | lo(rm) << 3 | lo(rdn)),
            LslsReg { rdn, rm } => one(0b010000_0010 << 6 | lo(rm) << 3 | lo(rdn)),
            LsrsReg { rdn, rm } => one(0b010000_0011 << 6 | lo(rm) << 3 | lo(rdn)),
            Adcs { rdn, rm } => one(0b010000_0101 << 6 | lo(rm) << 3 | lo(rdn)),
            Sbcs { rdn, rm } => one(0b010000_0110 << 6 | lo(rm) << 3 | lo(rdn)),
            Tst { rn, rm } => one(0b010000_1000 << 6 | lo(rm) << 3 | lo(rn)),
            Rsbs { rd, rn } => one(0b010000_1001 << 6 | lo(rn) << 3 | lo(rd)),
            CmpReg { rn, rm } => one(0b010000_1010 << 6 | lo(rm) << 3 | lo(rn)),
            Orrs { rdn, rm } => one(0b010000_1100 << 6 | lo(rm) << 3 | lo(rdn)),
            Muls { rdn, rm } => one(0b010000_1101 << 6 | lo(rm) << 3 | lo(rdn)),
            Bics { rdn, rm } => one(0b010000_1110 << 6 | lo(rm) << 3 | lo(rdn)),
            Mvns { rd, rm } => one(0b010000_1111 << 6 | lo(rm) << 3 | lo(rd)),
            Mov { rd, rm } => {
                let d = any(rd);
                let m = any(rm);
                one(0b01000110 << 8 | (d >> 3) << 7 | m << 3 | (d & 7))
            }
            StrImm { rt, rn, imm_words } => {
                assert!(
                    imm_words <= 31,
                    "STR word offset {imm_words} exceeds the T1 imm5 range"
                );
                one(0b01100 << 11 | (imm_words as u16) << 6 | lo(rn) << 3 | lo(rt))
            }
            LdrImm { rt, rn, imm_words } => {
                assert!(
                    imm_words <= 31,
                    "LDR word offset {imm_words} exceeds the T1 imm5 range"
                );
                one(0b01101 << 11 | (imm_words as u16) << 6 | lo(rn) << 3 | lo(rt))
            }
            StrReg { rt, rn, rm } => one(0b0101000 << 9 | lo(rm) << 6 | lo(rn) << 3 | lo(rt)),
            LdrReg { rt, rn, rm } => one(0b0101100 << 9 | lo(rm) << 6 | lo(rn) << 3 | lo(rt)),
            StrSp { rt, imm_words } => {
                assert!(
                    imm_words <= 255,
                    "STR sp-relative word offset {imm_words} exceeds the T1 imm8 range"
                );
                one(0b10010 << 11 | lo(rt) << 8 | imm_words as u16)
            }
            LdrSp { rt, imm_words } => {
                assert!(
                    imm_words <= 255,
                    "LDR sp-relative word offset {imm_words} exceeds the T1 imm8 range"
                );
                one(0b10011 << 11 | lo(rt) << 8 | imm_words as u16)
            }
            LdrLit { rt, imm_words } => {
                assert!(
                    imm_words <= 255,
                    "literal-pool word index {imm_words} exceeds the T1 imm8 range"
                );
                one(0b01001 << 11 | lo(rt) << 8 | imm_words as u16)
            }
            Uxth { rd, rm } => one(0b1011001010 << 6 | lo(rm) << 3 | lo(rd)),
            Push { reg_count } => {
                // r0.. upward in the low-byte register list, plus LR via
                // the M bit for the ninth register (the paper's prologues
                // push up to {r4-r11, lr}, i.e. nine registers). The count
                // must survive encode→decode, which reads it back as
                // popcount(list) + M.
                assert!(
                    (1..=9).contains(&reg_count),
                    "PUSH register count {reg_count} not encodable in one T1 halfword"
                );
                let mask = (1u16 << reg_count.min(8)) - 1;
                let m_bit = u16::from(reg_count > 8) << 8;
                one(0b1011010 << 9 | m_bit | mask)
            }
            Pop { reg_count } => {
                assert!(
                    (1..=9).contains(&reg_count),
                    "POP register count {reg_count} not encodable in one T1 halfword"
                );
                let mask = (1u16 << reg_count.min(8)) - 1;
                let p_bit = u16::from(reg_count > 8) << 8;
                one(0b1011110 << 9 | p_bit | mask)
            }
            BCond { cond } => one(0b1101 << 12 | cond_bits(cond) << 8),
            B => one(0b11100 << 11),
            Bl => vec![0b11110 << 11, 0b11111 << 11],
            Bx => one(0b010001110 << 7 | 14 << 3), // bx lr
            Nop => one(0b1011_1111_0000_0000),
        }
    }

    /// Decodes one instruction from a halfword stream; returns the
    /// instruction and how many halfwords it consumed.
    ///
    /// Only the encodings [`Instr::encode`] produces are recognised
    /// (branch/literal offsets are read back as placeholders).
    pub fn decode(words: &[u16]) -> Option<(Instr, usize)> {
        use Instr::*;
        let hw = *words.first()?;
        let reg = |bits: u16| Reg::GENERAL[(bits & 7) as usize];
        let top5 = hw >> 11;
        let instr = match top5 {
            0b00000 => LslsImm {
                rd: reg(hw),
                rm: reg(hw >> 3),
                imm: ((hw >> 6) & 31) as u32,
            },
            0b00001 => LsrsImm {
                rd: reg(hw),
                rm: reg(hw >> 3),
                imm: ((hw >> 6) & 31) as u32,
            },
            0b00010 => AsrsImm {
                rd: reg(hw),
                rm: reg(hw >> 3),
                imm: ((hw >> 6) & 31) as u32,
            },
            0b00011 => {
                let rm = reg(hw >> 6);
                let rn = reg(hw >> 3);
                let rd = reg(hw);
                match (hw >> 9) & 3 {
                    0b00 => AddsReg { rd, rn, rm },
                    0b01 => SubsReg { rd, rn, rm },
                    0b10 => AddsReg { rd, rn, rm }, // imm3 form not emitted
                    _ => SubsReg { rd, rn, rm },
                }
            }
            0b00100 => MovsImm {
                rd: reg(hw >> 8),
                imm: (hw & 0xFF) as u8,
            },
            0b00101 => CmpImm {
                rn: reg(hw >> 8),
                imm: (hw & 0xFF) as u8,
            },
            0b00110 => AddsImm8 {
                rdn: reg(hw >> 8),
                imm: (hw & 0xFF) as u8,
            },
            0b00111 => SubsImm8 {
                rdn: reg(hw >> 8),
                imm: (hw & 0xFF) as u8,
            },
            0b01000 => {
                if hw & (1 << 10) == 0 {
                    // Data-processing register group.
                    let rm = reg(hw >> 3);
                    let rdn = reg(hw);
                    match (hw >> 6) & 0xF {
                        0b0000 => Ands { rdn, rm },
                        0b0001 => Eors { rdn, rm },
                        0b0010 => LslsReg { rdn, rm },
                        0b0011 => LsrsReg { rdn, rm },
                        0b0101 => Adcs { rdn, rm },
                        0b0110 => Sbcs { rdn, rm },
                        0b1000 => Tst { rn: rdn, rm },
                        0b1001 => Rsbs { rd: rdn, rn: rm },
                        0b1010 => CmpReg { rn: rdn, rm },
                        0b1100 => Orrs { rdn, rm },
                        0b1101 => Muls { rdn, rm },
                        0b1110 => Bics { rdn, rm },
                        0b1111 => Mvns { rd: rdn, rm },
                        _ => return None,
                    }
                } else {
                    // Special data / branch-exchange.
                    match (hw >> 8) & 3 {
                        0b10 => {
                            let d = ((hw >> 7) & 1) << 3 | (hw & 7);
                            let m = (hw >> 3) & 0xF;
                            let from_any = |v: u16| match v {
                                13 => Reg::Sp,
                                14 => Reg::Lr,
                                i => Reg::GENERAL[i as usize],
                            };
                            Mov {
                                rd: from_any(d),
                                rm: from_any(m),
                            }
                        }
                        0b11 => Bx,
                        _ => return None,
                    }
                }
            }
            0b01001 => LdrLit {
                rt: reg(hw >> 8),
                imm_words: (hw & 0xFF) as u32,
            },
            0b01010 => StrReg {
                rt: reg(hw),
                rn: reg(hw >> 3),
                rm: reg(hw >> 6),
            },
            0b01011 => LdrReg {
                rt: reg(hw),
                rn: reg(hw >> 3),
                rm: reg(hw >> 6),
            },
            0b01100 => StrImm {
                rt: reg(hw),
                rn: reg(hw >> 3),
                imm_words: ((hw >> 6) & 31) as u32,
            },
            0b01101 => LdrImm {
                rt: reg(hw),
                rn: reg(hw >> 3),
                imm_words: ((hw >> 6) & 31) as u32,
            },
            0b10010 => StrSp {
                rt: reg(hw >> 8),
                imm_words: (hw & 0xFF) as u32,
            },
            0b10011 => LdrSp {
                rt: reg(hw >> 8),
                imm_words: (hw & 0xFF) as u32,
            },
            0b10110 | 0b10111 => {
                if hw == 0b1011_1111_0000_0000 {
                    Nop
                } else if hw >> 6 == 0b1011001010 {
                    Uxth {
                        rd: reg(hw),
                        rm: reg(hw >> 3),
                    }
                } else if hw >> 9 == 0b1011010 {
                    // The M bit adds LR to the register list.
                    let m = ((hw >> 8) & 1) as usize;
                    Push {
                        reg_count: (hw & 0xFF).count_ones() as usize + m,
                    }
                } else if hw >> 9 == 0b1011110 {
                    // The P bit adds PC to the register list.
                    let p = ((hw >> 8) & 1) as usize;
                    Pop {
                        reg_count: (hw & 0xFF).count_ones() as usize + p,
                    }
                } else {
                    return None;
                }
            }
            0b11010 | 0b11011 => BCond {
                cond: cond_from_bits((hw >> 8) & 0xF)?,
            },
            0b11100 => B,
            0b11110 => {
                // 32-bit BL: needs the second halfword.
                if words.len() < 2 {
                    return None;
                }
                return Some((Bl, 2));
            }
            _ => return None,
        };
        Some((instr, 1))
    }

    /// Flash footprint in bytes.
    pub fn size_bytes(self) -> usize {
        if self == Instr::Bl {
            4
        } else {
            2
        }
    }

    /// The cost class this instruction charges (taken branches; the
    /// not-taken variant shares the encoding).
    pub fn class(self) -> crate::InstrClass {
        use crate::InstrClass as C;
        use Instr::*;
        match self {
            LdrImm { .. } | LdrReg { .. } | LdrSp { .. } | LdrLit { .. } => C::Ldr,
            StrImm { .. } | StrReg { .. } | StrSp { .. } => C::Str,
            LslsImm { .. } | LslsReg { .. } => C::Lsl,
            LsrsImm { .. } | LsrsReg { .. } | AsrsImm { .. } => C::Lsr,
            Eors { .. } => C::Eor,
            Ands { .. } | Orrs { .. } | Bics { .. } | Mvns { .. } | Tst { .. } => C::Logic,
            AddsReg { .. } | AddsImm8 { .. } | Adcs { .. } => C::Add,
            SubsReg { .. } | SubsImm8 { .. } | Sbcs { .. } | Rsbs { .. } => C::Sub,
            Muls { .. } => C::Mul,
            MovsImm { .. } | Mov { .. } | Uxth { .. } => C::Mov,
            CmpImm { .. } | CmpReg { .. } => C::Cmp,
            BCond { .. } | B | Bx => C::BranchTaken,
            Bl => C::Bl,
            Push { reg_count } | Pop { reg_count } => {
                // Reported as the per-word class; the cost helper charges
                // the base cycle separately.
                let _ = reg_count;
                C::StackWord
            }
            Nop => C::Nop,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match *self {
            LslsImm { rd, rm, imm } => write!(f, "lsls {rd}, {rm}, #{imm}"),
            LsrsImm { rd, rm, imm } => write!(f, "lsrs {rd}, {rm}, #{imm}"),
            AsrsImm { rd, rm, imm } => write!(f, "asrs {rd}, {rm}, #{imm}"),
            AddsReg { rd, rn, rm } => write!(f, "adds {rd}, {rn}, {rm}"),
            SubsReg { rd, rn, rm } => write!(f, "subs {rd}, {rn}, {rm}"),
            MovsImm { rd, imm } => write!(f, "movs {rd}, #{imm}"),
            CmpImm { rn, imm } => write!(f, "cmp {rn}, #{imm}"),
            AddsImm8 { rdn, imm } => write!(f, "adds {rdn}, #{imm}"),
            SubsImm8 { rdn, imm } => write!(f, "subs {rdn}, #{imm}"),
            Ands { rdn, rm } => write!(f, "ands {rdn}, {rm}"),
            Eors { rdn, rm } => write!(f, "eors {rdn}, {rm}"),
            LslsReg { rdn, rm } => write!(f, "lsls {rdn}, {rm}"),
            LsrsReg { rdn, rm } => write!(f, "lsrs {rdn}, {rm}"),
            Adcs { rdn, rm } => write!(f, "adcs {rdn}, {rm}"),
            Sbcs { rdn, rm } => write!(f, "sbcs {rdn}, {rm}"),
            Tst { rn, rm } => write!(f, "tst {rn}, {rm}"),
            Rsbs { rd, rn } => write!(f, "rsbs {rd}, {rn}, #0"),
            CmpReg { rn, rm } => write!(f, "cmp {rn}, {rm}"),
            Orrs { rdn, rm } => write!(f, "orrs {rdn}, {rm}"),
            Muls { rdn, rm } => write!(f, "muls {rdn}, {rm}"),
            Bics { rdn, rm } => write!(f, "bics {rdn}, {rm}"),
            Mvns { rd, rm } => write!(f, "mvns {rd}, {rm}"),
            Mov { rd, rm } => write!(f, "mov {rd}, {rm}"),
            LdrImm { rt, rn, imm_words } => write!(f, "ldr {rt}, [{rn}, #{}]", imm_words * 4),
            StrImm { rt, rn, imm_words } => write!(f, "str {rt}, [{rn}, #{}]", imm_words * 4),
            LdrReg { rt, rn, rm } => write!(f, "ldr {rt}, [{rn}, {rm}]"),
            StrReg { rt, rn, rm } => write!(f, "str {rt}, [{rn}, {rm}]"),
            LdrSp { rt, imm_words } => write!(f, "ldr {rt}, [sp, #{}]", imm_words * 4),
            StrSp { rt, imm_words } => write!(f, "str {rt}, [sp, #{}]", imm_words * 4),
            LdrLit { rt, imm_words } => write!(f, "ldr {rt}, =pool[{imm_words}]"),
            Uxth { rd, rm } => write!(f, "uxth {rd}, {rm}"),
            Push { reg_count } => write!(f, "push {{{reg_count} regs}}"),
            Pop { reg_count } => write!(f, "pop {{{reg_count} regs}}"),
            BCond { cond } => write!(f, "b{} <target>", cond_name(cond)),
            B => write!(f, "b <target>"),
            Bl => write!(f, "bl <target>"),
            Bx => write!(f, "bx lr"),
            Nop => write!(f, "nop"),
        }
    }
}

fn cond_name(c: Cond) -> &'static str {
    match c {
        Cond::Eq => "eq",
        Cond::Ne => "ne",
        Cond::Hs => "hs",
        Cond::Lo => "lo",
        Cond::Mi => "mi",
        Cond::Pl => "pl",
        Cond::Ge => "ge",
        Cond::Lt => "lt",
        Cond::Gt => "gt",
        Cond::Le => "le",
    }
}

/// Disassembles a halfword stream into an objdump-style listing
/// (offset, encoding, mnemonic), stopping at the first undecodable
/// halfword (which is reported).
pub fn disassemble(code: &[u16]) -> String {
    let mut out = String::new();
    let mut pc = 0usize;
    while pc < code.len() {
        match Instr::decode(&code[pc..]) {
            Some((instr, width)) => {
                let bytes: String = code[pc..pc + width]
                    .iter()
                    .map(|h| format!("{h:04x} "))
                    .collect();
                out += &format!("{pc:4}:  {bytes:<10} {instr}\n");
                pc += width;
            }
            None => {
                out += &format!("{pc:4}:  {:04x}       <undecodable>\n", code[pc]);
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_encodings() {
        assert_eq!(
            Instr::MovsImm {
                rd: Reg::R0,
                imm: 0
            }
            .encode(),
            vec![0x2000]
        );
        assert_eq!(Instr::Nop.encode(), vec![0xBF00]);
        assert_eq!(Instr::Bx.encode(), vec![0x4770]); // bx lr
        assert_eq!(
            Instr::Eors {
                rdn: Reg::R0,
                rm: Reg::R1
            }
            .encode(),
            vec![0x4048]
        );
        assert_eq!(
            Instr::LdrImm {
                rt: Reg::R1,
                rn: Reg::R0,
                imm_words: 1
            }
            .encode(),
            vec![0x6841] // ldr r1, [r0, #4]
        );
        assert_eq!(
            Instr::Muls {
                rdn: Reg::R0,
                rm: Reg::R1
            }
            .encode(),
            vec![0x4348]
        );
    }

    #[test]
    fn roundtrip_every_16bit_form() {
        use Instr::*;
        let samples = vec![
            LslsImm {
                rd: Reg::R1,
                rm: Reg::R2,
                imm: 7,
            },
            LsrsImm {
                rd: Reg::R3,
                rm: Reg::R4,
                imm: 28,
            },
            AsrsImm {
                rd: Reg::R5,
                rm: Reg::R6,
                imm: 3,
            },
            AddsReg {
                rd: Reg::R0,
                rn: Reg::R1,
                rm: Reg::R2,
            },
            SubsReg {
                rd: Reg::R3,
                rn: Reg::R4,
                rm: Reg::R5,
            },
            MovsImm {
                rd: Reg::R7,
                imm: 200,
            },
            CmpImm {
                rn: Reg::R0,
                imm: 16,
            },
            AddsImm8 {
                rdn: Reg::R6,
                imm: 56,
            },
            SubsImm8 {
                rdn: Reg::R2,
                imm: 1,
            },
            Ands {
                rdn: Reg::R1,
                rm: Reg::R2,
            },
            Eors {
                rdn: Reg::R3,
                rm: Reg::R4,
            },
            LslsReg {
                rdn: Reg::R5,
                rm: Reg::R6,
            },
            LsrsReg {
                rdn: Reg::R7,
                rm: Reg::R0,
            },
            Adcs {
                rdn: Reg::R1,
                rm: Reg::R2,
            },
            Sbcs {
                rdn: Reg::R3,
                rm: Reg::R4,
            },
            Tst {
                rn: Reg::R5,
                rm: Reg::R6,
            },
            Rsbs {
                rd: Reg::R7,
                rn: Reg::R0,
            },
            CmpReg {
                rn: Reg::R1,
                rm: Reg::R2,
            },
            Orrs {
                rdn: Reg::R3,
                rm: Reg::R4,
            },
            Muls {
                rdn: Reg::R5,
                rm: Reg::R6,
            },
            Bics {
                rdn: Reg::R7,
                rm: Reg::R0,
            },
            Mvns {
                rd: Reg::R1,
                rm: Reg::R2,
            },
            Mov {
                rd: Reg::R8,
                rm: Reg::R7,
            },
            Mov {
                rd: Reg::R3,
                rm: Reg::R12,
            },
            LdrImm {
                rt: Reg::R0,
                rn: Reg::R1,
                imm_words: 31,
            },
            StrImm {
                rt: Reg::R2,
                rn: Reg::R3,
                imm_words: 0,
            },
            LdrReg {
                rt: Reg::R4,
                rn: Reg::R5,
                rm: Reg::R6,
            },
            StrReg {
                rt: Reg::R7,
                rn: Reg::R0,
                rm: Reg::R1,
            },
            LdrSp {
                rt: Reg::R2,
                imm_words: 15,
            },
            StrSp {
                rt: Reg::R3,
                imm_words: 8,
            },
            LdrLit {
                rt: Reg::R4,
                imm_words: 12,
            },
            Uxth {
                rd: Reg::R5,
                rm: Reg::R6,
            },
            BCond { cond: Cond::Ne },
            BCond { cond: Cond::Ge },
            B,
            Bx,
            Nop,
        ];
        for instr in samples {
            let code = instr.encode();
            let (decoded, used) = Instr::decode(&code)
                .unwrap_or_else(|| panic!("decode failed for {instr} ({:04x?})", code));
            assert_eq!(used, code.len());
            assert_eq!(decoded, instr, "roundtrip of {instr}");
        }
    }

    #[test]
    fn bl_is_32_bit() {
        let code = Instr::Bl.encode();
        assert_eq!(code.len(), 2);
        let (decoded, used) = Instr::decode(&code).expect("decodes");
        assert_eq!(decoded, Instr::Bl);
        assert_eq!(used, 2);
        assert_eq!(Instr::Bl.size_bytes(), 4);
        assert!(Instr::decode(&code[..1]).is_none(), "truncated BL rejected");
    }

    #[test]
    fn push_pop_roundtrip_register_counts() {
        // The kernels use up to stack_transfer(8); 9 is the
        // architectural maximum ({r0-r7, lr}) of the T1 encoding.
        for n in 1..=9 {
            let p = Instr::Push { reg_count: n };
            let (d, _) = Instr::decode(&p.encode()).expect("decodes");
            assert_eq!(d, p, "push {n}");
            let q = Instr::Pop { reg_count: n };
            let (d, _) = Instr::decode(&q.encode()).expect("decodes");
            assert_eq!(d, q, "pop {n}");
        }
    }

    #[test]
    #[should_panic(expected = "not encodable")]
    fn push_of_ten_registers_is_rejected() {
        let _ = Instr::Push { reg_count: 10 }.encode();
    }

    #[test]
    fn classes_match_costs() {
        use crate::InstrClass;
        assert_eq!(
            Instr::LdrSp {
                rt: Reg::R0,
                imm_words: 0
            }
            .class(),
            InstrClass::Ldr
        );
        assert_eq!(
            Instr::Adcs {
                rdn: Reg::R0,
                rm: Reg::R1
            }
            .class(),
            InstrClass::Add
        );
        assert_eq!(Instr::Bl.class(), InstrClass::Bl);
    }

    #[test]
    fn disassembly_is_readable() {
        let s = format!(
            "{}",
            Instr::LdrImm {
                rt: Reg::R5,
                rn: Reg::R4,
                imm_words: 3
            }
        );
        assert_eq!(s, "ldr r5, [r4, #12]");
        assert_eq!(
            format!(
                "{}",
                Instr::Mov {
                    rd: Reg::R9,
                    rm: Reg::R7
                }
            ),
            "mov r9, r7"
        );
    }

    #[test]
    fn disassembly_listing() {
        let code: Vec<u16> = [
            Instr::MovsImm {
                rd: Reg::R0,
                imm: 8,
            },
            Instr::LdrImm {
                rt: Reg::R1,
                rn: Reg::R0,
                imm_words: 2,
            },
            Instr::Bx,
        ]
        .iter()
        .flat_map(|i| i.encode())
        .collect();
        let listing = disassemble(&code);
        assert!(listing.contains("movs r0, #8"));
        assert!(listing.contains("ldr r1, [r0, #8]"));
        assert!(listing.contains("bx lr"));
        // Undecodable tail is reported, not panicked on.
        let mut bad = code.clone();
        bad.push(0b11111 << 11);
        assert!(disassemble(&bad).contains("<undecodable>"));
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(Instr::decode(&[0b11111 << 11]).is_none());
        assert!(Instr::decode(&[]).is_none());
    }
}
