//! The execution-backend abstraction unifying the two ways a modeled
//! kernel can run:
//!
//! * [`Backend::Direct`] — today's call-per-instruction costed machine:
//!   the kernel's Rust driver calls one [`Machine`] method per Thumb
//!   instruction and the machine charges as it goes.
//! * [`Backend::Code`] — the kernel is first *recorded* (see
//!   [`Machine::start_recording`]), the captured trace is assembled into
//!   real Thumb-16 halfwords with [`crate::asm`], and the machine code
//!   is then re-executed through [`crate::exec`] with identical
//!   cost/energy/category accounting. Every published cycle count
//!   becomes reproducible from the exact halfwords a Cortex-M0+ would
//!   fetch, and any divergence between the two substrates is a hard
//!   panic instead of a latent modeling bug.
//!
//! # How a recorded trace becomes a program
//!
//! The kernels drive control flow from the host, so a recording is the
//! *linearised* instruction stream: a loop that ran five times appears
//! five times. Every control-flow instruction in the trace therefore
//! transfers to the instruction right after it:
//!
//! * `B<cond>` → `branch_if` to a label on the next instruction (taken
//!   and fall-through paths coincide; the charged cost still depends on
//!   the replayed flags, which match the recording bit-for-bit);
//! * `B` → `branch` to the next instruction;
//! * `BL` → `call` of the next instruction (the host return stack grows
//!   harmlessly; kernel `BL`/`BX` pairs are cost markers, not balanced
//!   calls);
//! * `BX lr` → encoded as a `branch` to the next instruction, because a
//!   real `BX` would pop a return address the linear trace never pushed.
//!   `B` and `BX` share the cost class ([`InstrClass::BranchTaken`])
//!   and the 2-byte footprint, so accounting is unchanged.
//!
//! Literal loads carry their pool values in the recording; un-costed
//! host register writes ([`Machine::set_reg`] argument setup) are
//! captured with their stream positions and reapplied by a replay hook,
//! as is the per-instruction [`Category`] attribution.
//!
//! [`InstrClass::BranchTaken`]: crate::InstrClass::BranchTaken
//! [`Category`]: crate::Category

use crate::asm::{AsmError, Assembler, Program};
use crate::exec;
use crate::isa::Instr;
use crate::machine::{Machine, Recording};

/// Which execution substrate runs a modeled kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Call-per-instruction costed machine methods (the historic tier).
    #[default]
    Direct,
    /// Record → assemble to Thumb-16 → re-execute from the machine
    /// code, asserting bit-for-bit agreement with the direct tier.
    Code,
}

impl Backend {
    /// Parses a CLI flag value (`"direct"` / `"code"`).
    pub fn parse(s: &str) -> Option<Backend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "direct" => Some(Backend::Direct),
            "code" => Some(Backend::Code),
            _ => None,
        }
    }

    /// The flag spelling of this backend.
    pub const fn label(self) -> &'static str {
        match self {
            Backend::Direct => "direct",
            Backend::Code => "code",
        }
    }

    /// Runs a kernel closure on `machine` through this backend.
    ///
    /// `Direct` simply calls the closure. `Code` records it on a shadow
    /// machine, assembles the trace, replays the machine code on
    /// `machine`, asserts full state equality against the shadow, and
    /// returns the [`KernelRun`] describing the assembled code.
    ///
    /// # Panics
    ///
    /// Under `Code`, panics if the trace does not assemble, does not
    /// replay, or replays to any different machine state (registers,
    /// flags, memory, cycles, energy, instruction mix or category
    /// totals).
    pub fn run_kernel<T>(
        self,
        machine: &mut Machine,
        name: &str,
        f: impl FnOnce(&mut Machine) -> T,
    ) -> (T, Option<KernelRun>) {
        match self {
            Backend::Direct => (f(machine), None),
            Backend::Code => {
                let (out, run) = run_recorded(machine, name, f);
                (out, Some(run))
            }
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What the code backend learned from assembling and replaying one
/// kernel call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelRun {
    /// Flash footprint of the assembled fragment (code + literal pool),
    /// in bytes. The recording is *linearised* — loops appear once per
    /// iteration — so this is the unrolled-build figure.
    pub flash_bytes: usize,
    /// Loop-aware flash footprint in bytes: the same fragment after the
    /// repeat-collapsing pass of [`crate::footprint`], an upper bound on
    /// what a rolled build would flash.
    pub deduped_flash_bytes: usize,
    /// Instructions retired by the replay.
    pub instructions: u64,
    /// Cycles charged by the replay.
    pub cycles: u64,
}

/// Assembles a [`Recording`] into an executable [`Program`] using the
/// linear-trace translation described in the [module docs](self).
///
/// # Errors
///
/// Propagates assembler failures (cannot happen for traces produced by
/// [`Machine::start_recording`]: all branch offsets are −1/0).
pub fn translate(recording: &Recording) -> Result<Program, AsmError> {
    let mut a = Assembler::new();
    for (i, step) in recording.steps.iter().enumerate() {
        let next = format!("L{i}");
        match step.instr {
            Instr::BCond { cond } => {
                a.branch_if(cond, &next);
                a.label(&next);
            }
            // A linear trace cannot pop a return address it never
            // pushed, so BX lr is emitted as the cost-identical B.
            Instr::B | Instr::Bx => {
                a.branch(&next);
                a.label(&next);
            }
            Instr::Bl => {
                a.call(&next);
                a.label(&next);
            }
            Instr::LdrLit { rt, .. } => {
                let value = step
                    .literal
                    .expect("LdrLit recorded without its literal value");
                a.load_literal(rt, value);
            }
            other => a.push(other),
        }
    }
    a.assemble()
}

/// The code-backend pipeline for one kernel call: record the closure on
/// a shadow clone of `machine`, assemble the trace to Thumb-16, replay
/// the machine code on `machine` itself (reapplying per-step categories
/// and positioned un-costed register writes through the fragment
/// executor's hook), and assert that the replayed machine is
/// bit-for-bit identical to the shadow.
///
/// Returns the closure's result (computed during recording — provably
/// equal under the state assertion) and the [`KernelRun`].
///
/// # Panics
///
/// Panics (with `name` in the message) on assembly failure, replay
/// failure, literal-pool overflow or any state divergence.
pub fn run_recorded<T>(
    machine: &mut Machine,
    name: &str,
    f: impl FnOnce(&mut Machine) -> T,
) -> (T, KernelRun) {
    let mut shadow = machine.clone();
    shadow.start_recording();
    let out = f(&mut shadow);
    let recording = shadow.take_recording();

    let program = translate(&recording)
        .unwrap_or_else(|e| panic!("kernel {name}: trace does not assemble: {e}"));
    assert!(
        program.pool.len() <= 256,
        "kernel {name}: literal pool ({} slots) overflows the imm8 index",
        program.pool.len()
    );

    let saved_override = machine.category_override();
    let steps = &recording.steps;
    let writes = &recording.reg_writes;
    let mut cursor = 0usize;
    let stats = exec::execute_fragment(machine, &program, steps.len() as u64 + 1, |m, idx| {
        while cursor < writes.len() && writes[cursor].at <= idx {
            m.set_reg(writes[cursor].reg, writes[cursor].value);
            cursor += 1;
        }
        m.set_category_override(Some(steps[idx].category));
    })
    .unwrap_or_else(|e| panic!("kernel {name}: machine-code replay failed: {e}"));
    // Register writes recorded after the last costed instruction.
    for w in &writes[cursor..] {
        machine.set_reg(w.reg, w.value);
    }
    machine.set_category_override(saved_override);

    assert_eq!(
        stats.instructions,
        steps.len() as u64,
        "kernel {name}: replay retired a different instruction count"
    );
    machine.assert_same_state(&shadow, name);

    (
        out,
        KernelRun {
            flash_bytes: program.size_bytes(),
            deduped_flash_bytes: crate::footprint::dedup(&program).deduped_bytes(),
            instructions: stats.instructions,
            cycles: stats.cycles,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Category, Cond, Reg};

    /// A representative kernel: literals, loops with both branch
    /// outcomes, memory traffic, category scopes, a BL/BX cost-marker
    /// pair, a nine-register stack transfer and mid-stream un-costed
    /// argument setup.
    fn kernel(m: &mut Machine, buf: crate::Addr) -> u32 {
        m.in_category(Category::Multiply, |m| {
            m.bl();
            m.stack_transfer(8);
            m.ldr_const(Reg::R0, buf.to_base_register_value());
            m.ldr_const(Reg::R1, 0xA5A5_0001);
            m.movs_imm(Reg::R2, 4);
            loop {
                m.str(Reg::R1, Reg::R0, 0);
                m.ldr(Reg::R3, Reg::R0, 0);
                m.eors(Reg::R1, Reg::R3);
                m.adds_imm(Reg::R0, 1);
                m.subs_imm(Reg::R2, 1);
                if !m.b_cond(Cond::Ne) {
                    break;
                }
            }
        });
        m.set_base(Reg::R4, buf); // mid-stream AAPCS-style setup
        m.in_category(Category::Square, |m| {
            m.ldr(Reg::R5, Reg::R4, 2);
            m.stack_transfer(8);
            m.bx();
        });
        m.reg(Reg::R5)
    }

    fn fresh() -> (Machine, crate::Addr) {
        let mut m = Machine::new(64);
        let buf = m.alloc(8);
        m.write_slice(buf, &[9, 9, 9, 9, 9, 9, 9, 9]);
        (m, buf)
    }

    #[test]
    fn code_backend_matches_direct_exactly() {
        let (mut direct, buf_d) = fresh();
        let out_d = kernel(&mut direct, buf_d);

        let (mut code, buf_c) = fresh();
        let (out_c, run) = Backend::Code.run_kernel(&mut code, "test-kernel", |m| kernel(m, buf_c));
        let run = run.expect("code backend reports a KernelRun");

        assert_eq!(out_c, out_d);
        code.assert_same_state(&direct, "code vs direct");
        assert_eq!(run.cycles, direct.cycles());
        assert!(run.flash_bytes > 0);
        assert!(run.instructions > 10);
    }

    #[test]
    fn direct_backend_reports_no_kernel_run() {
        let (mut m, buf) = fresh();
        let (_, run) = Backend::Direct.run_kernel(&mut m, "k", |m| kernel(m, buf));
        assert!(run.is_none());
    }

    #[test]
    fn translate_produces_decodable_code_with_a_pool() {
        let (mut m, buf) = fresh();
        m.start_recording();
        kernel(&mut m, buf);
        let rec = m.take_recording();
        let p = translate(&rec).expect("assembles");
        assert_eq!(p.pool.len(), 2, "two distinct literals");
        // Every halfword decodes (the disassembler stops at the first
        // failure, so a full-length walk proves decodability).
        let listing = crate::isa::disassemble(&p.code);
        assert!(!listing.contains("<undecodable>"), "{listing}");
        assert_eq!(p.size_bytes(), 2 * p.code.len() + 4 * p.pool.len());
    }

    #[test]
    fn empty_recording_replays_to_nothing() {
        let mut m = Machine::new(16);
        let before = m.cycles();
        let (out, run) = Backend::Code.run_kernel(&mut m, "empty", |m| {
            m.set_reg(Reg::R7, 42); // un-costed only
            7u32
        });
        assert_eq!(out, 7);
        assert_eq!(m.cycles(), before);
        assert_eq!(m.reg(Reg::R7), 42, "trailing reg write reapplied");
        assert_eq!(run.unwrap().instructions, 0);
    }

    #[test]
    fn backend_parse_and_labels() {
        assert_eq!(Backend::parse("code"), Some(Backend::Code));
        assert_eq!(Backend::parse("DIRECT"), Some(Backend::Direct));
        assert_eq!(Backend::parse("fast"), None);
        assert_eq!(Backend::default(), Backend::Direct);
        assert_eq!(format!("{}", Backend::Code), "code");
    }

    #[test]
    fn category_attribution_survives_replay() {
        let (mut direct, buf_d) = fresh();
        kernel(&mut direct, buf_d);
        let (mut code, buf_c) = fresh();
        Backend::Code.run_kernel(&mut code, "cat", |m| kernel(m, buf_c));
        for c in Category::ALL {
            assert_eq!(
                code.category_totals(c).cycles,
                direct.category_totals(c).cycles,
                "{c}"
            );
        }
        assert!(code.category_totals(Category::Multiply).cycles > 0);
        assert!(code.category_totals(Category::Square).cycles > 0);
    }
}
