//! Tiny deterministic pseudo-random generators for tests, benches and
//! examples.
//!
//! The workspace must build and test with **no network or registry
//! access**, so the external `rand`/`proptest` crates are replaced by
//! these two classic generators. They are *not* cryptographic — they
//! exist to produce reproducible, well-distributed test vectors. Both
//! are seeded explicitly; the same seed always yields the same stream
//! on every platform.

/// Sebastiano Vigna's SplitMix64: the canonical 64-bit seed expander.
///
/// One `u64` of state, period 2^64, passes BigCrush. Used as the
/// general-purpose stream generator and to seed [`XorShift64Star`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an explicit seed (any value is fine,
    /// including zero).
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Creates the generator for one case of one domain of a keyed
    /// family of *independent* substreams: `substream(seed, d, c)` for
    /// distinct `(d, c)` pairs behave as unrelated generators.
    ///
    /// Sharded campaigns rely on this: a per-case generator lets any
    /// worker compute case `c` without replaying cases `0..c`, so the
    /// sampled stream — and therefore the merged report — is
    /// independent of how cases are split across shards. Plain
    /// `new(seed ^ c)` would not do: SplitMix64 seeds differing by
    /// small multiples of the golden-ratio increment produce shifted,
    /// overlapping streams, so both the domain and the case index are
    /// pushed through the full finalizer before seeding.
    pub fn substream(seed: u64, domain: u64, case: u64) -> Self {
        let scramble = |x: u64| SplitMix64::new(x).next_u64();
        SplitMix64::new(scramble(scramble(seed ^ scramble(domain)) ^ case))
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 uniformly distributed bits (upper half of the 64-bit
    /// output, which has the better-mixed bits).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `0..bound`. `bound` must be non-zero.
    ///
    /// Uses the widening-multiply trick with a rejection step, so the
    /// distribution is exactly uniform.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire's nearly-divisionless method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// `true` with probability `num / denom`.
    pub fn ratio(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }

    /// Fills `out` with pseudo-random words.
    pub fn fill_u32(&mut self, out: &mut [u32]) {
        for w in out.iter_mut() {
            *w = self.next_u32();
        }
    }

    /// Fills `out` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Marsaglia's xorshift64* — a second, structurally different stream
/// for code that wants two independent generators.
///
/// State must be non-zero; [`XorShift64Star::new`] remaps a zero seed
/// through SplitMix64.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates a generator from a seed; a zero seed is expanded through
    /// [`SplitMix64`] to a non-zero state.
    pub fn new(seed: u64) -> Self {
        let state = if seed == 0 {
            SplitMix64::new(0).next_u64() | 1
        } else {
            seed
        };
        XorShift64Star { state }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next 32 pseudo-random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vectors() {
        // Reference stream for seed 0 (cross-checked against the
        // published C implementation).
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn splitmix_is_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut g = SplitMix64::new(42);
            (0..16).map(|_| g.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut g = SplitMix64::new(42);
            (0..16).map(|_| g.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut g = SplitMix64::new(43);
            (0..16).map(|_| g.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_is_in_range_and_hits_all_residues() {
        let mut g = SplitMix64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = g.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
    }

    #[test]
    fn fill_helpers_cover_odd_lengths() {
        let mut g = SplitMix64::new(1);
        let mut bytes = [0u8; 13];
        g.fill_bytes(&mut bytes);
        assert!(bytes.iter().any(|&b| b != 0));
        let mut words = [0u32; 5];
        g.fill_u32(&mut words);
        assert!(words.iter().any(|&w| w != 0));
    }

    #[test]
    fn substreams_are_deterministic_and_pairwise_distinct() {
        let take = |mut g: SplitMix64| -> Vec<u64> { (0..8).map(|_| g.next_u64()).collect() };
        // Same (seed, domain, case) → same stream.
        assert_eq!(
            take(SplitMix64::substream(7, 1, 3)),
            take(SplitMix64::substream(7, 1, 3))
        );
        // Every coordinate matters, and neighbouring cases must not
        // yield shifted copies of one another (the failure mode of
        // seeding with `seed ^ case` directly).
        let streams: Vec<Vec<u64>> = (0..32)
            .map(|case| take(SplitMix64::substream(7, 1, case)))
            .chain((0..4).map(|dom| take(SplitMix64::substream(7, 100 + dom, 0))))
            .chain([take(SplitMix64::substream(8, 1, 0))])
            .collect();
        for (i, a) in streams.iter().enumerate() {
            for b in &streams[i + 1..] {
                assert_ne!(a, b, "substreams must be pairwise distinct");
                // No single-step shifted overlap either.
                assert_ne!(a[1..], b[..7], "substreams must not overlap shifted");
                assert_ne!(b[1..], a[..7], "substreams must not overlap shifted");
            }
        }
    }

    #[test]
    fn xorshift_accepts_zero_seed_and_differs_from_splitmix() {
        let mut x = XorShift64Star::new(0);
        let mut s = SplitMix64::new(0);
        let xs: Vec<u64> = (0..8).map(|_| x.next_u64()).collect();
        let ss: Vec<u64> = (0..8).map(|_| s.next_u64()).collect();
        assert_ne!(xs, ss);
        assert!(xs.iter().any(|&v| v != 0));
    }
}
