//! Attacker's-eye negative paths through the whole protocol stack, as
//! seen from the radio: every test feeds wire bytes (not constructed
//! structs) through the same decode functions a receiving node runs,
//! and asserts the stack answers with the right error — never a panic,
//! never silent acceptance.

use prng::SplitMix64;
use protocols::ecdh::{EcdhError, Keypair};
use protocols::ecdsa::{self, SigningKey, VerifyError};
use protocols::ecies::{self, EciesError};
use protocols::wire::{
    decode_public_key, decode_public_key_slice, decode_signature, decode_signature_slice,
    encode_public_key, encode_signature, ReplayGuard, SealedFrame, WireError,
};

#[test]
fn every_single_bit_flip_in_a_signature_is_rejected() {
    let key = SigningKey::generate(b"node-12 identity");
    let msg = b"fw-update v1.4.2 sha256=8c1f";
    let good = encode_signature(&key.sign(msg));
    for byte in 0..good.len() {
        for bit in 0..8 {
            let mut flipped = good;
            flipped[byte] ^= 1 << bit;
            // The decoder may reject the scalar outright (out of
            // range); otherwise verification must fail.
            match decode_signature_slice(&flipped) {
                Err(WireError::BadScalar) => {}
                Err(e) => panic!("unexpected decode error {e} at byte {byte} bit {bit}"),
                Ok(sig) => {
                    assert!(
                        ecdsa::verify(key.public(), msg, &sig).is_err(),
                        "flipped bit {bit} of byte {byte} still verified"
                    );
                }
            }
        }
    }
}

#[test]
fn truncated_and_padded_signatures_error_cleanly() {
    let key = SigningKey::generate(b"node-12 identity");
    let good = encode_signature(&key.sign(b"frame"));
    for len in 0..good.len() {
        assert_eq!(
            decode_signature_slice(&good[..len]),
            Err(WireError::BadLength { need: 60, got: len })
        );
    }
    let mut padded = good.to_vec();
    padded.push(0);
    assert_eq!(
        decode_signature_slice(&padded),
        Err(WireError::BadLength { need: 60, got: 61 })
    );
}

#[test]
fn signature_under_the_wrong_key_is_rejected_end_to_end() {
    let signer = SigningKey::generate(b"real signer");
    let imposter = SigningKey::generate(b"imposter");
    let msg = b"route update";
    let sig_bytes = encode_signature(&imposter.sign(msg));
    let key_bytes = encode_public_key(signer.public());
    // Receiver decodes both from the wire, then verifies.
    let q = decode_public_key_slice(&key_bytes).expect("signer key valid");
    let sig = decode_signature_slice(&sig_bytes).expect("well-formed signature");
    assert_eq!(ecdsa::verify(&q, msg, &sig), Err(VerifyError::BadSignature));
}

#[test]
fn tampered_ecies_ciphertext_and_mac_are_rejected() {
    let node = Keypair::generate(b"node-3");
    let ct = ecies::encrypt(node.public(), b"set interval=60", b"entropy").expect("valid key");
    // Flip every byte of the sealed body (ciphertext, header and MAC
    // alike): each single corruption must be caught by the tag check.
    for i in 0..ct.sealed.len() {
        let mut bad = ct.clone();
        bad.sealed[i] ^= 0x80;
        assert!(
            matches!(
                ecies::decrypt(&node, &bad),
                Err(EciesError::Wire(WireError::BadTag))
            ),
            "corrupted sealed byte {i} was not caught"
        );
    }
    // Truncating below header+tag is a length error, not a panic.
    let mut short = ct.clone();
    short.sealed.truncate(10);
    assert!(matches!(
        ecies::decrypt(&node, &short),
        Err(EciesError::Wire(WireError::BadLength { need: 20, got: 10 }))
    ));
}

#[test]
fn replayed_frames_are_rejected_after_one_delivery() {
    let a = Keypair::generate(b"node a");
    let b = Keypair::generate(b"node b");
    let secret = a.shared_secret(b.public()).expect("peer ok");
    let mut guard = ReplayGuard::new();

    let f1 = SealedFrame::seal(&secret, 1, b"reading 1");
    let f2 = SealedFrame::seal(&secret, 2, b"reading 2");
    // In-order delivery works; a captured copy replayed later does not,
    // even though its MAC is genuine.
    assert!(guard.open(&f1, &secret).is_ok());
    assert!(guard.open(&f2, &secret).is_ok());
    assert_eq!(
        guard.open(&f1, &secret),
        Err(WireError::Replayed { seq: 1, last: 2 })
    );
    assert_eq!(
        guard.open(&f2, &secret),
        Err(WireError::Replayed { seq: 2, last: 2 })
    );
}

#[test]
fn small_subgroup_probe_is_stopped_at_both_layers() {
    use gf2m::Fe;
    use koblitz::Affine;
    let node = Keypair::generate(b"victim node");
    // The 2-torsion point (0, 1) — on the curve, order 2. Its
    // compressed encoding is well-formed, so only an order check
    // stops it.
    let probe = Affine::new(Fe::ZERO, Fe::ONE).unwrap();
    let encoded = encode_public_key(&probe);
    assert_eq!(
        decode_public_key_slice(&encoded),
        Err(WireError::WrongOrder),
        "wire layer must reject the probe"
    );
    // Even handed the point directly (bypassing the wire), the ECDH
    // layer re-checks.
    assert_eq!(
        node.shared_secret(&probe),
        Err(EcdhError::WrongOrderPublicKey)
    );
}

/// One seeded mutation of a valid frame: truncate, extend, flip bits
/// or substitute a byte — the same attacker model the `verify` crate's
/// differential harness uses, kept in sync by construction (both feed
/// the same decoders).
fn mutate(template: &[u8], rng: &mut SplitMix64) -> Vec<u8> {
    let mut buf = template.to_vec();
    match rng.below(5) {
        0 => {
            let len = rng.below(buf.len() as u64 + 1) as usize;
            buf.truncate(len);
        }
        1 => {
            for _ in 0..rng.below(16) + 1 {
                buf.push(rng.next_u32() as u8);
            }
        }
        2 if !buf.is_empty() => {
            for _ in 0..rng.below(4) + 1 {
                let i = rng.below(buf.len() as u64) as usize;
                buf[i] ^= 1 << rng.below(8);
            }
        }
        3 if !buf.is_empty() => {
            let i = rng.below(buf.len() as u64) as usize;
            buf[i] = rng.next_u32() as u8;
        }
        _ => {}
    }
    buf
}

#[test]
fn fuzzed_public_key_frames_never_panic_and_decoders_agree() {
    let key = SigningKey::generate(b"fuzz identity");
    let good = encode_public_key(key.public());
    let mut rng = SplitMix64::new(0xf0bb);
    let mut rejected = 0;
    for _ in 0..2000 {
        let buf = mutate(&good, &mut rng);
        // Slice decoder: must return a typed error, never panic.
        let via_slice = decode_public_key_slice(&buf);
        if via_slice.is_err() {
            rejected += 1;
        }
        match <&[u8; 31]>::try_from(buf.as_slice()) {
            // Same bytes through the owned-array decoder: the typed
            // result must be identical.
            Ok(arr) => assert_eq!(decode_public_key(arr), via_slice, "bytes {buf:02x?}"),
            Err(_) => assert_eq!(
                via_slice,
                Err(WireError::BadLength {
                    need: 31,
                    got: buf.len()
                })
            ),
        }
    }
    assert!(rejected > 500, "mutations barely exercised the error paths");
}

#[test]
fn fuzzed_signature_frames_never_panic_and_decoders_agree() {
    let key = SigningKey::generate(b"fuzz identity");
    let good = encode_signature(&key.sign(b"fuzzed message"));
    let mut rng = SplitMix64::new(0xf519);
    for _ in 0..2000 {
        let buf = mutate(&good, &mut rng);
        let via_slice = decode_signature_slice(&buf);
        match <&[u8; 60]>::try_from(buf.as_slice()) {
            Ok(arr) => assert_eq!(decode_signature(arr), via_slice, "bytes {buf:02x?}"),
            Err(_) => assert_eq!(
                via_slice,
                Err(WireError::BadLength {
                    need: 60,
                    got: buf.len()
                })
            ),
        }
    }
}

#[test]
fn fuzzed_sealed_frames_never_panic_and_reparse_identically() {
    let secret = [0x31u8; 32];
    let good = SealedFrame::seal(&secret, 9, b"sensor frame payload")
        .as_bytes()
        .to_vec();
    let mut rng = SplitMix64::new(0xf3a3);
    let mut accepted = 0;
    for _ in 0..2000 {
        let buf = mutate(&good, &mut rng);
        let Ok(frame) = SealedFrame::from_bytes(&buf) else {
            continue; // typed parse error — fine
        };
        // Re-encoding a parsed frame must be lossless, and opening the
        // re-parsed copy must give the same typed outcome.
        let reparsed = SealedFrame::from_bytes(frame.as_bytes()).expect("roundtrip parses");
        assert_eq!(reparsed.open(&secret), frame.open(&secret));
        if frame.open(&secret).is_ok() {
            accepted += 1;
        }
    }
    // The untouched template is sealed with the right secret, so the
    // accept path must have been exercised too (mutation arm 4 is a
    // no-op).
    assert!(accepted > 0, "accept path never exercised");
}
