//! AES-128 (FIPS 197), from scratch, for the hybrid-cryptosystem demo.
//!
//! The paper's introduction motivates ECC exactly for this setting:
//! *"hybrid cryptosystems where PKC is used for key exchange, and
//! symmetric cryptography is used for the efficient encryption of
//! data."* The WSN example derives an AES key through ECDH and encrypts
//! telemetry in counter mode.
//!
//! This is a table-free, readable implementation (S-box computed at
//! compile time) — constant-time hardening is out of scope here, as it
//! is in the paper.

/// The AES S-box, generated at compile time from the multiplicative
/// inverse in GF(2⁸) followed by the affine map.
pub static SBOX: [u8; 256] = build_sbox();

const fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut out = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 == 1 {
            out ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1B;
        }
        b >>= 1;
        i += 1;
    }
    out
}

const fn gf_inv(a: u8) -> u8 {
    // a^254 in GF(2^8) (0 maps to 0).
    let mut result = 1u8;
    let mut base = a;
    let mut e = 254u8;
    while e > 0 {
        if e & 1 == 1 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        e >>= 1;
    }
    result
}

const fn build_sbox() -> [u8; 256] {
    let mut sbox = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        let inv = gf_inv(i as u8);
        let mut x = inv;
        let mut y = inv;
        let mut r = 1;
        while r < 5 {
            y = y.rotate_left(1);
            x ^= y;
            r += 1;
        }
        sbox[i] = x ^ 0x63;
        i += 1;
    }
    sbox
}

/// Expanded AES-128 key schedule (11 round keys).
#[derive(Debug, Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expands a 128-bit key.
    pub fn new(key: &[u8; 16]) -> Aes128 {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i].copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        let mut rcon = 1u8;
        for i in 4..44 {
            let mut t = w[i - 1];
            if i % 4 == 0 {
                t.rotate_left(1);
                for b in t.iter_mut() {
                    *b = SBOX[*b as usize];
                }
                t[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ t[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for r in 0..11 {
            for c in 0..4 {
                round_keys[r][4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[0]);
        for r in 1..10 {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[r]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[10]);
        state
    }

    /// Counter-mode keystream encryption/decryption (symmetric): XORs
    /// the keystream derived from `nonce` into `data`.
    pub fn ctr_apply(&self, nonce: &[u8; 12], data: &mut [u8]) {
        for (counter, chunk) in data.chunks_mut(16).enumerate() {
            let mut block = [0u8; 16];
            block[..12].copy_from_slice(nonce);
            block[12..].copy_from_slice(&(counter as u32).to_be_bytes());
            let ks = self.encrypt_block(&block);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }
}

fn add_round_key(state: &mut [u8; 16], key: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(key) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    // Column-major state: byte (row r, col c) at index 4c + r.
    let old = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = old[4 * ((c + r) % 4) + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_known_entries() {
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
    }

    #[test]
    fn fips197_appendix_b_vector() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let plain = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let want = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        assert_eq!(Aes128::new(&key).encrypt_block(&plain), want);
    }

    #[test]
    fn fips197_appendix_c_vector() {
        let key: [u8; 16] = (0..16u8).collect::<Vec<_>>().try_into().unwrap();
        let plain: [u8; 16] = (0..16u8)
            .map(|i| i * 0x11)
            .collect::<Vec<_>>()
            .try_into()
            .unwrap();
        let want = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(Aes128::new(&key).encrypt_block(&plain), want);
    }

    #[test]
    fn ctr_roundtrip() {
        let key = [7u8; 16];
        let nonce = [9u8; 12];
        let aes = Aes128::new(&key);
        let mut data = b"sensor reading: 23.4 C, battery 87%".to_vec();
        let original = data.clone();
        aes.ctr_apply(&nonce, &mut data);
        assert_ne!(data, original);
        aes.ctr_apply(&nonce, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn ctr_multiblock_keystream_differs_per_block() {
        let aes = Aes128::new(&[1u8; 16]);
        let mut data = vec![0u8; 48];
        aes.ctr_apply(&[0u8; 12], &mut data);
        assert_ne!(data[..16], data[16..32]);
        assert_ne!(data[16..32], data[32..48]);
    }
}
