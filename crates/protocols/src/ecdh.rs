//! Elliptic-curve Diffie-Hellman over sect233k1.
//!
//! The paper's motivating WSN use case: each node generates a key pair
//! (one *fixed-point* multiplication kG — the cheap 20.63 µJ operation),
//! exchanges public points, and computes the shared secret (one
//! *random-point* multiplication k·Q — the 34.16 µJ operation). The
//! derived secret feeds a KDF (SHA-256) to produce symmetric key
//! material.

use crate::hmac::HmacDrbg;
use crate::sha256::Sha256;
use koblitz::curve::{Affine, NotOnCurveError};
use koblitz::{mul, Scalar};

/// A sect233k1 key pair.
#[derive(Debug, Clone)]
pub struct Keypair {
    secret: Scalar,
    public: Affine,
}

/// Errors from the ECDH operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcdhError {
    /// The peer's public point failed validation.
    InvalidPublicKey,
    /// The peer's point is on the curve but outside the prime-order
    /// subgroup (a small-subgroup probe — cofactor 4 on sect233k1).
    WrongOrderPublicKey,
    /// The computed shared point was the identity (invalid peer key).
    DegenerateSharedSecret,
}

impl std::fmt::Display for EcdhError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EcdhError::InvalidPublicKey => f.write_str("peer public key is not on the curve"),
            EcdhError::WrongOrderPublicKey => {
                f.write_str("peer public key is outside the prime-order subgroup")
            }
            EcdhError::DegenerateSharedSecret => {
                f.write_str("shared secret degenerated to infinity")
            }
        }
    }
}

impl std::error::Error for EcdhError {}

impl From<NotOnCurveError> for EcdhError {
    fn from(_: NotOnCurveError) -> EcdhError {
        EcdhError::InvalidPublicKey
    }
}

impl Keypair {
    /// Generates a key pair from seed material (deterministic; a real
    /// node would mix in its entropy source). Uses the fixed-point
    /// multiplication kG.
    pub fn generate(seed: &[u8]) -> Keypair {
        let mut drbg = HmacDrbg::new(seed);
        let mut wide = [0u8; 40];
        loop {
            drbg.generate(&mut wide);
            let secret = Scalar::from_wide_bytes(&wide);
            if !secret.is_zero() {
                let public = mul::mul_g(&secret.to_int());
                return Keypair { secret, public };
            }
        }
    }

    /// The public point Q = d·G.
    pub fn public(&self) -> &Affine {
        &self.public
    }

    /// The secret scalar (exposed for tests and energy accounting).
    pub fn secret(&self) -> &Scalar {
        &self.secret
    }

    /// Computes the shared secret with a peer's public point: one
    /// random-point multiplication d·Q, then SHA-256 over the shared
    /// x-coordinate.
    ///
    /// # Errors
    ///
    /// Rejects peer points that are off-curve, outside the prime-order
    /// subgroup, or lead to the identity. The on-curve check runs
    /// first; the order check closes the small-subgroup hole (the
    /// τ-adic multiplication below is only defined on the order-n
    /// subgroup, so skipping it would also compute garbage).
    pub fn shared_secret(&self, peer: &Affine) -> Result<[u8; 32], EcdhError> {
        if !peer.is_on_curve() || peer.is_infinity() {
            return Err(EcdhError::InvalidPublicKey);
        }
        if !peer.is_in_prime_order_subgroup() {
            return Err(EcdhError::WrongOrderPublicKey);
        }
        let shared = mul::mul_wtnaf(peer, &self.secret.to_int(), mul::KP_WINDOW);
        if shared.is_infinity() {
            return Err(EcdhError::DegenerateSharedSecret);
        }
        Ok(kdf(&shared))
    }
}

/// The ECDH key-derivation step: SHA-256 over a domain tag and the
/// shared x-coordinate. `shared` must be finite.
pub(crate) fn kdf(shared: &Affine) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"ecdh-sect233k1");
    h.update(&shared.x().to_be_bytes());
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2m::Fe;

    #[test]
    fn both_sides_agree() {
        let alice = Keypair::generate(b"alice seed");
        let bob = Keypair::generate(b"bob seed");
        let s1 = alice.shared_secret(bob.public()).unwrap();
        let s2 = bob.shared_secret(alice.public()).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn different_peers_give_different_secrets() {
        let alice = Keypair::generate(b"alice seed");
        let bob = Keypair::generate(b"bob seed");
        let carol = Keypair::generate(b"carol seed");
        let s_ab = alice.shared_secret(bob.public()).unwrap();
        let s_ac = alice.shared_secret(carol.public()).unwrap();
        assert_ne!(s_ab, s_ac);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Keypair::generate(b"same");
        let b = Keypair::generate(b"same");
        assert_eq!(a.public(), b.public());
        let c = Keypair::generate(b"different");
        assert_ne!(a.public(), c.public());
    }

    #[test]
    fn public_key_is_on_curve() {
        let kp = Keypair::generate(b"check");
        assert!(kp.public().is_on_curve());
        assert!(!kp.public().is_infinity());
    }

    #[test]
    fn rejects_bad_peer_points() {
        let alice = Keypair::generate(b"alice");
        assert_eq!(
            alice.shared_secret(&Affine::Infinity),
            Err(EcdhError::InvalidPublicKey)
        );
        // An off-curve point constructed by corrupting a coordinate.
        let mut bad = *Keypair::generate(b"bob").public();
        if let Affine::Point { x, y } = &mut bad {
            *y += Fe::ONE;
            if Affine::new(*x, *y).is_ok() {
                // astronomically unlikely; skip rather than mis-assert
                return;
            }
        }
        assert_eq!(alice.shared_secret(&bad), Err(EcdhError::InvalidPublicKey));
    }

    #[test]
    fn rejects_small_subgroup_probes() {
        use koblitz::generator;
        let alice = Keypair::generate(b"alice");
        // The 2-torsion point (0, 1) and the order-4 point (1, 1) are
        // both on the curve — a naive on-curve check passes them.
        let t2 = Affine::new(Fe::ZERO, Fe::ONE).unwrap();
        assert_eq!(
            alice.shared_secret(&t2),
            Err(EcdhError::WrongOrderPublicKey)
        );
        let t4 = Affine::new(Fe::ONE, Fe::ONE).unwrap();
        assert_eq!(
            alice.shared_secret(&t4),
            Err(EcdhError::WrongOrderPublicKey)
        );
        // A composite-order probe: G + (0, 1) has order 2n.
        let composite = generator().add(&t2);
        assert!(composite.is_on_curve());
        assert_eq!(
            alice.shared_secret(&composite),
            Err(EcdhError::WrongOrderPublicKey)
        );
    }
}
