//! HMAC-SHA256 (RFC 2104) and a deterministic bit generator built on it.
//!
//! The DRBG seeds ECDSA nonces and example keys deterministically — the
//! reproduction has no hardware entropy source, and deterministic nonces
//! (RFC 6979 style) are what a careful embedded implementation uses
//! anyway.

use crate::sha256::Sha256;

/// Computes HMAC-SHA256 of `data` under `key`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut k = [0u8; 64];
    if key.len() > 64 {
        k[..32].copy_from_slice(&Sha256::digest(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    let opad: Vec<u8> = k.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// A minimal HMAC-DRBG (NIST SP 800-90A shape, no reseeding) for
/// deterministic keys and nonces.
#[derive(Debug, Clone)]
pub struct HmacDrbg {
    k: [u8; 32],
    v: [u8; 32],
}

impl HmacDrbg {
    /// Instantiates from seed material.
    pub fn new(seed: &[u8]) -> HmacDrbg {
        let mut drbg = HmacDrbg {
            k: [0u8; 32],
            v: [1u8; 32],
        };
        drbg.update(Some(seed));
        drbg
    }

    fn update(&mut self, provided: Option<&[u8]>) {
        let mut data = self.v.to_vec();
        data.push(0x00);
        if let Some(p) = provided {
            data.extend_from_slice(p);
        }
        self.k = hmac_sha256(&self.k, &data);
        self.v = hmac_sha256(&self.k, &self.v);
        if let Some(p) = provided {
            let mut data = self.v.to_vec();
            data.push(0x01);
            data.extend_from_slice(p);
            self.k = hmac_sha256(&self.k, &data);
            self.v = hmac_sha256(&self.k, &self.v);
        }
    }

    /// Fills `out` with deterministic pseudo-random bytes.
    pub fn generate(&mut self, out: &mut [u8]) {
        let mut filled = 0;
        while filled < out.len() {
            self.v = hmac_sha256(&self.k, &self.v);
            let take = (out.len() - filled).min(32);
            out[filled..filled + take].copy_from_slice(&self.v[..take]);
            filled += take;
        }
        self.update(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    #[test]
    fn rfc4231_test_case_1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_test_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_test_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_long_key() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn drbg_is_deterministic_and_stream_like() {
        let mut a = HmacDrbg::new(b"seed material");
        let mut b = HmacDrbg::new(b"seed material");
        let mut buf_a = [0u8; 80];
        let mut buf_b = [0u8; 80];
        a.generate(&mut buf_a);
        b.generate(&mut buf_b);
        assert_eq!(buf_a, buf_b);
        // Subsequent output differs from the first.
        let mut buf_c = [0u8; 80];
        a.generate(&mut buf_c);
        assert_ne!(buf_a, buf_c);
        // Different seeds diverge.
        let mut d = HmacDrbg::new(b"other seed");
        let mut buf_d = [0u8; 80];
        d.generate(&mut buf_d);
        assert_ne!(buf_a, buf_d);
    }
}
