//! Wire formats for the WSN protocol layer: compressed public keys,
//! fixed-size signatures, and the sealed telemetry frame of the hybrid
//! cryptosystem (AES-128-CTR + HMAC-SHA256, encrypt-then-MAC).
//!
//! Radio payload is the scarcest resource after energy on a sensor
//! node; compression cuts a public key from 61 to 31 bytes.

use crate::aes128::Aes128;
use crate::ecdsa::Signature;
use crate::hmac::hmac_sha256;
use koblitz::curve::{Affine, DecompressError};
use koblitz::{Int, Scalar};

/// Errors decoding wire data — the shared taxonomy for everything a
/// node can receive over the radio. Every reject names *why*, so the
/// negative-path tests (and a listening operator) can tell an
/// off-curve probe from a truncated frame from a replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Point decompression failed (bad tag byte or no such x).
    BadPoint(DecompressError),
    /// The decoded point was the identity — never a valid public key.
    IdentityPoint,
    /// The decoded point is on the curve but outside the prime-order
    /// subgroup (a small-subgroup / invalid-point probe; sect233k1 has
    /// cofactor 4).
    WrongOrder,
    /// A scalar was zero or ≥ n.
    BadScalar,
    /// The frame authentication tag did not verify.
    BadTag,
    /// The buffer was shorter than the format requires.
    BadLength {
        /// Minimum (or exact) byte length the format needs.
        need: usize,
        /// Length actually received.
        got: usize,
    },
    /// The buffer exceeded the maximum accepted frame size.
    Oversize {
        /// Maximum accepted length.
        max: usize,
        /// Length actually received.
        got: usize,
    },
    /// The frame's sequence number was not fresh (a replay).
    Replayed {
        /// Sequence number received.
        seq: u32,
        /// Newest sequence number already accepted.
        last: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadPoint(e) => write!(f, "bad point encoding: {e}"),
            WireError::IdentityPoint => f.write_str("point is the identity"),
            WireError::WrongOrder => f.write_str("point is outside the prime-order subgroup"),
            WireError::BadScalar => f.write_str("scalar out of range"),
            WireError::BadTag => f.write_str("authentication tag mismatch"),
            WireError::BadLength { need, got } => {
                write!(f, "buffer too short: need {need} bytes, got {got}")
            }
            WireError::Oversize { max, got } => {
                write!(f, "buffer too long: at most {max} bytes, got {got}")
            }
            WireError::Replayed { seq, last } => {
                write!(f, "replayed frame: seq {seq} not newer than {last}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<DecompressError> for WireError {
    fn from(e: DecompressError) -> WireError {
        WireError::BadPoint(e)
    }
}

/// Encodes a public key compressed (31 bytes).
pub fn encode_public_key(p: &Affine) -> [u8; 31] {
    p.to_compressed_bytes()
}

/// Decodes and fully validates a compressed public key: the encoding
/// must parse, the point must be finite, on the curve, and of order n.
///
/// The order check matters even for decompressed points: x = 0 decodes
/// to the 2-torsion point (0, 1), and other cofactor points decompress
/// fine too — without the check they make small-subgroup probes.
///
/// # Errors
///
/// [`WireError::BadPoint`] for malformed encodings,
/// [`WireError::IdentityPoint`] for the identity,
/// [`WireError::WrongOrder`] for cofactor / composite-order points.
pub fn decode_public_key(bytes: &[u8; 31]) -> Result<Affine, WireError> {
    let p = Affine::from_compressed_bytes(bytes)?;
    if p.is_infinity() {
        return Err(WireError::IdentityPoint);
    }
    debug_assert!(p.is_on_curve());
    if !p.is_in_prime_order_subgroup() {
        return Err(WireError::WrongOrder);
    }
    Ok(p)
}

/// [`decode_public_key`] for radio buffers of unchecked length.
///
/// # Errors
///
/// Adds [`WireError::BadLength`] to the fixed-size decoder's errors.
pub fn decode_public_key_slice(bytes: &[u8]) -> Result<Affine, WireError> {
    let fixed: &[u8; 31] = bytes.try_into().map_err(|_| WireError::BadLength {
        need: 31,
        got: bytes.len(),
    })?;
    decode_public_key(fixed)
}

/// Encodes a signature as r ‖ s, 30 bytes each.
pub fn encode_signature(sig: &Signature) -> [u8; 60] {
    let mut out = [0u8; 60];
    out[..30].copy_from_slice(&sig.r.to_int().to_be_bytes_padded(30));
    out[30..].copy_from_slice(&sig.s.to_int().to_be_bytes_padded(30));
    out
}

/// Decodes a signature, rejecting out-of-range components.
///
/// # Errors
///
/// Returns [`WireError::BadScalar`] for zero or non-canonical values.
pub fn decode_signature(bytes: &[u8; 60]) -> Result<Signature, WireError> {
    let r_int = Int::from_be_bytes(&bytes[..30]);
    let s_int = Int::from_be_bytes(&bytes[30..]);
    let n = koblitz::order();
    if r_int.is_zero() || s_int.is_zero() || r_int >= n || s_int >= n {
        return Err(WireError::BadScalar);
    }
    Ok(Signature {
        r: Scalar::new(r_int),
        s: Scalar::new(s_int),
    })
}

/// [`decode_signature`] for radio buffers of unchecked length. A
/// truncated or padded signature is a length error, not a panic.
///
/// # Errors
///
/// Adds [`WireError::BadLength`] to the fixed-size decoder's errors.
pub fn decode_signature_slice(bytes: &[u8]) -> Result<Signature, WireError> {
    let fixed: &[u8; 60] = bytes.try_into().map_err(|_| WireError::BadLength {
        need: 60,
        got: bytes.len(),
    })?;
    decode_signature(fixed)
}

/// A sealed telemetry frame: 4-byte sequence number ‖ ciphertext ‖
/// 16-byte truncated HMAC tag. Key material comes from the ECDH shared
/// secret (first 16 bytes AES, last 16 bytes MAC).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedFrame {
    bytes: Vec<u8>,
}

impl SealedFrame {
    /// Largest payload a frame may carry — a sensor-radio MTU bound
    /// that keeps a malicious length from forcing unbounded buffering.
    pub const MAX_PAYLOAD: usize = 1024;

    /// Largest wire frame: header + payload + tag.
    pub const MAX_FRAME: usize = 4 + Self::MAX_PAYLOAD + 16;

    /// Encrypts and authenticates `payload` under the 32-byte session
    /// secret with the given sequence number (also the CTR nonce seed).
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds [`SealedFrame::MAX_PAYLOAD`] (a
    /// sender-side programming error: the peer would reject the frame).
    pub fn seal(secret: &[u8; 32], seq: u32, payload: &[u8]) -> SealedFrame {
        assert!(
            payload.len() <= Self::MAX_PAYLOAD,
            "payload exceeds the frame MTU"
        );
        let aes = Aes128::new(&secret[..16].try_into().expect("16 bytes"));
        let mut nonce = [0u8; 12];
        nonce[..4].copy_from_slice(&seq.to_be_bytes());
        let mut body = payload.to_vec();
        aes.ctr_apply(&nonce, &mut body);
        let mut bytes = seq.to_be_bytes().to_vec();
        bytes.extend_from_slice(&body);
        let tag = hmac_sha256(&secret[16..], &bytes);
        bytes.extend_from_slice(&tag[..16]);
        SealedFrame { bytes }
    }

    /// The wire bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Parses wire bytes (no authentication yet — that happens in
    /// [`SealedFrame::open`]).
    ///
    /// # Errors
    ///
    /// Rejects frames shorter than header + tag
    /// ([`WireError::BadLength`]) and frames over
    /// [`SealedFrame::MAX_FRAME`] ([`WireError::Oversize`]).
    pub fn from_bytes(bytes: &[u8]) -> Result<SealedFrame, WireError> {
        if bytes.len() < 4 + 16 {
            return Err(WireError::BadLength {
                need: 4 + 16,
                got: bytes.len(),
            });
        }
        if bytes.len() > Self::MAX_FRAME {
            return Err(WireError::Oversize {
                max: Self::MAX_FRAME,
                got: bytes.len(),
            });
        }
        Ok(SealedFrame {
            bytes: bytes.to_vec(),
        })
    }

    /// Verifies and decrypts, returning the sequence number and
    /// payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadTag`] on any authentication failure.
    pub fn open(&self, secret: &[u8; 32]) -> Result<(u32, Vec<u8>), WireError> {
        let split = self.bytes.len() - 16;
        let (body, tag) = self.bytes.split_at(split);
        let want = hmac_sha256(&secret[16..], body);
        // Constant-time-ish comparison (full-width accumulate).
        let mut diff = 0u8;
        for (a, b) in tag.iter().zip(&want[..16]) {
            diff |= a ^ b;
        }
        if diff != 0 {
            return Err(WireError::BadTag);
        }
        let seq = u32::from_be_bytes(body[..4].try_into().expect("4 bytes"));
        let aes = Aes128::new(&secret[..16].try_into().expect("16 bytes"));
        let mut nonce = [0u8; 12];
        nonce[..4].copy_from_slice(&seq.to_be_bytes());
        let mut payload = body[4..].to_vec();
        aes.ctr_apply(&nonce, &mut payload);
        Ok((seq, payload))
    }
}

/// Receiver-side anti-replay state: accepts strictly increasing
/// sequence numbers. The sequence number doubles as the CTR nonce in
/// [`SealedFrame::seal`], so accepting a stale frame would both
/// re-deliver old data and sanction keystream reuse; this guard
/// enforces freshness *after* the tag verifies (an attacker must not
/// be able to advance the window with forged frames).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayGuard {
    last: Option<u32>,
}

impl ReplayGuard {
    /// A guard that has accepted no frames yet.
    pub fn new() -> ReplayGuard {
        ReplayGuard::default()
    }

    /// Verifies, decrypts and freshness-checks `frame`, advancing the
    /// window on success.
    ///
    /// # Errors
    ///
    /// [`SealedFrame::open`]'s errors, plus [`WireError::Replayed`]
    /// when the sequence number does not move forward.
    pub fn open(
        &mut self,
        frame: &SealedFrame,
        secret: &[u8; 32],
    ) -> Result<(u32, Vec<u8>), WireError> {
        let (seq, payload) = frame.open(secret)?;
        if let Some(last) = self.last {
            if seq <= last {
                return Err(WireError::Replayed { seq, last });
            }
        }
        self.last = Some(seq);
        Ok((seq, payload))
    }

    /// The newest sequence number accepted so far.
    pub fn last_accepted(&self) -> Option<u32> {
        self.last
    }
}

/// A windowed replay rejection: the raw-sequence counterpart of
/// [`WireError::Replayed`] for [`WindowedReplayGuard`], which tracks
/// 64-bit sequence numbers and a window floor rather than a single
/// high-water mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayRejected {
    /// The sequence number that was refused.
    pub seq: u64,
    /// The oldest sequence number the window still accepts; everything
    /// below it is treated as replayed.
    pub floor: u64,
}

impl std::fmt::Display for ReplayRejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replayed sequence {} (window floor {})",
            self.seq, self.floor
        )
    }
}

impl std::error::Error for ReplayRejected {}

/// Bounded anti-replay state accepting *out-of-order* sequence numbers
/// within a sliding window.
///
/// [`ReplayGuard`] is O(1) but strictly monotonic: any reordering drops
/// frames. This guard remembers up to `capacity` accepted sequence
/// numbers so late frames still land, while staying immune to the
/// attack a naive seen-set invites — an adversarial flood of unique
/// sequence numbers growing receiver memory without bound. When the set
/// is full, the *lowest* sequence number is evicted deterministically
/// and the window floor rises past it, so memory is bounded by
/// construction and replay detection still holds for everything at or
/// above the floor (older frames are conservatively refused).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowedReplayGuard {
    /// Accepted sequence numbers at or above `floor`, sorted ascending.
    seen: Vec<u64>,
    capacity: usize,
    floor: u64,
    evictions: u64,
}

impl WindowedReplayGuard {
    /// A guard remembering at most `capacity` sequence numbers
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> WindowedReplayGuard {
        WindowedReplayGuard {
            seen: Vec::new(),
            capacity: capacity.max(1),
            floor: 0,
            evictions: 0,
        }
    }

    /// Checks freshness without committing — the admission-control
    /// pattern: a request rejected *later* in the pipeline (quota,
    /// backpressure) must not burn its sequence number, or the retry
    /// the rejection invites would read as a replay.
    ///
    /// # Errors
    ///
    /// [`ReplayRejected`] for sequence numbers below the window floor
    /// or already accepted.
    pub fn check(&self, seq: u64) -> Result<(), ReplayRejected> {
        if seq < self.floor || self.seen.binary_search(&seq).is_ok() {
            return Err(ReplayRejected {
                seq,
                floor: self.floor,
            });
        }
        Ok(())
    }

    /// Commits a sequence number, evicting the lowest one (and raising
    /// the floor past it) if the window is full.
    ///
    /// # Errors
    ///
    /// The same rejections as [`WindowedReplayGuard::check`].
    pub fn accept(&mut self, seq: u64) -> Result<(), ReplayRejected> {
        if seq < self.floor {
            return Err(ReplayRejected {
                seq,
                floor: self.floor,
            });
        }
        let at = match self.seen.binary_search(&seq) {
            Ok(_) => {
                return Err(ReplayRejected {
                    seq,
                    floor: self.floor,
                })
            }
            Err(at) => at,
        };
        self.seen.insert(at, seq);
        if self.seen.len() > self.capacity {
            let evicted = self.seen.remove(0);
            self.floor = evicted + 1;
            self.evictions += 1;
        }
        Ok(())
    }

    /// Verifies, decrypts and freshness-checks a sealed frame — the
    /// windowed counterpart of [`ReplayGuard::open`], for receivers
    /// whose radio reorders frames.
    ///
    /// # Errors
    ///
    /// [`SealedFrame::open`]'s errors, plus [`WireError::Replayed`]
    /// (carrying the newest accepted sequence number) when the
    /// sequence number is stale or already seen. A frame that fails
    /// authentication never advances the window.
    pub fn open(
        &mut self,
        frame: &SealedFrame,
        secret: &[u8; 32],
    ) -> Result<(u32, Vec<u8>), WireError> {
        let (seq, payload) = frame.open(secret)?;
        self.accept(seq as u64).map_err(|_| WireError::Replayed {
            seq,
            last: self.newest() as u32,
        })?;
        Ok((seq, payload))
    }

    /// The newest sequence number accepted (0 before any accept).
    pub fn newest(&self) -> u64 {
        self.seen
            .last()
            .copied()
            .unwrap_or_else(|| self.floor.saturating_sub(1))
    }

    /// The oldest sequence number the window still accepts.
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// Sequence numbers currently remembered (≤ capacity, always).
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether no sequence number has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// How many sequence numbers were evicted to keep memory bounded.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecdh::Keypair;
    use crate::ecdsa::SigningKey;

    #[test]
    fn public_key_roundtrip() {
        let kp = Keypair::generate(b"wire test");
        let enc = encode_public_key(kp.public());
        assert_eq!(decode_public_key(&enc), Ok(*kp.public()));
    }

    #[test]
    fn public_key_rejects_infinity_and_garbage() {
        // The all-zero tag encodes the identity.
        assert_eq!(decode_public_key(&[0u8; 31]), Err(WireError::IdentityPoint));
        let mut garbage = [0xFFu8; 31];
        garbage[0] = 0x07;
        assert_eq!(
            decode_public_key(&garbage),
            Err(WireError::BadPoint(DecompressError::InvalidTag))
        );
    }

    #[test]
    fn public_key_rejects_small_subgroup_points() {
        use gf2m::Fe;
        use koblitz::Affine;
        // x = 0 decompresses to the 2-torsion point (0, 1): a
        // well-formed encoding that must still be rejected.
        let two_torsion = Affine::new(Fe::ZERO, Fe::ONE).unwrap();
        let enc = encode_public_key(&two_torsion);
        assert_eq!(
            Affine::from_compressed_bytes(&enc),
            Ok(two_torsion),
            "decompression itself accepts the cofactor point"
        );
        assert_eq!(decode_public_key(&enc), Err(WireError::WrongOrder));
        // The order-4 point (1, 1) likewise.
        let order4 = Affine::new(Fe::ONE, Fe::ONE).unwrap();
        assert_eq!(
            decode_public_key(&encode_public_key(&order4)),
            Err(WireError::WrongOrder)
        );
    }

    #[test]
    fn slice_decoders_reject_bad_lengths_without_panicking() {
        let kp = Keypair::generate(b"slice test");
        let enc = encode_public_key(kp.public());
        assert_eq!(decode_public_key_slice(&enc), Ok(*kp.public()));
        assert_eq!(
            decode_public_key_slice(&enc[..30]),
            Err(WireError::BadLength { need: 31, got: 30 })
        );
        let key = SigningKey::generate(b"slice signer");
        let sig = encode_signature(&key.sign(b"frame"));
        assert!(decode_signature_slice(&sig).is_ok());
        assert_eq!(
            decode_signature_slice(&sig[..59]),
            Err(WireError::BadLength { need: 60, got: 59 })
        );
        let mut long = sig.to_vec();
        long.push(0);
        assert_eq!(
            decode_signature_slice(&long),
            Err(WireError::BadLength { need: 60, got: 61 })
        );
    }

    #[test]
    fn signature_roundtrip() {
        let key = SigningKey::generate(b"wire signer");
        let sig = key.sign(b"frame");
        let enc = encode_signature(&sig);
        assert_eq!(decode_signature(&enc), Ok(sig));
    }

    #[test]
    fn signature_rejects_out_of_range() {
        let zeros = [0u8; 60];
        assert_eq!(decode_signature(&zeros), Err(WireError::BadScalar));
        let mut big = [0xFFu8; 60];
        big[0] = 0xFF;
        assert_eq!(decode_signature(&big), Err(WireError::BadScalar));
    }

    #[test]
    fn sealed_frame_roundtrip() {
        let secret = [42u8; 32];
        let frame = SealedFrame::seal(&secret, 7, b"temp=23.4C");
        let parsed = SealedFrame::from_bytes(frame.as_bytes()).expect("length ok");
        let (seq, payload) = parsed.open(&secret).expect("tag ok");
        assert_eq!(seq, 7);
        assert_eq!(payload, b"temp=23.4C");
    }

    #[test]
    fn sealed_frame_detects_tampering() {
        let secret = [42u8; 32];
        let frame = SealedFrame::seal(&secret, 7, b"door=closed");
        let mut bytes = frame.as_bytes().to_vec();
        bytes[6] ^= 0x01; // flip a ciphertext bit
        let tampered = SealedFrame::from_bytes(&bytes).expect("length ok");
        assert_eq!(tampered.open(&secret), Err(WireError::BadTag));
        // Wrong key fails too.
        let wrong = [43u8; 32];
        assert_eq!(frame.open(&wrong), Err(WireError::BadTag));
    }

    #[test]
    fn sealed_frame_rejects_short_buffers() {
        assert_eq!(
            SealedFrame::from_bytes(&[0u8; 10]),
            Err(WireError::BadLength { need: 20, got: 10 })
        );
    }

    #[test]
    fn sealed_frame_rejects_oversize_buffers() {
        let big = vec![0u8; SealedFrame::MAX_FRAME + 1];
        assert_eq!(
            SealedFrame::from_bytes(&big),
            Err(WireError::Oversize {
                max: SealedFrame::MAX_FRAME,
                got: SealedFrame::MAX_FRAME + 1
            })
        );
        // The largest legal frame still parses.
        assert!(SealedFrame::from_bytes(&vec![0u8; SealedFrame::MAX_FRAME]).is_ok());
    }

    #[test]
    fn replay_guard_rejects_stale_and_repeated_sequences() {
        let secret = [9u8; 32];
        let f1 = SealedFrame::seal(&secret, 1, b"one");
        let f2 = SealedFrame::seal(&secret, 2, b"two");
        let mut guard = ReplayGuard::new();
        assert_eq!(guard.open(&f1, &secret).unwrap().1, b"one");
        assert_eq!(guard.open(&f2, &secret).unwrap().1, b"two");
        // Replaying either frame is rejected even though the tags are
        // perfectly valid.
        assert_eq!(
            guard.open(&f2, &secret),
            Err(WireError::Replayed { seq: 2, last: 2 })
        );
        assert_eq!(
            guard.open(&f1, &secret),
            Err(WireError::Replayed { seq: 1, last: 2 })
        );
        assert_eq!(guard.last_accepted(), Some(2));
        // A forged frame must not advance the window.
        let mut forged = f1.as_bytes().to_vec();
        let len = forged.len();
        forged[len - 1] ^= 1;
        let forged = SealedFrame::from_bytes(&forged).unwrap();
        assert_eq!(guard.open(&forged, &secret), Err(WireError::BadTag));
        assert_eq!(guard.last_accepted(), Some(2));
    }

    #[test]
    fn windowed_guard_accepts_out_of_order_within_window() {
        let mut g = WindowedReplayGuard::new(8);
        for seq in [5u64, 3, 9, 4, 7] {
            assert_eq!(g.accept(seq), Ok(()), "seq {seq}");
        }
        // Every accepted sequence is now a replay; gaps are still fine.
        for seq in [5u64, 3, 9] {
            assert_eq!(g.accept(seq), Err(ReplayRejected { seq, floor: 0 }));
        }
        assert_eq!(g.accept(6), Ok(()));
        assert_eq!(g.newest(), 9);
        assert_eq!(g.floor(), 0, "no eviction yet");
        assert_eq!(g.evictions(), 0);
    }

    #[test]
    fn windowed_guard_flood_of_unique_seqs_stays_bounded() {
        let mut g = WindowedReplayGuard::new(16);
        // An adversary pumping unique nonces must not grow memory.
        for seq in 0..10_000u64 {
            assert_eq!(g.accept(seq), Ok(()));
            assert!(g.len() <= 16, "window exceeded its capacity at {seq}");
        }
        assert_eq!(g.len(), 16);
        assert_eq!(g.evictions(), 10_000 - 16);
        assert_eq!(g.floor(), 10_000 - 16);
        // Detection still holds within the surviving window…
        for seq in (10_000 - 16)..10_000u64 {
            assert!(g.accept(seq).is_err(), "seq {seq} must read as replayed");
        }
        // …and everything below the floor is conservatively refused.
        assert_eq!(
            g.accept(17),
            Err(ReplayRejected {
                seq: 17,
                floor: 10_000 - 16
            })
        );
    }

    #[test]
    fn windowed_guard_evicts_lowest_first_deterministically() {
        let mut g = WindowedReplayGuard::new(3);
        for seq in [10u64, 30, 20] {
            g.accept(seq).unwrap();
        }
        // Inserting 40 evicts the minimum (10): the floor rises past it.
        g.accept(40).unwrap();
        assert_eq!((g.floor(), g.evictions()), (11, 1));
        // 10 is gone (below floor) but 20 and 30 are still remembered.
        assert!(g.accept(10).is_err());
        assert!(g.accept(20).is_err());
        assert!(g.accept(30).is_err());
        // Next eviction is again the minimum survivor (20).
        g.accept(50).unwrap();
        assert_eq!((g.floor(), g.evictions()), (21, 2));
        // check() is read-only: a fresh sequence stays fresh.
        assert_eq!(g.check(60), Ok(()));
        assert_eq!(g.check(60), Ok(()));
        assert_eq!(g.accept(60), Ok(()));
        assert!(g.check(60).is_err());
    }

    #[test]
    fn windowed_guard_opens_reordered_sealed_frames() {
        let secret = [11u8; 32];
        let frames: Vec<SealedFrame> = (1..=4u32)
            .map(|seq| SealedFrame::seal(&secret, seq, format!("f{seq}").as_bytes()))
            .collect();
        let mut g = WindowedReplayGuard::new(8);
        // Delivery order 2, 1, 4, 3: the strict guard would drop 1 and
        // 3; the windowed guard accepts all four exactly once.
        for i in [1usize, 0, 3, 2] {
            assert!(g.open(&frames[i], &secret).is_ok(), "frame {}", i + 1);
        }
        assert_eq!(
            g.open(&frames[0], &secret),
            Err(WireError::Replayed { seq: 1, last: 4 })
        );
        // A forged frame still cannot advance the window.
        let mut forged = frames[0].as_bytes().to_vec();
        let len = forged.len();
        forged[len - 1] ^= 1;
        let forged = SealedFrame::from_bytes(&forged).unwrap();
        assert_eq!(g.open(&forged, &secret), Err(WireError::BadTag));
        assert_eq!(g.newest(), 4);
    }

    #[test]
    fn end_to_end_wire_exchange() {
        // Node A sends its compressed key; node B likewise; both seal
        // frames under the derived secret; signatures authenticate the
        // key exchange.
        let a = Keypair::generate(b"node a");
        let b = Keypair::generate(b"node b");
        let a_pub = decode_public_key(&encode_public_key(a.public())).expect("a key");
        let b_pub = decode_public_key(&encode_public_key(b.public())).expect("b key");
        let sa = a.shared_secret(&b_pub).expect("peer ok");
        let sb = b.shared_secret(&a_pub).expect("peer ok");
        assert_eq!(sa, sb);
        let frame = SealedFrame::seal(&sa, 1, b"hello from A");
        assert_eq!(frame.open(&sb).expect("tag ok").1, b"hello from A");
    }
}
