//! Wire formats for the WSN protocol layer: compressed public keys,
//! fixed-size signatures, and the sealed telemetry frame of the hybrid
//! cryptosystem (AES-128-CTR + HMAC-SHA256, encrypt-then-MAC).
//!
//! Radio payload is the scarcest resource after energy on a sensor
//! node; compression cuts a public key from 61 to 31 bytes.

use crate::aes128::Aes128;
use crate::ecdsa::Signature;
use crate::hmac::hmac_sha256;
use koblitz::curve::{Affine, DecompressError};
use koblitz::{Int, Scalar};

/// Errors decoding wire data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Point decompression failed.
    BadPoint(DecompressError),
    /// A scalar was zero or ≥ n.
    BadScalar,
    /// The frame authentication tag did not verify.
    BadTag,
    /// The buffer had the wrong length.
    BadLength,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadPoint(e) => write!(f, "bad point encoding: {e}"),
            WireError::BadScalar => f.write_str("scalar out of range"),
            WireError::BadTag => f.write_str("authentication tag mismatch"),
            WireError::BadLength => f.write_str("wrong buffer length"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<DecompressError> for WireError {
    fn from(e: DecompressError) -> WireError {
        WireError::BadPoint(e)
    }
}

/// Encodes a public key compressed (31 bytes).
pub fn encode_public_key(p: &Affine) -> [u8; 31] {
    p.to_compressed_bytes()
}

/// Decodes and validates a compressed public key.
///
/// # Errors
///
/// Rejects malformed encodings and the point at infinity (not a valid
/// public key).
pub fn decode_public_key(bytes: &[u8; 31]) -> Result<Affine, WireError> {
    let p = Affine::from_compressed_bytes(bytes)?;
    if p.is_infinity() {
        return Err(WireError::BadPoint(DecompressError::InvalidTag));
    }
    debug_assert!(p.is_on_curve());
    Ok(p)
}

/// Encodes a signature as r ‖ s, 30 bytes each.
pub fn encode_signature(sig: &Signature) -> [u8; 60] {
    let mut out = [0u8; 60];
    out[..30].copy_from_slice(&sig.r.to_int().to_be_bytes_padded(30));
    out[30..].copy_from_slice(&sig.s.to_int().to_be_bytes_padded(30));
    out
}

/// Decodes a signature, rejecting out-of-range components.
///
/// # Errors
///
/// Returns [`WireError::BadScalar`] for zero or non-canonical values.
pub fn decode_signature(bytes: &[u8; 60]) -> Result<Signature, WireError> {
    let r_int = Int::from_be_bytes(&bytes[..30]);
    let s_int = Int::from_be_bytes(&bytes[30..]);
    let n = koblitz::order();
    if r_int.is_zero() || s_int.is_zero() || r_int >= n || s_int >= n {
        return Err(WireError::BadScalar);
    }
    Ok(Signature {
        r: Scalar::new(r_int),
        s: Scalar::new(s_int),
    })
}

/// A sealed telemetry frame: 4-byte sequence number ‖ ciphertext ‖
/// 16-byte truncated HMAC tag. Key material comes from the ECDH shared
/// secret (first 16 bytes AES, last 16 bytes MAC).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedFrame {
    bytes: Vec<u8>,
}

impl SealedFrame {
    /// Encrypts and authenticates `payload` under the 32-byte session
    /// secret with the given sequence number (also the CTR nonce seed).
    pub fn seal(secret: &[u8; 32], seq: u32, payload: &[u8]) -> SealedFrame {
        let aes = Aes128::new(&secret[..16].try_into().expect("16 bytes"));
        let mut nonce = [0u8; 12];
        nonce[..4].copy_from_slice(&seq.to_be_bytes());
        let mut body = payload.to_vec();
        aes.ctr_apply(&nonce, &mut body);
        let mut bytes = seq.to_be_bytes().to_vec();
        bytes.extend_from_slice(&body);
        let tag = hmac_sha256(&secret[16..], &bytes);
        bytes.extend_from_slice(&tag[..16]);
        SealedFrame { bytes }
    }

    /// The wire bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Parses wire bytes (no authentication yet — that happens in
    /// [`SealedFrame::open`]).
    ///
    /// # Errors
    ///
    /// Rejects frames shorter than header + tag.
    pub fn from_bytes(bytes: &[u8]) -> Result<SealedFrame, WireError> {
        if bytes.len() < 4 + 16 {
            return Err(WireError::BadLength);
        }
        Ok(SealedFrame {
            bytes: bytes.to_vec(),
        })
    }

    /// Verifies and decrypts, returning the sequence number and
    /// payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadTag`] on any authentication failure.
    pub fn open(&self, secret: &[u8; 32]) -> Result<(u32, Vec<u8>), WireError> {
        let split = self.bytes.len() - 16;
        let (body, tag) = self.bytes.split_at(split);
        let want = hmac_sha256(&secret[16..], body);
        // Constant-time-ish comparison (full-width accumulate).
        let mut diff = 0u8;
        for (a, b) in tag.iter().zip(&want[..16]) {
            diff |= a ^ b;
        }
        if diff != 0 {
            return Err(WireError::BadTag);
        }
        let seq = u32::from_be_bytes(body[..4].try_into().expect("4 bytes"));
        let aes = Aes128::new(&secret[..16].try_into().expect("16 bytes"));
        let mut nonce = [0u8; 12];
        nonce[..4].copy_from_slice(&seq.to_be_bytes());
        let mut payload = body[4..].to_vec();
        aes.ctr_apply(&nonce, &mut payload);
        Ok((seq, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecdh::Keypair;
    use crate::ecdsa::SigningKey;

    #[test]
    fn public_key_roundtrip() {
        let kp = Keypair::generate(b"wire test");
        let enc = encode_public_key(kp.public());
        assert_eq!(decode_public_key(&enc), Ok(*kp.public()));
    }

    #[test]
    fn public_key_rejects_infinity_and_garbage() {
        assert!(decode_public_key(&[0u8; 31]).is_err());
        let mut garbage = [0xFFu8; 31];
        garbage[0] = 0x07;
        assert_eq!(
            decode_public_key(&garbage),
            Err(WireError::BadPoint(DecompressError::InvalidTag))
        );
    }

    #[test]
    fn signature_roundtrip() {
        let key = SigningKey::generate(b"wire signer");
        let sig = key.sign(b"frame");
        let enc = encode_signature(&sig);
        assert_eq!(decode_signature(&enc), Ok(sig));
    }

    #[test]
    fn signature_rejects_out_of_range() {
        let zeros = [0u8; 60];
        assert_eq!(decode_signature(&zeros), Err(WireError::BadScalar));
        let mut big = [0xFFu8; 60];
        big[0] = 0xFF;
        assert_eq!(decode_signature(&big), Err(WireError::BadScalar));
    }

    #[test]
    fn sealed_frame_roundtrip() {
        let secret = [42u8; 32];
        let frame = SealedFrame::seal(&secret, 7, b"temp=23.4C");
        let parsed = SealedFrame::from_bytes(frame.as_bytes()).expect("length ok");
        let (seq, payload) = parsed.open(&secret).expect("tag ok");
        assert_eq!(seq, 7);
        assert_eq!(payload, b"temp=23.4C");
    }

    #[test]
    fn sealed_frame_detects_tampering() {
        let secret = [42u8; 32];
        let frame = SealedFrame::seal(&secret, 7, b"door=closed");
        let mut bytes = frame.as_bytes().to_vec();
        bytes[6] ^= 0x01; // flip a ciphertext bit
        let tampered = SealedFrame::from_bytes(&bytes).expect("length ok");
        assert_eq!(tampered.open(&secret), Err(WireError::BadTag));
        // Wrong key fails too.
        let wrong = [43u8; 32];
        assert_eq!(frame.open(&wrong), Err(WireError::BadTag));
    }

    #[test]
    fn sealed_frame_rejects_short_buffers() {
        assert_eq!(
            SealedFrame::from_bytes(&[0u8; 10]),
            Err(WireError::BadLength)
        );
    }

    #[test]
    fn end_to_end_wire_exchange() {
        // Node A sends its compressed key; node B likewise; both seal
        // frames under the derived secret; signatures authenticate the
        // key exchange.
        let a = Keypair::generate(b"node a");
        let b = Keypair::generate(b"node b");
        let a_pub = decode_public_key(&encode_public_key(a.public())).expect("a key");
        let b_pub = decode_public_key(&encode_public_key(b.public())).expect("b key");
        let sa = a.shared_secret(&b_pub).expect("peer ok");
        let sb = b.shared_secret(&a_pub).expect("peer ok");
        assert_eq!(sa, sb);
        let frame = SealedFrame::seal(&sa, 1, b"hello from A");
        assert_eq!(frame.open(&sb).expect("tag ok").1, b"hello from A");
    }
}
