//! Multi-threaded batch protocol scheduler.
//!
//! The throughput path for a busy host (the ROADMAP's gateway serving
//! heavy traffic): shard a batch of independent protocol operations
//! across `std::thread` workers, keep every point multiplication in LD
//! projective coordinates, and pay for the expensive affine conversion
//! — one field inversion per point, the costliest kernel in the
//! paper's Table 7 — just **once per batch** via Montgomery's trick
//! ([`koblitz::projective::batch_to_affine`]).
//!
//! Three amortisations compose here:
//!
//! 1. *threads* — operations are independent, so they shard across
//!    workers (plain `std::thread::scope` + `mpsc`, no dependencies);
//! 2. *batch inversion* — N affine conversions cost 1 inversion +
//!    3(N−1) multiplications instead of N inversions;
//! 3. *table caching* — repeated operations against the same public
//!    key hit the process-wide wTNAF table cache ([`koblitz::cache`])
//!    instead of re-running `TNAF_Precomputation`;
//! 4. *bitslicing* — batches of at least [`gf2m::bitsliced::CROSSOVER`]
//!    points route the affine conversion through the 64-lane bitsliced
//!    field backend inside `batch_to_affine`. Nothing here changes for
//!    that: the pickup is transparent and the outputs are
//!    byte-identical either way (inverses are unique), which the tests
//!    below pin by toggling [`gf2m::bitsliced::set_bitsliced_enabled`].
//!
//! The batch entry points are drop-in equivalent to their scalar
//! counterparts: same signatures, same shared secrets, same error
//! taxonomy, in input order.

use crate::ecdh::{self, EcdhError, Keypair};
use crate::ecdsa::{self, Signature, SigningKey, VerifyError};
use koblitz::projective::batch_to_affine;
use koblitz::{mul, Affine, Int, LdPoint, Scalar};
use std::num::NonZeroUsize;
use std::sync::mpsc;

/// Worker-pool configuration for the batch entry points.
///
/// The explicit-`workers` functions ([`sign_batch`], [`verify_batch`],
/// [`ecdh_batch`]) stay as they are; the `_with` variants take this
/// config and size the pool from the host when no override is given.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchConfig {
    /// Worker-thread override; `None` sizes the pool from
    /// `std::thread::available_parallelism()`.
    pub workers: Option<usize>,
}

impl BatchConfig {
    /// The worker count this config resolves to on this host: the
    /// override if set, otherwise `available_parallelism()` (1 when
    /// the platform cannot report it).
    pub fn effective_workers(&self) -> usize {
        self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
    }
}

/// [`sign_batch`] with the pool sized by a [`BatchConfig`].
pub fn sign_batch_with<M: AsRef<[u8]> + Sync>(
    key: &SigningKey,
    msgs: &[M],
    config: BatchConfig,
) -> Vec<Signature> {
    sign_batch(key, msgs, config.effective_workers())
}

/// [`verify_batch`] with the pool sized by a [`BatchConfig`].
pub fn verify_batch_with(
    jobs: &[VerifyJob<'_>],
    config: BatchConfig,
) -> Vec<Result<(), VerifyError>> {
    verify_batch(jobs, config.effective_workers())
}

/// [`ecdh_batch`] with the pool sized by a [`BatchConfig`].
pub fn ecdh_batch_with(
    kp: &Keypair,
    peers: &[Affine],
    config: BatchConfig,
) -> Vec<Result<[u8; 32], EcdhError>> {
    ecdh_batch(kp, peers, config.effective_workers())
}

/// Runs `f` over every item, sharded across `workers` OS threads
/// (worker w takes items w, w + workers, …). Results come back in
/// input order. `workers` ≤ 1 — or a batch of one — runs inline.
fn run_sharded<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, items.len());
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|s| {
        for w in 0..workers {
            let tx = tx.clone();
            let f = &f;
            s.spawn(move || {
                let mut i = w;
                while i < items.len() {
                    let r = f(i, &items[i]);
                    if tx.send((i, r)).is_err() {
                        return; // collector gone; nothing left to do
                    }
                    i += workers;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("every index is produced exactly once"))
            .collect()
    })
}

/// Outcome of the parallel phase of one batched signature.
enum SignStage {
    /// Nonce accepted on the first try: finish from the projective k·G.
    Fast { k: Scalar, point: LdPoint },
    /// A degenerate candidate (zero nonce — vanishingly rare): redo
    /// this message through the scalar retry loop.
    Retry,
}

/// Signs every message, sharded across `workers` threads, with the
/// affine conversions of all the k·G points batched into a single
/// field inversion.
///
/// Bit-identical to calling [`SigningKey::sign`] per message (same
/// deterministic RFC 6979-style nonces). The rare degenerate
/// candidates (zero nonce / r / s, probability ~2⁻²²⁵) fall back to
/// the scalar retry loop for that message alone.
pub fn sign_batch<M: AsRef<[u8]> + Sync>(
    key: &SigningKey,
    msgs: &[M],
    workers: usize,
) -> Vec<Signature> {
    // Parallel phase: nonce derivation + projective k·G (no inversion).
    let staged = run_sharded(msgs, workers, |_, msg| {
        let k = key.derive_nonce(msg.as_ref(), 0);
        if k.is_zero() {
            return SignStage::Retry;
        }
        let point = mul::mul_g_proj(&k.to_int());
        SignStage::Fast { k, point }
    });
    // Batch boundary: one inversion for every k·G in the batch.
    let points: Vec<LdPoint> = staged
        .iter()
        .map(|s| match s {
            SignStage::Fast { point, .. } => *point,
            SignStage::Retry => LdPoint::INFINITY,
        })
        .collect();
    let affine = batch_to_affine(&points);
    // Sequential finish: cheap scalar arithmetic mod n.
    staged
        .into_iter()
        .zip(affine)
        .zip(msgs)
        .map(|((stage, r_point), msg)| {
            let k = match stage {
                SignStage::Fast { k, .. } => k,
                SignStage::Retry => return key.sign(msg.as_ref()),
            };
            let r = match r_point {
                Affine::Infinity => return key.sign(msg.as_ref()),
                Affine::Point { x, .. } => Scalar::new(Int::from_be_bytes(&x.to_be_bytes())),
            };
            if r.is_zero() {
                return key.sign(msg.as_ref());
            }
            let e = ecdsa::hash_to_scalar(msg.as_ref());
            let k_inv = k.invert().expect("k is non-zero");
            let s = k_inv.mul(&e.add(&r.mul(key.d())));
            if s.is_zero() {
                return key.sign(msg.as_ref());
            }
            Signature { r, s }
        })
        .collect()
}

/// One verification job: public key, message, signature.
#[derive(Debug, Clone, Copy)]
pub struct VerifyJob<'a> {
    /// The signer's public key.
    pub public: &'a Affine,
    /// The signed message.
    pub msg: &'a [u8],
    /// The signature to check.
    pub sig: &'a Signature,
}

/// Verifies every job, sharded across `workers` threads, with the
/// affine conversions of all the u₁·G + u₂·Q points batched into a
/// single field inversion.
///
/// Returns exactly what [`crate::ecdsa::verify`] would return for each
/// job, in input order. Verifications against a recurring public key
/// additionally hit the wTNAF table cache.
pub fn verify_batch(jobs: &[VerifyJob<'_>], workers: usize) -> Vec<Result<(), VerifyError>> {
    // Parallel phase: validation + the double multiplication, kept
    // projective. Err short-circuits before any point arithmetic.
    let staged: Vec<Result<(LdPoint, Scalar), VerifyError>> =
        run_sharded(jobs, workers, |_, job| {
            if job.sig.r.is_zero() || job.sig.s.is_zero() {
                return Err(VerifyError::MalformedSignature);
            }
            if !job.public.is_on_curve() || job.public.is_infinity() {
                return Err(VerifyError::InvalidPublicKey);
            }
            let e = ecdsa::hash_to_scalar(job.msg);
            let s_inv = job.sig.s.invert().expect("s is non-zero");
            let u1 = e.mul(&s_inv);
            let u2 = job.sig.r.mul(&s_inv);
            let point = mul::double_multiply_proj(&u1.to_int(), &u2.to_int(), job.public);
            Ok((point, job.sig.r.clone()))
        });
    // Batch boundary: one inversion across all surviving points (a
    // projective infinity converts to Affine::Infinity without
    // disturbing the batch).
    let points: Vec<LdPoint> = staged
        .iter()
        .map(|s| match s {
            Ok((p, _)) => *p,
            Err(_) => LdPoint::INFINITY,
        })
        .collect();
    let affine = batch_to_affine(&points);
    staged
        .into_iter()
        .zip(affine)
        .map(|(stage, point)| {
            let (_, r) = stage?;
            match point {
                Affine::Infinity => Err(VerifyError::BadSignature),
                Affine::Point { x, .. } => {
                    let v = Scalar::new(Int::from_be_bytes(&x.to_be_bytes()));
                    if v == r {
                        Ok(())
                    } else {
                        Err(VerifyError::BadSignature)
                    }
                }
            }
        })
        .collect()
}

/// Computes the shared secret against every peer, sharded across
/// `workers` threads, with the affine conversions of all the d·Q
/// points batched into a single field inversion.
///
/// Returns exactly what [`Keypair::shared_secret`] would return for
/// each peer, in input order.
pub fn ecdh_batch(
    kp: &Keypair,
    peers: &[Affine],
    workers: usize,
) -> Vec<Result<[u8; 32], EcdhError>> {
    // Parallel phase: peer validation + projective d·Q.
    let staged: Vec<Result<LdPoint, EcdhError>> = run_sharded(peers, workers, |_, peer| {
        if !peer.is_on_curve() || peer.is_infinity() {
            return Err(EcdhError::InvalidPublicKey);
        }
        if !peer.is_in_prime_order_subgroup() {
            return Err(EcdhError::WrongOrderPublicKey);
        }
        Ok(mul::mul_wtnaf_proj(
            peer,
            &kp.secret().to_int(),
            mul::KP_WINDOW,
        ))
    });
    // Batch boundary + KDF.
    let points: Vec<LdPoint> = staged
        .iter()
        .map(|s| match s {
            Ok(p) => *p,
            Err(_) => LdPoint::INFINITY,
        })
        .collect();
    let affine = batch_to_affine(&points);
    staged
        .into_iter()
        .zip(affine)
        .map(|(stage, shared)| {
            stage?;
            match shared {
                Affine::Infinity => Err(EcdhError::DegenerateSharedSecret),
                finite => Ok(ecdh::kdf(&finite)),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecdsa::verify;
    use gf2m::Fe;

    fn msgs(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("telemetry frame {i:04}").into_bytes())
            .collect()
    }

    #[test]
    fn sign_batch_matches_scalar_sign() {
        let key = SigningKey::generate(b"batch signer");
        let msgs = msgs(9);
        for workers in [1usize, 4] {
            let sigs = sign_batch(&key, &msgs, workers);
            assert_eq!(sigs.len(), msgs.len());
            for (m, sig) in msgs.iter().zip(&sigs) {
                assert_eq!(*sig, key.sign(m), "workers={workers}");
            }
        }
    }

    #[test]
    fn bitsliced_toggle_never_changes_batch_outputs() {
        // A batch wide enough to cross the bitsliced dispatch
        // threshold must produce byte-identical signatures and ECDH
        // secrets with the backend on and off — the fast path is a
        // wall-clock change only.
        let n = gf2m::bitsliced::CROSSOVER + 2;
        let key = SigningKey::generate(b"bitsliced toggle signer");
        let kp = Keypair::generate(b"bitsliced toggle ecdh");
        let peers: Vec<Affine> = (0..n)
            .map(|i| *Keypair::generate(format!("toggle peer {i}").as_bytes()).public())
            .collect();
        let msgs = msgs(n);
        gf2m::bitsliced::set_bitsliced_enabled(false);
        let sigs_scalar = sign_batch(&key, &msgs, 2);
        let secrets_scalar = ecdh_batch(&kp, &peers, 2);
        gf2m::bitsliced::set_bitsliced_enabled(true);
        let sigs_fast = sign_batch(&key, &msgs, 2);
        let secrets_fast = ecdh_batch(&kp, &peers, 2);
        assert_eq!(sigs_scalar, sigs_fast);
        assert_eq!(secrets_scalar.len(), secrets_fast.len());
        for (a, b) in secrets_scalar.iter().zip(&secrets_fast) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
    }

    #[test]
    fn empty_batches() {
        let key = SigningKey::generate(b"empty");
        assert!(sign_batch(&key, &Vec::<Vec<u8>>::new(), 4).is_empty());
        assert!(verify_batch(&[], 4).is_empty());
        let kp = Keypair::generate(b"empty kp");
        assert!(ecdh_batch(&kp, &[], 4).is_empty());
    }

    #[test]
    fn verify_batch_matches_scalar_verify() {
        let keys: Vec<SigningKey> = (0..3)
            .map(|i| SigningKey::generate(format!("signer {i}").as_bytes()))
            .collect();
        let msgs = msgs(8);
        // Mix of valid signatures, a tampered message, a malformed
        // signature, and a bad public key.
        let mut sigs: Vec<Signature> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| keys[i % keys.len()].sign(m))
            .collect();
        sigs[5] = Signature {
            r: Scalar::zero(),
            s: sigs[5].s.clone(),
        };
        let infinity = Affine::Infinity;
        let jobs: Vec<VerifyJob> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| VerifyJob {
                public: if i == 6 {
                    &infinity
                } else {
                    keys[i % keys.len()].public()
                },
                msg: if i == 3 { b"tampered" } else { m },
                sig: &sigs[i],
            })
            .collect();
        for workers in [1usize, 3] {
            let got = verify_batch(&jobs, workers);
            for (i, job) in jobs.iter().enumerate() {
                assert_eq!(
                    got[i],
                    verify(job.public, job.msg, job.sig),
                    "workers={workers} job {i}"
                );
            }
            assert_eq!(got[0], Ok(()));
            assert_eq!(got[3], Err(VerifyError::BadSignature));
            assert_eq!(got[5], Err(VerifyError::MalformedSignature));
            assert_eq!(got[6], Err(VerifyError::InvalidPublicKey));
        }
    }

    #[test]
    fn ecdh_batch_matches_scalar_shared_secret() {
        let me = Keypair::generate(b"gateway");
        let mut peers: Vec<Affine> = (0..6)
            .map(|i| *Keypair::generate(format!("peer {i}").as_bytes()).public())
            .collect();
        peers.push(Affine::Infinity); // invalid
        peers.push(Affine::new(Fe::ZERO, Fe::ONE).unwrap()); // 2-torsion
        for workers in [1usize, 4] {
            let got = ecdh_batch(&me, &peers, workers);
            for (i, peer) in peers.iter().enumerate() {
                assert_eq!(got[i], me.shared_secret(peer), "workers={workers} peer {i}");
            }
        }
    }

    #[test]
    fn batch_config_sizes_the_pool_from_the_host_by_default() {
        assert!(BatchConfig::default().effective_workers() >= 1);
        assert_eq!(
            BatchConfig { workers: Some(3) }.effective_workers(),
            3,
            "an explicit override wins"
        );
        let key = SigningKey::generate(b"configured batch");
        let msgs = msgs(5);
        let sigs = sign_batch_with(&key, &msgs, BatchConfig::default());
        for (m, sig) in msgs.iter().zip(&sigs) {
            assert_eq!(*sig, key.sign(m));
        }
    }

    #[test]
    fn oversubscribed_worker_count_is_fine() {
        let key = SigningKey::generate(b"tiny batch");
        let msgs = msgs(2);
        let sigs = sign_batch(&key, &msgs, 64);
        for (m, sig) in msgs.iter().zip(&sigs) {
            assert_eq!(verify(key.public(), m, sig), Ok(()));
        }
    }
}
