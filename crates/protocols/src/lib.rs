//! WSN application layer over the sect233k1 curve — the hybrid
//! cryptosystem the paper's introduction motivates.
//!
//! The paper positions its ECC implementation for wireless sensor
//! networks where *"PKC is used for key exchange, and symmetric
//! cryptography is used for the efficient encryption of data."* This
//! crate supplies that whole stack, from scratch:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (KDF and message digests);
//! * [`hmac`] — HMAC-SHA256 and a deterministic HMAC-DRBG (keys and
//!   RFC 6979-style nonces);
//! * [`aes128`] — FIPS 197 AES-128 with counter mode (telemetry
//!   encryption);
//! * [`ecdh`] — key agreement over sect233k1 (kG for key generation,
//!   kP for the shared secret — exactly the two operations the paper
//!   measures);
//! * [`ecdsa`] — signatures over sect233k1 with deterministic nonces;
//! * [`ecies`] — public-key encryption (ephemeral ECDH + sealed frame),
//!   the base-station-to-node direction;
//! * [`batch`] — a multi-threaded batch scheduler (`sign_batch`,
//!   `verify_batch`, `ecdh_batch`) that shards work across threads and
//!   amortises the affine-conversion inversion over whole batches;
//! * [`wire`] — radio formats: compressed 31-byte public keys, 60-byte
//!   signatures, sealed (encrypt-then-MAC) telemetry frames.
//!
//! # Example
//!
//! ```
//! use protocols::ecdh::Keypair;
//!
//! let node_a = Keypair::generate(b"node a entropy");
//! let node_b = Keypair::generate(b"node b entropy");
//! let key_a = node_a.shared_secret(node_b.public())?;
//! let key_b = node_b.shared_secret(node_a.public())?;
//! assert_eq!(key_a, key_b);
//! # Ok::<(), protocols::ecdh::EcdhError>(())
//! ```

pub mod aes128;
pub mod batch;
pub mod ecdh;
pub mod ecdsa;
pub mod ecies;
pub mod hmac;
pub mod sha256;
pub mod wire;

pub use aes128::Aes128;
pub use ecdh::Keypair;
pub use ecdsa::{Signature, SigningKey};
pub use sha256::Sha256;
