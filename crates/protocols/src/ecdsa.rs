//! ECDSA over sect233k1 with deterministic (RFC 6979-style) nonces.

use crate::hmac::HmacDrbg;
use crate::sha256::Sha256;
use koblitz::curve::Affine;
use koblitz::{mul, Int, Scalar};

/// An ECDSA signature (r, s), both non-zero scalars.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// r = x(k·G) mod n.
    pub r: Scalar,
    /// s = k⁻¹(e + r·d) mod n.
    pub s: Scalar,
}

/// A signing key (wraps the ECDH keypair material).
#[derive(Debug, Clone)]
pub struct SigningKey {
    d: Scalar,
    public: Affine,
}

/// Errors from signature verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyError {
    /// r or s out of range.
    MalformedSignature,
    /// The public key is invalid.
    InvalidPublicKey,
    /// The signature does not match the message.
    BadSignature,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::MalformedSignature => f.write_str("signature components out of range"),
            VerifyError::InvalidPublicKey => f.write_str("public key is not a valid curve point"),
            VerifyError::BadSignature => f.write_str("signature verification failed"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Hash-to-scalar: e = SHA-256(msg) interpreted as an integer mod n.
pub(crate) fn hash_to_scalar(msg: &[u8]) -> Scalar {
    Scalar::new(Int::from_be_bytes(&Sha256::digest(msg)))
}

impl SigningKey {
    /// Derives a signing key from seed material.
    pub fn generate(seed: &[u8]) -> SigningKey {
        let mut drbg = HmacDrbg::new(seed);
        let mut wide = [0u8; 40];
        loop {
            drbg.generate(&mut wide);
            let d = Scalar::from_wide_bytes(&wide);
            if !d.is_zero() {
                let public = mul::mul_g(&d.to_int());
                return SigningKey { d, public };
            }
        }
    }

    /// The verification (public) key.
    pub fn public(&self) -> &Affine {
        &self.public
    }

    /// The secret scalar, for the batch signer.
    pub(crate) fn d(&self) -> &Scalar {
        &self.d
    }

    /// Derives the deterministic signing nonce for `msg` (the nonce
    /// DRBG is keyed with the secret and the message digest, RFC 6979
    /// style). Exposed so the leakage verifier can drive the nonce →
    /// k·G path directly; `retry` selects the first, second, …
    /// candidate from the DRBG stream (signing uses retry 0 unless a
    /// candidate is rejected).
    pub fn derive_nonce(&self, msg: &[u8], retry: u32) -> Scalar {
        let mut seed = Vec::new();
        seed.extend_from_slice(b"ecdsa-nonce");
        seed.extend_from_slice(self.d.to_int().to_hex().as_bytes());
        seed.extend_from_slice(&Sha256::digest(msg));
        let mut drbg = HmacDrbg::new(&seed);
        let mut wide = [0u8; 40];
        for _ in 0..=retry {
            drbg.generate(&mut wide);
        }
        Scalar::from_wide_bytes(&wide)
    }

    /// Signs a message with a deterministic nonce (see
    /// [`SigningKey::derive_nonce`]).
    pub fn sign(&self, msg: &[u8]) -> Signature {
        let e = hash_to_scalar(msg);
        let mut retry = 0;
        loop {
            let k = self.derive_nonce(msg, retry);
            retry += 1;
            if k.is_zero() {
                continue;
            }
            // R = k·G (fixed-point multiplication).
            let point = mul::mul_g(&k.to_int());
            let r = match point {
                Affine::Infinity => continue,
                Affine::Point { x, .. } => Scalar::new(Int::from_be_bytes(&x.to_be_bytes())),
            };
            if r.is_zero() {
                continue;
            }
            let k_inv = k.invert().expect("k is non-zero");
            let s = k_inv.mul(&e.add(&r.mul(&self.d)));
            if s.is_zero() {
                continue;
            }
            return Signature { r, s };
        }
    }

    /// Signs, then verifies the fresh signature before releasing it —
    /// the standard countermeasure against fault attacks on the
    /// signing path (a glitched nonce or scalar multiplication would
    /// otherwise emit an invalid signature that can leak the key).
    ///
    /// # Errors
    ///
    /// Returns the verification failure when the self-check does not
    /// pass; the signature is withheld in that case.
    pub fn sign_checked(&self, msg: &[u8]) -> Result<Signature, VerifyError> {
        let sig = self.sign(msg);
        verify(&self.public, msg, &sig)?;
        Ok(sig)
    }
}

/// Verifies `sig` over `msg` for public key `q`.
///
/// # Errors
///
/// Returns the specific failure class (malformed, bad key, mismatch).
pub fn verify(q: &Affine, msg: &[u8], sig: &Signature) -> Result<(), VerifyError> {
    if sig.r.is_zero() || sig.s.is_zero() {
        return Err(VerifyError::MalformedSignature);
    }
    if !q.is_on_curve() || q.is_infinity() {
        return Err(VerifyError::InvalidPublicKey);
    }
    let e = hash_to_scalar(msg);
    let s_inv = sig.s.invert().expect("s is non-zero");
    let u1 = e.mul(&s_inv);
    let u2 = sig.r.mul(&s_inv);
    // u1·G + u2·Q by interleaved double multiplication (one shared
    // Frobenius pass — the Shamir–Strauss trick in τ-adic form).
    let point = mul::double_multiply(&u1.to_int(), &u2.to_int(), q);
    match point {
        Affine::Infinity => Err(VerifyError::BadSignature),
        Affine::Point { x, .. } => {
            let v = Scalar::new(Int::from_be_bytes(&x.to_be_bytes()));
            if v == sig.r {
                Ok(())
            } else {
                Err(VerifyError::BadSignature)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let key = SigningKey::generate(b"node-7 identity");
        let msg = b"telemetry frame 0421";
        let sig = key.sign(msg);
        assert_eq!(verify(key.public(), msg, &sig), Ok(()));
    }

    #[test]
    fn signature_is_deterministic() {
        let key = SigningKey::generate(b"node-7 identity");
        assert_eq!(key.sign(b"m"), key.sign(b"m"));
        assert_ne!(key.sign(b"m"), key.sign(b"m'"));
    }

    #[test]
    fn tampered_message_fails() {
        let key = SigningKey::generate(b"signer");
        let sig = key.sign(b"original message");
        assert_eq!(
            verify(key.public(), b"tampered message", &sig),
            Err(VerifyError::BadSignature)
        );
    }

    #[test]
    fn wrong_key_fails() {
        let key = SigningKey::generate(b"signer");
        let other = SigningKey::generate(b"someone else");
        let sig = key.sign(b"message");
        assert_eq!(
            verify(other.public(), b"message", &sig),
            Err(VerifyError::BadSignature)
        );
    }

    #[test]
    fn malformed_signatures_rejected() {
        let key = SigningKey::generate(b"signer");
        let sig = key.sign(b"message");
        let zero_r = Signature {
            r: Scalar::zero(),
            s: sig.s.clone(),
        };
        assert_eq!(
            verify(key.public(), b"message", &zero_r),
            Err(VerifyError::MalformedSignature)
        );
        let zero_s = Signature {
            r: sig.r.clone(),
            s: Scalar::zero(),
        };
        assert_eq!(
            verify(key.public(), b"message", &zero_s),
            Err(VerifyError::MalformedSignature)
        );
    }

    #[test]
    fn swapped_components_fail() {
        let key = SigningKey::generate(b"signer");
        let sig = key.sign(b"message");
        let swapped = Signature {
            r: sig.s.clone(),
            s: sig.r.clone(),
        };
        assert!(verify(key.public(), b"message", &swapped).is_err());
    }

    #[test]
    fn sign_checked_releases_only_verified_signatures() {
        let key = SigningKey::generate(b"node-7 identity");
        let msg = b"telemetry frame 0422";
        let sig = key.sign_checked(msg).expect("self-check passes");
        assert_eq!(sig, key.sign(msg), "the checked path signs identically");
        assert_eq!(verify(key.public(), msg, &sig), Ok(()));
    }

    #[test]
    fn infinity_public_key_rejected() {
        let key = SigningKey::generate(b"signer");
        let sig = key.sign(b"message");
        assert_eq!(
            verify(&Affine::Infinity, b"message", &sig),
            Err(VerifyError::InvalidPublicKey)
        );
    }
}
