//! ECIES-style public-key encryption over sect233k1: an ephemeral ECDH
//! (one kG + one kP for the sender, one kP for the receiver) deriving
//! keys for the sealed-frame format of [`crate::wire`].
//!
//! This is the "send a message to a node whose public key you know"
//! primitive a WSN base station uses for configuration updates — the
//! third member of the hybrid-cryptosystem family the paper's
//! introduction motivates (alongside key agreement and signatures).

use crate::ecdh::{EcdhError, Keypair};
use crate::wire::{decode_public_key, encode_public_key, SealedFrame, WireError};
use koblitz::curve::Affine;

/// An ECIES ciphertext: the ephemeral public key (compressed) plus the
/// sealed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ciphertext {
    /// Compressed ephemeral public key R = r·G.
    pub ephemeral: [u8; 31],
    /// Sealed frame under the derived secret.
    pub sealed: Vec<u8>,
}

/// Errors from ECIES operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EciesError {
    /// Key agreement failed (bad public key).
    Agreement(EcdhError),
    /// Wire decoding or authentication failed.
    Wire(WireError),
}

impl std::fmt::Display for EciesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EciesError::Agreement(e) => write!(f, "key agreement failed: {e}"),
            EciesError::Wire(e) => write!(f, "ciphertext malformed: {e}"),
        }
    }
}

impl std::error::Error for EciesError {}

impl From<EcdhError> for EciesError {
    fn from(e: EcdhError) -> Self {
        EciesError::Agreement(e)
    }
}

impl From<WireError> for EciesError {
    fn from(e: WireError) -> Self {
        EciesError::Wire(e)
    }
}

/// Encrypts `msg` to `recipient`; `seed` feeds the deterministic
/// ephemeral key (a deployed sender mixes in fresh entropy).
///
/// # Errors
///
/// Fails only for an invalid recipient key.
pub fn encrypt(recipient: &Affine, msg: &[u8], seed: &[u8]) -> Result<Ciphertext, EciesError> {
    let mut material = b"ecies-ephemeral:".to_vec();
    material.extend_from_slice(seed);
    let ephemeral = Keypair::generate(&material);
    let secret = ephemeral.shared_secret(recipient)?;
    let sealed = SealedFrame::seal(&secret, 0, msg);
    Ok(Ciphertext {
        ephemeral: encode_public_key(ephemeral.public()),
        sealed: sealed.as_bytes().to_vec(),
    })
}

/// Decrypts a ciphertext with the recipient's key pair.
///
/// # Errors
///
/// Rejects malformed ephemeral keys and any authentication failure.
pub fn decrypt(keypair: &Keypair, ct: &Ciphertext) -> Result<Vec<u8>, EciesError> {
    let ephemeral = decode_public_key(&ct.ephemeral)?;
    let secret = keypair.shared_secret(&ephemeral)?;
    let frame = SealedFrame::from_bytes(&ct.sealed)?;
    let (_, payload) = frame.open(&secret)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let node = Keypair::generate(b"node-9");
        let msg = b"config: report_interval=300s";
        let ct = encrypt(node.public(), msg, b"entropy-1").expect("valid key");
        assert_eq!(decrypt(&node, &ct).expect("authentic"), msg);
    }

    #[test]
    fn different_seeds_give_different_ciphertexts() {
        let node = Keypair::generate(b"node-9");
        let a = encrypt(node.public(), b"same msg", b"seed-a").expect("ok");
        let b = encrypt(node.public(), b"same msg", b"seed-b").expect("ok");
        assert_ne!(a, b);
        assert_eq!(decrypt(&node, &a).expect("ok"), b"same msg");
        assert_eq!(decrypt(&node, &b).expect("ok"), b"same msg");
    }

    #[test]
    fn wrong_recipient_fails() {
        let node = Keypair::generate(b"node-9");
        let other = Keypair::generate(b"node-10");
        let ct = encrypt(node.public(), b"secret", b"s").expect("ok");
        assert!(matches!(
            decrypt(&other, &ct),
            Err(EciesError::Wire(WireError::BadTag))
        ));
    }

    #[test]
    fn tampered_ciphertext_fails() {
        let node = Keypair::generate(b"node-9");
        let mut ct = encrypt(node.public(), b"secret", b"s").expect("ok");
        let last = ct.sealed.len() - 1;
        ct.sealed[last] ^= 1;
        assert!(decrypt(&node, &ct).is_err());
        // Corrupting the ephemeral key also fails (decompression or tag).
        let mut ct2 = encrypt(node.public(), b"secret", b"s").expect("ok");
        ct2.ephemeral[0] = 0x07;
        assert!(decrypt(&node, &ct2).is_err());
    }

    #[test]
    fn encrypting_to_infinity_is_rejected() {
        assert!(matches!(
            encrypt(&Affine::Infinity, b"x", b"s"),
            Err(EciesError::Agreement(EcdhError::InvalidPublicKey))
        ));
    }
}
