//! Adversarial key churn against the process-wide wTNAF table cache.
//!
//! The cache exists because protocol traffic is skewed towards
//! recurring base points; an adversary inverts that assumption by
//! making every request a never-seen-before key. This test lives in
//! its own integration binary so the global cache (and its counters)
//! belongs to this process alone — the unit tests inside the crate
//! share it with every `kp` call and can only assert relative
//! movement.

use koblitz::cache::{self, CAPACITY};
use koblitz::mul::KP_WINDOW;
use koblitz::{generator, Int};
use std::sync::{Mutex, MutexGuard};

// The two tests in this binary still share the one global cache;
// serialize them so each owns the counters it resets.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn unique_key_flood_degrades_hit_rate_without_growing() {
    const FLOOD: i64 = 4 * CAPACITY as i64;
    let _guard = serial();
    cache::reset();
    for k in 0..FLOOD {
        let p = generator().mul_binary(&Int::from(7_000_000 + k));
        let t = cache::table_for(&p, KP_WINDOW);
        assert_eq!(t.len(), 4, "tables stay well-formed under churn");
    }
    let s = cache::stats();
    assert!(s.entries <= CAPACITY, "flood must not grow the cache");
    assert_eq!(s.misses, FLOOD as u64, "unique keys never hit");
    assert_eq!(s.hits, 0, "hit rate degrades to zero under churn");
    assert_eq!(s.hit_rate(), 0.0);
    assert_eq!(
        s.evictions,
        FLOOD as u64 - CAPACITY as u64,
        "every miss beyond the resident capacity displaces exactly one table"
    );

    // The cache still works after the flood: recurring keys hit again.
    let survivors: Vec<_> = (0..4)
        .map(|k| generator().mul_binary(&Int::from(8_000_000 + k)))
        .collect();
    let first: Vec<_> = survivors
        .iter()
        .map(|p| cache::table_for(p, KP_WINDOW))
        .collect();
    let second: Vec<_> = survivors
        .iter()
        .map(|p| cache::table_for(p, KP_WINDOW))
        .collect();
    assert_eq!(first, second, "post-flood tables round-trip");
    let s2 = cache::stats();
    assert_eq!(s2.hits, 4, "recurring keys hit once resident");
    assert!(s2.hit_rate() > 0.0);
}

#[test]
fn strict_lru_evicts_least_recently_used_under_churn() {
    let _guard = serial();
    cache::reset();
    let points: Vec<_> = (0..CAPACITY as i64)
        .map(|k| generator().mul_binary(&Int::from(9_000_000 + k)))
        .collect();
    for p in &points {
        let _ = cache::table_for(p, KP_WINDOW);
    }
    // Touch everything except point 0, then insert a new key: the
    // untouched point 0 must be the victim.
    for p in &points[1..] {
        let _ = cache::table_for(p, KP_WINDOW);
    }
    let fresh = generator().mul_binary(&Int::from(9_900_000i64));
    let _ = cache::table_for(&fresh, KP_WINDOW);
    let before = cache::stats();
    let _ = cache::table_for(&points[0], KP_WINDOW); // evicted: recompute
    let _ = cache::table_for(&points[5], KP_WINDOW); // resident: hit
    let after = cache::stats();
    assert_eq!(after.misses - before.misses, 1, "victim was point 0 only");
    assert_eq!(after.hits - before.hits, 1, "survivors still resident");
}
