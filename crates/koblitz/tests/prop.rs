//! Randomised-input tests over the koblitz internals: the ℤ[τ]
//! machinery with arbitrary (including negative) inputs, bignum laws,
//! and projective versus affine group-law agreement.
//!
//! Inputs are drawn from the in-tree deterministic PRNG (fixed seeds,
//! reproducible offline) — plain `#[test]` loops standing in for the
//! former proptest strategies.

use koblitz::curve::{generator, Affine};
use koblitz::projective::LdPoint;
use koblitz::{tnaf, Int};
use prng::SplitMix64;

/// An arbitrary signed integer of 1..=`limbs` random limbs.
fn int(rng: &mut SplitMix64, limbs: u64) -> Int {
    let n = rng.below(limbs) + 1;
    let mag: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
    let neg = rng.below(2) == 1;
    Int::from_limbs(neg, mag)
}

/// A signed value in `-bound..bound`.
fn small(rng: &mut SplitMix64, bound: i64) -> Int {
    Int::from(rng.below(2 * bound as u64) as i64 - bound)
}

fn apply_zt(r0: &Int, r1: &Int, p: &Affine) -> Affine {
    let part = |r: &Int, q: &Affine| {
        let m = q.mul_binary(&r.abs());
        if r.is_negative() {
            m.negated()
        } else {
            m
        }
    };
    part(r0, p).add(&part(r1, &p.frobenius()))
}

#[test]
fn int_ring_laws() {
    let mut rng = SplitMix64::new(0x0b17_0001);
    for case in 0..64 {
        let (a, b, c) = (int(&mut rng, 6), int(&mut rng, 6), int(&mut rng, 6));
        assert_eq!(&a + &b, &b + &a, "case {case}");
        assert_eq!(&a * &b, &b * &a, "case {case}");
        assert_eq!(&(&a + &b) + &c, &a + &(&b + &c), "case {case}");
        assert_eq!(&(&a * &b) * &c, &a * &(&b * &c), "case {case}");
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c), "case {case}");
        assert_eq!(&a - &a, Int::zero(), "case {case}");
    }
}

#[test]
fn int_divrem_round_bounds() {
    let mut rng = SplitMix64::new(0x0b17_0002);
    let mut cases = 0;
    while cases < 64 {
        let a = int(&mut rng, 8);
        let d = int(&mut rng, 5);
        if d.is_zero() {
            continue;
        }
        cases += 1;
        let (q, r) = a.divrem_round(&d);
        assert_eq!(&(&q * &d) + &r, a);
        // |r| ≤ |d|/2 (with the half-open convention at the boundary).
        let two_r = r.abs().shl(1);
        let bound = &d.abs() + &Int::one();
        assert!(two_r <= bound, "2|r| = {two_r} vs |d|+1 = {bound}");
    }
}

#[test]
fn zt_norm_is_multiplicative() {
    let mut rng = SplitMix64::new(0x0b17_0003);
    for case in 0..64 {
        let (a0, a1) = (small(&mut rng, 1000), small(&mut rng, 1000));
        let (b0, b1) = (small(&mut rng, 1000), small(&mut rng, 1000));
        let (c0, c1) = tnaf::zt_mul(&a0, &a1, &b0, &b1);
        assert_eq!(
            tnaf::zt_norm(&c0, &c1),
            &tnaf::zt_norm(&a0, &a1) * &tnaf::zt_norm(&b0, &b1),
            "case {case}"
        );
    }
}

#[test]
fn wtnaf_digit_constraints_hold_for_arbitrary_zt_elements() {
    let mut rng = SplitMix64::new(0x0b17_0004);
    for case in 0..64 {
        let (r0, r1) = (int(&mut rng, 3), int(&mut rng, 3));
        let w = 3 + rng.below(4) as u32; // 3..=6
        let digits = tnaf::wtnaf(r0, r1, w);
        let bound = 1i16 << (w - 1);
        for &d in &digits {
            assert!(
                d == 0 || (d % 2 != 0 && (d as i16).abs() < bound),
                "case {case}"
            );
        }
        let mut last: Option<usize> = None;
        for (i, &d) in digits.iter().enumerate() {
            if d != 0 {
                if let Some(prev) = last {
                    assert!(i - prev >= w as usize, "spacing violation at {i}");
                }
                last = Some(i);
            }
        }
    }
}

// Group-law cases run field inversions; keep the case count small.

#[test]
fn tnaf_of_small_zt_elements_evaluates_correctly() {
    let mut rng = SplitMix64::new(0x0b17_0005);
    let g = generator();
    for case in 0..10 {
        let (r0, r1) = (small(&mut rng, 2000), small(&mut rng, 2000));
        let want = apply_zt(&r0, &r1, &g);
        let digits = tnaf::tnaf(r0, r1);
        let mut acc = Affine::Infinity;
        for &d in digits.iter().rev() {
            acc = acc.frobenius();
            if d == 1 {
                acc = acc.add(&g);
            } else if d == -1 {
                acc = acc.add(&g.negated());
            }
        }
        assert_eq!(acc, want, "case {case}");
    }
}

#[test]
fn projective_chain_matches_affine_chain() {
    // A random walk of doublings and additions executed in both
    // coordinate systems must land on the same point.
    let mut rng = SplitMix64::new(0x0b17_0006);
    let g = generator();
    let q = g.mul_binary(&Int::from(3i64));
    for case in 0..10 {
        let len = 1 + rng.below(11) as usize;
        let mut ld = LdPoint::from_affine(&g);
        let mut affine = g;
        for step in 0..len {
            if rng.below(2) == 1 {
                ld = ld.double();
                affine = affine.double();
            } else {
                ld = ld.add_affine(&q);
                affine = affine.add(&q);
            }
            assert_eq!(ld.to_affine(), affine, "case {case} step {step}");
        }
    }
}

#[test]
fn partmod_output_is_always_short() {
    let mut rng = SplitMix64::new(0x0b17_0007);
    for case in 0..10 {
        let n = 1 + rng.below(7);
        let limbs: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
        let k = Int::from_limbs(false, limbs).mod_positive(&koblitz::order());
        let (r0, r1) = tnaf::partmod(&k);
        assert!(r0.bits() <= 121, "r0 bits {} (case {case})", r0.bits());
        assert!(r1.bits() <= 121, "r1 bits {} (case {case})", r1.bits());
        let digits = tnaf::tnaf(r0, r1);
        assert!(
            digits.len() <= koblitz::curve_m() + 6,
            "length {} (case {case})",
            digits.len()
        );
    }
}
