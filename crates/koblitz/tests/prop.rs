//! Property tests over the koblitz internals: the ℤ[τ] machinery with
//! arbitrary (including negative) inputs, bignum laws, and projective
//! versus affine group-law agreement.

use koblitz::curve::{generator, Affine};
use koblitz::projective::LdPoint;
use koblitz::{tnaf, Int};
use proptest::prelude::*;

fn arb_int(limbs: usize) -> impl Strategy<Value = Int> {
    (proptest::collection::vec(any::<u32>(), 1..=limbs), any::<bool>())
        .prop_map(|(mag, neg)| Int::from_limbs(neg, mag))
}

fn apply_zt(r0: &Int, r1: &Int, p: &Affine) -> Affine {
    let part = |r: &Int, q: &Affine| {
        let m = q.mul_binary(&r.abs());
        if r.is_negative() {
            m.negated()
        } else {
            m
        }
    };
    part(r0, p).add(&part(r1, &p.frobenius()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn int_ring_laws(a in arb_int(6), b in arb_int(6), c in arb_int(6)) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a - &a, Int::zero());
    }

    #[test]
    fn int_divrem_round_bounds(a in arb_int(8), d in arb_int(5)) {
        prop_assume!(!d.is_zero());
        let (q, r) = a.divrem_round(&d);
        prop_assert_eq!(&(&q * &d) + &r, a);
        // |r| ≤ |d|/2 (with the half-open convention at the boundary).
        let two_r = r.abs().shl(1);
        let bound = &d.abs() + &Int::one();
        prop_assert!(two_r <= bound, "2|r| = {} vs |d|+1 = {}", two_r, bound);
    }

    #[test]
    fn zt_norm_is_multiplicative(a0 in -1000i64..1000, a1 in -1000i64..1000,
                                 b0 in -1000i64..1000, b1 in -1000i64..1000) {
        let (a0, a1) = (Int::from(a0), Int::from(a1));
        let (b0, b1) = (Int::from(b0), Int::from(b1));
        let (c0, c1) = tnaf::zt_mul(&a0, &a1, &b0, &b1);
        prop_assert_eq!(
            tnaf::zt_norm(&c0, &c1),
            &tnaf::zt_norm(&a0, &a1) * &tnaf::zt_norm(&b0, &b1)
        );
    }

    #[test]
    fn wtnaf_digit_constraints_hold_for_arbitrary_zt_elements(
        r0 in arb_int(3), r1 in arb_int(3), w in 3u32..=6
    ) {
        let digits = tnaf::wtnaf(r0, r1, w);
        let bound = 1i16 << (w - 1);
        for &d in &digits {
            prop_assert!(d == 0 || (d % 2 != 0 && (d as i16).abs() < bound));
        }
        let mut last: Option<usize> = None;
        for (i, &d) in digits.iter().enumerate() {
            if d != 0 {
                if let Some(prev) = last {
                    prop_assert!(i - prev >= w as usize, "spacing violation at {i}");
                }
                last = Some(i);
            }
        }
    }
}

proptest! {
    // Group-law cases run field inversions; keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn tnaf_of_small_zt_elements_evaluates_correctly(
        r0 in -2000i64..2000, r1 in -2000i64..2000
    ) {
        let g = generator();
        let (r0, r1) = (Int::from(r0), Int::from(r1));
        let want = apply_zt(&r0, &r1, &g);
        let digits = tnaf::tnaf(r0, r1);
        let mut acc = Affine::Infinity;
        for &d in digits.iter().rev() {
            acc = acc.frobenius();
            if d == 1 {
                acc = acc.add(&g);
            } else if d == -1 {
                acc = acc.add(&g.negated());
            }
        }
        prop_assert_eq!(acc, want);
    }

    #[test]
    fn projective_chain_matches_affine_chain(ops in proptest::collection::vec(any::<bool>(), 1..12)) {
        // A random walk of doublings and additions executed in both
        // coordinate systems must land on the same point.
        let g = generator();
        let q = g.mul_binary(&Int::from(3i64));
        let mut ld = LdPoint::from_affine(&g);
        let mut affine = g;
        for &double in &ops {
            if double {
                ld = ld.double();
                affine = affine.double();
            } else {
                ld = ld.add_affine(&q);
                affine = affine.add(&q);
            }
            prop_assert_eq!(ld.to_affine(), affine);
        }
    }

    #[test]
    fn partmod_output_is_always_short(k_limbs in proptest::collection::vec(any::<u32>(), 1..8)) {
        let k = Int::from_limbs(false, k_limbs).mod_positive(&koblitz::order());
        let (r0, r1) = tnaf::partmod(&k);
        prop_assert!(r0.bits() <= 121, "r0 bits {}", r0.bits());
        prop_assert!(r1.bits() <= 121, "r1 bits {}", r1.bits());
        let digits = tnaf::tnaf(r0, r1);
        prop_assert!(digits.len() <= koblitz::curve_m() + 6, "length {}", digits.len());
    }
}
