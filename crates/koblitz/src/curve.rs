//! The sect233k1 Koblitz curve and its affine point arithmetic.
//!
//! E: y² + xy = x³ + 1 over F₂²³³ (a = 0, b = 1), the NIST K-233 curve
//! the paper selects in §3.1. Affine arithmetic costs a field inversion
//! per operation and serves as the *reference group law* against which
//! the projective (López-Dahab) formulas, the TNAF machinery and the
//! Montgomery ladder are all validated.

use crate::int::Int;
use gf2m::Fe;
use std::fmt;

/// The curve coefficient b = 1 (a is 0 and is omitted from formulas).
pub const B: Fe = Fe::ONE;

/// μ = (−1)^(1−a) = −1 for a = 0: the trace of the Frobenius
/// endomorphism, τ² + 2 = μτ.
pub const MU: i64 = -1;

/// Cofactor h = #E / n = 4.
pub const COFACTOR: u32 = 4;

/// x-coordinate of the SEC 2 base point G.
pub fn gen_x() -> Fe {
    Fe::from_hex("17232BA853A7E731AF129F22FF4149563A419C26BF50A4C9D6EEFAD6126")
        .expect("constant is valid")
}

/// y-coordinate of the SEC 2 base point G.
pub fn gen_y() -> Fe {
    Fe::from_hex("1DB537DECE819B7F70F555A67C427A8CD9BF18AEB9B56E0C11056FAE6A3")
        .expect("constant is valid")
}

/// The prime group order n (232 bits).
pub fn order() -> Int {
    Int::from_hex("8000000000000000000000000000069D5BB915BCD46EFB1AD5F173ABDF")
        .expect("constant is valid")
}

/// The base point G.
pub fn generator() -> Affine {
    Affine::new(gen_x(), gen_y()).expect("G is on the curve")
}

/// An affine point on sect233k1 (or the point at infinity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Affine {
    /// The identity element.
    Infinity,
    /// A finite point (x, y) satisfying the curve equation.
    Point {
        /// x-coordinate.
        x: Fe,
        /// y-coordinate.
        y: Fe,
    },
}

/// Error constructing a point from coordinates not on the curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotOnCurveError;

impl fmt::Display for NotOnCurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("coordinates do not satisfy the curve equation")
    }
}

impl std::error::Error for NotOnCurveError {}

impl Affine {
    /// Constructs a validated point.
    ///
    /// # Errors
    ///
    /// Returns [`NotOnCurveError`] if y² + xy ≠ x³ + 1.
    pub fn new(x: Fe, y: Fe) -> Result<Affine, NotOnCurveError> {
        let p = Affine::Point { x, y };
        if p.is_on_curve() {
            Ok(p)
        } else {
            Err(NotOnCurveError)
        }
    }

    /// Whether the point satisfies the curve equation (infinity counts).
    pub fn is_on_curve(&self) -> bool {
        match *self {
            Affine::Infinity => true,
            Affine::Point { x, y } => {
                // y² + xy = x³ + 1
                y.square() + x * y == x.square() * x + B
            }
        }
    }

    /// Whether this is the identity.
    pub fn is_infinity(&self) -> bool {
        matches!(self, Affine::Infinity)
    }

    /// The x-coordinate.
    ///
    /// # Panics
    ///
    /// Panics for the point at infinity.
    pub fn x(&self) -> Fe {
        match *self {
            Affine::Point { x, .. } => x,
            Affine::Infinity => panic!("infinity has no x-coordinate"),
        }
    }

    /// The y-coordinate.
    ///
    /// # Panics
    ///
    /// Panics for the point at infinity.
    pub fn y(&self) -> Fe {
        match *self {
            Affine::Point { y, .. } => y,
            Affine::Infinity => panic!("infinity has no y-coordinate"),
        }
    }

    /// Point negation: −(x, y) = (x, x + y).
    #[must_use]
    pub fn negated(&self) -> Affine {
        match *self {
            Affine::Infinity => Affine::Infinity,
            Affine::Point { x, y } => Affine::Point { x, y: x + y },
        }
    }

    /// The Frobenius endomorphism τ(x, y) = (x², y²). On a Koblitz curve
    /// τ satisfies τ² + 2 = μτ, and τ(P) costs two squarings.
    #[must_use]
    pub fn frobenius(&self) -> Affine {
        match *self {
            Affine::Infinity => Affine::Infinity,
            Affine::Point { x, y } => Affine::Point {
                x: x.square(),
                y: y.square(),
            },
        }
    }

    /// Group addition (handles all cases).
    #[must_use]
    pub fn add(&self, other: &Affine) -> Affine {
        match (*self, *other) {
            (Affine::Infinity, q) => q,
            (p, Affine::Infinity) => p,
            (Affine::Point { x: x1, y: y1 }, Affine::Point { x: x2, y: y2 }) => {
                if x1 == x2 {
                    if y1 == y2 {
                        return self.double();
                    }
                    // P + (−P): y2 = x1 + y1.
                    debug_assert_eq!(y2, x1 + y1);
                    return Affine::Infinity;
                }
                let lambda = (y1 + y2) * (x1 + x2).invert().expect("x1 != x2");
                let x3 = lambda.square() + lambda + x1 + x2; // + a, a = 0
                let y3 = lambda * (x1 + x3) + x3 + y1;
                Affine::Point { x: x3, y: y3 }
            }
        }
    }

    /// Point doubling.
    #[must_use]
    pub fn double(&self) -> Affine {
        match *self {
            Affine::Infinity => Affine::Infinity,
            Affine::Point { x, y } => {
                if x.is_zero() {
                    // 2-torsion: the tangent is vertical.
                    return Affine::Infinity;
                }
                let lambda = x + y * x.invert().expect("x != 0");
                let x3 = lambda.square() + lambda; // + a
                let y3 = x.square() + (lambda + Fe::ONE) * x3;
                Affine::Point { x: x3, y: y3 }
            }
        }
    }

    /// Point halving (Knudsen/Schroeppel): returns a `Q` with `2Q = self`,
    /// or `None` if the point is not a double (`Tr(x) ≠ Tr(a) = 0`).
    ///
    /// Halving replaces the doubling's field inversion with one
    /// half-trace, one square root and one multiplication, which is why
    /// halve-and-add competes with double-and-add on binary curves.
    ///
    /// The half is two-valued — `Q` and `Q + (0,1)` both double back to
    /// `self` — and on this curve (cofactor 4, an order-4 point exists)
    /// *no local trace test separates them*: picking the wrong one makes
    /// the grandchild generation non-halvable. This function prefers a
    /// branch whose result is itself halvable when one exists; iterating
    /// callers handle the occasional dead end by adding the 2-torsion
    /// point `(0, 1)` and halving again (see the tests).
    pub fn halve(&self) -> Option<Affine> {
        match *self {
            Affine::Infinity => Some(Affine::Infinity),
            Affine::Point { x, y } => {
                // Solve λ² + λ = x (a = 0); solvable iff Tr(x) = 0.
                if x.trace() != 0 {
                    return None;
                }
                let lambda = x.half_trace();
                // u² = y + x·λ + x, v = u·λ + u².
                let usq = y + x * lambda + x;
                let u = usq.sqrt();
                // Two halves exist (λ and λ+1, differing by the
                // 2-torsion point); pick the one that is itself
                // halvable (Tr(u) = 0) so halving can be iterated —
                // that branch is the one inside the doubled subgroup.
                let (lambda, usq, u) = if u.trace() == 0 {
                    (lambda, usq, u)
                } else {
                    let usq2 = usq + x;
                    (lambda + Fe::ONE, usq2, usq2.sqrt())
                };
                let v = u * lambda + usq;
                let q = Affine::Point { x: u, y: v };
                debug_assert!(q.is_on_curve());
                Some(q)
            }
        }
    }

    /// Point halving that stays in the halvable chain: of the two halves
    /// (`Q` and `Q + (0,1)`), returns the one whose own half exists —
    /// one level of look-ahead, since on this cofactor-4 curve the twins
    /// share every local trace invariant (Tr is Frobenius-invariant, so
    /// `Tr(u)` and `Tr(u + √x)` are equal whenever `Tr(x) = 0`).
    ///
    /// For points of odd order this returns the subgroup half every
    /// time, so it can be iterated indefinitely (halve-and-add).
    pub fn halve_in_subgroup(&self) -> Option<Affine> {
        let c1 = self.halve()?;
        if c1.is_infinity() {
            return Some(c1);
        }
        let child_exists = |c: &Affine| match *c {
            Affine::Infinity => true,
            Affine::Point { x, y } => {
                if x.trace() != 0 {
                    return false;
                }
                let lambda = x.half_trace();
                let u = (y + x * lambda + x).sqrt();
                u.trace() == 0
            }
        };
        if child_exists(&c1) {
            return Some(c1);
        }
        let torsion = Affine::Point {
            x: Fe::ZERO,
            y: Fe::ONE,
        };
        let c2 = c1.add(&torsion);
        if child_exists(&c2) {
            Some(c2)
        } else {
            None
        }
    }

    /// Binary double-and-add scalar multiplication — the slow reference
    /// that everything faster is tested against. `k` may be any
    /// non-negative integer.
    ///
    /// # Panics
    ///
    /// Panics if `k` is negative.
    #[must_use]
    pub fn mul_binary(&self, k: &Int) -> Affine {
        assert!(!k.is_negative(), "scalar must be non-negative");
        let mut acc = Affine::Infinity;
        for i in (0..k.bits()).rev() {
            acc = acc.double();
            if (k.limbs()[i / 32] >> (i % 32)) & 1 == 1 {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Whether the point is a valid public key: finite, on the curve
    /// and of order n (annihilated by the group order). sect233k1 has
    /// cofactor 4, so an attacker can offer on-curve points of order
    /// 2 or 4 — or composite-order points like G + (0, 1) — to mount
    /// small-subgroup probes; this is the full-validation gate that
    /// rejects them.
    ///
    /// Deliberately built on [`Affine::mul_binary`]: the τ-adic wNAF
    /// path assumes its input already lies in the order-n subgroup, so
    /// validating untrusted points with it would be circular.
    pub fn is_in_prime_order_subgroup(&self) -> bool {
        match self {
            Affine::Infinity => false,
            _ => self.is_on_curve() && self.mul_binary(&order()).is_infinity(),
        }
    }
}

/// Error decoding a compressed point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompressError {
    /// The leading tag byte was not 0x00/0x02/0x03.
    InvalidTag,
    /// No point with this x-coordinate exists on the curve.
    NotOnCurve,
}

impl fmt::Display for DecompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompressError::InvalidTag => f.write_str("invalid compression tag"),
            DecompressError::NotOnCurve => f.write_str("x-coordinate has no curve point"),
        }
    }
}

impl std::error::Error for DecompressError {}

impl Affine {
    /// SEC-style compressed encoding: a tag byte (0x02/0x03 carrying
    /// ỹ = lsb(y·x⁻¹); 0x00 for infinity) followed by the 30-byte
    /// big-endian x-coordinate. 31 bytes instead of 61 — the WSN radio
    /// frame argument for compression.
    pub fn to_compressed_bytes(&self) -> [u8; 31] {
        let mut out = [0u8; 31];
        match *self {
            Affine::Infinity => out,
            Affine::Point { x, y } => {
                let y_bit = if x.is_zero() {
                    0
                } else {
                    (y * x.invert().expect("x != 0")).words()[0] & 1
                };
                out[0] = 0x02 | y_bit as u8;
                out[1..].copy_from_slice(&x.to_be_bytes());
                out
            }
        }
    }

    /// Decompresses a point: solves z² + z = x + x⁻² by half-trace
    /// (m odd), picks the root with lsb = ỹ, and sets y = x·z.
    ///
    /// # Errors
    ///
    /// Rejects malformed tags and x-coordinates off the curve.
    pub fn from_compressed_bytes(bytes: &[u8; 31]) -> Result<Affine, DecompressError> {
        let tag = bytes[0];
        if tag == 0x00 {
            if bytes[1..].iter().all(|&b| b == 0) {
                return Ok(Affine::Infinity);
            }
            return Err(DecompressError::InvalidTag);
        }
        if tag != 0x02 && tag != 0x03 {
            return Err(DecompressError::InvalidTag);
        }
        let y_bit = (tag & 1) as u32;
        let x = Fe::from_be_bytes(bytes[1..].try_into().expect("30 bytes"));
        if x.is_zero() {
            // The 2-torsion point (0, 1) (y = √b = 1).
            return Ok(Affine::Point { x, y: Fe::ONE });
        }
        // α = x + x⁻²; solvable iff Tr(α) = 0.
        let x_inv = x.invert().expect("x != 0");
        let alpha = x + x_inv.square();
        if alpha.trace() != 0 {
            return Err(DecompressError::NotOnCurve);
        }
        let mut z = alpha.half_trace();
        if z.words()[0] & 1 != y_bit {
            z += Fe::ONE;
        }
        let y = x * z;
        debug_assert!(Affine::Point { x, y }.is_on_curve());
        Ok(Affine::Point { x, y })
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Affine::Infinity => f.write_str("O"),
            Affine::Point { x, y } => write!(f, "({x:x}, {y:x})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_on_curve() {
        assert!(generator().is_on_curve());
    }

    #[test]
    fn order_has_232_bits_and_matches_nist_decimal() {
        let n = order();
        assert_eq!(n.bits(), 232);
        // FIPS 186 lists the K-233 order in decimal.
        let dec =
            Int::from_dec("3450873173395281893717377931138512760570940988862252126328087024741343")
                .unwrap();
        assert_eq!(n, dec);
    }

    #[test]
    fn curve_has_4n_points_by_lucas_sequence() {
        // #E(F_2^m) = 2^m + 1 − t_m with t_0 = 2, t_1 = μ,
        // t_{i+1} = μ·t_i − 2·t_{i−1}; for K-233, #E = h·n with h = 4.
        let mut t_prev = Int::from(2i64);
        let mut t = Int::from(MU);
        for _ in 1..crate::curve_m() {
            let next = &(&Int::from(MU) * &t) - &t_prev.shl(1);
            t_prev = t;
            t = next;
        }
        let count = &(&Int::one().shl(crate::curve_m()) + &Int::one()) - &t;
        let hn = &Int::from(COFACTOR as i64) * &order();
        assert_eq!(count, hn);
    }

    #[test]
    fn n_times_g_is_infinity() {
        assert!(generator().mul_binary(&order()).is_infinity());
    }

    #[test]
    fn small_multiples_are_on_curve_and_consistent() {
        let g = generator();
        let g2 = g.double();
        let g3 = g2.add(&g);
        let g4a = g3.add(&g);
        let g4b = g2.double();
        assert!(g2.is_on_curve() && g3.is_on_curve() && g4a.is_on_curve());
        assert_eq!(g4a, g4b, "3G + G == 2(2G)");
        assert_eq!(g.mul_binary(&Int::from(4i64)), g4a);
    }

    #[test]
    fn addition_is_commutative_and_associative() {
        let g = generator();
        let p = g.mul_binary(&Int::from(7i64));
        let q = g.mul_binary(&Int::from(11i64));
        let r = g.mul_binary(&Int::from(13i64));
        assert_eq!(p.add(&q), q.add(&p));
        assert_eq!(p.add(&q).add(&r), p.add(&q.add(&r)));
    }

    #[test]
    fn negation_and_identity() {
        let g = generator();
        assert!(g.add(&g.negated()).is_infinity());
        assert_eq!(g.add(&Affine::Infinity), g);
        assert_eq!(Affine::Infinity.add(&g), g);
        assert_eq!(g.negated().negated(), g);
        assert!(g.negated().is_on_curve());
    }

    #[test]
    fn frobenius_satisfies_characteristic_equation() {
        // τ²(P) + 2P = μτ(P)  ⟺  τ²(P) + 2P − μτ(P) = O.
        let g = generator();
        let tau = g.frobenius();
        let tau2 = tau.frobenius();
        let two_p = g.double();
        // μ = −1: τ²(P) + 2P = −τ(P).
        assert_eq!(tau2.add(&two_p), tau.negated());
        assert!(tau.is_on_curve());
    }

    #[test]
    fn frobenius_is_additive_homomorphism() {
        let g = generator();
        let p = g.mul_binary(&Int::from(5i64));
        let q = g.mul_binary(&Int::from(9i64));
        assert_eq!(p.add(&q).frobenius(), p.frobenius().add(&q.frobenius()));
    }

    #[test]
    fn mul_binary_edge_cases() {
        let g = generator();
        assert!(g.mul_binary(&Int::zero()).is_infinity());
        assert_eq!(g.mul_binary(&Int::one()), g);
        assert_eq!(
            g.mul_binary(&(&order() - &Int::one())),
            g.negated(),
            "(n-1)G = -G"
        );
    }

    #[test]
    fn mul_binary_distributes() {
        let g = generator();
        let a = Int::from(123456i64);
        let b = Int::from(654321i64);
        let sum = &a + &b;
        assert_eq!(g.mul_binary(&a).add(&g.mul_binary(&b)), g.mul_binary(&sum));
    }

    #[test]
    fn rejects_off_curve_points() {
        // (z, 0): 0 + 0 ≠ z³ + 1. Note (1, 1) IS on the curve
        // (1 + 1 = 0 = 1 + 1), so pick carefully.
        let z = Fe::from_hex("2").unwrap();
        assert_eq!(Affine::new(z, Fe::ZERO), Err(NotOnCurveError));
        assert!(Affine::new(Fe::ONE, Fe::ONE).is_ok());
    }

    #[test]
    fn compression_roundtrip() {
        let g = generator();
        for k in 1..20i64 {
            let p = g.mul_binary(&Int::from(k));
            let bytes = p.to_compressed_bytes();
            assert!(bytes[0] == 0x02 || bytes[0] == 0x03);
            assert_eq!(Affine::from_compressed_bytes(&bytes), Ok(p), "k = {k}");
        }
        // Infinity.
        let inf = Affine::Infinity.to_compressed_bytes();
        assert_eq!(inf, [0u8; 31]);
        assert_eq!(Affine::from_compressed_bytes(&inf), Ok(Affine::Infinity));
    }

    #[test]
    fn decompression_rejects_bad_inputs() {
        let mut bytes = generator().to_compressed_bytes();
        bytes[0] = 0x05;
        assert_eq!(
            Affine::from_compressed_bytes(&bytes),
            Err(DecompressError::InvalidTag)
        );
        // Half of all x-values have no point; find one by scanning.
        let mut probe = [0u8; 31];
        probe[0] = 0x02;
        let mut rejected = false;
        for v in 1u8..60 {
            probe[30] = v;
            if Affine::from_compressed_bytes(&probe) == Err(DecompressError::NotOnCurve) {
                rejected = true;
                break;
            }
        }
        assert!(rejected, "some x must be off-curve");
        // Non-zero trailing bytes under the infinity tag.
        let mut bad_inf = [0u8; 31];
        bad_inf[15] = 1;
        assert_eq!(
            Affine::from_compressed_bytes(&bad_inf),
            Err(DecompressError::InvalidTag)
        );
    }

    #[test]
    fn compressed_point_of_two_torsion() {
        let t = Affine::new(Fe::ZERO, Fe::ONE).unwrap();
        let bytes = t.to_compressed_bytes();
        assert_eq!(Affine::from_compressed_bytes(&bytes), Ok(t));
    }

    #[test]
    fn halving_inverts_doubling() {
        let g = generator();
        for k in 1..15i64 {
            let p = g.mul_binary(&Int::from(k));
            let q = p.halve().expect("odd-order points are halvable");
            assert!(q.is_on_curve(), "k = {k}");
            assert_eq!(q.double(), p, "2·halve(P) = P for k = {k}");
        }
        assert_eq!(Affine::Infinity.halve(), Some(Affine::Infinity));
    }

    #[test]
    fn repeated_halving_stays_consistent() {
        // halve^8 then double^8 must return to the start. When a halving
        // step picks the 2-torsion twin, the next point is a dead end;
        // the standard recovery is to add T = (0,1) (which doubles away)
        // and halve that instead.
        let torsion = Affine::new(Fe::ZERO, Fe::ONE).expect("on curve");
        let _ = torsion;
        let p = generator().mul_binary(&Int::from(12345i64));
        let mut q = p;
        for step in 0..8 {
            q = q
                .halve_in_subgroup()
                .unwrap_or_else(|| panic!("subgroup half must exist at step {step}"));
            assert!(q.is_on_curve());
        }
        for _ in 0..8 {
            q = q.double();
        }
        assert_eq!(q, p);
    }

    #[test]
    fn subgroup_halving_matches_scalar_division() {
        // halve_in_subgroup must equal (2⁻¹ mod n)·P exactly (not the
        // torsion twin), for odd-order P.
        let p = generator().mul_binary(&Int::from(9999i64));
        let two_inv = crate::Scalar::new(Int::from(2i64))
            .invert()
            .expect("2 invertible");
        let want = crate::mul::mul_wtnaf(&p, &two_inv.to_int(), 4);
        assert_eq!(p.halve_in_subgroup(), Some(want));
    }

    #[test]
    fn halve_agrees_with_scalar_inverse_of_two() {
        // In the odd-order subgroup the halvable branch must equal
        // (2⁻¹ mod n)·P, possibly offset by the 2-torsion point T.
        let p = generator().mul_binary(&Int::from(777i64));
        let two_inv = crate::Scalar::new(Int::from(2i64))
            .invert()
            .expect("2 is invertible");
        let want = crate::mul::mul_wtnaf(&p, &two_inv.to_int(), 4);
        let got = p.halve().expect("halvable");
        let torsion = Affine::new(Fe::ZERO, Fe::ONE).expect("on curve");
        assert!(
            got == want || got == want.add(&torsion),
            "half must be the subgroup half or its 2-torsion twin"
        );
    }

    #[test]
    fn non_halvable_points_are_rejected() {
        // (1,1) is on the curve with Tr(1) = 1 (m odd), hence not in 2E.
        let p = Affine::new(Fe::ONE, Fe::ONE).expect("on curve");
        assert_eq!(p.halve(), None);
        // Sanity: it is an order-4-ish point: 2·(1,1) = (0,1).
        assert_eq!(
            p.double(),
            Affine::new(Fe::ZERO, Fe::ONE).expect("on curve")
        );
    }

    #[test]
    fn two_torsion_point_doubles_to_infinity() {
        // (0, 1) is on the curve: 1 = 0 + 1; doubling is vertical.
        let t = Affine::new(Fe::ZERO, Fe::ONE).unwrap();
        assert!(t.double().is_infinity());
        assert_eq!(t.add(&t), Affine::Infinity);
    }

    #[test]
    fn subgroup_membership_accepts_only_order_n_points() {
        assert!(generator().is_in_prime_order_subgroup());
        assert!(generator().double().is_in_prime_order_subgroup());
        // The identity is a degenerate "key", not a subgroup member.
        assert!(!Affine::Infinity.is_in_prime_order_subgroup());
        // The 2-torsion point (0, 1) and the order-4 point (1, 1).
        let t2 = Affine::new(Fe::ZERO, Fe::ONE).unwrap();
        assert!(!t2.is_in_prime_order_subgroup());
        let t4 = Affine::new(Fe::ONE, Fe::ONE).unwrap();
        assert!(t4.is_on_curve());
        assert!(!t4.is_in_prime_order_subgroup());
        // A composite-order point: G + (0, 1) has order 2n — on the
        // curve, not annihilated by n.
        let composite = generator().add(&t2);
        assert!(composite.is_on_curve());
        assert!(!composite.is_in_prime_order_subgroup());
    }
}
