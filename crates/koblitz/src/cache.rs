//! Bounded LRU cache of wTNAF precomputation tables, keyed by base
//! point and window width.
//!
//! `TNAF_Precomputation` is the per-call setup cost of a random-point
//! multiplication: 2^(w−2) point multiplications by the small α_u
//! constants. Protocol traffic is heavily skewed towards a few base
//! points — a gateway verifies many signatures from the same few
//! public keys, an ECDH responder re-derives against recurring peers —
//! so repeated kP against the same base can skip the precomputation
//! entirely. The cache is shared process-wide behind a mutex, bounded
//! (strict LRU eviction by access stamp), and hands out `Arc`s so
//! worker threads hold tables without the lock.

use crate::curve::Affine;
use crate::mul::precompute_table;
use gf2m::N;
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum number of cached (point, width) tables. At w = 4 a table is
/// 4 affine points (240 bytes of coordinates), so the cache tops out
/// around a few kilobytes — sized for "a gateway's worth" of recurring
/// public keys, not for unbounded traffic.
pub const CAPACITY: usize = 32;

#[derive(Clone, Copy, PartialEq, Eq)]
struct Key {
    w: u32,
    x: [u32; N],
    y: [u32; N],
}

struct Entry {
    key: Key,
    table: Arc<Vec<Affine>>,
    stamp: u64,
}

#[derive(Default)]
struct Lru {
    entries: Vec<Entry>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Snapshot of the cache's hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to run `precompute_table`.
    pub misses: u64,
    /// Resident tables displaced to make room for a new key — the
    /// signature of adversarial key churn (every lookup a unique key).
    pub evictions: u64,
    /// Tables currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hit rate in [0, 1]; 0 when the cache has never been queried.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

fn cache() -> &'static Mutex<Lru> {
    static CACHE: OnceLock<Mutex<Lru>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(Lru::default()))
}

/// Returns the wTNAF precomputation table for `p`, computing and
/// caching it on first use. `p` must be a finite point (the point
/// multiplication entry points dispatch infinity before any table
/// work).
///
/// The table is returned by `Arc` so callers — including worker
/// threads in a batch scheduler — never hold the cache lock while
/// multiplying. The precomputation itself runs *outside* the lock;
/// concurrent first lookups of the same key may both compute, and the
/// loser's table is dropped (correctness is unaffected — tables are
/// deterministic in the key).
pub fn table_for(p: &Affine, w: u32) -> Arc<Vec<Affine>> {
    debug_assert!(!p.is_infinity(), "precomputation needs a finite base");
    let key = Key {
        w,
        x: *p.x().words(),
        y: *p.y().words(),
    };
    {
        let mut lru = cache().lock().unwrap();
        lru.clock += 1;
        let clock = lru.clock;
        if let Some(e) = lru.entries.iter_mut().find(|e| e.key == key) {
            e.stamp = clock;
            let table = Arc::clone(&e.table);
            lru.hits += 1;
            return table;
        }
        lru.misses += 1;
    }
    let table = Arc::new(precompute_table(p, w));
    let mut lru = cache().lock().unwrap();
    // Re-check: another thread may have inserted the same key while we
    // computed.
    if let Some(e) = lru.entries.iter().find(|e| e.key == key) {
        return Arc::clone(&e.table);
    }
    if lru.entries.len() >= CAPACITY {
        if let Some(victim) = lru
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.stamp)
            .map(|(i, _)| i)
        {
            lru.entries.swap_remove(victim);
            lru.evictions += 1;
        }
    }
    let stamp = lru.clock;
    lru.entries.push(Entry {
        key,
        table: Arc::clone(&table),
        stamp,
    });
    table
}

/// Current hit/miss counters.
pub fn stats() -> CacheStats {
    let lru = cache().lock().unwrap();
    CacheStats {
        hits: lru.hits,
        misses: lru.misses,
        evictions: lru.evictions,
        entries: lru.entries.len(),
    }
}

/// Empties the cache and zeroes the counters (for benchmarks that
/// measure cold-vs-warm behaviour).
pub fn reset() {
    let mut lru = cache().lock().unwrap();
    lru.entries.clear();
    lru.clock = 0;
    lru.hits = 0;
    lru.misses = 0;
    lru.evictions = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::generator;
    use crate::int::Int;
    use crate::mul::KP_WINDOW;

    // The cache is process-global and tests run concurrently; counter
    // assertions serialize on this lock so deltas are attributable.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn second_lookup_hits() {
        let _guard = serial();
        let p = generator().mul_binary(&Int::from(0x5151_5151i64));
        let before = stats();
        let t1 = table_for(&p, KP_WINDOW);
        let t2 = table_for(&p, KP_WINDOW);
        assert_eq!(t1, t2);
        let after = stats();
        assert!(after.hits > before.hits, "second lookup must hit");
        assert_eq!(*t1, precompute_table(&p, KP_WINDOW));
    }

    #[test]
    fn distinct_widths_are_distinct_entries() {
        let p = generator().mul_binary(&Int::from(0x7272i64));
        let t4 = table_for(&p, 4);
        let t5 = table_for(&p, 5);
        assert_eq!(t4.len(), 4);
        assert_eq!(t5.len(), 8);
    }

    #[test]
    fn capacity_is_bounded() {
        let _guard = serial();
        for k in 0..(CAPACITY as i64 + 8) {
            let p = generator().mul_binary(&Int::from(900_000 + k));
            let _ = table_for(&p, KP_WINDOW);
        }
        assert!(stats().entries <= CAPACITY);
    }
}
