//! Arithmetic modulo the group order n (the scalar field of ECDH/ECDSA).

use crate::curve::order;
use crate::int::Int;
use std::fmt;

/// An element of ℤ/nℤ for the sect233k1 group order n, kept canonical
/// in `[0, n)`.
///
/// ```
/// use koblitz::{Int, Scalar};
/// let a = Scalar::new(Int::from(5i64));
/// let inv = a.invert().expect("5 is invertible");
/// assert_eq!(a.mul(&inv), Scalar::one());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Scalar(Int);

impl Scalar {
    /// Zero.
    pub fn zero() -> Scalar {
        Scalar(Int::zero())
    }

    /// One.
    pub fn one() -> Scalar {
        Scalar(Int::one())
    }

    /// Reduces any integer into the scalar field.
    pub fn new(v: Int) -> Scalar {
        Scalar(v.mod_positive(&order()))
    }

    /// Derives a scalar from (at least 30) uniformly random bytes.
    /// Uses simple modular reduction of a 40-byte-wide value, making the
    /// bias below 2⁻⁶⁴.
    pub fn from_wide_bytes(bytes: &[u8]) -> Scalar {
        Scalar::new(Int::from_be_bytes(bytes))
    }

    /// The canonical representative in `[0, n)`.
    pub fn to_int(&self) -> Int {
        self.0.clone()
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    /// Addition mod n.
    #[must_use]
    pub fn add(&self, other: &Scalar) -> Scalar {
        Scalar::new(&self.0 + &other.0)
    }

    /// Subtraction mod n.
    #[must_use]
    pub fn sub(&self, other: &Scalar) -> Scalar {
        Scalar::new(&self.0 - &other.0)
    }

    /// Multiplication mod n.
    #[must_use]
    pub fn mul(&self, other: &Scalar) -> Scalar {
        Scalar::new(&self.0 * &other.0)
    }

    /// Negation mod n.
    #[must_use]
    pub fn negated(&self) -> Scalar {
        Scalar::new(self.0.negated())
    }

    /// Multiplicative inverse mod n (n is prime), or `None` for zero.
    pub fn invert(&self) -> Option<Scalar> {
        if self.is_zero() {
            return None;
        }
        // Extended Euclid over the integers.
        let n = order();
        let (mut r0, mut r1) = (n.clone(), self.0.clone());
        let (mut t0, mut t1) = (Int::zero(), Int::one());
        while !r1.is_zero() {
            let (q, r) = r0.divrem_floor(&r1);
            let t2 = &t0 - &(&q * &t1);
            r0 = r1;
            r1 = r;
            t0 = t1;
            t1 = t2;
        }
        debug_assert_eq!(r0, Int::one(), "n is prime, gcd must be 1");
        Some(Scalar::new(t0))
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: i64) -> Scalar {
        Scalar::new(Int::from(v))
    }

    #[test]
    fn canonical_range() {
        assert_eq!(Scalar::new(order()), Scalar::zero());
        assert_eq!(Scalar::new(&order() + &Int::one()), Scalar::one());
        assert_eq!(
            Scalar::new(Int::from(-1i64)),
            Scalar::new(&order() - &Int::one())
        );
    }

    #[test]
    fn field_axioms_spotcheck() {
        let a = s(123456789);
        let b = s(987654321);
        let c = s(192837465);
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.mul(&b), b.mul(&a));
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        assert_eq!(a.add(&a.negated()), Scalar::zero());
        assert_eq!(a.sub(&b).add(&b), a);
    }

    #[test]
    fn inversion() {
        for v in [1i64, 2, 3, 65537, 0x7FFF_FFFF] {
            let a = s(v);
            let inv = a.invert().expect("non-zero");
            assert_eq!(a.mul(&inv), Scalar::one(), "v = {v}");
        }
        assert_eq!(Scalar::zero().invert(), None);
    }

    #[test]
    fn inversion_of_large_scalar() {
        let a = Scalar::new(Int::from_hex("123456789abcdef0fedcba9876543210deadbeef").unwrap());
        assert_eq!(a.mul(&a.invert().unwrap()), Scalar::one());
    }

    #[test]
    fn wide_bytes_reduction() {
        let bytes = [0xFFu8; 40];
        let a = Scalar::from_wide_bytes(&bytes);
        assert!(!a.is_zero());
        assert!(a.to_int() < order());
    }
}
