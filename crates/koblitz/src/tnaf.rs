//! τ-adic NAF machinery for Koblitz curves (Solinas; Guide to ECC §3.4).
//!
//! On a Koblitz curve the Frobenius map τ satisfies τ² + 2 = μτ, so
//! scalars can be expanded in powers of τ instead of powers of 2 and
//! point doublings replaced by (nearly free) Frobenius applications.
//! This module provides, *computed from first principles at runtime*
//! rather than copied from tables:
//!
//! * the ring constants d₀ + d₁τ = δ = (τᵐ − 1)/(τ − 1) and
//!   s₀, s₁ (via Lucas sequences) — validated against the SEC 2 group
//!   order through the norm identity N(δ) = n;
//! * **partial/full reduction** ρ = k mod δ by lattice rounding, which
//!   keeps the τ-adic expansion length near m instead of 2m;
//! * plain **TNAF** and width-w **TNAF** digit generation;
//! * the window representatives α_u ≡ u (mod τʷ) of minimal norm,
//!   again computed by the same rounding (not hard-coded).

use crate::curve::MU;
use crate::int::Int;
use std::sync::OnceLock;

/// Ring constants of ℤ\[τ\] for sect233k1.
#[derive(Debug, Clone)]
pub struct TauConstants {
    /// Real part of δ = (τᵐ − 1)/(τ − 1).
    pub d0: Int,
    /// τ-part of δ.
    pub d1: Int,
    /// s₀ = d₀ + μ·d₁ (numerator of λ₀ = s₀k/n).
    pub s0: Int,
    /// s₁ = −d₁ (numerator of λ₁ = s₁k/n).
    pub s1: Int,
    /// The norm N(δ), which equals the prime group order n.
    pub norm: Int,
}

/// Multiplication in ℤ\[τ\]: (a₀ + a₁τ)(b₀ + b₁τ) with τ² = μτ − 2.
pub fn zt_mul(a0: &Int, a1: &Int, b0: &Int, b1: &Int) -> (Int, Int) {
    let ac = a0 * b0;
    let bd = a1 * b1;
    let c0 = &ac - &bd.shl(1);
    let mid = &(a0 * b1) + &(a1 * b0);
    let c1 = if MU == -1 { &mid - &bd } else { &mid + &bd };
    (c0, c1)
}

/// The norm N(a₀ + a₁τ) = a₀² + μ·a₀a₁ + 2a₁².
pub fn zt_norm(a0: &Int, a1: &Int) -> Int {
    let sq = &(a0 * a0) + &(a1 * a1).shl(1);
    let cross = a0 * a1;
    if MU == -1 {
        &sq - &cross
    } else {
        &sq + &cross
    }
}

/// Lucas sequence U: U₀ = 0, U₁ = 1, U_{i+1} = μU_i − 2U_{i−1};
/// τⁱ = U_i·τ − 2·U_{i−1}.
pub fn lucas_u(i: usize) -> (Int, Int) {
    let mut prev = Int::zero(); // U_0
    let mut cur = Int::one(); // U_1
    if i == 0 {
        return (Int::zero(), Int::one()); // (U_0, U_{-1} = conventionally 1? not used)
    }
    for _ in 1..i {
        let next = &(&Int::from(MU) * &cur) - &prev.shl(1);
        prev = cur;
        cur = next;
    }
    (cur, prev) // (U_i, U_{i-1})
}

/// The sect233k1 constants, computed once.
pub fn constants() -> &'static TauConstants {
    static CONSTS: OnceLock<TauConstants> = OnceLock::new();
    CONSTS.get_or_init(|| {
        let m = crate::curve_m();
        let (um, um1) = lucas_u(m);
        // τᵐ − 1 = −(2U_{m−1} + 1) + U_m·τ.
        let a = (&um1.shl(1) + &Int::one()).negated();
        let b = um;
        // δ = (τᵐ − 1)·(τ̄ − 1)/N(τ − 1); τ̄ − 1 = (μ − 1) − τ,
        // N(τ − 1) = 3 − μ = 4 for μ = −1.
        let c = Int::from(MU - 1);
        let d = Int::from(-1i64);
        let (num0, num1) = zt_mul(&a, &b, &c, &d);
        let four = Int::from(4i64);
        let (d0, rem0) = num0.divrem_floor(&four);
        let (d1, rem1) = num1.divrem_floor(&four);
        assert!(rem0.is_zero() && rem1.is_zero(), "δ division must be exact");
        let s0 = if MU == -1 { &d0 - &d1 } else { &d0 + &d1 };
        let s1 = d1.negated();
        let norm = zt_norm(&d0, &d1);
        TauConstants {
            d0,
            d1,
            s0,
            s1,
            norm,
        }
    })
}

/// Solinas round-off in ℤ\[τ\] (Guide to ECC Alg. 3.61): given the exact
/// rationals λ_i = (f_i·n + r_i)/n with r_i ∈ \[−n/2, n/2), returns the
/// rounded quotient (q₀, q₁) of minimal-norm remainder.
///
/// Any choice of (q₀, q₁) preserves the *value* k − qδ ≡ k; the
/// conditions below only minimise the remainder's norm (and hence the
/// expansion length), which the tests assert.
fn round_off(f0: &Int, r0: &Int, f1: &Int, r1: &Int, n: &Int) -> (Int, Int) {
    let mu = Int::from(MU);
    let mut h0 = Int::zero();
    let mut h1 = Int::zero();
    // η·n = 2r0 + μr1.
    let eta = &r0.shl(1) + &(&mu * r1);
    // (η0 − 3μη1)·n and (η0 + 4μη1)·n.
    let t3 = &r0.clone() - &(&(&mu * r1) * &Int::from(3i64));
    let t4 = &r0.clone() + &(&(&mu * r1) * &Int::from(4i64));
    let neg_n = n.negated();
    if eta >= *n {
        if t3 < neg_n {
            h1 = mu.clone();
        } else {
            h0 = Int::one();
        }
    } else if t4 >= n.shl(1) {
        h1 = mu.clone();
    }
    if eta < neg_n {
        if t3 >= *n {
            h1 = mu.negated();
        } else {
            h0 = Int::from(-1i64);
        }
    } else if t4 < n.shl(1).negated() {
        h1 = mu.negated();
    }
    (f0 + &h0, f1 + &h1)
}

/// Reduction ρ = k mod δ: returns (r₀, r₁) with ρ = r₀ + r₁τ,
/// ρ ≡ k (mod δ), and N(ρ) small enough that the TNAF of ρ has length
/// ≤ m + 4. For points in the prime-order subgroup, ρP = kP.
pub fn partmod(k: &Int) -> (Int, Int) {
    let c = constants();
    let n = &c.norm;
    // λ_i = s_i·k / n, exactly.
    let a0 = &c.s0 * k;
    let a1 = &c.s1 * k;
    let (f0, r0) = a0.divrem_round(n);
    let (f1, r1) = a1.divrem_round(n);
    let (q0, q1) = round_off(&f0, &r0, &f1, &r1, n);
    // ρ = k − q·δ.
    let (qd0, qd1) = zt_mul(&q0, &q1, &c.d0, &c.d1);
    (k - &qd0, qd1.negated())
}

/// Plain TNAF digits (least significant first), each in {−1, 0, 1}, no
/// two consecutive non-zeros.
pub fn tnaf(mut r0: Int, mut r1: Int) -> Vec<i8> {
    let mut digits = Vec::new();
    while !r0.is_zero() || !r1.is_zero() {
        let u: i8 = if r0.is_odd() {
            // u = 2 − ((r0 − 2r1) mod 4) ∈ {−1, 1}.
            let m4 = (&r0 - &r1.shl(1)).low_bits(2);
            let u = 2i8 - m4 as i8;
            r0 = &r0 - &Int::from(u as i64);
            u
        } else {
            0
        };
        digits.push(u);
        // (r0, r1) ← (r1 + μ·r0/2, −r0/2).
        let half = r0.half_exact();
        let signed_half = if MU == -1 {
            half.negated()
        } else {
            half.clone()
        };
        r0 = &r1 + &signed_half;
        r1 = half.negated();
    }
    digits
}

/// The window representative α_u = β + γτ ≡ u (mod τʷ) of minimal norm,
/// for odd u, computed by rounding u/τʷ in ℤ\[τ\].
pub fn alpha(u: i64, w: u32) -> (Int, Int) {
    assert!(u % 2 != 0, "representatives exist for odd u only");
    let (uw, uw1) = lucas_u(w as usize);
    // τʷ = U_w·τ − 2U_{w−1}; conj(τʷ) = (μU_w − 2U_{w−1}) − U_w·τ.
    // λ = u·conj(τʷ)/2ʷ.
    let tw0 = uw1.shl(1).negated(); // real part of τʷ
    let tw1 = uw.clone();
    let conj0 = &(&Int::from(MU) * &uw) - &uw1.shl(1);
    let conj1 = uw.negated();
    let two_w = Int::one().shl(w as usize);
    let a0 = &Int::from(u) * &conj0;
    let a1 = &Int::from(u) * &conj1;
    let (f0, r0) = a0.divrem_round(&two_w);
    let (f1, r1) = a1.divrem_round(&two_w);
    let (q0, q1) = round_off(&f0, &r0, &f1, &r1, &two_w);
    // α = u − q·τʷ.
    let (qt0, qt1) = zt_mul(&q0, &q1, &tw0, &tw1);
    (&Int::from(u) - &qt0, qt1.negated())
}

/// The 2-adic image of τ for window width w: the *even* root t_w of
/// t² + 2 ≡ μt (mod 2ʷ), found by exhaustive search (w ≤ 8).
pub fn tau_mod_2w(w: u32) -> u32 {
    assert!((2..=8).contains(&w));
    let modulus = 1u64 << w;
    for t in (0..modulus).step_by(2) {
        if (t * t + 2) % modulus == (MU.rem_euclid(modulus as i64) as u64 * t) % modulus {
            return t as u32;
        }
    }
    unreachable!("τ always has a 2-adic image");
}

/// Width-w TNAF digits (least significant first): each digit is 0 or an
/// odd integer with |digit| < 2^(w−1), and any two non-zero digits are
/// at least w positions apart.
pub fn wtnaf(mut r0: Int, mut r1: Int, w: u32) -> Vec<i8> {
    assert!((2..=8).contains(&w), "window width 2..=8");
    let tw = tau_mod_2w(w) as i64;
    let half_window = 1i64 << (w - 1);
    let full = 1i64 << w;
    // Pre-compute the representatives for odd |u| < 2^(w−1).
    let alphas: Vec<(Int, Int)> = (0..half_window / 2 + 1)
        .map(|i| {
            let u = 2 * i + 1;
            if u < half_window {
                alpha(u, w)
            } else {
                (Int::zero(), Int::zero())
            }
        })
        .collect();

    let mut digits = Vec::new();
    while !r0.is_zero() || !r1.is_zero() {
        let u: i8 = if r0.is_odd() {
            // s = (r0 + r1·t_w) mods 2ʷ (signed residue).
            let low = (r0.low_bits(w) as i64 + r1.low_bits(w) as i64 * tw) % full;
            let mut s = low % full;
            if s >= half_window {
                s -= full;
            }
            debug_assert!(s % 2 != 0);
            let (beta, gamma) = {
                let (b, g) = &alphas[(s.unsigned_abs() as usize) / 2];
                if s < 0 {
                    (b.negated(), g.negated())
                } else {
                    (b.clone(), g.clone())
                }
            };
            r0 = &r0 - &beta;
            r1 = &r1 - &gamma;
            s as i8
        } else {
            0
        };
        digits.push(u);
        let half = r0.half_exact();
        let signed_half = if MU == -1 {
            half.negated()
        } else {
            half.clone()
        };
        r0 = &r1 + &signed_half;
        r1 = half.negated();
    }
    digits
}

/// Fixed output length of [`recode`]: the m + 6 worst-case digit count
/// of a width-w TNAF after partial reduction mod δ. Every recoding is
/// zero-padded up to this length so the digit count — and therefore
/// the iteration count of every scalar-multiplication loop consuming
/// it — does not depend on the scalar. (A short scalar such as k = 1
/// would otherwise recode to a handful of digits, leaking ⌈log k⌉
/// through timing.)
pub fn recode_length() -> usize {
    crate::curve_m() + 6
}

/// Full recoding pipeline for a scalar: reduce mod δ, then take the
/// width-w TNAF, zero-padded to the fixed [`recode_length`] (trailing
/// zeros are on the most-significant side, where every consumer either
/// applies the Frobenius to the point at infinity — a no-op — or skips
/// the zero digit). ≈ m/(w+1) digits are non-zero.
pub fn recode(k: &Int, w: u32) -> Vec<i8> {
    let (r0, r1) = partmod(k);
    let mut digits = if w == 1 {
        tnaf(r0, r1)
    } else {
        wtnaf(r0, r1, w)
    };
    debug_assert!(digits.len() <= recode_length(), "TNAF overran m + 6");
    digits.resize(recode_length(), 0);
    digits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::{generator, order, Affine};

    /// Applies an element r0 + r1τ of ℤ[τ] to a point using only the
    /// reference arithmetic.
    fn apply_zt(r0: &Int, r1: &Int, p: &Affine) -> Affine {
        let part = |r: &Int, q: &Affine| {
            let m = q.mul_binary(&r.abs());
            if r.is_negative() {
                m.negated()
            } else {
                m
            }
        };
        part(r0, p).add(&part(r1, &p.frobenius()))
    }

    /// Evaluates a width-w τ-adic digit string at a point. A non-zero
    /// digit u means "add α_u·P" (the window representative), so the
    /// evaluation computes α_u·P = β·P + γ·τ(P) from first principles.
    fn eval_digits(digits: &[i8], p: &Affine, w: u32) -> Affine {
        let mut acc = Affine::Infinity;
        for &d in digits.iter().rev() {
            acc = acc.frobenius();
            if d != 0 {
                let (beta, gamma) = if w == 1 {
                    (Int::from(d as i64), Int::zero())
                } else {
                    let (b, g) = alpha(d.unsigned_abs() as i64, w);
                    if d < 0 {
                        (b.negated(), g.negated())
                    } else {
                        (b, g)
                    }
                };
                acc = acc.add(&apply_zt(&beta, &gamma, p));
            }
        }
        acc
    }

    #[test]
    fn norm_of_delta_is_the_group_order() {
        // N(δ) = n — ties the Lucas-sequence computation to the SEC 2
        // constant.
        assert_eq!(constants().norm, order());
    }

    #[test]
    fn delta_times_tau_minus_one_is_tau_m_minus_one() {
        let c = constants();
        let (p0, p1) = zt_mul(&c.d0, &c.d1, &Int::from(-1i64), &Int::one());
        let (um, um1) = lucas_u(crate::curve_m());
        assert_eq!(p1, um);
        assert_eq!(p0, (&um1.shl(1) + &Int::one()).negated());
    }

    #[test]
    fn tau_mod_2w_is_an_even_root() {
        for w in 2..=8 {
            let t = tau_mod_2w(w) as u64;
            let modulus = 1u64 << w;
            assert_eq!(t % 2, 0);
            let lhs = (t * t + 2) % modulus;
            let rhs = (MU.rem_euclid(modulus as i64) as u64 * t) % modulus;
            assert_eq!(lhs, rhs, "w = {w}");
        }
    }

    #[test]
    fn alpha_is_congruent_to_u_mod_tau_w() {
        for w in [4u32, 5, 6] {
            for i in 0..(1i64 << (w - 2)) {
                let u = 2 * i + 1;
                let (beta, gamma) = alpha(u, w);
                // (α − u) must be divisible by τʷ: multiply by conj(τʷ)
                // and check both coordinates divisible by 2ʷ.
                let diff0 = &beta - &Int::from(u);
                let (uw, uw1) = lucas_u(w as usize);
                let conj0 = &(&Int::from(MU) * &uw) - &uw1.shl(1);
                let conj1 = uw.negated();
                let (m0, m1) = zt_mul(&diff0, &gamma, &conj0, &conj1);
                let two_w = Int::one().shl(w as usize);
                assert!(m0.mod_positive(&two_w).is_zero(), "u={u} w={w}");
                assert!(m1.mod_positive(&two_w).is_zero(), "u={u} w={w}");
                // And the representative has small norm (< 2^w · 4/7·…;
                // generous bound 2^(w+1)).
                assert!(
                    zt_norm(&beta, &gamma) < Int::one().shl(w as usize + 1),
                    "norm too large for u={u} w={w}"
                );
            }
        }
    }

    #[test]
    fn tnaf_of_small_integers_evaluates_correctly() {
        let g = generator();
        for k in 1..40i64 {
            let digits = tnaf(Int::from(k), Int::zero());
            assert_eq!(
                eval_digits(&digits, &g, 1),
                g.mul_binary(&Int::from(k)),
                "k = {k}"
            );
        }
    }

    #[test]
    fn tnaf_has_no_adjacent_nonzeros() {
        let digits = tnaf(Int::from(0xDEADBEEFi64), Int::from(0x1234i64));
        for pair in digits.windows(2) {
            assert!(pair[0] == 0 || pair[1] == 0, "adjacent non-zeros");
        }
    }

    #[test]
    fn wtnaf_digits_are_odd_and_bounded() {
        for w in [4u32, 6] {
            let digits = wtnaf(Int::from(0x0123_4567_89AB_CDEFi64), Int::from(-98765i64), w);
            let bound = 1i8 << (w - 1);
            for &d in &digits {
                assert!(d == 0 || (d % 2 != 0 && d.abs() < bound), "digit {d} w={w}");
            }
            // Non-zeros at least w apart.
            let nz: Vec<usize> = digits
                .iter()
                .enumerate()
                .filter(|(_, &d)| d != 0)
                .map(|(i, _)| i)
                .collect();
            for pair in nz.windows(2) {
                assert!(pair[1] - pair[0] >= w as usize, "spacing {pair:?} w={w}");
            }
        }
    }

    #[test]
    fn wtnaf_evaluates_correctly_for_zt_elements() {
        let g = generator();
        for (a, b) in [(5i64, 0i64), (1, 1), (-7, 3), (1000, -999), (123456789, 42)] {
            let r0 = Int::from(a);
            let r1 = Int::from(b);
            let want = apply_zt(&r0, &r1, &g);
            for w in [4u32, 5, 6] {
                let digits = wtnaf(r0.clone(), r1.clone(), w);
                assert_eq!(eval_digits(&digits, &g, w), want, "({a},{b}) w={w}");
            }
        }
    }

    #[test]
    fn partmod_preserves_the_point_multiple() {
        let g = generator();
        for k in [
            Int::from(1i64),
            Int::from(0xFFFF_FFFFi64),
            Int::from_hex("123456789abcdef0fedcba9876543210").unwrap(),
            &order() - &Int::one(),
        ] {
            let (r0, r1) = partmod(&k);
            assert_eq!(apply_zt(&r0, &r1, &g), g.mul_binary(&k), "k = {k}");
        }
    }

    #[test]
    fn partmod_output_is_short() {
        // N(ρ) small ⟹ both components ≲ 2^(m/2 + 2); the TNAF length is
        // then ≤ m + 4.
        let k = &order() - &Int::from(12345i64);
        let (r0, r1) = partmod(&k);
        assert!(r0.bits() <= 120, "r0 has {} bits", r0.bits());
        assert!(r1.bits() <= 120, "r1 has {} bits", r1.bits());
        let digits = tnaf(r0, r1);
        assert!(
            digits.len() <= crate::curve_m() + 4,
            "TNAF length {}",
            digits.len()
        );
    }

    #[test]
    fn recode_pipeline_matches_mul_binary() {
        let g = generator();
        for seed in 1..6u64 {
            let k = Int::from_hex(&format!("{:x}", seed).repeat(50)).unwrap();
            let k = k.mod_positive(&order());
            for w in [1u32, 4, 6] {
                let digits = recode(&k, w);
                assert_eq!(
                    eval_digits(&digits, &g, w),
                    g.mul_binary(&k),
                    "seed {seed} w={w}"
                );
                assert!(digits.len() <= crate::curve_m() + 6);
            }
        }
    }

    #[test]
    fn recode_length_is_scalar_independent() {
        // Regression: short scalars used to recode to short digit
        // strings, making every consumer's loop count (and cycle
        // count) leak the scalar's magnitude.
        let cases = [
            Int::one(),
            Int::from(3i64),
            Int::from(0x7FFFi64),
            &order() - &Int::one(),
            Int::from_hex(&"b7".repeat(29))
                .unwrap()
                .mod_positive(&order()),
        ];
        for w in [1u32, 4, 6] {
            for k in &cases {
                let digits = recode(k, w);
                assert_eq!(digits.len(), recode_length(), "k = {k}, w = {w}");
            }
        }
        // Padding must not change the evaluated point.
        let g = generator();
        let k = Int::from(3i64);
        assert_eq!(eval_digits(&recode(&k, 4), &g, 4), g.mul_binary(&k));
    }

    #[test]
    fn recode_density_matches_theory() {
        // Expected non-zero density of a width-w TNAF is 1/(w+1).
        let k = Int::from_hex(&"a5".repeat(29))
            .unwrap()
            .mod_positive(&order());
        for w in [4u32, 6] {
            let digits = recode(&k, w);
            let nz = digits.iter().filter(|&&d| d != 0).count() as f64;
            let density = nz / digits.len() as f64;
            let expect = 1.0 / (w as f64 + 1.0);
            assert!(
                (density - expect).abs() < 0.08,
                "w={w}: density {density:.3} vs {expect:.3}"
            );
        }
    }
}
