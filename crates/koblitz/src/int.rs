//! Signed multi-precision integers for τ-adic recoding and scalar
//! arithmetic.
//!
//! A small, dependency-free bignum: sign-magnitude with little-endian
//! `u32` limbs. It provides exactly what the Koblitz-curve machinery
//! needs — ring operations, shifts, floor/nearest division, parity and
//! low-bit extraction — with no performance pretensions (the performance
//! story of this reproduction lives in the modeled tier, not here).

// Sign-magnitude subtraction is addition of the negation — the
// operator-surprise lint assumes two's-complement semantics.
#![allow(clippy::suspicious_arithmetic_impl)]

use std::cmp::Ordering;
use std::fmt;

/// A signed arbitrary-precision integer.
///
/// ```
/// use koblitz::int::Int;
/// let a = Int::from_hex("-ff")?;
/// let b = Int::from(510i64);
/// assert_eq!(&a * &Int::from(-2i64), b);
/// # Ok::<(), koblitz::int::ParseIntError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Int {
    /// True for strictly negative values. Zero is always non-negative.
    neg: bool,
    /// Little-endian magnitude, no trailing zero limbs.
    mag: Vec<u32>,
}

/// Error from [`Int::from_hex`] / [`Int::from_dec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseIntError {
    /// A character outside the digit set was found.
    InvalidDigit(char),
    /// The string was empty (or just a sign).
    Empty,
}

impl fmt::Display for ParseIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseIntError::InvalidDigit(c) => write!(f, "invalid digit {c:?}"),
            ParseIntError::Empty => f.write_str("empty integer literal"),
        }
    }
}

impl std::error::Error for ParseIntError {}

impl Int {
    /// Zero.
    pub fn zero() -> Int {
        Int::default()
    }

    /// One.
    pub fn one() -> Int {
        Int::from(1i64)
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_empty()
    }

    /// Whether this is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.neg
    }

    /// Whether the value is odd.
    pub fn is_odd(&self) -> bool {
        self.mag.first().is_some_and(|&w| w & 1 == 1)
    }

    /// Number of significant bits of the magnitude (0 for zero).
    pub fn bits(&self) -> usize {
        match self.mag.last() {
            None => 0,
            Some(&top) => (self.mag.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// The value's low `w` bits (w ≤ 32) of the magnitude interpreted
    /// *two's-complement-style over the signed value*: returns
    /// `self mod 2^w` in `0..2^w`.
    pub fn low_bits(&self, w: u32) -> u32 {
        assert!(w <= 32);
        let mask = if w == 32 { u32::MAX } else { (1u32 << w) - 1 };
        let low = self.mag.first().copied().unwrap_or(0) & mask;
        if self.neg && low != 0 {
            (mask + 1 - low) & mask
        } else {
            low
        }
    }

    /// Builds from little-endian `u32` limbs and a sign.
    pub fn from_limbs(neg: bool, mut mag: Vec<u32>) -> Int {
        while mag.last() == Some(&0) {
            mag.pop();
        }
        let neg = neg && !mag.is_empty();
        Int { neg, mag }
    }

    /// The little-endian magnitude limbs.
    pub fn limbs(&self) -> &[u32] {
        &self.mag
    }

    /// Parses a (possibly `-`-prefixed, possibly `0x`-prefixed) hex
    /// string.
    ///
    /// # Errors
    ///
    /// Returns an error on empty input or non-hex digits.
    pub fn from_hex(s: &str) -> Result<Int, ParseIntError> {
        let (neg, s) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        let s = s
            .strip_prefix("0x")
            .or_else(|| s.strip_prefix("0X"))
            .unwrap_or(s);
        if s.is_empty() {
            return Err(ParseIntError::Empty);
        }
        let mut v = Int::zero();
        for c in s.chars() {
            let d = c.to_digit(16).ok_or(ParseIntError::InvalidDigit(c))?;
            v = &(v.shl(4)) + &Int::from(d as i64);
        }
        Ok(if neg { v.negated() } else { v })
    }

    /// Parses a decimal string (possibly `-`-prefixed).
    ///
    /// # Errors
    ///
    /// Returns an error on empty input or non-decimal digits.
    pub fn from_dec(s: &str) -> Result<Int, ParseIntError> {
        let (neg, s) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        if s.is_empty() {
            return Err(ParseIntError::Empty);
        }
        let ten = Int::from(10i64);
        let mut v = Int::zero();
        for c in s.chars() {
            let d = c.to_digit(10).ok_or(ParseIntError::InvalidDigit(c))?;
            v = &(&v * &ten) + &Int::from(d as i64);
        }
        Ok(if neg { v.negated() } else { v })
    }

    /// Builds from 30 big-endian bytes (the sect233k1 scalar width).
    pub fn from_be_bytes(bytes: &[u8]) -> Int {
        let mut v = Int::zero();
        for &b in bytes {
            v = &v.shl(8) + &Int::from(b as i64);
        }
        v
    }

    /// Big-endian byte encoding of the magnitude, left-padded to `len`
    /// bytes.
    ///
    /// # Panics
    ///
    /// Panics if the value is negative or needs more than `len` bytes.
    pub fn to_be_bytes_padded(&self, len: usize) -> Vec<u8> {
        assert!(!self.neg, "byte encoding is for non-negative values");
        assert!(
            self.bits().div_ceil(8) <= len,
            "value needs more than {len} bytes"
        );
        let mut out = vec![0u8; len];
        for (i, byte) in out.iter_mut().rev().enumerate() {
            let limb = self.mag.get(i / 4).copied().unwrap_or(0);
            *byte = (limb >> (8 * (i % 4))) as u8;
        }
        out
    }

    /// Lower-hex magnitude with sign, e.g. `-1f4`.
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        let mut s = String::new();
        if self.neg {
            s.push('-');
        }
        let mut first = true;
        for &limb in self.mag.iter().rev() {
            if first {
                s += &format!("{limb:x}");
                first = false;
            } else {
                s += &format!("{limb:08x}");
            }
        }
        s
    }

    /// The negation.
    #[must_use]
    pub fn negated(&self) -> Int {
        Int::from_limbs(!self.neg, self.mag.clone())
    }

    /// The absolute value.
    #[must_use]
    pub fn abs(&self) -> Int {
        Int::from_limbs(false, self.mag.clone())
    }

    /// `self << k`.
    #[must_use]
    pub fn shl(&self, k: usize) -> Int {
        if self.is_zero() {
            return Int::zero();
        }
        let words = k / 32;
        let bits = (k % 32) as u32;
        let mut mag = vec![0u32; words];
        if bits == 0 {
            mag.extend_from_slice(&self.mag);
        } else {
            let mut carry = 0u32;
            for &w in &self.mag {
                mag.push((w << bits) | carry);
                carry = w >> (32 - bits);
            }
            if carry != 0 {
                mag.push(carry);
            }
        }
        Int::from_limbs(self.neg, mag)
    }

    /// `self >> k` of the *magnitude* (arithmetic use sites only call
    /// this on even values where floor/truncate agree; documented
    /// truncation-toward-zero semantics).
    #[must_use]
    pub fn shr(&self, k: usize) -> Int {
        let words = k / 32;
        if words >= self.mag.len() {
            return Int::zero();
        }
        let bits = (k % 32) as u32;
        let src = &self.mag[words..];
        let mut mag = Vec::with_capacity(src.len());
        if bits == 0 {
            mag.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (32 - bits)
                } else {
                    0
                };
                mag.push((src[i] >> bits) | hi);
            }
        }
        Int::from_limbs(self.neg, mag)
    }

    /// Exact halving.
    ///
    /// # Panics
    ///
    /// Panics if the value is odd.
    #[must_use]
    pub fn half_exact(&self) -> Int {
        assert!(!self.is_odd(), "half_exact of an odd value");
        self.shr(1)
    }

    fn cmp_mag(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut out = Vec::with_capacity(a.len().max(b.len()) + 1);
        let mut carry = 0u64;
        for i in 0..a.len().max(b.len()) {
            let x = *a.get(i).unwrap_or(&0) as u64;
            let y = *b.get(i).unwrap_or(&0) as u64;
            let s = x + y + carry;
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        out
    }

    /// a - b for |a| >= |b|.
    fn sub_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        debug_assert!(Int::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0i64;
        for (i, &aw) in a.iter().enumerate() {
            let x = aw as i64;
            let y = *b.get(i).unwrap_or(&0) as i64;
            let mut d = x - y - borrow;
            if d < 0 {
                d += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u32);
        }
        debug_assert_eq!(borrow, 0);
        out
    }

    /// Floor division with remainder: returns `(q, r)` with
    /// `self = q·d + r` and `0 ≤ r < |d|` … adjusted for signs so that
    /// `q = ⌊self / d⌋` (floor) and `r` has the sign of `d` or is zero.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn divrem_floor(&self, d: &Int) -> (Int, Int) {
        assert!(!d.is_zero(), "division by zero");
        let (q_mag, r_mag) = Self::divrem_mag(&self.mag, &d.mag);
        let mut q = Int::from_limbs(self.neg != d.neg, q_mag);
        let mut r = Int::from_limbs(self.neg, r_mag);
        // Truncated → floor adjustment.
        if !r.is_zero() && (r.neg != d.neg) {
            q = &q - &Int::one();
            r = &r + d;
        }
        (q, r)
    }

    /// Nearest-integer division: returns `(q, r)` with `self = q·d + r`
    /// and `-|d|/2 ≤ r < |d|/2` (ties round toward +∞ of q when `d > 0`,
    /// i.e. the remainder interval is half-open below).
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn divrem_round(&self, d: &Int) -> (Int, Int) {
        let (mut q, mut r) = self.divrem_floor(d);
        // r is in [0, |d|) with sign of d... for d > 0: r in [0, d).
        // Shift to (-d/2, d/2]: if 2r >= d, bump q.
        let two_r = r.shl(1);
        let da = d.abs();
        if Int::cmp_mag(&two_r.mag, &da.mag) != Ordering::Less && !two_r.neg {
            if d.neg {
                q = &q - &Int::one();
                r = &r + d;
            } else {
                q = &q + &Int::one();
                r = &r - d;
            }
        } else if two_r.neg && Int::cmp_mag(&two_r.mag, &da.mag) == Ordering::Greater {
            // r < -|d|/2 (can only happen for d < 0 floor remainders).
            if d.neg {
                q = &q + &Int::one();
                r = &r - d;
            } else {
                q = &q - &Int::one();
                r = &r + d;
            }
        }
        (q, r)
    }

    /// Magnitude long division (schoolbook, 32-bit limbs).
    fn divrem_mag(a: &[u32], d: &[u32]) -> (Vec<u32>, Vec<u32>) {
        if Self::cmp_mag(a, d) == Ordering::Less {
            return (vec![], a.to_vec());
        }
        if d.len() == 1 {
            // Fast single-limb path.
            let dd = d[0] as u64;
            let mut q = vec![0u32; a.len()];
            let mut rem = 0u64;
            for i in (0..a.len()).rev() {
                let cur = (rem << 32) | a[i] as u64;
                q[i] = (cur / dd) as u32;
                rem = cur % dd;
            }
            while q.last() == Some(&0) {
                q.pop();
            }
            return (q, if rem == 0 { vec![] } else { vec![rem as u32] });
        }
        // Bit-at-a-time restoring division (simple and safe; operand
        // sizes here are ≤ 16 limbs so this is plenty fast).
        let a_int = Int::from_limbs(false, a.to_vec());
        let bits = a_int.bits();
        let mut rem = Int::zero();
        let mut q = vec![0u32; a.len()];
        let d_int = Int::from_limbs(false, d.to_vec());
        for i in (0..bits).rev() {
            rem = rem.shl(1);
            if (a[i / 32] >> (i % 32)) & 1 == 1 {
                rem = &rem + &Int::one();
            }
            if Self::cmp_mag(&rem.mag, d) != Ordering::Less {
                rem = &rem - &d_int;
                q[i / 32] |= 1 << (i % 32);
            }
        }
        while q.last() == Some(&0) {
            q.pop();
        }
        (q, rem.mag)
    }

    /// `self mod m` in `[0, m)` for `m > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not positive.
    pub fn mod_positive(&self, m: &Int) -> Int {
        assert!(!m.is_zero() && !m.neg, "modulus must be positive");
        self.divrem_floor(m).1
    }

    /// Converts to `i64`.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit.
    pub fn to_i64(&self) -> i64 {
        let v = match self.mag.len() {
            0 => 0u64,
            1 => self.mag[0] as u64,
            2 => (self.mag[0] as u64) | ((self.mag[1] as u64) << 32),
            _ => panic!("Int does not fit in i64"),
        };
        if self.neg {
            assert!(v <= (i64::MAX as u64) + 1, "Int does not fit in i64");
            (v as i64).wrapping_neg()
        } else {
            assert!(v <= i64::MAX as u64, "Int does not fit in i64");
            v as i64
        }
    }
}

impl From<i64> for Int {
    fn from(v: i64) -> Int {
        let neg = v < 0;
        let mag = v.unsigned_abs();
        Int::from_limbs(neg, vec![mag as u32, (mag >> 32) as u32])
    }
}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Int) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Int) -> Ordering {
        match (self.neg, other.neg) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => Int::cmp_mag(&self.mag, &other.mag),
            (true, true) => Int::cmp_mag(&other.mag, &self.mag),
        }
    }
}

impl std::ops::Add for &Int {
    type Output = Int;

    fn add(self, rhs: &Int) -> Int {
        if self.neg == rhs.neg {
            Int::from_limbs(self.neg, Int::add_mag(&self.mag, &rhs.mag))
        } else {
            match Int::cmp_mag(&self.mag, &rhs.mag) {
                Ordering::Equal => Int::zero(),
                Ordering::Greater => Int::from_limbs(self.neg, Int::sub_mag(&self.mag, &rhs.mag)),
                Ordering::Less => Int::from_limbs(rhs.neg, Int::sub_mag(&rhs.mag, &self.mag)),
            }
        }
    }
}

impl std::ops::Sub for &Int {
    type Output = Int;

    fn sub(self, rhs: &Int) -> Int {
        self + &rhs.negated()
    }
}

impl std::ops::Mul for &Int {
    type Output = Int;

    fn mul(self, rhs: &Int) -> Int {
        if self.is_zero() || rhs.is_zero() {
            return Int::zero();
        }
        let mut mag = vec![0u32; self.mag.len() + rhs.mag.len()];
        for (i, &a) in self.mag.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in rhs.mag.iter().enumerate() {
                let t = mag[i + j] as u64 + (a as u64) * (b as u64) + carry;
                mag[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut k = i + rhs.mag.len();
            while carry != 0 {
                let t = mag[k] as u64 + carry;
                mag[k] = t as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        Int::from_limbs(self.neg != rhs.neg, mag)
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex().trim_start_matches('-'))?;
        Ok(())
    }
}

impl fmt::LowerHex for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> Int {
        Int::from(v)
    }

    #[test]
    fn construction_and_normalisation() {
        assert!(Int::zero().is_zero());
        assert_eq!(Int::from_limbs(true, vec![0, 0]), Int::zero());
        assert!(!Int::from_limbs(true, vec![0, 0]).is_negative());
        assert_eq!(int(5).bits(), 3);
        assert_eq!(int(-5).bits(), 3);
        assert_eq!(Int::zero().bits(), 0);
    }

    #[test]
    fn hex_and_dec_roundtrip() {
        let v =
            Int::from_hex("8000000000000000000000000000069d5bb915bcd46efb1ad5f173abdf").unwrap();
        assert_eq!(
            v.to_hex(),
            "8000000000000000000000000000069d5bb915bcd46efb1ad5f173abdf"
        );
        assert_eq!(Int::from_hex("-ff").unwrap(), int(-255));
        assert_eq!(Int::from_dec("-1024").unwrap(), int(-1024));
        assert_eq!(Int::from_dec("0").unwrap(), Int::zero());
        assert!(Int::from_hex("").is_err());
        assert!(Int::from_dec("12x").is_err());
    }

    #[test]
    fn add_sub_signs() {
        for a in [-37i64, -5, 0, 3, 111] {
            for b in [-44i64, -3, 0, 7, 120] {
                assert_eq!(&int(a) + &int(b), int(a + b), "{a}+{b}");
                assert_eq!(&int(a) - &int(b), int(a - b), "{a}-{b}");
                assert_eq!(&int(a) * &int(b), int(a * b), "{a}*{b}");
            }
        }
    }

    #[test]
    fn big_multiplication() {
        let a = Int::from_hex("ffffffffffffffffffffffffffffffff").unwrap();
        let b = &a * &a;
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1.
        let want = &(&Int::one().shl(256) - &Int::one().shl(129)) + &Int::one();
        assert_eq!(b, want);
    }

    #[test]
    fn shifts() {
        let v = Int::from_hex("123456789abcdef").unwrap();
        assert_eq!(v.shl(68).shr(68), v);
        assert_eq!(v.shl(1), &v + &v);
        assert_eq!(int(-8).shr(2), int(-2));
        assert_eq!(int(6).half_exact(), int(3));
    }

    #[test]
    #[should_panic(expected = "half_exact of an odd")]
    fn half_exact_rejects_odd() {
        let _ = int(7).half_exact();
    }

    #[test]
    fn floor_division_matches_i64_semantics() {
        for a in [-100i64, -37, -1, 0, 1, 37, 100] {
            for d in [-7i64, -3, 3, 7] {
                let (q, r) = int(a).divrem_floor(&int(d));
                assert_eq!(q, int(a.div_euclid(d) + adjust(a, d)), "{a} / {d}");
                // self = q*d + r
                assert_eq!(&(&q * &int(d)) + &r, int(a), "{a} = q*{d}+r");
                // floor: r has the sign of d (or zero)
                assert!(r.is_zero() || r.is_negative() == (d < 0), "{a} rem {d}");
            }
        }
        // div_euclid rounds toward -inf only for positive divisors;
        // floor division q = floor(a/d):
        fn adjust(a: i64, d: i64) -> i64 {
            let fl = (a as f64 / d as f64).floor() as i64;
            fl - a.div_euclid(d)
        }
    }

    #[test]
    fn round_division() {
        for a in -50i64..=50 {
            let d = 7i64;
            let (q, r) = int(a).divrem_round(&int(d));
            assert_eq!(&(&q * &int(d)) + &r, int(a), "value identity at {a}");
            let rv = r.to_i64();
            assert!((-d / 2 - 1) < rv && rv <= d / 2, "remainder {rv} for {a}");
            // q is the nearest integer.
            let exact = a as f64 / d as f64;
            assert!((q.to_i64() as f64 - exact).abs() <= 0.5 + 1e-9, "{a}");
        }
    }

    #[test]
    fn large_division() {
        let a = Int::from_hex("123456789abcdef0123456789abcdef0123456789abcdef").unwrap();
        let d = Int::from_hex("fedcba9876543210fedcba").unwrap();
        let (q, r) = a.divrem_floor(&d);
        assert_eq!(&(&q * &d) + &r, a);
        assert!(r >= Int::zero() && r < d);
    }

    #[test]
    fn mod_positive_is_canonical() {
        let m = int(97);
        assert_eq!(int(-1).mod_positive(&m), int(96));
        assert_eq!(int(97).mod_positive(&m), Int::zero());
        assert_eq!(int(100).mod_positive(&m), int(3));
    }

    #[test]
    fn low_bits_two_complement_view() {
        assert_eq!(int(13).low_bits(4), 13);
        assert_eq!(int(-1).low_bits(4), 15);
        assert_eq!(int(-8).low_bits(4), 8);
        assert_eq!(int(16).low_bits(4), 0);
        assert_eq!(Int::zero().low_bits(8), 0);
    }

    #[test]
    fn ordering() {
        assert!(int(-5) < int(-4));
        assert!(int(-1) < Int::zero());
        assert!(int(3) > int(2));
        assert!(int(-100) < int(100));
    }

    #[test]
    fn parity_and_to_i64() {
        assert!(int(7).is_odd());
        assert!(!int(8).is_odd());
        assert!(!Int::zero().is_odd());
        assert_eq!(int(-42).to_i64(), -42);
        assert_eq!(
            Int::from_hex("7fffffffffffffff").unwrap().to_i64(),
            i64::MAX
        );
    }

    #[test]
    fn be_bytes_padded_roundtrip() {
        let v = Int::from_hex("1020304a5b6c").unwrap();
        let bytes = v.to_be_bytes_padded(10);
        assert_eq!(bytes.len(), 10);
        assert_eq!(Int::from_be_bytes(&bytes), v);
        assert_eq!(Int::zero().to_be_bytes_padded(4), vec![0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "more than")]
    fn be_bytes_padded_rejects_overflow() {
        let _ = Int::from_hex("1ffff").unwrap().to_be_bytes_padded(2);
    }

    #[test]
    fn from_be_bytes_matches_hex() {
        let bytes = [0x01u8, 0x02, 0x03, 0x04];
        assert_eq!(
            Int::from_be_bytes(&bytes),
            Int::from_hex("1020304").unwrap()
        );
    }
}
