//! Point multiplication on sect233k1.
//!
//! The paper's two operations, plus its proposed future work:
//!
//! * [`mul_wtnaf`] — random-point kP with the left-to-right width-w
//!   TNAF method (the paper uses w = 4), mixed LD-affine additions and
//!   Frobenius in place of doublings;
//! * [`mul_g`] — fixed-point kG with w = 6 and a precomputed table of
//!   α_u·G (built once, lazily — "offline" in the paper's accounting,
//!   which charges kG zero TNAF precomputation);
//! * [`montgomery_ladder`] — the constant-time x-only ladder the paper's
//!   §5 names as the fix for its timing-variability caveat.

use crate::curve::{generator, order, Affine};
use crate::int::Int;
use crate::projective::LdPoint;
use crate::tnaf;
use gf2m::Fe;
use std::sync::OnceLock;

/// Window width the paper uses for random-point multiplication.
pub const KP_WINDOW: u32 = 4;

/// Window width the paper uses for fixed-point multiplication.
pub const KG_WINDOW: u32 = 6;

/// Computes the affine precomputation table for `p`: the points α_u·p
/// for odd u = 1, 3, …, 2^(w−1) − 1 (index i holds u = 2i + 1).
pub fn precompute_table(p: &Affine, w: u32) -> Vec<Affine> {
    let count = 1usize << (w - 2);
    let tau_p = p.frobenius();
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let u = 2 * i as i64 + 1;
        let (beta, gamma) = tnaf::alpha(u, w);
        // α_u·p = β·p + γ·τ(p), with |β|, |γ| small.
        let term = |c: &Int, base: &Affine| {
            let m = base.mul_binary(&c.abs());
            if c.is_negative() {
                m.negated()
            } else {
                m
            }
        };
        out.push(term(&beta, p).add(&term(&gamma, &tau_p)));
    }
    out
}

/// Evaluates a τ-adic digit string against a precomputed table
/// (most-significant digit first processing), leaving the result in
/// LD projective coordinates so batch callers can defer the affine
/// conversion — and its inversion — to a Montgomery batch boundary.
fn eval_wtnaf_proj(digits: &[i8], table: &[Affine]) -> LdPoint {
    let mut acc = LdPoint::INFINITY;
    for &d in digits.iter().rev() {
        acc = acc.frobenius();
        if d > 0 {
            acc = acc.add_affine(&table[(d as usize) / 2]);
        } else if d < 0 {
            acc = acc.add_affine(&table[(-d as usize) / 2].negated());
        }
    }
    acc
}

/// Random-point multiplication k·P by the left-to-right width-w TNAF
/// method (Guide to ECC Alg. 3.70): the paper's kP configuration with
/// `w = 4`.
///
/// The precomputation table is served from the process-wide
/// [`crate::cache`] — repeated multiplications against the same base
/// point skip `TNAF_Precomputation` entirely.
///
/// # Panics
///
/// Panics if `k` is negative or `w` is outside 2..=8.
pub fn mul_wtnaf(p: &Affine, k: &Int, w: u32) -> Affine {
    mul_wtnaf_proj(p, k, w).to_affine()
}

/// [`mul_wtnaf`] without the final affine conversion: the result stays
/// in LD coordinates for a later [`crate::projective::batch_to_affine`].
pub fn mul_wtnaf_proj(p: &Affine, k: &Int, w: u32) -> LdPoint {
    assert!(!k.is_negative(), "scalar must be non-negative");
    if k.is_zero() || p.is_infinity() {
        return LdPoint::INFINITY;
    }
    let digits = tnaf::recode(k, w);
    let table = crate::cache::table_for(p, w);
    eval_wtnaf_proj(&digits, &table)
}

/// Plain-TNAF multiplication (w = 1): no precomputation beyond ±P.
pub fn mul_tnaf(p: &Affine, k: &Int) -> Affine {
    assert!(!k.is_negative(), "scalar must be non-negative");
    if k.is_zero() || p.is_infinity() {
        return Affine::Infinity;
    }
    let digits = tnaf::recode(k, 1);
    let mut acc = LdPoint::INFINITY;
    let neg = p.negated();
    for &d in digits.iter().rev() {
        acc = acc.frobenius();
        if d == 1 {
            acc = acc.add_affine(p);
        } else if d == -1 {
            acc = acc.add_affine(&neg);
        }
    }
    acc.to_affine()
}

/// The fixed-point table α_u·G for w = 6 (2⁴ = 16 points), built once.
pub fn generator_table() -> &'static [Affine] {
    static TABLE: OnceLock<Vec<Affine>> = OnceLock::new();
    TABLE.get_or_init(|| precompute_table(&generator(), KG_WINDOW))
}

/// Fixed-point multiplication k·G with w = 6 and the precomputed
/// generator table — the paper's kG configuration.
///
/// # Panics
///
/// Panics if `k` is negative.
pub fn mul_g(k: &Int) -> Affine {
    mul_g_proj(k).to_affine()
}

/// [`mul_g`] without the final affine conversion.
pub fn mul_g_proj(k: &Int) -> LdPoint {
    assert!(!k.is_negative(), "scalar must be non-negative");
    if k.is_zero() {
        return LdPoint::INFINITY;
    }
    let digits = tnaf::recode(k, KG_WINDOW);
    eval_wtnaf_proj(&digits, generator_table())
}

/// Simultaneous double multiplication u₁·G + u₂·Q by interleaved
/// width-w TNAF evaluation (the τ-adic Shamir–Strauss trick): one shared
/// Frobenius pass instead of two, so an ECDSA verification costs barely
/// more than a single random-point multiplication.
///
/// # Panics
///
/// Panics if either scalar is negative.
pub fn double_multiply(u1: &Int, u2: &Int, q: &Affine) -> Affine {
    double_multiply_proj(u1, u2, q).to_affine()
}

/// [`double_multiply`] without the final affine conversion — the batch
/// verifier's workhorse: all the point arithmetic, none of the
/// inversions.
pub fn double_multiply_proj(u1: &Int, u2: &Int, q: &Affine) -> LdPoint {
    assert!(
        !u1.is_negative() && !u2.is_negative(),
        "scalars must be non-negative"
    );
    if q.is_infinity() || u2.is_zero() {
        return mul_g_proj(u1);
    }
    if u1.is_zero() {
        return mul_wtnaf_proj(q, u2, KP_WINDOW);
    }
    let d1 = tnaf::recode(u1, KG_WINDOW);
    let d2 = tnaf::recode(u2, KP_WINDOW);
    let table_g = generator_table();
    let table_q = crate::cache::table_for(q, KP_WINDOW);
    let len = d1.len().max(d2.len());
    let mut acc = LdPoint::INFINITY;
    for i in (0..len).rev() {
        acc = acc.frobenius();
        if let Some(&d) = d1.get(i) {
            if d > 0 {
                acc = acc.add_affine(&table_g[(d as usize) / 2]);
            } else if d < 0 {
                acc = acc.add_affine(&table_g[(-d as usize) / 2].negated());
            }
        }
        if let Some(&d) = d2.get(i) {
            if d > 0 {
                acc = acc.add_affine(&table_q[(d as usize) / 2]);
            } else if d < 0 {
                acc = acc.add_affine(&table_q[(-d as usize) / 2].negated());
            }
        }
    }
    acc
}

/// x-only Montgomery doubling: (X, Z) → (X⁴ + b·Z⁴, X²·Z²), b = 1.
fn mdouble(x: Fe, z: Fe) -> (Fe, Fe) {
    let x2 = x.square();
    let z2 = z.square();
    (x2.square() + z2.square(), x2 * z2)
}

/// x-only Montgomery differential addition with base x-coordinate `xp`:
/// Z = (X1·Z2 + X2·Z1)², X = xp·Z + (X1·Z2)(X2·Z1).
fn madd(x1: Fe, z1: Fe, x2: Fe, z2: Fe, xp: Fe) -> (Fe, Fe) {
    let t = x1 * z2;
    let u = x2 * z1;
    let z = (t + u).square();
    (xp * z + t * u, z)
}

/// Constant-time Montgomery-ladder multiplication (López-Dahab 1999) —
/// the algorithm the paper's §5 proposes to close its power-analysis
/// gap. Processes a fixed number of ladder steps independent of `k` by
/// lifting the scalar to `k + n` or `k + 2n` (both 233 bits + 1).
///
/// # Panics
///
/// Panics if `k` is negative or `p` is the point at infinity / the
/// 2-torsion point (x = 0) — neither occurs for points in the
/// prime-order subgroup.
pub fn montgomery_ladder(p: &Affine, k: &Int) -> Affine {
    assert!(!k.is_negative(), "scalar must be non-negative");
    let (xp, yp) = match *p {
        Affine::Infinity => panic!("ladder needs a finite base point"),
        Affine::Point { x, y } => (x, y),
    };
    assert!(!xp.is_zero(), "ladder needs a point of odd order");

    // Fix the scalar length: k' = k + n or k + 2n, both ≡ k (mod n) and
    // exactly 233 bits, so every invocation runs 232 ladder steps.
    let n = order();
    let k1 = k.mod_positive(&n);
    if k1.is_zero() {
        return Affine::Infinity;
    }
    let lifted = {
        let t = &k1 + &n;
        if t.bits() == 233 {
            t
        } else {
            &t + &n
        }
    };
    debug_assert_eq!(lifted.bits(), 233);

    // R0 = P, R1 = 2P (x-only).
    let (mut x1, mut z1) = (xp, Fe::ONE);
    let (mut x2, mut z2) = mdouble(xp, Fe::ONE);
    for i in (0..232).rev() {
        let bit = (lifted.limbs()[i / 32] >> (i % 32)) & 1;
        if bit == 1 {
            let (ax, az) = madd(x1, z1, x2, z2, xp);
            let (dx, dz) = mdouble(x2, z2);
            x1 = ax;
            z1 = az;
            x2 = dx;
            z2 = dz;
        } else {
            let (ax, az) = madd(x2, z2, x1, z1, xp);
            let (dx, dz) = mdouble(x1, z1);
            x2 = ax;
            z2 = az;
            x1 = dx;
            z1 = dz;
        }
    }

    // Recover the y-coordinate (López-Dahab 1999).
    if z1.is_zero() {
        return Affine::Infinity;
    }
    if z2.is_zero() {
        // kP = −P branch: result x = xp, y = xp + yp.
        return Affine::Point { x: xp, y: xp + yp };
    }
    let x1a = x1 * z1.invert().expect("z1 != 0");
    let x2a = x2 * z2.invert().expect("z2 != 0");
    let t =
        (x1a + xp) * ((x1a + xp) * (x2a + xp) + xp.square() + yp) * xp.invert().expect("x != 0")
            + yp;
    Affine::Point { x: x1a, y: t }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(seed: u64) -> Int {
        let hex = format!("{:016x}", seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Int::from_hex(&hex.repeat(4))
            .unwrap()
            .mod_positive(&order())
    }

    #[test]
    fn wtnaf_matches_binary_for_small_scalars() {
        let g = generator();
        for k in 0..32i64 {
            let ki = Int::from(k);
            assert_eq!(mul_wtnaf(&g, &ki, 4), g.mul_binary(&ki), "k = {k}");
        }
    }

    #[test]
    fn wtnaf_matches_binary_for_random_scalars() {
        let g = generator();
        for seed in 1..8u64 {
            let k = scalar(seed);
            let want = g.mul_binary(&k);
            for w in [2u32, 4, 5, 6] {
                assert_eq!(mul_wtnaf(&g, &k, w), want, "seed {seed} w {w}");
            }
        }
    }

    #[test]
    fn wtnaf_on_non_generator_points() {
        let g = generator();
        let p = g.mul_binary(&Int::from(0xABCDEFi64));
        for seed in 1..4u64 {
            let k = scalar(seed + 40);
            assert_eq!(mul_wtnaf(&p, &k, 4), p.mul_binary(&k), "seed {seed}");
        }
    }

    #[test]
    fn plain_tnaf_matches() {
        let g = generator();
        for seed in 1..4u64 {
            let k = scalar(seed + 80);
            assert_eq!(mul_tnaf(&g, &k), g.mul_binary(&k));
        }
    }

    #[test]
    fn mul_g_matches_wtnaf() {
        for seed in 1..6u64 {
            let k = scalar(seed + 7);
            assert_eq!(mul_g(&k), generator().mul_binary(&k), "seed {seed}");
        }
    }

    #[test]
    fn edge_scalars() {
        let g = generator();
        assert!(mul_wtnaf(&g, &Int::zero(), 4).is_infinity());
        assert!(mul_g(&Int::zero()).is_infinity());
        assert_eq!(mul_g(&Int::one()), g);
        assert!(mul_g(&order()).is_infinity(), "nG = O");
        assert_eq!(mul_g(&(&order() - &Int::one())), g.negated());
        assert_eq!(
            mul_g(&(&order() + &Int::one())),
            g,
            "(n+1)G = G (reduction works past n)"
        );
    }

    #[test]
    fn precompute_table_entries_are_on_curve() {
        let table = precompute_table(&generator(), 4);
        assert_eq!(table.len(), 4);
        assert_eq!(table[0], generator(), "α_1·G = G");
        for (i, p) in table.iter().enumerate() {
            assert!(p.is_on_curve(), "entry {i}");
            assert!(!p.is_infinity(), "entry {i} must be finite");
        }
    }

    #[test]
    fn generator_table_has_16_entries() {
        assert_eq!(generator_table().len(), 16);
    }

    #[test]
    fn ladder_matches_binary() {
        let g = generator();
        for seed in 1..8u64 {
            let k = scalar(seed + 100);
            assert_eq!(montgomery_ladder(&g, &k), g.mul_binary(&k), "seed {seed}");
        }
    }

    #[test]
    fn ladder_small_and_edge_scalars() {
        let g = generator();
        for k in 1..16i64 {
            let ki = Int::from(k);
            assert_eq!(montgomery_ladder(&g, &ki), g.mul_binary(&ki), "k = {k}");
        }
        assert!(montgomery_ladder(&g, &Int::zero()).is_infinity());
        assert!(montgomery_ladder(&g, &order()).is_infinity());
        assert_eq!(
            montgomery_ladder(&g, &(&order() - &Int::one())),
            g.negated(),
            "(n−1)P = −P exercises the z2 = 0 recovery branch"
        );
    }

    #[test]
    fn ladder_on_random_points() {
        let p = generator().mul_binary(&Int::from(987654321i64));
        for seed in 1..4u64 {
            let k = scalar(seed + 200);
            assert_eq!(montgomery_ladder(&p, &k), p.mul_binary(&k));
        }
    }

    #[test]
    fn double_multiply_matches_separate_multiplications() {
        let q = generator().mul_binary(&Int::from(777i64));
        for seed in 1..5u64 {
            let u1 = scalar(seed + 300);
            let u2 = scalar(seed + 400);
            let separate = mul_g(&u1).add(&mul_wtnaf(&q, &u2, 4));
            assert_eq!(double_multiply(&u1, &u2, &q), separate, "seed {seed}");
        }
    }

    #[test]
    fn double_multiply_edge_cases() {
        let q = generator().mul_binary(&Int::from(99i64));
        let k = scalar(500);
        assert_eq!(double_multiply(&Int::zero(), &k, &q), mul_wtnaf(&q, &k, 4));
        assert_eq!(double_multiply(&k, &Int::zero(), &q), mul_g(&k));
        assert_eq!(
            double_multiply(&k, &k, &Affine::Infinity),
            mul_g(&k),
            "infinity Q degenerates to a single multiplication"
        );
        // u1·G + u2·Q = O when u2·Q = −u1·G.
        let u1 = Int::from(5i64);
        let g5 = mul_g(&u1);
        let neg_scalar = (&order() - &u1).mod_positive(&order());
        assert!(double_multiply(&u1, &neg_scalar, &generator()).is_infinity());
        let _ = g5;
    }

    #[test]
    fn proj_variants_match_affine_entry_points() {
        let q = generator().mul_binary(&Int::from(31337i64));
        for seed in 1..5u64 {
            let k = scalar(seed + 600);
            let u = scalar(seed + 700);
            assert_eq!(mul_wtnaf_proj(&q, &k, 4).to_affine(), mul_wtnaf(&q, &k, 4));
            assert_eq!(mul_g_proj(&k).to_affine(), mul_g(&k));
            assert_eq!(
                double_multiply_proj(&k, &u, &q).to_affine(),
                double_multiply(&k, &u, &q)
            );
        }
        assert!(mul_wtnaf_proj(&q, &Int::zero(), 4).is_infinity());
        assert!(mul_g_proj(&Int::zero()).is_infinity());
    }

    #[test]
    fn repeated_base_multiplications_hit_the_table_cache() {
        let p = generator().mul_binary(&Int::from(0xCAFE_F00Di64));
        let k1 = scalar(801);
        let k2 = scalar(802);
        let _ = mul_wtnaf(&p, &k1, 4); // populate
        let before = crate::cache::stats();
        let got = mul_wtnaf(&p, &k2, 4);
        let after = crate::cache::stats();
        assert!(after.hits > before.hits, "second kP on same base must hit");
        assert_eq!(got, p.mul_binary(&k2));
    }

    #[test]
    fn multiplication_is_a_homomorphism() {
        // (a + b)G = aG + bG through the fast paths.
        let a = scalar(11);
        let b = scalar(22);
        let sum = (&a + &b).mod_positive(&order());
        assert_eq!(mul_g(&a).add(&mul_g(&b)), mul_g(&sum));
    }
}
