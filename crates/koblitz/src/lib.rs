//! The sect233k1 (NIST K-233) Koblitz curve layer of the DAC'14
//! reproduction.
//!
//! Everything the paper's point multiplication needs, built from
//! scratch on top of the [`gf2m`] field:
//!
//! * [`curve`] — curve constants and affine arithmetic (the reference
//!   group law);
//! * [`projective`] — López-Dahab projective coordinates: doubling,
//!   mixed addition and the Frobenius map (the coordinate system of
//!   §4.2);
//! * [`int`] — a small signed bignum for scalars and recoding;
//! * [`tnaf`] — τ-adic NAF machinery: Solinas partial reduction
//!   (`partmod δ`), plain TNAF and width-w TNAF digit generation, and
//!   the α_u representatives (computed, not tabulated);
//! * [`mul`] — point multiplication: wTNAF random-point kP (w = 4),
//!   fixed-point kG (w = 6, precomputed table), plus the
//!   Montgomery-ladder variant the paper's §5 proposes as future work;
//! * [`cache`] — a bounded LRU of wTNAF precomputation tables so
//!   repeated kP against the same base point skips the table build;
//! * [`scalar`] — arithmetic modulo the group order (for ECDH/ECDSA);
//! * [`modeled`] — the same point multiplication driven through
//!   [`gf2m::modeled::ModeledField`], with every cycle attributed to the
//!   paper's Table-7 categories.
//!
//! # Example
//!
//! ```
//! use koblitz::{curve::generator, int::Int, mul};
//!
//! let k = Int::from_hex("123456789abcdef123456789abcdef")?;
//! let slow = generator().mul_binary(&k);
//! let fast = mul::mul_wtnaf(&generator(), &k, 4);
//! assert_eq!(slow, fast);
//! # Ok::<(), koblitz::int::ParseIntError>(())
//! ```

pub mod cache;
pub mod curve;
pub mod int;
pub mod modeled;
pub mod mul;
pub mod projective;
pub mod scalar;
pub mod tnaf;

pub use curve::{generator, order, Affine};
pub use int::Int;
pub use projective::{batch_to_affine, LdPoint};
pub use scalar::Scalar;

/// Field extension degree m = 233 (re-exported for recoding bounds).
pub const fn curve_m() -> usize {
    gf2m::M
}
