//! López-Dahab projective coordinates (x = X/Z, y = Y/Z²).
//!
//! The coordinate system of the paper's implementations: point doubling
//! costs 3M + 5S, mixed LD+affine addition 7M + 4S (a = 0, b = 1), the
//! Frobenius map 3S, and converting back to affine costs one inversion —
//! the single inversion that the paper's Table 7 charges per point
//! multiplication.

use crate::curve::Affine;
use gf2m::Fe;

/// A point in López-Dahab projective coordinates. `Z = 0` encodes the
/// point at infinity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdPoint {
    /// X coordinate (x = X/Z).
    pub x: Fe,
    /// Y coordinate (y = Y/Z²).
    pub y: Fe,
    /// Projective denominator.
    pub z: Fe,
}

impl LdPoint {
    /// The point at infinity.
    pub const INFINITY: LdPoint = LdPoint {
        x: Fe::ONE,
        y: Fe::ZERO,
        z: Fe::ZERO,
    };

    /// Lifts an affine point (Z = 1).
    pub fn from_affine(p: &Affine) -> LdPoint {
        match *p {
            Affine::Infinity => LdPoint::INFINITY,
            Affine::Point { x, y } => LdPoint { x, y, z: Fe::ONE },
        }
    }

    /// Whether this encodes the point at infinity.
    pub fn is_infinity(&self) -> bool {
        self.z.is_zero()
    }

    /// Converts back to affine: x = X·Z⁻¹, y = Y·(Z⁻¹)². This is the
    /// one place a point multiplication pays a field inversion.
    pub fn to_affine(self) -> Affine {
        if self.is_infinity() {
            return Affine::Infinity;
        }
        let zi = self.z.invert().expect("finite point has Z != 0");
        let x = self.x * zi;
        let y = self.y * zi.square();
        Affine::Point { x, y }
    }

    /// Point doubling, LD coordinates, a = 0, b = 1
    /// (Guide to ECC Alg. 3.24 specialised): 3M + 5S.
    #[must_use]
    pub fn double(&self) -> LdPoint {
        if self.is_infinity() {
            return *self;
        }
        let t1 = self.z.square(); // Z1²
        let t2 = self.x.square(); // X1²
        let z3 = t1 * t2; // X1²·Z1²
        let x2sq = t2.square(); // X1⁴
        let bz4 = t1.square(); // b·Z1⁴ (b = 1)
        let x3 = x2sq + bz4;
        if x3.is_zero() {
            // The doubled point is 2-torsion-adjacent: X3 = 0 means the
            // result is the point (0, √b) or infinity on the next step;
            // the formulas remain valid, keep going.
        }
        let y1sq = self.y.square();
        // Y3 = b·Z1⁴·Z3 + X3·(a·Z3 + Y1² + b·Z1⁴), a = 0.
        let y3 = bz4 * z3 + x3 * (y1sq + bz4);
        LdPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition: `self` (LD) + `other` (affine), a = 0
    /// (Guide to ECC Alg. 3.25 specialised): 7M + 4S.
    ///
    /// Falls back to doubling / infinity handling for the degenerate
    /// cases (P = ±Q, either infinity).
    #[must_use]
    pub fn add_affine(&self, other: &Affine) -> LdPoint {
        let (x2, y2) = match *other {
            Affine::Infinity => return *self,
            Affine::Point { x, y } => (x, y),
        };
        if self.is_infinity() {
            return LdPoint::from_affine(other);
        }
        let z1sq = self.z.square();
        let a = self.y + y2 * z1sq; // A = Y1 + y2·Z1²
        let b = self.x + x2 * self.z; // B = X1 + x2·Z1
        if b.is_zero() {
            // x-coordinates match: either P = Q (A = 0 → double) or
            // P = −Q (→ infinity).
            return if a.is_zero() {
                self.double()
            } else {
                LdPoint::INFINITY
            };
        }
        let c = self.z * b; // C = Z1·B
        let z3 = c.square();
        let d = b.square() * c; // D = B²·(C + a·Z1²), a = 0
        let e = a * c;
        let x3 = a.square() + d + e;
        let f = x3 + x2 * z3;
        let g = (x2 + y2) * z3.square();
        let y3 = (e + z3) * f + g;
        LdPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// The Frobenius endomorphism in LD coordinates:
    /// (X, Y, Z) → (X², Y², Z²) — three squarings, no multiplication.
    #[must_use]
    pub fn frobenius(&self) -> LdPoint {
        LdPoint {
            x: self.x.square(),
            y: self.y.square(),
            z: self.z.square(),
        }
    }

    /// Point negation: −(X, Y, Z) = (X, X·Z + Y, Z). Costs 1M.
    #[must_use]
    pub fn negated(&self) -> LdPoint {
        LdPoint {
            x: self.x,
            y: self.x * self.z + self.y,
            z: self.z,
        }
    }
}

impl From<Affine> for LdPoint {
    fn from(p: Affine) -> LdPoint {
        LdPoint::from_affine(&p)
    }
}

/// Converts a batch of LD points to affine with **one** field inversion
/// total (Montgomery's trick, [`gf2m::batch::batch_invert`]): points at
/// infinity come out as [`Affine::Infinity`] and do not disturb their
/// neighbours.
///
/// This is the throughput path: N conversions cost 1 inversion +
/// 3(N−1) + 2N multiplications instead of N inversions + 2N
/// multiplications, and inversion is ~28× a multiplication on the
/// modeled tier (Table 7). Batches of at least
/// [`gf2m::bitsliced::CROSSOVER`] points additionally run both the
/// inversion and the coordinate products through the 64-lane bitsliced
/// backend (same values, fewer host cycles; toggled by
/// [`gf2m::bitsliced::set_bitsliced_enabled`]).
pub fn batch_to_affine(points: &[LdPoint]) -> Vec<Affine> {
    let mut zs: Vec<Fe> = points.iter().map(|p| p.z).collect();
    gf2m::batch::batch_invert(&mut zs);
    if gf2m::bitsliced::bitsliced_enabled() && points.len() >= gf2m::bitsliced::CROSSOVER {
        return finish_affine_bitsliced(points, &zs);
    }
    points
        .iter()
        .zip(&zs)
        .map(|(p, &zi)| {
            if zi.is_zero() {
                Affine::Infinity
            } else {
                Affine::Point {
                    x: p.x * zi,
                    y: p.y * zi.square(),
                }
            }
        })
        .collect()
}

/// The coordinate products of [`batch_to_affine`] in lane space: per
/// 64-point chunk, two bitsliced multiplications and one bitsliced
/// squaring (x·Z⁻¹, (Z⁻¹)², y·(Z⁻¹)²) replace 3·64 portable
/// multiplications and 64 squarings. Infinity points have Z⁻¹ = 0
/// (the zero-aware batch inversion keeps zeros in place), their lanes
/// multiply to zero, and the assembly step maps them back to
/// [`Affine::Infinity`] — the values of the finite points are
/// bit-identical to the portable path.
fn finish_affine_bitsliced(points: &[LdPoint], zis: &[Fe]) -> Vec<Affine> {
    use gf2m::bitsliced::{transpose_in, MulScratch, LANES};
    let mut out = Vec::with_capacity(points.len());
    let mut ws = MulScratch::new();
    for (pts, zi) in points.chunks(LANES).zip(zis.chunks(LANES)) {
        let xs: Vec<Fe> = pts.iter().map(|p| p.x).collect();
        let ys: Vec<Fe> = pts.iter().map(|p| p.y).collect();
        let bzi = transpose_in(zi);
        let ax = transpose_in(&xs)
            .mul_with(&bzi, &mut ws)
            .transpose_out(pts.len());
        let ay = transpose_in(&ys)
            .mul_with(&bzi.sqr(), &mut ws)
            .transpose_out(pts.len());
        for ((zi, x), y) in zi.iter().zip(ax).zip(ay) {
            out.push(if zi.is_zero() {
                Affine::Infinity
            } else {
                Affine::Point { x, y }
            });
        }
    }
    out
}

/// Cost breakdown of one counted-tier batch affine conversion.
#[derive(Debug, Clone, Default)]
pub struct CountedBatchConversion {
    /// The affine points, identical to [`batch_to_affine`].
    pub points: Vec<Affine>,
    /// Operations spent inside the (single) EEA inversion.
    pub inv: gf2m::Tally,
    /// Operations spent in multiplications (Montgomery sweep plus the
    /// 3 per-point coordinate products x·Z⁻¹, (Z⁻¹)², y·(Z⁻¹)²).
    pub mul: gf2m::Tally,
    /// Field inversions performed.
    pub inversions: u64,
    /// Field multiplications performed.
    pub muls: u64,
}

impl CountedBatchConversion {
    /// Total tally (inversion + multiplications).
    pub fn total(&self) -> gf2m::Tally {
        self.inv.plus(self.mul)
    }
}

/// [`batch_to_affine`] on the counted tier: the same values, with the
/// inversion and multiplication costs tallied separately so the
/// amortisation claim can be checked against per-point
/// [`gf2m::counted::inv_eea`] conversions.
pub fn batch_to_affine_counted(points: &[LdPoint]) -> CountedBatchConversion {
    let zs: Vec<Fe> = points.iter().map(|p| p.z).collect();
    let batch = gf2m::batch::batch_invert_counted(&zs);
    let mut out = CountedBatchConversion {
        inv: batch.inv,
        mul: batch.mul,
        inversions: batch.inversions,
        muls: batch.muls,
        ..CountedBatchConversion::default()
    };
    let mut cmul = |a: Fe, b: Fe| {
        let p = gf2m::counted::mul_ld_fixed(a, b);
        out.mul = out.mul.plus(p.total());
        out.muls += 1;
        p.value
    };
    out.points = points
        .iter()
        .zip(&batch.values)
        .map(|(p, &zi)| {
            if zi.is_zero() {
                Affine::Infinity
            } else {
                let x = cmul(p.x, zi);
                let zi2 = cmul(zi, zi);
                let y = cmul(p.y, zi2);
                Affine::Point { x, y }
            }
        })
        .collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::generator;
    use crate::int::Int;

    fn multiple(k: i64) -> Affine {
        generator().mul_binary(&Int::from(k))
    }

    #[test]
    fn roundtrip_affine() {
        let g = generator();
        assert_eq!(LdPoint::from_affine(&g).to_affine(), g);
        assert_eq!(
            LdPoint::from_affine(&Affine::Infinity).to_affine(),
            Affine::Infinity
        );
    }

    #[test]
    fn double_matches_affine() {
        for k in 1..20i64 {
            let p = multiple(k);
            let got = LdPoint::from_affine(&p).double().to_affine();
            assert_eq!(got, p.double(), "2·({k}G)");
        }
    }

    #[test]
    fn mixed_add_matches_affine() {
        for k in 1..15i64 {
            let p = multiple(k);
            let q = multiple(k + 17);
            let got = LdPoint::from_affine(&p).add_affine(&q).to_affine();
            assert_eq!(got, p.add(&q), "{k}G + {}G", k + 17);
        }
    }

    #[test]
    fn mixed_add_degenerate_cases() {
        let g = generator();
        let gp = LdPoint::from_affine(&g);
        // P + P → doubling path.
        assert_eq!(gp.add_affine(&g).to_affine(), g.double());
        // P + (−P) → infinity.
        assert!(gp.add_affine(&g.negated()).is_infinity());
        // P + O and O + P.
        assert_eq!(gp.add_affine(&Affine::Infinity).to_affine(), g);
        assert_eq!(LdPoint::INFINITY.add_affine(&g).to_affine(), g);
    }

    #[test]
    fn add_after_double_has_nontrivial_z() {
        // Exercise the mixed addition with Z1 ≠ 1.
        let g = generator();
        let p5 = multiple(5);
        let acc = LdPoint::from_affine(&g).double().double(); // 4G, Z != 1
        assert_eq!(acc.add_affine(&p5).to_affine(), multiple(9));
    }

    #[test]
    fn frobenius_matches_affine_frobenius() {
        let p = multiple(7);
        let acc = LdPoint::from_affine(&generator()).double().add_affine(&p); // Z != 1
        let via_ld = acc.frobenius().to_affine();
        let via_affine = acc.to_affine().frobenius();
        assert_eq!(via_ld, via_affine);
    }

    #[test]
    fn negation_matches_affine() {
        let p = multiple(11);
        let acc = LdPoint::from_affine(&p).double(); // Z != 1
        assert_eq!(acc.negated().to_affine(), acc.to_affine().negated());
        assert!(LdPoint::INFINITY.negated().is_infinity());
    }

    #[test]
    fn batch_to_affine_matches_pointwise() {
        // A mix of Z = 1, Z ≠ 1 and infinity points.
        let mut pts = vec![LdPoint::INFINITY];
        for k in 1..20i64 {
            let mut p = LdPoint::from_affine(&multiple(k));
            for _ in 0..(k % 4) {
                p = p.double(); // scrub Z away from 1
            }
            pts.push(p);
            if k % 7 == 0 {
                pts.push(LdPoint::INFINITY);
            }
        }
        let batch = batch_to_affine(&pts);
        assert_eq!(batch.len(), pts.len());
        for (i, (b, p)) in batch.iter().zip(&pts).enumerate() {
            assert_eq!(*b, p.to_affine(), "point {i}");
        }
        // Counted tier produces identical points.
        let counted = batch_to_affine_counted(&pts);
        assert_eq!(counted.points, batch);
        assert_eq!(counted.inversions, 1);
    }

    #[test]
    fn batch_to_affine_empty_and_all_infinity() {
        assert!(batch_to_affine(&[]).is_empty());
        let all_inf = batch_to_affine(&[LdPoint::INFINITY; 3]);
        assert!(all_inf.iter().all(Affine::is_infinity));
        let counted = batch_to_affine_counted(&[LdPoint::INFINITY; 3]);
        assert_eq!(counted.inversions, 0);
        assert_eq!(counted.muls, 0);
    }

    #[test]
    fn batch_of_64_points_spends_an_eighth_of_the_inversion_cycles() {
        // Acceptance criterion: batch affine conversion of 64 points on
        // the counted tier spends ≤ 1/8 the inversion cycles of 64
        // individual inversions.
        let pts: Vec<LdPoint> = (1..=64i64)
            .map(|k| LdPoint::from_affine(&multiple(k)).double())
            .collect();
        let batch = batch_to_affine_counted(&pts);
        let individual: u64 = pts
            .iter()
            .map(|p| gf2m::counted::inv_eea(p.z).unwrap().tally.cycles())
            .sum();
        assert!(
            batch.inv.cycles() * 8 <= individual,
            "batch inversion cycles {} vs 1/8 bound {}",
            batch.inv.cycles(),
            individual / 8
        );
        // The full batch conversion (inversion + all multiplications)
        // still costs less than the inversions alone of the one-by-one
        // path.
        assert!(batch.total().cycles() < individual);
    }

    #[test]
    fn chained_operations_stay_on_curve() {
        let g = generator();
        let mut acc = LdPoint::from_affine(&g);
        for k in 2..12i64 {
            acc = acc.double().add_affine(&multiple(k));
            assert!(acc.to_affine().is_on_curve(), "step {k}");
        }
    }
}
