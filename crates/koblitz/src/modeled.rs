//! Machine-modeled point multiplication: the paper's kP and kG running
//! on the [`m0plus`] cost model with Table-7 category attribution.
//!
//! The *control flow* (which field operation happens when) is driven
//! from Rust, but every field operation, support copy and per-digit
//! dispatch executes as charged instructions on the machine inside
//! [`gf2m::modeled::ModeledField`], so cycle totals are measured from
//! executed instruction streams. Category assignment follows the paper:
//!
//! * scalar recoding → *TNAF Representation*;
//! * the per-call window-table (α_u·P) construction, including its
//!   field operations and the simultaneous-inversion normalisation →
//!   *TNAF Precomputation* (zero for kG, whose table is offline);
//! * field multiplications → *Multiply*, with the per-multiplication
//!   López-Dahab look-up-table generation split into
//!   *Multiply Precomputation*;
//! * squarings → *Square*; the final conversion's inversion →
//!   *Inversion*; copies, digit dispatch and point bookkeeping →
//!   *Support functions*.

use crate::curve::Affine;
use crate::int::Int;
use crate::mul::{KG_WINDOW, KP_WINDOW};
use crate::tnaf;
use gf2m::modeled::{FeSlot, ModeledField, Tier};
use gf2m::Fe;
use m0plus::{Backend, Category, Cond, Reg, RunReport};

/// A López-Dahab projective point held in machine RAM.
#[derive(Debug, Clone, Copy)]
struct PointSlots {
    x: FeSlot,
    y: FeSlot,
    z: FeSlot,
}

/// An affine point held in machine RAM.
#[derive(Debug, Clone, Copy)]
struct AffineSlots {
    x: FeSlot,
    y: FeSlot,
}

/// Result of one modeled point multiplication.
#[derive(Debug, Clone)]
pub struct PointMulRun {
    /// The computed point (verified against the portable tier).
    pub result: Affine,
    /// Cycle/energy/category report of the run.
    pub report: RunReport,
}

/// Individually toggleable fault-detection countermeasures for
/// [`ModeledMul::kp_hardened`]. Every enabled check runs as *charged*
/// instructions (attributed to *Support functions*), so its
/// cycle/energy overhead is measured by the cost model rather than
/// estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Hardening {
    /// Verify the base point satisfies the curve equation before
    /// multiplying (the invalid-point-attack gate).
    pub validate_base: bool,
    /// Reject a point-at-infinity result (the degenerate output a
    /// glitched accumulator or a small-order input produces).
    pub reject_infinity: bool,
    /// Verify the affine result satisfies the curve equation after the
    /// final conversion (the post-kP coherence check).
    pub check_result: bool,
}

impl Hardening {
    /// All countermeasures off — cost-identical to [`ModeledMul::kp`].
    pub const OFF: Hardening = Hardening {
        validate_base: false,
        reject_infinity: false,
        check_result: false,
    };

    /// All countermeasures on (the campaign's "full" profile).
    pub const FULL: Hardening = Hardening {
        validate_base: true,
        reject_infinity: true,
        check_result: true,
    };
}

/// A hardened multiplication rejected its input or output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HardeningError {
    /// The base point failed the curve-equation check.
    BaseNotOnCurve,
    /// The result was the point at infinity.
    ResultInfinity,
    /// The converted result failed the curve-equation check.
    ResultNotOnCurve,
}

impl std::fmt::Display for HardeningError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HardeningError::BaseNotOnCurve => f.write_str("base point is not on the curve"),
            HardeningError::ResultInfinity => f.write_str("result degenerated to infinity"),
            HardeningError::ResultNotOnCurve => f.write_str("result is not on the curve"),
        }
    }
}

impl std::error::Error for HardeningError {}

/// The modeled point multiplier. Owns a [`ModeledField`] and a bank of
/// reusable element slots.
#[derive(Debug)]
pub struct ModeledMul {
    f: ModeledField,
    acc: PointSlots,
    table: Vec<AffineSlots>,
    neg: AffineSlots,
    tau_p: AffineSlots,
    base: AffineSlots,
    tmp: [FeSlot; 10],
    bn_scratch: FeSlot,
}

impl ModeledMul {
    /// Creates a modeled multiplier on the given implementation tier.
    pub fn new(tier: Tier) -> Self {
        Self::with_field(ModeledField::with_ram(tier, 64 * 1024))
    }

    /// Creates a modeled multiplier on the given tier and execution
    /// backend. Under [`Backend::Code`] every charged kernel — field
    /// arithmetic, bignum recoding passes, digit dispatch, ladder
    /// swaps — is assembled to Thumb-16 and replayed from machine code.
    pub fn with_backend(tier: Tier, backend: Backend) -> Self {
        let mut f = ModeledField::with_ram(tier, 64 * 1024);
        f.set_backend(backend);
        Self::with_field(f)
    }

    /// Creates a modeled multiplier with a custom energy model (energy
    /// sensitivity studies).
    pub fn with_energy_model(tier: Tier, model: m0plus::EnergyModel) -> Self {
        Self::with_field(ModeledField::with_ram_and_model(tier, 64 * 1024, model))
    }

    /// Creates a modeled multiplier costed for a target from the
    /// [`m0plus::target`] registry (default target ≡ [`ModeledMul::new`]).
    pub fn with_target(tier: Tier, target: &dyn m0plus::TargetModel) -> Self {
        Self::with_target_and_backend(tier, target, Backend::Direct)
    }

    /// [`ModeledMul::with_target`] on an explicit execution backend.
    pub fn with_target_and_backend(
        tier: Tier,
        target: &dyn m0plus::TargetModel,
        backend: Backend,
    ) -> Self {
        let mut f = ModeledField::with_ram_and_target(tier, 64 * 1024, target);
        f.set_backend(backend);
        Self::with_field(f)
    }

    /// Wraps an existing modeled field.
    pub fn with_field(mut f: ModeledField) -> Self {
        let acc = PointSlots {
            x: f.alloc(),
            y: f.alloc(),
            z: f.alloc(),
        };
        // Enough table slots for the widest window (w = 6 → 16 entries).
        let table = (0..16)
            .map(|_| AffineSlots {
                x: f.alloc(),
                y: f.alloc(),
            })
            .collect();
        let neg = AffineSlots {
            x: f.alloc(),
            y: f.alloc(),
        };
        let tau_p = AffineSlots {
            x: f.alloc(),
            y: f.alloc(),
        };
        let base = AffineSlots {
            x: f.alloc(),
            y: f.alloc(),
        };
        let tmp = [(); 10].map(|_| f.alloc());
        let bn_scratch = f.alloc();
        ModeledMul {
            f,
            acc,
            table,
            neg,
            tau_p,
            base,
            tmp,
            bn_scratch,
        }
    }

    /// The underlying field/machine (for reports beyond [`PointMulRun`]).
    pub fn field(&self) -> &ModeledField {
        &self.f
    }

    /// Mutable access to the underlying field/machine (the leakage
    /// verifier arms and drains the trace recorder through this).
    pub fn field_mut(&mut self) -> &mut ModeledField {
        &mut self.f
    }

    // ------------------------------------------------------------------
    // Charged big-integer work: TNAF representation.
    // ------------------------------------------------------------------

    /// Charges one RELIC-style full-width bignum pass (16 words through
    /// a called helper): the building block of the recoding loop.
    fn charge_bn_pass(&mut self, per_word: u32) {
        let s = self.bn_scratch;
        self.f.run_kernel("bn_pass", |m| {
            m.bl();
            m.set_base(Reg::R0, s.0);
            for i in 0..16u32 {
                m.ldr(Reg::R4, Reg::R0, i % 8);
                for _ in 0..per_word.saturating_sub(5) {
                    m.lsrs_imm(Reg::R5, Reg::R4, 1);
                }
                m.str(Reg::R4, Reg::R0, i % 8);
                m.adds_imm(Reg::R6, 1);
                m.cmp_imm(Reg::R6, 16);
                m.b_cond(Cond::Ne);
            }
            m.bx();
        });
    }

    /// Charges an `a_words × b_words` limb schoolbook multi-precision
    /// multiplication using the ARMv6-M 16-bit splitting (four `MULS`
    /// plus recombination per limb product).
    fn charge_bn_mul(&mut self, a_words: u32, b_words: u32) {
        let s = self.bn_scratch;
        self.f.run_kernel("bn_mul", |m| {
            m.bl();
            m.set_base(Reg::R0, s.0);
            for i in 0..a_words {
                m.ldr(Reg::R4, Reg::R0, i % 8);
                for _ in 0..b_words {
                    m.uxth(Reg::R5, Reg::R4);
                    m.lsrs_imm(Reg::R6, Reg::R4, 16);
                    m.muls(Reg::R5, Reg::R5);
                    m.muls(Reg::R6, Reg::R6);
                    m.uxth(Reg::R7, Reg::R4);
                    m.muls(Reg::R7, Reg::R4);
                    m.lsrs_imm(Reg::R3, Reg::R4, 16);
                    m.muls(Reg::R3, Reg::R4);
                    m.lsls_imm(Reg::R7, Reg::R7, 16);
                    m.adds(Reg::R5, Reg::R5, Reg::R7);
                    m.adcs(Reg::R6, Reg::R3);
                    m.ldr(Reg::R7, Reg::R0, (i + 1) % 8);
                    m.adds(Reg::R7, Reg::R7, Reg::R5);
                    m.str(Reg::R7, Reg::R0, (i + 1) % 8);
                    m.adcs(Reg::R6, Reg::R6);
                }
                m.adds_imm(Reg::R2, 1);
                m.cmp_imm(Reg::R2, 8);
                m.b_cond(Cond::Ne);
            }
            m.bx();
        });
    }

    /// Computes the width-w TNAF of `k` portably while charging the
    /// *TNAF Representation* category with the modeled recoding cost:
    /// the two λ-numerator multiplications and rounding divisions of the
    /// partial reduction, then per digit the parity test, the two
    /// halving shifts and (for non-zero digits) the representative
    /// subtraction — all as RELIC-style full-width helper calls.
    fn tnaf_representation(&mut self, k: &Int, w: u32) -> Vec<i8> {
        let digits = tnaf::recode(k, w);
        self.f
            .machine_mut()
            .set_category_override(Some(Category::TnafRepresentation));
        // partmod: a_i = s_i·k (4×8 limbs each) and two rounding
        // divisions by n (charged as multiply-back long division with 8
        // quotient limbs).
        self.charge_bn_mul(4, 8);
        self.charge_bn_mul(4, 8);
        for _ in 0..2 {
            for _ in 0..8 {
                self.charge_bn_mul(1, 8);
                self.charge_bn_pass(7); // compare + subtract correction
            }
        }
        // ρ = k − qδ: two more products and recombination.
        self.charge_bn_mul(4, 4);
        self.charge_bn_mul(4, 4);
        self.charge_bn_pass(7);
        // Digit loop.
        for &d in &digits {
            self.f.run_kernel("tnaf_digit_parity", |m| {
                m.ldr(Reg::R4, Reg::R0, 0);
                m.movs_imm(Reg::R5, 1);
                m.ands(Reg::R4, Reg::R5);
                m.b_cond(Cond::Ne);
            });
            if d != 0 {
                // u = (r0 + r1·t_w) mods 2^w, then subtract the
                // representative from both components.
                self.charge_bn_pass(7);
                self.charge_bn_pass(7);
            }
            // Two halving shifts and the recombination add.
            self.charge_bn_pass(9);
            self.charge_bn_pass(9);
            self.charge_bn_pass(7);
        }
        self.f.machine_mut().set_category_override(None);
        digits
    }

    /// Public entry to the charged recoding for the leakage verifier:
    /// computes the width-w TNAF of `k` while charging the modeled
    /// recoding cost (see [`ModeledMul::tnaf_representation`]).
    pub fn recode_charged(&mut self, k: &Int, w: u32) -> Vec<i8> {
        self.tnaf_representation(k, w)
    }

    // ------------------------------------------------------------------
    // Modeled point arithmetic on slots.
    // ------------------------------------------------------------------

    /// acc ← infinity (Z = 0).
    fn set_infinity(&mut self) {
        self.f.set_const(self.acc.x, Fe::ONE);
        self.f.set_const(self.acc.y, Fe::ZERO);
        self.f.set_const(self.acc.z, Fe::ZERO);
    }

    /// Whether acc is the point at infinity (charged test).
    fn acc_is_infinity(&mut self) -> bool {
        let z = self.acc.z;
        self.f.is_zero(z)
    }

    /// acc ← 2·acc (LD doubling, 3M + 5S; a = 0, b = 1).
    fn double_acc(&mut self) {
        if self.acc_is_infinity() {
            return;
        }
        let [t1, t2, t3, t4, t5, ..] = self.tmp;
        let acc = self.acc;
        self.f.sqr(t1, acc.z); // T1 = Z1²
        self.f.sqr(t2, acc.x); // T2 = X1²
        self.f.mul(t3, t1, t2); // Z3 = T1·T2
        self.f.sqr(t4, t2); // X1⁴
        self.f.sqr(t5, t1); // b·Z1⁴
        self.f.add(t4, t4, t5); // X3
        self.f.sqr(t1, acc.y); // Y1²
        self.f.add(t1, t1, t5); // Y1² + bZ1⁴
        self.f.mul(t2, t5, t3); // bZ1⁴·Z3
        self.f.mul(t5, t4, t1); // X3·(…)
        self.f.add(t2, t2, t5); // Y3
        self.f.copy(acc.x, t4);
        self.f.copy(acc.y, t2);
        self.f.copy(acc.z, t3);
    }

    /// acc ← acc + Q (mixed LD + affine addition, 8M + 5S; a = 0).
    fn add_affine_to_acc(&mut self, q: AffineSlots) {
        if self.acc_is_infinity() {
            // acc ← Q lifted to Z = 1.
            let acc = self.acc;
            self.f.copy(acc.x, q.x);
            self.f.copy(acc.y, q.y);
            self.f.set_const(acc.z, Fe::ONE);
            return;
        }
        let [t1, t2, a, b, c, z3, e, f3, g, t10] = self.tmp;
        let acc = self.acc;
        self.f.sqr(t1, acc.z); // Z1²
        self.f.mul(t2, q.y, t1); // y2·Z1²
        self.f.add(a, acc.y, t2); // A
        self.f.mul(t2, q.x, acc.z); // x2·Z1
        self.f.add(b, acc.x, t2); // B
        if self.f.is_zero(b) {
            // Same x: doubling or annihilation.
            if self.f.is_zero(a) {
                self.double_acc();
            } else {
                self.set_infinity();
            }
            return;
        }
        self.f.mul(c, acc.z, b); // C = Z1·B
        self.f.sqr(z3, c); // Z3 = C²
        self.f.sqr(t1, b); // B²
        self.f.mul(t2, t1, c); // D = B²·C
        self.f.mul(e, a, c); // E = A·C
        self.f.sqr(t1, a); // A²
        self.f.add(t1, t1, t2); // A² + D
        self.f.add(t10, t1, e); // X3 = A² + D + E
        self.f.mul(t1, q.x, z3); // x2·Z3
        self.f.add(f3, t10, t1); // F
        self.f.add(t1, q.x, q.y); // x2 + y2
        self.f.sqr(t2, z3); // Z3²
        self.f.mul(g, t1, t2); // G
        self.f.add(t1, e, z3); // E + Z3
        self.f.mul(t2, t1, f3); // (E+Z3)·F
        self.f.add(t2, t2, g); // Y3
        self.f.copy(acc.x, t10);
        self.f.copy(acc.y, t2);
        self.f.copy(acc.z, z3);
    }

    /// acc ← τ(acc): three squarings.
    fn frobenius_acc(&mut self) {
        let acc = self.acc;
        self.f.sqr(acc.x, acc.x);
        self.f.sqr(acc.y, acc.y);
        self.f.sqr(acc.z, acc.z);
    }

    /// Per-digit dispatch overhead (digit fetch, compare, branch),
    /// charged to *Support*.
    fn charge_digit_dispatch(&mut self) {
        self.f.run_kernel("digit_dispatch", |m| {
            m.in_category(Category::Support, |m| {
                m.ldr(Reg::R4, Reg::R0, 0);
                m.cmp_imm(Reg::R4, 0);
                m.b_cond(Cond::Ne);
                m.b_cond(Cond::Mi);
            });
        });
    }

    /// Builds the negated copy of a table point into the `neg` slots
    /// (−(x, y) = (x, x + y)), charged to *Support*.
    fn negate_table_point(&mut self, q: AffineSlots) -> AffineSlots {
        let neg = self.neg;
        self.f.copy(neg.x, q.x);
        self.f.add(neg.y, q.x, q.y);
        neg
    }

    /// Final conversion acc → affine: one inversion, two
    /// multiplications and one squaring. The affine coordinates are
    /// parked in `tmp[6]`/`tmp[7]` so hardened runs can re-check them
    /// in machine RAM.
    fn acc_to_affine(&mut self) -> Affine {
        if self.acc_is_infinity() {
            return Affine::Infinity;
        }
        let [t1, _, _, _, _, _, xs, ys, ..] = self.tmp;
        let acc = self.acc;
        self.f.inv(t1, acc.z); // Z⁻¹
        self.f.mul(xs, acc.x, t1); // x
        let x = self.f.load(xs);
        self.f.sqr(t1, t1); // Z⁻²
        self.f.mul(ys, acc.y, t1); // y
        let y = self.f.load(ys);
        Affine::Point { x, y }
    }

    /// Charged curve-equation check of the affine point held in
    /// `(x, y)`: y² + xy = x³ + b, as 2M + 2S + two additions, the
    /// constant store and the compare, attributed to *Support*.
    fn on_curve_check(&mut self, x: FeSlot, y: FeSlot) -> bool {
        let [t1, t2, t3, ..] = self.tmp;
        let prev = self.f.machine().category_override();
        self.f
            .machine_mut()
            .set_category_override(Some(Category::Support));
        self.f.sqr(t1, y);
        self.f.mul(t2, x, y);
        self.f.add(t1, t1, t2); // y² + xy
        self.f.sqr(t2, x);
        self.f.mul(t2, t2, x);
        self.f.set_const(t3, crate::curve::B);
        self.f.add(t2, t2, t3); // x³ + b
        let ok = self.f.equal(t1, t2);
        self.f.machine_mut().set_category_override(prev);
        ok
    }

    // ------------------------------------------------------------------
    // Precomputation.
    // ------------------------------------------------------------------

    /// Builds the window table for `p` in machine RAM *with* charging
    /// (kP: the paper's TNAF-precomputation phase): computes each
    /// α_u·P = β·P + γ·τP through modeled additions in projective
    /// coordinates and normalises all entries with one simultaneous
    /// inversion.
    fn precompute_charged(&mut self, p: &Affine, w: u32) {
        self.f
            .machine_mut()
            .set_category_override(Some(Category::TnafPrecomputation));

        // Base point and τP as affine machine residents of this call.
        let base = self.base;
        self.f.store(base.x, p.x());
        self.f.store(base.y, p.y());
        let tau_p = self.tau_p;
        self.f.sqr(tau_p.x, base.x);
        self.f.sqr(tau_p.y, base.y);

        // Entry 0 is P itself (a support copy).
        let t0 = self.table[0];
        self.f.copy(t0.x, base.x);
        self.f.copy(t0.y, base.y);

        let count = 1usize << (w - 2);
        // Compute entries 1.. in projective coordinates, parking the Z
        // denominators for one simultaneous inversion at the end.
        let mut pending: Vec<(usize, PointSlots)> = Vec::new();
        for i in 1..count {
            let u = 2 * i as i64 + 1;
            let (beta, gamma) = tnaf::alpha(u, w);
            self.set_infinity();
            for (coeff, pt) in [(beta, base), (gamma, tau_p)] {
                let times = coeff.abs().to_i64();
                for _ in 0..times {
                    if coeff.is_negative() {
                        let operand = self.negate_table_point(pt);
                        self.add_affine_to_acc(operand);
                    } else {
                        self.add_affine_to_acc(pt);
                    }
                }
            }
            let parked = PointSlots {
                x: self.f.alloc(),
                y: self.f.alloc(),
                z: self.f.alloc(),
            };
            let acc = self.acc;
            self.f.copy(parked.x, acc.x);
            self.f.copy(parked.y, acc.y);
            self.f.copy(parked.z, acc.z);
            pending.push((i, parked));
        }

        // w = 2 has no non-trivial entries (the table is {P}).
        if pending.is_empty() {
            self.f.machine_mut().set_category_override(None);
            return;
        }

        // Simultaneous inversion (Montgomery's trick).
        let mut prods: Vec<FeSlot> = Vec::new();
        let mut running: Option<FeSlot> = None;
        for (_, pt) in &pending {
            let slot = self.f.alloc();
            match running {
                None => self.f.copy(slot, pt.z),
                Some(prev) => self.f.mul(slot, prev, pt.z),
            }
            prods.push(slot);
            running = Some(slot);
        }
        let inv_slot = self.f.alloc();
        self.f
            .inv(inv_slot, *prods.last().expect("table is non-empty"));
        let scratch = self.tmp[9];
        for idx in (0..pending.len()).rev() {
            let (i, pt) = pending[idx];
            let zi = self.f.alloc();
            if idx == 0 {
                self.f.copy(zi, inv_slot);
            } else {
                self.f.mul(zi, inv_slot, prods[idx - 1]);
                let t = self.tmp[8];
                self.f.mul(t, inv_slot, pt.z);
                self.f.copy(inv_slot, t);
            }
            // Affine: x = X·zi, y = Y·zi².
            let entry = self.table[i];
            self.f.mul(entry.x, pt.x, zi);
            self.f.sqr(scratch, zi);
            self.f.mul(entry.y, pt.y, scratch);
        }

        self.f.machine_mut().set_category_override(None);
    }

    /// Loads the precomputed generator table (w = 6) into machine RAM
    /// *without* charging: the paper computes it offline and stores it
    /// in flash, and its Table 7 charges kG zero TNAF precomputation.
    fn load_generator_table(&mut self) {
        for (i, p) in crate::mul::generator_table().iter().enumerate() {
            let entry = self.table[i];
            self.f.store(entry.x, p.x());
            self.f.store(entry.y, p.y());
        }
    }

    // ------------------------------------------------------------------
    // The two public operations.
    // ------------------------------------------------------------------

    /// Random-point multiplication k·P (the paper's kP: wTNAF, w = 4).
    ///
    /// # Panics
    ///
    /// Panics if `k` is negative.
    pub fn kp(&mut self, p: &Affine, k: &Int) -> PointMulRun {
        self.run(p, k, KP_WINDOW, true)
    }

    /// Fixed-point multiplication k·G (the paper's kG: wTNAF, w = 6,
    /// offline table loaded without charge).
    ///
    /// # Panics
    ///
    /// Panics if `k` is negative.
    pub fn kg(&mut self, k: &Int) -> PointMulRun {
        let g = crate::curve::generator();
        self.run(&g, k, KG_WINDOW, false)
    }

    /// General modeled multiplication: window width `w`, with the table
    /// either built online (charged to *TNAF Precomputation*, as the
    /// paper's kP and the RELIC baseline do for every multiplication) or
    /// loaded offline (the paper's kG).
    ///
    /// # Panics
    ///
    /// Panics if `k` is negative, or if an offline table is requested
    /// for a point other than the generator.
    pub fn run(&mut self, p: &Affine, k: &Int, w: u32, charge_precomp: bool) -> PointMulRun {
        assert!(!k.is_negative(), "scalar must be non-negative");
        let snap = self.f.machine().snapshot();
        let result = self.run_inner(p, k, w, charge_precomp);
        let report = self.f.machine().report_since(&snap);
        if !(p.is_infinity() || k.is_zero()) {
            let expect = crate::mul::mul_wtnaf(p, k, w);
            assert_eq!(
                result, expect,
                "modeled multiplication diverged from portable"
            );
        }
        PointMulRun { result, report }
    }

    /// Random-point multiplication with the selected fault
    /// countermeasures (the campaign's hardened profiles). With every
    /// toggle off this is cost-identical to [`ModeledMul::kp`]; each
    /// enabled check adds charged *Support* instructions whose overhead
    /// shows up in [`PointMulRun::report`].
    ///
    /// # Errors
    ///
    /// Returns the first failed check. A rejected run aborts the
    /// protocol operation, so no report is produced for it.
    ///
    /// # Panics
    ///
    /// Panics if `k` is negative.
    pub fn kp_hardened(
        &mut self,
        p: &Affine,
        k: &Int,
        hardening: Hardening,
    ) -> Result<PointMulRun, HardeningError> {
        assert!(!k.is_negative(), "scalar must be non-negative");
        let snap = self.f.machine().snapshot();
        if hardening.validate_base {
            if let Affine::Point { x, y } = *p {
                let base = self.base;
                self.f.store(base.x, x);
                self.f.store(base.y, y);
                if !self.on_curve_check(base.x, base.y) {
                    return Err(HardeningError::BaseNotOnCurve);
                }
            }
        }
        let result = self.run_inner(p, k, KP_WINDOW, true);
        if hardening.reject_infinity && self.acc_is_infinity() {
            return Err(HardeningError::ResultInfinity);
        }
        if hardening.check_result && !result.is_infinity() {
            let (xs, ys) = (self.tmp[6], self.tmp[7]);
            if !self.on_curve_check(xs, ys) {
                return Err(HardeningError::ResultNotOnCurve);
            }
        }
        let report = self.f.machine().report_since(&snap);
        if !(p.is_infinity() || k.is_zero()) {
            let expect = crate::mul::mul_wtnaf(p, k, KP_WINDOW);
            assert_eq!(
                result, expect,
                "modeled multiplication diverged from portable"
            );
        }
        Ok(PointMulRun { result, report })
    }

    /// The shared body of [`ModeledMul::run`] and
    /// [`ModeledMul::kp_hardened`]: recode, build/load the window
    /// table, evaluate. Degenerate inputs set the accumulator to a
    /// coherent infinity so post-run checks read real machine state.
    fn run_inner(&mut self, p: &Affine, k: &Int, w: u32, charge_precomp: bool) -> Affine {
        if p.is_infinity() || k.is_zero() {
            self.set_infinity();
            return Affine::Infinity;
        }
        let digits = self.tnaf_representation(k, w);
        if charge_precomp {
            self.precompute_charged(p, w);
        } else {
            assert_eq!(
                *p,
                crate::curve::generator(),
                "offline tables exist for the generator only"
            );
            assert_eq!(w, KG_WINDOW, "the offline table is built for w = 6");
            self.load_generator_table();
        }
        self.main_loop(&digits)
    }

    /// Constant-time Montgomery-ladder multiplication on the cost model
    /// (the paper's §5 future work). Performs exactly the same
    /// instruction sequence for every scalar: 232 ladder steps of one
    /// differential addition (4M + 1S) and one doubling (1M + 4S), with
    /// the y-coordinate recovered at the end (1 inversion + a handful of
    /// multiplications). The cycle count is therefore
    /// scalar-independent, which the tests assert bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `k` is negative or `p` is infinity / the 2-torsion
    /// point.
    pub fn ladder(&mut self, p: &Affine, k: &Int) -> PointMulRun {
        assert!(!k.is_negative(), "scalar must be non-negative");
        let (xp_val, _yp_val) = match *p {
            Affine::Infinity => panic!("ladder needs a finite base point"),
            Affine::Point { x, y } => (x, y),
        };
        assert!(!xp_val.is_zero(), "ladder needs a point of odd order");
        let snap = self.f.machine().snapshot();

        // Fixed-length scalar (see mul::montgomery_ladder).
        let n = crate::curve::order();
        let k1 = k.mod_positive(&n);
        if k1.is_zero() {
            let report = self.f.machine().report_since(&snap);
            return PointMulRun {
                result: Affine::Infinity,
                report,
            };
        }
        let lifted = {
            let t = &k1 + &n;
            if t.bits() == 233 {
                t
            } else {
                &t + &n
            }
        };

        // Slots: xp constant, two ladder points (x-only), scratch.
        let xp = self.base.x;
        self.f.store(xp, xp_val);
        let (x1, z1) = (self.acc.x, self.acc.y);
        let (x2, z2) = (self.neg.x, self.neg.y);
        let [t1, t2, t3, ..] = self.tmp;
        // R0 = P, R1 = 2P.
        self.f.copy(x1, xp);
        self.f.set_const(z1, Fe::ONE);
        self.f.sqr(t1, xp); // x²
        self.f.sqr(t2, t1); // x⁴
        self.f.set_const(t3, Fe::ONE); // b
        self.f.add(x2, t2, t3); // X2 = x⁴ + b
        self.f.copy(z2, t1); // Z2 = x²

        for i in (0..232).rev() {
            let bit = (lifted.limbs()[i / 32] >> (i % 32)) & 1;
            // Fixed roles: the step always adds into R0 = (x1,z1) and
            // doubles R1 = (x2,z2). A masked conditional swap before the
            // step routes the right operands into those roles, and the
            // matching swap afterwards restores them — so the addresses
            // each field operation touches never depend on the bit (the
            // cswap itself is trace-constant, which the leakage verifier
            // checks).
            let swap = bit == 0;
            self.f.cswap(x1, x2, swap);
            self.f.cswap(z1, z2, swap);
            let (ax, az, dx, dz) = (x1, z1, x2, z2);
            // madd(ax,az, dx,dz; xp):
            self.f.mul(t1, ax, dz); // T = X1·Z2
            self.f.mul(t2, dx, az); // U = X2·Z1
            self.f.add(t3, t1, t2);
            self.f.sqr(az, t3); // Z' = (T+U)²
            self.f.mul(t3, t1, t2); // T·U
            self.f.mul(t1, xp, az); // x·Z'
            self.f.add(ax, t1, t3); // X' = x·Z' + T·U
                                    // mdouble(dx,dz):
            self.f.sqr(t1, dx); // X²
            self.f.sqr(t2, dz); // Z²
            self.f.mul(dz, t1, t2); // Z' = X²Z²
            self.f.sqr(t1, t1); // X⁴
            self.f.sqr(t2, t2); // Z⁴ (b = 1)
            self.f.add(dx, t1, t2); // X' = X⁴ + bZ⁴
                                    // Swap back so (x1,z1)/(x2,z2) keep their R0/R1 meanings.
            self.f.cswap(x1, x2, swap);
            self.f.cswap(z1, z2, swap);
        }

        // Recover y on the host (identical work for every scalar; the
        // charged conversion below covers the x normalisation).
        let result = {
            let x1v = self.f.load(x1);
            let z1v = self.f.load(z1);
            let x2v = self.f.load(x2);
            let z2v = self.f.load(z2);
            recover_y(p, x1v, z1v, x2v, z2v)
        };
        // Charge the final conversion. A constant-time ladder needs a
        // constant-time inversion, so the conversion uses the
        // Itoh–Tsujii chain (fixed 10M + 233S schedule) instead of the
        // data-dependent EEA.
        let inv_in = self.tmp[3];
        self.f.store(inv_in, self.f.load(z1));
        if !self.f.load(inv_in).is_zero() {
            self.f.inv_itoh_tsujii(t1, inv_in);
            self.f.mul(t2, x1, t1);
            self.f.mul(t3, x2, t1);
        }
        let report = self.f.machine().report_since(&snap);
        assert_eq!(
            result,
            crate::mul::montgomery_ladder(p, k),
            "modeled ladder diverged from the portable ladder"
        );
        PointMulRun { result, report }
    }

    /// The left-to-right digit evaluation shared by kP and kG.
    fn main_loop(&mut self, digits: &[i8]) -> Affine {
        self.set_infinity();
        for &d in digits.iter().rev() {
            self.frobenius_acc();
            self.charge_digit_dispatch();
            if d > 0 {
                let entry = self.table[(d as usize) / 2];
                self.add_affine_to_acc(entry);
            } else if d < 0 {
                let entry = self.table[(-d as usize) / 2];
                let neg = self.negate_table_point(entry);
                self.add_affine_to_acc(neg);
            }
        }
        self.acc_to_affine()
    }
}

/// y-recovery for the x-only ladder (López-Dahab 1999).
fn recover_y(p: &Affine, x1: Fe, z1: Fe, x2: Fe, z2: Fe) -> Affine {
    let (xp, yp) = (p.x(), p.y());
    if z1.is_zero() {
        return Affine::Infinity;
    }
    if z2.is_zero() {
        return Affine::Point { x: xp, y: xp + yp };
    }
    let x1a = x1 * z1.invert().expect("z1 != 0");
    let x2a = x2 * z2.invert().expect("z2 != 0");
    let y =
        (x1a + xp) * ((x1a + xp) * (x2a + xp) + xp.square() + yp) * xp.invert().expect("x != 0")
            + yp;
    Affine::Point { x: x1a, y }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::{generator, order};

    fn scalar(seed: u64) -> Int {
        let hex = format!("{:016x}", seed.wrapping_mul(0xA24B_AED4_963E_E407));
        Int::from_hex(&hex.repeat(4))
            .unwrap()
            .mod_positive(&order())
    }

    #[test]
    fn modeled_kg_matches_portable() {
        let mut mm = ModeledMul::new(Tier::Asm);
        let k = scalar(1);
        let run = mm.kg(&k);
        assert_eq!(run.result, crate::mul::mul_g(&k));
        assert!(run.report.cycles > 100_000);
    }

    #[test]
    fn modeled_kp_matches_portable() {
        let mut mm = ModeledMul::new(Tier::Asm);
        let k = scalar(2);
        let g = generator();
        let run = mm.kp(&g, &k);
        assert_eq!(run.result, crate::mul::mul_wtnaf(&g, &k, 4));
    }

    #[test]
    fn kp_is_slower_than_kg() {
        let mut mm = ModeledMul::new(Tier::Asm);
        let k = scalar(3);
        let kg = mm.kg(&k);
        let mut mm2 = ModeledMul::new(Tier::Asm);
        let kp = mm2.kp(&generator(), &k);
        assert!(
            kp.report.cycles > kg.report.cycles,
            "kP {} should exceed kG {}",
            kp.report.cycles,
            kg.report.cycles
        );
    }

    #[test]
    fn kg_charges_no_tnaf_precomputation() {
        let mut mm = ModeledMul::new(Tier::Asm);
        let run = mm.kg(&scalar(4));
        assert_eq!(
            run.report.category_cycles(Category::TnafPrecomputation),
            0,
            "kG's table is offline"
        );
        assert!(run.report.category_cycles(Category::TnafRepresentation) > 0);
    }

    #[test]
    fn kp_charges_all_categories() {
        let mut mm = ModeledMul::new(Tier::Asm);
        let run = mm.kp(&generator(), &scalar(5));
        for c in Category::ALL {
            assert!(run.report.category_cycles(c) > 0, "{c} should have cycles");
        }
        // Multiply dominates, as in Table 7.
        assert!(
            run.report.category_cycles(Category::Multiply)
                > run.report.category_cycles(Category::Square)
        );
    }

    #[test]
    fn asm_tier_total_is_in_the_papers_regime() {
        // Paper: kP = 2 814 827 cycles, kG = 1 864 470 (Tables 6/7).
        let mut mm = ModeledMul::new(Tier::Asm);
        let kg = mm.kg(&scalar(6));
        assert!(
            (1_400_000..=2_600_000).contains(&kg.report.cycles),
            "kG cycles = {}, paper: 1 864 470",
            kg.report.cycles
        );
        let mut mm2 = ModeledMul::new(Tier::Asm);
        let kp = mm2.kp(&generator(), &scalar(7));
        assert!(
            (2_100_000..=3_800_000).contains(&kp.report.cycles),
            "kP cycles = {}, paper: 2 814 827",
            kp.report.cycles
        );
    }

    #[test]
    fn modeled_ladder_is_scalar_independent_and_correct() {
        let g = generator();
        let cycles: Vec<u64> = [scalar(31), scalar(32), Int::from(5i64)]
            .iter()
            .map(|k| {
                let mut mm = ModeledMul::new(Tier::Asm);
                let run = mm.ladder(&g, k);
                assert_eq!(run.result, crate::mul::montgomery_ladder(&g, k));
                run.report.cycles
            })
            .collect();
        assert_eq!(cycles[0], cycles[1], "cycle counts must not depend on k");
        assert_eq!(cycles[1], cycles[2]);
        // The ladder pays ~2x the wTNAF cost (5M+5S per bit vs the
        // Frobenius trick).
        let mut mm = ModeledMul::new(Tier::Asm);
        let kp = mm.kp(&g, &scalar(33));
        assert!(cycles[0] > kp.report.cycles);
        assert!(cycles[0] < 3 * kp.report.cycles);
    }

    #[test]
    fn code_backend_full_kp_matches_direct_bit_for_bit() {
        // The tentpole acceptance check: a complete kP — recoding,
        // online window table, main loop, final conversion — executes
        // from assembled Thumb-16 machine code with *exactly* the
        // cycle, energy and per-category totals of the direct tier.
        let g = generator();
        let k = scalar(9);
        let mut direct = ModeledMul::new(Tier::Asm);
        let run_d = direct.kp(&g, &k);
        let mut code = ModeledMul::with_backend(Tier::Asm, Backend::Code);
        let run_c = code.kp(&g, &k);
        assert_eq!(run_c.result, run_d.result, "points diverge");
        assert_eq!(run_c.report.cycles, run_d.report.cycles, "cycles diverge");
        assert_eq!(
            run_c.report.energy_pj.to_bits(),
            run_d.report.energy_pj.to_bits(),
            "energy diverges"
        );
        for c in Category::ALL {
            assert_eq!(
                run_c.report.category_cycles(c),
                run_d.report.category_cycles(c),
                "{c} cycles diverge"
            );
        }
        // The code backend also measured per-kernel flash footprints.
        let flash = code.field().flash_report();
        for kernel in ["mul_asm", "sqr_asm", "inv_eea_c", "bn_mul", "bn_pass"] {
            assert!(
                flash.contains_key(kernel),
                "{kernel} missing from flash report"
            );
        }
        assert!(direct.field().flash_report().is_empty());
    }

    #[test]
    fn code_backend_kg_matches_direct_cycles() {
        let k = scalar(10);
        let mut direct = ModeledMul::new(Tier::C);
        let run_d = direct.kg(&k);
        let mut code = ModeledMul::with_backend(Tier::C, Backend::Code);
        let run_c = code.kg(&k);
        assert_eq!(run_c.result, run_d.result);
        assert_eq!(run_c.report.cycles, run_d.report.cycles);
    }

    #[test]
    fn zero_scalar_and_infinity_are_cheap() {
        let mut mm = ModeledMul::new(Tier::Asm);
        let run = mm.kg(&Int::zero());
        assert!(run.result.is_infinity());
        assert!(run.report.cycles < 1000);
        let run = mm.kp(&Affine::Infinity, &scalar(8));
        assert!(run.result.is_infinity());
    }

    #[test]
    fn hardening_off_is_cost_identical_to_kp() {
        let g = generator();
        let k = scalar(11);
        let mut plain = ModeledMul::new(Tier::Asm);
        let base = plain.kp(&g, &k);
        let mut hardened = ModeledMul::new(Tier::Asm);
        let run = hardened.kp_hardened(&g, &k, Hardening::OFF).unwrap();
        assert_eq!(run.result, base.result);
        assert_eq!(run.report.cycles, base.report.cycles);
        assert_eq!(
            run.report.energy_pj.to_bits(),
            base.report.energy_pj.to_bits()
        );
    }

    #[test]
    fn each_countermeasure_adds_measured_cycles() {
        let g = generator();
        let k = scalar(12);
        let cycles_for = |h: Hardening| {
            let mut mm = ModeledMul::new(Tier::Asm);
            mm.kp_hardened(&g, &k, h).unwrap().report.cycles
        };
        let off = cycles_for(Hardening::OFF);
        let base = cycles_for(Hardening {
            validate_base: true,
            ..Hardening::OFF
        });
        let inf = cycles_for(Hardening {
            reject_infinity: true,
            ..Hardening::OFF
        });
        let res = cycles_for(Hardening {
            check_result: true,
            ..Hardening::OFF
        });
        let full = cycles_for(Hardening::FULL);
        assert!(base > off && inf > off && res > off);
        // The toggles compose additively.
        assert_eq!(full - off, (base - off) + (inf - off) + (res - off));
        // Each check is a tiny fraction of the multiplication itself.
        assert!(full - off < off / 50, "overhead {} vs {}", full - off, off);
    }

    #[test]
    fn hardened_run_rejects_an_off_curve_base() {
        // Off-curve garbage a faulted decompression could hand over.
        let bad = Affine::Point {
            x: Fe::from_words_reduced([2, 0, 0, 0, 0, 0, 0, 0]),
            y: Fe::from_words_reduced([3, 0, 0, 0, 0, 0, 0, 0]),
        };
        assert!(!bad.is_on_curve());
        let mut mm = ModeledMul::new(Tier::Asm);
        assert!(matches!(
            mm.kp_hardened(
                &bad,
                &scalar(13),
                Hardening {
                    validate_base: true,
                    ..Hardening::OFF
                }
            ),
            Err(HardeningError::BaseNotOnCurve)
        ));
    }

    #[test]
    fn hardened_run_rejects_an_infinity_result() {
        // k = n annihilates the generator: unhardened this silently
        // returns infinity, with the countermeasure it is rejected.
        let n = order();
        let mut mm = ModeledMul::new(Tier::Asm);
        let run = mm.kp_hardened(&generator(), &n, Hardening::OFF).unwrap();
        assert!(run.result.is_infinity());
        assert!(matches!(
            mm.kp_hardened(
                &generator(),
                &n,
                Hardening {
                    reject_infinity: true,
                    ..Hardening::OFF
                }
            ),
            Err(HardeningError::ResultInfinity)
        ));
    }
}
